package locble_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"locble"
	"locble/internal/faults"
	"locble/internal/fleet"
	"locble/internal/imu"
	"locble/internal/netproto"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "keys", X: 6, Y: 3}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := sys.Locate(tr, "keys")
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Hypot(pos.X-6, pos.Y-3); e > 3 {
		t.Errorf("quickstart error %.2f m", e)
	}
	if pos.Range <= 0 || pos.Confidence < 0 || pos.Confidence > 1 {
		t.Errorf("implausible position fields: %+v", pos)
	}
}

func TestPublicAPIStraightWalkAmbiguity(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "b", X: 4, Y: 3}},
		ObserverPlan: locble.StraightWalk(0, 7),
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := sys.Locate(tr, "b")
	if err != nil {
		t.Fatal(err)
	}
	if !pos.Ambiguous {
		t.Skip("this seed resolved the ambiguity (no turn detected expected); skipping mirror check")
	}
	if pos.Mirror == nil {
		t.Fatal("ambiguous position without a mirror candidate")
	}
	// Mirror is reflected across the walking line (y ≈ −y).
	if math.Abs(pos.Mirror.Y+pos.Y) > 1.0 {
		t.Errorf("mirror (%.2f, %.2f) is not the reflection of (%.2f, %.2f)",
			pos.Mirror.X, pos.Mirror.Y, pos.X, pos.Y)
	}
}

func TestPublicAPICluster(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{
			{Name: "b", X: 6, Y: 3},
			{Name: "n1", X: 6.3, Y: 3},
			{Name: "n2", X: 6, Y: 3.3},
		},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     locble.StaticEnv(locble.PLOS),
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, cres, err := sys.LocateCalibrated(tr, "b")
	if err != nil {
		t.Fatal(err)
	}
	if cres.ClusterSize < 1 {
		t.Error("cluster should at least contain the target")
	}
	if e := math.Hypot(pos.X-6, pos.Y-3); e > 4 {
		t.Errorf("calibrated error %.2f m", e)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	for _, opt := range []locble.Option{
		locble.WithoutANF(),
		locble.WithoutEnvAware(),
		locble.WithStreamingANF(),
		locble.WithButterworthOrder(4),
		locble.WithLoss(locble.LossHuber),
		locble.WithoutDegradationLadder(),
	} {
		if _, err := locble.New(opt); err != nil {
			t.Errorf("New with option: %v", err)
		}
	}
}

// TestPublicAPIHostileData exercises the README's hostile-data story
// through the facade alone: a Huber-loss System flags a cloned beacon
// identity (ReasonBeaconAnomaly) while still producing a usable fix,
// an unusable IMU degrades to the RSS-only rung with Position.Mode
// saying so, and WithoutDegradationLadder restores the hard rejection.
func TestPublicAPIHostileData(t *testing.T) {
	simulate := func(seed int64) *locble.Trace {
		tr, err := locble.Simulate(locble.Scenario{
			Beacons:      []locble.BeaconSpec{{Name: "keys", X: 6, Y: 3}},
			ObserverPlan: locble.LShapeWalk(0, 4, 4),
			EnvModel:     locble.StaticEnv(locble.LOS),
			Seed:         seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	sys, err := locble.New(locble.WithLoss(locble.LossHuber))
	if err != nil {
		t.Fatal(err)
	}

	tr := simulate(2)
	faults.Apply(tr, 2, faults.BeaconClone{OffsetDB: -25})
	pos, err := sys.Locate(tr, "keys")
	if err != nil {
		t.Fatalf("cloned beacon should degrade, not reject: %v", err)
	}
	if !pos.Health.Has(locble.ReasonBeaconAnomaly) {
		t.Errorf("cloned beacon not flagged: health %s", pos.Health)
	}
	if pos.Mode != locble.ModeFull {
		t.Errorf("clone case Mode = %s, want %s", pos.Mode, locble.ModeFull)
	}
	if e := math.Hypot(pos.X-6, pos.Y-3); e > 4 {
		t.Errorf("flagged clone fix error %.2f m — not survived", e)
	}

	tr = simulate(3)
	tr.IMU = &imu.Trace{} // inertial stream gone entirely
	pos, err = sys.Locate(tr, "keys")
	if err != nil {
		t.Fatalf("IMU loss should fall to the RSS-only rung: %v", err)
	}
	if pos.Mode != locble.ModeRSSOnly || !pos.Health.Has(locble.ReasonRSSOnlyFallback) {
		t.Errorf("RSS-only rung not reported: mode %s, health %s", pos.Mode, pos.Health)
	}

	strict, err := locble.New(locble.WithoutDegradationLadder())
	if err != nil {
		t.Fatal(err)
	}
	tr = simulate(3)
	tr.IMU = &imu.Trace{}
	if _, err := strict.Locate(tr, "keys"); err == nil {
		t.Error("ladder disabled: IMU loss must reject")
	} else if locble.HealthFromError(err).Status != locble.HealthRejected {
		t.Errorf("ladder disabled: want a rejection diagnosis, got %v", err)
	}
}

func TestPublicAPINavigator(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	nav := sys.Navigator(&locble.Position{X: 3, Y: 4})
	adv := nav.Advise()
	if math.Abs(adv.Distance-5) > 1e-9 {
		t.Errorf("navigator distance %.2f, want 5", adv.Distance)
	}
}

func TestPresetsExposed(t *testing.T) {
	if len(locble.Presets()) != 9 {
		t.Error("Presets() should expose the nine Table 1 environments")
	}
}

func TestPublicAPITrack(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{{Name: "b", X: 6, Y: 2}},
		ObserverPlan: locble.WalkPlan{Segments: []locble.WalkSegment{
			{Heading: 0, Distance: 6},
			{Heading: math.Pi / 2, Distance: 4},
			{Heading: math.Pi, Distance: 6},
		}},
		EnvModel: locble.StaticEnv(locble.LOS),
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixes, err := sys.Track(tr, "b", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) < 3 {
		t.Fatalf("only %d fixes", len(fixes))
	}
	for i := 1; i < len(fixes); i++ {
		if fixes[i].T <= fixes[i-1].T {
			t.Fatal("fix times not increasing")
		}
	}
}

func TestPublicAPILocate3D(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{{Name: "shelf", X: 5, Y: 2.5, Z: 1.5}},
		ObserverPlan: locble.WalkPlan{Segments: []locble.WalkSegment{
			{Heading: 0, Distance: 4},
			{Heading: math.Pi / 2, Distance: 4, Lift: 0.6},
			{Heading: math.Pi / 2, Lift: -1.2},
		}},
		EnvModel: locble.StaticEnv(locble.LOS),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := sys.Locate3D(tr, "shelf")
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(pos.X-5, pos.Y-2.5) > 4 {
		t.Errorf("3-D planar estimate far off: (%.2f, %.2f, %.2f)", pos.X, pos.Y, pos.Z)
	}
}

func TestPublicAPITracePersistence(t *testing.T) {
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "b", X: 6, Y: 3}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := locble.SaveTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := locble.LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := sys.Locate(tr, "b")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sys.Locate(got, "b")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.X-p2.X) > 1e-9 || math.Abs(p1.Y-p2.Y) > 1e-9 {
		t.Error("replayed trace gives a different estimate")
	}
}

func TestPublicAPILocateNear(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "b", X: 2, Y: 0.6}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		Seed:         10,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := sys.LocateNear(tr, "b")
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Hypot(pos.X-2, pos.Y-0.6); e > 2.5 {
		t.Errorf("LocateNear error %.2f m", e)
	}
}

func TestPublicAPITrackSmoothed(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{{Name: "b", X: 6, Y: 2}},
		ObserverPlan: locble.WalkPlan{Segments: []locble.WalkSegment{
			{Heading: 0, Distance: 6},
			{Heading: math.Pi / 2, Distance: 4},
			{Heading: math.Pi, Distance: 6},
		}},
		EnvModel: locble.StaticEnv(locble.LOS),
		Seed:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sys.Track(tr, "b", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := sys.TrackSmoothed(tr, "b", 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(smooth) != len(raw) {
		t.Fatalf("smoothed %d fixes vs raw %d", len(smooth), len(raw))
	}
	// Smoothed fixes jitter less: compare step-to-step movement.
	jitter := func(fs []locble.Fix) float64 {
		var s float64
		for i := 1; i < len(fs); i++ {
			s += math.Hypot(fs[i].Position.X-fs[i-1].Position.X, fs[i].Position.Y-fs[i-1].Position.Y)
		}
		return s
	}
	if jitter(smooth) >= jitter(raw) {
		t.Errorf("smoothed jitter %.2f should be below raw %.2f", jitter(smooth), jitter(raw))
	}
}

func TestPublicAPILocateAll(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{
			{Name: "a", X: 5, Y: 2},
			{Name: "b", X: 2, Y: 5},
		},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		Seed:         14,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := sys.LocateAll(tr)
	if len(all) == 0 {
		t.Fatal("LocateAll found nothing")
	}
	for name, pos := range all {
		if pos.Range <= 0 {
			t.Errorf("%s: bad range %g", name, pos.Range)
		}
	}
}

func TestPublicAPIFleet(t *testing.T) {
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	store := locble.NewMemStore()
	fl, err := sys.NewFleet(locble.FleetConfig{
		Session: locble.TrackSessionConfig{SampleRateHz: 8},
		Store:   store,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n, slice = 240, 24
	streams := map[string][]locble.FleetObs{}
	for i, name := range []string{"cart-1", "cart-2", "cart-3"} {
		for _, o := range fleet.SynthStream(name, n, float64(i)) {
			streams[name] = append(streams[name], locble.FleetObs{
				Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q,
			})
		}
	}
	fixes := 0
	for lo := 0; lo < n; lo += slice {
		var batch []locble.FleetObs
		for _, s := range streams {
			batch = append(batch, s[lo:lo+slice]...)
		}
		res, err := fl.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Beacon, r.Err)
			}
			fixes += len(r.Points)
		}
	}
	if fixes == 0 {
		t.Fatal("fleet ingest produced no fixes")
	}
	if got := fl.Sessions(); got != 3 {
		t.Fatalf("Sessions() = %d, want 3", got)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 3 {
		t.Fatalf("store holds %d checkpoints after Close, want 3", store.Len())
	}

	// A successor fleet on the same store resumes every session.
	fl2, err := sys.NewFleet(locble.FleetConfig{
		Session: locble.TrackSessionConfig{SampleRateHz: 8},
		Store:   store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	var batch []locble.FleetObs
	for _, s := range streams {
		batch = append(batch, s[n-slice:]...)
	}
	res, err := fl2.PushBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Restored {
			t.Errorf("%s: successor fleet cold-started instead of restoring", r.Beacon)
		}
	}
}

// TestPublicAPIFileStore drives the durable checkpoint store through
// the facade: a fleet checkpoints to disk, the process "restarts"
// (store reopened from the same directory), and a successor fleet
// restores every session; recovery after a clean shutdown reports no
// damage.
func TestPublicAPIFileStore(t *testing.T) {
	dir := t.TempDir()
	sys, err := locble.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	st, err := locble.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable() {
		t.Fatal("default FileStore is not sync-durable")
	}
	fl, err := sys.NewFleet(locble.FleetConfig{
		Session: locble.TrackSessionConfig{SampleRateHz: 8},
		Store:   st,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n, half = 240, 120
	streams := map[string][]locble.FleetObs{}
	for i, name := range []string{"disk-1", "disk-2"} {
		for _, o := range fleet.SynthStream(name, n, 0.4*float64(i)) {
			streams[name] = append(streams[name], locble.FleetObs{
				Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q,
			})
		}
	}
	var batch []locble.FleetObs
	for _, s := range streams {
		batch = append(batch, s[:half]...)
	}
	if _, err := fl.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d checkpoints after Close, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen from the same directory.
	st2, err := locble.OpenFileStore(dir, &locble.FileStoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var rec locble.StoreRecoveryStats = st2.RecoveryStats()
	if rec.TornTails != 0 || rec.Quarantined != 0 {
		t.Fatalf("clean shutdown left damage: %+v", rec)
	}
	if st2.Len() != 2 {
		t.Fatalf("recovered %d checkpoints, want 2", st2.Len())
	}
	fl2, err := sys.NewFleet(locble.FleetConfig{
		Session: locble.TrackSessionConfig{SampleRateHz: 8},
		Store:   st2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	batch = batch[:0]
	for _, s := range streams {
		batch = append(batch, s[half:]...)
	}
	res, err := fl2.PushBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Beacon, r.Err)
		}
		if !r.Restored {
			t.Errorf("%s: cold start instead of durable restore", r.Beacon)
		}
		if r.Quarantined {
			t.Errorf("%s: wrongly quarantined", r.Beacon)
		}
	}
}

// TestPublicAPIRouter drives the multi-node facade: two loopback fleet
// servers behind locble.NewRouter, a routed batch, a drain, and the
// membership view.
func TestPublicAPIRouter(t *testing.T) {
	store := locble.NewMemStore()
	addrs := make([]string, 2)
	for i := range addrs {
		sys, err := locble.New()
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		fl, err := sys.NewFleet(locble.FleetConfig{
			Session: locble.TrackSessionConfig{SampleRateHz: 8},
			Store:   store,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer fl.Close()
		srv, err := netproto.NewServer("api-node", 0)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		srv.SetFleet(fl)
		addrs[i] = srv.Addr()
	}
	rt, err := locble.NewRouter(addrs, locble.RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx := context.Background()
	var batch []locble.FleetObs
	for _, name := range []string{"api-1", "api-2", "api-3"} {
		for _, o := range fleet.SynthStream(name, 24, 0.5) {
			batch = append(batch, locble.FleetObs{Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
		}
	}
	var results []locble.RouterResult
	results, err = rt.PushBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Beacon, r.Err)
		}
		if r.Degraded {
			t.Fatalf("%s degraded on a healthy cluster", r.Beacon)
		}
	}
	if _, err := rt.Drain(ctx, addrs[0]); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	var sts []locble.RouterNodeStatus = rt.Nodes()
	if len(sts) != 2 || sts[0].State != "drained" || sts[1].State != "up" {
		t.Fatalf("node states = %+v, want [drained up]", sts)
	}
}
