// Lost item: the paper's Fig. 1(a) use case end to end — a beacon tag is
// attached to a lost item somewhere in a cluttered apartment; the user
// measures with an L-shaped walk, then follows LocBLE's navigation
// guidance to the item, re-measuring once on the way (the app's
// "measure" and "navigation" modes, paper Sec. 7.1).
//
// Run with:
//
//	go run ./examples/lostitem
package main

import (
	"fmt"
	"log"
	"math"

	"locble"
)

func main() {
	// The lost keys are behind the sofa, 7.2 m away; a p-LOS partition
	// and a concrete support pillar clutter the signal path.
	const keysX, keysY = 6.5, 3.2
	world := locble.WallsEnv(
		locble.Wall{X1: 3.0, Y1: 0.5, X2: 4.5, Y2: 2.0, Class: locble.PLOS},
		locble.Wall{X1: 5.0, Y1: -1.0, X2: 5.0, Y2: 1.0, Class: locble.NLOS},
	)

	sys, err := locble.New()
	if err != nil {
		log.Fatal(err)
	}

	// --- Measure mode ---------------------------------------------------
	fmt.Println("measure mode: walk 4 m, turn left, walk 4 m ...")
	trace, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "keys", X: keysX, Y: keysY}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		EnvModel:     world,
		Seed:         21,
	})
	if err != nil {
		log.Fatal(err)
	}
	pos, err := sys.Locate(trace, "keys")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  estimate: (%.2f, %.2f) m, confidence %.2f, env %s\n",
		pos.X, pos.Y, pos.Confidence, pos.Environment)
	fmt.Printf("  true error: %.2f m\n\n", math.Hypot(pos.X-keysX, pos.Y-keysY))

	// --- Navigation mode -------------------------------------------------
	// Follow the arrow; after closing most of the distance, re-measure
	// from the new spot for a tighter fix (paper Sec. 7.5: accuracy
	// improves as the observer approaches).
	fmt.Println("navigation mode:")
	nav := sys.Navigator(pos)
	steps := 0
	for !nav.Advise().Arrived && steps < 30 {
		adv := nav.Advise()
		nav.Update(0.7, adv.Bearing)
		steps++
		if adv.Distance < 3.0 {
			break // close enough for a refinement measurement
		}
	}
	curX, curY := nav.Position()
	fmt.Printf("  walked %d steps to (%.2f, %.2f); re-measuring ...\n", steps, curX, curY)

	refTrace, err := locble.Simulate(locble.Scenario{
		Beacons: []locble.BeaconSpec{{Name: "keys", X: keysX, Y: keysY}},
		ObserverPlan: locble.WalkPlan{
			Segments: locble.LShapeWalk(0.6, 2.5, 2.5).Segments,
			StartX:   curX, StartY: curY, StartHeading: 0.6,
		},
		EnvModel: world,
		Seed:     22,
	})
	if err != nil {
		log.Fatal(err)
	}
	refPos, err := sys.Locate(refTrace, "keys")
	if err != nil {
		log.Fatal(err)
	}
	// The refinement is measured in the new frame; project to world.
	nav.Retarget(&locble.Estimate{X: refPos.X, H: refPos.Y}, curX, curY, 0)
	fmt.Printf("  refined estimate (world): (%.2f, %.2f) m\n", nav.Target.X, nav.Target.H)

	for !nav.Advise().Arrived && steps < 60 {
		adv := nav.Advise()
		nav.Update(0.7, adv.Bearing)
		steps++
	}
	fx, fy := nav.Position()
	miss := math.Hypot(fx-keysX, fy-keysY)
	fmt.Printf("  arrived at (%.2f, %.2f) after %d total steps\n", fx, fy, steps)
	fmt.Printf("  final distance to the keys: %.2f m", miss)
	if miss < 2 {
		fmt.Println("  — within arm's reach of the sofa cushion.")
	} else {
		fmt.Println()
	}
}
