// Moving target: locate another person's phone while both people walk
// (paper Sec. 5 "moving target" mode and Sec. 7.4.2). The target phone
// advertises in beacon mode while recording its own motion; after the
// measurement it ships its (RSS, motion) trace bundle to the observer
// over the network — the paper used UPnP; this example runs the real
// UDP-discovery + TCP-exchange protocol over loopback, with the target
// served from a second goroutine standing in for the second phone.
//
// Run with:
//
//	go run ./examples/movingtarget
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"locble"
	"locble/internal/netproto"
)

func main() {
	// --- The world --------------------------------------------------------
	// The target person starts 8 m away at a 20° bearing and strolls
	// north; the observer walks the L-shaped measurement.
	const tx0, ty0 = 7.5, 2.7
	tgtPlan := locble.WalkPlan{
		Segments:     []locble.WalkSegment{{Heading: math.Pi / 2, Distance: 3}},
		StartX:       tx0,
		StartY:       ty0,
		StartHeading: math.Pi / 2,
	}
	trace, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "friend", X: tx0, Y: ty0, Tx: locble.IOSDeviceTx}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4),
		TargetPlan:   &tgtPlan,
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Target side: serve the trace bundle ------------------------------
	// In a real deployment this runs on the target's phone. The bundle
	// carries the target's own RSS log and dead-reckoned motion points.
	srv, err := netproto.NewServer("friend-phone", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	bundle := &netproto.TraceBundle{Device: "friend-phone"}
	for _, p := range trace.TargetIMU.Truth {
		if int(p.T*10)%5 == 0 { // ~2 Hz motion points
			bundle.Motion = append(bundle.Motion, netproto.MotionPoint{T: p.T, X: p.X - tx0, Y: p.Y - ty0})
		}
	}
	srv.SetBundle(bundle)

	// --- Observer side: discover, fetch, locate ---------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	found, err := netproto.Discover(ctx, []string{srv.DiscoveryAddr()})
	if err != nil || len(found) == 0 {
		log.Fatalf("discovery failed: %v (%d found)", err, len(found))
	}
	fmt.Printf("discovered %q at %s\n", found[0].Device, found[0].Addr)
	got, err := netproto.Fetch(ctx, found[0].Addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched trace bundle: %d motion points\n", len(got.Motion))

	sys, err := locble.New()
	if err != nil {
		log.Fatal(err)
	}
	pos, err := sys.Locate(trace, "friend")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfriend's initial position: (%.2f, %.2f) m (truth %.1f, %.1f)\n",
		pos.X, pos.Y, tx0, ty0)
	fmt.Printf("error at initial position: %.2f m\n", math.Hypot(pos.X-tx0, pos.Y-ty0))
	fmt.Printf("confidence: %.2f, environment: %s\n", pos.Confidence, pos.Environment)
	fmt.Println("\n(the paper reports <2.5 m for >50% of moving-target runs — single runs vary)")
}
