// Quickstart: locate one BLE beacon with the LocBLE pipeline.
//
// The simulation substrate plays the role of the physical world: a beacon
// advertises iBeacon frames at 10 Hz, the virtual user walks the paper's
// L-shaped measurement path with a phone, and the pipeline estimates the
// beacon's 2-D position from the recorded RSS and IMU streams.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"locble"
)

func main() {
	// The "world": one beacon 6 m ahead and 3 m to the left of where the
	// user starts, clear line of sight.
	const beaconX, beaconY = 6.0, 3.0

	trace, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "keys", X: beaconX, Y: beaconY}},
		ObserverPlan: locble.LShapeWalk(0, 4, 4), // walk 4 m, turn 90°, walk 4 m
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := locble.New()
	if err != nil {
		log.Fatal(err)
	}

	pos, err := sys.Locate(trace, "keys")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated position : (%.2f, %.2f) m from the starting point\n", pos.X, pos.Y)
	fmt.Printf("estimated range    : %.2f m\n", pos.Range)
	fmt.Printf("confidence         : %.2f\n", pos.Confidence)
	fmt.Printf("environment        : %s (path-loss exponent %.2f)\n", pos.Environment, pos.PathLossExponent)
	fmt.Printf("actual error       : %.2f m\n", math.Hypot(pos.X-beaconX, pos.Y-beaconY))
}
