// Retail shelf: the paper's Fig. 1(b) / Sec. 6 scenario — a store aisle
// where items of the same category carry beacons stocked together on one
// shelf. Locating a single beacon through the racks is noisy; LocBLE's
// clustering calibration recognizes the shelf-mates from their shared
// RSS pattern (DTW segment voting) and averages their estimates into a
// sharper fix.
//
// Run with:
//
//	go run ./examples/retailshelf
package main

import (
	"fmt"
	"log"
	"math"

	"locble"
)

func main() {
	// The shelf: the wanted item plus five same-category items within
	// 0.4 m. A metal rack blocks the direct path for the first half of
	// the walk; another aisle's beacon sits 5 m away.
	const itemX, itemY = 7.0, 3.0
	beacons := []locble.BeaconSpec{
		{Name: "wanted-item", X: itemX, Y: itemY},
		{Name: "shelf-1", X: itemX + 0.3, Y: itemY},
		{Name: "shelf-2", X: itemX, Y: itemY + 0.3},
		{Name: "shelf-3", X: itemX + 0.3, Y: itemY + 0.3},
		{Name: "shelf-4", X: itemX - 0.3, Y: itemY + 0.2},
		{Name: "shelf-5", X: itemX + 0.15, Y: itemY - 0.3},
		{Name: "other-aisle", X: 2.0, Y: 7.5},
	}
	world := locble.WallsEnv(
		locble.Wall{X1: 3, Y1: -2, X2: 3, Y2: 9, Class: locble.NLOS}, // metal rack
	)

	sys, err := locble.New()
	if err != nil {
		log.Fatal(err)
	}

	var singleSum, calSum float64
	used := 0
	const runs = 6
	for seed := int64(1); seed <= runs; seed++ {
		trace, err := locble.Simulate(locble.Scenario{
			Beacons:      beacons,
			ObserverPlan: locble.LShapeWalk(0, 4, 4),
			EnvModel:     world,
			Seed:         seed * 37,
		})
		if err != nil {
			log.Fatal(err)
		}

		single, err := sys.Locate(trace, "wanted-item")
		if err != nil {
			fmt.Printf("run %d: measurement unusable (%v) — walk again\n", seed, err)
			continue
		}
		calibrated, cres, err := sys.LocateCalibrated(trace, "wanted-item")
		if err != nil {
			fmt.Printf("run %d: calibration failed (%v)\n", seed, err)
			continue
		}

		se := math.Hypot(single.X-itemX, single.Y-itemY)
		ce := math.Hypot(calibrated.X-itemX, calibrated.Y-itemY)
		singleSum += se
		calSum += ce
		used++
		joined := 0
		otherAisleJoined := false
		for _, m := range cres.Members {
			if m.Matched && m.Weight > 0 {
				joined++
			}
			if m.Name == "other-aisle" && m.Weight > 0 {
				otherAisleJoined = true
			}
		}
		fmt.Printf("run %d: single %.2f m → clustered %.2f m  (%d members", seed, se, ce, joined)
		if otherAisleJoined {
			fmt.Print(", WARNING other aisle joined")
		}
		fmt.Println(")")
	}
	if used == 0 {
		log.Fatal("no usable runs")
	}
	fmt.Printf("\nmean error: single %.2f m, clustered %.2f m over %d runs\n",
		singleSum/float64(used), calSum/float64(used), used)
	fmt.Println("(paper Fig. 15: clustering roughly halves the error in heavy-blockage aisles)")
}
