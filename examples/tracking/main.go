// Tracking: continuous sliding-window fixes on a beacon while the
// observer keeps walking — the "tracking" in the paper's title. The
// observer patrols a rectangle; the pipeline emits a fix every two
// seconds from the most recent six seconds of RSS + motion data.
//
// Run with:
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math"

	"locble"
)

func main() {
	const beaconX, beaconY = 6.0, 2.0

	// A patrol loop: the observer walks a 6×4 m rectangle around the
	// room, giving the tracker continuously fresh geometry.
	patrol := locble.WalkPlan{Segments: []locble.WalkSegment{
		{Heading: 0, Distance: 6},
		{Heading: math.Pi / 2, Distance: 4},
		{Heading: math.Pi, Distance: 6},
		{Heading: -math.Pi / 2, Distance: 4},
	}}

	trace, err := locble.Simulate(locble.Scenario{
		Beacons:      []locble.BeaconSpec{{Name: "asset-tag", X: beaconX, Y: beaconY}},
		ObserverPlan: patrol,
		EnvModel:     locble.StaticEnv(locble.LOS),
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	sys, err := locble.New()
	if err != nil {
		log.Fatal(err)
	}
	fixes, err := sys.Track(trace, "asset-tag", 8, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-16s %-8s %s\n", "t (s)", "fix (m)", "err (m)", "confidence")
	var sum float64
	for _, f := range fixes {
		e := math.Hypot(f.Position.X-beaconX, f.Position.Y-beaconY)
		sum += e
		fmt.Printf("%-8.1f (%5.2f, %5.2f)   %-8.2f %.2f\n",
			f.T, f.Position.X, f.Position.Y, e, f.Position.Confidence)
	}
	fmt.Printf("\nmean fix error over %d fixes: %.2f m (true position %.1f, %.1f)\n",
		len(fixes), sum/float64(len(fixes)), beaconX, beaconY)
}
