# locble — reproduction of "Locating and Tracking BLE Beacons with
# Smartphones" (CoNEXT 2017). Stdlib-only; everything works offline.

GO ?= go
# Per-target budget for `make fuzz` (Go fuzzing flag syntax, e.g. 30s).
FUZZTIME ?= 10s
# Chaos-soak duration for `make soak` (parsed by TestChaosSoak).
SOAKTIME ?= 30s

.PHONY: all build test race soak fuzz cover bench benchgate ci fmtcheck lint vuln microbench repro examples clean help

all: build test race soak

build:
	$(GO) build ./...
	$(GO) vet ./...

# Fail on any file gofmt would rewrite (CI runs this before building).
fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Static analysis: go vet always; staticcheck when it is on PATH (the
# CI lint job installs it — offline dev environments may not have it,
# and the target must not fail on its absence).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi

# Known-vulnerability scan: govulncheck when it is on PATH (the CI vuln
# job installs a pinned release — offline dev environments may not have
# it, and the target must not fail on its absence; same gating as
# staticcheck in `make lint`).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped (CI runs it)"; \
	fi

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Extended chaos soak of the serving path (race-enabled): fault-injected
# publishers, connection churn, garbage frames, forced handler panics,
# then a graceful drain — asserts zero goroutine leaks and consistent
# lifecycle metrics. The fleet soak hammers the sharded session manager
# the same way: fault-injected batched ingest, silence-driven
# evict/restore churn, canceled pushes. Both tests run for <1 s inside
# `make test`; this target stretches them to $(SOAKTIME) each.
# The durability soak chains disk faults (short writes, fsync errors,
# ENOSPC) under a durable-store fleet with repeated crash-and-recover
# cycles on the same disk image.
soak:
	LOCBLE_SOAK=$(SOAKTIME) $(GO) test -race -count=1 -run='^TestChaosSoak$$' -v ./internal/netproto/
	LOCBLE_SOAK=$(SOAKTIME) $(GO) test -race -count=1 -run='^TestFleetChaosSoak$$' -v ./internal/fleet/
	LOCBLE_SOAK=$(SOAKTIME) $(GO) test -race -count=1 -run='^TestDurableChaosSoak$$' -v ./internal/fleet/

# Short coverage-guided shake of every fuzz target (decoder robustness:
# BLE deframing/AD parsing/beacon decoding, netproto frame reading,
# trace-file loading, durable WAL replay).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDeframe -fuzztime=$(FUZZTIME) ./internal/ble/
	$(GO) test -run='^$$' -fuzz=FuzzParseADStructures -fuzztime=$(FUZZTIME) ./internal/ble/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeBeacon -fuzztime=$(FUZZTIME) ./internal/ble/
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./internal/netproto/
	$(GO) test -run='^$$' -fuzz=FuzzBinaryFrame -fuzztime=$(FUZZTIME) ./internal/netproto/
	$(GO) test -run='^$$' -fuzz=FuzzLoadTrace -fuzztime=$(FUZZTIME) ./internal/sim/
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) ./internal/durable/

# Total-statement-coverage floor for `make cover`: the measured total
# when the floor was last set (84.9%) minus a 2-point slack. Raise it
# when coverage meaningfully improves; a PR that drops the total below
# the floor fails CI's test job.
COVER_FLOOR ?= 82.9

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$NF); print $$NF}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# Instrumented end-to-end pipeline benchmark: stage-level latencies,
# estimate error and allocation deltas from the metrics layer, plus the
# IRLS and fleet-serving sections, as machine-readable JSON.
# BENCH_pr2.json and BENCH_pr4.json are committed historical baselines —
# BENCH_pr4.json is what the gate compares against; regenerate it (and
# commit the result) only when a deliberate change moves the numbers.
bench:
	$(GO) run ./cmd/locble-bench -json BENCH_pr4.json

# Allowed fractional wall-clock regression for `make benchgate`. CI
# overrides this (hosted runners are slower and noisier than the
# machine that recorded the baseline); allocation and accuracy gates
# always run at the benchgate defaults.
BENCH_WALL_TOL ?= 0.10

# Run the benchmark and gate it against the committed baseline: exits
# nonzero on a wall regression beyond $(BENCH_WALL_TOL), >10% allocs/op
# regression, or >5% accuracy regression. BENCH_pr4.json carries the
# IRLS and fleet sections, so those gates are armed; the fresh report
# goes to BENCH_gate.json (a derived file, removed by `make clean`).
benchgate:
	$(GO) run ./cmd/benchgate -baseline BENCH_pr4.json -out BENCH_gate.json -wall-tol $(BENCH_WALL_TOL)

# The full CI pipeline, byte-identical to what .github/workflows/ci.yml
# runs — so "it passed make ci" means it passes CI. (Nightly long
# soak/fuzz runs live in .github/workflows/nightly.yml.)
ci: fmtcheck build lint vuln test race fuzz soak cover benchgate

# One testing.B target per paper table/figure plus pipeline micro-benches.
microbench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's full evaluation (Sec. 7 tables and figures,
# ablations, extensions) as text rows/series.
repro:
	$(GO) run ./cmd/locble-bench

repro-quick:
	$(GO) run ./cmd/locble-bench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lostitem
	$(GO) run ./examples/movingtarget
	$(GO) run ./examples/retailshelf
	$(GO) run ./examples/tracking

# Committed BENCH_*.json baselines are history, not build products —
# clean only removes derived files.
clean:
	rm -f cover.out BENCH_gate.json

help:
	@echo "make all      - build + vet + test + race + chaos soak (the full gate)"
	@echo "make ci       - the full CI pipeline (fmtcheck .. benchgate), same as GitHub Actions"
	@echo "make build    - compile and vet every package"
	@echo "make fmtcheck - fail if gofmt would rewrite any file"
	@echo "make lint     - go vet + staticcheck (skipped when not installed)"
	@echo "make vuln     - govulncheck ./... (skipped when not installed)"
	@echo "make test     - run the test suite (shuffled order)"
	@echo "make race     - run the test suite under the race detector"
	@echo "make soak     - $(SOAKTIME) race-enabled chaos soaks of the serving path and the fleet"
	@echo "make fuzz     - short fuzz pass over all fuzz targets (FUZZTIME=$(FUZZTIME) each)"
	@echo "make cover    - coverage summary, enforcing the $(COVER_FLOOR)% total floor"
	@echo "make bench    - instrumented pipeline benchmark -> BENCH_pr4.json"
	@echo "make benchgate - bench + regression gate against BENCH_pr4.json"
	@echo "make microbench - all go-test benchmarks (one per paper table/figure)"
	@echo "make repro    - regenerate the paper's evaluation (repro-quick: reduced trials)"
	@echo "make examples - run every example program"
