# locble — reproduction of "Locating and Tracking BLE Beacons with
# Smartphones" (CoNEXT 2017). Stdlib-only; everything works offline.

GO ?= go

.PHONY: all build test race cover bench repro examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

# One testing.B target per paper table/figure plus pipeline micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's full evaluation (Sec. 7 tables and figures,
# ablations, extensions) as text rows/series.
repro:
	$(GO) run ./cmd/locble-bench

repro-quick:
	$(GO) run ./cmd/locble-bench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lostitem
	$(GO) run ./examples/movingtarget
	$(GO) run ./examples/retailshelf
	$(GO) run ./examples/tracking

clean:
	rm -f cover.out
