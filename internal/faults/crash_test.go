package faults_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"locble/internal/core"
	"locble/internal/durable"
	"locble/internal/faults"
)

// The crash matrix kills the durable store at EVERY write boundary of
// a fixed workload and proves the recovery invariant at each one:
//
//   - every checkpoint acknowledged durable (Save returned nil on a
//     sync store) is restored bit-exactly after the crash;
//   - a recovered value is never corrupt-but-accepted: it is always a
//     value some Save actually wrote, never an invention;
//   - the only damage a pure crash can inflict is a torn WAL tail —
//     recovery must never quarantine mid-file regions without bit rot;
//   - the store reopens without error at every crash point, and the
//     repair sticks (a second reopen is clean).

// bstate is one beacon's observable store state: present with exact
// bytes, or absent.
type bstate struct {
	present bool
	val     string
}

// tracker accumulates, per beacon, the set of states recovery is
// allowed to observe: the last acknowledged state plus the state after
// each attempted (possibly failed or unflushed) operation since.
type tracker struct {
	valid map[string]map[bstate]bool
}

func newTracker(beacons []string) *tracker {
	tr := &tracker{valid: make(map[string]map[bstate]bool)}
	for _, b := range beacons {
		tr.valid[b] = map[bstate]bool{{}: true} // initial state: absent
	}
	return tr
}

// attempt records a state an in-flight operation may leave behind.
func (tr *tracker) attempt(b string, s bstate) { tr.valid[b][s] = true }

// acked collapses the valid set: once an operation is acknowledged
// durable, no earlier state may ever be observed again.
func (tr *tracker) acked(b string, s bstate) {
	tr.valid[b] = map[bstate]bool{s: true}
}

func ckp(b string, seq int) *core.SessionCheckpoint {
	return &core.SessionCheckpoint{
		Version:    core.SessionCheckpointVersion,
		Beacon:     b,
		Pushed:     int64(seq),
		GammaShift: 0.125 * float64(seq),
	}
}

func mustJSON(t *testing.T, cp *core.SessionCheckpoint) string {
	t.Helper()
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

var matrixBeacons = []string{"mx-a", "mx-b", "mx-c", "mx-d"}

// runWorkload drives a fixed script of saves and deletes against a
// store over fs, pressing on through failures (a dying disk must not
// stop the workload — that is the point), and returns the tracker of
// recovery-legal states. SnapshotEvery is small so the script crosses
// several snapshot rotations, putting crash points inside the
// write-tmp/fsync/rename/syncdir/truncate sequence too.
func runWorkload(t *testing.T, fs durable.FS) *tracker {
	t.Helper()
	tr := newTracker(matrixBeacons)
	st, err := durable.Open("", &durable.Options{FS: fs, Shards: 2, SnapshotEvery: 4})
	if err != nil {
		return tr // disk died during Open: nothing ran
	}
	seq := 0
	save := func(b string) {
		seq++
		cp := ckp(b, seq)
		s := bstate{present: true, val: mustJSON(t, cp)}
		tr.attempt(b, s)
		if st.Save(b, cp) == nil {
			tr.acked(b, s)
		}
	}
	del := func(b string) {
		s := bstate{}
		tr.attempt(b, s)
		if st.Delete(b) == nil {
			tr.acked(b, s)
		}
	}
	// The script: interleaved saves, overwrites, deletes and re-saves
	// across both shards, long enough to rotate snapshots repeatedly.
	for round := 0; round < 5; round++ {
		for _, b := range matrixBeacons {
			save(b)
		}
		save(matrixBeacons[round%len(matrixBeacons)]) // hot overwrite
		if round%2 == 1 {
			del(matrixBeacons[(round+1)%len(matrixBeacons)])
		}
	}
	save(matrixBeacons[0])
	st.Close() // may fail on a dead disk; the crash image decides what survived
	return tr
}

// validate opens the crash image and checks every beacon's recovered
// state against the tracker, plus the damage-accounting rules.
func validate(t *testing.T, label string, img *durable.MemFS, tr *tracker) {
	t.Helper()
	st, err := durable.Open("", &durable.Options{FS: img, Shards: 2, SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("%s: store unopenable after crash: %v", label, err)
	}
	rec := st.RecoveryStats()
	if rec.Quarantined != 0 {
		t.Fatalf("%s: recovery quarantined %d mid-file regions — a pure crash may only tear the tail (%+v)",
			label, rec.Quarantined, rec)
	}
	for _, b := range matrixBeacons {
		cp, found, err := st.Load(b)
		if err != nil {
			t.Fatalf("%s: Load(%s): %v", label, b, err)
		}
		got := bstate{present: found}
		if found {
			got.val = mustJSON(t, cp)
		}
		if !tr.valid[b][got] {
			t.Fatalf("%s: %s recovered to an illegal state (present=%v val=%s); legal: %v",
				label, b, got.present, got.val, tr.valid[b])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("%s: Close: %v", label, err)
	}
	// The repair must stick: a second open of the same image is clean.
	st2, err := durable.Open("", &durable.Options{FS: img, Shards: 2, SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("%s: second open: %v", label, err)
	}
	if rec2 := st2.RecoveryStats(); rec2.TornTails != 0 || rec2.Quarantined != 0 {
		t.Fatalf("%s: damage survived the repair: %+v", label, rec2)
	}
	st2.Close()
}

func TestCrashMatrix(t *testing.T) {
	// Size the matrix: count the workload's mutating disk operations on
	// an unarmed filesystem.
	probe := durable.NewMemFS()
	runWorkload(t, probe)
	total := probe.Ops()
	if total < 40 {
		t.Fatalf("workload only performs %d disk ops — matrix too small to mean anything", total)
	}
	t.Logf("crash matrix: %d write boundaries × {strict, lossy} images", total)

	for k := int64(0); k <= total; k++ {
		mfs := durable.NewMemFS()
		mfs.FailAfter(k)
		tr := runWorkload(t, mfs)
		// Strict power cut: unsynced bytes are all gone.
		validate(t, fmt.Sprintf("op %d/strict", k), mfs.CrashImage(nil), tr)
		// Write-back cut: a deterministic prefix of unsynced appends
		// leaked to the platter — the torn-tail generator.
		validate(t, fmt.Sprintf("op %d/lossy", k), mfs.CrashImage(func(unsynced int) int {
			return (unsynced*2 + 3) % (unsynced + 1)
		}), tr)
	}
}

// TestDiskFaultRecoveryProperty runs the store under randomized disk
// fault injection — short writes, fsync errors, silent bit rot, rename
// failures, ENOSPC — across many seeds, then crashes and recovers.
// Three properties:
//
//   - a recovered value is always one some Save wrote, never an
//     invention (a bit-rotted record must be quarantined, not
//     accepted);
//   - absent bit rot, the recovered state is tracker-legal: the last
//     acknowledged state or one left by a later attempted operation
//     (a failed Save's bytes can become durable through a subsequent
//     healing snapshot — that is legal, regression below the ack is
//     not);
//   - when bit rot DOES push recovery outside the legal set (an acked
//     record rotted on the platter), recovery must have reported the
//     damage in its quarantined/torn counts — zero silent corruption.
func TestDiskFaultRecoveryProperty(t *testing.T) {
	cfg := faults.DiskFaults{
		ShortWrite: 0.05,
		SyncErr:    0.05,
		BitRot:     0.02,
		RenameFail: 0.05,
		NoSpace:    0.03,
	}
	opened := 0
	for seed := int64(0); seed < 40; seed++ {
		mfs := durable.NewMemFS()
		dfs := faults.NewDiskFS(mfs, seed, cfg)
		st, err := durable.Open("", &durable.Options{FS: dfs, Shards: 2, SnapshotEvery: 4})
		if err != nil {
			// An injected fault hit store creation; legitimate, try the
			// next seed.
			if !errors.Is(err, faults.ErrInjectedDisk) {
				t.Fatalf("seed %d: Open failed outside injection: %v", seed, err)
			}
			continue
		}
		opened++

		tr := newTracker(matrixBeacons)
		allVals := make(map[string]map[string]bool) // every value ever written
		seq := 0
		for round := 0; round < 6; round++ {
			for _, b := range matrixBeacons {
				seq++
				cp := ckp(b, seq)
				val := mustJSON(t, cp)
				if allVals[b] == nil {
					allVals[b] = make(map[string]bool)
				}
				allVals[b][val] = true
				s := bstate{present: true, val: val}
				tr.attempt(b, s)
				if st.Save(b, cp) == nil {
					tr.acked(b, s)
				}
			}
			if round%3 == 2 {
				b := matrixBeacons[round%len(matrixBeacons)]
				tr.attempt(b, bstate{})
				if st.Delete(b) == nil {
					tr.acked(b, bstate{})
				}
			}
		}
		st.Close()

		img := mfs.CrashImage(nil)
		st2, err := durable.Open("", &durable.Options{FS: img, Shards: 2, SnapshotEvery: 4})
		if err != nil {
			t.Fatalf("seed %d: recovery open (healthy disk): %v", seed, err)
		}
		rec := st2.RecoveryStats()
		hurt := dfs.Stats()
		for _, b := range matrixBeacons {
			cp, found, err := st2.Load(b)
			if err != nil {
				t.Fatalf("seed %d: Load(%s): %v", seed, b, err)
			}
			got := bstate{present: found}
			if found {
				got.val = mustJSON(t, cp)
				if !allVals[b][got.val] {
					t.Fatalf("seed %d: %s recovered a value never written: %s", seed, b, got.val)
				}
			}
			if tr.valid[b][got] {
				continue // legal: acked state or a later attempted one
			}
			// Recovery regressed below the acknowledged state. The only
			// legal cause in this fault set is silent bit rot, and
			// recovery must have reported the damage rather than
			// absorbing it.
			if hurt.BitRots == 0 {
				t.Fatalf("seed %d: %s recovered illegal state (present=%v val=%s) with no bit rot injected (faults: %+v, recovery: %+v)",
					seed, b, got.present, got.val, hurt, rec)
			}
			if rec.Quarantined == 0 && rec.TornTails == 0 {
				t.Fatalf("seed %d: %s lost acked state silently — recovery reported no damage (%+v)",
					seed, b, rec)
			}
		}
		st2.Close()
	}
	if opened < 20 {
		t.Fatalf("only %d/40 seeds got past Open — fault rates too hot for the property to bite", opened)
	}
}
