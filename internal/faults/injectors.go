package faults

import (
	"math"

	"locble/internal/ble"
	"locble/internal/imu"
	"locble/internal/rng"
	"locble/internal/sim"
)

// ---------------------------------------------------------------------
// RSS loss
// ---------------------------------------------------------------------

// DropoutBurst removes every observation of every beacon inside
// [Start, Start+Duration) — the sustained loss a blocked link or a
// de-prioritised scan produces.
type DropoutBurst struct {
	Start, Duration float64
}

func (f DropoutBurst) Name() string { return fname("dropout-burst(%.1fs@%.1fs)", f.Duration, f.Start) }

func (f DropoutBurst) Apply(tr *sim.Trace, _ *rng.Source) {
	end := f.Start + f.Duration
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		out := obs[:0]
		for _, o := range obs {
			if o.T < f.Start || o.T >= end {
				out = append(out, o)
			}
		}
		return out
	})
}

// ScannerStall models the OS suspending the BLE scanner (duty-cycled
// background scanning, paper Sec. 2.2): a burst dropout plus a stretch of
// IMU samples the phone kept recording — i.e. only the radio stalls.
// It is DropoutBurst under a name that documents intent.
type ScannerStall struct {
	Start, Duration float64
}

func (f ScannerStall) Name() string { return fname("scanner-stall(%.1fs@%.1fs)", f.Duration, f.Start) }

func (f ScannerStall) Apply(tr *sim.Trace, src *rng.Source) {
	DropoutBurst(f).Apply(tr, src)
}

// RandomDrop discards each observation independently with probability
// Prob — i.i.d. advertising-packet loss.
type RandomDrop struct {
	Prob float64
}

func (f RandomDrop) Name() string { return fname("random-drop(%.0f%%)", f.Prob*100) }

func (f RandomDrop) Apply(tr *sim.Trace, src *rng.Source) {
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		out := obs[:0]
		for _, o := range obs {
			if !s.Bool(f.Prob) {
				out = append(out, o)
			}
		}
		return out
	})
}

// ---------------------------------------------------------------------
// RSS value corruption
// ---------------------------------------------------------------------

// NonFiniteRSSI replaces each RSSI independently with probability Prob by
// NaN, +Inf or −Inf (a driver bug or a failed fixed-point conversion on
// the HCI boundary).
type NonFiniteRSSI struct {
	Prob float64
}

func (f NonFiniteRSSI) Name() string { return fname("non-finite-rssi(%.0f%%)", f.Prob*100) }

func (f NonFiniteRSSI) Apply(tr *sim.Trace, src *rng.Source) {
	bad := [3]float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			if s.Bool(f.Prob) {
				obs[i].RSSI = bad[s.Intn(3)]
			}
		}
		return obs
	})
}

// ClipRSSI clips every RSSI into [Floor, Ceil] — receiver front-end
// saturation near the beacon (rail at Ceil) or a reporting floor far from
// it (rail at Floor).
type ClipRSSI struct {
	Floor, Ceil float64
}

func (f ClipRSSI) Name() string { return fname("clip-rssi[%.0f,%.0f]", f.Floor, f.Ceil) }

func (f ClipRSSI) Apply(tr *sim.Trace, _ *rng.Source) {
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			if obs[i].RSSI > f.Ceil {
				obs[i].RSSI = f.Ceil
			}
			if obs[i].RSSI < f.Floor {
				obs[i].RSSI = f.Floor
			}
		}
		return obs
	})
}

// ImpulseBurst spikes individual readings inside [Start, Start+Duration)
// by +DeltaDB with probability Prob each — impulsive interference from a
// co-channel burst source (Wi-Fi beacon frames, a microwave oven). Unlike
// a coherent environment change, the spikes are isolated: the series
// bulk stays honest, which is exactly the regime M-estimators are for.
// Duration <= 0 means the whole trace; zero Prob and DeltaDB take
// defaults (20%, +20 dB).
type ImpulseBurst struct {
	Start, Duration float64
	Prob            float64
	DeltaDB         float64
}

func (f ImpulseBurst) Name() string {
	prob, delta := f.params()
	return fname("impulse-burst(%.0f%%,%+.0fdB)", prob*100, delta)
}

func (f ImpulseBurst) params() (float64, float64) {
	prob, delta := f.Prob, f.DeltaDB
	if prob <= 0 {
		prob = 0.2
	}
	if delta == 0 {
		delta = 20
	}
	return prob, delta
}

func (f ImpulseBurst) Apply(tr *sim.Trace, src *rng.Source) {
	prob, delta := f.params()
	end := f.Start + f.Duration
	if f.Duration <= 0 {
		end = math.Inf(1)
	}
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			if obs[i].T >= f.Start && obs[i].T < end && s.Bool(prob) {
				obs[i].RSSI += delta
			}
		}
		return obs
	})
}

// BeaconClone models an adversarial (or misconfigured) second transmitter
// squatting a beacon's identity from a different position: inside
// [Start, Start+Duration) a cloned reading OffsetDB away is interleaved
// between each pair of genuine reports. The resulting rapid sign-
// alternating RSSI deltas are physically impossible for a single source —
// the signature the clone detector keys on. Duration <= 0 means the whole
// trace; zero OffsetDB defaults to −25 dB (a clone further away).
type BeaconClone struct {
	Start, Duration float64
	OffsetDB        float64
}

func (f BeaconClone) Name() string { return fname("beacon-clone(%+.0fdB)", f.offset()) }

func (f BeaconClone) offset() float64 {
	if f.OffsetDB == 0 {
		return -25
	}
	return f.OffsetDB
}

func (f BeaconClone) Apply(tr *sim.Trace, _ *rng.Source) {
	off := f.offset()
	end := f.Start + f.Duration
	if f.Duration <= 0 {
		end = math.Inf(1)
	}
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		out := make([]sim.BeaconObservation, 0, 2*len(obs))
		for i, o := range obs {
			out = append(out, o)
			if i+1 >= len(obs) {
				continue
			}
			mid := (o.T + obs[i+1].T) / 2
			if mid < f.Start || mid >= end {
				continue
			}
			c := o
			c.T = mid
			c.RSSI = o.RSSI + off
			out = append(out, c)
		}
		return out
	})
}

// TxPowerDecay ramps every reading down by RatePerS dB per second past
// Start — a beacon's coin cell dying, so its advertised TX power drifts
// away from the calibration anchor. One-shot fits absorb the skew into
// Γ; long-running sessions are expected to notice the drift and
// re-anchor their Γ band.
type TxPowerDecay struct {
	Start    float64
	RatePerS float64
}

func (f TxPowerDecay) Name() string {
	return fname("txpower-decay(%.1fdB/s@%.1fs)", f.RatePerS, f.Start)
}

func (f TxPowerDecay) Apply(tr *sim.Trace, _ *rng.Source) {
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			if dt := obs[i].T - f.Start; dt > 0 {
				obs[i].RSSI -= f.RatePerS * dt
			}
		}
		return obs
	})
}

// OutlierRun shifts every reading inside [Start, Start+Duration) by
// DeltaDB — a coordinated, contiguous outlier run (a body blocking the
// path, or deliberate jamming) rather than isolated impulses. Coordinated
// runs are the hard case for squared-loss regression: the corrupted
// stretch is self-consistent, so only its disagreement with the rest of
// the walk gives it away.
type OutlierRun struct {
	Start, Duration float64
	DeltaDB         float64
}

func (f OutlierRun) Name() string {
	return fname("outlier-run(%+.0fdB,%.1fs@%.1fs)", f.DeltaDB, f.Duration, f.Start)
}

func (f OutlierRun) Apply(tr *sim.Trace, _ *rng.Source) {
	end := f.Start + f.Duration
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			if obs[i].T >= f.Start && obs[i].T < end {
				obs[i].RSSI += f.DeltaDB
			}
		}
		return obs
	})
}

// ---------------------------------------------------------------------
// Report stream anomalies
// ---------------------------------------------------------------------

// DuplicateReports re-delivers each observation with probability Prob —
// duplicated HCI advertising reports (seen on stacks that forward both
// the ADV_IND and its SCAN_RSP sighting).
type DuplicateReports struct {
	Prob float64
}

func (f DuplicateReports) Name() string { return fname("duplicates(%.0f%%)", f.Prob*100) }

func (f DuplicateReports) Apply(tr *sim.Trace, src *rng.Source) {
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		out := make([]sim.BeaconObservation, 0, len(obs))
		for _, o := range obs {
			out = append(out, o)
			if s.Bool(f.Prob) {
				out = append(out, o)
			}
		}
		return out
	})
}

// ReorderReports shuffles observations inside consecutive windows of
// Window samples — out-of-order delivery through a buffered scan queue.
type ReorderReports struct {
	Window int
}

func (f ReorderReports) Name() string { return fname("reorder(win=%d)", f.Window) }

func (f ReorderReports) Apply(tr *sim.Trace, src *rng.Source) {
	w := f.Window
	if w < 2 {
		w = 4
	}
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		for lo := 0; lo < len(obs); lo += w {
			hi := lo + w
			if hi > len(obs) {
				hi = len(obs)
			}
			perm := s.Perm(hi - lo)
			tmp := make([]sim.BeaconObservation, hi-lo)
			for i, p := range perm {
				tmp[i] = obs[lo+p]
			}
			copy(obs[lo:hi], tmp)
		}
		return obs
	})
}

// ClockSkew shifts and stretches every observation timestamp:
// t' = t + Offset + Drift·t. A skewed BLE clock desynchronises the RSS
// series from the IMU timeline the motion track is built on.
type ClockSkew struct {
	Offset float64 // seconds
	Drift  float64 // seconds of skew per second
}

func (f ClockSkew) Name() string { return fname("clock-skew(%+.1fs,%.3f)", f.Offset, f.Drift) }

func (f ClockSkew) Apply(tr *sim.Trace, _ *rng.Source) {
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			obs[i].T += f.Offset + f.Drift*obs[i].T
		}
		return obs
	})
}

// JitterTimestamps adds zero-mean Gaussian noise (σ = Sigma seconds) to
// each observation timestamp, breaking monotonicity when Sigma exceeds
// the inter-report interval.
type JitterTimestamps struct {
	Sigma float64
}

func (f JitterTimestamps) Name() string { return fname("time-jitter(%.2fs)", f.Sigma) }

func (f JitterTimestamps) Apply(tr *sim.Trace, src *rng.Source) {
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		for i := range obs {
			obs[i].T = math.Max(0, obs[i].T+s.Normal(0, f.Sigma))
		}
		return obs
	})
}

// TruncateWindow keeps only the first Keep seconds of the measurement —
// the user gave up mid-walk. Both the RSS streams and the IMU trace are
// cut so the trace stays internally consistent.
type TruncateWindow struct {
	Keep float64
}

func (f TruncateWindow) Name() string { return fname("truncate(%.1fs)", f.Keep) }

func (f TruncateWindow) Apply(tr *sim.Trace, _ *rng.Source) {
	eachBeacon(tr, rng.New(0), func(obs []sim.BeaconObservation, _ *rng.Source) []sim.BeaconObservation {
		out := obs[:0]
		for _, o := range obs {
			if o.T <= f.Keep {
				out = append(out, o)
			}
		}
		return out
	})
	cutIMU := func(t *imu.Trace) {
		if t == nil {
			return
		}
		keep := t.Samples[:0]
		for _, s := range t.Samples {
			if s.T <= f.Keep {
				keep = append(keep, s)
			}
		}
		t.Samples = keep
		if t.Duration > f.Keep {
			t.Duration = f.Keep
		}
	}
	cutIMU(tr.IMU)
	cutIMU(tr.TargetIMU)
	if tr.Duration > f.Keep {
		tr.Duration = f.Keep
	}
}

// ---------------------------------------------------------------------
// IMU faults
// ---------------------------------------------------------------------

// IMUDropout removes every IMU sample inside [Start, Start+Duration) —
// the OS throttling sensor delivery while the app is backgrounded.
type IMUDropout struct {
	Start, Duration float64
}

func (f IMUDropout) Name() string { return fname("imu-dropout(%.1fs@%.1fs)", f.Duration, f.Start) }

func (f IMUDropout) Apply(tr *sim.Trace, _ *rng.Source) {
	if tr.IMU == nil {
		return
	}
	end := f.Start + f.Duration
	keep := tr.IMU.Samples[:0]
	for _, s := range tr.IMU.Samples {
		if s.T < f.Start || s.T >= end {
			keep = append(keep, s)
		}
	}
	tr.IMU.Samples = keep
}

// IMUSaturate clips each accelerometer axis to ±MaxAccel m/s² and each
// gyroscope axis to ±MaxGyro rad/s — a low-range MEMS part railing under
// gait impacts. Zero limits leave that sensor untouched.
type IMUSaturate struct {
	MaxAccel, MaxGyro float64
}

func (f IMUSaturate) Name() string {
	return fname("imu-saturate(a=%.0f,g=%.0f)", f.MaxAccel, f.MaxGyro)
}

func (f IMUSaturate) Apply(tr *sim.Trace, _ *rng.Source) {
	if tr.IMU == nil {
		return
	}
	clip := func(v, lim float64) float64 {
		if lim <= 0 {
			return v
		}
		if v > lim {
			return lim
		}
		if v < -lim {
			return -lim
		}
		return v
	}
	for i := range tr.IMU.Samples {
		s := &tr.IMU.Samples[i]
		for a := 0; a < 3; a++ {
			s.Acc[a] = clip(s.Acc[a], f.MaxAccel)
			s.Gyro[a] = clip(s.Gyro[a], f.MaxGyro)
		}
	}
}

// ---------------------------------------------------------------------
// Byte-level PDU corruption
// ---------------------------------------------------------------------

// CorruptPDU replays each observation through the byte-level BLE codec
// with random bit flips (per-bit probability BitProb): the advertising
// frame is rebuilt, corrupted on the air, and fed to the de-whitening /
// CRC / decode path. Observations whose corrupted frame the decoder
// rejects are lost, exactly as a real CRC-protected link loses them; the
// occasional frame whose corruption the CRC misses is kept, as it would
// be in the field. The injector therefore exercises the ble decoder on
// every application.
type CorruptPDU struct {
	BitProb float64
}

func (f CorruptPDU) Name() string { return fname("corrupt-pdu(%.2f%%/bit)", f.BitProb*100) }

func (f CorruptPDU) Apply(tr *sim.Trace, src *rng.Source) {
	pdu := ble.AdvPDU{
		Type: ble.PDUAdvNonconnInd,
		AdvA: ble.AddressFromUint64(0xC0FA017ED1),
		Data: []byte{0x02, 0x01, 0x06},
	}
	eachBeacon(tr, src, func(obs []sim.BeaconObservation, s *rng.Source) []sim.BeaconObservation {
		out := obs[:0]
		for _, o := range obs {
			ch := o.Channel
			if ch < 37 || ch > 39 {
				ch = 37
			}
			frame, err := ble.Frame(&pdu, ch)
			if err != nil {
				out = append(out, o) // codec unavailable: pass through
				continue
			}
			FlipBits(frame, f.BitProb, s)
			if _, err := ble.Deframe(frame, ch); err == nil {
				out = append(out, o)
			}
		}
		return out
	})
}

// FlipBits flips each bit of buf independently with probability p. It is
// exported so fuzz and matrix tests can corrupt frames directly.
func FlipBits(buf []byte, p float64, src *rng.Source) {
	for i := range buf {
		for b := 0; b < 8; b++ {
			if src.Bool(p) {
				buf[i] ^= 1 << b
			}
		}
	}
}
