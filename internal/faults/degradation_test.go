package faults_test

import (
	"errors"
	"math"
	"testing"

	"locble/internal/core"
	"locble/internal/estimate"
	"locble/internal/faults"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
)

// The degradation matrix: every adversarial injector runs against every
// rung of the degradation ladder, under the robust (Huber) estimator.
// The contract for each cell is "bounded or honest": either the mean
// localization error stays within 2x the clean baseline for that rung,
// or the pipeline reports Degraded/Rejected with a reason that names the
// impairment — never a confident-looking fix that is silently wrong.
//
// One documented exception: a slow coherent TX-power decay is
// unidentifiable on a single walk — the downward ramp is collinear with
// walking away from the beacon, so the one-shot fit absorbs it into the
// path-loss exponent with an in-band Γ and clean residuals. Its defense
// is longitudinal: the session-level Γ-drift detector, which that cell
// asserts instead of the one-shot bound.

type hostileCase struct {
	name  string
	fault faults.Fault
	// reason, when set, must accompany any degraded/rejected outcome.
	reason core.HealthReason
	// alwaysFlagged: the defense is expected to fire on every seed, so a
	// clean bill of health is itself a failure. Flagged cells are exempt
	// from the accuracy bound (a flagged fix is honest by definition;
	// the clone's 50% contamination is past any M-estimator's breakdown
	// point, which is exactly why it must be flagged).
	alwaysFlagged bool
	// drift: the impairment is only detectable longitudinally; the cell
	// asserts the session-level Γ-drift recalibration instead of the
	// one-shot accuracy bound.
	drift bool
}

func hostileCases() []hostileCase {
	return []hostileCase{
		{name: "impulse-burst",
			fault: faults.ImpulseBurst{Start: 2, Duration: 4, Prob: 0.2, DeltaDB: 20}},
		{name: "beacon-clone",
			fault:  faults.BeaconClone{OffsetDB: -25},
			reason: core.ReasonBeaconAnomaly, alwaysFlagged: true},
		{name: "txpower-decay",
			fault: faults.TxPowerDecay{Start: 1, RatePerS: 1.5}, drift: true},
		{name: "outlier-run",
			fault: faults.OutlierRun{Start: 3, Duration: 1.5, DeltaDB: 18}},
	}
}

// robustEngine builds the pipeline with the IRLS Huber loss — hostile
// data is exactly what the robust mode exists for.
func robustEngine(t *testing.T) *core.Engine {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Estimator.Loss = estimate.LossHuber
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// candErr is the fix error against the true beacon at (6,3), taking the
// best mirror candidate: hostile data may flip the side-ambiguity
// resolution, which is an ambiguity outcome, not a range error.
func candErr(est *estimate.Estimate) float64 {
	best := math.Hypot(est.X-6, est.H-3)
	for _, c := range est.Candidates {
		if d := math.Hypot(c.X-6, c.H-3); d < best {
			best = d
		}
	}
	return best
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// honestOutcome reports whether (h, err) is an honest degraded/rejected
// verdict, failing the test if a required reason is missing.
func honestOutcome(t *testing.T, tc hostileCase, h core.Health, err error) bool {
	t.Helper()
	if err != nil {
		var re *core.RejectedError
		if !errors.As(err, &re) {
			t.Fatalf("non-rejection error escaped the pipeline: %v", err)
		}
		h = re.Health
	}
	if h.Status == core.HealthOK {
		return false
	}
	if tc.reason != "" && !h.Has(tc.reason) {
		t.Errorf("degraded/rejected health %s is missing reason %s", h, tc.reason)
	}
	return true
}

// healthOf tolerates the nil measurement a rejection returns.
func healthOf(m *core.Measurement) core.Health {
	if m == nil {
		return core.Health{}
	}
	return m.Health
}

// TestDegradationMatrixFullRung: the top rung (full RSS+IMU fusion).
// Here health is usually OK, so the accuracy bound carries the weight:
// the robust estimator must keep the mean error within 2x the clean
// baseline, unless the pipeline honestly degrades instead.
func TestDegradationMatrixFullRung(t *testing.T) {
	eng := robustEngine(t)

	var cleanErrs []float64
	for seed := int64(1); seed <= 3; seed++ {
		tr, err := sim.Run(matrixScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.Locate(tr, "target")
		if err != nil {
			t.Fatalf("clean seed %d rejected: %v", seed, err)
		}
		cleanErrs = append(cleanErrs, candErr(m.Est))
	}
	clean := mean(cleanErrs)
	t.Logf("clean baseline: %.2f m", clean)

	for _, tc := range hostileCases() {
		t.Run(tc.name, func(t *testing.T) {
			var okErrs []float64
			honest, downweighted := 0, 0
			for seed := int64(1); seed <= 3; seed++ {
				tr, err := sim.Run(matrixScenario(seed))
				if err != nil {
					t.Fatal(err)
				}
				faults.Apply(tr, 300+seed, tc.fault)
				m, err := eng.Locate(tr, "target")
				if honestOutcome(t, tc, healthOf(m), err) {
					honest++
					continue
				}
				if !finite(m.Est.X, m.Est.H, m.Est.N, m.Est.Gamma) {
					t.Fatalf("seed %d: non-finite estimate under %s", seed, tc.fault.Name())
				}
				if m.Est.Downweighted > 0 {
					downweighted++
				}
				okErrs = append(okErrs, candErr(m.Est))
			}
			if tc.alwaysFlagged && honest < 3 {
				t.Errorf("defense fired on %d/3 seeds, want every seed", honest)
			}
			if tc.drift {
				// One-shot bound unavailable (see package comment); the
				// longitudinal defense must catch it instead.
				t.Logf("one-shot mean error %.2f m over %d OK seeds (drift absorbed into the exponent)",
					mean(okErrs), len(okErrs))
				assertSessionFlagsDrift(t, eng)
				return
			}
			if len(okErrs) > 0 {
				got := mean(okErrs)
				t.Logf("mean error %.2f m over %d OK seeds (%d honest, %d downweighted)",
					got, len(okErrs), honest, downweighted)
				if got > 2*clean+0.5 {
					t.Errorf("mean error %.2f m exceeds 2x clean baseline %.2f m without a degraded verdict",
						got, clean)
				}
			}
		})
	}
}

// assertSessionFlagsDrift feeds a decaying drive-by stream (injected with
// the same TxPowerDecay fault) into a streaming session and requires the
// Γ-drift detector to recalibrate and label fixes with txpower-drift —
// the honest verdict for the impairment the one-shot fit cannot see.
func assertSessionFlagsDrift(t *testing.T, eng *core.Engine) {
	t.Helper()
	s, err := eng.NewTrackSession(core.TrackSessionConfig{Beacon: "target", SampleRateHz: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A 40 s patrol past a beacon at the origin: the observer paces a
	// 4 m segment (repeating geometry, so the windows are comparable and
	// the decay cannot hide in the exponent); true Γ=-60, n=2.
	pos := func(tt float64) (float64, float64) { return -6 + 4*math.Sin(2*math.Pi*tt/12), 2 }
	var raw []sim.BeaconObservation
	for i := 0; i < 200; i++ {
		tt := float64(i) * 0.2
		px, py := pos(tt)
		raw = append(raw, sim.BeaconObservation{T: tt, RSSI: -60 - 20*math.Log10(math.Hypot(px, py))})
	}
	decayed := faults.ApplyRSS(raw, 42, faults.TxPowerDecay{Start: 5, RatePerS: 0.8})
	flagged := false
	for _, o := range decayed {
		px, py := pos(o.T)
		pt, err := s.Push(estimate.Obs{T: o.T, RSS: o.RSSI, P: px, Q: py})
		if err != nil {
			t.Fatal(err)
		}
		if pt != nil && pt.Health.Has(core.ReasonTxPowerDrift) {
			flagged = true
		}
	}
	if !flagged {
		t.Error("session never flagged txpower-drift on a 28 dB decay ramp")
	}
}

// TestDegradationMatrixRSSOnlyRung: the middle rung. Stripping the IMU
// forces the RSS-only path-loss proximity fallback; whatever the
// adversary does on top, every fix must be honestly labelled (degraded,
// rss-only-fallback + imu-dropout, Ambiguous) with a sane range — or be
// rejected outright.
func TestDegradationMatrixRSSOnlyRung(t *testing.T) {
	eng := robustEngine(t)
	maxRange := estimate.DefaultConfig().MaxRange
	cases := append([]hostileCase{{name: "clean"}}, hostileCases()...)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fixes := 0
			for seed := int64(1); seed <= 3; seed++ {
				tr, err := sim.Run(matrixScenario(seed))
				if err != nil {
					t.Fatal(err)
				}
				if tc.fault != nil {
					faults.Apply(tr, 400+seed, tc.fault)
				}
				tr.IMU = &imu.Trace{}
				m, err := eng.Locate(tr, "target")
				if err != nil {
					var re *core.RejectedError
					if !errors.As(err, &re) {
						t.Fatalf("non-rejection error escaped the pipeline: %v", err)
					}
					continue // honest rejection
				}
				fixes++
				if m.Mode != core.ModeRSSOnly {
					t.Errorf("seed %d: Mode = %v, want ModeRSSOnly", seed, m.Mode)
				}
				if m.Health.Status != core.HealthDegraded ||
					!m.Health.Has(core.ReasonRSSOnlyFallback) || !m.Health.Has(core.ReasonIMUDropout) {
					t.Errorf("seed %d: health %s, want degraded rss-only-fallback + imu-dropout", seed, m.Health)
				}
				if !m.Est.Ambiguous {
					t.Errorf("seed %d: RSS-only fix must be Ambiguous", seed)
				}
				if r := m.Est.Range(); !finite(r) || r <= 0 || r > maxRange {
					t.Errorf("seed %d: RSS-only range %v outside (0, %v]", seed, r, maxRange)
				}
			}
			if tc.fault == nil && fixes != 3 {
				t.Errorf("clean IMU-less traces produced %d/3 fallback fixes", fixes)
			}
			if fixes == 0 && tc.fault != nil {
				t.Logf("every seed honestly rejected under %s", tc.fault.Name())
			}
		})
	}
}

// trackScenario is a longer three-leg walk, so a mid-trace starvation
// burst leaves room for full fixes before it and last-known bridging
// after it.
func trackScenario(seed int64) sim.Scenario {
	return sim.Scenario{
		Beacons: []sim.BeaconSpec{{Name: "target", X: 6, Y: 3}},
		ObserverPlan: imu.Plan{Segments: []imu.Segment{
			{Heading: 0, Distance: 4},
			{Heading: math.Pi / 2, Distance: 4},
			{Heading: math.Pi, Distance: 4},
		}},
		EnvModel: sim.StaticEnv(rf.LOS),
		Seed:     seed,
	}
}

// TestDegradationMatrixLastKnownRung: the bottom rung. A mid-trace RSS
// starvation burst empties the windows due after it; the ladder must
// bridge them with honestly-labelled last-known fixes, and the
// full-fusion fixes from before the gap must stay within 2x the
// clean-starved baseline (unless the trace is honestly flagged).
func TestDegradationMatrixLastKnownRung(t *testing.T) {
	eng := robustEngine(t)
	starve := faults.DropoutBurst{Start: 6.5, Duration: 6}

	run := func(tc hostileCase, seedBase int64) (fullErrs []float64, stale, runs int) {
		t.Helper()
		for seed := int64(1); seed <= 3; seed++ {
			tr, err := sim.Run(trackScenario(seed))
			if err != nil {
				t.Fatal(err)
			}
			fs := []faults.Fault{starve}
			if tc.fault != nil {
				fs = []faults.Fault{tc.fault, starve}
			}
			faults.Apply(tr, seedBase+seed, fs...)
			pts, err := eng.TrackBeacon(tr, "target", 6, 2)
			if err != nil {
				var re *core.RejectedError
				if !errors.As(err, &re) {
					t.Fatalf("non-rejection error escaped the pipeline: %v", err)
				}
				continue // honest rejection of the whole run
			}
			runs++
			for _, p := range pts {
				if !finite(p.Est.X, p.Est.H) {
					t.Fatalf("seed %d: non-finite fix at t=%.1f", seed, p.T)
				}
				switch p.Mode {
				case core.ModeFull:
					fullErrs = append(fullErrs, candErr(p.Est))
				case core.ModeLastKnown:
					stale++
					if p.Health.Status != core.HealthDegraded || !p.Health.Has(core.ReasonStaleFix) {
						t.Errorf("seed %d: last-known fix health %s, want degraded stale-fix", seed, p.Health)
					}
					if p.Samples != 0 {
						t.Errorf("seed %d: last-known fix claims %d window samples", seed, p.Samples)
					}
				default:
					t.Errorf("seed %d: unexpected fix mode %v", seed, p.Mode)
				}
			}
		}
		return fullErrs, stale, runs
	}

	cleanErrs, cleanStale, cleanRuns := run(hostileCase{name: "clean"}, 500)
	if cleanRuns != 3 || cleanStale == 0 || len(cleanErrs) == 0 {
		t.Fatalf("clean starved runs: %d accepted, %d full, %d stale — want all three rungs exercised",
			cleanRuns, len(cleanErrs), cleanStale)
	}
	clean := mean(cleanErrs)
	t.Logf("clean starved baseline: %.2f m over %d full fixes, %d stale fixes",
		clean, len(cleanErrs), cleanStale)

	for _, tc := range hostileCases() {
		t.Run(tc.name, func(t *testing.T) {
			fullErrs, stale, runs := run(tc, 600)
			if runs == 0 {
				t.Log("every run honestly rejected")
				return
			}
			if len(fullErrs) > 0 && stale == 0 {
				t.Errorf("full fixes but no last-known bridging under %s", tc.fault.Name())
			}
			if len(fullErrs) == 0 {
				return // no full fix to bound; stale bridging already checked
			}
			got := mean(fullErrs)
			t.Logf("mean full-fix error %.2f m (%d full, %d stale, %d/3 runs accepted)",
				got, len(fullErrs), stale, runs)
			// The clone is exempt (flagged, past the breakdown point), and
			// so is the drift ramp (unidentifiable in-window, detected
			// longitudinally — asserted in the full-rung cell); their
			// stale bridging and honest labelling are still checked above.
			if !tc.alwaysFlagged && !tc.drift && got > 2*clean+0.5 {
				t.Errorf("mean full-fix error %.2f m exceeds 2x clean starved baseline %.2f m", got, clean)
			}
		})
	}
}
