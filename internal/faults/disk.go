package faults

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"locble/internal/durable"
	"locble/internal/rng"
)

// ErrInjectedDisk is the base of every fault DiskFS injects; tests
// separate injected failures from real ones with errors.Is.
var ErrInjectedDisk = errors.New("faults: injected disk fault")

// ErrNoSpace is the injected ENOSPC: the write fails with no bytes
// applied.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjectedDisk)

// DiskFaults configures probabilistic disk-level fault injection over a
// durable.FS. Each probability is per-operation; zero disables that
// fault. The semantics mirror how real disks fail:
//
//   - ShortWrite: a Write persists only a prefix of the buffer and
//     errors — the torn-record generator.
//   - SyncErr: fsync reports failure and the data it should have made
//     durable stays volatile (the post-fsyncgate model: a failed fsync
//     may have dropped the dirty pages; retrying proves nothing).
//   - BitRot: a Write silently lands with one bit flipped — no error,
//     detectable only by checksum at read-back.
//   - RenameFail: the atomic install step fails, leaving the old file
//     in place.
//   - NoSpace: the write fails with ENOSPC and no bytes applied.
type DiskFaults struct {
	ShortWrite float64
	SyncErr    float64
	BitRot     float64
	RenameFail float64
	NoSpace    float64
}

// DiskStats counts what a DiskFS actually injected, so tests can
// assert their scenario exercised the fault paths it meant to.
type DiskStats struct {
	ShortWrites int64
	SyncErrs    int64
	BitRots     int64
	RenameFails int64
	NoSpace     int64
}

// DiskFS wraps a durable.FS with seeded-deterministic fault injection.
// It is safe for concurrent use (the store's shards write
// concurrently); randomness is serialized under one lock, so a given
// (seed, operation sequence) reproduces exactly.
type DiskFS struct {
	inner durable.FS
	cfg   DiskFaults

	mu    sync.Mutex
	src   *rng.Source
	stats DiskStats
}

// NewDiskFS wraps inner with fault injection drawn from seed.
func NewDiskFS(inner durable.FS, seed int64, cfg DiskFaults) *DiskFS {
	return &DiskFS{inner: inner, cfg: cfg, src: rng.New(seed)}
}

// Stats returns what has been injected so far.
func (d *DiskFS) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// roll draws one Bernoulli decision under the lock.
func (d *DiskFS) roll(p float64, hit *int64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.src.Float64() < p {
		*hit++
		return true
	}
	return false
}

// intn draws a bounded int under the lock.
func (d *DiskFS) intn(n int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.src.Intn(n)
}

// OpenAppend implements durable.FS.
func (d *DiskFS) OpenAppend(name string) (durable.File, error) {
	f, err := d.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &diskFile{fs: d, inner: f}, nil
}

// Create implements durable.FS.
func (d *DiskFS) Create(name string) (durable.File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &diskFile{fs: d, inner: f}, nil
}

// ReadFile implements durable.FS.
func (d *DiskFS) ReadFile(name string) ([]byte, error) { return d.inner.ReadFile(name) }

// Rename implements durable.FS.
func (d *DiskFS) Rename(oldname, newname string) error {
	if d.roll(d.cfg.RenameFail, &d.stats.RenameFails) {
		return fmt.Errorf("%w: rename %s -> %s", ErrInjectedDisk, oldname, newname)
	}
	return d.inner.Rename(oldname, newname)
}

// Remove implements durable.FS.
func (d *DiskFS) Remove(name string) error { return d.inner.Remove(name) }

// Truncate implements durable.FS.
func (d *DiskFS) Truncate(name string, size int64) error { return d.inner.Truncate(name, size) }

// SyncDir implements durable.FS.
func (d *DiskFS) SyncDir() error {
	if d.roll(d.cfg.SyncErr, &d.stats.SyncErrs) {
		return fmt.Errorf("%w: fsync dir", ErrInjectedDisk)
	}
	return d.inner.SyncDir()
}

// List implements durable.FS.
func (d *DiskFS) List() ([]string, error) { return d.inner.List() }

// diskFile injects write- and sync-level faults on one handle.
type diskFile struct {
	fs    *DiskFS
	inner durable.File
}

func (f *diskFile) Write(p []byte) (int, error) {
	d := f.fs
	if d.roll(d.cfg.NoSpace, &d.stats.NoSpace) {
		return 0, ErrNoSpace
	}
	if len(p) > 1 && d.roll(d.cfg.ShortWrite, &d.stats.ShortWrites) {
		n := 1 + d.intn(len(p)-1) // at least one byte lands, never all
		if _, err := f.inner.Write(p[:n]); err != nil {
			return 0, err
		}
		return n, fmt.Errorf("%w: short write %d/%d", ErrInjectedDisk, n, len(p))
	}
	if len(p) > 0 && d.roll(d.cfg.BitRot, &d.stats.BitRots) {
		rot := append([]byte(nil), p...)
		i := d.intn(len(rot))
		rot[i] ^= 1 << d.intn(8)
		n, err := f.inner.Write(rot) // silent: the caller sees success
		return n, err
	}
	return f.inner.Write(p)
}

func (f *diskFile) Sync() error {
	if f.fs.roll(f.fs.cfg.SyncErr, &f.fs.stats.SyncErrs) {
		// The data stays volatile: the inner Sync is NOT performed, so
		// a later crash loses exactly what a dropped-dirty-pages fsync
		// failure would.
		return fmt.Errorf("%w: fsync", ErrInjectedDisk)
	}
	return f.inner.Sync()
}

func (f *diskFile) Close() error { return f.inner.Close() }

// interface check (io import also anchors the short-write contract).
var (
	_ durable.FS = (*DiskFS)(nil)
	_ io.Writer  = (*diskFile)(nil)
)
