// Package faults provides composable, seeded-deterministic fault
// injectors for the LocBLE pipeline. Each injector transforms a simulated
// trace (or a bare observation stream) into an impaired one, reproducing
// the failure modes real BLE deployments exhibit: advertising-packet loss
// and scan-window misses (paper Sec. 2.2), device-dependent RSSI offsets
// and receiver saturation (Sec. 2.4), duplicated or reordered HCI scan
// reports, clock skew between the BLE and IMU timelines, inertial-sensor
// dropout and saturation, and byte-level PDU corruption on the air.
//
// Injectors are values of the Fault interface and compose with Chain, so
// a test scenario like "a stalled scanner followed by a saturated
// accelerometer" is one value. All randomness is drawn from an explicit
// rng.Source, so every injected scenario is reproducible given a seed.
package faults

import (
	"fmt"
	"strings"

	"locble/internal/rng"
	"locble/internal/sim"
)

// Fault is one composable impairment. Apply mutates the trace in place,
// drawing any randomness it needs from src. Implementations must be
// deterministic given (trace, src) and must never panic on an empty or
// already-impaired trace.
type Fault interface {
	// Name identifies the injector in test output and logs.
	Name() string
	// Apply injects the fault into the trace.
	Apply(tr *sim.Trace, src *rng.Source)
}

// Chain composes faults left to right into one Fault. Each member draws
// from an independent random stream split off the chain's source, so
// adding a member never perturbs the randomness of the others.
func Chain(fs ...Fault) Fault { return chain(fs) }

type chain []Fault

func (c chain) Name() string {
	names := make([]string, len(c))
	for i, f := range c {
		names[i] = f.Name()
	}
	return "chain(" + strings.Join(names, ",") + ")"
}

func (c chain) Apply(tr *sim.Trace, src *rng.Source) {
	for i, f := range c {
		f.Apply(tr, src.Split(int64(i+1)))
	}
}

// Apply injects the given faults into the trace, deriving each injector's
// random stream from seed. It is the convenience entry point for tests
// and the CLI.
func Apply(tr *sim.Trace, seed int64, fs ...Fault) {
	Chain(fs...).Apply(tr, rng.New(seed))
}

// ApplyRSS runs the faults over a bare observation stream (a live
// scanner feed rather than a full trace): the stream is wrapped in a
// minimal single-beacon trace, impaired, and returned. IMU-directed
// faults are no-ops in this mode.
func ApplyRSS(obs []sim.BeaconObservation, seed int64, fs ...Fault) []sim.BeaconObservation {
	tr := &sim.Trace{
		Observations: map[string][]sim.BeaconObservation{"stream": append([]sim.BeaconObservation(nil), obs...)},
	}
	if n := len(obs); n > 0 {
		tr.Duration = obs[n-1].T
	}
	Apply(tr, seed, fs...)
	return tr.Observations["stream"]
}

// eachBeacon applies fn to every beacon's observation slice and stores
// the result back, keeping map iteration order out of the random stream
// by splitting a per-beacon source keyed on a stable hash of the name.
func eachBeacon(tr *sim.Trace, src *rng.Source, fn func(obs []sim.BeaconObservation, src *rng.Source) []sim.BeaconObservation) {
	for name, obs := range tr.Observations {
		tr.Observations[name] = fn(obs, src.Split(nameKey(name)))
	}
}

// nameKey maps a beacon name to a stable split label (FNV-1a).
func nameKey(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

func fname(format string, args ...any) string { return fmt.Sprintf(format, args...) }
