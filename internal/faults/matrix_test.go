package faults_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"locble/internal/core"
	"locble/internal/faults"
	"locble/internal/imu"
	"locble/internal/netproto"
	"locble/internal/rf"
	"locble/internal/sim"
)

// The fault matrix: every injector runs against the full Locate and
// TrackBeacon pipelines. The contract under test is graceful
// degradation — no panic, no non-finite estimate, and a health
// classification that matches the injected impairment:
//
//   - clean input        → exactly HealthOK
//   - recoverable damage → HealthDegraded with the matching reason
//   - unusable input     → *RejectedError (never a silently bogus fix)

type matrixCase struct {
	name  string
	fault faults.Fault
	// allowed is the set of acceptable health statuses.
	allowed map[core.HealthStatus]bool
	// reason, when set, must appear in the health report whenever the
	// outcome is degraded or rejected.
	reason core.HealthReason
}

func matrixScenario(seed int64) sim.Scenario {
	return sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "target", X: 6, Y: 3}},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.LOS),
		Seed:         seed,
	}
}

func only(ss ...core.HealthStatus) map[core.HealthStatus]bool {
	m := make(map[core.HealthStatus]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func matrixCases() []matrixCase {
	ok := only(core.HealthOK)
	okOrDeg := only(core.HealthOK, core.HealthDegraded)
	deg := only(core.HealthDegraded)
	degOrRej := only(core.HealthDegraded, core.HealthRejected)
	rej := only(core.HealthRejected)
	return []matrixCase{
		{name: "clean", fault: nil, allowed: ok},
		{name: "dropout-burst", fault: faults.DropoutBurst{Start: 3, Duration: 2},
			allowed: deg, reason: core.ReasonRSSGaps},
		{name: "scanner-stall", fault: faults.ScannerStall{Start: 2, Duration: 1.5},
			allowed: deg, reason: core.ReasonRSSGaps},
		{name: "random-drop", fault: faults.RandomDrop{Prob: 0.3}, allowed: okOrDeg},
		{name: "non-finite-rssi", fault: faults.NonFiniteRSSI{Prob: 0.3},
			allowed: deg, reason: core.ReasonNonFiniteRSS},
		{name: "clip-rssi", fault: faults.ClipRSSI{Floor: -72, Ceil: -58}, allowed: degOrRej},
		{name: "duplicates", fault: faults.DuplicateReports{Prob: 0.4}, allowed: okOrDeg},
		{name: "reorder", fault: faults.ReorderReports{Window: 6}, allowed: okOrDeg},
		{name: "clock-skew", fault: faults.ClockSkew{Offset: 4},
			allowed: deg, reason: core.ReasonClockSkew},
		{name: "time-jitter", fault: faults.JitterTimestamps{Sigma: 0.05}, allowed: okOrDeg},
		{name: "truncate", fault: faults.TruncateWindow{Keep: 2.5},
			allowed: rej, reason: core.ReasonShortWindow},
		{name: "impulse-burst", fault: faults.ImpulseBurst{Start: 2, Duration: 4, Prob: 0.2, DeltaDB: 20},
			allowed: okOrDeg},
		{name: "beacon-clone", fault: faults.BeaconClone{OffsetDB: -25},
			allowed: deg, reason: core.ReasonBeaconAnomaly},
		{name: "txpower-decay", fault: faults.TxPowerDecay{Start: 1, RatePerS: 1.5}, allowed: okOrDeg},
		{name: "outlier-run", fault: faults.OutlierRun{Start: 3, Duration: 1.5, DeltaDB: 18},
			allowed: okOrDeg},
		{name: "imu-dropout", fault: faults.IMUDropout{Start: 4, Duration: 2},
			allowed: degOrRej, reason: core.ReasonIMUDropout},
		{name: "imu-saturate", fault: faults.IMUSaturate{MaxAccel: 9}, allowed: degOrRej},
		{name: "corrupt-pdu", fault: faults.CorruptPDU{BitProb: 0.01}, allowed: okOrDeg},
		{name: "stall+nan", fault: faults.Chain(
			faults.DropoutBurst{Start: 3, Duration: 1.5},
			faults.NonFiniteRSSI{Prob: 0.15},
		), allowed: deg, reason: core.ReasonNonFiniteRSS},
		{name: "drop+jitter+dupes", fault: faults.Chain(
			faults.RandomDrop{Prob: 0.2},
			faults.JitterTimestamps{Sigma: 0.02},
			faults.DuplicateReports{Prob: 0.2},
		), allowed: okOrDeg},
	}
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// checkOutcome validates one pipeline run against the case's contract.
func checkOutcome(t *testing.T, tc matrixCase, h core.Health, err error) {
	t.Helper()
	if err != nil {
		var re *core.RejectedError
		if !errors.As(err, &re) {
			t.Fatalf("non-rejection error escaped the pipeline: %v", err)
		}
		h = re.Health
		if h.Status != core.HealthRejected {
			t.Fatalf("RejectedError carries status %s", h)
		}
	}
	if !tc.allowed[h.Status] {
		t.Errorf("health = %s, allowed %v", h, tc.allowed)
	}
	if tc.reason != "" && h.Status != core.HealthOK && !h.Has(tc.reason) {
		t.Errorf("health %s is missing reason %s", h, tc.reason)
	}
}

func TestFaultMatrixLocate(t *testing.T) {
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range matrixCases() {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				tr, err := sim.Run(matrixScenario(seed))
				if err != nil {
					t.Fatal(err)
				}
				if tc.fault != nil {
					faults.Apply(tr, 100+seed, tc.fault)
				}
				m, err := eng.Locate(tr, "target")
				if err != nil {
					checkOutcome(t, tc, core.Health{}, err)
					continue
				}
				checkOutcome(t, tc, m.Health, nil)
				if !finite(m.Est.X, m.Est.H, m.Est.N, m.Est.Gamma, m.Est.Confidence) {
					t.Errorf("seed %d: non-finite estimate escaped: %+v", seed, m.Est)
				}
			}
		})
	}
}

func TestFaultMatrixTrack(t *testing.T) {
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range matrixCases() {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				tr, err := sim.Run(matrixScenario(seed))
				if err != nil {
					t.Fatal(err)
				}
				if tc.fault != nil {
					faults.Apply(tr, 200+seed, tc.fault)
				}
				pts, err := eng.TrackBeacon(tr, "target", 6, 2)
				if err != nil {
					checkOutcome(t, tc, core.Health{}, err)
					continue
				}
				if len(pts) == 0 {
					t.Fatalf("seed %d: no error but no fixes either", seed)
				}
				checkOutcome(t, tc, pts[0].Health, nil)
				for _, p := range pts {
					if !finite(p.Est.X, p.Est.H) {
						t.Errorf("seed %d: non-finite fix at t=%.1f", seed, p.T)
					}
				}
			}
		})
	}
}

// TestFaultMatrixStream pushes a poisoned observation stream through the
// netproto live stream: whatever the injectors did, a subscriber must
// only ever see finite values.
func TestFaultMatrixStream(t *testing.T) {
	tr, err := sim.Run(matrixScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	obs := faults.ApplyRSS(tr.Observations["target"], 7,
		faults.NonFiniteRSSI{Prob: 0.3},
		faults.DuplicateReports{Prob: 0.2},
		faults.JitterTimestamps{Sigma: 0.1},
		faults.ImpulseBurst{Prob: 0.15, DeltaDB: 25},
	)
	if len(obs) == 0 {
		t.Fatal("injectors consumed the whole stream")
	}

	srv, err := netproto.NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Publish in batches, as a live scanner would.
	const batch = 16
	for lo := 0; lo < len(obs); lo += batch {
		hi := lo + batch
		if hi > len(obs) {
			hi = len(obs)
		}
		rss := make([]netproto.TimedRSS, 0, hi-lo)
		for _, o := range obs[lo:hi] {
			rss = append(rss, netproto.TimedRSS{T: o.T, RSS: o.RSSI, Chan: o.Channel})
		}
		if err := srv.Publish(rss, nil, hi == len(obs)); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, err := netproto.Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	for b := range ch {
		for _, r := range b.RSS {
			received++
			if !finite(r.T, r.RSS) {
				t.Fatalf("non-finite reading crossed the wire: %+v", r)
			}
		}
	}
	if received == 0 {
		t.Fatal("sanitization dropped every reading")
	}
	if received >= len(obs) {
		t.Errorf("stream delivered %d of %d readings — poisoned ones should have been dropped", received, len(obs))
	}
}
