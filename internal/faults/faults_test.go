package faults

import (
	"math"
	"testing"

	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
)

func testTrace(t *testing.T, seed int64) *sim.Trace {
	t.Helper()
	tr, err := sim.Run(sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "target", X: 6, Y: 3}},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.LOS),
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDropoutBurstRemovesWindow(t *testing.T) {
	tr := testTrace(t, 1)
	before := len(tr.Observations["target"])
	Apply(tr, 1, DropoutBurst{Start: 3, Duration: 2})
	after := tr.Observations["target"]
	if len(after) >= before {
		t.Fatalf("burst removed nothing (%d -> %d)", before, len(after))
	}
	for _, o := range after {
		if o.T >= 3 && o.T < 5 {
			t.Fatalf("observation at t=%.2f survived the burst", o.T)
		}
	}
}

func TestRandomDropDeterministic(t *testing.T) {
	a, b := testTrace(t, 2), testTrace(t, 2)
	Apply(a, 7, RandomDrop{Prob: 0.5})
	Apply(b, 7, RandomDrop{Prob: 0.5})
	oa, ob := a.Observations["target"], b.Observations["target"]
	if len(oa) != len(ob) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("survivor %d differs", i)
		}
	}
	full := testTrace(t, 2).Observations["target"]
	if len(oa) == len(full) {
		t.Fatal("50% drop removed nothing")
	}
}

func TestNonFiniteRSSIInjects(t *testing.T) {
	tr := testTrace(t, 3)
	Apply(tr, 3, NonFiniteRSSI{Prob: 0.3})
	bad := 0
	for _, o := range tr.Observations["target"] {
		if math.IsNaN(o.RSSI) || math.IsInf(o.RSSI, 0) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("no non-finite RSSI injected")
	}
}

func TestClipRSSIRails(t *testing.T) {
	tr := testTrace(t, 4)
	Apply(tr, 4, ClipRSSI{Floor: -90, Ceil: -55})
	for _, o := range tr.Observations["target"] {
		if o.RSSI > -55 || o.RSSI < -90 {
			t.Fatalf("RSSI %.1f escaped the clip rails", o.RSSI)
		}
	}
}

func TestDuplicateAndReorderBreakMonotonicity(t *testing.T) {
	tr := testTrace(t, 5)
	Apply(tr, 5, DuplicateReports{Prob: 0.4}, ReorderReports{Window: 6})
	obs := tr.Observations["target"]
	inversions, dups := 0, 0
	for i := 1; i < len(obs); i++ {
		if obs[i].T < obs[i-1].T {
			inversions++
		}
		if obs[i].T == obs[i-1].T && obs[i].RSSI == obs[i-1].RSSI {
			dups++
		}
	}
	if inversions == 0 {
		t.Error("reorder produced a still-sorted stream")
	}
	if dups == 0 {
		t.Error("duplication produced no adjacent duplicates (after reorder some should remain)")
	}
}

func TestClockSkewShiftsTimes(t *testing.T) {
	tr := testTrace(t, 6)
	orig := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	Apply(tr, 6, ClockSkew{Offset: 4})
	for i, o := range tr.Observations["target"] {
		if math.Abs(o.T-(orig[i].T+4)) > 1e-12 {
			t.Fatalf("obs %d: t=%.3f, want %.3f", i, o.T, orig[i].T+4)
		}
	}
}

func TestTruncateWindowCutsRSSAndIMU(t *testing.T) {
	tr := testTrace(t, 7)
	Apply(tr, 7, TruncateWindow{Keep: 2.5})
	for _, o := range tr.Observations["target"] {
		if o.T > 2.5 {
			t.Fatalf("observation at t=%.2f survived truncation", o.T)
		}
	}
	for _, s := range tr.IMU.Samples {
		if s.T > 2.5 {
			t.Fatalf("IMU sample at t=%.2f survived truncation", s.T)
		}
	}
	if tr.Duration > 2.5 {
		t.Errorf("duration %.2f not truncated", tr.Duration)
	}
}

func TestIMUDropoutAndSaturate(t *testing.T) {
	tr := testTrace(t, 8)
	Apply(tr, 8, IMUDropout{Start: 4, Duration: 2}, IMUSaturate{MaxAccel: 10})
	for _, s := range tr.IMU.Samples {
		if s.T >= 4 && s.T < 6 {
			t.Fatalf("IMU sample at t=%.2f inside dropout window", s.T)
		}
		for a := 0; a < 3; a++ {
			if math.Abs(s.Acc[a]) > 10 {
				t.Fatalf("accel %.2f above saturation rail", s.Acc[a])
			}
		}
	}
}

func TestCorruptPDULosesFramesOnly(t *testing.T) {
	tr := testTrace(t, 9)
	before := len(tr.Observations["target"])
	Apply(tr, 9, CorruptPDU{BitProb: 0.01})
	after := tr.Observations["target"]
	if len(after) == 0 || len(after) >= before {
		t.Fatalf("PDU corruption: %d -> %d observations, want partial loss", before, len(after))
	}
	// Values of survivors are untouched.
	for _, o := range after {
		if math.IsNaN(o.RSSI) {
			t.Fatal("corruption altered RSSI values")
		}
	}
}

func TestImpulseBurstSpikesInsideWindow(t *testing.T) {
	tr := testTrace(t, 10)
	orig := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	Apply(tr, 10, ImpulseBurst{Start: 2, Duration: 3, Prob: 0.3, DeltaDB: 20})
	spiked := 0
	for i, o := range tr.Observations["target"] {
		d := o.RSSI - orig[i].RSSI
		switch {
		case d == 0:
		case d == 20:
			if o.T < 2 || o.T >= 5 {
				t.Fatalf("spike at t=%.2f outside [2,5)", o.T)
			}
			spiked++
		default:
			t.Fatalf("obs %d shifted by %.1f dB, want 0 or +20", i, d)
		}
	}
	if spiked == 0 {
		t.Fatal("no impulses injected")
	}
	if spiked == len(orig) {
		t.Fatal("every reading spiked — impulses must be sparse")
	}
}

func TestBeaconCloneInterleaves(t *testing.T) {
	tr := testTrace(t, 11)
	before := len(tr.Observations["target"])
	Apply(tr, 11, BeaconClone{OffsetDB: -25})
	obs := tr.Observations["target"]
	if len(obs) < 2*before-2 {
		t.Fatalf("clone interleaved %d -> %d observations, want ~2x", before, len(obs))
	}
	// Times stay sorted and adjacent deltas alternate sign with large
	// magnitude — the physically impossible signature.
	bigFlips := 0
	for i := 1; i < len(obs); i++ {
		if obs[i].T < obs[i-1].T {
			t.Fatalf("clone broke time ordering at %d", i)
		}
		if d := obs[i].RSSI - obs[i-1].RSSI; math.Abs(d) > 15 {
			bigFlips++
		}
	}
	if bigFlips < 10 {
		t.Fatalf("only %d large adjacent deltas — interleave too sparse", bigFlips)
	}
}

func TestTxPowerDecayRamps(t *testing.T) {
	tr := testTrace(t, 12)
	orig := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	Apply(tr, 12, TxPowerDecay{Start: 1, RatePerS: 1.5})
	for i, o := range tr.Observations["target"] {
		want := orig[i].RSSI
		if dt := orig[i].T - 1; dt > 0 {
			want -= 1.5 * dt
		}
		if math.Abs(o.RSSI-want) > 1e-12 {
			t.Fatalf("obs %d: RSSI %.3f, want %.3f", i, o.RSSI, want)
		}
	}
}

func TestOutlierRunShiftsWindowOnly(t *testing.T) {
	tr := testTrace(t, 13)
	orig := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	Apply(tr, 13, OutlierRun{Start: 3, Duration: 1.5, DeltaDB: 18})
	inRun := 0
	for i, o := range tr.Observations["target"] {
		d := o.RSSI - orig[i].RSSI
		if o.T >= 3 && o.T < 4.5 {
			if d != 18 {
				t.Fatalf("obs inside run shifted by %.1f, want +18", d)
			}
			inRun++
		} else if d != 0 {
			t.Fatalf("obs at t=%.2f outside the run shifted by %.1f", o.T, d)
		}
	}
	if inRun == 0 {
		t.Fatal("run window contained no observations")
	}
}

func TestChainNameAndApplyRSS(t *testing.T) {
	f := Chain(DropoutBurst{Start: 1, Duration: 1}, RandomDrop{Prob: 0.2})
	if f.Name() == "" {
		t.Fatal("empty chain name")
	}
	obs := []sim.BeaconObservation{{T: 0.5, RSSI: -60}, {T: 1.5, RSSI: -61}, {T: 2.5, RSSI: -62}}
	out := ApplyRSS(obs, 1, f)
	for _, o := range out {
		if o.T >= 1 && o.T < 2 {
			t.Fatalf("stream obs at t=%.2f survived burst", o.T)
		}
	}
	if len(obs) != 3 {
		t.Fatal("ApplyRSS mutated its input slice length")
	}
}
