// Package robust provides the shared robust-statistics primitives the
// pipeline's hostile-data defences are built on: the MAD (median
// absolute deviation) scale estimator, Huber and Tukey-bisquare
// M-estimator weight/loss functions, and an impulse-resistant maximum.
//
// Every function is allocation-free on warm buffers: callers that run
// on the estimator's hot path pass their own scratch slices (the
// estimate.Solver owns arenas for exactly this), so an IRLS iteration
// costs arithmetic only. The same helpers back the proximity fusion's
// "robust maximum" and the clone-detector's deviation scale, so every
// consumer agrees on what "an outlier" means.
package robust

import (
	"math"
	"sort"
)

// MADScaleFactor converts a median absolute deviation into a
// consistent estimate of the Gaussian standard deviation:
// σ ≈ 1.4826·MAD (the reciprocal of Φ⁻¹(3/4)).
const MADScaleFactor = 1.4826

// MedianInPlace sorts xs in place and returns its median (the mean of
// the two central order statistics for even lengths). It returns NaN
// for an empty slice. No allocation: the caller donates the slice.
func MedianInPlace(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// MADInto computes the median and the median absolute deviation of xs
// using scratch as working storage. scratch is resized (reallocating
// only when its capacity is insufficient) and returned so callers can
// retain the grown buffer; xs itself is not modified.
func MADInto(xs, scratch []float64) (median, mad float64, grown []float64) {
	n := len(xs)
	if cap(scratch) < n {
		scratch = make([]float64, n)
	}
	scratch = scratch[:n]
	if n == 0 {
		return math.NaN(), math.NaN(), scratch
	}
	copy(scratch, xs)
	median = MedianInPlace(scratch)
	for i, x := range xs {
		scratch[i] = math.Abs(x - median)
	}
	mad = MedianInPlace(scratch)
	return median, mad, scratch
}

// Scale converts a MAD into the consistent σ estimate, flooring the
// result at floor so a degenerate sample (all residuals identical)
// never yields a zero scale. Real BLE RSS noise never drops below a
// fraction of a dB, so estimator callers floor at ~0.5 dB.
func Scale(mad, floor float64) float64 {
	s := MADScaleFactor * mad
	if s < floor || math.IsNaN(s) {
		return floor
	}
	return s
}

// HuberWeight is the Huber M-estimator's IRLS weight for a residual r
// at scale σ with tuning constant delta (in σ units): 1 inside the
// quadratic zone, delta·σ/|r| outside. delta = 1.345 gives 95%
// efficiency at the Gaussian model.
func HuberWeight(r, sigma, delta float64) float64 {
	a := math.Abs(r)
	k := delta * sigma
	if a <= k {
		return 1
	}
	return k / a
}

// HuberRho is the Huber loss evaluated so that the quadratic zone is
// exactly r² — bit-identical to the squared loss when |r| ≤ delta·σ,
// which makes "Huber with a huge delta" reproduce least squares
// bit-exactly. Outside the zone the loss continues linearly:
// k·(2|r| − k) with k = delta·σ.
func HuberRho(r, sigma, delta float64) float64 {
	a := math.Abs(r)
	k := delta * sigma
	if a <= k {
		return r * r
	}
	return k * (2*a - k)
}

// TukeyWeight is the Tukey-bisquare IRLS weight: (1 − (r/(c·σ))²)²
// inside the support, 0 beyond it — gross outliers are rejected
// entirely rather than merely down-weighted. c = 4.685 gives 95%
// efficiency at the Gaussian model.
func TukeyWeight(r, sigma, c float64) float64 {
	k := c * sigma
	if k <= 0 {
		return 0
	}
	u := r / k
	if u <= -1 || u >= 1 {
		return 0
	}
	v := 1 - u*u
	return v * v
}

// TukeyRho is the Tukey-bisquare loss, normalized so its quadratic
// behaviour near zero matches r² (ρ(r) ≈ r² for |r| ≪ c·σ) and it
// saturates at k²/3 beyond the support — a gross outlier contributes a
// bounded amount however far it sits.
func TukeyRho(r, sigma, c float64) float64 {
	k := c * sigma
	if k <= 0 {
		return 0
	}
	u := r / k
	if u <= -1 || u >= 1 {
		return k * k / 3
	}
	v := 1 - u*u
	return k * k / 3 * (1 - v*v*v)
}

// RobustMax returns the index and value of the largest sample in xs
// that is corroborated by the bulk of the series: the strongest reading
// no more than guard·σ above the topQ quantile, where σ is the
// MAD-derived scale of the series. An isolated impulse (one spiked
// sample far above everything else) is skipped; the honest maximum of
// a close approach — which the surrounding samples track — is kept.
// scratch is working storage (grown as needed) and is returned; the
// chosen index refers to xs. Empty input returns (-1, NaN, scratch).
func RobustMax(xs []float64, topQ, guard float64, scratch []float64) (idx int, v float64, grown []float64) {
	n := len(xs)
	if n == 0 {
		return -1, math.NaN(), scratch
	}
	_, mad, scratch := MADInto(xs, scratch)
	sigma := Scale(mad, 0.25)
	// scratch currently holds |x − median| values; reuse it sorted by
	// value to read the top quantile.
	copy(scratch, xs)
	sort.Float64s(scratch)
	if topQ <= 0 || topQ >= 1 {
		topQ = 0.95
	}
	qi := int(topQ * float64(n-1))
	cap_ := scratch[qi] + guard*sigma
	idx, v = -1, math.Inf(-1)
	for i, x := range xs {
		if x > v && x <= cap_ {
			idx, v = i, x
		}
	}
	if idx < 0 {
		// Every sample above the cap (degenerate tiny series): fall back
		// to the plain maximum.
		for i, x := range xs {
			if x > v {
				idx, v = i, x
			}
		}
	}
	return idx, v, scratch
}
