package robust

import (
	"math"
	"testing"
)

func TestMedianInPlace(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5}, 5},
		{nil, math.NaN()},
	}
	for _, c := range cases {
		got := MedianInPlace(append([]float64(nil), c.in...))
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("MedianInPlace(%v) = %v, want NaN", c.in, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("MedianInPlace(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMADIntoDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	orig := append([]float64(nil), xs...)
	med, mad, _ := MADInto(xs, nil)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("MADInto mutated input at %d", i)
		}
	}
	if med != 5 {
		t.Errorf("median = %v, want 5", med)
	}
	if mad != 2 { // deviations {0,4,4,2,2} → median 2
		t.Errorf("mad = %v, want 2", mad)
	}
}

func TestMADIntoReusesScratch(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	_, _, scratch := MADInto(xs, nil)
	if n := testing.AllocsPerRun(100, func() {
		_, _, scratch = MADInto(xs, scratch)
	}); n != 0 {
		t.Errorf("MADInto allocates %v per call on a warm scratch, want 0", n)
	}
}

func TestScaleFloors(t *testing.T) {
	if s := Scale(0, 0.5); s != 0.5 {
		t.Errorf("Scale(0) = %v, want floor 0.5", s)
	}
	if s := Scale(2, 0.5); math.Abs(s-2*MADScaleFactor) > 1e-12 {
		t.Errorf("Scale(2) = %v, want %v", s, 2*MADScaleFactor)
	}
	if s := Scale(math.NaN(), 0.5); s != 0.5 {
		t.Errorf("Scale(NaN) = %v, want floor", s)
	}
}

func TestHuberLimits(t *testing.T) {
	// Inside the quadratic zone: weight 1, rho = r² exactly.
	if w := HuberWeight(1, 2, 1.345); w != 1 {
		t.Errorf("inside-zone weight = %v, want 1", w)
	}
	r := 1.7
	if rho := HuberRho(r, 2, 1.345); rho != r*r {
		t.Errorf("inside-zone rho = %v, want %v bit-exact", rho, r*r)
	}
	// Far outside: weight → kσ/|r|, rho grows linearly.
	w := HuberWeight(100, 1, 1.345)
	if math.Abs(w-1.345/100) > 1e-12 {
		t.Errorf("outside weight = %v", w)
	}
	if rho1, rho2 := HuberRho(100, 1, 1.345), HuberRho(101, 1, 1.345); rho2-rho1 > 3 {
		t.Errorf("huber tail not linear: Δ=%v", rho2-rho1)
	}
}

func TestTukeyRejectsGross(t *testing.T) {
	if w := TukeyWeight(100, 1, 4.685); w != 0 {
		t.Errorf("gross outlier weight = %v, want 0", w)
	}
	if w := TukeyWeight(0, 1, 4.685); w != 1 {
		t.Errorf("zero-residual weight = %v, want 1", w)
	}
	// Bounded loss: a 10× farther outlier adds nothing.
	k := 4.685 * 1.0
	if rho := TukeyRho(100, 1, 4.685); rho != k*k/3 {
		t.Errorf("saturated rho = %v, want %v", rho, k*k/3)
	}
	// Weights decrease monotonically in |r|.
	prev := 1.0
	for r := 0.0; r < 6; r += 0.25 {
		w := TukeyWeight(r, 1, 4.685)
		if w > prev+1e-12 {
			t.Fatalf("Tukey weight not monotone at r=%v", r)
		}
		prev = w
	}
}

func TestRobustMaxSkipsImpulse(t *testing.T) {
	// A gently varying series with one wild spike: the robust maximum
	// must pick the honest crest, not the impulse.
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = -70 + 8*math.Sin(float64(i)/10) // crest ≈ −62
	}
	xs[30] = -20 // impulse
	idx, v, _ := RobustMax(xs, 0.95, 3, nil)
	if idx == 30 {
		t.Fatalf("robust max picked the impulse")
	}
	if v > -55 || v < -66 {
		t.Errorf("robust max = %v, want near the honest crest", v)
	}
	// Without the impulse the result is the plain maximum.
	xs[30] = -70
	idx2, v2, _ := RobustMax(xs, 0.95, 3, nil)
	max, maxi := math.Inf(-1), -1
	for i, x := range xs {
		if x > max {
			max, maxi = x, i
		}
	}
	if idx2 != maxi || v2 != max {
		t.Errorf("clean robust max = (%d, %v), want plain max (%d, %v)", idx2, v2, maxi, max)
	}
}

func TestRobustMaxEmpty(t *testing.T) {
	idx, v, _ := RobustMax(nil, 0.95, 3, nil)
	if idx != -1 || !math.IsNaN(v) {
		t.Errorf("empty RobustMax = (%d, %v)", idx, v)
	}
}
