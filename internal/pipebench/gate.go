package pipebench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is the subset of a committed benchmark report a regression
// gate compares against. Absent fields decode to zero and disable
// their check — BENCH_pr2.json predates allocs_per_op, so the alloc
// gate only arms once a baseline carrying it is committed.
type Baseline struct {
	Bench       string   `json:"bench"`
	WallSeconds float64  `json:"wall_seconds"`
	AllocsPerOp uint64   `json:"allocs_per_op"`
	Error       ErrStats `json:"estimate_error_m"`
	// IRLS is the robust-path baseline. Reports committed before the
	// IRLS measurement existed decode it as nil, which disarms the
	// relative IRLS checks (the absolute warm-fit-allocs contract is
	// checked against the fresh report regardless).
	IRLS *IRLSStats `json:"irls"`
	// Fleet is the fleet-serving baseline. Reports committed before the
	// fleet bench existed decode it as nil, disarming the fleet checks.
	Fleet *FleetStats `json:"fleet"`
	// Durability is the durable-store baseline. Reports committed before
	// the durability bench existed decode it as nil, disarming the
	// relative durability checks (the absolute zero-damage contract is
	// checked against the fresh report regardless).
	Durability *DurabilityStats `json:"durability"`
	// Router is the multi-node routing baseline. Reports committed
	// before the router bench existed decode it as nil, disarming the
	// relative router checks (the absolute fixes-lost==0 and no-
	// degradation contracts are checked against the fresh report
	// regardless).
	Router *RouterStats `json:"router"`
	// Wire is the wire-codec baseline. Reports committed before the
	// binary codec existed decode it as nil, disarming the relative
	// wire checks (the absolute speedup/alloc-ratio contracts are
	// checked against the fresh report regardless).
	Wire *WireStats `json:"wire"`
}

// Tolerances are the allowed fractional regressions per axis.
type Tolerances struct {
	// Wall bounds wall-clock growth (machine-dependent, so loose).
	Wall float64
	// Alloc bounds allocations-per-op growth.
	Alloc float64
	// Err bounds mean/p90 error growth. The error statistics are
	// deterministic for a fixed seed, so this can be tight; it is
	// nonzero only to absorb legitimate algorithm changes reflected in
	// a refreshed baseline late.
	Err float64
	// Dur bounds durable-store regressions — fsync throughput shortfall
	// and recovery wall growth. fsync cost varies wildly across
	// filesystems and container hosts, so this is the loosest axis.
	Dur float64
}

// DefaultTolerances returns the CI gate settings: 10 % wall, 10 %
// allocs, 5 % accuracy, 35 % durability (fsync-bound, machine-noisy).
func DefaultTolerances() Tolerances {
	return Tolerances{Wall: 0.10, Alloc: 0.10, Err: 0.05, Dur: 0.35}
}

// Gate compares a fresh report against a committed baseline and
// returns the violations (empty means the gate passes). Checks whose
// baseline field is zero/absent are skipped.
func Gate(got *Report, base *Baseline, tol Tolerances) []string {
	var v []string
	exceed := func(name string, g, b, t float64, unit string) {
		if b > 0 && g > b*(1+t) {
			v = append(v, fmt.Sprintf("%s regressed: %.4g %s vs baseline %.4g %s (tolerance %.0f%%)",
				name, g, unit, b, unit, t*100))
		}
	}
	exceed("wall_seconds", got.WallSeconds, base.WallSeconds, tol.Wall, "s")
	exceed("allocs_per_op", float64(got.AllocsPerOp), float64(base.AllocsPerOp), tol.Alloc, "allocs")
	exceed("estimate_error_m.mean_m", got.Error.MeanM, base.Error.MeanM, tol.Err, "m")
	exceed("estimate_error_m.p90_m", got.Error.P90M, base.Error.P90M, tol.Err, "m")
	if base.Error.N > 0 && got.Located < base.Error.N {
		v = append(v, fmt.Sprintf("located %d beacons vs baseline %d — fixes were lost",
			got.Located, base.Error.N))
	}
	if got.IRLS != nil {
		// Absolute contract, not a relative one: the warmed robust
		// inner fit allocates nothing, full stop.
		if got.IRLS.WarmFitAllocsPerOp != 0 {
			v = append(v, fmt.Sprintf("irls.warm_fit_allocs_per_op = %g, want 0 — the robust path lost its pooled arenas",
				got.IRLS.WarmFitAllocsPerOp))
		}
		if base.IRLS != nil {
			exceed("irls.wall_seconds", got.IRLS.WallSeconds, base.IRLS.WallSeconds, tol.Wall, "s")
			exceed("irls.allocs_per_op", float64(got.IRLS.AllocsPerOp), float64(base.IRLS.AllocsPerOp), tol.Alloc, "allocs")
			exceed("irls.estimate_error_m.mean_m", got.IRLS.Error.MeanM, base.IRLS.Error.MeanM, tol.Err, "m")
			exceed("irls.estimate_error_m.p90_m", got.IRLS.Error.P90M, base.IRLS.Error.P90M, tol.Err, "m")
		}
	} else if base.IRLS != nil {
		v = append(v, "baseline carries an irls measurement but the report has none — the robust bench was dropped")
	}
	if got.Fleet != nil {
		if base.Fleet != nil {
			// The fleet bench is concurrent (one goroutine per shard), so
			// even its min-of-N wall is scheduler-noisier than the
			// single-goroutine sections — gate it at double the wall
			// tolerance.
			exceed("fleet.wall_seconds", got.Fleet.WallSeconds, base.Fleet.WallSeconds, 2*tol.Wall, "s")
			exceed("fleet.allocs_per_obs", got.Fleet.AllocsPerObs, base.Fleet.AllocsPerObs, tol.Alloc, "allocs")
			if got.Fleet.Fixes < base.Fleet.Fixes {
				v = append(v, fmt.Sprintf("fleet emitted %d fixes vs baseline %d — fleet fixes were lost",
					got.Fleet.Fixes, base.Fleet.Fixes))
			}
		}
	} else if base.Fleet != nil {
		v = append(v, "baseline carries a fleet measurement but the report has none — the fleet bench was dropped")
	}
	// Throughput axes regress downward; shortfall is exceed's mirror.
	shortfall := func(name string, g, b, t float64, unit string) {
		if b > 0 && g < b*(1-t) {
			v = append(v, fmt.Sprintf("%s regressed: %.4g %s vs baseline %.4g %s (tolerance %.0f%%)",
				name, g, unit, b, unit, t*100))
		}
	}
	if got.Durability != nil {
		// Absolute contract: the durability bench shuts the store down
		// cleanly, so recovery reporting any torn or quarantined records
		// is a store bug, baseline or not.
		if got.Durability.TornTails != 0 || got.Durability.Quarantined != 0 {
			v = append(v, fmt.Sprintf("durability recovery reported damage on a clean shutdown: %d torn tails, %d quarantined — the store corrupted its own log",
				got.Durability.TornTails, got.Durability.Quarantined))
		}
		if base.Durability != nil {
			shortfall("durability.sync_saves_per_second", got.Durability.SyncSavesPerSecond, base.Durability.SyncSavesPerSecond, tol.Dur, "saves/s")
			shortfall("durability.group_saves_per_second", got.Durability.GroupSavesPerSecond, base.Durability.GroupSavesPerSecond, tol.Dur, "saves/s")
			exceed("durability.recovery_wall_seconds", got.Durability.RecoveryWallSeconds, base.Durability.RecoveryWallSeconds, tol.Dur, "s")
			if got.Durability.Recovered < base.Durability.Recovered {
				v = append(v, fmt.Sprintf("durability recovered %d sessions vs baseline %d — checkpoints were lost",
					got.Durability.Recovered, base.Durability.Recovered))
			}
		}
	} else if base.Durability != nil {
		v = append(v, "baseline carries a durability measurement but the report has none — the durability bench was dropped")
	}
	if got.Router != nil {
		// Absolute contracts, baseline or not: routing is pure transport
		// over a planned drain, so any fix shortfall against the single-
		// fleet reference is an acknowledged fix lost in the handoff, and
		// any degraded result means the router failed over inside a
		// healthy cluster.
		if got.Router.FixesLost != 0 {
			v = append(v, fmt.Sprintf("router.fixes_lost = %d, want 0 — the drain/handoff dropped acknowledged fixes",
				got.Router.FixesLost))
		}
		if got.Router.Degraded != 0 {
			v = append(v, fmt.Sprintf("router.degraded = %d, want 0 — results degraded in a cluster where nothing died",
				got.Router.Degraded))
		}
		if got.Router.DrainedSessions == 0 {
			v = append(v, "router.drained_sessions = 0 — the drained node was serving beacons, so the drain checkpointed nothing it should have")
		}
		if base.Router != nil {
			// The cluster multiplies the fleet bench's concurrency by its
			// node count, so both walls get the doubled wall tolerance;
			// the drain wall is fsync-bound on the shared durable store
			// and rides the durability tolerance.
			exceed("router.routed_wall_seconds", got.Router.RoutedWallSeconds, base.Router.RoutedWallSeconds, 2*tol.Wall, "s")
			exceed("router.single_wall_seconds", got.Router.SingleWallSeconds, base.Router.SingleWallSeconds, 2*tol.Wall, "s")
			// A healthy drain finishes in single-digit milliseconds, where
			// a percentage tolerance measures scheduler noise, not the
			// store. Gate it with an absolute slack floor on top of the
			// durability tolerance: flag only when the drain is both
			// relatively AND absolutely (>50 ms) slower than the baseline.
			if d, b := got.Router.DrainWallSeconds, base.Router.DrainWallSeconds; d > b*(1+tol.Dur) && d > b+0.05 {
				v = append(v, fmt.Sprintf("router.drain_wall_seconds regressed: %.3f s vs baseline %.3f s (tolerance %.0f%% + 50 ms slack)",
					d, b, tol.Dur*100))
			}
			if got.Router.Fixes < base.Router.Fixes {
				v = append(v, fmt.Sprintf("router emitted %d fixes vs baseline %d — routed fixes were lost",
					got.Router.Fixes, base.Router.Fixes))
			}
		}
	} else if base.Router != nil {
		v = append(v, "baseline carries a router measurement but the report has none — the router bench was dropped")
	}
	if got.Wire != nil {
		// Absolute contracts, baseline or not: the binary codec exists to
		// beat JSON by a wide margin, so the headline ratios are floors,
		// not relative comparisons — a binary path that only matches JSON
		// has lost its reason to exist even if it never "regressed".
		if got.Wire.SpeedupX < 2 {
			v = append(v, fmt.Sprintf("wire.speedup_x = %.2f, want >= 2 — locb1 no longer beats JSON 2x on round-trip throughput",
				got.Wire.SpeedupX))
		}
		if got.Wire.AllocRatioX < 5 {
			v = append(v, fmt.Sprintf("wire.alloc_ratio_x = %.2f, want >= 5 — locb1 lost its allocs/frame advantage over JSON",
				got.Wire.AllocRatioX))
		}
		if got.Wire.Binary.EncodeAllocsPerFrame >= 1 {
			v = append(v, fmt.Sprintf("wire.binary.encode_allocs_per_frame = %.2f, want < 1 — the binary encoder stopped reusing its buffer",
				got.Wire.Binary.EncodeAllocsPerFrame))
		}
		if base.Wire != nil {
			// The binary frame layout is deterministic, so its size gates
			// at the tight accuracy tolerance; throughput is wall-clock
			// and concurrencyless, but MemStats probes make it noisier
			// than a plain loop — double the wall tolerance, like fleet.
			shortfall("wire.binary.frames_per_second", got.Wire.Binary.FramesPerSecond, base.Wire.Binary.FramesPerSecond, 2*tol.Wall, "frames/s")
			exceed("wire.binary.bytes_per_obs", got.Wire.Binary.BytesPerObs, base.Wire.Binary.BytesPerObs, tol.Err, "B/obs")
		}
	} else if base.Wire != nil {
		v = append(v, "baseline carries a wire measurement but the report has none — the wire bench was dropped")
	}
	return v
}

// LoadBaseline reads a committed benchmark JSON as a gate baseline.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if b.WallSeconds <= 0 {
		return nil, fmt.Errorf("baseline %s: missing wall_seconds", path)
	}
	return &b, nil
}

// LoadReport reads a full benchmark report (for gate-only comparisons
// of an already-written run).
func LoadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("parse report %s: %w", path, err)
	}
	return &r, nil
}
