package pipebench

import (
	"strings"
	"testing"
)

func baseReport() *Report {
	return &Report{
		Located:     75,
		WallSeconds: 0.30,
		AllocsPerOp: 100_000,
		Error:       ErrStats{N: 75, MeanM: 2.0, P50M: 1.5, P90M: 4.3, WorstM: 9.2},
		IRLS: &IRLSStats{
			Loss:        "huber",
			WallSeconds: 0.35,
			AllocsPerOp: 110_000,
			Error:       ErrStats{N: 75, MeanM: 2.1, P50M: 1.6, P90M: 4.5, WorstM: 9.4},
		},
		Fleet: &FleetStats{
			Beacons:      24,
			Shards:       8,
			ObsPushed:    9600,
			Fixes:        600,
			WallSeconds:  0.12,
			AllocsPerObs: 8.5,
		},
		Durability: &DurabilityStats{
			Sessions:            1024,
			SyncSavesPerSecond:  4000,
			GroupSavesPerSecond: 22000,
			RecoveryWallSeconds: 0.05,
			Recovered:           1024,
			Replayed:            1120,
		},
		Router: &RouterStats{
			Nodes:             3,
			Beacons:           24,
			ObsRouted:         7680,
			Fixes:             580,
			SingleWallSeconds: 0.40,
			RoutedWallSeconds: 0.30,
			DrainWallSeconds:  0.02,
			DrainedSessions:   7,
		},
		Wire: &WireStats{
			ObsPerFrame: 384,
			Beacons:     24,
			JSON:        WireCodecStats{Codec: "json", FramesPerSecond: 9_000, BytesPerObs: 110, AllocsPerFrame: 400},
			Binary:      WireCodecStats{Codec: "locb1", FramesPerSecond: 45_000, BytesPerObs: 34, EncodeAllocsPerFrame: 0, AllocsPerFrame: 3},
			SpeedupX:    5.0,
			AllocRatioX: 130,
		},
	}
}

func baseBaseline() *Baseline {
	return &Baseline{
		WallSeconds: 0.354,
		AllocsPerOp: 100_000,
		Error:       ErrStats{N: 75, MeanM: 2.0, P50M: 1.5, P90M: 4.3, WorstM: 9.2},
		IRLS: &IRLSStats{
			Loss:        "huber",
			WallSeconds: 0.40,
			AllocsPerOp: 110_000,
			Error:       ErrStats{N: 75, MeanM: 2.1, P50M: 1.6, P90M: 4.5, WorstM: 9.4},
		},
		Fleet: &FleetStats{
			Beacons:      24,
			Shards:       8,
			ObsPushed:    9600,
			Fixes:        600,
			WallSeconds:  0.13,
			AllocsPerObs: 9.0,
		},
		Durability: &DurabilityStats{
			Sessions:            1024,
			SyncSavesPerSecond:  3800,
			GroupSavesPerSecond: 21000,
			RecoveryWallSeconds: 0.06,
			Recovered:           1024,
			Replayed:            1120,
		},
		Router: &RouterStats{
			Nodes:             3,
			Beacons:           24,
			ObsRouted:         7680,
			Fixes:             580,
			SingleWallSeconds: 0.42,
			RoutedWallSeconds: 0.32,
			DrainWallSeconds:  0.025,
			DrainedSessions:   9,
		},
		Wire: &WireStats{
			ObsPerFrame: 384,
			Beacons:     24,
			JSON:        WireCodecStats{Codec: "json", FramesPerSecond: 8_800, BytesPerObs: 110, AllocsPerFrame: 400},
			Binary:      WireCodecStats{Codec: "locb1", FramesPerSecond: 44_000, BytesPerObs: 34, EncodeAllocsPerFrame: 0, AllocsPerFrame: 3},
			SpeedupX:    5.0,
			AllocRatioX: 130,
		},
	}
}

func TestGatePassesAtBaseline(t *testing.T) {
	if v := Gate(baseReport(), baseBaseline(), DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations for a matching run: %v", v)
	}
}

func TestGateCatchesEachAxis(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		axis   string
	}{
		{"wall", func(r *Report) { r.WallSeconds = 0.5 }, "wall_seconds"},
		{"allocs", func(r *Report) { r.AllocsPerOp = 200_000 }, "allocs_per_op"},
		{"mean", func(r *Report) { r.Error.MeanM = 2.5 }, "mean_m"},
		{"p90", func(r *Report) { r.Error.P90M = 5.5 }, "p90_m"},
		{"lost fixes", func(r *Report) { r.Located = 70 }, "fixes were lost"},
		{"irls warm allocs", func(r *Report) { r.IRLS.WarmFitAllocsPerOp = 3 }, "irls.warm_fit_allocs_per_op"},
		{"irls wall", func(r *Report) { r.IRLS.WallSeconds = 0.6 }, "irls.wall_seconds"},
		{"irls allocs", func(r *Report) { r.IRLS.AllocsPerOp = 200_000 }, "irls.allocs_per_op"},
		{"irls mean", func(r *Report) { r.IRLS.Error.MeanM = 2.6 }, "irls.estimate_error_m.mean_m"},
		{"irls dropped", func(r *Report) { r.IRLS = nil }, "robust bench was dropped"},
		{"fleet wall", func(r *Report) { r.Fleet.WallSeconds = 0.2 }, "fleet.wall_seconds"},
		{"fleet allocs", func(r *Report) { r.Fleet.AllocsPerObs = 20 }, "fleet.allocs_per_obs"},
		{"fleet lost fixes", func(r *Report) { r.Fleet.Fixes = 500 }, "fleet fixes were lost"},
		{"fleet dropped", func(r *Report) { r.Fleet = nil }, "fleet bench was dropped"},
		{"dur sync throughput", func(r *Report) { r.Durability.SyncSavesPerSecond = 1000 }, "durability.sync_saves_per_second"},
		{"dur group throughput", func(r *Report) { r.Durability.GroupSavesPerSecond = 5000 }, "durability.group_saves_per_second"},
		{"dur recovery wall", func(r *Report) { r.Durability.RecoveryWallSeconds = 0.5 }, "durability.recovery_wall_seconds"},
		{"dur lost sessions", func(r *Report) { r.Durability.Recovered = 900 }, "checkpoints were lost"},
		{"dur torn", func(r *Report) { r.Durability.TornTails = 1 }, "corrupted its own log"},
		{"dur quarantined", func(r *Report) { r.Durability.Quarantined = 2 }, "corrupted its own log"},
		{"dur dropped", func(r *Report) { r.Durability = nil }, "durability bench was dropped"},
		{"router fixes lost", func(r *Report) { r.Router.FixesLost = 3 }, "router.fixes_lost"},
		{"router degraded", func(r *Report) { r.Router.Degraded = 2 }, "router.degraded"},
		{"router empty drain", func(r *Report) { r.Router.DrainedSessions = 0 }, "router.drained_sessions"},
		{"router routed wall", func(r *Report) { r.Router.RoutedWallSeconds = 0.5 }, "router.routed_wall_seconds"},
		{"router single wall", func(r *Report) { r.Router.SingleWallSeconds = 0.7 }, "router.single_wall_seconds"},
		{"router drain wall", func(r *Report) { r.Router.DrainWallSeconds = 0.2 }, "router.drain_wall_seconds"},
		{"router fewer fixes", func(r *Report) { r.Router.Fixes = 500 }, "routed fixes were lost"},
		{"router dropped", func(r *Report) { r.Router = nil }, "router bench was dropped"},
		{"wire speedup floor", func(r *Report) { r.Wire.SpeedupX = 1.5 }, "wire.speedup_x"},
		{"wire alloc ratio floor", func(r *Report) { r.Wire.AllocRatioX = 3 }, "wire.alloc_ratio_x"},
		{"wire encode allocs", func(r *Report) { r.Wire.Binary.EncodeAllocsPerFrame = 2 }, "wire.binary.encode_allocs_per_frame"},
		{"wire throughput", func(r *Report) { r.Wire.Binary.FramesPerSecond = 20_000 }, "wire.binary.frames_per_second"},
		{"wire frame size", func(r *Report) { r.Wire.Binary.BytesPerObs = 50 }, "wire.binary.bytes_per_obs"},
		{"wire dropped", func(r *Report) { r.Wire = nil }, "wire bench was dropped"},
	}
	for _, tc := range cases {
		r := baseReport()
		tc.mutate(r)
		v := Gate(r, baseBaseline(), DefaultTolerances())
		if len(v) != 1 || !strings.Contains(v[0], tc.axis) {
			t.Errorf("%s: violations = %v, want one mentioning %q", tc.name, v, tc.axis)
		}
	}
}

// TestGateSkipsAbsentBaselineFields pins the compatibility contract
// with BENCH_pr2.json, which predates allocs_per_op: a zero baseline
// field disarms its check instead of failing every run.
func TestGateSkipsAbsentBaselineFields(t *testing.T) {
	b := baseBaseline()
	b.AllocsPerOp = 0
	r := baseReport()
	r.AllocsPerOp = 10_000_000
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations with alloc gate disarmed: %v", v)
	}
}

// TestGateIRLSAgainstLegacyBaseline pins the other compatibility edge:
// baselines committed before the IRLS measurement (BENCH_pr2.json,
// BENCH_pr4.json) decode IRLS as nil, disarming the relative robust
// checks — but the absolute warm-fit-allocs contract still applies to
// the fresh report.
func TestGateIRLSAgainstLegacyBaseline(t *testing.T) {
	b := baseBaseline()
	b.IRLS = nil
	r := baseReport()
	r.IRLS.WallSeconds = 99 // relative checks must be disarmed
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations against a pre-IRLS baseline: %v", v)
	}
	r.IRLS.WarmFitAllocsPerOp = 1
	v := Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "warm_fit_allocs_per_op") {
		t.Fatalf("warm-fit contract not enforced without a baseline: %v", v)
	}
}

// TestGateFleetAgainstLegacyBaseline pins the same compatibility edge
// for the fleet section: baselines committed before the fleet bench
// decode Fleet as nil, disarming every fleet check.
func TestGateFleetAgainstLegacyBaseline(t *testing.T) {
	b := baseBaseline()
	b.Fleet = nil
	r := baseReport()
	r.Fleet.WallSeconds = 99
	r.Fleet.AllocsPerObs = 9999
	r.Fleet.Fixes = 0
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations against a pre-fleet baseline: %v", v)
	}
}

// TestGateDurabilityAgainstLegacyBaseline: baselines committed before
// the durability bench decode Durability as nil, disarming the
// relative throughput/recovery checks — but the absolute zero-damage
// contract still applies to the fresh report.
func TestGateDurabilityAgainstLegacyBaseline(t *testing.T) {
	b := baseBaseline()
	b.Durability = nil
	r := baseReport()
	r.Durability.SyncSavesPerSecond = 1 // relative checks must be disarmed
	r.Durability.RecoveryWallSeconds = 99
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations against a pre-durability baseline: %v", v)
	}
	r.Durability.Quarantined = 1
	v := Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "corrupted its own log") {
		t.Fatalf("zero-damage contract not enforced without a baseline: %v", v)
	}
}

// TestGateRouterAgainstLegacyBaseline: baselines committed before the
// router bench decode Router as nil, disarming the relative wall
// checks — but the absolute contracts (fixes lost, degradation, empty
// drain) still apply to the fresh report.
func TestGateRouterAgainstLegacyBaseline(t *testing.T) {
	b := baseBaseline()
	b.Router = nil
	r := baseReport()
	r.Router.RoutedWallSeconds = 99 // relative checks must be disarmed
	r.Router.SingleWallSeconds = 99
	r.Router.DrainWallSeconds = 99
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations against a pre-router baseline: %v", v)
	}
	r.Router.FixesLost = 1
	v := Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "router.fixes_lost") {
		t.Fatalf("fixes-lost contract not enforced without a baseline: %v", v)
	}
	r.Router.FixesLost = 0
	r.Router.Degraded = 1
	v = Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "router.degraded") {
		t.Fatalf("no-degradation contract not enforced without a baseline: %v", v)
	}
}

// TestGateWireAgainstLegacyBaseline: baselines committed before the
// binary codec decode Wire as nil, disarming the relative throughput
// and frame-size checks — but the absolute speedup, alloc-ratio, and
// encode-allocs floors still apply to the fresh report.
func TestGateWireAgainstLegacyBaseline(t *testing.T) {
	b := baseBaseline()
	b.Wire = nil
	r := baseReport()
	r.Wire.Binary.FramesPerSecond = 1 // relative checks must be disarmed
	r.Wire.Binary.BytesPerObs = 9999
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations against a pre-codec baseline: %v", v)
	}
	r.Wire.SpeedupX = 1.2
	v := Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "wire.speedup_x") {
		t.Fatalf("speedup floor not enforced without a baseline: %v", v)
	}
	r.Wire.SpeedupX = 5
	r.Wire.AllocRatioX = 2
	v = Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "wire.alloc_ratio_x") {
		t.Fatalf("alloc-ratio floor not enforced without a baseline: %v", v)
	}
	r.Wire.AllocRatioX = 130
	r.Wire.Binary.EncodeAllocsPerFrame = 1
	v = Gate(r, b, DefaultTolerances())
	if len(v) != 1 || !strings.Contains(v[0], "wire.binary.encode_allocs_per_frame") {
		t.Fatalf("encode-allocs floor not enforced without a baseline: %v", v)
	}
}
