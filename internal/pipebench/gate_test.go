package pipebench

import (
	"strings"
	"testing"
)

func baseReport() *Report {
	return &Report{
		Located:     75,
		WallSeconds: 0.30,
		AllocsPerOp: 100_000,
		Error:       ErrStats{N: 75, MeanM: 2.0, P50M: 1.5, P90M: 4.3, WorstM: 9.2},
	}
}

func baseBaseline() *Baseline {
	return &Baseline{
		WallSeconds: 0.354,
		AllocsPerOp: 100_000,
		Error:       ErrStats{N: 75, MeanM: 2.0, P50M: 1.5, P90M: 4.3, WorstM: 9.2},
	}
}

func TestGatePassesAtBaseline(t *testing.T) {
	if v := Gate(baseReport(), baseBaseline(), DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations for a matching run: %v", v)
	}
}

func TestGateCatchesEachAxis(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		axis   string
	}{
		{"wall", func(r *Report) { r.WallSeconds = 0.5 }, "wall_seconds"},
		{"allocs", func(r *Report) { r.AllocsPerOp = 200_000 }, "allocs_per_op"},
		{"mean", func(r *Report) { r.Error.MeanM = 2.5 }, "mean_m"},
		{"p90", func(r *Report) { r.Error.P90M = 5.5 }, "p90_m"},
		{"lost fixes", func(r *Report) { r.Located = 70 }, "fixes were lost"},
	}
	for _, tc := range cases {
		r := baseReport()
		tc.mutate(r)
		v := Gate(r, baseBaseline(), DefaultTolerances())
		if len(v) != 1 || !strings.Contains(v[0], tc.axis) {
			t.Errorf("%s: violations = %v, want one mentioning %q", tc.name, v, tc.axis)
		}
	}
}

// TestGateSkipsAbsentBaselineFields pins the compatibility contract
// with BENCH_pr2.json, which predates allocs_per_op: a zero baseline
// field disarms its check instead of failing every run.
func TestGateSkipsAbsentBaselineFields(t *testing.T) {
	b := baseBaseline()
	b.AllocsPerOp = 0
	r := baseReport()
	r.AllocsPerOp = 10_000_000
	if v := Gate(r, b, DefaultTolerances()); len(v) != 0 {
		t.Fatalf("violations with alloc gate disarmed: %v", v)
	}
}
