package pipebench

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"locble/internal/netproto"
)

// WireCodecStats is one codec's measurement over the fixed wire
// workload: round-trip (encode + decode) throughput, frame size, and
// MemStats-derived allocation counts split by direction. BytesPerObs is
// deterministic for a given build; the rates and allocation counts are
// the hardware- and runtime-dependent part.
type WireCodecStats struct {
	Codec           string  `json:"codec"`
	Frames          int     `json:"frames"`
	FramesPerSecond float64 `json:"frames_per_second"`
	BytesPerObs     float64 `json:"bytes_per_obs"`
	// EncodeAllocsPerFrame / DecodeAllocsPerFrame are heap allocations
	// per frame in each direction, measured on a single P with MemStats
	// deltas. AllocsPerFrame is their sum — the number the pooled frame
	// buffers and the interned binary decode scratch keep low.
	EncodeAllocsPerFrame float64 `json:"encode_allocs_per_frame"`
	DecodeAllocsPerFrame float64 `json:"decode_allocs_per_frame"`
	AllocsPerFrame       float64 `json:"allocs_per_frame"`
}

// WireStats is the wire-codec benchmark section: the same push-request
// workload — wireBeacons beacons interleaved at wireObsPerBeacon
// observations each, the shape a router sub-batch has on the wire —
// encoded and decoded through the JSON path and the locb1 binary path.
// SpeedupX and AllocRatioX are the headline binary-vs-JSON ratios the
// gate holds absolute floors on.
type WireStats struct {
	ObsPerFrame int            `json:"obs_per_frame"`
	Beacons     int            `json:"beacons"`
	JSON        WireCodecStats `json:"json"`
	Binary      WireCodecStats `json:"binary"`
	// SpeedupX is binary round-trip frames/s over JSON's.
	SpeedupX float64 `json:"speedup_x"`
	// AllocRatioX is JSON allocs/frame over binary's.
	AllocRatioX float64 `json:"alloc_ratio_x"`
}

const (
	wireBeacons      = 24
	wireObsPerBeacon = 16
	wireFrames       = 256
	wireReps         = 3
)

// wireWorkload builds the fixed benchmark batch: beacons interleaved
// observation by observation (the unfavorable order for the binary
// encoder's intern scan — every entry switches beacons), deterministic
// values throughout.
func wireWorkload() []netproto.PushObs {
	obs := make([]netproto.PushObs, 0, wireBeacons*wireObsPerBeacon)
	for i := 0; i < wireObsPerBeacon; i++ {
		for b := 0; b < wireBeacons; b++ {
			obs = append(obs, netproto.PushObs{
				Beacon: fmt.Sprintf("wire-%02d", b),
				T:      float64(i) * 0.125,
				RSS:    -58.5 - 0.75*float64((b+i)%13),
				P:      0.15 * float64(i),
				Q:      0.05 * float64(b),
			})
		}
	}
	return obs
}

// runWireBench measures both codecs over the fixed workload, min-of-N
// on the round-trip wall (the usual noise-floor convention); the
// allocation counts come from the same best rep.
func runWireBench() (*WireStats, error) {
	obs := wireWorkload()
	var best *WireStats
	for r := 0; r < wireReps; r++ {
		js, err := measureJSONWire(obs)
		if err != nil {
			return nil, err
		}
		bin, err := measureBinaryWire(obs)
		if err != nil {
			return nil, err
		}
		st := &WireStats{
			ObsPerFrame: len(obs),
			Beacons:     wireBeacons,
			JSON:        js,
			Binary:      bin,
		}
		if js.FramesPerSecond > 0 {
			st.SpeedupX = bin.FramesPerSecond / js.FramesPerSecond
		}
		if bin.AllocsPerFrame > 0 {
			st.AllocRatioX = js.AllocsPerFrame / bin.AllocsPerFrame
		}
		if best == nil || st.Binary.FramesPerSecond+st.JSON.FramesPerSecond >
			best.Binary.FramesPerSecond+best.JSON.FramesPerSecond {
			best = st
		}
	}
	return best, nil
}

// measureJSONWire drives the production JSON framing path: pooled
// single-write WriteFrame encodes, pooled-read ReadFrame decodes.
func measureJSONWire(obs []netproto.PushObs) (WireCodecStats, error) {
	req := struct {
		Op  string             `json:"op"`
		Obs []netproto.PushObs `json:"obs"`
	}{Op: "push", Obs: obs}
	var buf bytes.Buffer
	if err := netproto.WriteFrame(&buf, &req); err != nil {
		return WireCodecStats{}, err
	}
	frame := append([]byte(nil), buf.Bytes()...)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var ms0, ms1 runtime.MemStats

	runtime.ReadMemStats(&ms0)
	encStart := time.Now()
	for i := 0; i < wireFrames; i++ {
		buf.Reset()
		if err := netproto.WriteFrame(&buf, &req); err != nil {
			return WireCodecStats{}, err
		}
	}
	encWall := time.Since(encStart)
	runtime.ReadMemStats(&ms1)
	encAllocs := ms1.Mallocs - ms0.Mallocs

	var dec struct {
		Op  string             `json:"op"`
		Obs []netproto.PushObs `json:"obs"`
	}
	rd := bytes.NewReader(frame)
	runtime.ReadMemStats(&ms0)
	decStart := time.Now()
	for i := 0; i < wireFrames; i++ {
		rd.Reset(frame)
		dec.Obs = dec.Obs[:0]
		if err := netproto.ReadFrame(rd, &dec); err != nil {
			return WireCodecStats{}, err
		}
	}
	decWall := time.Since(decStart)
	runtime.ReadMemStats(&ms1)
	if len(dec.Obs) != len(obs) {
		return WireCodecStats{}, fmt.Errorf("wire bench: JSON decoded %d obs, want %d", len(dec.Obs), len(obs))
	}
	return wireStatsFrom(netproto.CodecJSON, len(frame), len(obs), encWall, decWall, encAllocs, ms1.Mallocs-ms0.Mallocs), nil
}

// measureBinaryWire drives the locb1 path through the exported reusable
// encoder/decoder — the same appendPushReq/decodePushReq core the
// negotiated connection uses.
func measureBinaryWire(obs []netproto.PushObs) (WireCodecStats, error) {
	var enc netproto.BinaryPushEncoder
	var dec netproto.BinaryPushDecoder
	frame := append([]byte(nil), enc.Encode(obs)...)
	// Warm the decode scratch so steady-state allocations are measured,
	// not first-frame growth.
	if _, err := dec.Decode(frame); err != nil {
		return WireCodecStats{}, err
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var ms0, ms1 runtime.MemStats

	runtime.ReadMemStats(&ms0)
	encStart := time.Now()
	for i := 0; i < wireFrames; i++ {
		enc.Encode(obs)
	}
	encWall := time.Since(encStart)
	runtime.ReadMemStats(&ms1)
	encAllocs := ms1.Mallocs - ms0.Mallocs

	var got []netproto.PushObs
	runtime.ReadMemStats(&ms0)
	decStart := time.Now()
	for i := 0; i < wireFrames; i++ {
		var err error
		got, err = dec.Decode(frame)
		if err != nil {
			return WireCodecStats{}, err
		}
	}
	decWall := time.Since(decStart)
	runtime.ReadMemStats(&ms1)
	if len(got) != len(obs) {
		return WireCodecStats{}, fmt.Errorf("wire bench: binary decoded %d obs, want %d", len(got), len(obs))
	}
	return wireStatsFrom(netproto.CodecBinary, len(frame), len(obs), encWall, decWall, encAllocs, ms1.Mallocs-ms0.Mallocs), nil
}

func wireStatsFrom(codec string, frameBytes, obsPerFrame int, encWall, decWall time.Duration, encAllocs, decAllocs uint64) WireCodecStats {
	st := WireCodecStats{
		Codec:                codec,
		Frames:               wireFrames,
		BytesPerObs:          float64(frameBytes) / float64(obsPerFrame),
		EncodeAllocsPerFrame: float64(encAllocs) / wireFrames,
		DecodeAllocsPerFrame: float64(decAllocs) / wireFrames,
	}
	st.AllocsPerFrame = st.EncodeAllocsPerFrame + st.DecodeAllocsPerFrame
	if rt := (encWall + decWall).Seconds(); rt > 0 {
		st.FramesPerSecond = wireFrames / rt
	}
	return st
}
