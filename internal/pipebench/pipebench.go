// Package pipebench runs the instrumented end-to-end pipeline benchmark
// shared by cmd/locble-bench (-json) and cmd/benchgate: repeated
// LocateAll batches over the default three-beacon scenario on one
// System, reported as machine-readable JSON — wall time, per-stage
// latency from the engine's metric registry, the deterministic
// localization-error distribution, and runtime.MemStats-derived
// allocation deltas per LocateAll call.
//
// The error statistics are fully deterministic for a given seed (the
// simulation and the regression are seeded and allocation-order
// independent), so regression gates can compare them tightly across
// machines; wall time and allocation counts are the hardware- and
// runtime-dependent part.
package pipebench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"locble"
	"locble/internal/core"
	"locble/internal/estimate"
	"locble/internal/fleet"
)

// Config parameterizes a benchmark run.
type Config struct {
	// Seed is the base simulation seed (trial t uses Seed + t*101).
	Seed int64
	// Trials is how many simulate+LocateAll rounds to run.
	Trials int
	// PerTrial includes the per-trial breakdown in the report.
	PerTrial bool
}

// StageStats summarizes one pipeline stage's latency histogram.
type StageStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	MinUS  float64 `json:"min_us"`
	MaxUS  float64 `json:"max_us"`
}

// ErrStats summarizes the localization error distribution.
type ErrStats struct {
	N      int     `json:"n"`
	MeanM  float64 `json:"mean_m"`
	P50M   float64 `json:"p50_m"`
	P90M   float64 `json:"p90_m"`
	WorstM float64 `json:"worst_m"`
}

// TrialStats is one trial's cost: the wall time and heap activity of
// its LocateAll call (simulation excluded), from MemStats deltas.
type TrialStats struct {
	Trial       int     `json:"trial"`
	Seed        int64   `json:"seed"`
	Located     int     `json:"located"`
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// IRLSStats is the robust-path measurement: the same trials rerun
// through a Huber-loss System, plus a direct allocation probe of the
// warmed IRLS inner fit. WarmFitAllocsPerOp is the robust-estimation
// contract — the pooled Solver arenas keep it at exactly 0 — and the
// gate fails any run where it drifts upward.
type IRLSStats struct {
	Loss        string  `json:"loss"`
	Trials      int     `json:"trials"`
	Located     int     `json:"located"`
	WallSeconds float64 `json:"wall_seconds"`
	// AllocsPerOp / BytesPerOp average the LocateAll MemStats deltas
	// over the warm trials (trial 0 fills the pools and is excluded).
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// WarmFitAllocsPerOp is the measured allocation count of one warmed
	// robust inner-fit minimization (Solver.FitProbe). Must be 0.
	WarmFitAllocsPerOp float64 `json:"warm_fit_allocs_per_op"`
	// Downweighted totals the observations the robust loss suppressed
	// across all trials (the estimate.irls.downweighted counter delta).
	Downweighted int64    `json:"downweighted"`
	Error        ErrStats `json:"estimate_error_m"`
}

// FleetStats is the fleet-serving measurement: a deterministic batched
// multi-beacon ingest run on one Fleet (fixed shard count, fixed synth
// streams, a beacon cohort going silent mid-run so eviction and restore
// are on the clock). Counts (obs, batches, fixes, evicted, restored)
// are deterministic for a given build; wall time and the MemStats-
// derived allocation rates are the hardware-dependent part.
type FleetStats struct {
	Beacons        int     `json:"beacons"`
	Shards         int     `json:"shards"`
	ObsPushed      int64   `json:"obs_pushed"`
	Batches        int64   `json:"batches"`
	Fixes          int     `json:"fixes"`
	Evicted        int64   `json:"evicted"`
	Restored       int64   `json:"restored"`
	WallSeconds    float64 `json:"wall_seconds"`
	ObsPerSecond   float64 `json:"obs_per_second"`
	FixesPerSecond float64 `json:"fixes_per_second"`
	// AllocsPerObs / BytesPerObs average the MemStats deltas of the
	// whole ingest loop over every pushed observation.
	AllocsPerObs float64 `json:"allocs_per_obs"`
	BytesPerObs  float64 `json:"bytes_per_obs"`
}

// DurabilityStats is the durable checkpoint store measurement: save
// throughput with every Save individually fsync-acknowledged (one
// writer, no batching possible) and under group commit (concurrent
// writers sharing fsync cohorts), then the recovery wall time of
// reopening the resulting ~1k-session store from disk. Sessions and
// Recovered are deterministic; the rates and walls are the hardware-
// and filesystem-dependent part (fsync cost dominates). TornTails and
// Quarantined must be zero — this is a clean shutdown, so any reported
// damage is a store bug, and the gate fails it absolutely.
type DurabilityStats struct {
	Sessions            int     `json:"sessions"`
	SyncSaves           int     `json:"sync_saves"`
	SyncSavesPerSecond  float64 `json:"sync_saves_per_second"`
	GroupWriters        int     `json:"group_writers"`
	GroupSaves          int     `json:"group_saves"`
	GroupSavesPerSecond float64 `json:"group_saves_per_second"`
	RecoveryWallSeconds float64 `json:"recovery_wall_seconds"`
	Recovered           int     `json:"recovered"`
	Replayed            int64   `json:"replayed"`
	TornTails           int64   `json:"torn_tails"`
	Quarantined         int64   `json:"quarantined"`
}

// Report is the benchmark's machine-readable output. AllocsPerOp and
// BytesPerOp average the MemStats (Mallocs, TotalAlloc) deltas over the
// LocateAll calls only — the number a scratch-arena regression moves.
type Report struct {
	Bench       string                `json:"bench"`
	Seed        int64                 `json:"seed"`
	Trials      int                   `json:"trials"`
	Beacons     int                   `json:"beacons"`
	Located     int                   `json:"located"`
	WallSeconds float64               `json:"wall_seconds"`
	AllocsPerOp uint64                `json:"allocs_per_op"`
	BytesPerOp  uint64                `json:"bytes_per_op"`
	Error       ErrStats              `json:"estimate_error_m"`
	IRLS        *IRLSStats            `json:"irls,omitempty"`
	Fleet       *FleetStats           `json:"fleet,omitempty"`
	Durability  *DurabilityStats      `json:"durability,omitempty"`
	Router      *RouterStats          `json:"router,omitempty"`
	Wire        *WireStats            `json:"wire,omitempty"`
	Stages      map[string]StageStats `json:"stage_latency"`
	PerTrial    []TrialStats          `json:"per_trial,omitempty"`
	Engine      locble.Metrics        `json:"engine_metrics"`
	Process     locble.Metrics        `json:"process_metrics"`
}

// Run executes the benchmark: Trials rounds of simulate + LocateAll on
// one System. WallSeconds spans the whole loop (simulation included),
// matching the historical BENCH_pr2.json measurement, so the series
// stays comparable across PRs.
func Run(cfg Config) (*Report, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 25
	}
	sys, err := locble.New()
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	beacons := []locble.BeaconSpec{
		{Name: "b0", X: 6, Y: 3},
		{Name: "b1", X: 2, Y: 5},
		{Name: "b2", X: 7, Y: 1},
	}
	truth := make(map[string][2]float64, len(beacons))
	for _, b := range beacons {
		truth[b.Name] = [2]float64{b.X, b.Y}
	}

	var (
		errsM     []float64
		perTrial  []TrialStats
		sumAllocs uint64
		sumBytes  uint64
		ms0, ms1  runtime.MemStats
	)
	start := time.Now()
	for t := 0; t < cfg.Trials; t++ {
		seed := cfg.Seed + int64(t)*101
		trace, err := locble.Simulate(locble.Scenario{
			Beacons:      beacons,
			ObserverPlan: locble.LShapeWalk(0, 4, 4),
			Seed:         seed,
		})
		if err != nil {
			return nil, err
		}
		opStart := time.Now()
		runtime.ReadMemStats(&ms0)
		fixes := sys.LocateAll(trace)
		runtime.ReadMemStats(&ms1)
		allocs := ms1.Mallocs - ms0.Mallocs
		bytes := ms1.TotalAlloc - ms0.TotalAlloc
		sumAllocs += allocs
		sumBytes += bytes
		for name, p := range fixes {
			g := truth[name]
			errsM = append(errsM, math.Hypot(p.X-g[0], p.Y-g[1]))
		}
		if cfg.PerTrial {
			perTrial = append(perTrial, TrialStats{
				Trial:       t,
				Seed:        seed,
				Located:     len(fixes),
				WallSeconds: time.Since(opStart).Seconds(),
				Allocs:      allocs,
				AllocBytes:  bytes,
			})
		}
	}
	wall := time.Since(start)
	sort.Float64s(errsM)

	irls, err := runIRLS(cfg, beacons, truth)
	if err != nil {
		return nil, err
	}
	fleetStats, err := runFleetBench()
	if err != nil {
		return nil, err
	}
	durStats, err := runDurabilityBench()
	if err != nil {
		return nil, err
	}
	routerStats, err := runRouterBench()
	if err != nil {
		return nil, err
	}
	wireStats, err := runWireBench()
	if err != nil {
		return nil, err
	}

	snap := sys.Metrics()
	stages := make(map[string]StageStats)
	for name, h := range snap.Histograms {
		if !strings.HasPrefix(name, "core.stage.") || !strings.HasSuffix(name, ".seconds") || h.Count == 0 {
			continue
		}
		st := strings.TrimSuffix(strings.TrimPrefix(name, "core.stage."), ".seconds")
		stages[st] = StageStats{
			Count:  h.Count,
			MeanUS: h.Mean() * 1e6,
			MinUS:  h.Min * 1e6,
			MaxUS:  h.Max * 1e6,
		}
	}
	return &Report{
		Bench:       "locateall-default",
		Seed:        cfg.Seed,
		Trials:      cfg.Trials,
		Beacons:     len(beacons),
		Located:     len(errsM),
		WallSeconds: wall.Seconds(),
		AllocsPerOp: sumAllocs / uint64(cfg.Trials),
		BytesPerOp:  sumBytes / uint64(cfg.Trials),
		Error:       summarizeErrors(errsM),
		IRLS:        irls,
		Fleet:       fleetStats,
		Durability:  durStats,
		Router:      routerStats,
		Wire:        wireStats,
		Stages:      stages,
		PerTrial:    perTrial,
		Engine:      snap,
		Process:     locble.ProcessMetrics(),
	}, nil
}

// runIRLS reruns the benchmark scenarios through a Huber-loss System
// and probes the warmed robust inner fit for allocations. Trial 0
// warms the solver pools and is excluded from the per-op averages.
func runIRLS(cfg Config, beacons []locble.BeaconSpec, truth map[string][2]float64) (*IRLSStats, error) {
	sys, err := locble.New(locble.WithLoss(locble.LossHuber))
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	downBefore := locble.ProcessMetrics().Counters["estimate.irls.downweighted"]
	var (
		errsM     []float64
		located   int
		sumAllocs uint64
		sumBytes  uint64
		warmOps   uint64
		ms0, ms1  runtime.MemStats
	)
	start := time.Now()
	for t := 0; t < cfg.Trials; t++ {
		seed := cfg.Seed + int64(t)*101
		trace, err := locble.Simulate(locble.Scenario{
			Beacons:      beacons,
			ObserverPlan: locble.LShapeWalk(0, 4, 4),
			Seed:         seed,
		})
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&ms0)
		fixes := sys.LocateAll(trace)
		runtime.ReadMemStats(&ms1)
		if t > 0 { // trial 0 is the pool-warming op
			sumAllocs += ms1.Mallocs - ms0.Mallocs
			sumBytes += ms1.TotalAlloc - ms0.TotalAlloc
			warmOps++
		}
		located += len(fixes)
		for name, p := range fixes {
			g := truth[name]
			errsM = append(errsM, math.Hypot(p.X-g[0], p.Y-g[1]))
		}
	}
	wall := time.Since(start)
	sort.Float64s(errsM)

	st := &IRLSStats{
		Loss:               locble.LossHuber.String(),
		Trials:             cfg.Trials,
		Located:            located,
		WallSeconds:        wall.Seconds(),
		WarmFitAllocsPerOp: warmFitAllocs(),
		Downweighted:       locble.ProcessMetrics().Counters["estimate.irls.downweighted"] - downBefore,
		Error:              summarizeErrors(errsM),
	}
	if warmOps > 0 {
		st.AllocsPerOp = sumAllocs / warmOps
		st.BytesPerOp = sumBytes / warmOps
	}
	return st, nil
}

// runFleetBench measures the fleet serving path: batched ingest for a
// fixed population of synthetic beacons through one Fleet, with one
// cohort going silent mid-run so checkpoint-on-evict and restore-on-
// reappearance are part of the measured loop. Everything that shapes
// the work is pinned — shard count, stream contents, batch slicing —
// so the counts are machine-independent and the gate can compare them
// tightly. The fleet is concurrent (one goroutine per shard), which
// makes a single wall measurement scheduler-noisy; the whole scenario
// is repeated and the best rep reported, the same min-of-N convention
// benchmarks use to estimate the noise floor.
func runFleetBench() (*FleetStats, error) {
	const reps = 3
	var best *FleetStats
	for r := 0; r < reps; r++ {
		st, err := fleetBenchOnce()
		if err != nil {
			return nil, err
		}
		if best == nil || st.WallSeconds < best.WallSeconds {
			best = st
		}
	}
	return best, nil
}

func fleetBenchOnce() (*FleetStats, error) {
	// 24 beacons over 8 shards puts every silent beacon in a shard with
	// at least one active neighbor, so the idle sweep (driven by
	// observation time on the shard's other sessions) actually fires
	// during the gap — the scenario exercises evict AND restore, not
	// just steady-state ingest.
	const (
		nBeacons = 24
		shards   = 8
		n        = 320 // 40 s per beacon at 8 Hz
		slice    = 16  // 2 s batches
		gapLo    = 96  // every 4th beacon silent for t in [12, 28) s
		gapHi    = 224
	)
	sys, err := locble.New()
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	fl, err := sys.NewFleet(locble.FleetConfig{
		Shards:     shards,
		Session:    locble.TrackSessionConfig{SampleRateHz: 8},
		IdleMaxAge: 5,
	})
	if err != nil {
		return nil, err
	}
	defer fl.Close()

	streams := make([][]locble.FleetObs, nBeacons)
	for i := range streams {
		name := fmt.Sprintf("fb-%02d", i)
		for _, o := range fleet.SynthStream(name, n, 0.37*float64(i)) {
			streams[i] = append(streams[i], locble.FleetObs{
				Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q,
			})
		}
	}

	fixes := 0
	var ms0, ms1 runtime.MemStats
	start := time.Now()
	runtime.ReadMemStats(&ms0)
	for lo := 0; lo < n; lo += slice {
		var batch []locble.FleetObs
		for i, s := range streams {
			if i%4 == 0 && lo >= gapLo && lo < gapHi {
				continue
			}
			batch = append(batch, s[lo:lo+slice]...)
		}
		res, err := fl.PushBatch(batch)
		if err != nil {
			return nil, err
		}
		for _, r := range res {
			if r.Err != nil {
				return nil, fmt.Errorf("fleet bench: %s: %w", r.Beacon, r.Err)
			}
			fixes += len(r.Points)
		}
	}
	runtime.ReadMemStats(&ms1)
	wall := time.Since(start)

	snap := fl.Metrics()
	obsPushed := snap.Counters["fleet.obs.pushed"]
	st := &FleetStats{
		Beacons:     nBeacons,
		Shards:      shards,
		ObsPushed:   obsPushed,
		Batches:     snap.Counters["fleet.batches"],
		Fixes:       fixes,
		Evicted:     snap.Counters["fleet.sessions.evicted"],
		Restored:    snap.Counters["fleet.sessions.restored"],
		WallSeconds: wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		st.ObsPerSecond = float64(obsPushed) / s
		st.FixesPerSecond = float64(fixes) / s
	}
	if obsPushed > 0 {
		st.AllocsPerObs = float64(ms1.Mallocs-ms0.Mallocs) / float64(obsPushed)
		st.BytesPerObs = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(obsPushed)
	}
	return st, nil
}

// runDurabilityBench measures the durable checkpoint store on a real
// (temp) directory. Three phases on one store: sequential saves where
// every Save pays its own fsync (the no-group-commit floor), a
// concurrent phase where 8 writers share group-commit fsync cohorts,
// and a reopen of the resulting 1k-session store timing recovery
// replay. The checkpoints carry a realistic window (16-deep gamma
// history, 24 buffered observations), so record sizes match what fleet
// eviction actually writes.
func runDurabilityBench() (*DurabilityStats, error) {
	const (
		syncSaves = 96
		writers   = 8
		perWriter = 128
		sessions  = writers * perWriter // 1024 recovered sessions
	)
	dir, err := os.MkdirTemp("", "locble-durbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	mkcp := func(beacon string, seq int) *core.SessionCheckpoint {
		hist := make([]float64, 16)
		for i := range hist {
			hist[i] = -60 - float64((seq+i)%7)
		}
		win := make([]estimate.Obs, 24)
		for i := range win {
			win[i] = estimate.Obs{
				T: float64(seq) + float64(i)*0.125, RSS: -62 + float64(i%5),
				P: 0.1 * float64(i), Q: 0.05 * float64(i),
			}
		}
		return &core.SessionCheckpoint{
			Version: core.SessionCheckpointVersion,
			Beacon:  beacon, Window: 6, Step: 2, SampleRateHz: 8,
			WindowObs: win, Pushed: int64(seq),
			GammaHist: hist, GammaShift: 0.01 * float64(seq),
		}
	}
	name := func(i int) string { return fmt.Sprintf("dur-%04d", i) }

	st, err := locble.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	// Phase 1: one writer, every Save acknowledged by its own fsync.
	start := time.Now()
	for i := 0; i < syncSaves; i++ {
		if err := st.Save(name(i), mkcp(name(i), i)); err != nil {
			st.Close()
			return nil, err
		}
	}
	syncWall := time.Since(start).Seconds()

	// Phase 2: concurrent writers; the store batches their fsyncs into
	// group-commit cohorts. Covers all 1024 names (phase 1's are
	// overwritten — recovery replays both and keeps the newest).
	start = time.Now()
	var wg sync.WaitGroup
	werrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				if err := st.Save(name(id), mkcp(name(id), sessions+id)); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	groupWall := time.Since(start).Seconds()
	for _, err := range werrs {
		if err != nil {
			st.Close()
			return nil, err
		}
	}
	if err := st.Close(); err != nil {
		return nil, err
	}

	// Phase 3: recovery — reopen the store and replay it all back.
	start = time.Now()
	st2, err := locble.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	recoveryWall := time.Since(start).Seconds()
	rec := st2.RecoveryStats()
	recovered := st2.Len()
	if err := st2.Close(); err != nil {
		return nil, err
	}
	if recovered != sessions {
		return nil, fmt.Errorf("durability bench: recovered %d sessions, want %d", recovered, sessions)
	}

	ds := &DurabilityStats{
		Sessions:            sessions,
		SyncSaves:           syncSaves,
		GroupWriters:        writers,
		GroupSaves:          sessions,
		RecoveryWallSeconds: recoveryWall,
		Recovered:           recovered,
		Replayed:            rec.Replayed,
		TornTails:           rec.TornTails,
		Quarantined:         rec.Quarantined,
	}
	if syncWall > 0 {
		ds.SyncSavesPerSecond = float64(syncSaves) / syncWall
	}
	if groupWall > 0 {
		ds.GroupSavesPerSecond = float64(sessions) / groupWall
	}
	return ds, nil
}

// warmFitAllocs measures heap allocations per warmed robust inner-fit
// minimization (estimate.Solver.FitProbe under Huber loss) — the
// pooled-arena contract says exactly 0. Measured with MemStats deltas
// on a single P to keep concurrent runtime noise out of the count.
func warmFitAllocs() float64 {
	obs := synthIRLSObs()
	ecfg := estimate.DefaultConfig()
	ecfg.Loss = estimate.LossHuber
	s := estimate.NewSolver()
	s.FitProbe(obs, ecfg, 3, 1) // size every arena

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	const rounds = 100
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < rounds; i++ {
		s.FitProbe(obs, ecfg, 3, 1)
	}
	runtime.ReadMemStats(&ms1)
	return float64(ms1.Mallocs-ms0.Mallocs) / rounds
}

// synthIRLSObs builds a deterministic L-walk observation set for the
// allocation probe: a beacon at (5.5, 2) seen from a 4 m + 4 m walk
// with ideal log-distance RSS plus a handful of gross outliers so the
// Huber reweighting loop actually exercises its down-weight branch.
func synthIRLSObs() []estimate.Obs {
	const (
		bx, by   = 5.5, 2.0
		gamma, n = -60.0, 2.2
		stepM    = 0.15
		legSteps = 27 // ≈ 4 m per leg
	)
	obs := make([]estimate.Obs, 0, 2*legSteps)
	add := func(i int, px, py float64) {
		d := math.Hypot(px-bx, py-by)
		rss := gamma - 10*n*math.Log10(math.Max(d, 0.1))
		if i%9 == 4 { // periodic gross outlier, +18 dB
			rss += 18
		}
		obs = append(obs, estimate.Obs{T: float64(i) * 0.1, RSS: rss, P: px, Q: py})
	}
	for i := 0; i < legSteps; i++ {
		add(i, float64(i)*stepM, 0)
	}
	for i := 0; i < legSteps; i++ {
		add(legSteps+i, float64(legSteps-1)*stepM, float64(i+1)*stepM)
	}
	return obs
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary is the one-line human summary printed after a run.
func (r *Report) Summary() string {
	s := fmt.Sprintf("%d trials, %d/%d located, mean error %.2f m, wall %.2f s, %d allocs/op (%.1f MB/op)",
		r.Trials, r.Located, r.Trials*r.Beacons, r.Error.MeanM, r.WallSeconds,
		r.AllocsPerOp, float64(r.BytesPerOp)/1e6)
	if r.IRLS != nil {
		s += fmt.Sprintf("; %s IRLS: mean error %.2f m, %d downweighted, warm fit %.0f allocs/op",
			r.IRLS.Loss, r.IRLS.Error.MeanM, r.IRLS.Downweighted, r.IRLS.WarmFitAllocsPerOp)
	}
	if r.Fleet != nil {
		s += fmt.Sprintf("; fleet: %d beacons/%d shards, %.0f obs/s, %d fixes, %d evicted/%d restored, %.1f allocs/obs",
			r.Fleet.Beacons, r.Fleet.Shards, r.Fleet.ObsPerSecond, r.Fleet.Fixes,
			r.Fleet.Evicted, r.Fleet.Restored, r.Fleet.AllocsPerObs)
	}
	if r.Durability != nil {
		s += fmt.Sprintf("; durability: %.0f saves/s sync, %.0f saves/s group-commit, %d sessions recovered in %.3f s",
			r.Durability.SyncSavesPerSecond, r.Durability.GroupSavesPerSecond,
			r.Durability.Recovered, r.Durability.RecoveryWallSeconds)
	}
	if r.Router != nil {
		s += fmt.Sprintf("; router: %d nodes, %.2fx scale efficiency, drain %.0f ms (%d sessions), %d fixes lost",
			r.Router.Nodes, r.Router.ScaleEfficiency,
			r.Router.DrainWallSeconds*1e3, r.Router.DrainedSessions, r.Router.FixesLost)
	}
	if r.Wire != nil {
		s += fmt.Sprintf("; wire: locb1 %.2fx JSON throughput, allocs/frame %.1f vs %.1f (%.1fx), %.0f vs %.0f B/obs",
			r.Wire.SpeedupX, r.Wire.Binary.AllocsPerFrame, r.Wire.JSON.AllocsPerFrame,
			r.Wire.AllocRatioX, r.Wire.Binary.BytesPerObs, r.Wire.JSON.BytesPerObs)
	}
	return s
}

func summarizeErrors(sorted []float64) ErrStats {
	if len(sorted) == 0 {
		return ErrStats{}
	}
	sum := 0.0
	for _, e := range sorted {
		sum += e
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return ErrStats{
		N:      len(sorted),
		MeanM:  sum / float64(len(sorted)),
		P50M:   q(0.5),
		P90M:   q(0.9),
		WorstM: sorted[len(sorted)-1],
	}
}
