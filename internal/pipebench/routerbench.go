// Router bench: the multi-node scale-out section. A 3-node loopback
// cluster (each node its own engine, fleet, and netproto server, all
// sharing one durable checkpoint store) ingests the same fixed workload
// as a single fleet server, through a consistent-hash router, with a
// planned drain of one node mid-run. The section measures what the
// router promises: scale-out costs transport only (routed vs single
// wall), a drain is fast (its wall-clock), and — the absolute contract —
// the routed-with-drain run emits exactly the fixes the single fleet
// does. Any shortfall is an acknowledged fix lost in the handoff and
// the gate fails it with zero tolerance.
package pipebench

import (
	"context"
	"fmt"
	"os"
	"time"

	"locble/internal/core"
	"locble/internal/durable"
	"locble/internal/fleet"
	"locble/internal/netproto"
	"locble/internal/router"
)

// RouterStats is the multi-node routing measurement. Fixes, FixesLost
// and Degraded are deterministic for a given build (routing is pure
// transport, so the routed fix count must equal the single-fleet
// count); the walls are the hardware-dependent part. DrainedSessions
// depends on which ephemeral-port address the ring hashes where, so it
// is gated only as nonzero — the drained node is always chosen to be
// serving at least one beacon.
type RouterStats struct {
	Nodes     int   `json:"nodes"`
	Beacons   int   `json:"beacons"`
	ObsRouted int64 `json:"obs_routed"`
	// Fixes is the routed run's total; FixesLost is the single-fleet
	// reference total minus it. Must be 0 — the drain/handoff contract.
	Fixes     int `json:"fixes"`
	FixesLost int `json:"fixes_lost"`
	// Degraded counts routed results that fell back to a non-home node.
	// Nothing dies in this scenario, so any degradation is a router bug.
	Degraded          int     `json:"degraded"`
	SingleWallSeconds float64 `json:"single_wall_seconds"`
	RoutedWallSeconds float64 `json:"routed_wall_seconds"`
	// ScaleEfficiency is single wall / routed wall: >1 means the routed
	// cluster beat one fleet on the same workload (loopback transport
	// included). Informational — the gate bounds the walls directly.
	ScaleEfficiency  float64 `json:"scale_efficiency"`
	DrainWallSeconds float64 `json:"drain_wall_seconds"`
	DrainedSessions  int     `json:"drained_sessions"`
}

const (
	routerNodes   = 3
	routerBeacons = 24
	routerObsN    = 320 // 40 s per beacon at 8 Hz
	routerSlice   = 16  // 2 s batches
	routerDrainAt = 160 // drain one node halfway through the stream
)

func routerStreams() [][]fleet.Obs {
	streams := make([][]fleet.Obs, routerBeacons)
	for i := range streams {
		streams[i] = fleet.SynthStream(fmt.Sprintf("rb-%02d", i), routerObsN, 0.53*float64(i))
	}
	return streams
}

// benchNode is one loopback fleet server of the bench cluster.
type benchNode struct {
	eng *core.Engine
	fl  *fleet.Fleet
	srv *netproto.Server
}

func startBenchNode(store fleet.CheckpointStore) (*benchNode, error) {
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fl, err := fleet.New(eng, fleet.Config{
		Session: core.TrackSessionConfig{SampleRateHz: 8},
		Store:   store,
	})
	if err != nil {
		eng.Close()
		return nil, err
	}
	srv, err := netproto.NewServer("routerbench", 0)
	if err != nil {
		fl.Close()
		eng.Close()
		return nil, err
	}
	srv.SetFleet(fl)
	return &benchNode{eng: eng, fl: fl, srv: srv}, nil
}

func (n *benchNode) close() {
	n.srv.Close()
	n.fl.Close()
	n.eng.Close()
}

// runRouterBench runs the scenario a few times and keeps the rep with
// the best routed wall (the min-of-N convention the fleet bench uses —
// the cluster is heavily concurrent, so single walls are scheduler-
// noisy). Correctness counters are the *worst* across reps: a fix lost
// or a degraded result in any rep must reach the gate.
func runRouterBench() (*RouterStats, error) {
	const reps = 3
	var best *RouterStats
	fixesLost, degraded := 0, 0
	for r := 0; r < reps; r++ {
		st, err := routerBenchOnce()
		if err != nil {
			return nil, err
		}
		if st.FixesLost > fixesLost {
			fixesLost = st.FixesLost
		}
		if st.Degraded > degraded {
			degraded = st.Degraded
		}
		if best == nil || st.RoutedWallSeconds < best.RoutedWallSeconds {
			best = st
		}
	}
	best.FixesLost = fixesLost
	best.Degraded = degraded
	return best, nil
}

func routerBenchOnce() (*RouterStats, error) {
	streams := routerStreams()
	ctx := context.Background()

	// Reference: the same workload through ONE fleet server over the
	// wire, sequentially. Its fix count is the ground truth the routed
	// run must match exactly.
	single, err := startBenchNode(nil)
	if err != nil {
		return nil, err
	}
	refFixes := 0
	singleStart := time.Now()
	err = func() error {
		defer single.close()
		cl, err := netproto.DialFleet(ctx, single.srv.Addr())
		if err != nil {
			return err
		}
		defer cl.Close()
		for lo := 0; lo < routerObsN; lo += routerSlice {
			batch := make([]netproto.PushObs, 0, routerBeacons*routerSlice)
			for _, s := range streams {
				for _, o := range s[lo : lo+routerSlice] {
					batch = append(batch, netproto.PushObs{Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
				}
			}
			res, err := cl.Push(ctx, batch)
			if err != nil {
				return err
			}
			for _, r := range res {
				if r.Err != "" {
					return fmt.Errorf("router bench single: %s: %s", r.Beacon, r.Err)
				}
				refFixes += len(r.Fixes)
			}
		}
		return nil
	}()
	singleWall := time.Since(singleStart).Seconds()
	if err != nil {
		return nil, err
	}

	// Routed: three nodes sharing one durable store — the deployment
	// shape where a drain's checkpoints are readable by the survivors.
	dir, err := os.MkdirTemp("", "locble-routerbench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := durable.Open(dir, nil)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	nodes := make([]*benchNode, routerNodes)
	for i := range nodes {
		n, err := startBenchNode(store)
		if err != nil {
			for _, c := range nodes[:i] {
				c.close()
			}
			return nil, err
		}
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	addrs := make([]string, routerNodes)
	for i, n := range nodes {
		addrs[i] = n.srv.Addr()
	}
	rt, err := router.New(addrs, router.Config{})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	st := &RouterStats{Nodes: routerNodes, Beacons: routerBeacons}
	victim := ""
	routedStart := time.Now()
	for lo := 0; lo < routerObsN; lo += routerSlice {
		if lo == routerDrainAt {
			dStart := time.Now()
			n, err := rt.Drain(ctx, victim)
			st.DrainWallSeconds = time.Since(dStart).Seconds()
			if err != nil {
				return nil, fmt.Errorf("router bench drain: %w", err)
			}
			st.DrainedSessions = n
		}
		batch := make([]fleet.Obs, 0, routerBeacons*routerSlice)
		for _, s := range streams {
			batch = append(batch, s[lo:lo+routerSlice]...)
		}
		results, err := rt.PushBatch(ctx, batch)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("router bench routed: %s: %w", r.Beacon, r.Err)
			}
			if r.Degraded {
				st.Degraded++
			}
			st.Fixes += len(r.Fixes)
			// Drain whichever node serves the first beacon — guaranteed
			// to hold at least one session when the drain fires.
			if victim == "" && r.Beacon == "rb-00" {
				victim = r.Node
			}
		}
	}
	st.RoutedWallSeconds = time.Since(routedStart).Seconds()
	st.SingleWallSeconds = singleWall
	if st.RoutedWallSeconds > 0 {
		st.ScaleEfficiency = singleWall / st.RoutedWallSeconds
	}
	st.ObsRouted = rt.Metrics().Counters["router.obs.routed"]
	st.FixesLost = refFixes - st.Fixes
	return st, nil
}
