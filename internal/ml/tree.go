package ml

import (
	"math"
	"sort"

	"locble/internal/rng"
)

// TreeConfig holds CART training hyperparameters.
type TreeConfig struct {
	MaxDepth    int
	MinLeafSize int
	// MaxFeatures limits the number of features considered per split
	// (0 = all); random forests set this to √F.
	MaxFeatures int
	Seed        int64
}

// DefaultTreeConfig returns sensible defaults for EnvAware-sized data.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinLeafSize: 3}
}

// DecisionTree is a CART classifier with Gini-impurity splits.
type DecisionTree struct {
	root    *treeNode
	classes int
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// leaf prediction
	label int
	leaf  bool
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "decision-tree" }

// TrainDecisionTree fits a CART tree on d.
func TrainDecisionTree(d Dataset, cfg TreeConfig) (*DecisionTree, error) {
	_, classes, err := d.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeafSize <= 0 {
		cfg.MinLeafSize = 1
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	src := rng.New(cfg.Seed)
	tree := &DecisionTree{classes: classes}
	tree.root = buildNode(d, idx, cfg, classes, 0, src)
	return tree, nil
}

func buildNode(d Dataset, idx []int, cfg TreeConfig, classes, depth int, src *rng.Source) *treeNode {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	majority, best := 0, -1
	pure := true
	for c, n := range counts {
		if n > best {
			majority, best = c, n
		}
		if n != 0 && n != len(idx) {
			pure = false
		}
	}
	if pure || depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeafSize {
		return &treeNode{leaf: true, label: majority}
	}

	features := len(d.X[0])
	candidates := make([]int, features)
	for f := range candidates {
		candidates[f] = f
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < features {
		perm := src.Perm(features)
		candidates = perm[:cfg.MaxFeatures]
	}

	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0
	vals := make([]float64, 0, len(idx))
	for _, f := range candidates {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, d.X[i][f])
		}
		sort.Float64s(vals)
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			thr := (vals[k] + vals[k-1]) / 2
			g := splitGini(d, idx, f, thr, classes)
			if g < bestGini {
				bestGini, bestFeature, bestThreshold = g, f, thr
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, label: majority}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < cfg.MinLeafSize || len(rightIdx) < cfg.MinLeafSize {
		return &treeNode{leaf: true, label: majority}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      buildNode(d, leftIdx, cfg, classes, depth+1, src),
		right:     buildNode(d, rightIdx, cfg, classes, depth+1, src),
	}
}

func splitGini(d Dataset, idx []int, f int, thr float64, classes int) float64 {
	lc := make([]int, classes)
	rc := make([]int, classes)
	nl, nr := 0, 0
	for _, i := range idx {
		if d.X[i][f] <= thr {
			lc[d.Y[i]]++
			nl++
		} else {
			rc[d.Y[i]]++
			nr++
		}
	}
	gini := func(c []int, n int) float64 {
		if n == 0 {
			return 0
		}
		g := 1.0
		for _, k := range c {
			p := float64(k) / float64(n)
			g -= p * p
		}
		return g
	}
	n := float64(nl + nr)
	return float64(nl)/n*gini(lc, nl) + float64(nr)/n*gini(rc, nr)
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// ForestConfig holds random-forest hyperparameters.
type ForestConfig struct {
	Trees int
	Tree  TreeConfig
	Seed  int64
}

// DefaultForestConfig returns defaults for EnvAware-sized data.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 25, Tree: TreeConfig{MaxDepth: 10, MinLeafSize: 2}, Seed: 7}
}

// RandomForest is a bootstrap-aggregated ensemble of CART trees with
// per-split feature subsampling.
type RandomForest struct {
	trees   []*DecisionTree
	classes int
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "random-forest" }

// TrainRandomForest fits the ensemble on d.
func TrainRandomForest(d Dataset, cfg ForestConfig) (*RandomForest, error) {
	features, classes, err := d.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 25
	}
	if cfg.Tree.MaxFeatures <= 0 {
		cfg.Tree.MaxFeatures = int(math.Ceil(math.Sqrt(float64(features))))
	}
	src := rng.New(cfg.Seed)
	forest := &RandomForest{classes: classes}
	n := len(d.X)
	for t := 0; t < cfg.Trees; t++ {
		ts := src.Split(int64(t))
		boot := Dataset{X: make([][]float64, n), Y: make([]int, n)}
		for i := 0; i < n; i++ {
			p := ts.Intn(n)
			boot.X[i] = d.X[p]
			boot.Y[i] = d.Y[p]
		}
		tc := cfg.Tree
		tc.Seed = int64(t) + cfg.Seed*7919
		tree, err := TrainDecisionTree(boot, tc)
		if err != nil {
			return nil, err
		}
		forest.trees = append(forest.trees, tree)
	}
	return forest, nil
}

// Predict implements Classifier by majority vote.
func (f *RandomForest) Predict(x []float64) int {
	votes := make([]int, f.classes)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}
