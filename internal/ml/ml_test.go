package ml

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"locble/internal/rng"
)

// blobs builds a linearly separable 2-class dataset.
func blobs(n int, seed int64) Dataset {
	src := rng.New(seed)
	var d Dataset
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{src.Normal(-2, 0.7), src.Normal(-2, 0.7)})
		d.Y = append(d.Y, 0)
		d.X = append(d.X, []float64{src.Normal(2, 0.7), src.Normal(2, 0.7)})
		d.Y = append(d.Y, 1)
	}
	return d
}

// blobs3 builds a 3-class dataset with a nonlinearly placed third class.
func blobs3(n int, seed int64) Dataset {
	src := rng.New(seed)
	var d Dataset
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{src.Normal(-3, 0.8), src.Normal(0, 0.8)})
		d.Y = append(d.Y, 0)
		d.X = append(d.X, []float64{src.Normal(3, 0.8), src.Normal(0, 0.8)})
		d.Y = append(d.Y, 1)
		d.X = append(d.X, []float64{src.Normal(0, 0.8), src.Normal(3.5, 0.8)})
		d.Y = append(d.Y, 2)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := blobs(10, 1)
	f, c, err := d.Validate()
	if err != nil || f != 2 || c != 2 {
		t.Errorf("Validate = %d features, %d classes, %v", f, c, err)
	}
	bad := Dataset{X: [][]float64{{1, 2}, {1}}, Y: []int{0, 1}}
	if _, _, err := bad.Validate(); !errors.Is(err, ErrBadDataset) {
		t.Error("want ErrBadDataset for ragged rows")
	}
	neg := Dataset{X: [][]float64{{1}}, Y: []int{-1}}
	if _, _, err := neg.Validate(); !errors.Is(err, ErrBadDataset) {
		t.Error("want ErrBadDataset for negative label")
	}
	empty := Dataset{}
	if _, _, err := empty.Validate(); !errors.Is(err, ErrBadDataset) {
		t.Error("want ErrBadDataset for empty dataset")
	}
}

func TestDatasetSplit(t *testing.T) {
	d := blobs(50, 2)
	train, test := d.Split(0.25, rng.New(3))
	if len(test.X) != 25 || len(train.X) != 75 {
		t.Errorf("split sizes %d/%d", len(train.X), len(test.X))
	}
}

func TestLinearSVMSeparable(t *testing.T) {
	d := blobs(100, 4)
	svm, err := TrainLinearSVM(d, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := Evaluate(svm, d, 2)
	if cm.Accuracy() < 0.98 {
		t.Errorf("separable-data accuracy = %.3f", cm.Accuracy())
	}
	if svm.Name() != "linear-svm" {
		t.Error("Name()")
	}
}

func TestLinearSVMMulticlass(t *testing.T) {
	d := blobs3(80, 5)
	svm, err := TrainLinearSVM(d, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := Evaluate(svm, d, 3)
	if cm.Accuracy() < 0.95 {
		t.Errorf("3-class accuracy = %.3f\n%s", cm.Accuracy(), cm)
	}
	vals := svm.DecisionValues(d.X[0])
	if len(vals) != 3 {
		t.Errorf("DecisionValues length %d", len(vals))
	}
}

func TestLinearSVMErrors(t *testing.T) {
	oneClass := Dataset{X: [][]float64{{1}, {2}}, Y: []int{0, 0}}
	if _, err := TrainLinearSVM(oneClass, DefaultSVMConfig()); !errors.Is(err, ErrBadDataset) {
		t.Error("want ErrBadDataset for single class")
	}
}

func TestDecisionTreeSeparable(t *testing.T) {
	d := blobs3(60, 6)
	tree, err := TrainDecisionTree(d, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := Evaluate(tree, d, 3)
	if cm.Accuracy() < 0.95 {
		t.Errorf("tree accuracy = %.3f", cm.Accuracy())
	}
	if tree.Name() != "decision-tree" {
		t.Error("Name()")
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	// XOR: not linearly separable; the tree must still nail it.
	var d Dataset
	src := rng.New(7)
	for i := 0; i < 200; i++ {
		x := []float64{src.Uniform(-1, 1), src.Uniform(-1, 1)}
		y := 0
		if (x[0] > 0) != (x[1] > 0) {
			y = 1
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	tree, err := TrainDecisionTree(d, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cm := Evaluate(tree, d, 2); cm.Accuracy() < 0.95 {
		t.Errorf("XOR tree accuracy = %.3f", cm.Accuracy())
	}
}

func TestRandomForest(t *testing.T) {
	d := blobs3(60, 8)
	forest, err := TrainRandomForest(d, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm := Evaluate(forest, d, 3)
	if cm.Accuracy() < 0.95 {
		t.Errorf("forest accuracy = %.3f", cm.Accuracy())
	}
	if forest.Name() != "random-forest" {
		t.Error("Name()")
	}
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 100}, {3, 300}, {5, 500}}
	s, err := FitStandardizer(x)
	if err != nil {
		t.Fatal(err)
	}
	z := s.ApplyAll(x)
	for j := 0; j < 2; j++ {
		mean, ss := 0.0, 0.0
		for i := range z {
			mean += z[i][j]
		}
		mean /= 3
		for i := range z {
			ss += (z[i][j] - mean) * (z[i][j] - mean)
		}
		if math.Abs(mean) > 1e-12 || math.Abs(ss/3-1) > 1e-12 {
			t.Errorf("feature %d: mean %g var %g after standardize", j, mean, ss/3)
		}
	}
	if _, err := FitStandardizer(nil); !errors.Is(err, ErrBadDataset) {
		t.Error("want ErrBadDataset for empty input")
	}
	// Constant feature: std clamps to 1, no NaN.
	s2, _ := FitStandardizer([][]float64{{5}, {5}})
	if out := s2.Apply([]float64{5}); out[0] != 0 {
		t.Errorf("constant feature standardizes to %g", out[0])
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	// 8 true positives of class 1, 2 misses, 1 false positive, 9 TN.
	for i := 0; i < 8; i++ {
		cm.Add(1, 1)
	}
	cm.Add(1, 0)
	cm.Add(1, 0)
	cm.Add(0, 1)
	for i := 0; i < 9; i++ {
		cm.Add(0, 0)
	}
	if p := cm.Precision(1); math.Abs(p-8.0/9.0) > 1e-12 {
		t.Errorf("precision = %g", p)
	}
	if r := cm.Recall(1); math.Abs(r-0.8) > 1e-12 {
		t.Errorf("recall = %g", r)
	}
	if a := cm.Accuracy(); math.Abs(a-17.0/20.0) > 1e-12 {
		t.Errorf("accuracy = %g", a)
	}
	if cm.F1() <= 0 || cm.F1() > 1 {
		t.Errorf("F1 = %g", cm.F1())
	}
	if cm.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfusionMatrixDegenerate(t *testing.T) {
	cm := NewConfusionMatrix(2)
	if cm.Accuracy() != 0 || cm.Precision(0) != 0 || cm.Recall(0) != 0 {
		t.Error("empty matrix metrics should be 0")
	}
}

// Property: SVM prediction is invariant to duplicating the dataset
// (training on X vs X+X yields similar accuracy on X).
func TestPropertySVMStableUnderDuplication(t *testing.T) {
	f := func(seed uint8) bool {
		d := blobs(40, int64(seed))
		dup := Dataset{X: append(append([][]float64{}, d.X...), d.X...), Y: append(append([]int{}, d.Y...), d.Y...)}
		s1, err1 := TrainLinearSVM(d, DefaultSVMConfig())
		s2, err2 := TrainLinearSVM(dup, DefaultSVMConfig())
		if err1 != nil || err2 != nil {
			return false
		}
		a1 := Evaluate(s1, d, 2).Accuracy()
		a2 := Evaluate(s2, d, 2).Accuracy()
		return math.Abs(a1-a2) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSVMPersistenceRoundTrip(t *testing.T) {
	d := blobs3(60, 12)
	std, err := FitStandardizer(d.X)
	if err != nil {
		t.Fatal(err)
	}
	svm, err := TrainLinearSVM(Dataset{X: std.ApplyAll(d.X), Y: d.Y}, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveLinearSVM(&buf, svm, std); err != nil {
		t.Fatal(err)
	}
	svm2, std2, err := LoadLinearSVM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if std2 == nil {
		t.Fatal("standardizer lost")
	}
	for i, x := range d.X {
		if svm.Predict(std.Apply(x)) != svm2.Predict(std2.Apply(x)) {
			t.Fatalf("prediction %d changed after round trip", i)
		}
	}
}

func TestLoadLinearSVMRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":99,"kind":"linear-svm"}`,
		`{"version":1,"kind":"other"}`,
		`{"version":1,"kind":"linear-svm","weights":[[1,2]],"bias":[0,0]}`,
		`{"version":1,"kind":"linear-svm","weights":[[1,2],[1]],"bias":[0,0]}`,
		`{"version":1,"kind":"linear-svm","weights":[[1,2],[3,4]],"bias":[0,0],"std_mean":[1],"std_std":[1]}`,
	}
	for _, c := range cases {
		if _, _, err := LoadLinearSVM(strings.NewReader(c)); err == nil {
			t.Errorf("accepted garbage %q", c)
		}
	}
}
