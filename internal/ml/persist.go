package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: a phone app trains EnvAware once (or ships a
// pre-trained model) and loads it at startup instead of retraining. Only
// the linear SVM is serializable — it is the model the pipeline uses; the
// tree ensembles exist for the paper's comparison study.

const svmModelVersion = 1

type svmFile struct {
	Version int         `json:"version"`
	Kind    string      `json:"kind"`
	Weights [][]float64 `json:"weights"`
	Bias    []float64   `json:"bias"`
	Mean    []float64   `json:"std_mean,omitempty"`
	Std     []float64   `json:"std_std,omitempty"`
}

// SaveLinearSVM writes the SVM (and optional standardizer) as JSON.
func SaveLinearSVM(w io.Writer, svm *LinearSVM, std *Standardizer) error {
	f := svmFile{Version: svmModelVersion, Kind: "linear-svm", Weights: svm.Weights, Bias: svm.Bias}
	if std != nil {
		f.Mean = std.Mean
		f.Std = std.Std
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// LoadLinearSVM reads a model written by SaveLinearSVM. The returned
// standardizer is nil when none was saved.
func LoadLinearSVM(r io.Reader) (*LinearSVM, *Standardizer, error) {
	var f svmFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("ml: decode model: %w", err)
	}
	if f.Version != svmModelVersion || f.Kind != "linear-svm" {
		return nil, nil, fmt.Errorf("ml: unsupported model %q v%d", f.Kind, f.Version)
	}
	if len(f.Weights) == 0 || len(f.Weights) != len(f.Bias) {
		return nil, nil, fmt.Errorf("ml: malformed model: %d weight rows, %d biases", len(f.Weights), len(f.Bias))
	}
	width := len(f.Weights[0])
	for i, row := range f.Weights {
		if len(row) != width {
			return nil, nil, fmt.Errorf("ml: malformed model: weight row %d has %d values, want %d", i, len(row), width)
		}
	}
	svm := &LinearSVM{Weights: f.Weights, Bias: f.Bias}
	var std *Standardizer
	if len(f.Mean) > 0 {
		if len(f.Mean) != width || len(f.Std) != width {
			return nil, nil, fmt.Errorf("ml: malformed model: standardizer width mismatch")
		}
		std = &Standardizer{Mean: f.Mean, Std: f.Std}
	}
	return svm, std, nil
}
