package ml

import "fmt"

// ConfusionMatrix counts predictions: M[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	M       [][]int
}

// NewConfusionMatrix allocates a matrix for the given number of classes.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	return &ConfusionMatrix{Classes: classes, M: m}
}

// Add records one (actual, predicted) observation.
func (c *ConfusionMatrix) Add(actual, predicted int) {
	c.M[actual][predicted]++
}

// Evaluate runs a classifier over a test set and fills a confusion matrix.
func Evaluate(clf Classifier, test Dataset, classes int) *ConfusionMatrix {
	cm := NewConfusionMatrix(classes)
	for i, x := range test.X {
		cm.Add(test.Y[i], clf.Predict(x))
	}
	return cm
}

// Accuracy is the overall fraction of correct predictions.
func (c *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for i := range c.M {
		for j, n := range c.M[i] {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Precision returns the precision of class k: TP / (TP + FP).
func (c *ConfusionMatrix) Precision(k int) float64 {
	tp := c.M[k][k]
	col := 0
	for i := range c.M {
		col += c.M[i][k]
	}
	if col == 0 {
		return 0
	}
	return float64(tp) / float64(col)
}

// Recall returns the recall of class k: TP / (TP + FN).
func (c *ConfusionMatrix) Recall(k int) float64 {
	tp := c.M[k][k]
	row := 0
	for _, n := range c.M[k] {
		row += n
	}
	if row == 0 {
		return 0
	}
	return float64(tp) / float64(row)
}

// MacroPrecision averages per-class precision (the paper reports macro
// precision/recall for the 3-class environment classifier).
func (c *ConfusionMatrix) MacroPrecision() float64 {
	s := 0.0
	for k := 0; k < c.Classes; k++ {
		s += c.Precision(k)
	}
	return s / float64(c.Classes)
}

// MacroRecall averages per-class recall.
func (c *ConfusionMatrix) MacroRecall() float64 {
	s := 0.0
	for k := 0; k < c.Classes; k++ {
		s += c.Recall(k)
	}
	return s / float64(c.Classes)
}

// F1 returns the macro F1 score.
func (c *ConfusionMatrix) F1() float64 {
	p, r := c.MacroPrecision(), c.MacroRecall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix with summary metrics.
func (c *ConfusionMatrix) String() string {
	s := "actual\\pred"
	for j := 0; j < c.Classes; j++ {
		s += fmt.Sprintf("\t%d", j)
	}
	s += "\n"
	for i := range c.M {
		s += fmt.Sprintf("%d", i)
		for _, n := range c.M[i] {
			s += fmt.Sprintf("\t%d", n)
		}
		s += "\n"
	}
	s += fmt.Sprintf("accuracy=%.3f macroP=%.3f macroR=%.3f\n", c.Accuracy(), c.MacroPrecision(), c.MacroRecall())
	return s
}
