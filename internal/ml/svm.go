// Package ml implements the small machine-learning toolkit EnvAware needs
// (paper Sec. 4.1): a linear support-vector machine trained with the
// Pegasos stochastic sub-gradient algorithm, a CART decision tree and a
// random forest (the alternatives the paper benchmarked against before
// choosing the linear SVM), a feature standardizer, and precision/recall
// metrics. Everything is stdlib-only.
package ml

import (
	"errors"
	"fmt"
	"math"

	"locble/internal/rng"
)

// ErrBadDataset is returned for empty or inconsistent training data.
var ErrBadDataset = errors.New("ml: bad dataset")

// Classifier is the common interface of all models in this package.
type Classifier interface {
	// Predict returns the predicted class label for a feature vector.
	Predict(x []float64) int
	// Name identifies the model family.
	Name() string
}

// Dataset is a labelled feature matrix. Labels are small non-negative
// class indices.
type Dataset struct {
	X [][]float64
	Y []int
}

// Validate checks shape consistency and returns the feature width and the
// number of classes (max label + 1).
func (d *Dataset) Validate() (features, classes int, err error) {
	if len(d.X) == 0 || len(d.X) != len(d.Y) {
		return 0, 0, fmt.Errorf("%w: %d rows, %d labels", ErrBadDataset, len(d.X), len(d.Y))
	}
	features = len(d.X[0])
	for i, row := range d.X {
		if len(row) != features {
			return 0, 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadDataset, i, len(row), features)
		}
	}
	for _, y := range d.Y {
		if y < 0 {
			return 0, 0, fmt.Errorf("%w: negative label %d", ErrBadDataset, y)
		}
		if y+1 > classes {
			classes = y + 1
		}
	}
	return features, classes, nil
}

// Split partitions the dataset into train/test with the given test
// fraction, shuffled by src.
func (d *Dataset) Split(testFrac float64, src *rng.Source) (train, test Dataset) {
	perm := src.Perm(len(d.X))
	nTest := int(float64(len(d.X)) * testFrac)
	for i, p := range perm {
		if i < nTest {
			test.X = append(test.X, d.X[p])
			test.Y = append(test.Y, d.Y[p])
		} else {
			train.X = append(train.X, d.X[p])
			train.Y = append(train.Y, d.Y[p])
		}
	}
	return train, test
}

// SVMConfig holds linear-SVM training hyperparameters.
type SVMConfig struct {
	// Lambda is the Pegasos regularization strength.
	Lambda float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// Seed drives the stochastic sample order.
	Seed int64
}

// DefaultSVMConfig returns hyperparameters that train EnvAware's
// classifier to the paper's reported accuracy on the synthetic dataset.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{Lambda: 3e-6, Epochs: 120, Seed: 1}
}

// LinearSVM is a one-vs-rest multiclass linear SVM. Weights[k] is the
// hyperplane for class k (with Bias[k]); prediction is argmax of the
// decision values.
type LinearSVM struct {
	Weights [][]float64
	Bias    []float64
}

// Name implements Classifier.
func (s *LinearSVM) Name() string { return "linear-svm" }

// TrainLinearSVM trains a one-vs-rest linear SVM with Pegasos
// (Shalev-Shwartz et al.): at step t, for example (x, y∈{−1,+1}),
// w ← (1 − ηλ)w + η·y·x·1[y·⟨w,x⟩ < 1], with η = 1/(λt).
func TrainLinearSVM(d Dataset, cfg SVMConfig) (*LinearSVM, error) {
	features, classes, err := d.Validate()
	if err != nil {
		return nil, err
	}
	if classes < 2 {
		return nil, fmt.Errorf("%w: need ≥2 classes, have %d", ErrBadDataset, classes)
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	src := rng.New(cfg.Seed)
	svm := &LinearSVM{
		Weights: make([][]float64, classes),
		Bias:    make([]float64, classes),
	}
	for k := 0; k < classes; k++ {
		svm.Weights[k] = make([]float64, features)
		trainBinaryPegasos(d, k, svm.Weights[k], &svm.Bias[k], cfg, src.Split(int64(k)))
	}
	return svm, nil
}

func trainBinaryPegasos(d Dataset, positive int, w []float64, b *float64, cfg SVMConfig, src *rng.Source) {
	n := len(d.X)
	t := 0
	// Averaged Pegasos: the returned solution is the average of the
	// iterates over the second half of training, which converges much
	// more stably than the final iterate.
	avgW := make([]float64, len(w))
	avgB := 0.0
	avgCount := 0
	halfway := cfg.Epochs / 2
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, i := range src.Perm(n) {
			t++
			eta := 1 / (cfg.Lambda * float64(t))
			x := d.X[i]
			y := -1.0
			if d.Y[i] == positive {
				y = 1.0
			}
			margin := *b
			for j, wj := range w {
				margin += wj * x[j]
			}
			decay := 1 - eta*cfg.Lambda
			for j := range w {
				w[j] *= decay
			}
			if y*margin < 1 {
				for j := range w {
					w[j] += eta * y * x[j]
				}
				*b += eta * y
			}
		}
		if epoch >= halfway {
			for j := range w {
				avgW[j] += w[j]
			}
			avgB += *b
			avgCount++
		}
	}
	if avgCount > 0 {
		for j := range w {
			w[j] = avgW[j] / float64(avgCount)
		}
		*b = avgB / float64(avgCount)
	}
}

// DecisionValues returns the per-class margins for x.
func (s *LinearSVM) DecisionValues(x []float64) []float64 {
	out := make([]float64, len(s.Weights))
	for k, w := range s.Weights {
		v := s.Bias[k]
		for j, wj := range w {
			v += wj * x[j]
		}
		out[k] = v
	}
	return out
}

// Predict implements Classifier: argmax over one-vs-rest margins.
func (s *LinearSVM) Predict(x []float64) int {
	vals := s.DecisionValues(x)
	best, bestV := 0, math.Inf(-1)
	for k, v := range vals {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

// Standardizer rescales features to zero mean and unit variance, fitted on
// training data and applied to both training and inference inputs (the
// paper standardizes its 9-value feature vector).
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns per-feature mean and standard deviation.
func FitStandardizer(x [][]float64) (*Standardizer, error) {
	if len(x) == 0 {
		return nil, ErrBadDataset
	}
	f := len(x[0])
	s := &Standardizer{Mean: make([]float64, f), Std: make([]float64, f)}
	for _, row := range x {
		if len(row) != f {
			return nil, fmt.Errorf("%w: ragged feature matrix", ErrBadDataset)
		}
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Apply standardizes a single feature vector (returns a new slice).
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyAll standardizes a whole matrix.
func (s *Standardizer) ApplyAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Apply(row)
	}
	return out
}
