package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution. Bucket bounds are upper
// bounds (value ≤ bound lands in the bucket); values above the last
// bound land in an implicit overflow bucket. All updates are lock-free;
// Observe performs no allocation.
type Histogram struct {
	bounds []float64       // sorted upper bounds, immutable after creation
	counts []atomic.Uint64 // len(bounds)+1: last is the overflow bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	min    atomic.Uint64   // float64 bits
	max    atomic.Uint64   // float64 bits
	seen   atomic.Int64    // 0 until the first observation (guards min/max)
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// DefBuckets is the general-purpose default: decades from 0.001 to 1000.
func DefBuckets() []float64 {
	return []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}
}

// LatencyBuckets covers stage latencies from 1 µs to 10 s in roughly
// half-decade steps — wide enough for both a per-sample filter pass and
// a full clustered locate.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
		1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
	}
}

// Observe folds one value into the distribution. NaN is dropped (a NaN
// would poison sum/min/max and count nothing meaningful).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.seen.Store(1)
}

// Count returns the total number of observations (sum of bucket counts).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot copies the histogram into plain data. The reported Count is
// derived from the bucket counts read, so Count == Σ Buckets[i].Count
// holds in every snapshot even under concurrent Observe calls.
func (h *Histogram) snapshot() HistogramValue {
	v := HistogramValue{Buckets: make([]Bucket, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		v.Buckets[i] = Bucket{UpperBound: bound, Count: c}
		v.Count += c
	}
	v.Sum = h.Sum()
	if h.seen.Load() != 0 {
		v.Min = math.Float64frombits(h.min.Load())
		v.Max = math.Float64frombits(h.max.Load())
	}
	return v
}
