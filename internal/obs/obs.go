// Package obs is LocBLE's zero-dependency observability layer: atomic
// counters, gauges with a high-water mark, fixed-bucket histograms and
// stage-span timers, collected in a Registry that can be snapshotted as
// plain data (or JSON) at any time.
//
// Design constraints, in order:
//
//   - Allocation-light on the hot path. Instrumented code resolves its
//     metric handles once (at engine construction or package init) and
//     then records with one or two atomic operations per event. Observing
//     a histogram value allocates nothing; starting and ending a span
//     allocates nothing.
//   - Safe for concurrent use. Every metric type may be updated from any
//     number of goroutines; Snapshot may run concurrently with updates
//     and always returns an internally consistent view (histogram counts
//     are derived from the bucket counts it read).
//   - Deterministic-friendly. Span timing goes through the Registry's
//     clock, which tests replace with a seeded or stepping fake, so
//     latency histograms are reproducible in simulation.
//
// The package deliberately mirrors the shape (not the wire format) of
// expvar/Prometheus: named metrics, monotone counters, bucketed latency
// distributions — enough to answer "which stage is slow, how often does
// the AKF diverge, how many frames did netproto retry" without external
// dependencies.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters are
// monotone by contract).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that also tracks its high-water mark —
// e.g. in-flight goroutines, where Max answers "how concurrent did this
// actually get".
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by d and returns the new value, updating the
// high-water mark.
func (g *Gauge) Add(d int64) int64 {
	n := g.v.Add(d)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return n
		}
	}
}

// Set forces the gauge to v, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. Metric lookups take a mutex (they happen
// once per instrumentation site); metric updates are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	clock      func() time.Time
}

// NewRegistry returns an empty registry using the real clock.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		clock:      time.Now,
	}
}

// Default is the process-wide registry. Package-level instrumentation
// (sigproc, estimate, netproto) records here; engine-scoped metrics live
// in per-engine registries.
var Default = NewRegistry()

// SetClock replaces the time source used by spans — tests inject a
// deterministic stepping clock so latency histograms are reproducible.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	r.clock = now
}

// FakeClock is a deterministic time source for tests: every Now call
// advances it by Step, so each span measures exactly Step (or a
// multiple, if other calls interleave).
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
	// Step is the advance per Now call.
	Step time.Duration
}

// NewFakeClock returns a clock starting at the epoch, stepping 1 ms.
func NewFakeClock() *FakeClock {
	return &FakeClock{t: time.Unix(0, 0), Step: time.Millisecond}
}

// Now advances the clock and returns the new time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.Step)
	return c.t
}

func (r *Registry) now() time.Time {
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	return c()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil buckets select DefBuckets).
// Bounds are sorted; an implicit overflow bucket catches the rest.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(buckets)
		r.histograms[name] = h
	}
	return h
}

// Timer returns a stage-span timer recording seconds into the named
// histogram (created with LatencyBuckets on first use).
func (r *Registry) Timer(name string) *Timer {
	return &Timer{h: r.Histogram(name, LatencyBuckets()), reg: r}
}

// Timer measures stage spans into a latency histogram, reading time from
// its registry's (injectable) clock.
type Timer struct {
	h   *Histogram
	reg *Registry
}

// Start opens a span. End it to record its duration.
func (t *Timer) Start() Span {
	return Span{t: t, start: t.reg.now()}
}

// Observe records an already-measured duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Histogram returns the timer's underlying histogram.
func (t *Timer) Histogram() *Histogram { return t.h }

// Span is one in-flight stage measurement. The zero Span is inert: End
// on it records nothing, so optional instrumentation can pass spans
// around without nil checks.
type Span struct {
	t     *Timer
	start time.Time
}

// End closes the span and records its duration, returning it.
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	d := s.t.reg.now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.t.h.Observe(d.Seconds())
	return d
}

// Snapshot returns a consistent copy of every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]GaugeValue, len(gauges)),
		Histograms: make(map[string]HistogramValue, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Names returns the sorted metric names currently registered (counters,
// gauges, histograms interleaved) — mainly for documentation and tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
