package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	if got := g.Max(); got != 5 {
		t.Fatalf("gauge max = %d, want 5", got)
	}
	g.Set(2)
	if got := g.Max(); got != 5 {
		t.Fatalf("gauge max after Set(2) = %d, want 5", got)
	}
	g.Set(9)
	if got := g.Max(); got != 9 {
		t.Fatalf("gauge max after Set(9) = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vals", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", s.Count)
	}
	wantCounts := []uint64{2, 1, 1, 1} // ≤1, ≤10, ≤100, overflow
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if s.Min != 0.5 || s.Max != 500 {
		t.Errorf("min/max = %g/%g, want 0.5/500", s.Min, s.Max)
	}
	if got, want := s.Sum, 556.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if got, want := s.Mean(), 556.5/5; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

func TestSpanDeterministicClock(t *testing.T) {
	r := NewRegistry()
	// Stepping clock: every reading advances 10 ms.
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time {
		now = now.Add(10 * time.Millisecond)
		return now
	})
	timer := r.Timer("stage.test")
	for i := 0; i < 3; i++ {
		sp := timer.Start()
		if d := sp.End(); d != 10*time.Millisecond {
			t.Fatalf("span %d duration = %v, want 10ms", i, d)
		}
	}
	s := r.Snapshot().Histograms["stage.test"]
	if s.Count != 3 {
		t.Fatalf("span count = %d, want 3", s.Count)
	}
	if got, want := s.Sum, 0.030; math.Abs(got-want) > 1e-12 {
		t.Fatalf("span sum = %g s, want %g s", got, want)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var sp Span
	if d := sp.End(); d != 0 {
		t.Fatalf("zero span End = %v, want 0", d)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	r.Histogram("empty", nil) // min/max non-finite until first Observe

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Counters["c"] != 7 || back.Gauges["g"].Value != 3 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	h := back.Histograms["h"]
	if h.Count != 1 || len(h.Buckets) != 3 {
		t.Fatalf("histogram round trip: %+v", h)
	}
	if !math.IsInf(h.Buckets[2].UpperBound, 1) {
		t.Fatalf("overflow bucket bound = %g, want +Inf", h.Buckets[2].UpperBound)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Inc()
	b.Counter("y").Add(2)
	m := a.Snapshot().Merge("engine.", b.Snapshot())
	if m.Counters["x"] != 1 || m.Counters["engine.y"] != 2 {
		t.Fatalf("merge: %+v", m.Counters)
	}
}

func TestConcurrentConsistency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	h := r.Histogram("lat", nil)
	g := r.Gauge("inflight")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot continuously while updating.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			for name, hv := range s.Histograms {
				var sum uint64
				for _, b := range hv.Buckets {
					sum += b.Count
				}
				if sum != hv.Count {
					t.Errorf("%s: bucket sum %d != count %d", name, sum, hv.Count)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				c.Inc()
				h.Observe(float64(i%7) * 0.01)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge settled at %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > workers {
		t.Fatalf("gauge max = %d, want in [1, %d]", g.Max(), workers)
	}
}
