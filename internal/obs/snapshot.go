package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
)

// Snapshot is a consistent point-in-time copy of a registry, safe to
// marshal, diff, or ship over the wire.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]GaugeValue     `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// GaugeValue is a gauge's level and high-water mark.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramValue is a histogram's copied state. Count always equals the
// sum of the bucket counts.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns the average observed value (0 for an empty histogram).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Bucket is one histogram bucket: the count of observations at or below
// UpperBound but above the previous bound. The overflow bucket has
// UpperBound = +Inf.
type Bucket struct {
	UpperBound float64 `json:"-"`
	Count      uint64  `json:"count"`
}

// MarshalJSON encodes the upper bound as a string ("+Inf" for the
// overflow bucket) because JSON has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = fmt.Sprintf("%g", b.UpperBound)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	_, err := fmt.Sscanf(raw.LE, "%g", &b.UpperBound)
	return err
}

// scrub replaces non-finite float fields (empty-histogram min/max) so
// the snapshot always marshals.
func (h HistogramValue) scrub() HistogramValue {
	if h.Count == 0 || math.IsInf(h.Min, 0) || math.IsNaN(h.Min) {
		h.Min = 0
	}
	if h.Count == 0 || math.IsInf(h.Max, 0) || math.IsNaN(h.Max) {
		h.Max = 0
	}
	return h
}

// MarshalJSON scrubs non-finite min/max before the default encoding.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // drop the method to avoid recursion
	cp := alias{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramValue, len(s.Histograms)),
	}
	for k, h := range s.Histograms {
		cp.Histograms[k] = h.scrub()
	}
	return json.Marshal(cp)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Merge overlays other onto a copy of s under the given name prefix —
// used to publish an engine-scoped registry next to the process-wide one
// through a single endpoint.
func (s Snapshot) Merge(prefix string, other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]GaugeValue, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistogramValue, len(s.Histograms)+len(other.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[prefix+k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[prefix+k] = v
	}
	for k, v := range other.Histograms {
		out.Histograms[prefix+k] = v
	}
	return out
}

// Handler serves the registry as JSON — expvar-style, mountable next to
// net/http/pprof on a debug listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
}
