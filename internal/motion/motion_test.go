package motion

import (
	"math"
	"testing"

	"locble/internal/imu"
	"locble/internal/rng"
)

func synth(t *testing.T, plan imu.Plan, seed int64) *imu.Trace {
	t.Helper()
	tr, err := imu.Synthesize(plan, imu.DefaultNoise(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAlignIdentityWhenFlat(t *testing.T) {
	tr := synth(t, imu.Plan{Segments: []imu.Segment{{Heading: 0, Distance: 3}}}, 1)
	r, aligned, err := Align(tr.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(aligned) != len(tr.Samples) {
		t.Fatal("aligned length mismatch")
	}
	// Flat phone: rotation ≈ identity.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(r[i][j]-want) > 0.05 {
				t.Errorf("Align rotation[%d][%d] = %g", i, j, r[i][j])
			}
		}
	}
}

func TestAlignRecoversTiltedPosture(t *testing.T) {
	tr := synth(t, imu.Plan{Segments: imu.LShape(0, 4, 4)}, 2)
	posture := imu.RotationZYX(0, 0.35, -0.25) // pitch + roll, no yaw
	tr.ApplyPosture(posture)
	_, aligned, err := Align(tr.Samples)
	if err != nil {
		t.Fatal(err)
	}
	// After alignment gravity must again sit on +z.
	var g [3]float64
	for _, s := range aligned {
		for k := 0; k < 3; k++ {
			g[k] += s.Acc[k]
		}
	}
	n := float64(len(aligned))
	if math.Abs(g[2]/n-imu.Gravity) > 0.3 || math.Abs(g[0]/n) > 0.3 || math.Abs(g[1]/n) > 0.3 {
		t.Errorf("gravity after align = (%.2f, %.2f, %.2f)", g[0]/n, g[1]/n, g[2]/n)
	}
}

func TestAlignErrors(t *testing.T) {
	if _, _, err := Align(nil); err == nil {
		t.Error("want error for empty samples")
	}
}

func TestStepDetectionAccuracy(t *testing.T) {
	// Paper: 94.77 % step accuracy. Check detection within ±1 step over
	// several traces.
	total, detected := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		tr := synth(t, imu.Plan{Segments: imu.LShape(0, 4, 4)}, seed)
		_, aligned, err := Align(tr.Samples)
		if err != nil {
			t.Fatal(err)
		}
		steps, err := DetectSteps(aligned, DefaultStepDetectorConfig(), DefaultStepLengthModel())
		if err != nil {
			t.Fatal(err)
		}
		total += tr.Steps
		detected += len(steps)
	}
	acc := 1 - math.Abs(float64(detected-total))/float64(total)
	if acc < 0.9 {
		t.Errorf("step count accuracy %.3f (detected %d of %d), want ≥ 0.9 (paper 0.9477)", acc, detected, total)
	}
}

func TestStepLengthModel(t *testing.T) {
	m := DefaultStepLengthModel()
	if l := m.Length(1.8); math.Abs(l-0.7) > 0.05 {
		t.Errorf("length at default cadence = %g, want ≈0.7", l)
	}
	if m.Length(0.1) < 0.3 || m.Length(10) > 1.1 {
		t.Error("step length must clamp to plausible gait")
	}
	if m.Length(2.2) <= m.Length(1.4) {
		t.Error("faster cadence should mean longer steps")
	}
}

func TestTurnDetection(t *testing.T) {
	tr := synth(t, imu.Plan{Segments: []imu.Segment{
		{Heading: 0, Distance: 3},
		{Heading: math.Pi / 2, Distance: 3},
	}}, 3)
	_, aligned, _ := Align(tr.Samples)
	turns, err := DetectTurns(aligned, DefaultTurnDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 1 {
		t.Fatalf("detected %d turns, want 1", len(turns))
	}
	errDeg := math.Abs(turns[0].Angle-math.Pi/2) * 180 / math.Pi
	// Paper: 3.45° average angle error.
	if errDeg > 10 {
		t.Errorf("turn angle error %.1f°, want < 10", errDeg)
	}
}

func TestTurnAngleAccuracyMean(t *testing.T) {
	var sum float64
	n := 0
	for seed := int64(1); seed <= 12; seed++ {
		tr := synth(t, imu.Plan{Segments: []imu.Segment{
			{Heading: 0, Distance: 3},
			{Heading: math.Pi / 2, Distance: 3},
		}}, seed)
		_, aligned, _ := Align(tr.Samples)
		turns, err := DetectTurns(aligned, DefaultTurnDetectorConfig())
		if err != nil || len(turns) != 1 {
			continue
		}
		sum += math.Abs(turns[0].Angle-math.Pi/2) * 180 / math.Pi
		n++
	}
	if n < 8 {
		t.Fatalf("only %d/12 traces produced one turn", n)
	}
	if mean := sum / float64(n); mean > 6 {
		t.Errorf("mean turn angle error %.2f°, want ≤ 6 (paper 3.45°)", mean)
	}
}

func TestNoTurnsOnStraightWalk(t *testing.T) {
	tr := synth(t, imu.Plan{Segments: []imu.Segment{{Heading: 0, Distance: 5}}}, 4)
	_, aligned, _ := Align(tr.Samples)
	turns, err := DetectTurns(aligned, DefaultTurnDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 0 {
		t.Errorf("straight walk produced %d turns", len(turns))
	}
}

func TestBuildTrackEndpointAccuracy(t *testing.T) {
	var sumErr float64
	const runs = 8
	for seed := int64(1); seed <= runs; seed++ {
		tr := synth(t, imu.Plan{Segments: imu.LShape(0, 4, 4)}, seed)
		_, aligned, _ := Align(tr.Samples)
		cfg := DefaultTrackerConfig()
		cfg.SnapRightAngles = true
		track, err := BuildTrack(aligned, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gx, gy := tr.PositionAt(1e9)
		fx, fy := track.At(1e9)
		sumErr += math.Hypot(fx-gx, fy-gy)
	}
	if mean := sumErr / runs; mean > 1.0 {
		t.Errorf("mean dead-reckoning endpoint error %.2f m, want ≤ 1.0", mean)
	}
}

func TestTrackAtInterpolates(t *testing.T) {
	track := &Track{Points: []Displacement{
		{T: 0, X: 0, Y: 0},
		{T: 1, X: 1, Y: 0},
		{T: 2, X: 1, Y: 2},
	}}
	x, y := track.At(0.5)
	if math.Abs(x-0.5) > 1e-12 || y != 0 {
		t.Errorf("At(0.5) = (%g, %g)", x, y)
	}
	x, y = track.At(1.5)
	if math.Abs(x-1) > 1e-12 || math.Abs(y-1) > 1e-12 {
		t.Errorf("At(1.5) = (%g, %g)", x, y)
	}
	x, y = track.At(99)
	if x != 1 || y != 2 {
		t.Errorf("At(∞) = (%g, %g)", x, y)
	}
	if x, y := (&Track{}).At(1); x != 0 || y != 0 {
		t.Error("empty track should report origin")
	}
}

func TestTotalDistance(t *testing.T) {
	track := &Track{Steps: []Step{{Length: 0.7}, {Length: 0.7}, {Length: 0.6}}}
	if d := track.TotalDistance(); math.Abs(d-2.0) > 1e-12 {
		t.Errorf("TotalDistance = %g", d)
	}
}

func TestSnapRightAngles(t *testing.T) {
	if got := snapRight(1.48); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("snapRight(1.48) = %g", got)
	}
	if got := snapRight(-1.62); math.Abs(got+math.Pi/2) > 1e-12 {
		t.Errorf("snapRight(-1.62) = %g", got)
	}
	if got := snapRight(0.1); got != 0 {
		t.Errorf("snapRight(0.1) = %g", got)
	}
}

func TestMagHeading(t *testing.T) {
	s := imu.Sample{Mag: [3]float64{math.Cos(0.7), -math.Sin(0.7), 0.3}}
	if h := MagHeading(s); math.Abs(h-0.7) > 1e-12 {
		t.Errorf("MagHeading = %g, want 0.7", h)
	}
}

func TestDetectStepsEmpty(t *testing.T) {
	if _, err := DetectSteps(nil, DefaultStepDetectorConfig(), DefaultStepLengthModel()); err == nil {
		t.Error("want error for empty samples")
	}
	if _, err := DetectTurns(nil, DefaultTurnDetectorConfig()); err == nil {
		t.Error("want error for empty samples")
	}
}

// The dead-reckoned track must be (approximately) invariant to the
// phone's tilt posture — Align undoes pitch/roll before the detectors
// run. (Yaw offsets rotate the track's frame, so only tilt is varied;
// a deterministic grid keeps the check reproducible.)
func TestPostureInvarianceGrid(t *testing.T) {
	base := synth(t, imu.Plan{Segments: imu.LShape(0, 4, 4)}, 77)
	_, aF, err := Align(append([]imu.Sample(nil), base.Samples...))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrackerConfig()
	tf, err := BuildTrack(aF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx, fy := tf.At(math.Inf(1))

	for _, pitchDeg := range []float64{-25, -10, 0, 10, 25} {
		for _, rollDeg := range []float64{-25, 0, 15} {
			tilted := *base
			tilted.Samples = append([]imu.Sample(nil), base.Samples...)
			(&tilted).ApplyPosture(imu.RotationZYX(0, pitchDeg*math.Pi/180, rollDeg*math.Pi/180))
			_, aT, err := Align(tilted.Samples)
			if err != nil {
				t.Fatalf("pitch %g roll %g: %v", pitchDeg, rollDeg, err)
			}
			tt, err := BuildTrack(aT, cfg)
			if err != nil {
				t.Fatalf("pitch %g roll %g: %v", pitchDeg, rollDeg, err)
			}
			tx, ty := tt.At(math.Inf(1))
			if d := math.Hypot(fx-tx, fy-ty); d > 1.0 {
				t.Errorf("pitch %g° roll %g°: track endpoint moved %.2f m", pitchDeg, rollDeg, d)
			}
		}
	}
}
