// Package motion turns raw smartphone IMU streams into the observer's
// movement track: coordinate alignment from phone frame to earth frame,
// moving-average + peak-voting step detection, step-length inference from
// step frequency, gyroscope+magnetometer turn detection, and pedestrian
// dead reckoning (paper Sec. 5.2). The tracker's output — the observer's
// (aᵢ, cᵢ) displacements per RSS timestamp — feeds the elliptical
// regression in the estimate package.
package motion

import (
	"errors"
	"math"
	"sort"

	"locble/internal/imu"
	"locble/internal/sigproc"
)

// ErrNoSamples is returned when a detector is given an empty trace.
var ErrNoSamples = errors.New("motion: no samples")

// Align estimates the rotation from the device frame to the earth frame
// using the mean accelerometer vector (gravity defines "down") and the
// magnetometer (horizontal field defines "north"), the well-known
// coordinate alignment the paper cites. It returns the rotation and the
// aligned copy of the samples.
func Align(samples []imu.Sample) (imu.RotationMatrix, []imu.Sample, error) {
	if len(samples) == 0 {
		return imu.IdentityRotation(), nil, ErrNoSamples
	}
	// Gravity direction: mean accelerometer (gait oscillation and noise
	// average out).
	var g [3]float64
	for _, s := range samples {
		for k := 0; k < 3; k++ {
			g[k] += s.Acc[k]
		}
	}
	norm := math.Sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
	if norm < 1e-9 {
		return imu.IdentityRotation(), nil, errors.New("motion: degenerate gravity vector")
	}
	for k := range g {
		g[k] /= norm
	}
	// Rotation taking device "up" (g) to earth z: Rodrigues from g to
	// (0,0,1). Tilt correction is all the alignment needs: once gravity
	// points along +z, the horizontal magnetometer components give the
	// device's absolute heading directly (MagHeading), and the gyro z-axis
	// measures true turn rate. Yaw must NOT be rotated away — it carries
	// the heading information the dead reckoner consumes.
	r := rotationBetween(g, [3]float64{0, 0, 1})

	aligned := make([]imu.Sample, len(samples))
	for i, s := range samples {
		aligned[i] = s
		aligned[i].Acc = r.Apply(s.Acc)
		aligned[i].Gyro = r.Apply(s.Gyro)
		aligned[i].Mag = r.Apply(s.Mag)
	}
	return r, aligned, nil
}

// rotationBetween returns the rotation carrying unit vector a onto unit
// vector b (Rodrigues' formula).
func rotationBetween(a, b [3]float64) imu.RotationMatrix {
	cross := [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
	dot := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
	s2 := cross[0]*cross[0] + cross[1]*cross[1] + cross[2]*cross[2]
	if s2 < 1e-18 {
		if dot > 0 {
			return imu.IdentityRotation()
		}
		// a = −b: rotate π around any perpendicular axis; pick x/z.
		return imu.RotationZYX(0, math.Pi, 0)
	}
	k := cross
	// K is the skew matrix of k; R = I + K + K²·(1−dot)/s².
	kmat := imu.RotationMatrix{
		{0, -k[2], k[1]},
		{k[2], 0, -k[0]},
		{-k[1], k[0], 0},
	}
	id := imu.IdentityRotation()
	k2 := kmat.Mul(kmat)
	f := (1 - dot) / s2
	var r imu.RotationMatrix
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = id[i][j] + kmat[i][j] + k2[i][j]*f
		}
	}
	return r
}

// Step is one detected step.
type Step struct {
	T      float64 // time of the detected peak
	Length float64 // inferred step length, metres
	Freq   float64 // instantaneous step frequency, Hz
}

// StepDetectorConfig tunes the peak-voting step detector.
type StepDetectorConfig struct {
	// SmoothWindow is the moving-average window in samples (Sec. 5.2.1).
	SmoothWindow int
	// MinPeak is the minimum vertical-acceleration deviation (m/s²,
	// gravity removed) for a candidate peak.
	MinPeak float64
	// MinInterval is the refractory period between steps in seconds
	// (rejects double peaks within one gait cycle).
	MinInterval float64
	// VoteWindow is the half-width in samples of the neighbourhood that
	// votes a candidate as the local maximum.
	VoteWindow int
}

// DefaultStepDetectorConfig returns settings for 100 Hz IMU data.
func DefaultStepDetectorConfig() StepDetectorConfig {
	return StepDetectorConfig{SmoothWindow: 15, MinPeak: 0.8, MinInterval: 0.35, VoteWindow: 12}
}

// StepLengthModel infers step length from step frequency; faster cadence
// means longer steps (the paper cites this frequency-based inference).
// Length = Base + Slope·freq, clamped to plausible human gait.
type StepLengthModel struct {
	Base, Slope float64
}

// DefaultStepLengthModel returns the calibration used throughout the
// simulator (0.7 m at the synthesizer's default 1.8 Hz cadence).
func DefaultStepLengthModel() StepLengthModel {
	return StepLengthModel{Base: 0.25, Slope: 0.25}
}

// Length evaluates the model at freq Hz.
func (m StepLengthModel) Length(freq float64) float64 {
	l := m.Base + m.Slope*freq
	if l < 0.3 {
		l = 0.3
	}
	if l > 1.1 {
		l = 1.1
	}
	return l
}

// DetectSteps runs the moving-average + peak-voting step detector over
// earth-frame samples: smooth the vertical acceleration (gravity
// removed), then accept a sample as a step peak when it wins the local
// vote (is the maximum of its neighbourhood), exceeds MinPeak, and falls
// outside the refractory interval of the previous step.
func DetectSteps(samples []imu.Sample, cfg StepDetectorConfig, lenModel StepLengthModel) ([]Step, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	vert := make([]float64, len(samples))
	for i, s := range samples {
		vert[i] = s.Acc[2] - imu.Gravity
	}
	smooth := sigproc.Smooth(vert, cfg.SmoothWindow)

	var steps []Step
	lastT := math.Inf(-1)
	for i := cfg.VoteWindow; i < len(smooth)-cfg.VoteWindow; i++ {
		v := smooth[i]
		if v < cfg.MinPeak {
			continue
		}
		// Voting: candidate must be the maximum of its neighbourhood.
		isMax := true
		for k := i - cfg.VoteWindow; k <= i+cfg.VoteWindow; k++ {
			if smooth[k] > v {
				isMax = false
				break
			}
		}
		if !isMax {
			continue
		}
		t := samples[i].T
		if t-lastT < cfg.MinInterval {
			continue
		}
		freq := 1.8 // default cadence until we have an inter-step interval
		if len(steps) > 0 {
			freq = 1 / (t - steps[len(steps)-1].T)
		}
		steps = append(steps, Step{T: t, Freq: freq, Length: lenModel.Length(freq)})
		lastT = t
	}
	// First step's frequency: copy the second's, if any.
	if len(steps) >= 2 {
		steps[0].Freq = steps[1].Freq
		steps[0].Length = lenModel.Length(steps[0].Freq)
	}
	return steps, nil
}

// Turn is one detected turning maneuver.
type Turn struct {
	Begin, End float64 // seconds
	Angle      float64 // signed turn angle in radians (from magnetometer)
}

// TurnDetectorConfig tunes the gyroscope bump detector.
type TurnDetectorConfig struct {
	// RateThreshold is the |gyro z| rate (rad/s) that opens a bump.
	RateThreshold float64
	// CloseThreshold is the rate below which the bump closes.
	CloseThreshold float64
	// MinDuration discards spurious blips shorter than this (seconds).
	MinDuration float64
	// SmoothWindow smooths the gyro rate before thresholding.
	SmoothWindow int
}

// DefaultTurnDetectorConfig returns settings for 100 Hz data.
func DefaultTurnDetectorConfig() TurnDetectorConfig {
	return TurnDetectorConfig{RateThreshold: 0.35, CloseThreshold: 0.15, MinDuration: 0.3, SmoothWindow: 9}
}

// MagHeading extracts the magnetometer heading at sample i: the paper uses
// the magnetic heading at the bump's endpoints to measure the turn angle.
func MagHeading(s imu.Sample) float64 {
	return math.Atan2(-s.Mag[1], s.Mag[0])
}

// DetectTurns finds turning maneuvers: the gyroscope identifies the
// beginning and end of each rate bump; the magnetic headings at those
// points give the turn angle (Sec. 5.2.2, Fig. 8(b)).
func DetectTurns(samples []imu.Sample, cfg TurnDetectorConfig) ([]Turn, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	rate := make([]float64, len(samples))
	for i, s := range samples {
		rate[i] = s.Gyro[2]
	}
	smooth := sigproc.Smooth(rate, cfg.SmoothWindow)

	// The |rate| threshold necessarily clips the slow edges of the bump,
	// so the headings must be read well outside the detected interval —
	// the rotation has not finished where the rate drops below the close
	// threshold. Margin ≈ 0.3 s of samples.
	margin := cfg.SmoothWindow
	if len(samples) >= 2 {
		if dt := samples[1].T - samples[0].T; dt > 0 {
			margin = maxInt(margin, int(0.3/dt))
		}
	}

	var turns []Turn
	open := false
	var beginIdx int
	for i, r := range smooth {
		a := math.Abs(r)
		switch {
		case !open && a >= cfg.RateThreshold:
			open = true
			beginIdx = i
		case open && a < cfg.CloseThreshold:
			open = false
			b, e := beginIdx, i
			if samples[e].T-samples[b].T < cfg.MinDuration {
				continue
			}
			bi := maxInt(0, b-margin)
			ei := minInt(len(samples)-1, e+margin)
			angle := headingDelta(samples, bi, ei)
			turns = append(turns, Turn{Begin: samples[b].T, End: samples[e].T, Angle: angle})
		}
	}
	if open {
		b, e := beginIdx, len(samples)-1
		if samples[e].T-samples[b].T >= cfg.MinDuration {
			angle := headingDelta(samples, maxInt(0, b-margin), e)
			turns = append(turns, Turn{Begin: samples[b].T, End: samples[e].T, Angle: angle})
		}
	}
	return turns, nil
}

// headingDelta averages a few headings around each endpoint and returns
// the signed difference end−begin.
func headingDelta(samples []imu.Sample, b, e int) float64 {
	avg := func(center int) float64 {
		lo, hi := maxInt(0, center-5), minInt(len(samples)-1, center+5)
		// Average on the unit circle to avoid wrap-around artefacts.
		var sx, sy float64
		for k := lo; k <= hi; k++ {
			h := MagHeading(samples[k])
			sx += math.Cos(h)
			sy += math.Sin(h)
		}
		return math.Atan2(sy, sx)
	}
	return imu.AngleDiff(avg(e), avg(b))
}

// Displacement is the observer's cumulative movement at a point in time —
// the (aᵢ, cᵢ) pair of the paper's Eq. (1).
type Displacement struct {
	T    float64
	X, Y float64
}

// Track is the dead-reckoned movement of a device.
type Track struct {
	Steps []Step
	Turns []Turn
	// Points is the cumulative displacement after each step.
	Points []Displacement
	// InitialHeading is the assumed starting heading (radians).
	InitialHeading float64
}

// TrackerConfig bundles the detector configurations.
type TrackerConfig struct {
	Step   StepDetectorConfig
	Turn   TurnDetectorConfig
	LenMod StepLengthModel
	// SnapRightAngles rounds detected turn angles to the nearest 90° —
	// the paper notes LocBLE can ask the user to make a right-angle turn
	// to avoid angle measurement error (Sec. 5.2.2).
	SnapRightAngles bool
}

// DefaultTrackerConfig returns the default pipeline settings.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		Step:   DefaultStepDetectorConfig(),
		Turn:   DefaultTurnDetectorConfig(),
		LenMod: DefaultStepLengthModel(),
	}
}

// BuildTrack runs step and turn detection over earth-frame samples and
// dead-reckons the displacement track: each step advances the position by
// its length along the current heading; each completed turn rotates the
// heading by the measured angle.
func BuildTrack(samples []imu.Sample, cfg TrackerConfig) (*Track, error) {
	steps, err := DetectSteps(samples, cfg.Step, cfg.LenMod)
	if err != nil {
		return nil, err
	}
	turns, err := DetectTurns(samples, cfg.Turn)
	if err != nil {
		return nil, err
	}
	if cfg.SnapRightAngles {
		for i := range turns {
			turns[i].Angle = snapRight(turns[i].Angle)
		}
	}
	tr := &Track{Steps: steps, Turns: turns}

	heading := 0.0
	if len(samples) > 0 {
		// Initial heading from the magnetometer before movement begins.
		heading = MagHeading(samples[0])
	}
	tr.InitialHeading = heading

	// Merge step and turn events in time order.
	type ev struct {
		t      float64
		isTurn bool
		idx    int
	}
	var evs []ev
	for i, s := range steps {
		evs = append(evs, ev{t: s.T, idx: i})
	}
	for i, t := range turns {
		evs = append(evs, ev{t: t.End, isTurn: true, idx: i})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

	x, y := 0.0, 0.0
	h := heading
	tr.Points = append(tr.Points, Displacement{T: 0, X: 0, Y: 0})
	for _, e := range evs {
		if e.isTurn {
			h += turns[e.idx].Angle
			continue
		}
		st := steps[e.idx]
		x += st.Length * math.Cos(h)
		y += st.Length * math.Sin(h)
		tr.Points = append(tr.Points, Displacement{T: st.T, X: x, Y: y})
	}
	return tr, nil
}

// snapRight rounds an angle to the nearest multiple of 90°.
func snapRight(a float64) float64 {
	q := math.Round(a / (math.Pi / 2))
	return q * math.Pi / 2
}

// At interpolates the displacement at time t.
func (tr *Track) At(t float64) (x, y float64) {
	pts := tr.Points
	if len(pts) == 0 {
		return 0, 0
	}
	if t <= pts[0].T {
		return pts[0].X, pts[0].Y
	}
	for i := 1; i < len(pts); i++ {
		if t < pts[i].T {
			a, b := pts[i-1], pts[i]
			frac := (t - a.T) / (b.T - a.T)
			return a.X + (b.X-a.X)*frac, a.Y + (b.Y-a.Y)*frac
		}
	}
	last := pts[len(pts)-1]
	return last.X, last.Y
}

// TotalDistance returns the walked path length.
func (tr *Track) TotalDistance() float64 {
	d := 0.0
	for _, s := range tr.Steps {
		d += s.Length
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
