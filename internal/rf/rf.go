// Package rf simulates 2.4 GHz radio-frequency propagation for BLE
// advertisements. The paper's algorithms never observe the channel
// directly — only RSS time series — so the goal of this substrate is to
// produce RSS with the same statistical structure the paper measures:
//
//   - a log-distance trend RS = Γ(e) − 10·n(e)·log10(d) (paper Eq. 1),
//   - an environment-dependent path-loss exponent n(e) and offset Γ(e)
//     (LOS / partial-LOS / NLOS; paper Sec. 4.1),
//   - spatially correlated log-normal shadowing (Gudmundson model),
//   - fast fading (Rician for LOS, Rayleigh-like for NLOS) that is
//     frequency-selective across the three advertising channels
//     (paper Sec. 2.2–2.3),
//   - receiver chipset measurement offset and noise (paper Sec. 2.4).
package rf

import (
	"fmt"
	"math"

	"locble/internal/rng"
)

// SpeedOfLight in m/s, used for free-space reference loss.
const SpeedOfLight = 299792458.0

// Environment identifies the propagation class the paper's EnvAware module
// distinguishes (Sec. 4.1).
type Environment int

const (
	// LOS is a clear line-of-sight path.
	LOS Environment = iota
	// PLOS is partial line of sight: a low-blocking-coefficient obstacle
	// (glass, wooden door, human body) sits in the path.
	PLOS
	// NLOS is non line of sight: a high-blocking-coefficient obstacle
	// (concrete wall, cinder wall, metal board) sits in the path.
	NLOS
)

// String returns the conventional name for the environment.
func (e Environment) String() string {
	switch e {
	case LOS:
		return "LOS"
	case PLOS:
		return "p-LOS"
	case NLOS:
		return "NLOS"
	default:
		return fmt.Sprintf("Environment(%d)", int(e))
	}
}

// Environments lists all propagation classes.
func Environments() []Environment { return []Environment{LOS, PLOS, NLOS} }

// PropagationParams holds the per-environment parameters of the modified
// log-distance model RS = Γ(e) − 10·n(e)·log10(d).
type PropagationParams struct {
	// PathLossExponent is n(e). Free space is 2; indoor NLOS is 3–4.
	PathLossExponent float64
	// ExtraLoss is subtracted from Γ(e): the penetration loss of the
	// blocking object in dB (0 for LOS).
	ExtraLoss float64
	// ShadowSigma is the standard deviation of log-normal shadowing in dB.
	ShadowSigma float64
	// ShadowCorrDist is the Gudmundson decorrelation distance in metres:
	// shadowing at positions Δd apart correlates as exp(−Δd/ShadowCorrDist).
	ShadowCorrDist float64
	// RicianK is the Rician K-factor (linear) of fast fading; 0 means
	// Rayleigh (rich multipath, no dominant path).
	RicianK float64
}

// DefaultParams returns the propagation parameters used throughout the
// simulator for each environment class. Values follow common indoor
// 2.4 GHz measurement literature and reproduce the qualitative RSS
// behaviour in the paper's Figs. 2 and 4.
func DefaultParams(env Environment) PropagationParams {
	switch env {
	case LOS:
		return PropagationParams{
			PathLossExponent: 2.0,
			ExtraLoss:        0,
			ShadowSigma:      1.5,
			ShadowCorrDist:   2.5,
			RicianK:          20.0,
		}
	case PLOS:
		return PropagationParams{
			PathLossExponent: 2.5,
			ExtraLoss:        4.5,
			ShadowSigma:      3.0,
			ShadowCorrDist:   2.0,
			RicianK:          3.5,
		}
	default: // NLOS
		return PropagationParams{
			PathLossExponent: 3.0,
			ExtraLoss:        8.0,
			ShadowSigma:      5.0,
			ShadowCorrDist:   1.5,
			RicianK:          0,
		}
	}
}

// DeviceProfile models the receiver hardware configuration: the paper
// observes that different phones report the same RSS trend with different
// constant offsets (Fig. 2) and that chipsets add measurement noise
// (Sec. 2.4, ±5 dB at room temperature for the BCM4334).
type DeviceProfile struct {
	// Name identifies the phone model.
	Name string
	// RSSIOffset is the constant dB offset this chipset adds to readings.
	RSSIOffset float64
	// NoiseSigma is the standard deviation of the chipset measurement
	// noise in dB.
	NoiseSigma float64
	// SampleRateHz is the effective BLE scan report rate of this device
	// (9 Hz on recent iPhones, 8 Hz on Nexus 6P per Sec. 7.6.1).
	SampleRateHz float64
}

// Stock smartphone profiles used by the paper's experiments (Fig. 2,
// Sec. 7.6.1). Offsets are relative to the iPhone 5s reference.
var (
	IPhone5s = DeviceProfile{Name: "iPhone 5s", RSSIOffset: 0, NoiseSigma: 1.6, SampleRateHz: 9}
	IPhone6s = DeviceProfile{Name: "iPhone 6s", RSSIOffset: -1.0, NoiseSigma: 1.5, SampleRateHz: 9}
	Nexus5x  = DeviceProfile{Name: "Nexus 5x", RSSIOffset: -6.0, NoiseSigma: 2.0, SampleRateHz: 8}
	Nexus6P  = DeviceProfile{Name: "Nexus 6P", RSSIOffset: -4.5, NoiseSigma: 1.8, SampleRateHz: 8}
	MotoNex6 = DeviceProfile{Name: "Moto Nexus 6", RSSIOffset: 3.5, NoiseSigma: 2.2, SampleRateHz: 8}
)

// TxProfile models the transmitter hardware: dedicated beacons radiate a
// slightly cleaner signal than smart-device-integrated beacons whose chips
// are built more compactly (paper Sec. 7.6.3, Fig. 14).
type TxProfile struct {
	// Name identifies the beacon hardware type.
	Name string
	// TxPowerDBm is the (calibrated) transmit power at 1 m in dBm. iBeacon
	// "measured power" is typically around −59 dBm at 1 m.
	TxPowerDBm float64
	// JitterSigma is extra per-packet power jitter from the transmitter in
	// dB (compact smart-device radios jitter more).
	JitterSigma float64
}

// Stock beacon hardware profiles (paper Fig. 14).
var (
	EstimoteBeacon = TxProfile{Name: "Estimote", TxPowerDBm: -59, JitterSigma: 0.6}
	RadBeaconUSB   = TxProfile{Name: "RadBeacon", TxPowerDBm: -60, JitterSigma: 0.8}
	IOSDeviceTx    = TxProfile{Name: "iOS device", TxPowerDBm: -58, JitterSigma: 1.4}
)

// Channel simulates the radio channel between one transmitter and one
// receiver. It is stateful: shadowing is spatially correlated, so each
// sample must report the receiver's travelled distance since the previous
// sample.
//
// A Channel is not safe for concurrent use.
type Channel struct {
	params PropagationParams
	tx     TxProfile
	rx     DeviceProfile
	src    *rng.Source

	// chanGain is the static frequency-selective gain of each of the three
	// advertising channels (37, 38, 39) in dB. Narrowband BLE channels sit
	// at different points of the frequency-selective fading profile, so
	// their mean levels differ (paper Sec. 2.2).
	chanGain [3]float64

	shadow     float64 // current correlated shadowing value, dB
	hasShadow  bool
	env        Environment
	fastScale  float64 // fast-fading envelope → dB conversion reference
	minRSSI    float64
	hopCounter int

	// field-based shadowing state (see SetShadowField / SampleAt).
	field                          *ShadowField
	prevOx, prevOy, prevBx, prevBy float64
	hasPrevPos                     bool
	unitShadow                     float64
	hasUnitShadow                  bool
}

// NewChannel creates a channel in env between tx and rx hardware, drawing
// randomness from src.
func NewChannel(env Environment, tx TxProfile, rx DeviceProfile, src *rng.Source) *Channel {
	c := &Channel{
		params:    DefaultParams(env),
		tx:        tx,
		rx:        rx,
		src:       src,
		env:       env,
		fastScale: 1 / math.Sqrt2, // unit mean power envelope reference
		minRSSI:   -105,
	}
	// Frequency-selective offsets: draw once per link; a few dB spread.
	for i := range c.chanGain {
		c.chanGain[i] = src.Normal(0, 1.5)
	}
	return c
}

// SetSensitivityFloor lowers (or raises) the receiver's clipping floor in
// dBm. Bluetooth 5's LE Coded PHY (S=8) buys ~12 dB of link budget — the
// "wider coverage" the paper's Sec. 9.3 expects to enhance LocBLE — which
// manifests here as a lower floor before readings are clipped/lost.
func (c *Channel) SetSensitivityFloor(dBm float64) { c.minRSSI = dBm }

// SetEnvironment switches the propagation class mid-run (e.g. the observer
// walks from behind a wall into line of sight). Shadowing state is kept so
// the transition is continuous apart from the parameter change.
func (c *Channel) SetEnvironment(env Environment) {
	c.env = env
	c.params = DefaultParams(env)
}

// Environment returns the current propagation class.
func (c *Channel) Environment() Environment { return c.env }

// Params returns the current propagation parameters.
func (c *Channel) Params() PropagationParams { return c.params }

// Gamma returns Γ(e) = P + X(e): the effective power offset of the link,
// combining Tx power and environment penetration loss, before receiver
// offset. This is the ground-truth value of the paper's Γ(e).
func (c *Channel) Gamma() float64 {
	return c.tx.TxPowerDBm - c.params.ExtraLoss
}

// MeanRSSI returns the noiseless model RSS at distance d (metres),
// including the receiver offset: the "theoretical" curve in Fig. 4.
func (c *Channel) MeanRSSI(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return c.Gamma() - 10*c.params.PathLossExponent*math.Log10(d) + c.rx.RSSIOffset
}

// Sample draws one RSSI reading at distance d (metres) on advertising
// channel ch (37, 38 or 39), after the receiver moved deltaDist metres
// since the previous sample (for shadowing correlation).
func (c *Channel) Sample(d float64, ch int, deltaDist float64) float64 {
	if ch < 37 || ch > 39 {
		panic(fmt.Sprintf("rf: invalid advertising channel %d", ch))
	}
	// Correlated shadowing (Gudmundson): AR(1) over travelled distance.
	rho := math.Exp(-math.Abs(deltaDist) / c.params.ShadowCorrDist)
	if !c.hasShadow {
		c.shadow = c.src.Normal(0, c.params.ShadowSigma)
		c.hasShadow = true
	} else {
		innov := c.src.Normal(0, c.params.ShadowSigma*math.Sqrt(1-rho*rho))
		c.shadow = rho*c.shadow + innov
	}

	// Fast fading: envelope draw converted to dB around 0 mean power.
	var envp float64
	if k := c.params.RicianK; k > 0 {
		sigma := math.Sqrt(1 / (2 * (k + 1)))
		nu := math.Sqrt(k / (k + 1))
		envp = c.src.Rician(nu, sigma)
	} else {
		envp = c.src.Rayleigh(c.fastScale)
	}
	fastDB := 20 * math.Log10(math.Max(envp, 1e-3))

	rssi := c.MeanRSSI(d) +
		c.shadow +
		fastDB +
		c.chanGain[ch-37] +
		c.src.Normal(0, c.rx.NoiseSigma) +
		c.src.Normal(0, c.tx.JitterSigma)

	if rssi < c.minRSSI {
		rssi = c.minRSSI
	}
	return rssi
}

// NextChannel returns the next advertising channel in the fixed hop
// sequence 37 → 38 → 39 → 37 … that BLE advertisers use (Sec. 2.2).
func (c *Channel) NextChannel() int {
	ch := 37 + c.hopCounter%3
	c.hopCounter++
	return ch
}

// PathLossDistance inverts the log-distance model: given an RSS reading
// (receiver offset removed), gamma and exponent n, it returns the implied
// distance. This is the primitive ranging operation baselines use.
func PathLossDistance(rss, gamma, n float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	return math.Pow(10, (gamma-rss)/(10*n))
}

// FreeSpaceLoss returns the free-space path loss in dB at distance d
// metres and frequency f Hz (reference for calibrating Γ).
func FreeSpaceLoss(d, f float64) float64 {
	if d <= 0 || f <= 0 {
		return math.NaN()
	}
	return 20*math.Log10(d) + 20*math.Log10(f) + 20*math.Log10(4*math.Pi/SpeedOfLight)
}
