package rf

import (
	"math"
	"testing"
	"testing/quick"

	"locble/internal/rng"
)

func TestEnvironmentString(t *testing.T) {
	if LOS.String() != "LOS" || PLOS.String() != "p-LOS" || NLOS.String() != "NLOS" {
		t.Error("environment names")
	}
	if len(Environments()) != 3 {
		t.Error("Environments() should list 3 classes")
	}
}

func TestDefaultParamsOrdering(t *testing.T) {
	los, plos, nlos := DefaultParams(LOS), DefaultParams(PLOS), DefaultParams(NLOS)
	if !(los.PathLossExponent < plos.PathLossExponent && plos.PathLossExponent < nlos.PathLossExponent) {
		t.Error("exponent should grow with blockage")
	}
	if !(los.ExtraLoss < plos.ExtraLoss && plos.ExtraLoss < nlos.ExtraLoss) {
		t.Error("penetration loss should grow with blockage")
	}
	if !(los.RicianK > plos.RicianK && plos.RicianK > nlos.RicianK) {
		t.Error("Rician K should shrink with blockage")
	}
}

func TestMeanRSSIMonotoneInDistance(t *testing.T) {
	ch := NewChannel(LOS, EstimoteBeacon, IPhone6s, rng.New(1))
	prev := math.Inf(1)
	for d := 0.5; d <= 15; d += 0.5 {
		v := ch.MeanRSSI(d)
		if v >= prev {
			t.Fatalf("MeanRSSI not decreasing at %g m: %g >= %g", d, v, prev)
		}
		prev = v
	}
}

func TestMeanRSSIDeviceOffset(t *testing.T) {
	src := rng.New(2)
	a := NewChannel(LOS, EstimoteBeacon, IPhone5s, src.Split(1))
	b := NewChannel(LOS, EstimoteBeacon, Nexus5x, src.Split(2))
	diff := a.MeanRSSI(4) - b.MeanRSSI(4)
	want := IPhone5s.RSSIOffset - Nexus5x.RSSIOffset
	if math.Abs(diff-want) > 1e-9 {
		t.Errorf("device offset = %g, want %g", diff, want)
	}
}

func TestSampleStatistics(t *testing.T) {
	// Mean of many samples should track the model mean; LOS variance
	// should be clearly below NLOS variance.
	stats := func(env Environment) (mean, variance float64) {
		ch := NewChannel(env, EstimoteBeacon, IPhone6s, rng.New(7))
		const n = 4000
		var s, ss float64
		for i := 0; i < n; i++ {
			v := ch.Sample(4, ch.NextChannel(), 0.1)
			s += v
			ss += v * v
		}
		mean = s / n
		return mean, ss/n - mean*mean
	}
	mLOS, vLOS := stats(LOS)
	mNLOS, vNLOS := stats(NLOS)
	if math.Abs(mLOS-NewChannel(LOS, EstimoteBeacon, IPhone6s, rng.New(9)).MeanRSSI(4)) > 2.5 {
		t.Errorf("LOS sample mean %g far from model", mLOS)
	}
	if mNLOS >= mLOS {
		t.Errorf("NLOS mean %g should be below LOS mean %g", mNLOS, mLOS)
	}
	if vNLOS <= vLOS {
		t.Errorf("NLOS variance %g should exceed LOS variance %g", vNLOS, vLOS)
	}
}

func TestSampleChannelValidation(t *testing.T) {
	ch := NewChannel(LOS, EstimoteBeacon, IPhone6s, rng.New(3))
	defer func() {
		if recover() == nil {
			t.Error("invalid channel should panic")
		}
	}()
	ch.Sample(4, 40, 0.1)
}

func TestNextChannelHops(t *testing.T) {
	ch := NewChannel(LOS, EstimoteBeacon, IPhone6s, rng.New(4))
	want := []int{37, 38, 39, 37, 38, 39}
	for i, w := range want {
		if got := ch.NextChannel(); got != w {
			t.Fatalf("hop %d = %d, want %d", i, got, w)
		}
	}
}

func TestSetEnvironmentChangesParams(t *testing.T) {
	ch := NewChannel(LOS, EstimoteBeacon, IPhone6s, rng.New(5))
	losMean := ch.MeanRSSI(4)
	ch.SetEnvironment(NLOS)
	if ch.Environment() != NLOS {
		t.Error("Environment() after SetEnvironment")
	}
	if ch.MeanRSSI(4) >= losMean {
		t.Error("NLOS mean should drop below LOS mean")
	}
}

func TestPathLossDistanceInverts(t *testing.T) {
	gamma, n := -59.0, 2.0
	for _, d := range []float64{0.5, 1, 3, 7, 12} {
		rss := gamma - 10*n*math.Log10(d)
		if got := PathLossDistance(rss, gamma, n); math.Abs(got-d) > 1e-9 {
			t.Errorf("PathLossDistance(%g) = %g, want %g", rss, got, d)
		}
	}
	if !math.IsNaN(PathLossDistance(-70, -59, 0)) {
		t.Error("n=0 should return NaN")
	}
}

func TestFreeSpaceLoss(t *testing.T) {
	// 2.4 GHz at 1 m ≈ 40 dB.
	fsl := FreeSpaceLoss(1, 2.4e9)
	if math.Abs(fsl-40.05) > 0.3 {
		t.Errorf("FSL(1 m, 2.4 GHz) = %g, want ≈40", fsl)
	}
	if !math.IsNaN(FreeSpaceLoss(0, 2.4e9)) {
		t.Error("zero distance should be NaN")
	}
}

func TestShadowFieldSpatialCorrelation(t *testing.T) {
	// Two independent smooth processes can show large *sample* correlation
	// over a short window, so the contrast is asserted on the average of
	// many field realizations.
	var nearSum, farSum float64
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		f := NewShadowField(2.0, rng.New(100+seed))
		corr := func(b1x, b1y, b2x, b2y float64) float64 {
			var xs, ys []float64
			for d := 0.0; d < 30; d += 0.1 {
				xs = append(xs, f.At(d, 0, b1x, b1y))
				ys = append(ys, f.At(d, 0, b2x, b2y))
			}
			return pearson(xs, ys)
		}
		nearSum += corr(7, 3, 7.3, 3)
		farSum += math.Abs(corr(7, 3, 1, 9))
	}
	near := nearSum / trials
	far := farSum / trials
	if near < 0.85 {
		t.Errorf("co-located beacons should share shadowing: mean corr = %g", near)
	}
	if far > 0.5 {
		t.Errorf("far-beacon mean |corr| = %g, want well below near (%g)", far, near)
	}
}

func TestSampleAtUsesSharedField(t *testing.T) {
	src := rng.New(12)
	f := NewShadowField(2.0, src.Split(0))
	mk := func(label int64) *Channel {
		c := NewChannel(NLOS, EstimoteBeacon, IPhone6s, src.Split(label))
		c.SetShadowField(f)
		return c
	}
	a, b := mk(1), mk(2)
	// Average many samples per position to suppress independent fast
	// fading; the slow pattern should correlate for nearby beacons —
	// partially, because shadowing is split between the shared field and
	// the per-link micro-shadowing (see sharedShadowWeight).
	var sa, sb []float64
	for d := 0.5; d < 8; d += 0.25 {
		var ma, mb float64
		for k := 0; k < 40; k++ {
			ma += a.SampleAt(d, 0, 9, 1, 37)
			mb += b.SampleAt(d, 0, 9.3, 1, 37)
		}
		sa = append(sa, ma/40)
		sb = append(sb, mb/40)
	}
	if c := pearson(sa, sb); c < 0.4 {
		t.Errorf("co-located beacon RSS patterns correlate only %g", c)
	}
}

func TestBodyLossShape(t *testing.T) {
	if BodyLoss(0, 0, 6) != 0 {
		t.Error("beacon ahead: no body loss")
	}
	if got := BodyLoss(math.Pi, 0, 6); math.Abs(got-6) > 1e-9 {
		t.Errorf("beacon behind: loss %g, want 6", got)
	}
	if BodyLoss(math.Pi/2, 0, 6) != 0 {
		t.Error("beacon at 90°: inside the clear cone")
	}
	// Monotone ramp in the rear cone.
	prev := -1.0
	for a := 100.0; a <= 180; a += 5 {
		l := BodyLoss(a*math.Pi/180, 0, 6)
		if l < prev {
			t.Fatalf("body loss not monotone at %g°", a)
		}
		prev = l
	}
	// Wrap-around: bearing −170° vs heading 170° is only 20° apart.
	if l := BodyLoss(-170*math.Pi/180, 170*math.Pi/180, 6); l != 0 {
		t.Errorf("wrap-around angle treated as rear: %g", l)
	}
}

// Property: sampled RSSI is always within physical bounds and finite.
func TestPropertySampleBounded(t *testing.T) {
	f := func(seed uint8, envPick uint8, dQ uint8) bool {
		env := Environment(envPick % 3)
		ch := NewChannel(env, EstimoteBeacon, IPhone6s, rng.New(int64(seed)))
		d := 0.3 + float64(dQ)/16 // 0.3 … 16 m
		v := ch.Sample(d, 37+int(seed)%3, 0.1)
		return v >= -105 && v < 0 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		sxy += (x[i] - mx) * (y[i] - my)
		sxx += (x[i] - mx) * (x[i] - mx)
		syy += (y[i] - my) * (y[i] - my)
	}
	return sxy / math.Sqrt(sxx*syy)
}
