package rf

import (
	"math"

	"locble/internal/rng"
)

// ShadowField is a smooth random field over link endpoints that produces
// *spatially correlated* shadowing: two links whose beacon endpoints are
// close (e.g. one observer and two beacons 0.3 m apart) see nearly
// identical shadowing, while links to beacons metres apart are
// statistically independent. This is the physical effect LocBLE's
// multi-beacon clustering exploits (paper Sec. 6.1: co-located beacons
// "exhibit a similar pattern of RSS changes") — per-link independent
// shadowing would erase it.
//
// Construction: beacon space is partitioned into cells of BeaconCorrDist;
// each cell owns an independent smooth random process over the observer's
// position (a sum of random plane waves with wavelengths ~ the observer
// decorrelation distance); the field value for a link is the bilinear
// blend of the four cells around the beacon position, renormalized to
// unit variance. Beacons in the same cell share the process exactly;
// beacons cells apart use independent processes.
type ShadowField struct {
	corrDist float64 // observer-side decorrelation distance
	cellSize float64 // beacon-side decorrelation distance
	seed     int64
	cells    map[[2]int64][]wave
}

type wave struct {
	kx, ky, phase float64
}

// BeaconCorrDist is the beacon-side decorrelation distance: beacons on
// the same shelf share shadowing; beacons across the room do not.
const BeaconCorrDist = 1.0

// NewShadowField builds a field with the given observer-side
// decorrelation distance in metres.
func NewShadowField(corrDist float64, src *rng.Source) *ShadowField {
	if corrDist <= 0 {
		corrDist = 2
	}
	return &ShadowField{
		corrDist: corrDist,
		cellSize: BeaconCorrDist,
		seed:     int64(src.Intn(1 << 30)),
		cells:    make(map[[2]int64][]wave),
	}
}

const wavesPerCell = 24

// cellWaves returns (lazily building) the wave set of a beacon cell.
func (f *ShadowField) cellWaves(cx, cy int64) []wave {
	key := [2]int64{cx, cy}
	if w, ok := f.cells[key]; ok {
		return w
	}
	// Deterministic per-cell stream: mix the cell coordinates into the
	// field seed (splitmix-style) so cells are independent yet stable.
	z := uint64(f.seed) ^ (uint64(cx)*0x9E3779B97F4A7C15 + uint64(cy)*0xC2B2AE3D27D4EB4F)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	src := rng.New(int64(z ^ (z >> 31)))
	ws := make([]wave, wavesPerCell)
	for i := range ws {
		ws[i] = wave{
			kx:    src.Normal(0, 1/f.corrDist),
			ky:    src.Normal(0, 1/f.corrDist),
			phase: src.Uniform(0, 2*math.Pi),
		}
	}
	f.cells[key] = ws
	return ws
}

// cellValue evaluates a cell's observer-process at (ox, oy), unit
// variance.
func (f *ShadowField) cellValue(cx, cy int64, ox, oy float64) float64 {
	s := 0.0
	for _, w := range f.cellWaves(cx, cy) {
		s += math.Cos(w.kx*ox + w.ky*oy + w.phase)
	}
	return s * math.Sqrt(2.0/wavesPerCell)
}

// At evaluates the unit-variance field for the link between the observer
// at (ox, oy) and the beacon at (bx, by).
func (f *ShadowField) At(ox, oy, bx, by float64) float64 {
	gx := bx / f.cellSize
	gy := by / f.cellSize
	x0 := int64(math.Floor(gx))
	y0 := int64(math.Floor(gy))
	tx := gx - float64(x0)
	ty := gy - float64(y0)

	w00 := (1 - tx) * (1 - ty)
	w10 := tx * (1 - ty)
	w01 := (1 - tx) * ty
	w11 := tx * ty
	v := w00*f.cellValue(x0, y0, ox, oy) +
		w10*f.cellValue(x0+1, y0, ox, oy) +
		w01*f.cellValue(x0, y0+1, ox, oy) +
		w11*f.cellValue(x0+1, y0+1, ox, oy)
	// Renormalize: the blend of independent unit-variance processes has
	// variance Σw².
	norm := math.Sqrt(w00*w00 + w10*w10 + w01*w01 + w11*w11)
	if norm < 1e-12 {
		return 0
	}
	return v / norm
}

// SetShadowField switches the channel from autoregressive per-link
// shadowing to field-based shadowing; SampleAt must then be used instead
// of Sample.
func (c *Channel) SetShadowField(f *ShadowField) { c.field = f }

// Shadowing split between the shared spatial field and the per-link slow
// component: large-scale blockage shadowing is common to co-located
// beacons (what the clustering layer detects), but the sub-metre
// multipath/standing-wave structure differs even between beacons on the
// same shelf, producing independent slow deviations per link (what makes
// each cluster member's estimate an *independent* measurement worth
// averaging, paper Sec. 6.2). Weights satisfy ws²+wi² = 1 so the total
// shadowing variance stays ShadowSigma².
const (
	sharedShadowWeight  = 0.75
	perLinkShadowWeight = 0.661438 // sqrt(1 − 0.75²)
)

// SampleAt draws one RSSI reading for the link between explicit endpoint
// positions, using the shared spatial shadow field when one is installed
// (falling back to the AR(1) model otherwise, with the travelled distance
// derived from the previous endpoints).
func (c *Channel) SampleAt(ox, oy, bx, by float64, ch int) float64 {
	d := math.Hypot(ox-bx, oy-by)
	delta := 0.0
	if c.hasPrevPos {
		delta = math.Hypot(ox-c.prevOx, oy-c.prevOy) + math.Hypot(bx-c.prevBx, by-c.prevBy)
	}
	c.prevOx, c.prevOy, c.prevBx, c.prevBy = ox, oy, bx, by
	c.hasPrevPos = true
	if c.field == nil {
		return c.Sample(d, ch, delta)
	}
	// Per-link unit-variance AR(1) micro-shadowing over travelled
	// distance (decorrelation ~0.8 m: sub-metre multipath structure).
	rho := math.Exp(-delta / 0.8)
	if !c.hasUnitShadow {
		c.unitShadow = c.src.Normal(0, 1)
		c.hasUnitShadow = true
	} else {
		c.unitShadow = rho*c.unitShadow + c.src.Normal(0, math.Sqrt(1-rho*rho))
	}
	shadow := c.params.ShadowSigma *
		(sharedShadowWeight*c.field.At(ox, oy, bx, by) + perLinkShadowWeight*c.unitShadow)
	return c.sampleWithShadow(d, ch, shadow)
}

// DefaultBodyLossDB is the peak attenuation of the user's body when the
// beacon is directly behind the walking direction. Measurement studies of
// BLE/WiFi body blockage at 2.4 GHz report 5–9 dB.
const DefaultBodyLossDB = 6.0

// BodyLoss returns the attenuation caused by the phone holder's body for
// a beacon at bearing (radians, world frame) while the user faces
// heading. The body blocks a rear cone: no extra loss while the beacon is
// within ±100° of the facing direction (the phone is held in front), then
// a smooth ramp to the full loss directly behind. The body is the most
// common p-LOS blocker the paper calls out (Sec. 4.1), and — crucially
// for the clustering layer — it is *shared* across co-located beacons and
// different for beacons in other directions.
func BodyLoss(bearing, heading, maxLossDB float64) float64 {
	d := math.Mod(bearing-heading, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	const coneStart = 100 * math.Pi / 180
	a := math.Abs(d)
	if a <= coneStart {
		return 0
	}
	s := (a - coneStart) / (math.Pi - coneStart)
	s = s * s * (3 - 2*s) // smoothstep
	return maxLossDB * s
}

// SampleLink is SampleAt plus body shadowing: heading is the observer's
// facing direction (radians).
func (c *Channel) SampleLink(ox, oy, bx, by, heading float64, ch int) float64 {
	bearing := math.Atan2(by-oy, bx-ox)
	loss := BodyLoss(bearing, heading, DefaultBodyLossDB)
	return c.SampleAt(ox, oy, bx, by, ch) - loss
}

// sampleWithShadow is Sample with an externally supplied shadowing value.
func (c *Channel) sampleWithShadow(d float64, ch int, shadow float64) float64 {
	if ch < 37 || ch > 39 {
		panic("rf: invalid advertising channel")
	}
	var envp float64
	if k := c.params.RicianK; k > 0 {
		sigma := math.Sqrt(1 / (2 * (k + 1)))
		nu := math.Sqrt(k / (k + 1))
		envp = c.src.Rician(nu, sigma)
	} else {
		envp = c.src.Rayleigh(c.fastScale)
	}
	fastDB := 20 * math.Log10(math.Max(envp, 1e-3))

	rssi := c.MeanRSSI(d) +
		shadow +
		fastDB +
		c.chanGain[ch-37] +
		c.src.Normal(0, c.rx.NoiseSigma) +
		c.src.Normal(0, c.tx.JitterSigma)

	if rssi < c.minRSSI {
		rssi = c.minRSSI
	}
	return rssi
}
