package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's lifecycle state.
type BreakerState int

const (
	// Closed: requests flow; outcomes are recorded into the window.
	Closed BreakerState = iota
	// Open: requests fail fast until OpenTimeout elapses.
	Open
	// HalfOpen: a limited number of probe requests test the dependency.
	HalfOpen
)

// String names the state for logs and tests.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. Zero fields take the defaults.
type BreakerConfig struct {
	// Window is the number of recent outcomes the failure rate is
	// computed over (default 20).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// breaker may trip — a single early failure must not open a cold
	// breaker (default 10).
	MinSamples int
	// FailureRate in (0, 1]: the windowed failure fraction at which the
	// breaker opens (default 0.5).
	FailureRate float64
	// OpenTimeout is how long the breaker fails fast before letting
	// half-open probes through (default 1 s).
	OpenTimeout time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again (default 3). Any probe failure re-opens it.
	HalfOpenProbes int
	// Clock is the time source (default time.Now) — tests inject a
	// stepping fake so open→half-open transitions are deterministic.
	Clock func() time.Time
	// OnTransition, if set, observes every state change (called outside
	// the breaker's lock).
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a failure-rate circuit breaker over a sliding outcome
// window. Closed → Open when the windowed failure rate crosses the
// threshold; Open → HalfOpen after OpenTimeout; HalfOpen → Closed after
// HalfOpenProbes consecutive successes, or back to Open on any probe
// failure. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	ring      []bool // true = failure
	idx       int
	filled    int
	fails     int
	openedAt  time.Time
	probes    int // half-open: in-flight + finished probes this episode
	probeOKs  int
	openCount int64
}

// NewBreaker builds a breaker from cfg (zero-value cfg is fine).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State returns the current state (advancing Open → HalfOpen when the
// open timeout has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	trans := b.maybeHalfOpenLocked()
	st := b.state
	b.mu.Unlock()
	if trans != nil {
		trans()
	}
	return st
}

// Opens returns how many times the breaker has opened over its lifetime
// (monotone; soak assertions compare it against injected failure load).
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openCount
}

// Allow reports whether a request may proceed now. ErrCircuitOpen means
// fail fast; nil means proceed — the caller must then report the
// outcome with RecordSuccess or RecordFailure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	trans := b.maybeHalfOpenLocked()
	defer func() {
		b.mu.Unlock()
		if trans != nil {
			trans()
		}
	}()
	switch b.state {
	case Closed:
		return nil
	case Open:
		return ErrCircuitOpen
	default: // HalfOpen: admit only as many probes as can close the loop
		if b.probes >= b.cfg.HalfOpenProbes {
			return ErrCircuitOpen
		}
		b.probes++
		return nil
	}
}

// RecordSuccess reports a successful outcome for a request Allow let
// through.
func (b *Breaker) RecordSuccess() { b.record(false) }

// RecordFailure reports a failed outcome for a request Allow let
// through.
func (b *Breaker) RecordFailure() { b.record(true) }

// Record reports an outcome by error: nil records success, non-nil
// failure.
func (b *Breaker) Record(err error) { b.record(err != nil) }

// Do runs fn under the breaker: Allow, then Record the returned error.
// When the breaker is failing fast, fn is not called and ErrCircuitOpen
// is returned.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}

func (b *Breaker) record(failed bool) {
	b.mu.Lock()
	var trans func()
	defer func() {
		b.mu.Unlock()
		if trans != nil {
			trans()
		}
	}()
	switch b.state {
	case HalfOpen:
		if failed {
			trans = b.transitionLocked(Open)
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenProbes {
			trans = b.transitionLocked(Closed)
		}
	case Open:
		// A straggler from before the trip; the window is already moot.
	default: // Closed
		if b.ring[b.idx] {
			b.fails--
		}
		b.ring[b.idx] = failed
		if failed {
			b.fails++
		}
		b.idx = (b.idx + 1) % len(b.ring)
		if b.filled < len(b.ring) {
			b.filled++
		}
		if b.filled >= b.cfg.MinSamples &&
			float64(b.fails)/float64(b.filled) >= b.cfg.FailureRate {
			trans = b.transitionLocked(Open)
		}
	}
}

// maybeHalfOpenLocked advances Open → HalfOpen once the timeout passed,
// returning the OnTransition hook for the caller to run after unlock.
func (b *Breaker) maybeHalfOpenLocked() func() {
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		return b.transitionLocked(HalfOpen)
	}
	return nil
}

// transitionLocked switches state, resets episode bookkeeping, bumps the
// obs counters, and returns the caller-run OnTransition hook (run it
// after releasing the lock).
func (b *Breaker) transitionLocked(to BreakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	switch to {
	case Open:
		b.openedAt = b.cfg.Clock()
		b.openCount++
		metBreakerToOpen.Inc()
	case HalfOpen:
		b.probes = 0
		b.probeOKs = 0
		metBreakerToHalfOpen.Inc()
	case Closed:
		for i := range b.ring {
			b.ring[i] = false
		}
		b.idx, b.filled, b.fails = 0, 0, 0
		metBreakerToClosed.Inc()
	}
	if hook := b.cfg.OnTransition; hook != nil {
		return func() { hook(from, to) }
	}
	return nil
}
