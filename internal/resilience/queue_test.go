package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locble/internal/testutil"
)

func TestQueueRunsSubmittedWork(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	q := NewQueue(4, 16)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		if err := q.TrySubmit(func() { ran.Add(1); wg.Done() }); err != nil {
			t.Fatalf("TrySubmit: %v", err)
		}
	}
	wg.Wait()
	if ran.Load() != 16 {
		t.Fatalf("ran = %d, want 16", ran.Load())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if q.Completed() != 16 {
		t.Fatalf("Completed = %d, want 16", q.Completed())
	}
}

func TestQueueShedsWhenFull(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	q := NewQueue(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker...
	if err := q.TrySubmit(func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the single buffer slot...
	if err := q.TrySubmit(func() {}); err != nil {
		t.Fatal(err)
	}
	// ...and the next submission must shed.
	err := q.TrySubmit(func() {})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("TrySubmit on full queue = %v, want ErrOverloaded", err)
	}
	if q.Shed() != 1 {
		t.Fatalf("Shed = %d, want 1", q.Shed())
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCloseDrainsBacklog(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	q := NewQueue(1, 8)
	var ran atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})
	q.TrySubmit(func() { close(started); <-block; ran.Add(1) })
	<-started
	for i := 0; i < 8; i++ {
		if err := q.TrySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("backlog submit %d: %v", i, err)
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if ran.Load() != 9 {
		t.Fatalf("ran = %d, want 9 (backlog must drain)", ran.Load())
	}
	if err := q.TrySubmit(func() {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrQueueClosed", err)
	}
}

func TestQueueCloseTimeout(t *testing.T) {
	q := NewQueue(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	q.TrySubmit(func() { close(started); <-block })
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close with stuck worker = %v, want deadline exceeded", err)
	}
	close(block) // let the worker finish so it does not leak
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := q.Close(ctx2); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestQueueTaskPanicDoesNotKillWorker(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	q := NewQueue(1, 4)
	if err := q.TrySubmit(func() { panic("task boom") }); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	if err := q.TrySubmit(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker died after task panic")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestQueueSubmitBlocksThenHonorsContext(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	q := NewQueue(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	q.TrySubmit(func() { close(started); <-block })
	<-started
	q.TrySubmit(func() {}) // fill the buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := q.Submit(ctx, func() {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit on full queue = %v, want deadline exceeded", err)
	}
	close(block)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := q.Close(ctx2); err != nil {
		t.Fatal(err)
	}
}
