package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// stepClock is a manually advanced time source.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *stepClock, transitions *[]string) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         10,
		MinSamples:     4,
		FailureRate:    0.5,
		OpenTimeout:    time.Second,
		HalfOpenProbes: 2,
		Clock:          clk.Now,
		OnTransition: func(from, to BreakerState) {
			if transitions != nil {
				*transitions = append(*transitions, from.String()+">"+to.String())
			}
		},
	})
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	b := testBreaker(clk, nil)

	// Below MinSamples: failures alone cannot trip it.
	b.RecordFailure()
	b.RecordFailure()
	b.RecordFailure()
	if got := b.State(); got != Closed {
		t.Fatalf("state after 3 failures = %v, want closed (min samples)", got)
	}
	b.RecordFailure() // 4 samples, 100% failure
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow while open = %v, want ErrCircuitOpen", err)
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
}

func TestBreakerStaysClosedUnderLowFailureRate(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	b := testBreaker(clk, nil)
	for i := 0; i < 50; i++ {
		if i%4 == 0 {
			b.RecordFailure() // 25% < 50% threshold
		} else {
			b.RecordSuccess()
		}
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed at 25%% failures", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	var trans []string
	clk := &stepClock{t: time.Unix(0, 0)}
	b := testBreaker(clk, &trans)
	for i := 0; i < 4; i++ {
		b.RecordFailure()
	}
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Before the timeout: still failing fast.
	clk.Advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow before timeout = %v", err)
	}
	// After the timeout: exactly HalfOpenProbes probes admitted.
	clk.Advance(2 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 1 not admitted: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe 2 not admitted: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe 3 should be rejected, got %v", err)
	}
	b.RecordSuccess()
	b.RecordSuccess()
	if got := b.State(); got != Closed {
		t.Fatalf("state after probes = %v, want closed", got)
	}
	// The recovered breaker starts with a clean window.
	b.RecordFailure()
	b.RecordFailure()
	b.RecordFailure()
	if got := b.State(); got != Closed {
		t.Fatalf("fresh window tripped early: %v", got)
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", trans, want)
	}
	for i := range want {
		if trans[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", trans, want)
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	b := testBreaker(clk, nil)
	for i := 0; i < 4; i++ {
		b.RecordFailure()
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.RecordFailure()
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
}

func TestBreakerDo(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	b := testBreaker(clk, nil)
	boom := errors.New("boom")
	for i := 0; i < 4; i++ {
		if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("Do = %v", err)
		}
	}
	called := false
	err := b.Do(func() error { called = true; return nil })
	if !errors.Is(err, ErrCircuitOpen) || called {
		t.Fatalf("Do while open = %v (called=%v)", err, called)
	}
}

func TestBreakerConcurrentRecords(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Clock: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() == nil {
					if i%2 == 0 {
						b.RecordSuccess()
					} else {
						b.RecordFailure()
					}
				}
				b.State()
			}
		}(g)
	}
	wg.Wait()
}
