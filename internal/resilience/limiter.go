package resilience

import (
	"sync"
	"time"
)

// TokenBucket is an admission limiter: work is admitted while tokens
// remain, and tokens refill continuously at Rate per second up to
// Burst. A connection-accept loop calls Allow once per connection;
// denials are shed (counted in "resilience.limiter.denied"), never
// queued — the bucket bounds *rate*, the Queue bounds *backlog*.
// Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	clock  func() time.Time
}

// NewTokenBucket builds a limiter admitting rate events/second with the
// given burst capacity (minimum 1). rate <= 0 disables limiting —
// Allow always admits.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		clock:  time.Now,
	}
}

// SetClock replaces the time source (tests inject a stepping fake).
// Call before use; not synchronized with concurrent Allow.
func (tb *TokenBucket) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	tb.clock = now
	tb.last = time.Time{}
}

// Allow admits one event if a token is available, consuming it.
// A denial is counted in "resilience.limiter.denied".
func (tb *TokenBucket) Allow() bool {
	if tb == nil || tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.clock()
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		metLimiterDenied.Inc()
		return false
	}
	tb.tokens--
	return true
}

// Tokens returns the current token count (diagnostics and tests).
func (tb *TokenBucket) Tokens() float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.tokens
}
