// Package resilience provides the lifecycle and overload-control
// primitives LocBLE's long-running serving path is built on: a
// failure-rate circuit breaker, a token-bucket admission limiter, a
// bounded work queue with load shedding, watchdog timers, and a
// panic-isolating supervisor with restart backoff.
//
// The primitives are deliberately dependency-free (stdlib + the obs
// metrics layer) and clock-injectable, so overload and recovery
// behaviour is testable deterministically. netproto threads them
// through its trace-exchange and stream servers; anything long-running
// (a soak harness, a daemonized CLI) can reuse them directly.
package resilience

import (
	"errors"

	"locble/internal/obs"
)

// Typed errors. Callers branch on these to tell "shed under load" apart
// from "dependency failing" apart from "shutting down".
var (
	// ErrOverloaded is returned when admission control sheds work: the
	// bounded queue is full or the token bucket is empty. The request was
	// never started — safe to retry elsewhere or later.
	ErrOverloaded = errors.New("resilience: overloaded")
	// ErrCircuitOpen is returned by a Breaker while it is failing fast.
	ErrCircuitOpen = errors.New("resilience: circuit open")
	// ErrQueueClosed is returned by a Queue after Close has begun.
	ErrQueueClosed = errors.New("resilience: queue closed")
)

// Package-wide instrumentation, recorded into obs.Default (the
// primitives are process infrastructure, like netproto's transport).
var (
	metBreakerToOpen     = obs.Default.Counter("resilience.breaker.to_open")
	metBreakerToHalfOpen = obs.Default.Counter("resilience.breaker.to_halfopen")
	metBreakerToClosed   = obs.Default.Counter("resilience.breaker.to_closed")
	metQueueShed         = obs.Default.Counter("resilience.queue.shed")
	metLimiterDenied     = obs.Default.Counter("resilience.limiter.denied")
	metWatchdogExpired   = obs.Default.Counter("resilience.watchdog.expired")
	metSupervisorPanics  = obs.Default.Counter("resilience.supervisor.panics")
	metSupervisorRestart = obs.Default.Counter("resilience.supervisor.restarts")
	metPanicsRecovered   = obs.Default.Counter("resilience.panics.recovered")
)

// CatchPanic returns a function to defer at the top of a goroutine that
// must never take the process down (e.g. a per-connection handler): a
// panic is recovered, counted in obs.Default
// ("resilience.panics.recovered"), reported through logf (if non-nil),
// and handed to onPanic (if non-nil) for cleanup scoped to that
// goroutine — closing one connection instead of crashing the server.
func CatchPanic(name string, logf func(format string, args ...any), onPanic func(v any)) func() {
	return func() {
		v := recover()
		if v == nil {
			return
		}
		metPanicsRecovered.Inc()
		if logf != nil {
			logf("resilience: recovered panic in %s: %v", name, v)
		}
		if onPanic != nil {
			onPanic(v)
		}
	}
}
