package resilience

import (
	"sync"
	"time"
)

// Watchdog is a progress timer: arm it with a timeout and Kick it on
// every unit of progress (a frame served, a batch published). If no
// kick arrives within the timeout the expire callback fires — once —
// and the watchdog stays expired until Kick re-arms it. Expiries are
// counted in "resilience.watchdog.expired".
//
// netproto uses one per connection: a client that stops making frame
// progress (without tripping a single write deadline, e.g. trickling
// bytes) is evicted by its watchdog instead of holding a connection
// slot forever.
type Watchdog struct {
	timeout  time.Duration
	onExpire func()

	mu      sync.Mutex
	timer   *time.Timer
	stopped bool
	expired bool
}

// NewWatchdog arms a watchdog that calls onExpire if Kick is not called
// within timeout. timeout <= 0 returns an inert watchdog (never fires).
func NewWatchdog(timeout time.Duration, onExpire func()) *Watchdog {
	w := &Watchdog{timeout: timeout, onExpire: onExpire}
	if timeout <= 0 {
		w.stopped = true
		return w
	}
	w.timer = time.AfterFunc(timeout, w.expire)
	return w
}

func (w *Watchdog) expire() {
	w.mu.Lock()
	if w.stopped || w.expired {
		w.mu.Unlock()
		return
	}
	w.expired = true
	fn := w.onExpire
	w.mu.Unlock()
	metWatchdogExpired.Inc()
	if fn != nil {
		fn()
	}
}

// Kick reports progress, re-arming the timer (also from the expired
// state — progress after an expiry restarts the watch).
func (w *Watchdog) Kick() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped || w.timer == nil {
		return
	}
	w.expired = false
	w.timer.Reset(w.timeout)
}

// Stop disarms the watchdog permanently.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	if w.timer != nil {
		w.timer.Stop()
	}
}

// Expired reports whether the watchdog has fired and not been re-armed.
func (w *Watchdog) Expired() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.expired
}
