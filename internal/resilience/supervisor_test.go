package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"locble/internal/testutil"
)

func TestSupervisorRestartsOnPanic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var runs atomic.Int64
	s := &Supervisor{Name: "panicky", Backoff: time.Millisecond}
	err := s.Run(context.Background(), func(ctx context.Context) error {
		if runs.Add(1) < 3 {
			panic("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run = %v, want nil after recovery", err)
	}
	if runs.Load() != 3 {
		t.Fatalf("runs = %d, want 3", runs.Load())
	}
	if s.Restarts() != 2 {
		t.Fatalf("Restarts = %d, want 2", s.Restarts())
	}
}

func TestSupervisorRestartsOnError(t *testing.T) {
	var runs atomic.Int64
	s := &Supervisor{Name: "flaky", Backoff: time.Millisecond}
	err := s.Run(context.Background(), func(ctx context.Context) error {
		if runs.Add(1) < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || runs.Load() != 2 {
		t.Fatalf("Run = %v after %d runs", err, runs.Load())
	}
}

func TestSupervisorMaxRestarts(t *testing.T) {
	boom := errors.New("persistent")
	s := &Supervisor{Name: "doomed", Backoff: time.Millisecond, MaxRestarts: 3}
	err := s.Run(context.Background(), func(ctx context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want the persistent failure", err)
	}
	if s.Restarts() != 3 {
		t.Fatalf("Restarts = %d, want 3", s.Restarts())
	}
}

func TestSupervisorStopsOnContextCancel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	s := &Supervisor{Name: "looper", Backoff: time.Hour} // huge backoff: cancel must cut it
	go func() {
		done <- s.Run(ctx, func(ctx context.Context) error {
			return errors.New("always fails")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("supervisor did not stop on cancel")
	}
}

func TestSupervisorPanicError(t *testing.T) {
	s := &Supervisor{Name: "once", Backoff: time.Millisecond, MaxRestarts: 1}
	err := s.Run(context.Background(), func(ctx context.Context) error { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("Run = %v, want *PanicError{Value: 42}", err)
	}
}

func TestCatchPanic(t *testing.T) {
	var got any
	func() {
		defer CatchPanic("test-goroutine", nil, func(v any) { got = v })()
		panic("isolated")
	}()
	if got != "isolated" {
		t.Fatalf("recovered value = %v", got)
	}
	// No panic: the hook must not fire.
	fired := false
	func() {
		defer CatchPanic("clean", nil, func(v any) { fired = true })()
	}()
	if fired {
		t.Fatal("onPanic fired without a panic")
	}
}

func TestWatchdogFiresAndRearms(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fired := make(chan struct{}, 4)
	w := NewWatchdog(30*time.Millisecond, func() { fired <- struct{}{} })
	defer w.Stop()
	// Kept alive: no expiry while kicked.
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		w.Kick()
	}
	select {
	case <-fired:
		t.Fatal("watchdog fired while being kicked")
	default:
	}
	// Starved: it must fire.
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired")
	}
	if !w.Expired() {
		t.Fatal("Expired() = false after firing")
	}
	// A kick re-arms it.
	w.Kick()
	if w.Expired() {
		t.Fatal("Expired() = true after re-arm")
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed watchdog never fired")
	}
}

func TestWatchdogStop(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	w := NewWatchdog(10*time.Millisecond, func() { t.Error("stopped watchdog fired") })
	w.Stop()
	time.Sleep(30 * time.Millisecond)
	// Inert watchdog (timeout <= 0) is safe to use.
	inert := NewWatchdog(0, func() { t.Error("inert watchdog fired") })
	inert.Kick()
	inert.Stop()
}

func TestTokenBucketAdmitsAndRefills(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	tb := NewTokenBucket(10, 3) // 10/s, burst 3
	tb.SetClock(clk.Now)
	for i := 0; i < 3; i++ {
		if !tb.Allow() {
			t.Fatalf("burst admission %d denied", i)
		}
	}
	if tb.Allow() {
		t.Fatal("empty bucket admitted")
	}
	clk.Advance(100 * time.Millisecond) // refills exactly 1 token
	if !tb.Allow() {
		t.Fatal("refilled token denied")
	}
	if tb.Allow() {
		t.Fatal("second token admitted after one refill interval")
	}
	// Refill never exceeds burst.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !tb.Allow() {
			t.Fatalf("post-idle admission %d denied", i)
		}
	}
	if tb.Allow() {
		t.Fatal("bucket exceeded burst after idle")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb := NewTokenBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !tb.Allow() {
			t.Fatal("unlimited bucket denied")
		}
	}
	var nilBucket *TokenBucket
	if !nilBucket.Allow() {
		t.Fatal("nil bucket must admit")
	}
}
