package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// Queue is a bounded work queue with load shedding: a fixed worker pool
// drains a fixed-depth task buffer, and TrySubmit rejects with
// ErrOverloaded — immediately, never blocking — when the buffer is
// full. Close drains what was admitted and stops the workers.
//
// The queue is the backlog half of overload control: the TokenBucket
// bounds how fast work arrives, the Queue bounds how much admitted work
// may be outstanding. Everything past either bound is shed with a typed
// error the caller can convert into backpressure (an "overloaded" frame,
// a 503, a dropped batch).
type Queue struct {
	tasks chan func()
	quit  chan struct{} // closed by Close: stop accepting, drain, exit

	closeOnce sync.Once
	wg        sync.WaitGroup
	done      chan struct{} // closed when every worker has exited

	shed      atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
}

// NewQueue starts a pool of workers draining a task buffer of the given
// depth. workers and depth are floored at 1.
func NewQueue(workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &Queue{
		tasks: make(chan func(), depth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	go func() {
		q.wg.Wait()
		close(q.done)
	}()
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		select {
		case fn := <-q.tasks:
			q.run(fn)
		case <-q.quit:
			// Drain the admitted backlog, then exit.
			for {
				select {
				case fn := <-q.tasks:
					q.run(fn)
				default:
					return
				}
			}
		}
	}
}

// run executes one task under panic isolation: a panicking task must
// not kill its worker (the pool would silently shrink).
func (q *Queue) run(fn func()) {
	defer q.completed.Add(1)
	defer CatchPanic("resilience.queue task", nil, nil)()
	fn()
}

// TrySubmit enqueues fn without blocking. It returns ErrOverloaded when
// the buffer is full (counted in "resilience.queue.shed") and
// ErrQueueClosed after Close.
func (q *Queue) TrySubmit(fn func()) error {
	select {
	case <-q.quit:
		return ErrQueueClosed
	default:
	}
	select {
	case q.tasks <- fn:
		q.submitted.Add(1)
		return nil
	default:
		q.shed.Add(1)
		metQueueShed.Inc()
		return ErrOverloaded
	}
}

// Submit enqueues fn, blocking until buffer space frees up, the context
// ends, or the queue closes. Use for callers that prefer backpressure
// over shedding (e.g. an internal fan-out that must not drop work).
func (q *Queue) Submit(ctx context.Context, fn func()) error {
	select {
	case <-q.quit:
		return ErrQueueClosed
	default:
	}
	select {
	case q.tasks <- fn:
		q.submitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-q.quit:
		return ErrQueueClosed
	}
}

// Close stops admission, lets the workers drain the admitted backlog,
// and waits for them up to the context deadline. On expiry it returns
// ctx.Err(); the workers keep draining in the background.
func (q *Queue) Close(ctx context.Context) error {
	q.closeOnce.Do(func() { close(q.quit) })
	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shed returns how many submissions were rejected with ErrOverloaded.
func (q *Queue) Shed() int64 { return q.shed.Load() }

// Completed returns how many admitted tasks have finished.
func (q *Queue) Completed() int64 { return q.completed.Load() }

// Submitted returns how many tasks were admitted.
func (q *Queue) Submitted() int64 { return q.submitted.Load() }
