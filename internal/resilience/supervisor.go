package resilience

import (
	"context"
	"sync/atomic"
	"time"
)

// Supervisor runs a long-lived function under panic isolation,
// restarting it with exponential backoff when it panics or returns an
// error. A serving loop wrapped in a supervisor survives a poisoned
// input: the broken iteration is logged and counted, the loop restarts
// after a backoff, and the process keeps serving.
//
// Restarts are counted in "resilience.supervisor.restarts" and
// recovered panics in "resilience.supervisor.panics".
type Supervisor struct {
	// Name identifies the supervised loop in logs.
	Name string
	// Backoff is the first restart delay (default 10 ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling delay (default 2 s).
	MaxBackoff time.Duration
	// MaxRestarts stops supervision after this many restarts
	// (0 = unlimited); Run then returns the last failure.
	MaxRestarts int
	// Logf, if set, receives restart and panic reports.
	Logf func(format string, args ...any)

	restarts atomic.Int64
}

// Restarts returns how many times the supervised function has been
// restarted.
func (s *Supervisor) Restarts() int64 { return s.restarts.Load() }

// Run executes fn until it returns nil (done), the context ends, or the
// restart budget is exhausted. A panic inside fn is recovered and
// treated as a failure. The backoff doubles per consecutive failure and
// resets after a run that survived 10× the current backoff.
func (s *Supervisor) Run(ctx context.Context, fn func(ctx context.Context) error) error {
	base := s.Backoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxB := s.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	backoff := base
	var last error
	for {
		started := time.Now()
		err := s.runOnce(ctx, fn)
		if err == nil {
			return nil
		}
		last = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(started) > 10*backoff {
			backoff = base // the run was healthy for a while; forgive
		}
		n := s.restarts.Add(1)
		metSupervisorRestart.Inc()
		if s.Logf != nil {
			s.Logf("resilience: %s failed (%v), restart %d in %v", s.Name, err, n, backoff)
		}
		if s.MaxRestarts > 0 && n >= int64(s.MaxRestarts) {
			return last
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > maxB {
			backoff = maxB
		}
	}
}

// runOnce invokes fn, converting a panic into an error.
func (s *Supervisor) runOnce(ctx context.Context, fn func(ctx context.Context) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			metSupervisorPanics.Inc()
			if s.Logf != nil {
				s.Logf("resilience: recovered panic in %s: %v", s.Name, v)
			}
			err = &PanicError{Name: s.Name, Value: v}
		}
	}()
	return fn(ctx)
}

// PanicError wraps a recovered panic value as an error.
type PanicError struct {
	Name  string
	Value any
}

func (e *PanicError) Error() string {
	return "resilience: panic in " + e.Name
}
