package baseline

import (
	"errors"
	"math"
	"testing"

	"locble/internal/rf"
	"locble/internal/rng"
)

func TestRangerInvertsCleanModel(t *testing.T) {
	r := NewRanger(-59)
	// Feed the exact model RSS for 3 m with n = 2 (the baseline's own
	// assumption): the estimate must converge to 3 m.
	rss := -59 - 20*math.Log10(3)
	var d float64
	for i := 0; i < 100; i++ {
		d = r.Push(rss)
	}
	if math.Abs(d-3) > 0.01 {
		t.Errorf("distance = %g, want 3", d)
	}
}

func TestRangerBiasedByWrongExponent(t *testing.T) {
	// Real channel exponent 3 but the baseline assumes 2: it must
	// *overestimate* the distance (this mis-modeling is exactly what
	// LocBLE's adaptive estimation removes).
	r := NewRanger(-59)
	trueDist := 5.0
	rss := -59 - 30*math.Log10(trueDist)
	var d float64
	for i := 0; i < 100; i++ {
		d = r.Push(rss)
	}
	if d <= trueDist*1.5 {
		t.Errorf("constant-exponent baseline should overestimate: got %g for true %g", d, trueDist)
	}
}

func TestRangerSmoothing(t *testing.T) {
	src := rng.New(1)
	r := NewRanger(-59)
	rss := -59 - 20*math.Log10(4)
	var ds []float64
	for i := 0; i < 300; i++ {
		ds = append(ds, r.Push(rss+src.Normal(0, 4)))
	}
	// Late estimates should hover near 4 m despite 4 dB noise.
	var late float64
	for _, d := range ds[200:] {
		late += d
	}
	late /= 100
	if late < 2 || late > 7 {
		t.Errorf("smoothed distance = %g, want ≈4", late)
	}
	if !math.IsNaN(NewRanger(-59).Distance()) {
		t.Error("unprimed ranger should report NaN")
	}
}

func TestEstimateRange(t *testing.T) {
	rssSeq := make([]float64, 50)
	for i := range rssSeq {
		rssSeq[i] = -59 - 20*math.Log10(2)
	}
	d, err := EstimateRange(rssSeq, -59)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 0.01 {
		t.Errorf("EstimateRange = %g", d)
	}
	if _, err := EstimateRange(nil, -59); !errors.Is(err, ErrNoData) {
		t.Error("want ErrNoData")
	}
}

func TestZones(t *testing.T) {
	cases := []struct {
		d    float64
		want Zone
	}{
		{0.2, ZoneImmediate},
		{0.5, ZoneNear},
		{3.9, ZoneNear},
		{4.0, ZoneFar},
		{12, ZoneFar},
		{math.NaN(), ZoneUnknown},
		{-1, ZoneUnknown},
	}
	for _, c := range cases {
		if got := ZoneOf(c.d); got != c.want {
			t.Errorf("ZoneOf(%g) = %v, want %v", c.d, got, c.want)
		}
	}
	if ZoneImmediate.String() != "immediate" || ZoneUnknown.String() != "unknown" {
		t.Error("zone names")
	}
}

func TestRangingError(t *testing.T) {
	rssSeq := make([]float64, 30)
	for i := range rssSeq {
		rssSeq[i] = -59 - 20*math.Log10(6)
	}
	e, err := RangingError(rssSeq, -59, 6)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.05 {
		t.Errorf("clean-model ranging error = %g", e)
	}
	if _, err := RangingError(nil, -59, 6); err == nil {
		t.Error("want error for empty data")
	}
}

func TestRangerAgainstSimChannel(t *testing.T) {
	// End-to-end vs the rf substrate: in LOS at 4 m the ranging estimate
	// should land within a couple of metres.
	src := rng.New(2)
	ch := rf.NewChannel(rf.LOS, rf.EstimoteBeacon, rf.IPhone6s, src)
	r := NewRanger(rf.EstimoteBeacon.TxPowerDBm)
	var d float64
	for i := 0; i < 200; i++ {
		d = r.Push(ch.Sample(4, ch.NextChannel(), 0.05))
	}
	if d < 1.5 || d > 8 {
		t.Errorf("LOS ranging at 4 m = %g m", d)
	}
}
