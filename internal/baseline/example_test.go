package baseline_test

import (
	"fmt"

	"locble/internal/baseline"
)

// The 4-zone proximity classification of stock iBeacon APIs — the coarse
// granularity the paper improves on.
func ExampleZoneOf() {
	for _, d := range []float64{0.3, 2.0, 9.0} {
		fmt.Println(baseline.ZoneOf(d))
	}
	// Output:
	// immediate
	// near
	// far
}
