// Package baseline implements the comparison systems the paper evaluates
// LocBLE against: a Dartle-style 1-D ranging estimator (log-distance model
// with constant calibrated parameters, as commodity ranging apps use) and
// the standard 4-zone iBeacon proximity classifier (immediate / near /
// far / unknown — the coarse-grained output the paper's introduction
// criticizes).
package baseline

import (
	"errors"
	"math"

	"locble/internal/rf"
)

// ErrNoData is returned when a baseline is asked to estimate from nothing.
var ErrNoData = errors.New("baseline: no RSS data")

// Ranger is a Dartle-like ranging estimator: it smooths RSS with an EWMA
// and inverts the log-distance model with *fixed* parameters — exactly the
// constant-parameter assumption LocBLE's adaptive estimation replaces.
type Ranger struct {
	// MeasuredPower is the calibrated RSS at 1 m (from the beacon
	// payload; iBeacon "measured power").
	MeasuredPower float64
	// PathLossExponent is the fixed exponent (commodity apps use ~2.0
	// indoors regardless of the environment).
	PathLossExponent float64
	// Smoothing is the EWMA coefficient on new samples (0 < s ≤ 1).
	Smoothing float64

	ewma   float64
	primed bool
}

// NewRanger returns a ranging baseline with typical commodity settings.
func NewRanger(measuredPower float64) *Ranger {
	return &Ranger{MeasuredPower: measuredPower, PathLossExponent: 2.0, Smoothing: 0.15}
}

// Push folds one RSS sample in and returns the current distance estimate.
func (r *Ranger) Push(rss float64) float64 {
	if !r.primed {
		r.ewma = rss
		r.primed = true
	} else {
		r.ewma = (1-r.Smoothing)*r.ewma + r.Smoothing*rss
	}
	return r.Distance()
}

// Distance returns the current range estimate in metres.
func (r *Ranger) Distance() float64 {
	if !r.primed {
		return math.NaN()
	}
	return rf.PathLossDistance(r.ewma, r.MeasuredPower, r.PathLossExponent)
}

// EstimateRange runs the ranger over a whole series and returns the final
// distance estimate.
func EstimateRange(rss []float64, measuredPower float64) (float64, error) {
	if len(rss) == 0 {
		return 0, ErrNoData
	}
	r := NewRanger(measuredPower)
	for _, v := range rss {
		r.Push(v)
	}
	return r.Distance(), nil
}

// Zone is the 4-level iBeacon proximity class (the "1-dimensional, four
// proximity zones" granularity of existing apps, paper footnote 1).
type Zone int

// Proximity zones.
const (
	ZoneUnknown Zone = iota
	ZoneImmediate
	ZoneNear
	ZoneFar
)

// String names the zone.
func (z Zone) String() string {
	switch z {
	case ZoneImmediate:
		return "immediate"
	case ZoneNear:
		return "near"
	case ZoneFar:
		return "far"
	default:
		return "unknown"
	}
}

// ZoneOf maps a distance estimate to the conventional iBeacon zones:
// immediate <0.5 m, near <4 m, far ≥4 m, unknown for no estimate.
func ZoneOf(distance float64) Zone {
	switch {
	case math.IsNaN(distance) || distance < 0:
		return ZoneUnknown
	case distance < 0.5:
		return ZoneImmediate
	case distance < 4:
		return ZoneNear
	default:
		return ZoneFar
	}
}

// RangingError is the 1-D comparison metric of Fig. 11(a): since ranging
// baselines cannot produce a 2-D position, the paper compares LocBLE's
// absolute-distance error with the baseline's range error.
func RangingError(rss []float64, measuredPower, trueDist float64) (float64, error) {
	d, err := EstimateRange(rss, measuredPower)
	if err != nil {
		return 0, err
	}
	return math.Abs(d - trueDist), nil
}
