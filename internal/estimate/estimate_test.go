package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"locble/internal/rng"
)

// synthObs generates observations for a stationary target at (x, h) while
// the observer walks the given waypoints, under the exact log-distance
// model with optional Gaussian noise.
func synthObs(x, h, gamma, n float64, path [][2]float64, noise float64, src *rng.Source) []Obs {
	obs := make([]Obs, 0, len(path))
	for i, p := range path {
		// Stationary target: relative displacement = −observer movement.
		px, qx := -p[0], -p[1]
		l := math.Hypot(x+px, h+qx)
		rss := gamma - 10*n*math.Log10(l)
		if noise > 0 {
			rss += src.Normal(0, noise)
		}
		obs = append(obs, Obs{T: float64(i) * 0.1, RSS: rss, P: px, Q: qx})
	}
	return obs
}

// lPath builds an L-shaped observer path: legA m along +x, then legB m
// along +y, with the given step.
func lPath(legA, legB, step float64) [][2]float64 {
	var path [][2]float64
	for d := 0.0; d <= legA; d += step {
		path = append(path, [2]float64{d, 0})
	}
	for d := step; d <= legB; d += step {
		path = append(path, [2]float64{legA, d})
	}
	return path
}

func TestPlanarExactRecovery(t *testing.T) {
	// Noise-free L-shaped movement must recover the target, exponent and
	// gamma almost exactly. The target sits off the walking path (the
	// model is singular at l = 0).
	x, h := 5.5, 2.0
	gamma, n := -59.0, 2.2
	obs := synthObs(x, h, gamma, n, lPath(4, 4, 0.25), 0, nil)
	est, err := Run(obs, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if est.Ambiguous {
		t.Fatalf("L-shaped movement should not be ambiguous")
	}
	if math.Abs(est.X-x) > 0.15 || math.Abs(est.H-h) > 0.15 {
		t.Errorf("position = (%.3f, %.3f), want (%.1f, %.1f)", est.X, est.H, x, h)
	}
	if math.Abs(est.N-n) > 0.1 {
		t.Errorf("n = %.3f, want %.1f", est.N, n)
	}
	if math.Abs(est.Gamma-gamma) > 1.5 {
		t.Errorf("gamma = %.2f, want %.1f", est.Gamma, gamma)
	}
	if est.Confidence < 0.9 {
		t.Errorf("confidence = %.3f for a perfect fit, want ≈1", est.Confidence)
	}
	if est.ResidualDB > 0.05 {
		t.Errorf("residual = %.4f dB for noise-free data", est.ResidualDB)
	}
}

func TestCollinearAmbiguity(t *testing.T) {
	// A straight walk along +x cannot identify the sign of h: the
	// estimator must return two mirror candidates at ±h.
	x, h := 3.0, 2.5
	var path [][2]float64
	for d := 0.0; d <= 5; d += 0.2 {
		path = append(path, [2]float64{d, 0})
	}
	obs := synthObs(x, h, -60, 2.0, path, 0, nil)
	est, err := Run(obs, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !est.Ambiguous || len(est.Candidates) != 2 {
		t.Fatalf("want 2 ambiguous candidates, got %+v", est)
	}
	c0, c1 := est.Candidates[0], est.Candidates[1]
	if math.Abs(c0.X-c1.X) > 0.1 {
		t.Errorf("mirror candidates should share x: %.3f vs %.3f", c0.X, c1.X)
	}
	if math.Abs(c0.H+c1.H) > 0.1 {
		t.Errorf("mirror candidates should be at ±h: %.3f vs %.3f", c0.H, c1.H)
	}
	// One of them must be the true position.
	d0 := c0.Dist(Candidate{X: x, H: h})
	d1 := c1.Dist(Candidate{X: x, H: h})
	if math.Min(d0, d1) > 0.3 {
		t.Errorf("neither candidate near the truth: d0=%.2f d1=%.2f", d0, d1)
	}
}

func TestLShapeDisambiguation(t *testing.T) {
	x, h := 4.5, 2.0
	src := rng.New(42)
	path := lPath(4, 4, 0.2)
	obs := synthObs(x, h, -59, 2.3, path, 0.8, src)
	// The turn happens when the path switches legs; find that time.
	splitIdx := 0
	for i, p := range path {
		if p[1] > 0 {
			splitIdx = i
			break
		}
	}
	splitT := obs[splitIdx].T
	res, err := RunLShape(obs, splitT, DefaultConfig())
	if err != nil {
		t.Fatalf("RunLShape: %v", err)
	}
	got := Candidate{X: res.Final.X, H: res.Final.H}
	if d := got.Dist(Candidate{X: x, H: h}); d > 1.0 {
		t.Errorf("L-shape estimate off by %.2f m: got (%.2f, %.2f) want (%.1f, %.1f)", d, got.X, got.H, x, h)
	}
	// Disambiguation must have picked the +h side, not the mirror.
	if res.Final.H < 0 {
		t.Errorf("picked the mirror solution: h = %.2f", res.Final.H)
	}
}

func TestNoisyRecoveryWithinMeters(t *testing.T) {
	// With realistic RSS noise (σ = 2.5 dB) the estimate should stay
	// within a couple of metres, matching the paper's accuracy band.
	src := rng.New(7)
	x, h := 5.0, 3.0
	obs := synthObs(x, h, -60, 2.5, lPath(5, 4, 0.15), 2.5, src)
	est, err := Run(obs, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d := math.Hypot(est.X-x, est.H-h)
	if d > 2.5 {
		t.Errorf("noisy estimate off by %.2f m (>2.5): (%.2f, %.2f)", d, est.X, est.H)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(nil, cfg); err == nil {
		t.Error("want error for empty observations")
	}
	// Too little movement.
	var obs []Obs
	for i := 0; i < 20; i++ {
		obs = append(obs, Obs{T: float64(i), RSS: -70, P: 0.001 * float64(i), Q: 0})
	}
	if _, err := Run(obs, cfg); err == nil {
		t.Error("want ErrInsufficientMotion for a static observer")
	}
}

func TestMovementPCA(t *testing.T) {
	// Pure x movement: major axis along x, minor ≈ 0.
	var obs []Obs
	for i := 0; i < 50; i++ {
		obs = append(obs, Obs{P: float64(i) * 0.1, Q: 0})
	}
	major, minor, dir := movementPCA(obs)
	if minor > 1e-9 {
		t.Errorf("minor = %g, want 0", minor)
	}
	if major < 1.0 {
		t.Errorf("major = %g, want > 1", major)
	}
	if math.Abs(math.Abs(dir[0])-1) > 1e-9 {
		t.Errorf("dir = %v, want ±x", dir)
	}
}

func TestEstimateConfidenceDropsWithModelMismatch(t *testing.T) {
	// Fit data generated from one environment, then evaluate residual
	// bias by mixing two environments in one trace: confidence should be
	// lower than for the clean trace.
	src := rng.New(3)
	clean := synthObs(4, 3, -59, 2.0, lPath(4, 4, 0.2), 0.5, src)
	estClean, err := Run(clean, DefaultConfig())
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	mixed := synthObs(4, 3, -59, 2.0, lPath(4, 4, 0.2), 0.5, src)
	// Second half from a very different channel (NLOS: extra 12 dB loss).
	for i := len(mixed) / 2; i < len(mixed); i++ {
		mixed[i].RSS -= 12
	}
	estMixed, err := Run(mixed, DefaultConfig())
	if err != nil {
		t.Fatalf("mixed: %v", err)
	}
	if estMixed.ResidualDB <= estClean.ResidualDB {
		t.Errorf("mixed-environment residual %.2f should exceed clean %.2f",
			estMixed.ResidualDB, estClean.ResidualDB)
	}
}

func TestRun3DExactRecovery(t *testing.T) {
	x, h, z := 3.0, 2.0, 1.2
	gamma, n := -59.0, 2.0
	var obs []Obs3D
	i := 0
	add := func(px, py, pz float64) {
		// Stationary target: relative displacement = −observer movement.
		p, q, r := -px, -py, -pz
		l := math.Sqrt((x+p)*(x+p) + (h+q)*(h+q) + (z+r)*(z+r))
		obs = append(obs, Obs3D{T: float64(i), RSS: gamma - 10*n*math.Log10(l), P: p, Q: q, R: r})
		i++
	}
	for d := 0.0; d <= 3; d += 0.25 {
		add(d, 0, 0)
	}
	for d := 0.25; d <= 3; d += 0.25 {
		add(3, d, 0)
	}
	for d := 0.1; d <= 0.8; d += 0.1 {
		add(3, 3, d)
	}
	est, err := Run3D(obs, DefaultConfig())
	if err != nil {
		t.Fatalf("Run3D: %v", err)
	}
	if math.Abs(est.X-x) > 0.3 || math.Abs(est.H-h) > 0.3 || math.Abs(est.Z-z) > 0.5 {
		t.Errorf("3-D estimate (%.2f, %.2f, %.2f), want (%.1f, %.1f, %.1f)",
			est.X, est.H, est.Z, x, h, z)
	}
}

// distToSegment returns the distance from point (px,py) to the segment
// (ax,ay)–(bx,by).
func distToSegment(px, py, ax, ay, bx, by float64) float64 {
	vx, vy := bx-ax, by-ay
	wx, wy := px-ax, py-ay
	c1 := vx*wx + vy*wy
	c2 := vx*vx + vy*vy
	t := 0.0
	if c2 > 0 {
		t = math.Max(0, math.Min(1, c1/c2))
	}
	return math.Hypot(px-(ax+t*vx), py-(ay+t*vy))
}

func TestCandidateDist(t *testing.T) {
	a := Candidate{X: 0, H: 0}
	b := Candidate{X: 3, H: 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", d)
	}
}

// Property: for any target position and exponent, a noise-free L-shape
// regression recovers the position to within centimetres.
func TestPropertyExactRecoveryQuick(t *testing.T) {
	f := func(xq, hq, nq uint8) bool {
		x := 1.0 + float64(xq%80)/10 // 1.0 … 8.9 m
		h := 1.0 + float64(hq%80)/10
		n := 1.5 + float64(nq%25)/10 // 1.5 … 3.9
		// Skip targets closer than 0.5 m to the L path (0,0)→(4,0)→(4,4):
		// the log-distance model is singular at l = 0.
		distToPath := math.Min(distToSegment(x, h, 0, 0, 4, 0), distToSegment(x, h, 4, 0, 4, 4))
		if distToPath < 0.5 {
			return true
		}
		obs := synthObs(x, h, -60, n, lPath(4, 4, 0.25), 0, nil)
		est, err := Run(obs, DefaultConfig())
		if err != nil {
			return false
		}
		return math.Hypot(est.X-x, est.H-h) < 0.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the estimate is invariant to a constant RSS offset within the
// physically plausible Γ band (device offsets fold into Γ, not position;
// offsets pushing Γ outside the band are intentionally penalized by the
// plausibility prior).
func TestPropertyOffsetInvariance(t *testing.T) {
	f := func(offQ uint8) bool {
		off := float64(offQ%20) - 10 // −10 … +9 dB
		base := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.25), 0, nil)
		shifted := make([]Obs, len(base))
		copy(shifted, base)
		for i := range shifted {
			shifted[i].RSS += off
		}
		e1, err1 := Run(base, DefaultConfig())
		e2, err2 := Run(shifted, DefaultConfig())
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Hypot(e1.X-e2.X, e1.H-e2.H) < 0.2 &&
			math.Abs((e2.Gamma-e1.Gamma)-off) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRangeAccessors(t *testing.T) {
	e := Estimate{X: 3, H: 4}
	if e.Range() != 5 {
		t.Errorf("Range = %g", e.Range())
	}
	e3 := Estimate3D{X: 1, H: 2, Z: 2}
	if e3.Range() != 3 {
		t.Errorf("3D Range = %g", e3.Range())
	}
}
