package estimate

import (
	"errors"
	"math"
)

// ErrNoOverlap is returned when the per-leg result sets share no
// consistent candidate.
var ErrNoOverlap = errors.New("estimate: leg result sets do not overlap")

// LShapeResult carries the disambiguated estimate plus the per-leg
// intermediate results for diagnostics.
type LShapeResult struct {
	// Final is the resolved estimate.
	Final *Estimate
	// LegA, LegB are the per-leg (ambiguous) estimates.
	LegA, LegB *Estimate
	// Overlap is the distance between the two matched candidates; small
	// values mean a clean disambiguation.
	Overlap float64
}

// RunLShape implements the paper's L-shaped measurement (Sec. 5.1): the
// observations are split at splitT (the time of the turn between the two
// legs); each straight leg is regressed separately, producing two mirror
// candidates each; the candidate pair with the smallest mutual distance
// identifies the true side; and a final regression over the full
// (2-D-spread) data refines the position, with the matched candidates
// selecting between mirror solutions if the full fit is itself ambiguous.
func (s *Solver) RunLShape(obs []Obs, splitT float64, cfg Config) (*LShapeResult, error) {
	metLShapeRuns.Inc()
	legA, legB := s.legA[:0], s.legB[:0]
	for _, o := range obs {
		if o.T < splitT {
			legA = append(legA, o)
		} else {
			legB = append(legB, o)
		}
	}
	s.legA, s.legB = legA, legB
	estA, errA := s.Run(legA, cfg)
	estB, errB := s.Run(legB, cfg)

	// Full-data fit: the combined movement spans two directions, so the
	// planar regression is usually well conditioned and unambiguous.
	full, errFull := s.Run(obs, cfg)

	res := &LShapeResult{LegA: estA, LegB: estB}

	switch {
	case errA == nil && errB == nil:
		metLShapeResolved.Inc()
		ca, cb, d := closestPair(estA.Candidates, estB.Candidates)
		res.Overlap = d
		resolved := Candidate{X: (ca.X + cb.X) / 2, H: (cb.H + ca.H) / 2}
		if errFull == nil {
			// Keep the full fit if it lands near the resolved candidate;
			// among mirror candidates of the full fit pick the closest.
			pick := nearestCandidate(full.Candidates, resolved)
			chosen := *full
			chosen.X, chosen.H = pick.X, pick.H
			res.Final = &chosen
			return res, nil
		}
		// Fall back to the intersection alone, confidence-weighted.
		wa, wb := math.Max(estA.Confidence, 1e-6), math.Max(estB.Confidence, 1e-6)
		fin := *estA
		fin.X = (ca.X*wa + cb.X*wb) / (wa + wb)
		fin.H = (ca.H*wa + cb.H*wb) / (wa + wb)
		fin.Ambiguous = false
		fin.Candidates = []Candidate{{X: fin.X, H: fin.H}}
		fin.Confidence = (estA.Confidence + estB.Confidence) / 2
		res.Final = &fin
		return res, nil

	case errFull == nil:
		// Legs too short individually; the combined fit still works.
		metLShapeFallback.Inc()
		res.Final = full
		return res, nil

	case errA == nil:
		metLShapeFallback.Inc()
		res.Final = estA
		return res, nil
	case errB == nil:
		metLShapeFallback.Inc()
		res.Final = estB
		return res, nil
	default:
		metLShapeFailed.Inc()
		return nil, errFull
	}
}

// closestPair finds the candidate pair (one from each set) with minimal
// distance.
func closestPair(as, bs []Candidate) (Candidate, Candidate, float64) {
	best := math.Inf(1)
	var ba, bb Candidate
	for _, a := range as {
		for _, b := range bs {
			if d := a.Dist(b); d < best {
				best, ba, bb = d, a, b
			}
		}
	}
	return ba, bb, best
}

// nearestCandidate picks the candidate closest to ref.
func nearestCandidate(cands []Candidate, ref Candidate) Candidate {
	best := cands[0]
	bd := best.Dist(ref)
	for _, c := range cands[1:] {
		if d := c.Dist(ref); d < bd {
			best, bd = c, d
		}
	}
	return best
}
