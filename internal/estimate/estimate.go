// Package estimate implements LocBLE's location estimator (paper Sec. 5):
// a regression that fuses relative movement (from the motion tracker)
// with RSS readings under the modified log-distance model
//
//	RSᵢ = Γ(e) − 10·n(e)·log10(lᵢ),   lᵢ² = (x+pᵢ)² + (h+qᵢ)²
//
// where (pᵢ, qᵢ) = (bᵢ−aᵢ, dᵢ−cᵢ) is the target-minus-observer relative
// displacement at sample i and (x, h) is the target's initial position in
// the observer's coordinate frame.
//
// The paper linearizes the model with ϵ = 10^(Γ/(5n)), η = 10^(−1/(5n)):
//
//	A·(p²+q²) + C·p + D·q + G = ρ,   ρᵢ = η^{RSᵢ},
//
// with A = 1/ϵ, C = 2x/ϵ, D = 2h/ϵ, G = (x²+h²)/ϵ (Eqs. 2–4), solved by
// least squares, with the fading coefficient n(e) found numerically
// (Eq. 5). The linearized form works on well-filtered data but is fragile
// under realistic RSS noise — the multiplicative ρ-domain noise lets the
// quadratic coefficient A go negative. This implementation therefore uses
// the elliptical least-squares fit as the *initializer* and refines the
// position with a dB-domain solver: for any fixed position, (n, Γ) have a
// closed form (linear regression of RSS on log-distance — the same
// quantity Eq. 5 minimizes), so only a 2-D Nelder–Mead search over
// position is needed. Straight-line movement leaves the cross-track
// coordinate sign-ambiguous; the L-shaped movement resolves the ambiguity
// by intersecting the per-leg result sets (Sec. 5.1).
package estimate

import (
	"errors"
	"fmt"
	"math"

	"locble/internal/mathx"
)

// Estimation errors.
var (
	ErrTooFewSamples      = errors.New("estimate: too few samples")
	ErrInsufficientMotion = errors.New("estimate: observer movement too small to estimate")
	ErrNoSolution         = errors.New("estimate: regression produced no physical solution")
	// ErrCanceled is returned when Config.Cancel reported cancellation
	// mid-search (e.g. the caller's context ended); the partial result
	// is discarded.
	ErrCanceled = errors.New("estimate: canceled")
)

// Obs is one fused observation: a (filtered) RSS reading matched to the
// relative displacement at the same timestamp.
type Obs struct {
	T   float64 // seconds
	RSS float64 // dBm, after ANF filtering
	P   float64 // relative x displacement pᵢ = bᵢ − aᵢ (metres)
	Q   float64 // relative y displacement qᵢ = dᵢ − cᵢ (metres)
}

// Candidate is one possible target position.
type Candidate struct {
	X, H float64
}

// Dist returns the Euclidean distance between candidates.
func (c Candidate) Dist(o Candidate) float64 { return math.Hypot(c.X-o.X, c.H-o.H) }

// Estimate is the output of the regression.
type Estimate struct {
	// X, H is the best target position estimate in the observer frame.
	X, H float64
	// Candidates holds 1 solution for well-conditioned 2-D movement, or
	// the 2 symmetric solutions for (near-)collinear movement.
	Candidates []Candidate
	// N is the estimated path-loss (fading) coefficient n(e).
	N float64
	// Gamma is the estimated power offset Γ(e) in dBm.
	Gamma float64
	// ResidualDB is the RMS residual of the fit in dB.
	ResidualDB float64
	// Confidence is the paper's estimation confidence: the two-sided
	// Gaussian tail probability of the residual mean (≈1 for an unbiased
	// fit, →0 for a biased one).
	Confidence float64
	// Ambiguous reports whether the movement was collinear, so Candidates
	// contains two mirror solutions.
	Ambiguous bool
	// Samples is the number of observations used.
	Samples int
	// Downweighted is the number of observations the robust loss pushed
	// below the down-weight threshold at the final fit (0 under
	// LossSquared) — a direct census of how much hostile data the IRLS
	// layer had to suppress.
	Downweighted int
}

// Range returns the estimated distance from the observer's origin.
func (e *Estimate) Range() float64 { return math.Hypot(e.X, e.H) }

// Config tunes the estimator.
type Config struct {
	// NMin, NMax bound the fading coefficient (physical indoor exponents
	// are ~1.5–4.5).
	NMin, NMax float64
	// NGridStep is the exponent grid used for the elliptical-LS
	// initializer.
	NGridStep float64
	// CollinearRatio: movement is considered collinear when the minor
	// principal axis of the (p,q) cloud is below this fraction of the
	// major axis.
	CollinearRatio float64
	// MinSpread is the minimum movement extent (metres) along the major
	// axis required for regression.
	MinSpread float64
	// MinSamples is the minimum number of observations.
	MinSamples int
	// MaxRange rejects solutions farther than this from the observer
	// (BLE is dead beyond ~15–20 m; unconstrained fits can run away).
	MaxRange float64
	// Soft physical-plausibility prior: the RSS-vs-distance trade-off is
	// shallow (a farther target with a larger exponent fits noisy data
	// almost as well — the classic range/exponent ambiguity), so the
	// position search penalizes fits whose implied exponent or power
	// offset leaves the physically plausible band. Zero values select
	// the defaults.
	NSoftMin, NSoftMax         float64 // plausible exponent band (1.7–4.2)
	GammaSoftMin, GammaSoftMax float64 // plausible Γ band (−82…−48 dBm)
	PenaltyWeight              float64 // prior strength (dB² per sample)
	// Loss selects the regression loss of the position search. The zero
	// value (LossSquared) keeps the historical squared-loss behaviour
	// bit-identical; LossHuber/LossTukey run the inner fit as IRLS with
	// MAD-scaled per-observation weights, so outlier RSS samples are
	// down-weighted instead of dragging the fix.
	Loss Loss
	// HuberDelta / TukeyC are the robust tuning constants in σ units
	// (zero selects 1.345 / 4.685, the 95%-Gaussian-efficiency values).
	HuberDelta float64
	TukeyC     float64
	// IRLSIterations is the number of reweighting passes per inner fit
	// (zero selects 3; the weighted closed form converges fast).
	IRLSIterations int
	// Cancel, if non-nil, is polled between refinement seeds and inside
	// the Nelder–Mead iterations; once it reports true the search stops
	// and the run returns ErrCanceled. Wire a context in with
	// func() bool { return ctx.Err() != nil }.
	Cancel func() bool `json:"-"`
}

// canceled reports whether the caller asked the search to stop.
func (c Config) canceled() bool { return c.Cancel != nil && c.Cancel() }

// DefaultConfig returns the estimator settings used by the pipeline.
func DefaultConfig() Config {
	return Config{
		NMin:           1.3,
		NMax:           5.0,
		NGridStep:      0.5,
		CollinearRatio: 0.18,
		MinSpread:      1.0,
		MinSamples:     8,
		MaxRange:       25,
		NSoftMin:       1.4,
		NSoftMax:       4.2,
		GammaSoftMin:   -82,
		GammaSoftMax:   -48,
		PenaltyWeight:  4.0,
	}
}

// softDefaults fills zero prior fields.
func (c *Config) softDefaults() {
	if c.NSoftMin == 0 && c.NSoftMax == 0 {
		c.NSoftMin, c.NSoftMax = 1.4, 4.2
	}
	if c.GammaSoftMin == 0 && c.GammaSoftMax == 0 {
		c.GammaSoftMin, c.GammaSoftMax = -82, -48
	}
	if c.PenaltyWeight == 0 {
		c.PenaltyWeight = 4.0
	}
}

// penalizedScoreAt is the position-search objective at candidate
// position (x, h): dB-domain residual loss (squared or robust, per
// cfg.Loss) plus the soft plausibility prior on the implied (n, Γ).
func (s *Solver) penalizedScoreAt(obs []Obs, cfg *Config, x, h float64) float64 {
	n, gamma, ss, _ := s.fitAt(obs, cfg, x, h)
	penN := math.Max(0, n-cfg.NSoftMax) + math.Max(0, cfg.NSoftMin-n)
	penG := math.Max(0, gamma-cfg.GammaSoftMax) + math.Max(0, cfg.GammaSoftMin-gamma)
	return ss + cfg.PenaltyWeight*float64(len(obs))*(penN*penN*4+penG*penG*0.25)
}

func (s *Solver) runSegmented(obs []Obs, segStarts []int, cfg Config) (*Estimate, error) {
	if cfg.MinSamples < 5 {
		cfg.MinSamples = 5
	}
	if cfg.MaxRange <= 0 {
		cfg.MaxRange = 25
	}
	if len(obs) < cfg.MinSamples {
		return nil, fmt.Errorf("%w: %d < %d", ErrTooFewSamples, len(obs), cfg.MinSamples)
	}
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	cfg.softDefaults()
	segs := normalizeSegments(len(obs), segStarts)
	major, minor, dir := movementPCA(obs)
	if major < cfg.MinSpread {
		return nil, fmt.Errorf("%w: spread %.2f m < %.2f m", ErrInsufficientMotion, major, cfg.MinSpread)
	}
	if minor < cfg.CollinearRatio*major {
		return s.runCollinear(obs, segs, cfg, dir)
	}
	return s.runPlanar(obs, segs, cfg)
}

// normalizeSegments converts segment start indexes into [lo, hi) pairs,
// merging segments shorter than the minimum needed to fit (Γ, n).
func normalizeSegments(n int, segStarts []int) [][2]int {
	const minSeg = 8
	starts := []int{0}
	for _, s := range segStarts {
		if s > starts[len(starts)-1] && s < n {
			starts = append(starts, s)
		}
	}
	var segs [][2]int
	for i, lo := range starts {
		hi := n
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		if hi-lo < minSeg && len(segs) > 0 {
			segs[len(segs)-1][1] = hi // merge into predecessor
			continue
		}
		segs = append(segs, [2]int{lo, hi})
	}
	if len(segs) == 0 {
		segs = [][2]int{{0, n}}
	}
	// A leading short segment may remain; merge forward.
	if segs[0][1]-segs[0][0] < minSeg && len(segs) > 1 {
		segs[1][0] = segs[0][0]
		segs = segs[1:]
	}
	return segs
}

// scoreAt sums the per-segment penalized inner-fit scores for a
// candidate position (x, h).
func (s *Solver) scoreAt(obs []Obs, segs [][2]int, cfg *Config, x, h float64) float64 {
	total := 0.0
	for _, sg := range segs {
		total += s.penalizedScoreAt(obs[sg[0]:sg[1]], cfg, x, h)
	}
	return total
}

// runPlanar handles well-spread 2-D movement: elliptical-LS and ring
// initializers, then Nelder–Mead refinement of the position in the dB
// domain.
func (s *Solver) runPlanar(obs []Obs, segs [][2]int, cfg Config) (*Estimate, error) {
	// All elliptical seeds are refined: the objective's global basin
	// around the true position is narrow (a distant position with an
	// inflated exponent often *scores* better than a near-miss), so seed
	// score alone cannot rank basins — every linearized-fit hypothesis
	// gets a local search.
	seeds := s.seeds[:0]
	for n := cfg.NMin; n <= cfg.NMax+1e-9; n += math.Max(cfg.NGridStep, 0.25) {
		if c, ok := s.ellipticalLS(obs, n); ok {
			seeds = append(seeds, seedXY{c.X, c.H})
		}
	}
	// Ring seeds are screened by score; the best few join the refinement.
	rings := s.rings[:0]
	for _, r := range s.ringInits(obs) {
		ss := s.scoreAt(obs, segs, &cfg, r[0], r[1])
		rings = append(rings, scoredSeed{seedXY{r[0], r[1]}, ss})
	}
	const ringPick = 6
	for i := 0; i < len(rings) && i < ringPick; i++ {
		min := i
		for j := i + 1; j < len(rings); j++ {
			if rings[j].v < rings[min].v {
				min = j
			}
		}
		rings[i], rings[min] = rings[min], rings[i]
	}
	for i := 0; i < len(rings) && i < ringPick; i++ {
		seeds = append(seeds, rings[i].s)
	}
	s.seeds, s.rings = seeds, rings

	var bx, bh float64
	bv := math.Inf(1)
	f := func(v []float64) float64 {
		if math.Hypot(v[0], v[1]) > cfg.MaxRange {
			return math.Inf(1)
		}
		return s.scoreAt(obs, segs, &cfg, v[0], v[1])
	}
	for _, sd := range seeds {
		if cfg.canceled() {
			return nil, ErrCanceled
		}
		x0 := s.nm.x0[:2]
		x0[0], x0[1] = sd.x, sd.h
		x, v := s.minimize(f, x0, 1.0, 200, cfg.Cancel)
		if v < bv {
			bv, bx, bh = v, x[0], x[1]
		}
	}
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	if math.IsInf(bv, 1) {
		return nil, ErrNoSolution
	}
	return s.finish(obs, segs, cfg, []Candidate{{X: bx, H: bh}}, false)
}

// runCollinear handles (near-)collinear movement along unit vector dir:
// the position is parameterized as s·dir + w·perp; the sign of w is
// unobservable (the paper's symmetry ambiguity, Sec. 5.1), so two mirror
// candidates are returned.
func (s *Solver) runCollinear(obs []Obs, segs [][2]int, cfg Config, dir [2]float64) (*Estimate, error) {
	perp := [2]float64{-dir[1], dir[0]}
	pos := func(sc, w float64) (float64, float64) {
		return sc*dir[0] + w*perp[0], sc*dir[1] + w*perp[1]
	}
	seeds := s.seeds[:0]
	if s0, w0, ok := s.ellipticalLSLine(obs, dir, 2.0); ok {
		seeds = append(seeds, seedXY{s0, w0})
	}
	for _, r := range s.ringInits(obs) {
		// Project ring candidates onto the (s, w) frame, w ≥ 0.
		sc := r[0]*dir[0] + r[1]*dir[1]
		w := math.Abs(r[0]*perp[0] + r[1]*perp[1])
		seeds = append(seeds, seedXY{sc, w})
	}
	s.seeds = seeds
	f := func(v []float64) float64 {
		x, h := pos(v[0], math.Abs(v[1]))
		if math.Hypot(x, h) > cfg.MaxRange {
			return math.Inf(1)
		}
		return s.scoreAt(obs, segs, &cfg, x, h)
	}
	var bs, bw float64
	bv := math.Inf(1)
	for _, sd := range seeds {
		if cfg.canceled() {
			return nil, ErrCanceled
		}
		x0 := s.nm.x0[:2]
		x0[0], x0[1] = sd.x, math.Max(sd.h, 0.3)
		x, v := s.minimize(f, x0, 1.0, 200, cfg.Cancel)
		if v < bv {
			bv, bs, bw = v, x[0], math.Abs(x[1])
		}
	}
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	if math.IsInf(bv, 1) {
		return nil, ErrNoSolution
	}
	x1, h1 := pos(bs, bw)
	x2, h2 := pos(bs, -bw)
	return s.finish(obs, segs, cfg, []Candidate{{X: x1, H: h1}, {X: x2, H: h2}}, true)
}

// finish computes per-segment (n, Γ), residual statistics and confidence
// for the chosen candidate set. The reported N/Gamma come from the
// longest segment (the dominant environment).
func (s *Solver) finish(obs []Obs, segs [][2]int, cfg Config, cands []Candidate, ambiguous bool) (*Estimate, error) {
	best := cands[0]
	var n, gamma float64
	down := 0
	longest := -1
	resid := growFloats(s.resid, len(obs))[:0]
	for _, sg := range segs {
		segObs := obs[sg[0]:sg[1]]
		nj, gj, _, dj := s.fitAt(segObs, &cfg, best.X, best.H)
		down += dj
		if sz := sg[1] - sg[0]; sz > longest {
			longest, n, gamma = sz, nj, gj
		}
		for _, o := range segObs {
			l := math.Hypot(best.X+o.P, best.H+o.Q)
			if l < 0.05 {
				l = 0.05
			}
			resid = append(resid, o.RSS-(gj-10*nj*math.Log10(l)))
		}
	}
	s.resid = resid
	mu := mathx.Mean(resid)
	sigma := mathx.StdDev(resid)
	rms := 0.0
	for _, r := range resid {
		rms += r * r
	}
	rms = math.Sqrt(rms / float64(len(resid)))
	// Real BLE RSS noise never drops below a fraction of a dB; flooring σ
	// keeps the confidence well defined for near-perfect synthetic fits.
	conf := mathx.TwoSidedTailProb(mu, 0, math.Max(sigma, 0.25))
	return &Estimate{
		X:            best.X,
		H:            best.H,
		Candidates:   cands,
		N:            n,
		Gamma:        gamma,
		ResidualDB:   rms,
		Confidence:   conf,
		Ambiguous:    ambiguous,
		Samples:      len(obs),
		Downweighted: down,
	}, nil
}

// movementPCA returns the major/minor spread (std dev, metres) of the
// relative-displacement cloud and the unit vector of the major axis.
func movementPCA(obs []Obs) (major, minor float64, dir [2]float64) {
	n := float64(len(obs))
	var mp, mq float64
	for _, o := range obs {
		mp += o.P
		mq += o.Q
	}
	mp /= n
	mq /= n
	var spp, sqq, spq float64
	for _, o := range obs {
		dp, dq := o.P-mp, o.Q-mq
		spp += dp * dp
		sqq += dq * dq
		spq += dp * dq
	}
	spp /= n
	sqq /= n
	spq /= n
	tr := spp + sqq
	det := spp*sqq - spq*spq
	disc := math.Sqrt(math.Max(tr*tr/4-det, 0))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	major = math.Sqrt(math.Max(l1, 0))
	minor = math.Sqrt(math.Max(l2, 0))
	if math.Abs(spq) > 1e-12 {
		v := [2]float64{l1 - sqq, spq}
		nv := math.Hypot(v[0], v[1])
		dir = [2]float64{v[0] / nv, v[1] / nv}
	} else if spp >= sqq {
		dir = [2]float64{1, 0}
	} else {
		dir = [2]float64{0, 1}
	}
	return major, minor, dir
}

// rhoValues computes ρᵢ = η^{RSᵢ−RSmean} (mean-shifted for conditioning)
// into the solver's ρ arena; the result is valid until the next call.
func (s *Solver) rhoValues(obs []Obs, n float64) ([]float64, float64) {
	rsm := 0.0
	for _, o := range obs {
		rsm += o.RSS
	}
	rsm /= float64(len(obs))
	s.rho = growFloats(s.rho, len(obs))
	rho := s.rho
	for i, o := range obs {
		rho[i] = math.Pow(10, -(o.RSS-rsm)/(5*n))
	}
	return rho, rsm
}

// ellipticalLS is the paper's linearized regression at a fixed exponent
// (Eqs. 3–4): A·(p²+q²) + C·p + D·q + G = ρ. It returns the implied
// position when the fit is physical (A > 0); it serves as the initializer
// for the dB-domain refinement.
func (s *Solver) ellipticalLS(obs []Obs, n float64) (Candidate, bool) {
	rho, _ := s.rhoValues(obs, n)
	x := mathx.NewMatrix(len(obs), 4)
	for i, o := range obs {
		x.Set(i, 0, o.P*o.P+o.Q*o.Q)
		x.Set(i, 1, o.P)
		x.Set(i, 2, o.Q)
		x.Set(i, 3, 1)
	}
	p, err := mathx.LeastSquares(x, rho)
	if err != nil || p[0] <= 0 {
		return Candidate{}, false
	}
	return Candidate{X: p[1] / (2 * p[0]), H: p[2] / (2 * p[0])}, true
}

// ellipticalLSLine is the reduced 1-D elliptical regression for collinear
// movement along dir: A·u² + C·u + G = ρ with u the along-track
// coordinate, yielding the along-track coordinate s = C/(2A) and the
// cross-track magnitude |w| = sqrt(G/A − s²).
func (s *Solver) ellipticalLSLine(obs []Obs, dir [2]float64, n float64) (along, w float64, ok bool) {
	rho, _ := s.rhoValues(obs, n)
	x := mathx.NewMatrix(len(obs), 3)
	for i, o := range obs {
		u := o.P*dir[0] + o.Q*dir[1]
		x.Set(i, 0, u*u)
		x.Set(i, 1, u)
		x.Set(i, 2, 1)
	}
	p, err := mathx.LeastSquares(x, rho)
	if err != nil || p[0] <= 0 {
		return 0, 0, false
	}
	along = p[1] / (2 * p[0])
	w2 := p[2]/p[0] - along*along
	if w2 < 0 {
		w2 = 0
	}
	return along, math.Sqrt(w2), true
}
