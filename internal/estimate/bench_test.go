package estimate

import (
	"testing"

	"locble/internal/rng"
)

func BenchmarkRunPlanar(b *testing.B) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(obs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCollinear(b *testing.B) {
	var path [][2]float64
	for d := 0.0; d <= 6; d += 0.15 {
		path = append(path, [2]float64{d, 0})
	}
	obs := synthObs(4, 2.5, -60, 2.0, path, 2.0, rng.New(2))
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(obs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSegmented(b *testing.B) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()
	split := len(obs) / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSegmented(obs, []int{split}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
