package estimate

import (
	"testing"

	"locble/internal/rng"
)

// TestSolverMatchesPackageRun pins the wrapper contract: a dedicated
// Solver and the pooled package entry points produce identical
// estimates for the same input.
func TestSolverMatchesPackageRun(t *testing.T) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()

	want, err := Run(obs, cfg)
	if err != nil {
		t.Fatalf("package Run: %v", err)
	}
	s := NewSolver()
	got, err := s.Run(obs, cfg)
	if err != nil {
		t.Fatalf("Solver.Run: %v", err)
	}
	if got.X != want.X || got.H != want.H || got.N != want.N ||
		got.Gamma != want.Gamma || got.ResidualDB != want.ResidualDB {
		t.Fatalf("Solver.Run = (%v,%v n=%v Γ=%v r=%v), package Run = (%v,%v n=%v Γ=%v r=%v)",
			got.X, got.H, got.N, got.Gamma, got.ResidualDB,
			want.X, want.H, want.N, want.Gamma, want.ResidualDB)
	}
}

// TestSolverReuseIsStateless pins the arena hygiene: interleaving runs
// over different inputs on one Solver must not change any run's result
// (a stale arena value leaking across runs would).
func TestSolverReuseIsStateless(t *testing.T) {
	obsA := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	obsB := synthObs(2.0, 6, -58, 2.8, lPath(3, 5, 0.2), 2.5, rng.New(9))
	cfg := DefaultConfig()

	s := NewSolver()
	first, err := s.Run(obsA, cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := s.Run(obsB, cfg); err != nil {
		t.Fatalf("interleaved run: %v", err)
	}
	again, err := s.Run(obsA, cfg)
	if err != nil {
		t.Fatalf("repeat run: %v", err)
	}
	if first.X != again.X || first.H != again.H || first.N != again.N ||
		first.Gamma != again.Gamma || first.ResidualDB != again.ResidualDB {
		t.Fatalf("solver reuse drifted: first (%v,%v n=%v Γ=%v r=%v), repeat (%v,%v n=%v Γ=%v r=%v)",
			first.X, first.H, first.N, first.Gamma, first.ResidualDB,
			again.X, again.H, again.N, again.Gamma, again.ResidualDB)
	}
}

// TestSolverInnerLoopZeroAlloc pins the PR's headline property: once
// the arenas are warm, the search's inner loop — the closed-form
// (n, Γ) fit called per objective evaluation, and a whole Nelder–Mead
// minimization — performs zero heap allocations.
func TestSolverInnerLoopZeroAlloc(t *testing.T) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()
	s := NewSolver()
	if _, err := s.Run(obs, cfg); err != nil { // warm every arena
		t.Fatalf("warm-up run: %v", err)
	}

	if n := testing.AllocsPerRun(100, func() {
		s.dbFitAt(obs, 3, 1, cfg.NMin, cfg.NMax)
	}); n != 0 {
		t.Errorf("dbFitAt allocates %v per call, want 0", n)
	}

	// The objective closure is created once per seed loop in the real
	// search; it is the per-minimize-call cost that must be zero.
	f := func(v []float64) float64 {
		_, _, ss := s.dbFitAt(obs, v[0], v[1], cfg.NMin, cfg.NMax)
		return ss
	}
	if n := testing.AllocsPerRun(50, func() {
		x0 := s.nm.x0[:2]
		x0[0], x0[1] = 3, 1
		s.minimize(f, x0, 1.0, 200, nil)
	}); n != 0 {
		t.Errorf("minimize allocates %v per call, want 0", n)
	}
}

// BenchmarkSolverRun measures a dedicated Solver's full planar fit
// (allocations here are only the returned Estimate and the elliptical
// initializer's matrices — the search loop itself is allocation-free).
func BenchmarkSolverRun(b *testing.B) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()
	s := NewSolver()
	if _, err := s.Run(obs, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(obs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverMinimize isolates one Nelder–Mead minimization on warm
// arenas (must report 0 allocs/op).
func BenchmarkSolverMinimize(b *testing.B) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()
	s := NewSolver()
	s.dbFitAt(obs, 3, 1, cfg.NMin, cfg.NMax)
	f := func(v []float64) float64 {
		_, _, ss := s.dbFitAt(obs, v[0], v[1], cfg.NMin, cfg.NMax)
		return ss
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x0 := s.nm.x0[:2]
		x0[0], x0[1] = 3, 1
		s.minimize(f, x0, 1.0, 200, nil)
	}
}
