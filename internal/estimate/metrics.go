package estimate

import "locble/internal/obs"

// Package-level instrumentation, recorded into obs.Default: the
// estimator is a pure library, so its metrics are process-wide rather
// than engine-scoped. One or two atomic operations per regression — the
// per-sample inner loops (dbFit, Nelder–Mead objective evaluations) are
// deliberately untouched.
var (
	// metRuns / metFailures count RunSegmented outcomes; metCanceled
	// counts runs cut short by Config.Cancel (caller deadline or
	// disconnect), which are not estimator failures.
	metRuns     = obs.Default.Counter("estimate.runs")
	metFailures = obs.Default.Counter("estimate.failures")
	metCanceled = obs.Default.Counter("estimate.canceled")
	// metAmbiguous counts collinear fits that returned mirror candidates.
	metAmbiguous = obs.Default.Counter("estimate.ambiguous")
	// metNMCalls / metNMIters count Nelder–Mead searches and the total
	// iterations they spent (iterations ÷ calls = mean search depth).
	metNMCalls = obs.Default.Counter("estimate.nm.calls")
	metNMIters = obs.Default.Counter("estimate.nm.iterations")
	// metResidualDB is the distribution of fit RMS residuals (dB).
	metResidualDB = obs.Default.Histogram("estimate.residual_db",
		[]float64{0.5, 1, 2, 4, 8, 16})
	// metIRLSRuns counts regressions run under a robust loss;
	// metIRLSDownweighted totals the observations those runs pushed below
	// the down-weight threshold (down-weighted ÷ runs = mean hostile
	// samples per fix).
	metIRLSRuns         = obs.Default.Counter("estimate.irls.runs")
	metIRLSDownweighted = obs.Default.Counter("estimate.irls.downweighted")
	// L-shape disambiguation outcomes: how the resolver concluded.
	metLShapeRuns     = obs.Default.Counter("estimate.lshape.runs")
	metLShapeResolved = obs.Default.Counter("estimate.lshape.resolved")
	metLShapeFallback = obs.Default.Counter("estimate.lshape.fallback")
	metLShapeFailed   = obs.Default.Counter("estimate.lshape.failed")
)
