package estimate

import (
	"fmt"
	"math"

	"locble/internal/robust"
)

// Loss selects the regression loss of the dB-domain position search.
// The zero value is the classic squared loss, which keeps the default
// pipeline bit-identical to its historical behaviour; the robust losses
// wrap the same closed-form inner fit in IRLS (iteratively reweighted
// least squares) so a handful of hostile samples — impulse bursts,
// spoofed readings, coordinated outlier runs — cannot drag the fix the
// way a −30 dB outlier drags a squared fit.
type Loss int

const (
	// LossSquared is ordinary least squares (the paper's loss).
	LossSquared Loss = iota
	// LossHuber is the Huber M-estimator: quadratic near zero, linear in
	// the tails. With a huge delta it reproduces least squares
	// bit-exactly (the quadratic zone covers every residual).
	LossHuber
	// LossTukey is the Tukey bisquare M-estimator: redescending — gross
	// outliers get weight zero and a bounded loss contribution.
	LossTukey
)

func (l Loss) String() string {
	switch l {
	case LossSquared:
		return "squared"
	case LossHuber:
		return "huber"
	case LossTukey:
		return "tukey"
	}
	return fmt.Sprintf("Loss(%d)", int(l))
}

// ParseLoss resolves a loss name ("squared"/"ls", "huber", "tukey").
func ParseLoss(s string) (Loss, error) {
	switch s {
	case "squared", "ls", "l2", "":
		return LossSquared, nil
	case "huber":
		return LossHuber, nil
	case "tukey", "bisquare":
		return LossTukey, nil
	}
	return 0, fmt.Errorf("estimate: unknown loss %q (squared|huber|tukey)", s)
}

// Robust-loss defaults: the standard 95%-Gaussian-efficiency tuning
// constants, an IRLS depth that converges for RSS-sized samples, the
// minimum residual scale (real BLE RSS noise never drops below a
// fraction of a dB), and the weight below which an observation counts
// as "down-weighted" in diagnostics.
const (
	defaultHuberDelta    = 1.345
	defaultTukeyC        = 4.685
	defaultIRLSIters     = 3
	irlsScaleFloorDB     = 0.5
	downweightedBelowW   = 0.5
	irlsMinUsableWeightS = 1e-9
)

// robustFitAt is the IRLS counterpart of dbFitAt: for a fixed candidate
// position (x, h) it fits (n, Γ) under the configured robust loss.
// Iteration 0 is the plain closed-form fit; each subsequent iteration
// re-scales the residuals by their MAD-derived σ, converts them into
// Huber/Tukey weights, and re-solves the weighted normal equations —
// all inside the solver's arenas, so the whole search stays
// allocation-free once warm. It returns the robust score (Σρ of the
// final residuals — the position-search objective), plus how many
// observations ended below the down-weight threshold.
//
// Bit-exactness contract: with LossHuber and a delta large enough that
// every residual stays in the quadratic zone, the weights are exactly 1
// and each arithmetic expression below reduces to the exact expression
// dbFitAt evaluates, so (n, Γ, score) — and therefore the entire
// position search — reproduce the squared-loss results bit-for-bit.
func (s *Solver) robustFitAt(obs []Obs, x, h float64, cfg *Config) (n, gamma, score float64, down int) {
	n, gamma, _ = s.dbFitAt(obs, x, h, cfg.NMin, cfg.NMax) // fills s.gs
	m := len(obs)
	s.rr = growFloats(s.rr, m)
	s.w = growFloats(s.w, m)
	rr, w, gs := s.rr, s.w, s.gs

	iters := cfg.IRLSIterations
	if iters <= 0 {
		iters = defaultIRLSIters
	}
	delta, c := cfg.HuberDelta, cfg.TukeyC
	if delta <= 0 {
		delta = defaultHuberDelta
	}
	if c <= 0 {
		c = defaultTukeyC
	}

	for it := 0; it < iters; it++ {
		for i, o := range obs {
			rr[i] = o.RSS - (gamma - 10*n*gs[i])
		}
		var mad float64
		_, mad, s.madScratch = robust.MADInto(rr, s.madScratch)
		sigma := robust.Scale(mad, irlsScaleFloorDB)
		for i := range rr {
			if cfg.Loss == LossTukey {
				w[i] = robust.TukeyWeight(rr[i], sigma, c)
			} else {
				w[i] = robust.HuberWeight(rr[i], sigma, delta)
			}
		}
		var sw, swg, swr, swgg, swgr float64
		for i, o := range obs {
			wi, g := w[i], gs[i]
			wg := wi * g
			sw += wi
			swg += wg
			swr += wi * o.RSS
			swgg += wg * g
			swgr += wg * o.RSS
		}
		if sw < irlsMinUsableWeightS {
			// Every observation rejected (pathological scale collapse):
			// keep the previous iteration's fit rather than divide by ~0.
			break
		}
		den := sw*swgg - swg*swg
		if den < 1e-12 {
			n = (cfg.NMin + cfg.NMax) / 2
		} else {
			slope := (sw*swgr - swg*swr) / den
			n = -slope / 10
		}
		n = math.Min(math.Max(n, cfg.NMin), cfg.NMax)
		gamma = (swr + 10*n*swg) / sw
	}

	// Final robust score and down-weight census at the converged (n, Γ).
	for i, o := range obs {
		rr[i] = o.RSS - (gamma - 10*n*gs[i])
	}
	var mad float64
	_, mad, s.madScratch = robust.MADInto(rr, s.madScratch)
	sigma := robust.Scale(mad, irlsScaleFloorDB)
	for i := range rr {
		var wi float64
		if cfg.Loss == LossTukey {
			score += robust.TukeyRho(rr[i], sigma, c)
			wi = robust.TukeyWeight(rr[i], sigma, c)
		} else {
			score += robust.HuberRho(rr[i], sigma, delta)
			wi = robust.HuberWeight(rr[i], sigma, delta)
		}
		w[i] = wi
		if wi < downweightedBelowW {
			down++
		}
	}
	return n, gamma, score, down
}

// fitAt dispatches between the squared-loss closed form and the IRLS
// robust fit. down is 0 for the squared loss (nothing is weighted).
func (s *Solver) fitAt(obs []Obs, cfg *Config, x, h float64) (n, gamma, score float64, down int) {
	if cfg.Loss == LossSquared {
		n, gamma, score = s.dbFitAt(obs, x, h, cfg.NMin, cfg.NMax)
		return n, gamma, score, 0
	}
	return s.robustFitAt(obs, x, h, cfg)
}

// FitProbe runs one complete inner-fit minimization (closed-form for
// LossSquared, IRLS for the robust losses) from the given start
// position, entirely inside the Solver's arenas, and returns the
// converged score. It is the allocation-probe entry point for the
// pipeline benchmark gate: after one warming call has sized the scratch
// buffers, repeated FitProbe calls must perform zero heap allocations.
func (s *Solver) FitProbe(obs []Obs, cfg Config, x, h float64) float64 {
	cfg.softDefaults()
	f := func(v []float64) float64 {
		_, _, score, _ := s.fitAt(obs, &cfg, v[0], v[1])
		return score
	}
	x0 := s.nm.x0[:2]
	x0[0], x0[1] = x, h
	_, best := s.minimize(f, x0, 1.0, 200, nil)
	return best
}
