package estimate

import "math"

// dbFitAt is the closed-form inner fit behind the paper's Eq. (5): for a
// fixed candidate position (x, h), the path-loss model RSᵢ = Γ − 10·n·gᵢ
// with gᵢ = log10(lᵢ), lᵢ = hypot(x+pᵢ, h+qᵢ), is *linear* in (Γ, n), so
// the fading coefficient and power offset come from a linear regression
// of RSS on gᵢ, and the fit quality is the residual sum of squares. The
// paper's numeric search for n̂*(e) is thereby collapsed into a closed
// form; the numeric search happens only over position. The per-sample
// log-distances live in the solver's gs arena, so the fit — the single
// hottest function in the pipeline, called for every objective
// evaluation of every Nelder–Mead iteration — allocates nothing.
func (s *Solver) dbFitAt(obs []Obs, x, h, nMin, nMax float64) (n, gamma, ss float64) {
	var sg, sr, sgg, sgr float64
	nn := float64(len(obs))
	s.gs = growFloats(s.gs, len(obs))
	gs := s.gs
	for i, o := range obs {
		// log10(dist) via ½·log10(dist²): the distance itself is never
		// needed, so the per-observation sqrt inside Hypot is skipped.
		// The 0.05 m near-field clamp becomes 0.0025 on the square.
		dp, dq := x+o.P, h+o.Q
		l2 := dp*dp + dq*dq
		if l2 < 0.0025 {
			l2 = 0.0025
		}
		g := 0.5 * math.Log10(l2)
		gs[i] = g
		sg += g
		sr += o.RSS
		sgg += g * g
		sgr += g * o.RSS
	}
	den := nn*sgg - sg*sg
	if den < 1e-12 {
		// All distances equal (observer orbiting the target): the slope
		// is unidentifiable; clamp to a mid exponent.
		n = (nMin + nMax) / 2
	} else {
		slope := (nn*sgr - sg*sr) / den
		n = -slope / 10
	}
	n = math.Min(math.Max(n, nMin), nMax)
	gamma = (sr + 10*n*sg) / nn
	for i, o := range obs {
		r := o.RSS - (gamma - 10*n*gs[i])
		ss += r * r
	}
	return n, gamma, ss
}

// ringInits proposes starting positions for the position search: the
// strongest filtered RSS implies a rough distance ring (assuming nominal
// Γ ≈ −60 dBm and a plausible exponent); candidates are spread around
// rings at a few radii in all directions. Results are appended to the
// solver's ring arena and valid until the next ringInits call.
func (s *Solver) ringInits(obs []Obs) [][2]float64 {
	maxRSS := math.Inf(-1)
	for _, o := range obs {
		if o.RSS > maxRSS {
			maxRSS = o.RSS
		}
	}
	var radii [4]float64
	for i, n := range [2]float64{2.0, 3.0} {
		d := math.Pow(10, (-60-maxRSS)/(10*n))
		radii[i] = clampF(d, 0.5, 20)
	}
	radii[2], radii[3] = 3, 7
	out := s.ringP[:0]
	for _, r := range radii {
		for k := 0; k < 8; k++ {
			th := 2 * math.Pi * float64(k) / 8
			out = append(out, [2]float64{r * math.Cos(th), r * math.Sin(th)})
		}
	}
	s.ringP = out
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
