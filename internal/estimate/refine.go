package estimate

import (
	"math"
	"sort"
)

// dbFit is the closed-form inner fit behind the paper's Eq. (5): for a
// fixed candidate position, the path-loss model RSᵢ = Γ − 10·n·gᵢ with
// gᵢ = log10(lᵢ) is *linear* in (Γ, n), so the fading coefficient and
// power offset come from a linear regression of RSS on gᵢ, and the fit
// quality is the residual sum of squares. The paper's numeric search for
// n̂*(e) is thereby collapsed into a closed form; the numeric search
// happens only over position.
func dbFit(obs []Obs, dist func(Obs) float64, nMin, nMax float64) (n, gamma, ss float64) {
	var sg, sr, sgg, sgr float64
	nn := float64(len(obs))
	gs := make([]float64, len(obs))
	for i, o := range obs {
		l := dist(o)
		if l < 0.05 {
			l = 0.05
		}
		g := math.Log10(l)
		gs[i] = g
		sg += g
		sr += o.RSS
		sgg += g * g
		sgr += g * o.RSS
	}
	den := nn*sgg - sg*sg
	if den < 1e-12 {
		// All distances equal (observer orbiting the target): the slope
		// is unidentifiable; clamp to a mid exponent.
		n = (nMin + nMax) / 2
	} else {
		slope := (nn*sgr - sg*sr) / den
		n = -slope / 10
	}
	n = math.Min(math.Max(n, nMin), nMax)
	gamma = (sr + 10*n*sg) / nn
	for i, o := range obs {
		r := o.RSS - (gamma - 10*n*gs[i])
		ss += r * r
	}
	return n, gamma, ss
}

func distPlanar(x, h float64) func(Obs) float64 {
	return func(o Obs) float64 { return math.Hypot(x+o.P, h+o.Q) }
}

// nelderMead minimizes f over len(x0) parameters starting from x0 with
// the given initial simplex scale. Compact implementation: the objective
// is cheap and smooth almost everywhere. A non-nil cancel is polled
// every few iterations; cancellation stops the search early and returns
// the best vertex so far (the caller decides whether to discard it).
func nelderMead(f func([]float64) float64, x0 []float64, scale float64, iters int, cancel func() bool) ([]float64, float64) {
	dim := len(x0)
	type pt struct {
		x []float64
		v float64
	}
	mk := func(x []float64) pt {
		cp := append([]float64(nil), x...)
		return pt{x: cp, v: f(cp)}
	}
	simplex := make([]pt, 0, dim+1)
	simplex = append(simplex, mk(x0))
	for d := 0; d < dim; d++ {
		v := append([]float64(nil), x0...)
		v[d] += scale
		simplex = append(simplex, mk(v))
	}
	lin := func(a, b []float64, t float64) []float64 {
		out := make([]float64, dim)
		for i := range out {
			out[i] = a[i] + t*(b[i]-a[i])
		}
		return out
	}
	spent := 0
	for it := 0; it < iters; it++ {
		spent = it + 1
		if it%8 == 0 && cancel != nil && cancel() {
			break
		}
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		best, worst := simplex[0], simplex[dim]
		// Centroid of all but the worst.
		cent := make([]float64, dim)
		for _, p := range simplex[:dim] {
			for i := range cent {
				cent[i] += p.x[i]
			}
		}
		for i := range cent {
			cent[i] /= float64(dim)
		}
		refl := mk(lin(worst.x, cent, 2)) // c + (c − w)
		switch {
		case refl.v < best.v:
			exp := mk(lin(worst.x, cent, 3)) // c + 2(c − w)
			if exp.v < refl.v {
				simplex[dim] = exp
			} else {
				simplex[dim] = refl
			}
		case refl.v < simplex[dim-1].v:
			simplex[dim] = refl
		default:
			contr := mk(lin(worst.x, cent, 0.5))
			if contr.v < worst.v {
				simplex[dim] = contr
			} else {
				for k := 1; k <= dim; k++ {
					simplex[k] = mk(lin(best.x, simplex[k].x, 0.5))
				}
			}
		}
		// Convergence: simplex collapsed in value and extent.
		spread := 0.0
		for i := range simplex[0].x {
			spread += math.Abs(simplex[0].x[i] - simplex[dim].x[i])
		}
		if math.Abs(simplex[0].v-simplex[dim].v) < 1e-10 && spread < 1e-6 {
			break
		}
	}
	metNMCalls.Inc()
	metNMIters.Add(int64(spent))
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x, simplex[0].v
}

// ringInits proposes starting positions for the position search: the
// strongest filtered RSS implies a rough distance ring (assuming nominal
// Γ ≈ −60 dBm and a plausible exponent); candidates are spread around
// rings at a few radii in all directions.
func ringInits(obs []Obs) [][2]float64 {
	maxRSS := math.Inf(-1)
	for _, o := range obs {
		if o.RSS > maxRSS {
			maxRSS = o.RSS
		}
	}
	var radii []float64
	for _, n := range []float64{2.0, 3.0} {
		d := math.Pow(10, (-60-maxRSS)/(10*n))
		radii = append(radii, clampF(d, 0.5, 20))
	}
	radii = append(radii, 3, 7)
	var out [][2]float64
	for _, r := range radii {
		for k := 0; k < 8; k++ {
			th := 2 * math.Pi * float64(k) / 8
			out = append(out, [2]float64{r * math.Cos(th), r * math.Sin(th)})
		}
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
