package estimate

import (
	"math"

	"locble/internal/mathx"
)

// Obs3D is a fused observation with a vertical relative displacement
// (e.g. the phone raised/lowered, or stairs), for the 3-D extension the
// paper sketches in Sec. 9.3.
type Obs3D struct {
	T       float64
	RSS     float64
	P, Q, R float64 // relative displacement in x, y, z (metres)
}

// Estimate3D is the 3-D regression output.
type Estimate3D struct {
	X, H, Z    float64
	N, Gamma   float64
	ResidualDB float64
	Confidence float64
	Samples    int
}

// Range returns the estimated 3-D distance from the origin.
func (e *Estimate3D) Range() float64 {
	return math.Sqrt(e.X*e.X + e.H*e.H + e.Z*e.Z)
}

// Run3D extends the regression with a third dimension. The elliptical
// linearization A·(p²+q²+r²) + C·p + D·q + E·r + G = ρ seeds the search;
// a 3-parameter Nelder–Mead over position with the closed-form (n, Γ)
// inner fit refines it. The movement must span all three dimensions for
// the fit to be well conditioned; the practical phone gesture is an
// L-shaped walk plus raising the phone. Like the 2-D search, the inner
// loop runs on the solver's arenas and allocates nothing.
func (s *Solver) Run3D(obs []Obs3D, cfg Config) (*Estimate3D, error) {
	if cfg.MinSamples < 6 {
		cfg.MinSamples = 6
	}
	if cfg.MaxRange <= 0 {
		cfg.MaxRange = 25
	}
	if len(obs) < cfg.MinSamples {
		return nil, ErrTooFewSamples
	}

	// Flatten to 2-D Obs for the shared ring initializer (it needs only
	// RSS).
	flat := make([]Obs, len(obs))
	for i, o := range obs {
		flat[i] = Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q}
	}
	eval := func(x, h, z float64) (n, gamma, ss float64) {
		return s.dbFit3At(obs, x, h, z, cfg.NMin, cfg.NMax)
	}

	// Seeds: elliptical LS plus rings in the z = 0 plane.
	type seed struct{ x, h, z float64 }
	var seeds []seed
	for n := cfg.NMin; n <= cfg.NMax+1e-9; n += math.Max(cfg.NGridStep, 0.5) {
		if c, ok := elliptical3DLS(obs, n); ok {
			seeds = append(seeds, seed{c[0], c[1], c[2]})
		}
	}
	for _, r := range s.ringInits(flat) {
		seeds = append(seeds, seed{r[0], r[1], 0})
	}

	f := func(v []float64) float64 {
		if math.Sqrt(v[0]*v[0]+v[1]*v[1]+v[2]*v[2]) > cfg.MaxRange {
			return math.Inf(1)
		}
		_, _, ss := eval(v[0], v[1], v[2])
		return ss
	}
	var bx, bh, bz float64
	bv := math.Inf(1)
	for _, sd := range seeds {
		if cfg.canceled() {
			return nil, ErrCanceled
		}
		x0 := s.nm.x0[:3]
		x0[0], x0[1], x0[2] = sd.x, sd.h, sd.z
		x, v := s.minimize(f, x0, 1.0, 250, cfg.Cancel)
		if v < bv {
			bv, bx, bh, bz = v, x[0], x[1], x[2]
		}
	}
	if cfg.canceled() {
		return nil, ErrCanceled
	}
	if math.IsInf(bv, 1) {
		return nil, ErrNoSolution
	}

	n, gamma, _ := eval(bx, bh, bz)
	resid := make([]float64, len(obs))
	for i, o := range obs {
		l := math.Sqrt((bx+o.P)*(bx+o.P) + (bh+o.Q)*(bh+o.Q) + (bz+o.R)*(bz+o.R))
		if l < 0.05 {
			l = 0.05
		}
		resid[i] = o.RSS - (gamma - 10*n*math.Log10(l))
	}
	mu, sigma := mathx.Mean(resid), mathx.StdDev(resid)
	rms := 0.0
	for _, r := range resid {
		rms += r * r
	}
	rms = math.Sqrt(rms / float64(len(resid)))
	return &Estimate3D{
		X: bx, H: bh, Z: bz,
		N: n, Gamma: gamma,
		ResidualDB: rms,
		Confidence: mathx.TwoSidedTailProb(mu, 0, math.Max(sigma, 0.25)),
		Samples:    len(obs),
	}, nil
}

// dbFit3At is dbFitAt with the 3-D distance lᵢ = |(x+pᵢ, h+qᵢ, z+rᵢ)|;
// the log-distance buffer is the solver's gs arena.
func (s *Solver) dbFit3At(obs []Obs3D, x, h, z, nMin, nMax float64) (n, gamma, ss float64) {
	var sg, sr, sgg, sgr float64
	nn := float64(len(obs))
	s.gs = growFloats(s.gs, len(obs))
	gs := s.gs
	for i, o := range obs {
		l := math.Sqrt((x+o.P)*(x+o.P) + (h+o.Q)*(h+o.Q) + (z+o.R)*(z+o.R))
		if l < 0.05 {
			l = 0.05
		}
		g := math.Log10(l)
		gs[i] = g
		sg += g
		sr += o.RSS
		sgg += g * g
		sgr += g * o.RSS
	}
	den := nn*sgg - sg*sg
	if den < 1e-12 {
		n = (nMin + nMax) / 2
	} else {
		n = -((nn*sgr - sg*sr) / den) / 10
	}
	n = math.Min(math.Max(n, nMin), nMax)
	gamma = (sr + 10*n*sg) / nn
	for i, o := range obs {
		r := o.RSS - (gamma - 10*n*gs[i])
		ss += r * r
	}
	return n, gamma, ss
}

// elliptical3DLS is the 3-D linearized initializer.
func elliptical3DLS(obs []Obs3D, n float64) ([3]float64, bool) {
	rsm := 0.0
	for _, o := range obs {
		rsm += o.RSS
	}
	rsm /= float64(len(obs))
	rho := make([]float64, len(obs))
	for i, o := range obs {
		rho[i] = math.Pow(10, -(o.RSS-rsm)/(5*n))
	}
	x := mathx.NewMatrix(len(obs), 5)
	for i, o := range obs {
		x.Set(i, 0, o.P*o.P+o.Q*o.Q+o.R*o.R)
		x.Set(i, 1, o.P)
		x.Set(i, 2, o.Q)
		x.Set(i, 3, o.R)
		x.Set(i, 4, 1)
	}
	p, err := mathx.LeastSquares(x, rho)
	if err != nil || p[0] <= 0 {
		return [3]float64{}, false
	}
	a := p[0]
	return [3]float64{p[1] / (2 * a), p[2] / (2 * a), p[3] / (2 * a)}, true
}
