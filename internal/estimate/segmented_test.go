package estimate

import (
	"math"
	"testing"
)

// synthSegmented builds observations whose channel parameters switch at a
// boundary: segment 0 uses (gamma0, n0), segment 1 (gamma1, n1), with the
// same target position throughout.
func synthSegmented(x, h float64, path [][2]float64, split int, gamma0, n0, gamma1, n1 float64) []Obs {
	obs := make([]Obs, 0, len(path))
	for i, p := range path {
		px, qx := -p[0], -p[1]
		l := math.Hypot(x+px, h+qx)
		gamma, n := gamma0, n0
		if i >= split {
			gamma, n = gamma1, n1
		}
		obs = append(obs, Obs{T: float64(i) * 0.1, RSS: gamma - 10*n*math.Log10(l), P: px, Q: qx})
	}
	return obs
}

func TestRunSegmentedRecoversAcrossEnvChange(t *testing.T) {
	// Γ drops 8 dB and the exponent jumps mid-walk (the paper's NLOS→LOS
	// transition, reversed); a single-model fit must absorb that into a
	// wrong exponent, while the segmented fit recovers position and both
	// parameter sets.
	x, h := 5.5, 2.0
	path := lPath(4, 4, 0.25)
	split := len(path) / 2
	obs := synthSegmented(x, h, path, split, -59, 2.0, -67, 3.0)

	est, err := RunSegmented(obs, []int{split}, DefaultConfig())
	if err != nil {
		t.Fatalf("RunSegmented: %v", err)
	}
	if d := math.Hypot(est.X-x, est.H-h); d > 0.5 {
		t.Errorf("segmented fit off by %.2f m: (%.2f, %.2f)", d, est.X, est.H)
	}
	if est.ResidualDB > 0.3 {
		t.Errorf("segmented residual %.2f dB on noise-free data", est.ResidualDB)
	}

	// The single-model fit on the same data carries model misfit: its
	// residual must be clearly larger.
	single, err := Run(obs, DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if single.ResidualDB < est.ResidualDB+0.5 {
		t.Errorf("single-model residual %.2f should exceed segmented %.2f",
			single.ResidualDB, est.ResidualDB)
	}
}

func TestRunSegmentedMergesTinySegments(t *testing.T) {
	// Splits that leave segments below the per-segment minimum must be
	// merged, not errored.
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.25), 0, nil)
	est, err := RunSegmented(obs, []int{2, 4, len(obs) - 3}, DefaultConfig())
	if err != nil {
		t.Fatalf("RunSegmented with tiny splits: %v", err)
	}
	if d := math.Hypot(est.X-5.5, est.H-2); d > 0.4 {
		t.Errorf("estimate off by %.2f m", d)
	}
}

func TestRunSegmentedIgnoresInvalidStarts(t *testing.T) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.25), 0, nil)
	// Out-of-range and non-monotone split indexes are dropped.
	est, err := RunSegmented(obs, []int{-5, 0, 999, 20, 10}, DefaultConfig())
	if err != nil {
		t.Fatalf("RunSegmented: %v", err)
	}
	if d := math.Hypot(est.X-5.5, est.H-2); d > 0.4 {
		t.Errorf("estimate off by %.2f m", d)
	}
}

func TestNormalizeSegments(t *testing.T) {
	cases := []struct {
		n      int
		starts []int
		want   [][2]int
	}{
		{30, nil, [][2]int{{0, 30}}},
		{30, []int{15}, [][2]int{{0, 15}, {15, 30}}},
		{30, []int{27}, [][2]int{{0, 30}}},               // tail too short → merged
		{30, []int{3}, [][2]int{{0, 30}}},                // head too short → merged
		{30, []int{10, 12}, [][2]int{{0, 12}, {12, 30}}}, // short middle merges into predecessor
		{30, []int{0, 0, 10}, [][2]int{{0, 10}, {10, 30}}},
	}
	for _, c := range cases {
		got := normalizeSegments(c.n, c.starts)
		if len(got) != len(c.want) {
			t.Errorf("normalizeSegments(%d, %v) = %v, want %v", c.n, c.starts, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("normalizeSegments(%d, %v)[%d] = %v, want %v", c.n, c.starts, i, got[i], c.want[i])
			}
		}
	}
	// Coverage invariant: segments tile [0, n).
	got := normalizeSegments(50, []int{9, 20, 21, 45})
	prev := 0
	for _, sg := range got {
		if sg[0] != prev {
			t.Fatalf("segments do not tile: %v", got)
		}
		prev = sg[1]
	}
	if prev != 50 {
		t.Fatalf("segments do not cover: %v", got)
	}
}
