package estimate

import (
	"errors"
	"math"
	"sync"
)

// Solver owns the estimator's reusable scratch: the log-distance and
// residual buffers behind the closed-form inner fit, the ρ buffer of the
// elliptical initializer, the Nelder–Mead simplex arena, and the seed
// lists of the position search. A warmed Solver runs the whole inner
// search loop — objective evaluations and simplex iterations — without
// allocating; only the returned *Estimate (and its Candidates) is fresh
// memory. A Solver is NOT safe for concurrent use: give each goroutine
// its own (the LocateAll worker pool does exactly that), or go through
// the package-level Run/RunSegmented/RunLShape/Run3D wrappers, which
// draw from an internal sync.Pool.
//
// The Solver changes where buffers live, not what is computed: every
// arithmetic expression is evaluated in the same order as the original
// allocation-per-call implementation, so results are bit-identical.
type Solver struct {
	// gs holds per-observation log-distances for the closed-form (n, Γ)
	// fit; valid only within one dbFitAt/dbFit3At call.
	gs []float64
	// resid holds per-observation fit residuals in finish.
	resid []float64
	// rho holds ρᵢ values for the elliptical-LS initializer.
	rho []float64
	// rr / w / madScratch are the IRLS residual, weight and MAD working
	// buffers of the robust inner fit (robustFitAt).
	rr, w, madScratch []float64
	// nm is the Nelder–Mead simplex arena (fixed-size, up to 3 params).
	nm nmArena
	// seeds / rings are the position-search candidate lists.
	seeds []seedXY
	rings []scoredSeed
	ringP [][2]float64
	// legA / legB are the per-leg observation splits of RunLShape.
	legA, legB []Obs
}

// seedXY is one refinement starting position.
type seedXY struct{ x, h float64 }

// scoredSeed is a ring seed with its screening score.
type scoredSeed struct {
	s seedXY
	v float64
}

// NewSolver returns an empty Solver; buffers grow on first use and are
// retained across runs.
func NewSolver() *Solver { return &Solver{} }

// solverPool backs the package-level entry points so casual callers get
// scratch reuse without managing Solver lifetimes.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// Run fits the model to the observations and returns the estimate with
// the ambiguity (if any) unresolved.
func Run(obs []Obs, cfg Config) (*Estimate, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.Run(obs, cfg)
}

// RunSegmented fits one target position across environment segments
// using pooled scratch; see Solver.RunSegmented.
func RunSegmented(obs []Obs, segStarts []int, cfg Config) (*Estimate, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.RunSegmented(obs, segStarts, cfg)
}

// RunLShape disambiguates a straight-line mirror solution with the
// L-shaped movement using pooled scratch; see Solver.RunLShape.
func RunLShape(obs []Obs, splitT float64, cfg Config) (*LShapeResult, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.RunLShape(obs, splitT, cfg)
}

// Run3D runs the 3-D extension using pooled scratch; see Solver.Run3D.
func Run3D(obs []Obs3D, cfg Config) (*Estimate3D, error) {
	s := solverPool.Get().(*Solver)
	defer solverPool.Put(s)
	return s.Run3D(obs, cfg)
}

// Run is RunSegmented with a single segment.
func (s *Solver) Run(obs []Obs, cfg Config) (*Estimate, error) {
	return s.RunSegmented(obs, nil, cfg)
}

// RunSegmented fits one target position across environment segments:
// the geometry (x, h) is shared by all observations, while each segment
// gets its own (Γⱼ, nⱼ) — the paper's "start a new regression when the
// environment changes" (Algorithm 1), strengthened so the segments still
// constrain a single position jointly instead of producing independent
// (and individually ambiguous) per-segment answers. segStarts lists the
// first observation index of each segment ([0] or nil for a single
// segment); segments too short to support their own channel parameters
// are merged into their predecessor.
func (s *Solver) RunSegmented(obs []Obs, segStarts []int, cfg Config) (*Estimate, error) {
	est, err := s.runSegmented(obs, segStarts, cfg)
	metRuns.Inc()
	switch {
	case errors.Is(err, ErrCanceled):
		metCanceled.Inc()
	case err != nil:
		metFailures.Inc()
	case est.Ambiguous:
		metAmbiguous.Inc()
	}
	if err == nil {
		metResidualDB.Observe(est.ResidualDB)
	}
	if cfg.Loss != LossSquared {
		metIRLSRuns.Inc()
		if err == nil && est.Downweighted > 0 {
			metIRLSDownweighted.Add(int64(est.Downweighted))
		}
	}
	return est, err
}

// growFloats returns buf resized to n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// --- Nelder–Mead simplex arena -------------------------------------------

// nmMaxDim is the largest parameter count any estimator search uses
// (2-D position, collinear (s, w), or 3-D position).
const nmMaxDim = 3

// nmArena holds the simplex of a Nelder–Mead search in fixed-size
// arrays so a whole minimization runs without allocating. x0 is the
// caller-visible seed buffer: write the start point into x0[:dim] and
// pass that slice to minimize.
type nmArena struct {
	verts [nmMaxDim + 1][nmMaxDim]float64 // simplex vertices
	vals  [nmMaxDim + 1]float64           // objective value per vertex
	cent  [nmMaxDim]float64               // centroid of all but the worst
	cand  [nmMaxDim]float64               // reflection candidate
	cand2 [nmMaxDim]float64               // expansion / contraction candidate
	x0    [nmMaxDim]float64               // seed scratch for callers
}

// sortSimplex orders the dim+1 vertices by ascending objective value
// (insertion sort: at most 4 vertices, and values are almost sorted
// between iterations).
func (a *nmArena) sortSimplex(dim int) {
	for i := 1; i <= dim; i++ {
		for j := i; j > 0 && a.vals[j] < a.vals[j-1]; j-- {
			a.vals[j], a.vals[j-1] = a.vals[j-1], a.vals[j]
			a.verts[j], a.verts[j-1] = a.verts[j-1], a.verts[j]
		}
	}
}

// minimize runs the Nelder–Mead search over len(x0) parameters starting
// from x0 with the given initial simplex scale, entirely inside the
// solver's arena — steady state performs zero heap allocations. The
// objective is cheap and smooth almost everywhere. A non-nil cancel is
// polled every few iterations; cancellation stops the search early and
// returns the best vertex so far (the caller decides whether to discard
// it). The returned slice aliases the arena and is valid only until the
// next minimize call — copy what you need immediately.
func (s *Solver) minimize(f func([]float64) float64, x0 []float64, scale float64, iters int, cancel func() bool) ([]float64, float64) {
	dim := len(x0)
	a := &s.nm
	for d := 0; d <= dim; d++ {
		copy(a.verts[d][:dim], x0)
		if d > 0 {
			a.verts[d][d-1] += scale
		}
		a.vals[d] = f(a.verts[d][:dim])
	}
	lin := func(dst *[nmMaxDim]float64, av, bv *[nmMaxDim]float64, t float64) {
		for i := 0; i < dim; i++ {
			dst[i] = av[i] + t*(bv[i]-av[i])
		}
	}
	spent := 0
	for it := 0; it < iters; it++ {
		spent = it + 1
		if it%8 == 0 && cancel != nil && cancel() {
			break
		}
		a.sortSimplex(dim)
		// Centroid of all but the worst.
		for i := 0; i < dim; i++ {
			a.cent[i] = 0
		}
		for k := 0; k < dim; k++ {
			for i := 0; i < dim; i++ {
				a.cent[i] += a.verts[k][i]
			}
		}
		for i := 0; i < dim; i++ {
			a.cent[i] /= float64(dim)
		}
		lin(&a.cand, &a.verts[dim], &a.cent, 2) // c + (c − w)
		reflV := f(a.cand[:dim])
		switch {
		case reflV < a.vals[0]:
			lin(&a.cand2, &a.verts[dim], &a.cent, 3) // c + 2(c − w)
			expV := f(a.cand2[:dim])
			if expV < reflV {
				a.verts[dim], a.vals[dim] = a.cand2, expV
			} else {
				a.verts[dim], a.vals[dim] = a.cand, reflV
			}
		case reflV < a.vals[dim-1]:
			a.verts[dim], a.vals[dim] = a.cand, reflV
		default:
			lin(&a.cand2, &a.verts[dim], &a.cent, 0.5)
			contrV := f(a.cand2[:dim])
			if contrV < a.vals[dim] {
				a.verts[dim], a.vals[dim] = a.cand2, contrV
			} else {
				for k := 1; k <= dim; k++ {
					lin(&a.cand2, &a.verts[0], &a.verts[k], 0.5)
					a.verts[k] = a.cand2
					a.vals[k] = f(a.verts[k][:dim])
				}
			}
		}
		// Convergence: simplex collapsed in value and extent.
		spread := 0.0
		for i := 0; i < dim; i++ {
			spread += math.Abs(a.verts[0][i] - a.verts[dim][i])
		}
		if math.Abs(a.vals[0]-a.vals[dim]) < 1e-10 && spread < 1e-6 {
			break
		}
	}
	metNMCalls.Inc()
	metNMIters.Add(int64(spent))
	a.sortSimplex(dim)
	return a.verts[0][:dim], a.vals[0]
}
