package estimate

import (
	"math"
	"testing"

	"locble/internal/rng"
)

// TestHuberHugeDeltaIsLeastSquares pins the bit-exactness contract: with
// a Huber delta so large the quadratic zone covers every residual, the
// IRLS weights are exactly 1 and the whole pipeline — inner fit, score,
// position search, residual statistics — must reproduce the squared-loss
// results bit-for-bit, across movement geometries and noise levels.
func TestHuberHugeDeltaIsLeastSquares(t *testing.T) {
	cases := []struct {
		name string
		obs  []Obs
	}{
		{"planar-noisy", synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))},
		{"planar-clean", synthObs(6, 3, -59, 2.0, lPath(4, 4, 0.25), 0, nil)},
		{"collinear", synthObs(3, 4, -62, 2.5, lPath(6, 0, 0.15), 1.5, rng.New(7))},
		{"near-target", synthObs(1.5, 0.8, -58, 1.9, lPath(4, 4, 0.2), 3.0, rng.New(3))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sq := DefaultConfig()
			want, werr := Run(c.obs, sq)

			hu := DefaultConfig()
			hu.Loss = LossHuber
			hu.HuberDelta = 1e12 // quadratic zone spans every residual
			got, gerr := Run(c.obs, hu)

			if (werr == nil) != (gerr == nil) {
				t.Fatalf("error mismatch: squared=%v huber=%v", werr, gerr)
			}
			if werr != nil {
				return
			}
			if got.X != want.X || got.H != want.H || got.N != want.N ||
				got.Gamma != want.Gamma || got.ResidualDB != want.ResidualDB ||
				got.Confidence != want.Confidence {
				t.Fatalf("huge-delta Huber diverged from least squares:\n huber   (%v,%v n=%v Γ=%v r=%v c=%v)\n squared (%v,%v n=%v Γ=%v r=%v c=%v)",
					got.X, got.H, got.N, got.Gamma, got.ResidualDB, got.Confidence,
					want.X, want.H, want.N, want.Gamma, want.ResidualDB, want.Confidence)
			}
			if got.Downweighted != 0 {
				t.Errorf("huge-delta Huber down-weighted %d observations, want 0", got.Downweighted)
			}
		})
	}
}

// TestIRLSResistsOutliers pins the point of the robust losses: a
// coordinated run of gross outliers that drags the squared fit must
// leave the Huber and Tukey fits close to the clean-trace answer, and
// the estimate must report the suppressed samples.
func TestIRLSResistsOutliers(t *testing.T) {
	x, h := 5.5, 2.0
	obs := synthObs(x, h, -60, 2.2, lPath(4, 4, 0.15), 1.0, rng.New(4))
	// Corrupt ~10% of the samples with a +25 dB hostile run (a nearby
	// interferer or spoofed beacon captured on the target's identity).
	for i := 10; i < len(obs) && i < 10+len(obs)/10; i++ {
		obs[i].RSS += 25
	}

	clean := synthObs(x, h, -60, 2.2, lPath(4, 4, 0.15), 1.0, rng.New(4))
	base, err := Run(clean, DefaultConfig())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	baseErr := math.Hypot(base.X-x, base.H-h)

	for _, loss := range []Loss{LossHuber, LossTukey} {
		cfg := DefaultConfig()
		cfg.Loss = loss
		est, err := Run(obs, cfg)
		if err != nil {
			t.Fatalf("%v run: %v", loss, err)
		}
		robustErr := math.Hypot(est.X-x, est.H-h)
		if robustErr > baseErr+1.5 {
			t.Errorf("%v error %.2f m under outliers, clean baseline %.2f m", loss, robustErr, baseErr)
		}
		if est.Downweighted == 0 {
			t.Errorf("%v reported 0 down-weighted observations despite the outlier run", loss)
		}
	}

	// The squared fit should visibly suffer by comparison — otherwise this
	// test's corruption is too weak to prove anything.
	sq, err := Run(obs, DefaultConfig())
	if err != nil {
		t.Fatalf("squared run on corrupted trace: %v", err)
	}
	if e := math.Hypot(sq.X-x, sq.H-h); e < baseErr+0.3 {
		t.Logf("note: squared-loss error %.2f m barely moved (baseline %.2f m)", e, baseErr)
	}
}

// TestSolverIRLSZeroAlloc pins the robust path's allocation contract:
// once the arenas are warm, the IRLS inner fit and a whole Nelder–Mead
// minimization over it allocate nothing.
func TestSolverIRLSZeroAlloc(t *testing.T) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(1))
	cfg := DefaultConfig()
	cfg.Loss = LossHuber
	cfg.softDefaults()
	s := NewSolver()
	if _, err := s.Run(obs, cfg); err != nil { // warm every arena
		t.Fatalf("warm-up run: %v", err)
	}

	if n := testing.AllocsPerRun(100, func() {
		s.robustFitAt(obs, 3, 1, &cfg)
	}); n != 0 {
		t.Errorf("robustFitAt allocates %v per call, want 0", n)
	}

	f := func(v []float64) float64 {
		_, _, ss, _ := s.robustFitAt(obs, v[0], v[1], &cfg)
		return ss
	}
	if n := testing.AllocsPerRun(50, func() {
		x0 := s.nm.x0[:2]
		x0[0], x0[1] = 3, 1
		s.minimize(f, x0, 1.0, 200, nil)
	}); n != 0 {
		t.Errorf("minimize over robustFitAt allocates %v per call, want 0", n)
	}

	cfg.Loss = LossTukey
	if n := testing.AllocsPerRun(100, func() {
		s.robustFitAt(obs, 3, 1, &cfg)
	}); n != 0 {
		t.Errorf("Tukey robustFitAt allocates %v per call, want 0", n)
	}
}

// TestFitProbeZeroAllocWarm pins the bench-gate probe's contract for
// every loss: one warming call sizes the arenas, then FitProbe is
// allocation-free.
func TestFitProbeZeroAllocWarm(t *testing.T) {
	obs := synthObs(5.5, 2, -60, 2.2, lPath(4, 4, 0.15), 2.0, rng.New(3))
	for _, loss := range []Loss{LossSquared, LossHuber, LossTukey} {
		cfg := DefaultConfig()
		cfg.Loss = loss
		s := NewSolver()
		s.FitProbe(obs, cfg, 3, 1) // warm every arena
		if n := testing.AllocsPerRun(100, func() {
			s.FitProbe(obs, cfg, 3, 1)
		}); n != 0 {
			t.Errorf("%v: warm FitProbe allocates %v per call, want 0", loss, n)
		}
	}
}

// TestParseLoss pins the CLI-facing loss names.
func TestParseLoss(t *testing.T) {
	for name, want := range map[string]Loss{
		"": LossSquared, "squared": LossSquared, "ls": LossSquared, "l2": LossSquared,
		"huber": LossHuber, "tukey": LossTukey, "bisquare": LossTukey,
	} {
		got, err := ParseLoss(name)
		if err != nil || got != want {
			t.Errorf("ParseLoss(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseLoss("cauchy"); err == nil {
		t.Errorf("ParseLoss accepted unknown loss")
	}
	if s := LossHuber.String(); s != "huber" {
		t.Errorf("LossHuber.String() = %q", s)
	}
}

// FuzzIRLS feeds the robust inner fit adversarial observation sets and
// candidate positions: whatever the data, the fit must return finite
// (or cleanly clamped) parameters, a non-negative score, non-negative
// in-range weights, and a down-weight count within bounds.
func FuzzIRLS(f *testing.F) {
	f.Add(int64(1), 12, 3.0, 1.0, false)
	f.Add(int64(2), 8, 0.0, 0.5, true)
	f.Add(int64(99), 40, -4.0, 7.0, false)
	f.Fuzz(func(t *testing.T, seed int64, n int, x, h float64, tukey bool) {
		if n < 2 || n > 256 {
			return
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(h) || math.IsInf(h, 0) {
			return
		}
		if math.Abs(x) > 1e3 || math.Abs(h) > 1e3 {
			return
		}
		src := rng.New(seed)
		obs := make([]Obs, n)
		for i := range obs {
			// Mix of plausible readings, rail values and gross outliers —
			// including identical samples (zero MAD) and constant P/Q runs.
			rss := -60 + src.Normal(0, 10)
			switch i % 7 {
			case 3:
				rss = -20 // hostile impulse
			case 5:
				rss = -99 // near the noise floor
			}
			obs[i] = Obs{
				T:   float64(i) * 0.1,
				RSS: rss,
				P:   src.Normal(0, 2),
				Q:   src.Normal(0, 2),
			}
		}
		cfg := DefaultConfig()
		cfg.Loss = LossHuber
		if tukey {
			cfg.Loss = LossTukey
		}
		cfg.softDefaults()
		s := NewSolver()
		nf, gf, score, down := s.robustFitAt(obs, x, h, &cfg)
		if math.IsNaN(nf) || nf < cfg.NMin || nf > cfg.NMax {
			t.Fatalf("n = %v out of [%v, %v]", nf, cfg.NMin, cfg.NMax)
		}
		if math.IsNaN(gf) || math.IsInf(gf, 0) {
			t.Fatalf("gamma = %v not finite", gf)
		}
		if math.IsNaN(score) || score < 0 {
			t.Fatalf("score = %v, want finite ≥ 0", score)
		}
		if down < 0 || down > n {
			t.Fatalf("down = %d out of [0, %d]", down, n)
		}
		for i, w := range s.w[:n] {
			if math.IsNaN(w) || w < 0 || w > 1 {
				t.Fatalf("weight[%d] = %v, want [0, 1]", i, w)
			}
		}
	})
}
