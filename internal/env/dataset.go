package env

import (
	"locble/internal/ml"
	"locble/internal/rf"
	"locble/internal/rng"
)

// DatasetConfig controls synthetic training-data generation. The paper
// collected labelled traces by placing devices behind varied blocking
// objects and walking; we generate the equivalent traces through the rf
// channel simulator.
type DatasetConfig struct {
	// TracesPerEnv is the number of independent walking traces per class.
	TracesPerEnv int
	// WindowSize is the samples per feature window (≈2 s at ~10 Hz).
	WindowSize int
	// WindowsPerTrace is how many windows each trace contributes.
	WindowsPerTrace int
	// Seed drives the channel randomness.
	Seed int64
}

// DefaultDatasetConfig matches the paper's collection protocol: 2-second
// windows at ~10 Hz.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{TracesPerEnv: 60, WindowSize: 20, WindowsPerTrace: 8, Seed: 99}
}

// BuildDataset synthesizes a labelled window dataset: for each
// environment class, simulated observers walk past a beacon while the
// channel runs in that class; completed windows are featurized and
// labelled.
func BuildDataset(cfg DatasetConfig) (ml.Dataset, [][]float64, []int, error) {
	src := rng.New(cfg.Seed)
	var d ml.Dataset
	var rawWindows [][]float64
	var rawLabels []int
	for _, e := range rf.Environments() {
		for trace := 0; trace < cfg.TracesPerEnv; trace++ {
			ts := src.Split(int64(int(e)*1000 + trace))
			ch := rf.NewChannel(e, rf.EstimoteBeacon, rf.IPhone6s, ts)
			// Random walk: distance meanders between 1.5 and 10 m.
			dist := ts.Uniform(2, 8)
			window := make([]float64, 0, cfg.WindowSize)
			produced := 0
			for produced < cfg.WindowsPerTrace {
				// ~10 Hz sampling while walking at ~1.25 m/s.
				step := ts.Normal(0.125, 0.04)
				dist += step * float64(sign(ts))
				if dist < 1.5 {
					dist = 1.5
				}
				if dist > 10 {
					dist = 10
				}
				rssi := ch.Sample(dist, ch.NextChannel(), absF(step))
				window = append(window, rssi)
				if len(window) == cfg.WindowSize {
					f, err := Features(window)
					if err != nil {
						return ml.Dataset{}, nil, nil, err
					}
					d.X = append(d.X, f)
					d.Y = append(d.Y, Label(e))
					rawWindows = append(rawWindows, append([]float64(nil), window...))
					rawLabels = append(rawLabels, Label(e))
					window = window[:0]
					produced++
				}
			}
		}
	}
	return d, rawWindows, rawLabels, nil
}

func sign(src *rng.Source) int {
	if src.Bool(0.5) {
		return 1
	}
	return -1
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
