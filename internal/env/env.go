// Package env implements EnvAware, LocBLE's environment-recognition
// module (paper Sec. 4.1): RSS readings are segmented into short (1–2 s)
// windows; each window is summarized by a standardized 9-value feature
// vector (mean, variance, skewness, min, Q1, median, Q3, max — the paper
// lists nine statistics; we add the range as the ninth to complete the
// vector); a linear SVM classifies the window as LOS, partial-LOS or
// NLOS; and a change monitor tells the estimation layer when to restart
// its regression.
package env

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"locble/internal/mathx"
	"locble/internal/ml"
	"locble/internal/rf"
)

// NumFeatures is the size of the window feature vector.
const NumFeatures = 9

// ErrWindowTooSmall is returned when a feature window has fewer than
// three samples.
var ErrWindowTooSmall = errors.New("env: window too small")

// Features computes the window feature vector the paper describes
// (Sec. 4.1): the window's mean, variance and skewness, the five direct
// order statistics (min, Q1, median, Q3, max), and the range — nine
// values. Standardization happens at dataset level (the paper
// standardizes the assembled feature vectors), handled by the
// ml.Standardizer fitted during training, so the raw dB statistics are
// preserved here.
func Features(window []float64) ([]float64, error) {
	if len(window) < 3 {
		return nil, fmt.Errorf("%w: %d samples", ErrWindowTooSmall, len(window))
	}
	sorted := append([]float64(nil), window...)
	sort.Float64s(sorted)
	f := []float64{
		mathx.Mean(window),
		mathx.Variance(window),
		mathx.Skewness(window),
		sorted[0],
		mathx.QuantileSorted(sorted, 0.25),
		mathx.QuantileSorted(sorted, 0.5),
		mathx.QuantileSorted(sorted, 0.75),
		sorted[len(sorted)-1],
		sorted[len(sorted)-1] - sorted[0],
	}
	return f, nil
}

// Label maps rf.Environment to the classifier's class index.
func Label(e rf.Environment) int { return int(e) }

// EnvironmentFromLabel is the inverse of Label.
func EnvironmentFromLabel(k int) rf.Environment { return rf.Environment(k) }

// Classifier wraps a trained model plus its feature standardizer.
type Classifier struct {
	model ml.Classifier
	std   *ml.Standardizer
}

// Predict classifies one RSS window.
func (c *Classifier) Predict(window []float64) (rf.Environment, error) {
	f, err := Features(window)
	if err != nil {
		return 0, err
	}
	return EnvironmentFromLabel(c.model.Predict(c.std.Apply(f))), nil
}

// ModelName reports the wrapped model family.
func (c *Classifier) ModelName() string { return c.model.Name() }

// Train fits the standardizer and a linear SVM on a labelled window
// dataset (features not yet standardized).
func Train(d ml.Dataset) (*Classifier, error) {
	std, err := ml.FitStandardizer(d.X)
	if err != nil {
		return nil, err
	}
	sd := ml.Dataset{X: std.ApplyAll(d.X), Y: d.Y}
	svm, err := ml.TrainLinearSVM(sd, ml.DefaultSVMConfig())
	if err != nil {
		return nil, err
	}
	return &Classifier{model: svm, std: std}, nil
}

// TrainWith fits the standardizer and an arbitrary model constructor —
// used by the ensemble comparison (the paper tried SVM kernels, decision
// trees, random forests before settling on the linear SVM).
func TrainWith(d ml.Dataset, fit func(ml.Dataset) (ml.Classifier, error)) (*Classifier, error) {
	std, err := ml.FitStandardizer(d.X)
	if err != nil {
		return nil, err
	}
	sd := ml.Dataset{X: std.ApplyAll(d.X), Y: d.Y}
	model, err := fit(sd)
	if err != nil {
		return nil, err
	}
	return &Classifier{model: model, std: std}, nil
}

// Evaluate runs the classifier over labelled windows and returns the
// confusion matrix.
func (c *Classifier) Evaluate(windows [][]float64, labels []int) (*ml.ConfusionMatrix, error) {
	if len(windows) != len(labels) {
		return nil, errors.New("env: windows/labels length mismatch")
	}
	cm := ml.NewConfusionMatrix(3)
	for i, w := range windows {
		pred, err := c.Predict(w)
		if err != nil {
			return nil, err
		}
		cm.Add(labels[i], int(pred))
	}
	return cm, nil
}

// Monitor watches a stream of RSS samples, classifies each completed
// window, and reports abrupt environment changes so the location layer
// can restart its regression (paper Sec. 4.1: "starts a new regression
// model only if new incoming data shows abrupt environmental changes").
type Monitor struct {
	clf *Classifier
	// WindowSize is the number of samples per classification window
	// (≈2 s of data at the device's report rate).
	WindowSize int
	// Hysteresis is the number of consecutive windows with a new class
	// required before a change is declared (suppresses flicker).
	Hysteresis int

	buf       []float64
	current   rf.Environment
	hasCur    bool
	streak    rf.Environment
	streakLen int
}

// NewMonitor wraps a classifier into a streaming change monitor.
func NewMonitor(clf *Classifier, windowSize, hysteresis int) *Monitor {
	if windowSize < 3 {
		windowSize = 3
	}
	if hysteresis < 1 {
		hysteresis = 1
	}
	return &Monitor{clf: clf, WindowSize: windowSize, Hysteresis: hysteresis}
}

// Push adds one RSS sample. When a window completes it is classified;
// changed is true when the environment class switched (with hysteresis).
func (m *Monitor) Push(rss float64) (env rf.Environment, classified, changed bool, err error) {
	m.buf = append(m.buf, rss)
	if len(m.buf) < m.WindowSize {
		if m.hasCur {
			return m.current, false, false, nil
		}
		return 0, false, false, nil
	}
	pred, err := m.clf.Predict(m.buf)
	m.buf = m.buf[:0]
	if err != nil {
		return 0, false, false, err
	}
	if !m.hasCur {
		m.current = pred
		m.hasCur = true
		return pred, true, false, nil
	}
	if pred == m.current {
		m.streakLen = 0
		return pred, true, false, nil
	}
	if pred == m.streak {
		m.streakLen++
	} else {
		m.streak = pred
		m.streakLen = 1
	}
	if m.streakLen >= m.Hysteresis {
		m.current = pred
		m.streakLen = 0
		return pred, true, true, nil
	}
	return m.current, true, false, nil
}

// Current returns the monitor's current environment class.
func (m *Monitor) Current() (rf.Environment, bool) { return m.current, m.hasCur }

// Reset clears the monitor state.
func (m *Monitor) Reset() {
	m.buf = m.buf[:0]
	m.hasCur = false
	m.streakLen = 0
}

// Save writes the trained classifier (model + standardizer) as JSON. Only
// linear-SVM classifiers are serializable — the pipeline's model.
func (c *Classifier) Save(w io.Writer) error {
	svm, ok := c.model.(*ml.LinearSVM)
	if !ok {
		return fmt.Errorf("env: cannot serialize a %s classifier", c.model.Name())
	}
	return ml.SaveLinearSVM(w, svm, c.std)
}

// Load reads a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	svm, std, err := ml.LoadLinearSVM(r)
	if err != nil {
		return nil, err
	}
	if std == nil {
		return nil, errors.New("env: model file has no standardizer")
	}
	if len(svm.Weights[0]) != NumFeatures {
		return nil, fmt.Errorf("env: model expects %d features, EnvAware uses %d",
			len(svm.Weights[0]), NumFeatures)
	}
	return &Classifier{model: svm, std: std}, nil
}
