package env

import "locble/internal/rf"

// MonitorState is the serializable streaming state of a Monitor: the
// partially filled classification window plus the change-detection
// hysteresis. The classifier itself is not part of the state — it is
// configuration (retrained deterministically or persisted separately via
// Classifier.Save), and a restored monitor must be built around an
// identically trained model for its classifications to continue
// sample-for-sample.
type MonitorState struct {
	Window    []float64      `json:"window"`
	Current   rf.Environment `json:"current"`
	HasCur    bool           `json:"has_current"`
	Streak    rf.Environment `json:"streak"`
	StreakLen int            `json:"streak_len"`
}

// Snapshot captures the monitor's streaming state.
func (m *Monitor) Snapshot() MonitorState {
	return MonitorState{
		Window:    append([]float64(nil), m.buf...),
		Current:   m.current,
		HasCur:    m.hasCur,
		Streak:    m.streak,
		StreakLen: m.streakLen,
	}
}

// Restore puts the monitor back into a snapshotted state. Pushes after
// Restore behave exactly as they would have on the uninterrupted stream.
func (m *Monitor) Restore(st MonitorState) {
	m.buf = append(m.buf[:0], st.Window...)
	m.current = st.Current
	m.hasCur = st.HasCur
	m.streak = st.Streak
	m.streakLen = st.StreakLen
}
