package env

import (
	"bytes"
	"math"
	"testing"

	"locble/internal/ml"
	"locble/internal/rf"
	"locble/internal/rng"
)

func TestFeaturesShape(t *testing.T) {
	w := []float64{-70, -72, -68, -71, -69, -75, -66}
	f, err := Features(w)
	if err != nil {
		t.Fatalf("Features: %v", err)
	}
	if len(f) != NumFeatures {
		t.Fatalf("len = %d, want %d", len(f), NumFeatures)
	}
	// Order statistics must be monotonic min ≤ Q1 ≤ med ≤ Q3 ≤ max.
	for i := 3; i < 7; i++ {
		if f[i] > f[i+1]+1e-12 {
			t.Errorf("order statistics not monotone: f[%d]=%.3f > f[%d]=%.3f", i, f[i], i+1, f[i+1])
		}
	}
	// Range must equal max − min in raw dB.
	if got := f[8]; math.Abs(got-9) > 1e-12 {
		t.Errorf("range = %.3f, want 9", got)
	}
}

func TestFeaturesErrors(t *testing.T) {
	if _, err := Features(nil); err == nil {
		t.Error("want error for empty window")
	}
	if _, err := Features([]float64{1, 2}); err == nil {
		t.Error("want error for 2-sample window")
	}
}

func TestFeaturesShiftEquivariance(t *testing.T) {
	// A constant dB offset shifts the location statistics (mean, order
	// statistics) by exactly that offset and leaves the dispersion/shape
	// statistics (variance, skewness, range) unchanged.
	w := []float64{-70, -72, -68, -71, -69, -75, -66, -73, -70, -71}
	const off = 12.5
	f1, _ := Features(w)
	shifted := make([]float64, len(w))
	for i, v := range w {
		shifted[i] = v + off
	}
	f2, _ := Features(shifted)
	for _, i := range []int{0, 3, 4, 5, 6, 7} {
		if math.Abs((f2[i]-f1[i])-off) > 1e-9 {
			t.Errorf("location feature %d not shift-equivariant: %.6f vs %.6f", i, f1[i], f2[i])
		}
	}
	for _, i := range []int{1, 2, 8} {
		if math.Abs(f2[i]-f1[i]) > 1e-9 {
			t.Errorf("shape feature %d changed under offset: %.6f vs %.6f", i, f1[i], f2[i])
		}
	}
}

func TestTrainAndClassify(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.TracesPerEnv = 60
	d, raw, labels, err := BuildDataset(cfg)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	if len(d.X) != len(raw) || len(raw) != len(labels) {
		t.Fatalf("dataset shapes inconsistent: %d/%d/%d", len(d.X), len(raw), len(labels))
	}
	src := rng.New(5)
	train, test := d.Split(0.3, src)
	clf, err := Train(train)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Rebuild raw windows for the test set is awkward; evaluate on
	// features directly through the model by reusing Evaluate on raw
	// windows with a fresh classifier trained on everything.
	full, err := Train(d)
	if err != nil {
		t.Fatalf("Train full: %v", err)
	}
	cm, err := full.Evaluate(raw, labels)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc := cm.Accuracy(); acc < 0.85 {
		t.Errorf("training-set accuracy = %.3f, want ≥ 0.85\n%s", acc, cm)
	}
	// Held-out accuracy via the split-trained model on feature rows.
	correct := 0
	for i, x := range test.X {
		// Predict through the model directly (features already computed).
		if clf.model.Predict(clf.std.Apply(x)) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test.X)); acc < 0.80 {
		t.Errorf("held-out accuracy = %.3f, want ≥ 0.80", acc)
	}
}

func TestSVMBeatsOrMatchesAlternatives(t *testing.T) {
	// The paper chose the linear SVM because it outperformed the other
	// classifiers in the ensemble. Check it is at least competitive.
	cfg := DefaultDatasetConfig()
	cfg.TracesPerEnv = 30
	d, _, _, err := BuildDataset(cfg)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	src := rng.New(11)
	train, test := d.Split(0.3, src)

	accOf := func(fit func(ml.Dataset) (ml.Classifier, error)) float64 {
		clf, err := TrainWith(train, fit)
		if err != nil {
			t.Fatalf("TrainWith: %v", err)
		}
		correct := 0
		for i, x := range test.X {
			if clf.model.Predict(clf.std.Apply(x)) == test.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(test.X))
	}

	svmAcc := accOf(func(d ml.Dataset) (ml.Classifier, error) {
		return ml.TrainLinearSVM(d, ml.DefaultSVMConfig())
	})
	treeAcc := accOf(func(d ml.Dataset) (ml.Classifier, error) {
		return ml.TrainDecisionTree(d, ml.DefaultTreeConfig())
	})
	if svmAcc < treeAcc-0.08 {
		t.Errorf("SVM (%.3f) clearly worse than decision tree (%.3f)", svmAcc, treeAcc)
	}
	if svmAcc < 0.75 {
		t.Errorf("SVM held-out accuracy = %.3f, want ≥ 0.75", svmAcc)
	}
}

func TestMonitorDetectsChange(t *testing.T) {
	d, _, _, err := BuildDataset(DefaultDatasetConfig())
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	clf, err := Train(d)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	mon := NewMonitor(clf, 20, 1)

	// Feed LOS samples, then switch to NLOS; the monitor should declare a
	// change within a few windows.
	src := rng.New(21)
	chLOS := rf.NewChannel(rf.LOS, rf.EstimoteBeacon, rf.IPhone6s, src.Split(1))
	chNLOS := rf.NewChannel(rf.NLOS, rf.EstimoteBeacon, rf.IPhone6s, src.Split(2))

	feed := func(ch *rf.Channel, n int) (sawChange bool) {
		d := 4.0
		for i := 0; i < n; i++ {
			step := src.Normal(0.12, 0.03)
			d += step
			_, _, changed, err := mon.Push(ch.Sample(d, ch.NextChannel(), math.Abs(step)))
			if err != nil {
				t.Fatalf("Push: %v", err)
			}
			if changed {
				sawChange = true
			}
		}
		return sawChange
	}
	feed(chLOS, 200)
	cur, ok := mon.Current()
	if !ok {
		t.Fatal("monitor never classified")
	}
	if cur != rf.LOS && cur != rf.PLOS {
		t.Errorf("LOS stream classified as %v", cur)
	}
	if !feed(chNLOS, 300) {
		t.Error("monitor never detected the LOS→NLOS change")
	}
	if cur, _ := mon.Current(); cur != rf.NLOS && cur != rf.PLOS {
		t.Errorf("after NLOS stream, current = %v", cur)
	}
}

func TestMonitorReset(t *testing.T) {
	d, _, _, _ := BuildDataset(DatasetConfig{TracesPerEnv: 10, WindowSize: 20, WindowsPerTrace: 4, Seed: 2})
	clf, err := Train(d)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	mon := NewMonitor(clf, 5, 1)
	for i := 0; i < 5; i++ {
		mon.Push(-70 + float64(i))
	}
	if _, ok := mon.Current(); !ok {
		t.Fatal("expected a classification after one full window")
	}
	mon.Reset()
	if _, ok := mon.Current(); ok {
		t.Error("Reset should clear the current class")
	}
}

func TestLabelRoundTrip(t *testing.T) {
	for _, e := range rf.Environments() {
		if got := EnvironmentFromLabel(Label(e)); got != e {
			t.Errorf("round trip %v -> %v", e, got)
		}
	}
}

func TestClassifierPersistence(t *testing.T) {
	d, raw, labels, err := BuildDataset(DatasetConfig{TracesPerEnv: 20, WindowSize: 20, WindowsPerTrace: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := Train(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clf2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded classifier must agree with the original on every window.
	for i, w := range raw {
		p1, err1 := clf.Predict(w)
		p2, err2 := clf2.Predict(w)
		if err1 != nil || err2 != nil || p1 != p2 {
			t.Fatalf("window %d (label %d): predictions diverge after reload", i, labels[i])
		}
	}
	// A tree-based classifier refuses to serialize.
	treeClf, err := TrainWith(d, func(d ml.Dataset) (ml.Classifier, error) {
		return ml.TrainDecisionTree(d, ml.DefaultTreeConfig())
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := treeClf.Save(&bytes.Buffer{}); err == nil {
		t.Error("tree classifier Save should fail")
	}
}

func TestModelName(t *testing.T) {
	d, _, _, _ := BuildDataset(DatasetConfig{TracesPerEnv: 8, WindowSize: 20, WindowsPerTrace: 3, Seed: 6})
	clf, err := Train(d)
	if err != nil {
		t.Fatal(err)
	}
	if clf.ModelName() != "linear-svm" {
		t.Errorf("ModelName = %q", clf.ModelName())
	}
}
