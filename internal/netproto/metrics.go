package netproto

import "locble/internal/obs"

// Wire-level instrumentation, recorded into obs.Default: the transport
// is shared process infrastructure, so its metrics are process-wide.
// One atomic operation per frame / retry / reconnect — nothing in the
// byte-copy paths.
var (
	// metFramesIn / metFramesOut count decoded and encoded frames;
	// the byte counters track payload volume (length prefix excluded).
	metFramesIn  = obs.Default.Counter("netproto.frames.in")
	metFramesOut = obs.Default.Counter("netproto.frames.out")
	metBytesIn   = obs.Default.Counter("netproto.bytes.in")
	metBytesOut  = obs.Default.Counter("netproto.bytes.out")
	// metRetries counts backoff sleeps inside Retry.Do — i.e. failed
	// attempts that were retried, not first attempts.
	metRetries = obs.Default.Counter("netproto.retries")
	// metReconnects counts successful mid-session stream re-dials.
	metReconnects = obs.Default.Counter("netproto.stream.reconnects")
	// metResumeDepth is the distribution of batches replayed when a
	// subscriber resumes an interrupted session (from > 0).
	metResumeDepth = obs.Default.Histogram("netproto.stream.resume_depth",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
)
