package netproto

import "locble/internal/obs"

// Wire-level instrumentation, recorded into obs.Default: the transport
// is shared process infrastructure, so its metrics are process-wide.
// One atomic operation per frame / retry / reconnect — nothing in the
// byte-copy paths.
var (
	// metFramesIn / metFramesOut count decoded and encoded frames;
	// the byte counters track payload volume (length prefix excluded).
	metFramesIn  = obs.Default.Counter("netproto.frames.in")
	metFramesOut = obs.Default.Counter("netproto.frames.out")
	metBytesIn   = obs.Default.Counter("netproto.bytes.in")
	metBytesOut  = obs.Default.Counter("netproto.bytes.out")
	// metRetries counts backoff sleeps inside Retry.Do — i.e. failed
	// attempts that were retried, not first attempts.
	metRetries = obs.Default.Counter("netproto.retries")
	// metReconnects counts successful mid-session stream re-dials.
	metReconnects = obs.Default.Counter("netproto.stream.reconnects")
	// metResumeDepth is the distribution of batches replayed when a
	// subscriber resumes an interrupted session (from > 0).
	metResumeDepth = obs.Default.Histogram("netproto.stream.resume_depth",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	// Lifecycle and overload instrumentation.
	//
	// metConnsActive gauges connections currently being served (its Max
	// is the concurrency high-water mark); metConnsShed counts
	// connections rejected by admission control (cap or token bucket),
	// metConnsEvicted connections cut by the server for lack of
	// progress (watchdog expiry or a write deadline hit by a slow
	// reader).
	metConnsActive  = obs.Default.Gauge("netproto.conns.active")
	metConnsShed    = obs.Default.Counter("netproto.conns.shed")
	metConnsEvicted = obs.Default.Counter("netproto.conns.evicted")
	// metPanicsRecovered counts per-connection handler panics that were
	// isolated to their connection instead of crashing the server.
	metPanicsRecovered = obs.Default.Counter("netproto.panics.recovered")
	// metDrainSeconds is the distribution of graceful-shutdown drain
	// times (listener close → all handlers done).
	metDrainSeconds = obs.Default.Histogram("netproto.drain.seconds",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10})
	// metSubSkips counts live batches skipped because a subscriber's
	// buffer was full (recovered later via resume); metSubsActive
	// gauges live stream subscribers.
	metSubSkips   = obs.Default.Counter("netproto.stream.sub_skips")
	metSubsActive = obs.Default.Gauge("netproto.stream.subs.active")

	// Codec negotiation outcomes (server side): connections negotiated
	// onto the binary codec, connections that explicitly negotiated (or
	// defaulted to) JSON via a hello, and hellos refused — unknown
	// codec, mid-stream hello, or negotiation disabled. Connections
	// that never send a hello (old clients) count nowhere: they are the
	// implicit JSON baseline.
	metCodecBinary   = obs.Default.Counter("netproto.codec.binary")
	metCodecJSON     = obs.Default.Counter("netproto.codec.json")
	metCodecRejected = obs.Default.Counter("netproto.codec.rejected")
	// metCodecFallbacks counts client-side negotiations that fell back
	// to JSON by re-dialing (the server answered the hello with an
	// error, i.e. an old or binary-disabled deployment).
	metCodecFallbacks = obs.Default.Counter("netproto.codec.fallbacks")
	// metPipelineInflight gauges push/drain exchanges written but not
	// yet answered across all pipelined fleet clients; its Max is the
	// realized pipelining depth.
	metPipelineInflight = obs.Default.Gauge("netproto.pipeline.inflight")
)
