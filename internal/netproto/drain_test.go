package netproto

import (
	"context"
	"testing"
	"time"

	"locble/internal/fleet"
	"locble/internal/testutil"
)

// TestDrainOp: the {"op":"drain"} exchange checkpoints-and-evicts every
// session on the server's fleet and reports the count — the wire half
// of the router's planned handoff. The connection survives the exchange
// for reuse.
func TestDrainOp(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, fl := newPushServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()

	var batch []PushObs
	batch = append(batch, toWire(fleet.SynthStream("dn-1", 24, 0.2))...)
	batch = append(batch, toWire(fleet.SynthStream("dn-2", 24, 1.4))...)
	if _, err := cl.Push(ctx, batch); err != nil {
		t.Fatalf("Push: %v", err)
	}
	n, err := cl.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n != 2 {
		t.Fatalf("Drain() = %d, want 2", n)
	}
	if live := fl.Sessions(); live != 0 {
		t.Fatalf("Sessions() = %d after wire drain, want 0", live)
	}
	// The same connection keeps working, and the drained beacon
	// re-admits from its drain checkpoint (the fleet's default MemStore)
	// with Restored set.
	res, err := cl.Push(ctx, toWire(fleet.SynthStream("dn-1", 24, 0.2)))
	if err != nil {
		t.Fatalf("post-drain Push: %v", err)
	}
	if len(res) != 1 || res[0].Err != "" || !res[0].Restored {
		t.Fatalf("post-drain results = %+v, want one Restored result", res)
	}
}

// TestDrainOpNoFleet: a server without a fleet refuses the op with an
// exchange-level error.
func TestDrainOpNoFleet(t *testing.T) {
	srv, err := NewServer("no-fleet-drain", 0)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Drain(ctx); err == nil {
		t.Fatal("Drain on a fleet-less server succeeded, want server error")
	}
}
