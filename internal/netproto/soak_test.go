package netproto

import (
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locble/internal/faults"
	"locble/internal/obs"
	"locble/internal/resilience"
	"locble/internal/sim"
	"locble/internal/testutil"
)

// TestChaosSoak hammers a trace server and a stream server with
// concurrent clients, connection churn, garbage frames, fault-injected
// payloads, and randomly panicking handlers, then shuts both down
// gracefully and asserts nothing crashed, no goroutine leaked, and the
// lifecycle metrics stayed consistent.
//
// The default duration keeps the tier-1 gate fast; `make soak` extends
// it via LOCBLE_SOAK (e.g. LOCBLE_SOAK=30s).
func TestChaosSoak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dur := 800 * time.Millisecond
	if env := os.Getenv("LOCBLE_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("LOCBLE_SOAK=%q: %v", env, err)
		}
		dur = d
	}

	srv, err := NewServerWithConfig("soak", 0, ServerConfig{
		MaxConns:     8,
		Admit:        resilience.NewTokenBucket(400, 32),
		WriteTimeout: 300 * time.Millisecond,
		Logf:         quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBundle(&TraceBundle{
		Device: "soak",
		RSS:    []TimedRSS{{T: 1, RSS: -60}, {T: 2, RSS: -61}},
	})

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()

	// Handlers panic on a small fraction of ops while the chaos runs —
	// each panic must cost exactly one connection.
	var injectedPanics atomic.Int64
	srv.handlerHook = func(op string) {
		if ctx.Err() == nil && rand.Intn(20) == 0 {
			injectedPanics.Add(1)
			panic("soak: injected handler panic")
		}
	}

	stream, err := NewStreamServerWithConfig("soak", 0, ServerConfig{
		MaxConns:     16,
		SubBuffer:    4,
		WriteTimeout: 300 * time.Millisecond,
		Logf:         quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg         sync.WaitGroup
		fetchOK    atomic.Int64
		batchesIn  atomic.Int64
		subRounds  atomic.Int64
		junkRounds atomic.Int64
	)

	// Fetch clients: short per-request deadlines, riding sheds and
	// panics with small retry budgets.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				cctx, ccancel := context.WithTimeout(ctx, 600*time.Millisecond)
				if _, err := FetchWithRetry(cctx, srv.Addr(), Retry{
					MaxAttempts: 3, BaseDelay: 5 * time.Millisecond,
				}); err == nil {
					fetchOK.Add(1)
				}
				ccancel()
			}
		}()
	}

	// Metrics scraper: the observability path shares the serving fate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			cctx, ccancel := context.WithTimeout(ctx, 600*time.Millisecond)
			FetchMetrics(cctx, srv.Addr())
			ccancel()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Garbage client: raw junk frames, oversized length prefixes,
	// half-written frames — none of it may take the server down.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			conn, err := net.DialTimeout("tcp", srv.Addr(), 500*time.Millisecond)
			if err != nil {
				continue
			}
			junkRounds.Add(1)
			conn.SetWriteDeadline(time.Now().Add(300 * time.Millisecond))
			switch rand.Intn(3) {
			case 0: // oversized length prefix
				var hdr [4]byte
				binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
				conn.Write(hdr[:])
			case 1: // non-JSON body
				conn.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef})
			default: // half a frame, then hang up
				conn.Write([]byte{0, 0, 0, 64, 'x'})
			}
			conn.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Publisher: fault-injected RSS batches (drops, duplicates,
	// non-finite values, interference impulses and coordinated outlier
	// runs) through the faults chain — the sanitizer and the wire must
	// hold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		chain := faults.Chain(
			faults.RandomDrop{Prob: 0.2},
			faults.DuplicateReports{Prob: 0.2},
			faults.NonFiniteRSSI{Prob: 0.2},
			faults.ImpulseBurst{Prob: 0.1, DeltaDB: 25},
			faults.OutlierRun{Start: 4, Duration: 4, DeltaDB: 15},
		)
		seed := int64(1)
		for tick := 0; ctx.Err() == nil; tick++ {
			raw := make([]sim.BeaconObservation, 16)
			for i := range raw {
				raw[i] = sim.BeaconObservation{T: float64(tick*16 + i), RSSI: -55 - rand.Float64()*20}
			}
			seed++
			mangled := faults.ApplyRSS(raw, seed, chain)
			batch := make([]TimedRSS, len(mangled))
			for i, o := range mangled {
				batch[i] = TimedRSS{T: o.T, RSS: o.RSSI}
			}
			if err := stream.Publish(batch, nil, false); err != nil {
				return // stream shut down under us: chaos is over
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Churny subscribers: subscribe, consume briefly, vanish, repeat —
	// connection churn with resumption underneath.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				sctx, scancel := context.WithTimeout(ctx,
					time.Duration(50+rand.Intn(200))*time.Millisecond)
				ch, err := Subscribe(sctx, stream.Addr())
				if err == nil {
					for range ch {
						batchesIn.Add(1)
					}
					subRounds.Add(1)
				}
				scancel()
			}
		}()
	}

	<-ctx.Done()
	wg.Wait()

	// The servers survived the chaos: prove liveness, then drain.
	fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer fcancel()
	if _, err := FetchWithRetry(fctx, srv.Addr(), Retry{
		MaxAttempts: 10, BaseDelay: 20 * time.Millisecond,
	}); err != nil {
		t.Errorf("fetch after chaos: %v (server did not survive)", err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Errorf("server Shutdown after chaos = %v", err)
	}
	if err := stream.Shutdown(sctx); err != nil {
		t.Errorf("stream Shutdown after chaos = %v", err)
	}

	// Metric consistency: counters are monotone and non-negative by
	// construction; check the lifecycle set is coherent with the run.
	snap := obs.Default.Snapshot()
	for _, name := range []string{
		"netproto.frames.in", "netproto.frames.out",
		"netproto.conns.shed", "netproto.conns.evicted",
		"netproto.panics.recovered", "netproto.stream.sub_skips",
	} {
		if v, ok := snap.Counters[name]; ok && v < 0 {
			t.Errorf("counter %s = %d, want ≥ 0", name, v)
		}
	}
	if g, ok := snap.Gauges["netproto.conns.active"]; ok && g.Value != 0 {
		t.Errorf("conns.active after shutdown = %d, want 0", g.Value)
	}
	if g, ok := snap.Gauges["netproto.stream.subs.active"]; ok && g.Value != 0 {
		t.Errorf("stream.subs.active after shutdown = %d, want 0", g.Value)
	}
	if fetchOK.Load() == 0 {
		t.Error("no fetch ever succeeded during the soak")
	}
	t.Logf("soak %v: fetches=%d batches=%d subscriberRounds=%d junk=%d injectedPanics=%d shed=%d evicted=%d skips=%d",
		dur, fetchOK.Load(), batchesIn.Load(), subRounds.Load(), junkRounds.Load(),
		injectedPanics.Load(), metConnsShed.Value(), metConnsEvicted.Value(), stream.SubscriberSkips())
}
