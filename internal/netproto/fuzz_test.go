package netproto

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: truncated
// headers, oversized length prefixes, short bodies, malformed JSON. The
// decoder must never panic, and anything it accepts must re-encode.
func FuzzReadFrame(f *testing.F) {
	frame := func(body []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}

	// A valid bundle frame.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, testBundle()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})                             // empty input
	f.Add([]byte{0x00, 0x00})                   // truncated header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // oversized length prefix
	f.Add(frame(nil))                           // zero-length body
	f.Add(frame([]byte(`{"device":`)))          // malformed JSON
	f.Add(frame([]byte(`{"rss":[{"t":"x"}]}`))) // wrong field type
	f.Add(frame([]byte(`[1,2,3]`)))             // wrong top-level type
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated body

	f.Fuzz(func(t *testing.T, data []byte) {
		var b TraceBundle
		if err := ReadFrame(bytes.NewReader(data), &b); err != nil {
			return
		}
		// Accepted frames must survive a round trip: JSON cannot have
		// smuggled in anything WriteFrame refuses to encode.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &b); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		var again TraceBundle
		if err := ReadFrame(&buf, &again); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
	})
}

// FuzzBinaryFrame feeds arbitrary bytes to every locb1 frame decoder as
// one tagged body (the shape that arrives off the wire after the length
// prefix). The decoders must never panic and never read outside the
// body — forged counts, truncated floats, out-of-range intern
// references, and trailing garbage are all rejected with errors.
// Anything accepted must survive a semantic round trip through the
// canonical encoder (the re-encoded bytes may differ — the encoder
// interns canonically — but the decoded values must not).
func FuzzBinaryFrame(f *testing.F) {
	obs := []PushObs{
		{Beacon: "kitchen-tag", T: 1.25, RSS: -61.5, P: 0.1, Q: -0.2},
		{Beacon: "door-tag", T: 2.25, RSS: -72.5, P: 0.3, Q: 0.4},
		{Beacon: "kitchen-tag", T: 3.25, RSS: -62, P: 0.5, Q: 0.6},
	}
	var enc BinaryPushEncoder
	f.Add(append([]byte{}, enc.Encode(obs)[4:]...)) // tagged push-req body
	res := PushResult{Beacon: "kitchen-tag", Created: true, Fixes: []PushFix{
		{T: 1, X: 2.5, Y: -0.5, N: 2.1, Gamma: 0.9, Confidence: 0.8, Mode: "near", Samples: 12},
	}}
	f.Add(appendPushResult(nil, &res))
	f.Add(appendStreamBatch(nil, &StreamBatch{
		Seq: 7, Final: true,
		RSS:    []TimedRSS{{T: 0.5, RSS: -70, Chan: 38}},
		Motion: []MotionPoint{{T: 0.5, X: 1.5, Y: -2.5}},
	}))
	f.Add(appendError(nil, "overloaded"))
	f.Add(appendPushDone(nil, 3))
	f.Add([]byte{})                       // empty body
	f.Add([]byte{bfPushReq})              // missing count
	f.Add([]byte{bfPushReq, 0x01, 0x05})  // count promises more than present
	f.Add([]byte{bfPushResult, 0xFF})     // string length past the end
	f.Add([]byte{bfStreamBatch, 1, 0, 2}) // forged RSS count
	f.Add([]byte{0x7F, 1, 2, 3})          // unknown tag

	f64eq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	fixEq := func(a, b PushFix) bool {
		return f64eq(a.T, b.T) && f64eq(a.X, b.X) && f64eq(a.Y, b.Y) &&
			f64eq(a.N, b.N) && f64eq(a.Gamma, b.Gamma) && f64eq(a.Confidence, b.Confidence) &&
			a.Mode == b.Mode && a.Samples == b.Samples
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case bfPushReq:
			obs, _, err := decodePushReq(body[1:], nil, nil)
			if err != nil {
				return
			}
			var e BinaryPushEncoder
			var d BinaryPushDecoder
			again, err := d.Decode(e.Encode(obs))
			if err != nil {
				t.Fatalf("accepted push-req failed to round-trip: %v", err)
			}
			if len(again) != len(obs) {
				t.Fatalf("round trip changed batch size: %d -> %d", len(obs), len(again))
			}
			for i := range obs {
				if obs[i].Beacon != again[i].Beacon || !f64eq(obs[i].T, again[i].T) ||
					!f64eq(obs[i].RSS, again[i].RSS) || !f64eq(obs[i].P, again[i].P) ||
					!f64eq(obs[i].Q, again[i].Q) {
					t.Fatalf("obs %d changed in round trip: %+v -> %+v", i, obs[i], again[i])
				}
			}
		case bfPushResult:
			var r PushResult
			if decodePushResult(body[1:], &r) != nil {
				return
			}
			re := appendPushResult(nil, &r)
			var r2 PushResult
			if err := decodePushResult(re[1:], &r2); err != nil {
				t.Fatalf("accepted push-result failed to round-trip: %v", err)
			}
			if r.Beacon != r2.Beacon || r.Created != r2.Created || r.Restored != r2.Restored ||
				r.Quarantined != r2.Quarantined || r.Err != r2.Err || len(r.Fixes) != len(r2.Fixes) {
				t.Fatalf("result changed in round trip: %+v -> %+v", r, r2)
			}
			for i := range r.Fixes {
				if !fixEq(r.Fixes[i], r2.Fixes[i]) {
					t.Fatalf("fix %d changed in round trip: %+v -> %+v", i, r.Fixes[i], r2.Fixes[i])
				}
			}
		case bfStreamBatch:
			var b StreamBatch
			if decodeStreamBatch(body[1:], &b) != nil {
				return
			}
			re := appendStreamBatch(nil, &b)
			var b2 StreamBatch
			if err := decodeStreamBatch(re[1:], &b2); err != nil {
				t.Fatalf("accepted stream batch failed to round-trip: %v", err)
			}
			if b.Seq != b2.Seq || b.Final != b2.Final || b.Draining != b2.Draining ||
				len(b.RSS) != len(b2.RSS) || len(b.Motion) != len(b2.Motion) {
				t.Fatalf("batch changed in round trip: %+v -> %+v", b, b2)
			}
			for i := range b.RSS {
				if !f64eq(b.RSS[i].T, b2.RSS[i].T) || !f64eq(b.RSS[i].RSS, b2.RSS[i].RSS) || b.RSS[i].Chan != b2.RSS[i].Chan {
					t.Fatalf("RSS %d changed in round trip: %+v -> %+v", i, b.RSS[i], b2.RSS[i])
				}
			}
			for i := range b.Motion {
				if !f64eq(b.Motion[i].T, b2.Motion[i].T) || !f64eq(b.Motion[i].X, b2.Motion[i].X) || !f64eq(b.Motion[i].Y, b2.Motion[i].Y) {
					t.Fatalf("motion %d changed in round trip: %+v -> %+v", i, b.Motion[i], b2.Motion[i])
				}
			}
		case bfError:
			r := binReader{b: body[1:]}
			msg := r.str()
			if r.done() == nil && msg == "" && len(body) > 1 {
				// An empty accepted message can only come from a one-byte
				// zero-length encoding.
				if body[1] != 0 {
					t.Fatalf("empty message decoded from %x", body)
				}
			}
		case bfPushDone:
			r := binReader{b: body[1:]}
			_ = r.intu()
			_ = r.done()
		}
	})
}
