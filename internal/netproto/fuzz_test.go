package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: truncated
// headers, oversized length prefixes, short bodies, malformed JSON. The
// decoder must never panic, and anything it accepts must re-encode.
func FuzzReadFrame(f *testing.F) {
	frame := func(body []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}

	// A valid bundle frame.
	var valid bytes.Buffer
	if err := WriteFrame(&valid, testBundle()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})                             // empty input
	f.Add([]byte{0x00, 0x00})                   // truncated header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // oversized length prefix
	f.Add(frame(nil))                           // zero-length body
	f.Add(frame([]byte(`{"device":`)))          // malformed JSON
	f.Add(frame([]byte(`{"rss":[{"t":"x"}]}`))) // wrong field type
	f.Add(frame([]byte(`[1,2,3]`)))             // wrong top-level type
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated body

	f.Fuzz(func(t *testing.T, data []byte) {
		var b TraceBundle
		if err := ReadFrame(bytes.NewReader(data), &b); err != nil {
			return
		}
		// Accepted frames must survive a round trip: JSON cannot have
		// smuggled in anything WriteFrame refuses to encode.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &b); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		var again TraceBundle
		if err := ReadFrame(&buf, &again); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
	})
}
