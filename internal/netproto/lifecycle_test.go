package netproto

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"locble/internal/resilience"
	"locble/internal/testutil"
)

// quietLogf silences supervision reports in tests that inject failures
// on purpose.
func quietLogf(string, ...any) {}

// rawFetch drives one fetch exchange over an already-open connection.
func rawFetch(t *testing.T, conn net.Conn, br *bufio.Reader) TraceBundle {
	t.Helper()
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if err := WriteFrame(conn, map[string]string{"op": "fetch"}); err != nil {
		t.Fatalf("write fetch: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b TraceBundle
	if err := ReadFrame(br, &b); err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	return b
}

// TestServerRecoversHandlerPanic: a panic inside a connection handler
// must close only that connection — the server keeps serving and the
// process-wide panic counter records the recovery.
func TestServerRecoversHandlerPanic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewServerWithConfig("tgt", 0, ServerConfig{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())

	var calls atomic.Int32
	srv.handlerHook = func(op string) {
		if calls.Add(1) == 1 {
			panic("poisoned frame")
		}
	}

	before := metPanicsRecovered.Value()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The first attempt dies on the panicking handler; the retry gets a
	// healthy one.
	b, err := FetchWithRetry(ctx, srv.Addr(), Retry{
		MaxAttempts: 4, BaseDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Fetch after handler panic: %v", err)
	}
	if b.Device != "target-phone" {
		t.Errorf("fetched %+v", b)
	}
	if got := metPanicsRecovered.Value() - before; got < 1 {
		t.Errorf("panics.recovered delta = %d, want ≥1", got)
	}
}

// TestStreamServerRecoversHandlerPanic: same isolation for the stream
// server's per-subscriber goroutine.
func TestStreamServerRecoversHandlerPanic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewStreamServerWithConfig("tgt", 0, ServerConfig{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var calls atomic.Int32
	srv.subscribeHook = func(subscribeReq) {
		if calls.Add(1) == 1 {
			panic("poisoned hello")
		}
	}
	srv.Publish([]TimedRSS{{T: 1, RSS: -60}}, nil, true)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The first subscribe dies on the panic; Subscribe's reconnect gets
	// a healthy handler and replays the session.
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var got []StreamBatch
	for b := range ch {
		got = append(got, b)
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("batches after panic recovery = %+v, want the one published", got)
	}
	if calls.Load() < 2 {
		t.Errorf("subscribe attempts = %d, want ≥2 (one panicked)", calls.Load())
	}
}

// TestServerShedsOverConnCap: connections beyond MaxConns are rejected
// with a typed overload error, and the slot frees once the holder leaves.
func TestServerShedsOverConnCap(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewServerWithConfig("tgt", 0, ServerConfig{MaxConns: 1, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())

	// Occupy the single slot with a live exchange.
	hold, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	rawFetch(t, hold, bufio.NewReader(hold))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	shedBefore := metConnsShed.Value()
	if _, err := FetchWithRetry(ctx, srv.Addr(), Retry{MaxAttempts: 1}); !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("fetch over cap = %v, want ErrOverloaded", err)
	}
	if metConnsShed.Value() <= shedBefore {
		t.Error("conns.shed did not increase")
	}

	// Freeing the slot restores service.
	hold.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := FetchWithRetry(ctx2, srv.Addr(), Retry{
		MaxAttempts: 8, BaseDelay: 20 * time.Millisecond,
	}); err != nil {
		t.Fatalf("fetch after slot freed: %v", err)
	}
}

// TestServerTokenBucketAdmission: an empty token bucket sheds the
// connection even under the connection cap.
func TestServerTokenBucketAdmission(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewServerWithConfig("tgt", 0, ServerConfig{
		Admit: resilience.NewTokenBucket(1, 1), Logf: quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := FetchWithRetry(ctx, srv.Addr(), Retry{MaxAttempts: 1}); err != nil {
		t.Fatalf("first fetch (burst token): %v", err)
	}
	if _, err := FetchWithRetry(ctx, srv.Addr(), Retry{MaxAttempts: 1}); !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("second immediate fetch = %v, want ErrOverloaded", err)
	}
}

// TestServerShutdownDrains: a graceful shutdown completes the in-flight
// exchange, wakes parked handlers, refuses new connections, and is
// idempotent.
func TestServerShutdownDrains(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewServerWithConfig("tgt", 0, ServerConfig{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBundle(testBundle())

	// A client with a completed exchange keeps its connection open: its
	// handler is parked in the next frame read.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rawFetch(t, conn, bufio.NewReader(conn))

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v, want nil (clean drain)", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("clean drain took %v; parked handler was not woken", d)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown = %v, want nil", err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), 500*time.Millisecond); err == nil {
		t.Error("dial after Shutdown succeeded, want refused")
	}
}

// TestServerShutdownForcesOnDeadline: when the drain deadline passes,
// Shutdown force-closes the stragglers and reports the context error.
func TestServerShutdownForcesOnDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewServerWithConfig("tgt", 0, ServerConfig{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBundle(testBundle())
	release := make(chan struct{})
	srv.handlerHook = func(string) {
		select {
		case <-release:
		case <-time.After(3 * time.Second):
		}
	}
	defer close(release)

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	if err := WriteFrame(conn, map[string]string{"op": "fetch"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the handler enter the stall

	// Release the stalled handler shortly after the drain deadline so
	// the forced shutdown can finish waiting for it.
	go func() {
		time.Sleep(300 * time.Millisecond)
		select {
		case release <- struct{}{}:
		default:
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
}

// TestServerWatchdogEvictsStalledConn: a handler stalled outside conn
// I/O is evicted by the per-connection watchdog.
func TestServerWatchdogEvictsStalledConn(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewServerWithConfig("tgt", 0, ServerConfig{
		IdleTimeout: 80 * time.Millisecond, Logf: quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())
	stalled := make(chan struct{})
	srv.handlerHook = func(string) {
		close(stalled)
		time.Sleep(400 * time.Millisecond) // stall well past IdleTimeout
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	evictedBefore := metConnsEvicted.Value()
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	if err := WriteFrame(conn, map[string]string{"op": "fetch"}); err != nil {
		t.Fatal(err)
	}
	<-stalled
	// The eviction closes the conn under the stalled handler; the client
	// sees EOF rather than a bundle.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b TraceBundle
	if err := ReadFrame(bufio.NewReader(conn), &b); err == nil {
		t.Fatal("read succeeded, want eviction-closed connection")
	}
	if metConnsEvicted.Value() <= evictedBefore {
		t.Error("conns.evicted did not increase")
	}
}

// TestStreamShutdownSendsDrainingFrame: a live subscriber receives a
// terminal Final+Draining batch when the server shuts down mid-session,
// then a clean channel close.
func TestStreamShutdownSendsDrainingFrame(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewStreamServerWithConfig("tgt", 0, ServerConfig{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Publish([]TimedRSS{{T: 1, RSS: -60}}, nil, false); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if first.Seq != 1 {
		t.Fatalf("first batch = %+v", first)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	term, ok := <-ch
	if !ok {
		t.Fatal("stream closed without a terminal batch")
	}
	if !term.Final || !term.Draining || term.Seq != 2 {
		t.Fatalf("terminal batch = %+v, want Final+Draining seq 2", term)
	}
	if _, ok := <-ch; ok {
		t.Error("batches after the terminal draining frame")
	}
	if err := srv.Publish(nil, nil, false); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Publish after Shutdown = %v, want ErrStreamClosed", err)
	}
}

// TestStreamServerShedsOverCap: subscriber connections beyond MaxConns
// receive the overloaded frame and are closed.
func TestStreamServerShedsOverCap(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewStreamServerWithConfig("tgt", 0, ServerConfig{MaxConns: 1, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hold, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	// Wait until the holder is registered (admission happens at accept).
	deadline := time.Now().Add(2 * time.Second)
	for srv.conns.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder connection never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	over, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	over.SetWriteDeadline(time.Now().Add(time.Second))
	if err := WriteFrame(over, subscribeReq{Op: "subscribe"}); err != nil {
		t.Fatal(err)
	}
	over.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp map[string]string
	if err := ReadFrame(bufio.NewReader(over), &resp); err != nil {
		t.Fatalf("read shed frame: %v", err)
	}
	if resp["error"] != "overloaded" {
		t.Fatalf("shed frame = %v, want overloaded", resp)
	}
}

// TestRetryBreakerFailsFast: after a shared breaker opens on repeated
// fetch failures, further fetches through it fail fast without dialing.
func TestRetryBreakerFailsFast(t *testing.T) {
	br := resilience.NewBreaker(resilience.BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, OpenTimeout: time.Minute,
	})
	policy := Retry{MaxAttempts: 2, BaseDelay: time.Millisecond, Breaker: br}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Two real attempts against a dead port trip the breaker.
	if _, err := FetchWithRetry(ctx, "127.0.0.1:1", policy); err == nil {
		t.Fatal("fetch from dead port succeeded")
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v, want open", br.State())
	}
	start := time.Now()
	_, err := FetchWithRetry(ctx, "127.0.0.1:1", policy)
	if !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("fetch through open breaker = %v, want ErrCircuitOpen", err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("fail-fast took %v", time.Since(start))
	}
}

// TestStreamSlowSubscriberSkipsAndResumes: a subscriber that stops
// reading has live batches skipped (counted, not lost) and a later
// subscription recovers every batch from the history.
func TestStreamSlowSubscriberSkipsAndResumes(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, err := NewStreamServerWithConfig("tgt", 0, ServerConfig{
		SubBuffer: 1, WriteTimeout: 150 * time.Millisecond, Logf: quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The slow subscriber: subscribes, then never reads. Batches are
	// bulky so the socket buffers fill and the server's writes stall,
	// backing up into the 1-slot live buffer.
	slow, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slow.SetWriteDeadline(time.Now().Add(time.Second))
	if err := WriteFrame(slow, subscribeReq{Op: "subscribe"}); err != nil {
		t.Fatal(err)
	}
	// Registration is asynchronous: publishing before the server has
	// processed the subscribe frame broadcasts to nobody and nothing
	// would ever be skipped.
	waitDeadline := time.Now().Add(5 * time.Second)
	for srv.Subscribers() == 0 {
		if time.Now().After(waitDeadline) {
			t.Fatal("slow subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	bulk := make([]TimedRSS, 8192)
	for i := range bulk {
		bulk[i] = TimedRSS{T: float64(i), RSS: -60}
	}
	published := 0
	for i := 0; i < 64 && srv.SubscriberSkips() == 0; i++ {
		if err := srv.Publish(bulk, nil, false); err != nil {
			t.Fatal(err)
		}
		published++
	}
	if srv.SubscriberSkips() == 0 {
		t.Fatalf("no batches skipped after %d bulky publishes to a stuck subscriber", published)
	}
	if err := srv.Publish(nil, nil, true); err != nil {
		t.Fatal(err)
	}
	published++

	// A fresh subscription replays the history: nothing was lost.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	next := 1
	for b := range ch {
		if b.Seq != next {
			t.Fatalf("replay seq %d, want %d (gap after skips)", b.Seq, next)
		}
		next++
	}
	if next-1 != published {
		t.Fatalf("replayed %d batches, want %d", next-1, published)
	}
}
