package netproto

import (
	"context"
	"encoding/binary"
	"io"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestFetchFlakyListener: the target's server is slow to come up — the
// first connections are accepted and dropped on the floor. Fetch must
// ride it out with backoff and still return the bundle within the
// context deadline.
func TestFetchFlakyListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var conns atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if conns.Add(1) <= 2 {
				conn.Close() // flaky phase: drop without answering
				continue
			}
			go func() {
				defer conn.Close()
				var req struct {
					Op string `json:"op"`
				}
				if err := ReadFrame(conn, &req); err != nil || req.Op != "fetch" {
					return
				}
				WriteFrame(conn, testBundle())
			}()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b, err := Fetch(ctx, ln.Addr().String())
	if err != nil {
		t.Fatalf("Fetch through flaky listener: %v", err)
	}
	if b.Device != "target-phone" || len(b.RSS) != 2 {
		t.Errorf("fetched %+v", b)
	}
	if n := conns.Load(); n < 3 {
		t.Errorf("listener saw %d connections, want ≥3 (two dropped)", n)
	}
}

func TestFetchRetryExhaustion(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, err := FetchWithRetry(ctx, "127.0.0.1:1", Retry{
		MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if time.Since(start) > time.Second {
		t.Errorf("3 short-backoff attempts took %v", time.Since(start))
	}
}

func TestRetryDelayBounds(t *testing.T) {
	r := Retry{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Jitter: 0.5, Rand: func() float64 { return 1 }}
	for n, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		4: 800 * time.Millisecond,
		9: time.Second, // capped
	} {
		if got := r.Delay(n); got != want {
			t.Errorf("Delay(%d) = %v, want %v", n, got, want)
		}
	}
	// Jitter = 0.5 with Rand → 0 halves each delay.
	r.Rand = func() float64 { return 0 }
	if got := r.Delay(1); got != 50*time.Millisecond {
		t.Errorf("fully jittered-down Delay(1) = %v", got)
	}
}

// flakyStreamProxy fronts a stream server. The first connection is
// killed after forwarding exactly one server→client frame (simulating a
// link drop mid-stream); later connections forward transparently.
type flakyStreamProxy struct {
	ln     net.Listener
	target string
	conns  atomic.Int32
}

func newFlakyStreamProxy(t *testing.T, target string) *flakyStreamProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyStreamProxy{ln: ln, target: target}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *flakyStreamProxy) Addr() string { return p.ln.Addr().String() }

func (p *flakyStreamProxy) serve() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		go p.forward(client, n == 1)
	}
}

func (p *flakyStreamProxy) forward(client net.Conn, killAfterOneFrame bool) {
	defer client.Close()
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer server.Close()
	go io.Copy(server, client) // hello frame upstream
	if !killAfterOneFrame {
		io.Copy(client, server)
		return
	}
	// Forward one length-prefixed frame, then cut the link.
	var hdr [4]byte
	if _, err := io.ReadFull(server, hdr[:]); err != nil {
		return
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(server, body); err != nil {
		return
	}
	client.Write(hdr[:])
	client.Write(body)
}

// TestStreamReconnectResume: the link drops after the first batch. The
// subscriber must reconnect, resume from the last sequence number it
// holds, and deliver the rest of the session exactly once.
func TestStreamReconnectResume(t *testing.T) {
	srv, err := NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Two batches already in the session history before the subscriber
	// arrives: resumption replays them.
	for i := 1; i <= 2; i++ {
		if err := srv.Publish([]TimedRSS{{T: float64(i), RSS: -60 - float64(i)}}, nil, false); err != nil {
			t.Fatal(err)
		}
	}

	proxy := newFlakyStreamProxy(t, srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}

	var got []StreamBatch
	for b := range ch {
		got = append(got, b)
		if b.Seq == 2 {
			// The subscriber is live on the reconnected link; finish the
			// session.
			if err := srv.Publish([]TimedRSS{{T: 3, RSS: -63}}, nil, true); err != nil {
				t.Fatal(err)
			}
		}
	}

	if len(got) != 3 {
		t.Fatalf("received %d batches, want 3: %+v", len(got), got)
	}
	for i, b := range got {
		if b.Seq != i+1 {
			t.Errorf("batch %d has seq %d (duplicate or gap after resume)", i, b.Seq)
		}
	}
	if !got[2].Final {
		t.Error("last batch should be final")
	}
	if n := proxy.conns.Load(); n < 2 {
		t.Errorf("proxy saw %d connections, want ≥2 (one reconnect)", n)
	}
}

// TestStreamReplayAfterFinal: a subscriber arriving after the session
// ended still receives the full history (replay-only serving).
func TestStreamReplayAfterFinal(t *testing.T) {
	srv, err := NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Publish([]TimedRSS{{T: 1, RSS: -61}}, nil, false)
	srv.Publish([]TimedRSS{{T: 2, RSS: -62}}, nil, true)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	for b := range ch {
		seqs = append(seqs, b.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("late subscriber replay = %v, want [1 2]", seqs)
	}
}

// TestStreamPublishSanitizesNonFinite: NaN/Inf readings must be dropped
// at the wire boundary — JSON cannot carry them, and a subscriber must
// never see one.
func TestStreamPublishSanitizesNonFinite(t *testing.T) {
	srv, err := NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	nan := math.NaN()
	srv.Publish([]TimedRSS{
		{T: 1, RSS: -61},
		{T: 2, RSS: nan},
		{T: nan, RSS: -63},
	}, []MotionPoint{{T: 1, X: nan, Y: 0}, {T: 2, X: 1, Y: 0}}, true)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b, ok := <-ch
	if !ok {
		t.Fatal("no batch delivered")
	}
	if len(b.RSS) != 1 || b.RSS[0].RSS != -61 {
		t.Errorf("poisoned RSS survived the wire: %+v", b.RSS)
	}
	if len(b.Motion) != 1 || b.Motion[0].X != 1 {
		t.Errorf("poisoned motion survived the wire: %+v", b.Motion)
	}
	for range ch {
	}
}
