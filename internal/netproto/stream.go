package netproto

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Streaming extends the bundle exchange with a live mode: during a
// continuous tracking session the target pushes (RSS, motion) batches as
// they are produced instead of one bundle at the end — what the
// observer's sliding-window tracker consumes. The wire format reuses the
// length-prefixed JSON frames.

// StreamBatch is one live update from the target.
type StreamBatch struct {
	Seq    int           `json:"seq"`
	RSS    []TimedRSS    `json:"rss,omitempty"`
	Motion []MotionPoint `json:"motion,omitempty"`
	// Final marks the last batch of the session.
	Final bool `json:"final,omitempty"`
}

// ErrStreamClosed is returned after the stream has been closed.
var ErrStreamClosed = errors.New("netproto: stream closed")

// StreamServer publishes live batches to any number of subscribers.
type StreamServer struct {
	DeviceName string

	ln net.Listener

	mu     sync.Mutex
	subs   map[net.Conn]chan StreamBatch
	seq    int
	closed bool

	wg sync.WaitGroup
}

// NewStreamServer starts a live-stream publisher on loopback (port 0 for
// ephemeral).
func NewStreamServer(device string, port int) (*StreamServer, error) {
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("netproto: stream listen: %w", err)
	}
	s := &StreamServer{
		DeviceName: device,
		ln:         ln,
		subs:       make(map[net.Conn]chan StreamBatch),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the TCP address subscribers dial.
func (s *StreamServer) Addr() string { return s.ln.Addr().String() }

func (s *StreamServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		ch := make(chan StreamBatch, 64)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.subs[conn] = ch
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn, ch)
	}
}

func (s *StreamServer) serve(conn net.Conn, ch chan StreamBatch) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.subs, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for b := range ch {
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if err := WriteFrame(conn, b); err != nil {
			return
		}
		if b.Final {
			return
		}
	}
}

// Publish sends one batch to every current subscriber. Slow subscribers
// whose buffers are full are skipped (live data has no value late).
func (s *StreamServer) Publish(rss []TimedRSS, motion []MotionPoint, final bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStreamClosed
	}
	s.seq++
	b := StreamBatch{Seq: s.seq, RSS: rss, Motion: motion, Final: final}
	for _, ch := range s.subs {
		select {
		case ch <- b:
		default: // drop for this subscriber
		}
	}
	if final {
		s.closed = true
		for _, ch := range s.subs {
			close(ch)
		}
		s.subs = map[net.Conn]chan StreamBatch{}
	}
	return nil
}

// Close shuts the server down.
func (s *StreamServer) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, ch := range s.subs {
			close(ch)
		}
		s.subs = map[net.Conn]chan StreamBatch{}
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	return nil
}

// Subscribe dials a StreamServer and delivers batches to the returned
// channel until the stream ends, the context is cancelled, or an error
// occurs. The channel is closed when the subscription ends.
func Subscribe(ctx context.Context, addr string) (<-chan StreamBatch, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	out := make(chan StreamBatch, 16)
	go func() {
		defer close(out)
		defer conn.Close()
		br := bufio.NewReader(conn)
		for {
			if dl, ok := ctx.Deadline(); ok {
				conn.SetReadDeadline(dl)
			} else {
				conn.SetReadDeadline(time.Now().Add(30 * time.Second))
			}
			var b StreamBatch
			if err := ReadFrame(br, &b); err != nil {
				return
			}
			select {
			case out <- b:
			case <-ctx.Done():
				return
			}
			if b.Final {
				return
			}
		}
	}()
	return out, nil
}
