package netproto

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"locble/internal/resilience"
)

// Streaming extends the bundle exchange with a live mode: during a
// continuous tracking session the target pushes (RSS, motion) batches as
// they are produced instead of one bundle at the end — what the
// observer's sliding-window tracker consumes. The wire format reuses the
// length-prefixed JSON frames.
//
// Every batch carries a sequence number and the server retains the
// session's history, so the stream is resumable: a subscriber opens with
// {"op":"subscribe","from":N} and the server replays everything after
// batch N before going live. Subscribe reconnects automatically when the
// TCP connection drops mid-session, resuming from the last batch it
// delivered instead of losing the measurement.

// StreamBatch is one live update from the target.
type StreamBatch struct {
	Seq    int           `json:"seq"`
	RSS    []TimedRSS    `json:"rss,omitempty"`
	Motion []MotionPoint `json:"motion,omitempty"`
	// Final marks the last batch of the session.
	Final bool `json:"final,omitempty"`
	// Draining marks a terminal batch emitted because the server is
	// shutting down rather than because the measurement ended. A
	// consumer that sees it can checkpoint and re-subscribe to the
	// restarted server with its last sequence number.
	Draining bool `json:"draining,omitempty"`
}

// subscribeReq is the hello frame a subscriber sends on connect. From is
// the last sequence number it already holds (0 for a fresh session).
type subscribeReq struct {
	Op   string `json:"op"`
	From int    `json:"from"`
}

// ErrStreamClosed is returned after the stream has been closed.
var ErrStreamClosed = errors.New("netproto: stream closed")

// StreamIdleTimeout is how long a subscriber waits for the next batch
// before treating the connection as dead (and reconnecting).
var StreamIdleTimeout = 30 * time.Second

// StreamServer publishes live batches to any number of subscribers and
// retains the session history for resumption.
type StreamServer struct {
	DeviceName string

	cfg ServerConfig
	ln  net.Listener

	mu      sync.Mutex
	subs    map[net.Conn]chan StreamBatch
	history []StreamBatch
	seq     int
	closed  bool // final published or Close called; history still served

	conns *connTable

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopped  chan struct{}

	skips atomic.Int64

	// subscribeHook, if set, observes every accepted subscribe request.
	// Tests inject panics through it; it must be set before the first
	// subscriber arrives.
	subscribeHook func(req subscribeReq)
}

// NewStreamServer starts a live-stream publisher on loopback (port 0 for
// ephemeral) with the default lifecycle config.
func NewStreamServer(device string, port int) (*StreamServer, error) {
	return NewStreamServerWithConfig(device, port, ServerConfig{})
}

// NewStreamServerWithConfig is NewStreamServer with explicit lifecycle
// and overload controls.
func NewStreamServerWithConfig(device string, port int, cfg ServerConfig) (*StreamServer, error) {
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("netproto: stream listen: %w", err)
	}
	s := &StreamServer{
		DeviceName: device,
		cfg:        cfg.withDefaults(),
		ln:         ln,
		subs:       make(map[net.Conn]chan StreamBatch),
		conns:      newConnTable(),
		stopped:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the TCP address subscribers dial.
func (s *StreamServer) Addr() string { return s.ln.Addr().String() }

// SubscriberSkips returns how many live batches were skipped because a
// subscriber's buffer was full. Skipped batches stay in the history, so
// the subscriber recovers them on resume.
func (s *StreamServer) SubscriberSkips() int64 { return s.skips.Load() }

// Subscribers returns how many subscribers are currently registered for
// live batches. A subscriber counts from the moment its subscribe frame
// has been accepted, so a publisher can wait for listeners before
// pushing data it does not want replayed from history.
func (s *StreamServer) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

func (s *StreamServer) accept() {
	defer s.wg.Done()
	sup := &resilience.Supervisor{Name: "netproto.stream.accept", Logf: s.cfg.Logf}
	sup.Run(context.Background(), func(context.Context) error {
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				select {
				case <-s.stopped:
					return nil
				default:
					return err // supervisor restarts the loop
				}
			}
			if !s.cfg.Admit.Allow() || !s.conns.tryAdd(conn, s.cfg.MaxConns) {
				shedConn(conn, s.cfg.WriteTimeout, &s.wg)
				continue
			}
			metConnsActive.Add(1)
			s.wg.Add(1)
			go s.serve(conn)
		}
	})
}

func (s *StreamServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.conns.drop(conn)
		metConnsActive.Add(-1)
	}()
	defer resilience.CatchPanic("netproto.stream.conn", s.cfg.Logf, func(any) {
		metPanicsRecovered.Inc()
	})()

	// First frame: an optional codec hello, then the subscribe frame
	// saying where to resume from.
	rd := &connReader{br: bufio.NewReader(conn), fb: getFrameBuf()}
	defer putFrameBuf(rd.fb)
	w := &wireWriter{w: conn, fb: getFrameBuf()}
	defer putFrameBuf(w.fb)
	conn.SetReadDeadline(time.Now().Add(FrameTimeout))
	var wreq wireReq
	if err := rd.read(false, &wreq); err != nil {
		return
	}
	if wreq.Op == "hello" {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if !negotiateHello(w, wreq.Codec, s.cfg.DisableBinary) {
			return
		}
		// The subscribe frame follows in the negotiated codec.
		conn.SetReadDeadline(time.Now().Add(FrameTimeout))
		if err := rd.read(w.binary, &wreq); err != nil {
			return
		}
	}
	if wreq.Op != "subscribe" {
		return
	}
	req := subscribeReq{Op: wreq.Op, From: wreq.From}
	if hook := s.subscribeHook; hook != nil {
		hook(req)
	}

	// Snapshot the replay backlog and register for live batches under
	// one lock acquisition, so no batch can fall between replay and live.
	s.mu.Lock()
	var replay []StreamBatch
	for _, b := range s.history {
		if b.Seq > req.From {
			replay = append(replay, b)
		}
	}
	var ch chan StreamBatch
	if !s.closed {
		ch = make(chan StreamBatch, s.cfg.SubBuffer)
		s.subs[conn] = ch
	}
	s.mu.Unlock()
	if req.From > 0 {
		// A resuming subscriber: how much history it had to recover.
		metResumeDepth.Observe(float64(len(replay)))
	}
	if ch != nil {
		metSubsActive.Add(1)
		defer func() {
			s.mu.Lock()
			delete(s.subs, conn)
			s.mu.Unlock()
			metSubsActive.Add(-1)
		}()
	}

	lastSent := req.From
	send := func(b StreamBatch) bool {
		if b.Seq <= lastSent {
			return true // already delivered (replay/live overlap)
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := w.writeStreamBatch(&b); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// A slow reader stalled the write past its deadline:
				// evicted, not merely disconnected.
				metConnsEvicted.Inc()
			}
			return false
		}
		lastSent = b.Seq
		return !b.Final
	}
	for _, b := range replay {
		if !send(b) {
			return
		}
	}
	if ch == nil {
		return // session over: replay-only subscriber
	}
	for b := range ch {
		if !send(b) {
			return
		}
	}
}

// Publish sends one batch to every current subscriber and appends it to
// the session history for resumption. Non-finite RSS/motion values are
// dropped at this boundary (JSON cannot carry them). Slow subscribers
// whose buffers are full are skipped live — they recover the batch on
// reconnect, since it stays in the history.
func (s *StreamServer) Publish(rss []TimedRSS, motion []MotionPoint, final bool) error {
	rss = sanitizeRSS(rss)
	motion = sanitizeMotion(motion)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStreamClosed
	}
	s.seq++
	b := StreamBatch{Seq: s.seq, RSS: rss, Motion: motion, Final: final}
	s.history = append(s.history, b)
	s.broadcastLocked(b)
	if final {
		s.endSessionLocked()
	}
	return nil
}

// broadcastLocked offers b to every live subscriber, skipping (and
// counting) those whose buffers are full.
func (s *StreamServer) broadcastLocked(b StreamBatch) {
	for _, ch := range s.subs {
		select {
		case ch <- b:
		default: // drop for this subscriber; history covers it
			s.skips.Add(1)
			metSubSkips.Inc()
		}
	}
}

// endSessionLocked closes every live subscriber channel and stops
// accepting new live registrations.
func (s *StreamServer) endSessionLocked() {
	s.closed = true
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = map[net.Conn]chan StreamBatch{}
}

// Shutdown gracefully stops the server. If the session is still live, a
// terminal batch with Final and Draining set is published so subscribers
// learn the stream ended because of shutdown, not measurement end; then
// the listener closes and in-flight sends drain. If ctx ends first, the
// remaining connections are force-closed and the context's error
// returned. Safe to call multiple times and concurrently.
func (s *StreamServer) Shutdown(ctx context.Context) error {
	first := false
	s.stopOnce.Do(func() { close(s.stopped); first = true })
	s.ln.Close()
	start := time.Now()
	if first {
		s.mu.Lock()
		if !s.closed {
			s.seq++
			b := StreamBatch{Seq: s.seq, Final: true, Draining: true}
			s.history = append(s.history, b)
			s.broadcastLocked(b)
			s.endSessionLocked()
		}
		s.mu.Unlock()
	}
	// Wake handshake waiters parked in their hello-frame read.
	s.conns.expireReads()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.conns.closeAll()
		<-done
	}
	if first {
		metDrainSeconds.Observe(time.Since(start).Seconds())
	}
	return forced
}

// Close is the hard stop: subscribers are cut immediately (after the
// terminal draining batch, if the session was still live) and all
// goroutines are waited for. Publish(…, final=true) is the graceful end
// of session; Shutdown the graceful end of serving.
func (s *StreamServer) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

// Subscribe dials a StreamServer and delivers batches in order on the
// returned channel until the stream ends or the context is cancelled.
// The binary codec is negotiated by default (falling back to JSON
// against servers that don't speak it). A dropped connection is
// re-dialled with backoff — re-negotiating the codec, since the server
// may have been replaced — and the stream resumed from the last
// delivered batch; duplicates are filtered by sequence number, so the
// consumer sees each batch exactly once. The channel is closed when
// the subscription ends.
func Subscribe(ctx context.Context, addr string) (<-chan StreamBatch, error) {
	return SubscribeCodec(ctx, addr, "")
}

// SubscribeCodec is Subscribe with explicit codec control; see
// FleetDialConfig.Codec for the accepted values.
func SubscribeCodec(ctx context.Context, addr, codec string) (<-chan StreamBatch, error) {
	sc, err := dialSubscribe(ctx, addr, 0, codec)
	if err != nil {
		return nil, err
	}
	out := make(chan StreamBatch, 16)
	go func() {
		defer close(out)
		last := 0
		policy := DefaultRetry()
		for {
			last, err = pump(ctx, sc, last, out)
			sc.conn.Close()
			if err == nil || ctx.Err() != nil {
				return // clean end of stream, or caller gave up
			}
			// Connection died mid-session: reconnect and resume.
			reErr := policy.Do(ctx, func() error {
				var dErr error
				sc, dErr = dialSubscribe(ctx, addr, last, codec)
				return dErr
			})
			if reErr != nil {
				return
			}
			metReconnects.Inc()
		}
	}()
	return out, nil
}

// subConn is one subscriber connection with its negotiated codec.
type subConn struct {
	conn   net.Conn
	br     *bufio.Reader
	binary bool
}

// dialSubscribe opens a stream connection, negotiates the codec, and
// sends the subscribe frame in whatever codec was agreed.
func dialSubscribe(ctx context.Context, addr string, from int, codec string) (*subConn, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := &subConn{conn: conn, br: bufio.NewReader(conn)}
	if codec != CodecJSON {
		done, err := sc.negotiate(ctx)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if !done {
			// Refused: an old (or binary-disabled) server answered the
			// hello with an error and closed. Fall back to plain JSON on
			// a fresh connection.
			conn.Close()
			if codec == CodecBinary || codec == "binary" {
				return nil, fmt.Errorf("netproto: %s does not speak %s", addr, CodecBinary)
			}
			conn, err = d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			metCodecFallbacks.Inc()
			sc = &subConn{conn: conn, br: bufio.NewReader(conn)}
		}
	}
	sc.conn.SetWriteDeadline(time.Now().Add(FrameTimeout))
	req := subscribeReq{Op: "subscribe", From: from}
	if sc.binary {
		fb := getFrameBuf()
		fb.beginFrame()
		fb.b = append(fb.b, bfJSON)
		err = fb.encodeJSONBody(req)
		if err == nil {
			err = flushFrame(sc.conn, fb.b)
		}
		putFrameBuf(fb)
	} else {
		err = WriteFrame(sc.conn, req)
	}
	if err != nil {
		sc.conn.Close()
		return nil, err
	}
	return sc, nil
}

// negotiate sends the hello frame and reads the answer. done=true
// means negotiation concluded on this connection (sc.binary says which
// codec); done=false means the server refused the hello entirely and
// the caller should fall back to a fresh JSON connection.
func (sc *subConn) negotiate(ctx context.Context) (done bool, err error) {
	dl := time.Now().Add(FrameTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	sc.conn.SetWriteDeadline(dl)
	hello := struct {
		Op    string `json:"op"`
		Codec string `json:"codec"`
	}{Op: "hello", Codec: CodecBinary}
	if err := WriteFrame(sc.conn, &hello); err != nil {
		return false, err
	}
	sc.conn.SetReadDeadline(dl)
	var ack struct {
		Codec string `json:"codec"`
		Err   string `json:"error"`
	}
	if err := ReadFrame(sc.br, &ack); err != nil {
		// An old server may close on the unknown op without answering.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return false, nil
		}
		return false, err
	}
	switch ack.Codec {
	case CodecBinary:
		sc.binary = true
		return true, nil
	case CodecJSON:
		return true, nil
	default:
		// Error answer ("unknown op", overload shed): redial plain. A
		// shed will shed the retry too, and the reconnect loop backs
		// off on it exactly as the pre-codec subscriber did.
		return false, nil
	}
}

// pump reads batches from one connection into out until the stream ends
// (nil error), the context is cancelled (nil), or the connection fails
// (the read error). It returns the last sequence number delivered.
func pump(ctx context.Context, sc *subConn, last int, out chan<- StreamBatch) (int, error) {
	var fb *frameBuf
	if sc.binary {
		fb = getFrameBuf()
		defer putFrameBuf(fb)
	}
	for {
		dl := time.Now().Add(StreamIdleTimeout)
		if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
			dl = cdl
		}
		sc.conn.SetReadDeadline(dl)
		var b StreamBatch
		var err error
		if sc.binary {
			var body []byte
			body, err = readFrameBody(sc.br, fb)
			if err == nil {
				err = decodeSubFrame(body, &b)
			}
			if err == nil {
				accountFrameIn(len(body))
			}
		} else {
			err = ReadFrame(sc.br, &b)
		}
		if err != nil {
			if ctx.Err() != nil {
				return last, nil
			}
			return last, err
		}
		if b.Seq <= last {
			continue // duplicate from a replay overlap
		}
		select {
		case out <- b:
			last = b.Seq
		case <-ctx.Done():
			return last, nil
		}
		if b.Final {
			return last, nil
		}
	}
}

// decodeSubFrame decodes one binary-mode stream frame.
func decodeSubFrame(body []byte, b *StreamBatch) error {
	if len(body) == 0 {
		return errBinMalformed
	}
	switch body[0] {
	case bfStreamBatch:
		return decodeStreamBatch(body[1:], b)
	case bfError:
		r := binReader{b: body[1:]}
		msg := r.str()
		if err := r.done(); err != nil {
			return err
		}
		return exchangeError("stream", msg)
	case bfJSON:
		return json.Unmarshal(body[1:], b)
	default:
		return errBinMalformed
	}
}
