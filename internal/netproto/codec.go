// Wire codecs. Every frame on the wire is a 4-byte big-endian length
// prefix plus a body; what the body holds is a per-connection property
// negotiated by the first frame:
//
//   - CodecJSON ("json"): the body is one JSON document. This is the
//     seed protocol and the default — a connection that never sends a
//     hello frame is a JSON connection, so old clients and servers
//     interoperate untouched.
//   - CodecBinary ("locb1"): the body is one tag byte followed by a
//     fixed little-endian payload — raw float64 bits, uvarint lengths,
//     and per-frame interning of repeated beacon IDs. Negotiated by a
//     first-frame {"op":"hello","codec":"locb1"} (always JSON, so any
//     server can at least read it); servers that don't speak it answer
//     with an error frame and the client falls back to JSON.
//
// Both codecs share the pooled frame buffers below: a frame is built
// (or read) into a reusable buffer with the length header prepended, so
// the hot paths do one conn.Write per frame and zero per-frame
// allocations.
package netproto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Codec names, as they appear in hello frames and CLI flags.
const (
	// CodecJSON is the seed length-prefixed JSON protocol.
	CodecJSON = "json"
	// CodecBinary is the versioned binary codec. The "1" is the wire
	// version: an incompatible layout change ships as locb2, and a
	// server that only knows locb1 rejects it into a JSON fallback
	// instead of misparsing frames.
	CodecBinary = "locb1"
)

// errBinMalformed reports a binary frame whose payload does not decode:
// truncated, over-long, an out-of-range intern reference, or trailing
// garbage. The connection that produced it cannot be trusted to be
// frame-aligned and is closed.
var errBinMalformed = errors.New("netproto: malformed binary frame")

// Binary frame tags (the first body byte of a CodecBinary frame).
const (
	// bfJSON wraps an arbitrary JSON document — the escape hatch that
	// lets cold ops (hello acks, metrics, drain, fetch, subscribe) ride
	// a binary connection without a bespoke encoding.
	bfJSON = 0x00
	// bfPushReq is a push request: an observation batch with interned
	// beacon IDs.
	bfPushReq = 0x01
	// bfPushResult is one beacon's streamed result frame.
	bfPushResult = 0x02
	// bfPushDone terminates a push exchange (carries the result count).
	bfPushDone = 0x03
	// bfError is a typed exchange-level error frame.
	bfError = 0x04
	// bfStreamBatch is one live (RSS, motion) stream batch.
	bfStreamBatch = 0x05
)

// PushResult lifecycle flag bits in a bfPushResult frame.
const (
	bfFlagCreated     = 1 << 0
	bfFlagRestored    = 1 << 1
	bfFlagQuarantined = 1 << 2
)

// StreamBatch flag bits in a bfStreamBatch frame.
const (
	bfFlagFinal    = 1 << 0
	bfFlagDraining = 1 << 1
)

// frameBuf is a pooled frame workspace. For writes, the frame is built
// into b with 4 bytes reserved up front for the length header, so the
// whole frame leaves in one conn.Write; enc is a json.Encoder bound to
// the buffer itself (via Write below) so the JSON path reuses one
// encoder per pooled buffer instead of allocating per frame.
type frameBuf struct {
	b   []byte
	enc *json.Encoder
}

// Write appends to the buffer — it exists so enc can target fb.
func (fb *frameBuf) Write(p []byte) (int, error) {
	fb.b = append(fb.b, p...)
	return len(p), nil
}

func newFrameBuf() *frameBuf {
	fb := &frameBuf{b: make([]byte, 0, 4096)}
	fb.enc = json.NewEncoder(fb)
	return fb
}

var framePool = sync.Pool{New: func() any { return newFrameBuf() }}

// maxPooledFrame caps the buffer size retained by the pool: a rare
// jumbo frame must not pin megabytes in every pool slot forever.
const maxPooledFrame = 1 << 20

func getFrameBuf() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrameBuf(fb *frameBuf) {
	if cap(fb.b) > maxPooledFrame {
		return // let the jumbo buffer go; the pool refills at 4 KiB
	}
	framePool.Put(fb)
}

// beginFrame resets the buffer to the 4 reserved header bytes.
func (fb *frameBuf) beginFrame() {
	fb.b = append(fb.b[:0], 0, 0, 0, 0)
}

// encodeJSONBody appends v's JSON encoding to the buffer (the pooled
// encoder terminates each document with '\n', which is not part of the
// frame and is stripped).
func (fb *frameBuf) encodeJSONBody(v any) error {
	if err := fb.enc.Encode(v); err != nil {
		return fmt.Errorf("netproto: marshal: %w", err)
	}
	if n := len(fb.b); n > 0 && fb.b[n-1] == '\n' {
		fb.b = fb.b[:n-1]
	}
	return nil
}

// flushFrame patches the length header reserved by beginFrame and
// writes the whole frame — header and body — with a single Write call.
func flushFrame(w io.Writer, buf []byte) error {
	body := len(buf) - 4
	if body > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	metFramesOut.Inc()
	metBytesOut.Add(int64(body))
	return nil
}

// readFrameBody reads one length-prefixed frame body into the pooled
// buffer and returns it. The returned slice aliases fb.b and is valid
// until the next use of fb; callers must copy anything they keep.
// Frame accounting (metFramesIn/metBytesIn) is the caller's, after it
// has decoded the body successfully.
func readFrameBody(r io.Reader, fb *frameBuf) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if cap(fb.b) < int(n) {
		fb.b = make([]byte, n)
	} else {
		fb.b = fb.b[:n]
	}
	if _, err := io.ReadFull(r, fb.b); err != nil {
		return nil, err
	}
	return fb.b, nil
}

// accountFrameIn records one successfully decoded inbound frame.
func accountFrameIn(n int) {
	metFramesIn.Inc()
	metBytesIn.Add(int64(n))
}

// --- binary encoding (append-style, zero-allocation on reused buffers) ---

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendPushReq encodes a bfPushReq body. Repeated beacon IDs within
// the batch are interned: the first occurrence writes id==len(table)
// followed by the name, later occurrences write just the id. *names is
// the caller's reusable intern table (reset here); a linear scan is
// exact and allocation-free at realistic per-batch cardinalities.
func appendPushReq(dst []byte, obs []PushObs, names *[]string) []byte {
	dst = append(dst, bfPushReq)
	dst = binary.AppendUvarint(dst, uint64(len(obs)))
	table := (*names)[:0]
	for i := range obs {
		o := &obs[i]
		id := -1
		for j := range table {
			if table[j] == o.Beacon {
				id = j
				break
			}
		}
		if id < 0 {
			dst = binary.AppendUvarint(dst, uint64(len(table)))
			dst = appendStr(dst, o.Beacon)
			table = append(table, o.Beacon)
		} else {
			dst = binary.AppendUvarint(dst, uint64(id))
		}
		dst = appendF64(dst, o.T)
		dst = appendF64(dst, o.RSS)
		dst = appendF64(dst, o.P)
		dst = appendF64(dst, o.Q)
	}
	*names = table
	return dst
}

// appendPushResult encodes a bfPushResult body.
func appendPushResult(dst []byte, r *PushResult) []byte {
	dst = append(dst, bfPushResult)
	dst = appendStr(dst, r.Beacon)
	var flags byte
	if r.Created {
		flags |= bfFlagCreated
	}
	if r.Restored {
		flags |= bfFlagRestored
	}
	if r.Quarantined {
		flags |= bfFlagQuarantined
	}
	dst = append(dst, flags)
	dst = appendStr(dst, r.Err)
	dst = binary.AppendUvarint(dst, uint64(len(r.Fixes)))
	for i := range r.Fixes {
		f := &r.Fixes[i]
		dst = appendF64(dst, f.T)
		dst = appendF64(dst, f.X)
		dst = appendF64(dst, f.Y)
		dst = appendF64(dst, f.N)
		dst = appendF64(dst, f.Gamma)
		dst = appendF64(dst, f.Confidence)
		dst = appendStr(dst, f.Mode)
		dst = binary.AppendUvarint(dst, uint64(f.Samples))
	}
	return dst
}

// appendPushDone encodes a bfPushDone body.
func appendPushDone(dst []byte, beacons int) []byte {
	dst = append(dst, bfPushDone)
	return binary.AppendUvarint(dst, uint64(beacons))
}

// appendError encodes a bfError body.
func appendError(dst []byte, msg string) []byte {
	dst = append(dst, bfError)
	return appendStr(dst, msg)
}

// appendStreamBatch encodes a bfStreamBatch body.
func appendStreamBatch(dst []byte, b *StreamBatch) []byte {
	dst = append(dst, bfStreamBatch)
	dst = binary.AppendUvarint(dst, uint64(b.Seq))
	var flags byte
	if b.Final {
		flags |= bfFlagFinal
	}
	if b.Draining {
		flags |= bfFlagDraining
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(b.RSS)))
	for i := range b.RSS {
		r := &b.RSS[i]
		dst = appendF64(dst, r.T)
		dst = appendF64(dst, r.RSS)
		dst = binary.AppendVarint(dst, int64(r.Chan))
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Motion)))
	for i := range b.Motion {
		m := &b.Motion[i]
		dst = appendF64(dst, m.T)
		dst = appendF64(dst, m.X)
		dst = appendF64(dst, m.Y)
	}
	return dst
}

// --- binary decoding (bounds-checked, sticky-error reader) ---

// binReader walks a binary frame body with a sticky error: after the
// first malformed read every accessor returns zero values, so decoders
// can run straight-line and check err once. It never reads past b.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errBinMalformed
	}
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint element count and validates it against the
// bytes actually remaining (minSize per element) — the alloc-bomb
// guard: a forged count can never make the decoder allocate more than
// the frame it arrived in could justify.
func (r *binReader) count(minSize int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()/minSize) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) flags() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// str reads a uvarint-length-prefixed string. The returned string is a
// copy, safe to retain after the frame buffer is reused.
func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// intu reads a uvarint that must fit a non-negative int.
func (r *binReader) intu() int {
	v := r.uvarint()
	if v > math.MaxInt64 {
		r.fail()
		return 0
	}
	return int(v)
}

// done enforces that the frame body was consumed exactly: trailing
// bytes mean a codec disagreement, not padding.
func (r *binReader) done() error {
	if r.err == nil && r.off != len(r.b) {
		r.fail()
	}
	return r.err
}

// decodePushReq decodes a bfPushReq body (after the tag byte) into the
// reusable dst/names scratch. Returned observations own their strings
// (one allocation per distinct beacon per frame); dst and names grow
// once and are reused across frames.
func decodePushReq(body []byte, dst []PushObs, names []string) ([]PushObs, []string, error) {
	r := binReader{b: body}
	// An interned-reference observation is at least 1 (id) + 32 (floats)
	// bytes, so the count can never exceed remaining/33.
	n := r.count(33)
	dst, names = dst[:0], names[:0]
	for i := 0; i < n && r.err == nil; i++ {
		id := r.uvarint()
		var name string
		switch {
		case id < uint64(len(names)):
			name = names[id]
		case id == uint64(len(names)):
			name = r.str()
			names = append(names, name)
		default:
			r.fail()
		}
		o := PushObs{Beacon: name}
		o.T = r.f64()
		o.RSS = r.f64()
		o.P = r.f64()
		o.Q = r.f64()
		if r.err == nil {
			dst = append(dst, o)
		}
	}
	return dst, names, r.done()
}

// decodePushResult decodes a bfPushResult body (after the tag byte).
func decodePushResult(body []byte, out *PushResult) error {
	r := binReader{b: body}
	out.Beacon = r.str()
	flags := r.flags()
	out.Created = flags&bfFlagCreated != 0
	out.Restored = flags&bfFlagRestored != 0
	out.Quarantined = flags&bfFlagQuarantined != 0
	out.Err = r.str()
	// A fix is at least 48 (floats) + 1 (mode len) + 1 (samples) bytes.
	n := r.count(50)
	out.Fixes = nil
	if n > 0 && r.err == nil {
		out.Fixes = make([]PushFix, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var f PushFix
			f.T = r.f64()
			f.X = r.f64()
			f.Y = r.f64()
			f.N = r.f64()
			f.Gamma = r.f64()
			f.Confidence = r.f64()
			f.Mode = r.str()
			f.Samples = r.intu()
			if r.err == nil {
				out.Fixes = append(out.Fixes, f)
			}
		}
	}
	return r.done()
}

// decodeStreamBatch decodes a bfStreamBatch body (after the tag byte).
func decodeStreamBatch(body []byte, out *StreamBatch) error {
	r := binReader{b: body}
	out.Seq = r.intu()
	flags := r.flags()
	out.Final = flags&bfFlagFinal != 0
	out.Draining = flags&bfFlagDraining != 0
	out.RSS, out.Motion = nil, nil
	// An RSS entry is at least 8+8+1 bytes.
	n := r.count(17)
	if n > 0 && r.err == nil {
		out.RSS = make([]TimedRSS, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var e TimedRSS
			e.T = r.f64()
			e.RSS = r.f64()
			e.Chan = int(r.varint())
			if r.err == nil {
				out.RSS = append(out.RSS, e)
			}
		}
	}
	// A motion point is 24 bytes.
	n = r.count(24)
	if n > 0 && r.err == nil {
		out.Motion = make([]MotionPoint, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			var m MotionPoint
			m.T = r.f64()
			m.X = r.f64()
			m.Y = r.f64()
			if r.err == nil {
				out.Motion = append(out.Motion, m)
			}
		}
	}
	return r.done()
}

// --- per-connection codec-aware I/O (server side) ---

// helloAck is the server's answer to an accepted hello frame (always
// JSON — the codec switches after the ack).
type helloAck struct {
	Codec string `json:"codec"`
}

// wireReq is one decoded inbound request frame, whatever codec carried
// it. Binary push frames decode straight into the reusable Obs scratch;
// everything else (hello, fetch, drain, metrics, subscribe) arrives as
// JSON — plain or bfJSON-wrapped.
type wireReq struct {
	Op    string    `json:"op"`
	Codec string    `json:"codec"`
	From  int       `json:"from"`
	Obs   []PushObs `json:"obs"`
}

// connReader reads request frames for one server connection, holding
// the connection's reusable decode scratch.
type connReader struct {
	br    *bufio.Reader
	fb    *frameBuf
	obs   []PushObs
	names []string
}

func (r *connReader) read(binary bool, req *wireReq) error {
	// Unmarshal merges into existing fields; a stale batch must not
	// leak into a frame that omits them.
	req.Op, req.Codec, req.From, req.Obs = "", "", 0, nil
	if !binary {
		return ReadFrame(r.br, req)
	}
	body, err := readFrameBody(r.br, r.fb)
	if err != nil {
		return err
	}
	if len(body) == 0 {
		return errBinMalformed
	}
	switch body[0] {
	case bfPushReq:
		obs, names, err := decodePushReq(body[1:], r.obs, r.names)
		r.obs, r.names = obs, names
		if err != nil {
			return err
		}
		req.Op, req.Obs = "push", obs
	case bfJSON:
		if err := json.Unmarshal(body[1:], req); err != nil {
			return err
		}
	default:
		return errBinMalformed
	}
	accountFrameIn(len(body))
	return nil
}

// negotiateHello answers one server-side hello frame and, on an
// accepted binary codec, flips the writer for all subsequent frames.
// The ack itself is always JSON — the requesting side is still reading
// JSON until it sees the answer. Returns false when the connection
// should close. Callers have already set the write deadline.
func negotiateHello(w *wireWriter, codec string, disabled bool) bool {
	if disabled {
		// Byte-identical to a pre-codec server's answer to a hello, so
		// negotiating clients take the same JSON fallback path they
		// would against an old deployment.
		WriteFrame(w.w, map[string]string{"error": "unknown op"})
		return false
	}
	switch codec {
	case CodecBinary, "binary":
		if err := WriteFrame(w.w, helloAck{Codec: CodecBinary}); err != nil {
			return false
		}
		w.binary = true
		metCodecBinary.Inc()
	case "", CodecJSON:
		if err := WriteFrame(w.w, helloAck{Codec: CodecJSON}); err != nil {
			return false
		}
		metCodecJSON.Inc()
	default:
		metCodecRejected.Inc()
		WriteFrame(w.w, map[string]string{"error": "unsupported codec " + codec})
		return false
	}
	return true
}

// wireWriter writes response frames for one connection in its
// negotiated codec. In JSON mode every write is byte-identical to the
// pre-codec protocol; in binary mode the hot frame types use their
// bespoke encodings and everything else rides a bfJSON wrapper.
type wireWriter struct {
	w      io.Writer
	binary bool
	fb     *frameBuf
}

// writeJSONy writes v as a JSON frame (plain or bfJSON-wrapped).
func (w *wireWriter) writeJSONy(v any) error {
	if !w.binary {
		return WriteFrame(w.w, v)
	}
	w.fb.beginFrame()
	w.fb.b = append(w.fb.b, bfJSON)
	if err := w.fb.encodeJSONBody(v); err != nil {
		return err
	}
	return flushFrame(w.w, w.fb.b)
}

// writeError writes a typed exchange-level error frame.
func (w *wireWriter) writeError(msg string) error {
	if !w.binary {
		return WriteFrame(w.w, map[string]string{"error": msg})
	}
	w.fb.beginFrame()
	w.fb.b = appendError(w.fb.b, msg)
	return flushFrame(w.w, w.fb.b)
}

func (w *wireWriter) writePushResult(r *PushResult) error {
	if !w.binary {
		return WriteFrame(w.w, r)
	}
	w.fb.beginFrame()
	w.fb.b = appendPushResult(w.fb.b, r)
	return flushFrame(w.w, w.fb.b)
}

func (w *wireWriter) writePushDone(beacons int) error {
	if !w.binary {
		return WriteFrame(w.w, pushDone{Done: true, Beacons: beacons})
	}
	w.fb.beginFrame()
	w.fb.b = appendPushDone(w.fb.b, beacons)
	return flushFrame(w.w, w.fb.b)
}

func (w *wireWriter) writeStreamBatch(b *StreamBatch) error {
	if !w.binary {
		return WriteFrame(w.w, b)
	}
	w.fb.beginFrame()
	w.fb.b = appendStreamBatch(w.fb.b, b)
	return flushFrame(w.w, w.fb.b)
}

// --- reusable whole-frame encoder/decoder (benchmarks, fuzzing) ---

// BinaryPushEncoder encodes complete locb1 push-request frames (length
// header included) into a reusable buffer. It is what the pipeline
// benchmark measures; the wire path uses the same appendPushReq core.
// Not safe for concurrent use.
type BinaryPushEncoder struct {
	buf   []byte
	names []string
}

// Encode returns the encoded frame for obs. The slice is valid until
// the next Encode call.
func (e *BinaryPushEncoder) Encode(obs []PushObs) []byte {
	e.buf = append(e.buf[:0], 0, 0, 0, 0)
	e.buf = appendPushReq(e.buf, obs, &e.names)
	binary.BigEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-4))
	return e.buf
}

// BinaryPushDecoder decodes complete locb1 push-request frames into
// reusable scratch. Not safe for concurrent use.
type BinaryPushDecoder struct {
	obs   []PushObs
	names []string
}

// Decode parses one frame as produced by BinaryPushEncoder.Encode. The
// returned observations are valid until the next Decode call.
func (d *BinaryPushDecoder) Decode(frame []byte) ([]PushObs, error) {
	if len(frame) < 5 {
		return nil, errBinMalformed
	}
	n := binary.BigEndian.Uint32(frame[:4])
	if n > MaxFrameSize || int(n) != len(frame)-4 {
		return nil, errBinMalformed
	}
	if frame[4] != bfPushReq {
		return nil, errBinMalformed
	}
	obs, names, err := decodePushReq(frame[5:], d.obs, d.names)
	d.obs, d.names = obs, names
	if err != nil {
		return nil, err
	}
	return obs, nil
}
