package netproto

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStreamPublishSubscribe(t *testing.T) {
	srv, err := NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Give the subscriber a moment to register.
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < 3; i++ {
		err := srv.Publish(
			[]TimedRSS{{T: float64(i), RSS: -70 - float64(i)}},
			[]MotionPoint{{T: float64(i), X: float64(i) * 0.7}},
			i == 2,
		)
		if err != nil {
			t.Fatal(err)
		}
	}

	var got []StreamBatch
	for b := range ch {
		got = append(got, b)
	}
	if len(got) != 3 {
		t.Fatalf("received %d batches, want 3", len(got))
	}
	for i, b := range got {
		if b.Seq != i+1 {
			t.Errorf("batch %d has seq %d", i, b.Seq)
		}
		if len(b.RSS) != 1 || b.RSS[0].RSS != -70-float64(i) {
			t.Errorf("batch %d payload %+v", i, b.RSS)
		}
	}
	if !got[2].Final {
		t.Error("last batch should be final")
	}
	// Publishing after final fails.
	if err := srv.Publish(nil, nil, false); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("publish after final: %v", err)
	}
}

func TestStreamMultipleSubscribers(t *testing.T) {
	srv, err := NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch1, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	srv.Publish([]TimedRSS{{T: 1, RSS: -70}}, nil, true)

	for name, ch := range map[string]<-chan StreamBatch{"a": ch1, "b": ch2} {
		n := 0
		for range ch {
			n++
		}
		if n != 1 {
			t.Errorf("subscriber %s got %d batches", name, n)
		}
	}
}

func TestStreamServerCloseUnblocksSubscribers(t *testing.T) {
	srv, err := NewStreamServer("tgt", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch, err := Subscribe(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		for range ch {
		}
		close(done)
	}()
	srv.Close()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("subscriber not unblocked by Close")
	}
}

func TestSubscribeConnectionRefused(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := Subscribe(ctx, "127.0.0.1:1"); err == nil {
		t.Error("want connection error")
	}
}
