package netproto

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func testBundle() *TraceBundle {
	return &TraceBundle{
		Device: "target-phone",
		RSS: []TimedRSS{
			{T: 0.1, RSS: -72.5, Chan: 37},
			{T: 0.2, RSS: -73.1, Chan: 38},
		},
		Motion: []MotionPoint{
			{T: 0.1, X: 0, Y: 0},
			{T: 0.7, X: 0.7, Y: 0},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := testBundle()
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out TraceBundle
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Device != in.Device || len(out.RSS) != 2 || out.RSS[1].RSS != -73.1 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out TraceBundle
	if err := ReadFrame(buf, &out); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestServerFetch(t *testing.T) {
	srv, err := NewServer("target-phone", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	got, err := Fetch(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != "target-phone" || len(got.RSS) != 2 || len(got.Motion) != 2 {
		t.Errorf("fetched %+v", got)
	}
}

func TestServerFetchEmptyBundle(t *testing.T) {
	srv, err := NewServer("empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	got, err := Fetch(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != "empty" || len(got.RSS) != 0 {
		t.Errorf("empty fetch = %+v", got)
	}
}

func TestDiscovery(t *testing.T) {
	srv, err := NewServer("disc-phone", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	found, err := Discover(ctx, []string{srv.DiscoveryAddr()})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Device != "disc-phone" || found[0].Addr != srv.Addr() {
		t.Fatalf("discovered %+v", found)
	}
}

func TestDiscoveryTimeoutOnSilence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	found, err := Discover(ctx, []string{"127.0.0.1:1"}) // nothing listens
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Errorf("found %v on a dead port", found)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("discovery did not respect the deadline")
	}
}

func TestEndToEndDiscoverAndFetch(t *testing.T) {
	srv, err := NewServer("e2e", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	found, err := Discover(ctx, []string{srv.DiscoveryAddr()})
	if err != nil || len(found) != 1 {
		t.Fatalf("discover: %v %v", found, err)
	}
	b, err := Fetch(ctx, found[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	if b.Device != "target-phone" {
		t.Errorf("fetched from wrong device: %q", b.Device)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer("close", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
}

func TestFetchConnectionRefused(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := Fetch(ctx, "127.0.0.1:1"); err == nil {
		t.Error("want connection error")
	}
}

func TestServerMetricsOp(t *testing.T) {
	srv, err := NewServer("metrics-host", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetBundle(testBundle())

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	// A fetch first, so the transport counters have something to show.
	if _, err := Fetch(ctx, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	snap, err := FetchMetrics(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("FetchMetrics: %v", err)
	}
	if snap.Counters["netproto.frames.out"] < 2 {
		t.Errorf("frames.out = %d, want >= 2", snap.Counters["netproto.frames.out"])
	}
	if snap.Counters["netproto.frames.in"] < 2 {
		t.Errorf("frames.in = %d, want >= 2", snap.Counters["netproto.frames.in"])
	}
	if snap.Counters["netproto.bytes.out"] <= 0 {
		t.Errorf("bytes.out = %d, want > 0", snap.Counters["netproto.bytes.out"])
	}
}
