package netproto

import (
	"bytes"
	"fmt"
	"testing"
)

// benchObs is the microbenchmark workload: 24 beacons interleaved at 16
// observations each — the shape a router sub-batch has on the wire, and
// the unfavorable order for the binary encoder's intern scan (every
// entry switches beacons).
func benchObs() []PushObs {
	const beacons, per = 24, 16
	obs := make([]PushObs, 0, beacons*per)
	for i := 0; i < per; i++ {
		for b := 0; b < beacons; b++ {
			obs = append(obs, PushObs{
				Beacon: fmt.Sprintf("bench-%02d", b),
				T:      float64(i) * 0.125,
				RSS:    -58.5 - 0.75*float64((b+i)%13),
				P:      0.15 * float64(i),
				Q:      0.05 * float64(b),
			})
		}
	}
	return obs
}

func BenchmarkWireEncodeJSON(b *testing.B) {
	req := wireReq{Op: "push", Obs: benchObs()}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &req); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeBinary(b *testing.B) {
	obs := benchObs()
	var enc BinaryPushEncoder
	b.SetBytes(int64(len(enc.Encode(obs))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(obs)
	}
}

func BenchmarkWireDecodeJSON(b *testing.B) {
	req := wireReq{Op: "push", Obs: benchObs()}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &req); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	rd := bytes.NewReader(frame)
	var dec wireReq
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		dec.Obs = dec.Obs[:0]
		if err := ReadFrame(rd, &dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeBinary(b *testing.B) {
	obs := benchObs()
	var enc BinaryPushEncoder
	frame := append([]byte(nil), enc.Encode(obs)...)
	var dec BinaryPushDecoder
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
