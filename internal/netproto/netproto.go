// Package netproto implements the device-to-device exchange LocBLE's
// moving-target mode needs (paper Secs. 5 and 7.1): after the measurement
// the target sends its RSS and motion traces to the observer for
// processing. The paper used UPnP; this package provides the same
// semantics with a small, self-contained protocol: UDP discovery
// (request/offer, like SSDP's M-SEARCH) plus a length-prefixed JSON
// exchange over TCP for the trace payload.
//
// The servers are built for long-running serving: accept loops run under
// a restarting supervisor, per-connection handlers are panic-isolated
// (a poisoned frame closes one connection, not the process), admission
// is controlled by a connection cap and an optional token bucket (excess
// connections are shed with an "overloaded" frame), stalled connections
// are evicted by a watchdog, and Shutdown drains in-flight exchanges
// before closing.
package netproto

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"locble/internal/fleet"
	"locble/internal/obs"
	"locble/internal/resilience"
)

// Protocol constants.
const (
	// DiscoverMagic opens every discovery datagram.
	DiscoverMagic = "LOCBLE-DISCOVER/1"
	// OfferMagic opens every discovery response.
	OfferMagic = "LOCBLE-OFFER/1"
	// MaxFrameSize bounds a trace frame (guards against corrupt length
	// prefixes).
	MaxFrameSize = 16 << 20
	// FrameTimeout is the per-frame read/write deadline. Deadlines are
	// refreshed before every frame, not set once per connection, so a
	// long multi-frame exchange never times out in the middle as long as
	// each individual frame keeps moving.
	FrameTimeout = 5 * time.Second
)

// Errors.
var (
	ErrFrameTooLarge = errors.New("netproto: frame exceeds maximum size")
	ErrBadMagic      = errors.New("netproto: bad protocol magic")
)

// TimedRSS is one RSS reading in a trace bundle.
type TimedRSS struct {
	T    float64 `json:"t"`
	RSS  float64 `json:"rss"`
	Chan int     `json:"chan,omitempty"`
}

// MotionPoint is one dead-reckoned displacement sample.
type MotionPoint struct {
	T float64 `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TraceBundle is the payload the target ships to the observer after a
// measurement: its RSS observations and its own motion track.
type TraceBundle struct {
	Device string        `json:"device"`
	RSS    []TimedRSS    `json:"rss"`
	Motion []MotionPoint `json:"motion"`
}

// sanitizeRSS drops entries with non-finite fields: JSON cannot carry
// NaN/Inf, and a degraded sensor feed must lose its poisoned readings at
// the wire boundary rather than poison the whole frame.
func sanitizeRSS(in []TimedRSS) []TimedRSS {
	clean := true
	for _, r := range in {
		if !isFinite(r.T) || !isFinite(r.RSS) {
			clean = false
			break
		}
	}
	if clean {
		return in
	}
	out := make([]TimedRSS, 0, len(in))
	for _, r := range in {
		if isFinite(r.T) && isFinite(r.RSS) {
			out = append(out, r)
		}
	}
	return out
}

func sanitizeMotion(in []MotionPoint) []MotionPoint {
	clean := true
	for _, m := range in {
		if !isFinite(m.T) || !isFinite(m.X) || !isFinite(m.Y) {
			clean = false
			break
		}
	}
	if clean {
		return in
	}
	out := make([]MotionPoint, 0, len(in))
	for _, m := range in {
		if isFinite(m.T) && isFinite(m.X) && isFinite(m.Y) {
			out = append(out, m)
		}
	}
	return out
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Sanitize returns the bundle with non-finite RSS and motion entries
// removed (see sanitizeRSS). The server applies it on SetBundle and the
// stream publisher per batch.
func (b *TraceBundle) Sanitize() *TraceBundle {
	if b == nil {
		return nil
	}
	out := *b
	out.RSS = sanitizeRSS(b.RSS)
	out.Motion = sanitizeMotion(b.Motion)
	return &out
}

// WriteFrame writes one length-prefixed JSON frame. The frame is built
// in a pooled buffer with the header prepended, so each frame costs a
// single Write call and no per-frame allocation beyond what the JSON
// encoder itself needs.
func WriteFrame(w io.Writer, v any) error {
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	fb.beginFrame()
	if err := fb.encodeJSONBody(v); err != nil {
		return err
	}
	return flushFrame(w, fb.b)
}

// ReadFrame reads one length-prefixed JSON frame into v. The body is
// read into a pooled buffer (json.Unmarshal copies everything it
// keeps, so the buffer is safe to reuse immediately).
func ReadFrame(r io.Reader, v any) error {
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	body, err := readFrameBody(r, fb)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return err
	}
	accountFrameIn(len(body))
	return nil
}

// ServerConfig tunes the lifecycle and overload behaviour shared by
// Server and StreamServer. The zero value takes the defaults.
type ServerConfig struct {
	// MaxConns caps concurrently served connections (default 64,
	// negative for unlimited). Connections over the cap are shed with an
	// "overloaded" error frame and closed.
	MaxConns int
	// Admit, if non-nil, is a token-bucket admission limiter consulted
	// before the connection cap; denied connections are shed the same
	// way.
	Admit *resilience.TokenBucket
	// IdleTimeout is the per-connection progress watchdog: a connection
	// whose exchange makes no frame progress for this long is evicted
	// (default 6×FrameTimeout, negative disables). It backstops the
	// per-frame deadlines against handlers stalled outside conn I/O.
	IdleTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default
	// FrameTimeout). Lower it to evict slow-reading clients faster.
	WriteTimeout time.Duration
	// SubBuffer is a StreamServer's per-subscriber live buffer in
	// batches (default 64). A subscriber whose buffer is full has
	// batches skipped live; it recovers them from the history on resume.
	SubBuffer int
	// DisableBinary refuses codec negotiation: hello frames are answered
	// with the same "unknown op" error frame a pre-codec server sends,
	// so negotiating clients fall back to JSON exactly as they would
	// against an old deployment. Useful to pin a mixed fleet to one
	// codec (and to test the fallback path against a live server).
	DisableBinary bool
	// Logf receives supervision and panic-recovery reports (default
	// log.Printf).
	Logf func(format string, args ...any)
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxConns == 0 {
		c.MaxConns = 64
	}
	switch {
	case c.IdleTimeout == 0:
		c.IdleTimeout = 6 * FrameTimeout
	case c.IdleTimeout < 0:
		c.IdleTimeout = 0 // inert watchdog
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = FrameTimeout
	}
	if c.SubBuffer <= 0 {
		c.SubBuffer = 64
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// connTable tracks a server's live connections so lifecycle control can
// reach them: admission capping, drain wake-ups, and force-close.
type connTable struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func newConnTable() *connTable {
	return &connTable{conns: make(map[net.Conn]struct{})}
}

// tryAdd registers conn unless the cap (when positive) is reached.
func (t *connTable) tryAdd(conn net.Conn, max int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max > 0 && len(t.conns) >= max {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *connTable) drop(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

func (t *connTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// expireReads wakes handlers parked in a blocking read so they can
// observe a drain in progress.
func (t *connTable) expireReads() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.conns {
		c.SetReadDeadline(time.Now())
	}
}

func (t *connTable) closeAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.conns {
		c.Close()
	}
}

// shedConn rejects a connection under overload in a short-lived
// goroutine tracked in wg (so drain waits for it): it first reads the
// client's request — closing with unread data would turn into a TCP
// reset that destroys the reply — then answers with one "overloaded"
// frame and closes. Both deadlines are bounded by timeout, so a shed
// lives at most ~2×timeout. The client's fetch surfaces the frame as
// resilience.ErrOverloaded, which its retry policy backs off on.
func shedConn(conn net.Conn, timeout time.Duration, wg *sync.WaitGroup) {
	metConnsShed.Inc()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(timeout))
		var req struct {
			Op string `json:"op"`
		}
		ReadFrame(bufio.NewReader(conn), &req)
		conn.SetWriteDeadline(time.Now().Add(timeout))
		WriteFrame(conn, map[string]string{"error": "overloaded"})
	}()
}

// Server announces a device and serves its trace bundle. It listens for
// discovery datagrams on UDP and serves trace fetches on TCP.
type Server struct {
	DeviceName string

	cfg ServerConfig

	mu     sync.Mutex
	bundle *TraceBundle
	fleet  *fleet.Fleet // attached via SetFleet; nil refuses "push"

	// drainCtx is canceled when a forced shutdown fires, releasing push
	// exchanges held in fleet shard backpressure so the drain can't wedge
	// on work that is no longer wanted.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	tcp net.Listener
	udp net.PacketConn

	conns *connTable

	wg       sync.WaitGroup
	stopOnce sync.Once
	closed   chan struct{}

	// handlerHook, if set, observes every decoded op before dispatch.
	// Tests inject panics and stalls through it; it must be set before
	// the first connection arrives.
	handlerHook func(op string)
}

// SetBundle publishes the bundle served to clients (replacing any prior
// one). Non-finite entries are dropped at this boundary (JSON cannot
// carry them). Safe for concurrent use.
func (s *Server) SetBundle(b *TraceBundle) {
	b = b.Sanitize()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bundle = b
}

// NewServer starts a server for the named device on loopback with the
// default lifecycle config. Pass port 0 for an ephemeral port; the
// chosen addresses are available via Addr and DiscoveryAddr.
func NewServer(device string, port int) (*Server, error) {
	return NewServerWithConfig(device, port, ServerConfig{})
}

// NewServerWithConfig is NewServer with explicit lifecycle and overload
// controls.
func NewServerWithConfig(device string, port int, cfg ServerConfig) (*Server, error) {
	tcp, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("netproto: listen tcp: %w", err)
	}
	udp, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		// Ephemeral UDP port independent of the TCP one is fine.
		udp, err = net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			tcp.Close()
			return nil, fmt.Errorf("netproto: listen udp: %w", err)
		}
	}
	s := &Server{
		DeviceName: device,
		cfg:        cfg.withDefaults(),
		tcp:        tcp,
		udp:        udp,
		conns:      newConnTable(),
		closed:     make(chan struct{}),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.wg.Add(2)
	go s.serveTCP()
	go s.serveUDP()
	return s, nil
}

// Addr returns the TCP trace-exchange address.
func (s *Server) Addr() string { return s.tcp.Addr().String() }

// DiscoveryAddr returns the UDP discovery address.
func (s *Server) DiscoveryAddr() string { return s.udp.LocalAddr().String() }

// Close force-stops the server: listeners close, live connections are
// closed immediately, and all goroutines are waited for. Use Shutdown
// to drain in-flight exchanges instead.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

// Shutdown gracefully stops the server: it stops accepting, lets each
// in-flight frame exchange complete, and waits for the per-connection
// handlers to drain. If ctx ends first, the remaining connections are
// force-closed and the context's error is returned; a clean drain
// returns nil. Safe to call multiple times and concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	first := false
	s.stopOnce.Do(func() { close(s.closed); first = true })
	s.tcp.Close()
	s.udp.Close()
	start := time.Now()
	// Handlers parked between frames wake via an expired read and then
	// observe the drain; handlers mid-exchange finish their frame.
	s.conns.expireReads()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		// Release push exchanges parked in fleet backpressure before
		// force-closing: their handlers block in the fleet, not in conn
		// I/O, so closing the sockets alone would not unwedge them.
		s.drainCancel()
		s.conns.closeAll()
		<-done
	}
	s.drainCancel()
	if first {
		metDrainSeconds.Observe(time.Since(start).Seconds())
	}
	return forced
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	sup := &resilience.Supervisor{Name: "netproto.discovery", Logf: s.cfg.Logf}
	sup.Run(context.Background(), func(context.Context) error {
		buf := make([]byte, 512)
		for {
			n, addr, err := s.udp.ReadFrom(buf)
			if err != nil {
				select {
				case <-s.closed:
					return nil
				default:
					return err
				}
			}
			if string(buf[:n]) != DiscoverMagic {
				continue
			}
			offer := fmt.Sprintf("%s %s %s", OfferMagic, s.DeviceName, s.Addr())
			s.udp.WriteTo([]byte(offer), addr)
		}
	})
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	sup := &resilience.Supervisor{Name: "netproto.accept", Logf: s.cfg.Logf}
	sup.Run(context.Background(), func(context.Context) error {
		return s.acceptLoop()
	})
}

func (s *Server) acceptLoop() error {
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err // supervisor restarts the loop
			}
		}
		if !s.admit(conn) {
			continue
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// admit applies the token-bucket limiter and the connection cap,
// shedding the connection when either denies.
func (s *Server) admit(conn net.Conn) bool {
	if !s.cfg.Admit.Allow() || !s.conns.tryAdd(conn, s.cfg.MaxConns) {
		shedConn(conn, s.cfg.WriteTimeout, &s.wg)
		return false
	}
	metConnsActive.Add(1)
	return true
}

// handleConn serves one trace-exchange connection. It is panic-isolated
// (a handler panic closes this connection only), watchdog-guarded (a
// stalled exchange is evicted), and drain-aware (between frames it
// observes shutdown and exits).
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.conns.drop(conn)
		metConnsActive.Add(-1)
	}()
	defer resilience.CatchPanic("netproto.conn", s.cfg.Logf, func(any) {
		metPanicsRecovered.Inc()
	})()
	wd := resilience.NewWatchdog(s.cfg.IdleTimeout, func() {
		metConnsEvicted.Inc()
		conn.Close() // unblocks any pending I/O; the handler then exits
	})
	defer wd.Stop()

	// Deadlines are per frame, refreshed before each read and write: a
	// connection-scoped deadline would expire in the middle of a long
	// multi-frame exchange.
	rd := &connReader{br: bufio.NewReader(conn), fb: getFrameBuf()}
	defer putFrameBuf(rd.fb)
	w := &wireWriter{w: conn, fb: getFrameBuf()}
	defer putFrameBuf(w.fb)
	var req wireReq
	first := true
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		conn.SetReadDeadline(time.Now().Add(FrameTimeout))
		if err := rd.read(w.binary, &req); err != nil {
			return
		}
		wd.Kick()
		if hook := s.handlerHook; hook != nil {
			hook(req.Op)
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if req.Op == "hello" {
			// Codec negotiation is valid only as a connection's first
			// frame; a hello mid-stream means the peer lost frame sync,
			// and the connection is shed with a typed error frame.
			if !first {
				metCodecRejected.Inc()
				w.writeError("unexpected hello mid-stream")
				return
			}
			first = false
			if !negotiateHello(w, req.Codec, s.cfg.DisableBinary) {
				return
			}
			continue
		}
		first = false
		switch req.Op {
		case "fetch":
			s.mu.Lock()
			b := s.bundle
			s.mu.Unlock()
			if b == nil {
				b = &TraceBundle{Device: s.DeviceName}
			}
			if err := w.writeJSONy(b); err != nil {
				return
			}
		case "push":
			if !s.handlePush(conn, w, req.Obs) {
				return
			}
		case "drain":
			// Scale-out handoff: checkpoint-and-evict every resident
			// fleet session so a router can re-admit the beacons on the
			// surviving nodes (see fleetserve.go).
			if !s.handleDrain(conn, w) {
				return
			}
		case "metrics":
			// Expvar-style introspection: the process-wide metric
			// snapshot as one JSON frame, so an operator (or test)
			// can scrape transport and pipeline counters over the
			// same trace-exchange port.
			if err := w.writeJSONy(obs.Default.Snapshot()); err != nil {
				return
			}
		default:
			w.writeError("unknown op")
			return
		}
	}
}

// ServiceInfo describes a discovered device.
type ServiceInfo struct {
	Device string
	Addr   string // TCP trace-exchange address
}

// Discover probes a list of UDP discovery addresses and returns the
// devices that answered within the context deadline. Probes are re-sent
// with growing intervals to unanswered addresses — UDP datagrams are
// fire-and-forget, so a single lost probe must not hide a device for the
// whole discovery window. (On a real phone deployment this would be a
// broadcast; loopback simulations enumerate candidate ports.)
func Discover(ctx context.Context, addrs []string) ([]ServiceInfo, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
	}

	targets := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		if ua, err := net.ResolveUDPAddr("udp", a); err == nil {
			targets = append(targets, ua)
		}
	}
	probe := func() {
		for _, ua := range targets {
			conn.WriteTo([]byte(DiscoverMagic), ua)
		}
	}
	probe()

	policy := DefaultRetry()
	var found []ServiceInfo
	seen := make(map[string]bool)
	buf := make([]byte, 512)
	reprobe := 1
	next := time.Now().Add(policy.Delay(reprobe))
	for len(found) < len(targets) {
		// Read in short slices so probes can be re-sent between reads.
		slice := time.Now().Add(150 * time.Millisecond)
		if slice.After(deadline) {
			slice = deadline
		}
		conn.SetReadDeadline(slice)
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if time.Now().After(deadline) {
				break
			}
			if time.Now().After(next) {
				probe()
				reprobe++
				next = time.Now().Add(policy.Delay(reprobe))
			}
			continue
		}
		var magic, device, addr string
		if _, err := fmt.Sscanf(string(buf[:n]), "%s %s %s", &magic, &device, &addr); err != nil {
			continue
		}
		if magic != OfferMagic || seen[device+"|"+addr] {
			continue
		}
		seen[device+"|"+addr] = true
		found = append(found, ServiceInfo{Device: device, Addr: addr})
	}
	return found, nil
}

// Fetch retrieves the trace bundle from a device's TCP address, retrying
// refused or mid-frame-dropped connections with the default backoff
// policy until the context deadline.
func Fetch(ctx context.Context, addr string) (*TraceBundle, error) {
	return FetchWithRetry(ctx, addr, DefaultRetry())
}

// FetchWithRetry is Fetch under an explicit retry policy. A
// Retry{MaxAttempts: 1} makes it single-shot.
func FetchWithRetry(ctx context.Context, addr string, policy Retry) (*TraceBundle, error) {
	var b *TraceBundle
	err := policy.Do(ctx, func() error {
		var ferr error
		b, ferr = fetchOnce(ctx, addr)
		return ferr
	})
	return b, err
}

// FetchMetrics retrieves a server's process-wide metric snapshot (the
// "metrics" op) from its TCP trace-exchange address.
func FetchMetrics(ctx context.Context, addr string) (*obs.Snapshot, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	dl := time.Now().Add(FrameTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	conn.SetWriteDeadline(dl)
	if err := WriteFrame(conn, map[string]string{"op": "metrics"}); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(dl)
	var snap obs.Snapshot
	if err := ReadFrame(bufio.NewReader(conn), &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// fetchOnce performs one fetch exchange with per-frame deadlines.
func fetchOnce(ctx context.Context, addr string) (*TraceBundle, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	frameDeadline := func() time.Time {
		dl := time.Now().Add(FrameTimeout)
		if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
			dl = cdl
		}
		return dl
	}
	conn.SetWriteDeadline(frameDeadline())
	if err := WriteFrame(conn, map[string]string{"op": "fetch"}); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(frameDeadline())
	var resp struct {
		TraceBundle
		Err string `json:"error"`
	}
	if err := ReadFrame(bufio.NewReader(conn), &resp); err != nil {
		return nil, err
	}
	switch resp.Err {
	case "":
		return &resp.TraceBundle, nil
	case "overloaded":
		// A shed connection: typed so the retry policy (or the caller's
		// breaker) can back off and try again once load clears.
		return nil, fmt.Errorf("netproto: fetch %s: %w", addr, resilience.ErrOverloaded)
	default:
		return nil, fmt.Errorf("netproto: fetch %s: server error: %s", addr, resp.Err)
	}
}
