// Package netproto implements the device-to-device exchange LocBLE's
// moving-target mode needs (paper Secs. 5 and 7.1): after the measurement
// the target sends its RSS and motion traces to the observer for
// processing. The paper used UPnP; this package provides the same
// semantics with a small, self-contained protocol: UDP discovery
// (request/offer, like SSDP's M-SEARCH) plus a length-prefixed JSON
// exchange over TCP for the trace payload.
package netproto

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"locble/internal/obs"
)

// Protocol constants.
const (
	// DiscoverMagic opens every discovery datagram.
	DiscoverMagic = "LOCBLE-DISCOVER/1"
	// OfferMagic opens every discovery response.
	OfferMagic = "LOCBLE-OFFER/1"
	// MaxFrameSize bounds a trace frame (guards against corrupt length
	// prefixes).
	MaxFrameSize = 16 << 20
	// FrameTimeout is the per-frame read/write deadline. Deadlines are
	// refreshed before every frame, not set once per connection, so a
	// long multi-frame exchange never times out in the middle as long as
	// each individual frame keeps moving.
	FrameTimeout = 5 * time.Second
)

// Errors.
var (
	ErrFrameTooLarge = errors.New("netproto: frame exceeds maximum size")
	ErrBadMagic      = errors.New("netproto: bad protocol magic")
)

// TimedRSS is one RSS reading in a trace bundle.
type TimedRSS struct {
	T    float64 `json:"t"`
	RSS  float64 `json:"rss"`
	Chan int     `json:"chan,omitempty"`
}

// MotionPoint is one dead-reckoned displacement sample.
type MotionPoint struct {
	T float64 `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TraceBundle is the payload the target ships to the observer after a
// measurement: its RSS observations and its own motion track.
type TraceBundle struct {
	Device string        `json:"device"`
	RSS    []TimedRSS    `json:"rss"`
	Motion []MotionPoint `json:"motion"`
}

// sanitizeRSS drops entries with non-finite fields: JSON cannot carry
// NaN/Inf, and a degraded sensor feed must lose its poisoned readings at
// the wire boundary rather than poison the whole frame.
func sanitizeRSS(in []TimedRSS) []TimedRSS {
	clean := true
	for _, r := range in {
		if !isFinite(r.T) || !isFinite(r.RSS) {
			clean = false
			break
		}
	}
	if clean {
		return in
	}
	out := make([]TimedRSS, 0, len(in))
	for _, r := range in {
		if isFinite(r.T) && isFinite(r.RSS) {
			out = append(out, r)
		}
	}
	return out
}

func sanitizeMotion(in []MotionPoint) []MotionPoint {
	clean := true
	for _, m := range in {
		if !isFinite(m.T) || !isFinite(m.X) || !isFinite(m.Y) {
			clean = false
			break
		}
	}
	if clean {
		return in
	}
	out := make([]MotionPoint, 0, len(in))
	for _, m := range in {
		if isFinite(m.T) && isFinite(m.X) && isFinite(m.Y) {
			out = append(out, m)
		}
	}
	return out
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Sanitize returns the bundle with non-finite RSS and motion entries
// removed (see sanitizeRSS). The server applies it on SetBundle and the
// stream publisher per batch.
func (b *TraceBundle) Sanitize() *TraceBundle {
	if b == nil {
		return nil
	}
	out := *b
	out.RSS = sanitizeRSS(b.RSS)
	out.Motion = sanitizeMotion(b.Motion)
	return &out
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("netproto: marshal: %w", err)
	}
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err = w.Write(body); err != nil {
		return err
	}
	metFramesOut.Inc()
	metBytesOut.Add(int64(len(body)))
	return nil
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return err
	}
	metFramesIn.Inc()
	metBytesIn.Add(int64(len(body)))
	return nil
}

// Server announces a device and serves its trace bundle. It listens for
// discovery datagrams on UDP and serves trace fetches on TCP.
type Server struct {
	DeviceName string

	mu     sync.Mutex
	bundle *TraceBundle

	tcp net.Listener
	udp net.PacketConn

	wg     sync.WaitGroup
	closed chan struct{}
}

// SetBundle publishes the bundle served to clients (replacing any prior
// one). Non-finite entries are dropped at this boundary (JSON cannot
// carry them). Safe for concurrent use.
func (s *Server) SetBundle(b *TraceBundle) {
	b = b.Sanitize()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bundle = b
}

// NewServer starts a server for the named device on loopback. Pass port 0
// for an ephemeral port; the chosen addresses are available via Addr and
// DiscoveryAddr.
func NewServer(device string, port int) (*Server, error) {
	tcp, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("netproto: listen tcp: %w", err)
	}
	udp, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		// Ephemeral UDP port independent of the TCP one is fine.
		udp, err = net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			tcp.Close()
			return nil, fmt.Errorf("netproto: listen udp: %w", err)
		}
	}
	s := &Server{DeviceName: device, tcp: tcp, udp: udp, closed: make(chan struct{})}
	s.wg.Add(2)
	go s.serveTCP()
	go s.serveUDP()
	return s, nil
}

// Addr returns the TCP trace-exchange address.
func (s *Server) Addr() string { return s.tcp.Addr().String() }

// DiscoveryAddr returns the UDP discovery address.
func (s *Server) DiscoveryAddr() string { return s.udp.LocalAddr().String() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.tcp.Close()
	s.udp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	for {
		n, addr, err := s.udp.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		if string(buf[:n]) != DiscoverMagic {
			continue
		}
		offer := fmt.Sprintf("%s %s %s", OfferMagic, s.DeviceName, s.Addr())
		s.udp.WriteTo([]byte(offer), addr)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			// Deadlines are per frame, refreshed before each read and
			// write: a connection-scoped deadline would expire in the
			// middle of a long multi-frame exchange.
			var req struct {
				Op string `json:"op"`
			}
			br := bufio.NewReader(conn)
			for {
				conn.SetReadDeadline(time.Now().Add(FrameTimeout))
				if err := ReadFrame(br, &req); err != nil {
					return
				}
				conn.SetWriteDeadline(time.Now().Add(FrameTimeout))
				switch req.Op {
				case "fetch":
					s.mu.Lock()
					b := s.bundle
					s.mu.Unlock()
					if b == nil {
						b = &TraceBundle{Device: s.DeviceName}
					}
					if err := WriteFrame(conn, b); err != nil {
						return
					}
				case "metrics":
					// Expvar-style introspection: the process-wide metric
					// snapshot as one JSON frame, so an operator (or test)
					// can scrape transport and pipeline counters over the
					// same trace-exchange port.
					if err := WriteFrame(conn, obs.Default.Snapshot()); err != nil {
						return
					}
				default:
					WriteFrame(conn, map[string]string{"error": "unknown op"})
					return
				}
			}
		}()
	}
}

// ServiceInfo describes a discovered device.
type ServiceInfo struct {
	Device string
	Addr   string // TCP trace-exchange address
}

// Discover probes a list of UDP discovery addresses and returns the
// devices that answered within the context deadline. Probes are re-sent
// with growing intervals to unanswered addresses — UDP datagrams are
// fire-and-forget, so a single lost probe must not hide a device for the
// whole discovery window. (On a real phone deployment this would be a
// broadcast; loopback simulations enumerate candidate ports.)
func Discover(ctx context.Context, addrs []string) ([]ServiceInfo, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
	}

	targets := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		if ua, err := net.ResolveUDPAddr("udp", a); err == nil {
			targets = append(targets, ua)
		}
	}
	probe := func() {
		for _, ua := range targets {
			conn.WriteTo([]byte(DiscoverMagic), ua)
		}
	}
	probe()

	policy := DefaultRetry()
	var found []ServiceInfo
	seen := make(map[string]bool)
	buf := make([]byte, 512)
	reprobe := 1
	next := time.Now().Add(policy.Delay(reprobe))
	for len(found) < len(targets) {
		// Read in short slices so probes can be re-sent between reads.
		slice := time.Now().Add(150 * time.Millisecond)
		if slice.After(deadline) {
			slice = deadline
		}
		conn.SetReadDeadline(slice)
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if time.Now().After(deadline) {
				break
			}
			if time.Now().After(next) {
				probe()
				reprobe++
				next = time.Now().Add(policy.Delay(reprobe))
			}
			continue
		}
		var magic, device, addr string
		if _, err := fmt.Sscanf(string(buf[:n]), "%s %s %s", &magic, &device, &addr); err != nil {
			continue
		}
		if magic != OfferMagic || seen[device+"|"+addr] {
			continue
		}
		seen[device+"|"+addr] = true
		found = append(found, ServiceInfo{Device: device, Addr: addr})
	}
	return found, nil
}

// Fetch retrieves the trace bundle from a device's TCP address, retrying
// refused or mid-frame-dropped connections with the default backoff
// policy until the context deadline.
func Fetch(ctx context.Context, addr string) (*TraceBundle, error) {
	return FetchWithRetry(ctx, addr, DefaultRetry())
}

// FetchWithRetry is Fetch under an explicit retry policy. A
// Retry{MaxAttempts: 1} makes it single-shot.
func FetchWithRetry(ctx context.Context, addr string, policy Retry) (*TraceBundle, error) {
	var b *TraceBundle
	err := policy.Do(ctx, func() error {
		var ferr error
		b, ferr = fetchOnce(ctx, addr)
		return ferr
	})
	return b, err
}

// FetchMetrics retrieves a server's process-wide metric snapshot (the
// "metrics" op) from its TCP trace-exchange address.
func FetchMetrics(ctx context.Context, addr string) (*obs.Snapshot, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	dl := time.Now().Add(FrameTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	conn.SetWriteDeadline(dl)
	if err := WriteFrame(conn, map[string]string{"op": "metrics"}); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(dl)
	var snap obs.Snapshot
	if err := ReadFrame(bufio.NewReader(conn), &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// fetchOnce performs one fetch exchange with per-frame deadlines.
func fetchOnce(ctx context.Context, addr string) (*TraceBundle, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	frameDeadline := func() time.Time {
		dl := time.Now().Add(FrameTimeout)
		if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
			dl = cdl
		}
		return dl
	}
	conn.SetWriteDeadline(frameDeadline())
	if err := WriteFrame(conn, map[string]string{"op": "fetch"}); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(frameDeadline())
	var b TraceBundle
	if err := ReadFrame(bufio.NewReader(conn), &b); err != nil {
		return nil, err
	}
	return &b, nil
}
