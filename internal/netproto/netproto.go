// Package netproto implements the device-to-device exchange LocBLE's
// moving-target mode needs (paper Secs. 5 and 7.1): after the measurement
// the target sends its RSS and motion traces to the observer for
// processing. The paper used UPnP; this package provides the same
// semantics with a small, self-contained protocol: UDP discovery
// (request/offer, like SSDP's M-SEARCH) plus a length-prefixed JSON
// exchange over TCP for the trace payload.
package netproto

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Protocol constants.
const (
	// DiscoverMagic opens every discovery datagram.
	DiscoverMagic = "LOCBLE-DISCOVER/1"
	// OfferMagic opens every discovery response.
	OfferMagic = "LOCBLE-OFFER/1"
	// MaxFrameSize bounds a trace frame (guards against corrupt length
	// prefixes).
	MaxFrameSize = 16 << 20
)

// Errors.
var (
	ErrFrameTooLarge = errors.New("netproto: frame exceeds maximum size")
	ErrBadMagic      = errors.New("netproto: bad protocol magic")
)

// TimedRSS is one RSS reading in a trace bundle.
type TimedRSS struct {
	T    float64 `json:"t"`
	RSS  float64 `json:"rss"`
	Chan int     `json:"chan,omitempty"`
}

// MotionPoint is one dead-reckoned displacement sample.
type MotionPoint struct {
	T float64 `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TraceBundle is the payload the target ships to the observer after a
// measurement: its RSS observations and its own motion track.
type TraceBundle struct {
	Device string        `json:"device"`
	RSS    []TimedRSS    `json:"rss"`
	Motion []MotionPoint `json:"motion"`
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("netproto: marshal: %w", err)
	}
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Server announces a device and serves its trace bundle. It listens for
// discovery datagrams on UDP and serves trace fetches on TCP.
type Server struct {
	DeviceName string

	mu     sync.Mutex
	bundle *TraceBundle

	tcp net.Listener
	udp net.PacketConn

	wg     sync.WaitGroup
	closed chan struct{}
}

// SetBundle publishes the bundle served to clients (replacing any prior
// one). Safe for concurrent use.
func (s *Server) SetBundle(b *TraceBundle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bundle = b
}

// NewServer starts a server for the named device on loopback. Pass port 0
// for an ephemeral port; the chosen addresses are available via Addr and
// DiscoveryAddr.
func NewServer(device string, port int) (*Server, error) {
	tcp, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("netproto: listen tcp: %w", err)
	}
	udp, err := net.ListenPacket("udp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		// Ephemeral UDP port independent of the TCP one is fine.
		udp, err = net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			tcp.Close()
			return nil, fmt.Errorf("netproto: listen udp: %w", err)
		}
	}
	s := &Server{DeviceName: device, tcp: tcp, udp: udp, closed: make(chan struct{})}
	s.wg.Add(2)
	go s.serveTCP()
	go s.serveUDP()
	return s, nil
}

// Addr returns the TCP trace-exchange address.
func (s *Server) Addr() string { return s.tcp.Addr().String() }

// DiscoveryAddr returns the UDP discovery address.
func (s *Server) DiscoveryAddr() string { return s.udp.LocalAddr().String() }

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.tcp.Close()
	s.udp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	for {
		n, addr, err := s.udp.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		if string(buf[:n]) != DiscoverMagic {
			continue
		}
		offer := fmt.Sprintf("%s %s %s", OfferMagic, s.DeviceName, s.Addr())
		s.udp.WriteTo([]byte(offer), addr)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			var req struct {
				Op string `json:"op"`
			}
			br := bufio.NewReader(conn)
			if err := ReadFrame(br, &req); err != nil {
				return
			}
			if req.Op != "fetch" {
				WriteFrame(conn, map[string]string{"error": "unknown op"})
				return
			}
			s.mu.Lock()
			b := s.bundle
			s.mu.Unlock()
			if b == nil {
				b = &TraceBundle{Device: s.DeviceName}
			}
			WriteFrame(conn, b)
		}()
	}
}

// ServiceInfo describes a discovered device.
type ServiceInfo struct {
	Device string
	Addr   string // TCP trace-exchange address
}

// Discover probes a list of UDP discovery addresses and returns the
// devices that answered within the context deadline. (On a real phone
// deployment this would be a broadcast; loopback simulations enumerate
// candidate ports.)
func Discover(ctx context.Context, addrs []string) ([]ServiceInfo, error) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Now().Add(2 * time.Second))
	}
	for _, a := range addrs {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			continue
		}
		conn.WriteTo([]byte(DiscoverMagic), ua)
	}
	var found []ServiceInfo
	buf := make([]byte, 512)
	for len(found) < len(addrs) {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			break // deadline
		}
		var magic, device, addr string
		if _, err := fmt.Sscanf(string(buf[:n]), "%s %s %s", &magic, &device, &addr); err != nil {
			continue
		}
		if magic != OfferMagic {
			continue
		}
		found = append(found, ServiceInfo{Device: device, Addr: addr})
	}
	return found, nil
}

// Fetch retrieves the trace bundle from a device's TCP address.
func Fetch(ctx context.Context, addr string) (*TraceBundle, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Now().Add(5 * time.Second))
	}
	if err := WriteFrame(conn, map[string]string{"op": "fetch"}); err != nil {
		return nil, err
	}
	var b TraceBundle
	if err := ReadFrame(bufio.NewReader(conn), &b); err != nil {
		return nil, err
	}
	return &b, nil
}
