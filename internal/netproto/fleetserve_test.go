package netproto

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"locble/internal/core"
	"locble/internal/durable"
	"locble/internal/estimate"
	"locble/internal/fleet"
	"locble/internal/resilience"
	"locble/internal/testutil"
)

func newPushServer(t *testing.T, cfg ServerConfig) (*Server, *fleet.Fleet) {
	t.Helper()
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	fl, err := fleet.New(eng, fleet.Config{
		Session: core.TrackSessionConfig{SampleRateHz: 8},
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(func() { fl.Close() })
	srv, err := NewServerWithConfig("fleet-gw", 0, cfg)
	if err != nil {
		t.Fatalf("NewServerWithConfig: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetFleet(fl)
	return srv, fl
}

func toWire(obs []fleet.Obs) []PushObs {
	out := make([]PushObs, len(obs))
	for i, o := range obs {
		out[i] = PushObs{Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q}
	}
	return out
}

// TestPushOpStreamsFixes drives batched ingest over the wire and checks
// the streamed fixes are bit-identical to a local session fed the same
// observations: the protocol is pure transport (JSON float64 round-trips
// exactly), and lifecycle flags arrive with the results.
func TestPushOpStreamsFixes(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := newPushServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()

	const n, slice = 240, 24
	streams := map[string][]fleet.Obs{
		"w1": fleet.SynthStream("w1", n, 0.3),
		"w2": fleet.SynthStream("w2", n, 2.1),
	}
	wireFixes := map[string][]PushFix{}
	for lo := 0; lo < n; lo += slice {
		var batch []PushObs
		for _, s := range streams {
			batch = append(batch, toWire(s[lo:lo+slice])...)
		}
		res, err := cl.Push(ctx, batch)
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
		if len(res) != 2 {
			t.Fatalf("push returned %d results, want 2", len(res))
		}
		for _, r := range res {
			if r.Err != "" {
				t.Fatalf("%s: %s", r.Beacon, r.Err)
			}
			if (lo == 0) != r.Created {
				t.Errorf("%s @lo=%d: Created=%v", r.Beacon, lo, r.Created)
			}
			wireFixes[r.Beacon] = append(wireFixes[r.Beacon], r.Fixes...)
		}
	}

	// Local ground truth: one standalone session per beacon.
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	for name, stream := range streams {
		s, err := eng.NewTrackSession(core.TrackSessionConfig{Beacon: name, SampleRateHz: 8})
		if err != nil {
			t.Fatalf("NewTrackSession: %v", err)
		}
		var want []PushFix
		for _, o := range stream {
			pt, err := s.Push(estimate.Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
			if err != nil {
				t.Fatalf("local Push: %v", err)
			}
			if pt != nil {
				want = append(want, PushFix{
					T: pt.T, X: pt.Est.X, Y: pt.Est.H,
					N: pt.Est.N, Gamma: pt.Est.Gamma,
					Confidence: pt.Est.Confidence,
					Mode:       pt.Mode.String(),
					Samples:    pt.Samples,
				})
			}
		}
		got := wireFixes[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %d wire fixes, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s fix %d differs over the wire:\n got  %+v\n want %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestPushOpScrubsBoundary: non-finite fields and unnamed observations
// are dropped at the wire boundary — the rest of the batch lands, and a
// beacon made entirely of poison simply never exists.
func TestPushOpScrubsBoundary(t *testing.T) {
	srv, fl := newPushServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()

	batch := toWire(fleet.SynthStream("ok", 8, 0))
	batch = append(batch,
		PushObs{Beacon: "poison", T: 1, RSS: math.NaN(), P: 0, Q: 0},
		PushObs{Beacon: "poison", T: math.Inf(1), RSS: -60, P: 0, Q: 0},
		PushObs{Beacon: "", T: 2, RSS: -60, P: 0, Q: 0},
	)
	res, err := cl.Push(ctx, batch)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	if len(res) != 1 || res[0].Beacon != "ok" || res[0].Err != "" {
		t.Fatalf("results = %+v, want exactly one clean result for %q", res, "ok")
	}
	if got := fl.Sessions(); got != 1 {
		t.Errorf("Sessions() = %d, want 1 (poisoned beacon must not get a session)", got)
	}
}

// TestPushOpNoFleet: a server without an attached fleet refuses the op
// with an exchange-level error, not a hang or an empty success.
func TestPushOpNoFleet(t *testing.T) {
	srv, err := NewServer("no-fleet", 0)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Push(ctx, toWire(fleet.SynthStream("b", 4, 0))); err == nil {
		t.Fatal("Push on a fleet-less server succeeded, want server error")
	}
}

// TestPushOpOverloadShed: pushes ride the same admission control as
// every other op — a connection over the cap is shed with an
// "overloaded" frame the client surfaces as resilience.ErrOverloaded.
func TestPushOpOverloadShed(t *testing.T) {
	srv, _ := newPushServer(t, ServerConfig{MaxConns: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	hold, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet(hold): %v", err)
	}
	defer hold.Close()
	// Occupy the only slot with a real exchange so the connection is
	// registered before the second dial.
	if _, err := hold.Push(ctx, toWire(fleet.SynthStream("holder", 4, 0))); err != nil {
		t.Fatalf("holder Push: %v", err)
	}

	shed, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet(shed): %v", err)
	}
	defer shed.Close()
	_, err = shed.Push(ctx, toWire(fleet.SynthStream("shed", 4, 0)))
	if !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("shed Push error = %v, want resilience.ErrOverloaded", err)
	}
}

// corruptStore is a CheckpointStore stub whose poisoned beacons load as
// corrupt — exercising the quarantine path without a real damaged disk.
type corruptStore struct {
	mu       sync.Mutex
	poisoned map[string]bool
}

func (c *corruptStore) Save(beacon string, cp *core.SessionCheckpoint) error { return nil }

func (c *corruptStore) Load(beacon string) (*core.SessionCheckpoint, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.poisoned[beacon] {
		return nil, true, fmt.Errorf("stub: %w", core.ErrCorruptCheckpoint)
	}
	return nil, false, nil
}

func (c *corruptStore) Delete(beacon string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.poisoned, beacon)
	return nil
}

// TestPushOpQuarantinedOnWire: a corrupt stored checkpoint surfaces as
// Quarantined on the beacon's wire result — the client learns the
// session started cold instead of silently resuming from bad state.
func TestPushOpQuarantinedOnWire(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	fl, err := fleet.New(eng, fleet.Config{
		Session: core.TrackSessionConfig{SampleRateHz: 8},
		Store:   &corruptStore{poisoned: map[string]bool{"q-bad": true}},
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	t.Cleanup(func() { fl.Close() })
	srv, err := NewServer("fleet-quar", 0)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetFleet(fl)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()

	var batch []PushObs
	batch = append(batch, toWire(fleet.SynthStream("q-bad", 24, 0.2))...)
	batch = append(batch, toWire(fleet.SynthStream("q-ok", 24, 1.1))...)
	res, err := cl.Push(ctx, batch)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	got := map[string]PushResult{}
	for _, r := range res {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Beacon, r.Err)
		}
		got[r.Beacon] = r
	}
	bad := got["q-bad"]
	if !bad.Quarantined || bad.Restored || !bad.Created {
		t.Fatalf("q-bad: Quarantined=%v Restored=%v Created=%v; want quarantined cold start", bad.Quarantined, bad.Restored, bad.Created)
	}
	ok := got["q-ok"]
	if ok.Quarantined {
		t.Fatalf("q-ok wrongly quarantined: %+v", ok)
	}
}

// TestPushOpDurableRestart runs the full kill-and-rebuild story over
// the wire: server A ingests half a stream on a durable file store and
// is torn down (fleet Close checkpoints every live session); server B —
// a fresh engine, fleet, and server over the same directory — ingests
// the second half. The beacon's result reports Restored, and the fixes
// across both incarnations are bit-identical to one uninterrupted local
// session.
func TestPushOpDurableRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	const n, half, slice = 240, 120, 24
	stream := fleet.SynthStream("dur-1", n, 0.7)

	runHalf := func(lo, hi int, wantRestored bool) []PushFix {
		t.Helper()
		eng, err := core.NewEngine(core.DefaultConfig())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		defer eng.Close()
		st, err := durable.Open(dir, nil)
		if err != nil {
			t.Fatalf("durable.Open: %v", err)
		}
		defer st.Close()
		if rec := st.RecoveryStats(); rec.Quarantined != 0 || rec.TornTails != 0 {
			t.Fatalf("clean shutdown left damage: %+v", rec)
		}
		fl, err := fleet.New(eng, fleet.Config{
			Session: core.TrackSessionConfig{SampleRateHz: 8},
			Store:   st,
		})
		if err != nil {
			t.Fatalf("fleet.New: %v", err)
		}
		srv, err := NewServer("fleet-dur", 0)
		if err != nil {
			fl.Close()
			t.Fatalf("NewServer: %v", err)
		}
		srv.SetFleet(fl)
		defer fl.Close() // checkpoints live sessions into the store
		defer srv.Close()

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		cl, err := DialFleet(ctx, srv.Addr())
		if err != nil {
			t.Fatalf("DialFleet: %v", err)
		}
		defer cl.Close()

		var fixes []PushFix
		for at := lo; at < hi; at += slice {
			res, err := cl.Push(ctx, toWire(stream[at:at+slice]))
			if err != nil {
				t.Fatalf("Push @%d: %v", at, err)
			}
			if len(res) != 1 {
				t.Fatalf("push returned %d results, want 1", len(res))
			}
			r := res[0]
			if r.Err != "" {
				t.Fatalf("dur-1 @%d: %s", at, r.Err)
			}
			if at == lo && r.Restored != wantRestored {
				t.Fatalf("first batch @%d: Restored=%v, want %v", at, r.Restored, wantRestored)
			}
			if r.Quarantined {
				t.Fatalf("dur-1 @%d wrongly quarantined", at)
			}
			fixes = append(fixes, r.Fixes...)
		}
		return fixes
	}

	got := runHalf(0, half, false)
	got = append(got, runHalf(half, n, true)...)

	// Ground truth: one uninterrupted local session over the whole stream.
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	s, err := eng.NewTrackSession(core.TrackSessionConfig{Beacon: "dur-1", SampleRateHz: 8})
	if err != nil {
		t.Fatalf("NewTrackSession: %v", err)
	}
	var want []PushFix
	for _, o := range stream {
		pt, err := s.Push(estimate.Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
		if err != nil {
			t.Fatalf("local Push: %v", err)
		}
		if pt != nil {
			want = append(want, PushFix{
				T: pt.T, X: pt.Est.X, Y: pt.Est.H,
				N: pt.Est.N, Gamma: pt.Est.Gamma,
				Confidence: pt.Est.Confidence,
				Mode:       pt.Mode.String(),
				Samples:    pt.Samples,
			})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d fixes across the restart, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fix %d differs across kill-and-rebuild:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}
