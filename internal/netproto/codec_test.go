package netproto

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"locble/internal/core"
	"locble/internal/estimate"
	"locble/internal/fleet"
	"locble/internal/testutil"
)

// localReplayFixes feeds a stream into one standalone local session and
// returns the fixes — the ground truth every wire codec must reproduce
// bit-for-bit.
func localReplayFixes(t *testing.T, stream []fleet.Obs) []PushFix {
	t.Helper()
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	s, err := eng.NewTrackSession(core.TrackSessionConfig{Beacon: stream[0].Beacon, SampleRateHz: 8})
	if err != nil {
		t.Fatalf("NewTrackSession: %v", err)
	}
	var want []PushFix
	for _, o := range stream {
		pt, err := s.Push(estimate.Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
		if err != nil {
			t.Fatalf("local Push: %v", err)
		}
		if pt != nil {
			want = append(want, PushFix{
				T: pt.T, X: pt.Est.X, Y: pt.Est.H,
				N: pt.Est.N, Gamma: pt.Est.Gamma,
				Confidence: pt.Est.Confidence,
				Mode:       pt.Mode.String(),
				Samples:    pt.Samples,
			})
		}
	}
	return want
}

// requireBitIdentical compares fix streams field by field at the bit
// level — float equality (==) would let -0 alias 0 and hide a codec
// that normalizes bits.
func requireBitIdentical(t *testing.T, label string, got, want []PushFix) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d fixes, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		same := math.Float64bits(g.T) == math.Float64bits(w.T) &&
			math.Float64bits(g.X) == math.Float64bits(w.X) &&
			math.Float64bits(g.Y) == math.Float64bits(w.Y) &&
			math.Float64bits(g.N) == math.Float64bits(w.N) &&
			math.Float64bits(g.Gamma) == math.Float64bits(w.Gamma) &&
			math.Float64bits(g.Confidence) == math.Float64bits(w.Confidence) &&
			g.Mode == w.Mode && g.Samples == w.Samples
		if !same {
			t.Fatalf("%s: fix %d differs at the bit level:\n got  %+v\n want %+v", label, i, got[i], want[i])
		}
	}
}

// pushStream pushes a stream through cl in slices and returns the
// concatenated fixes.
func pushStream(t *testing.T, ctx context.Context, cl *FleetClient, stream []fleet.Obs, slice int) []PushFix {
	t.Helper()
	var fixes []PushFix
	for lo := 0; lo < len(stream); lo += slice {
		res, err := cl.Push(ctx, toWire(stream[lo:lo+slice]))
		if err != nil {
			t.Fatalf("Push @%d: %v", lo, err)
		}
		for _, r := range res {
			if r.Err != "" {
				t.Fatalf("%s @%d: %s", r.Beacon, lo, r.Err)
			}
			fixes = append(fixes, r.Fixes...)
		}
	}
	return fixes
}

// TestCodecNegotiationMatrix covers every pairing of client codec
// request and server capability: who lands on which codec, and that the
// exchange works (or fails loudly) afterwards.
func TestCodecNegotiationMatrix(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	t.Run("default-client/default-server-lands-binary", func(t *testing.T) {
		srv, _ := newPushServer(t, ServerConfig{})
		cl, err := DialFleet(ctx, srv.Addr())
		if err != nil {
			t.Fatalf("DialFleet: %v", err)
		}
		defer cl.Close()
		if got := cl.Codec(); got != CodecBinary {
			t.Fatalf("Codec() = %q, want %q", got, CodecBinary)
		}
		if _, err := cl.Push(ctx, toWire(fleet.SynthStream("m-bin", 8, 0))); err != nil {
			t.Fatalf("binary Push: %v", err)
		}
	})

	t.Run("json-pinned-client-sends-no-hello", func(t *testing.T) {
		srv, _ := newPushServer(t, ServerConfig{})
		cl, err := DialFleetWith(ctx, srv.Addr(), FleetDialConfig{Codec: CodecJSON})
		if err != nil {
			t.Fatalf("DialFleetWith: %v", err)
		}
		defer cl.Close()
		if got := cl.Codec(); got != CodecJSON {
			t.Fatalf("Codec() = %q, want %q", got, CodecJSON)
		}
		if _, err := cl.Push(ctx, toWire(fleet.SynthStream("m-json", 8, 0))); err != nil {
			t.Fatalf("json Push: %v", err)
		}
	})

	t.Run("new-client/old-server-falls-back-to-json", func(t *testing.T) {
		// DisableBinary answers the hello byte-identically to a pre-codec
		// server, so this is the new-vs-old interop path.
		srv, _ := newPushServer(t, ServerConfig{DisableBinary: true})
		cl, err := DialFleet(ctx, srv.Addr())
		if err != nil {
			t.Fatalf("DialFleet against old server: %v", err)
		}
		defer cl.Close()
		if got := cl.Codec(); got != CodecJSON {
			t.Fatalf("Codec() = %q, want %q fallback", got, CodecJSON)
		}
		if _, err := cl.Push(ctx, toWire(fleet.SynthStream("m-fall", 8, 0))); err != nil {
			t.Fatalf("fallback Push: %v", err)
		}
	})

	t.Run("binary-required/old-server-fails-dial", func(t *testing.T) {
		srv, _ := newPushServer(t, ServerConfig{DisableBinary: true})
		cl, err := DialFleetWith(ctx, srv.Addr(), FleetDialConfig{Codec: CodecBinary})
		if err == nil {
			cl.Close()
			t.Fatal("dial with required binary against an old server succeeded")
		}
		if !strings.Contains(err.Error(), CodecBinary) {
			t.Fatalf("dial error %q does not name the refused codec", err)
		}
	})
}

// TestHelloUnknownCodecRejected: a hello offering a codec the server
// doesn't know is refused with a typed error frame and the connection
// closed — never silently misparsed.
func TestHelloUnknownCodecRejected(t *testing.T) {
	srv, _ := newPushServer(t, ServerConfig{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, map[string]string{"op": "hello", "codec": "locb99"}); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	var resp struct {
		Err string `json:"error"`
	}
	br := newReader(conn)
	if err := ReadFrame(br, &resp); err != nil {
		t.Fatalf("read answer: %v", err)
	}
	if !strings.Contains(resp.Err, "unsupported codec") {
		t.Fatalf("answer %+v, want an unsupported-codec error", resp)
	}
	var after json.RawMessage
	if err := ReadFrame(br, &after); err == nil {
		t.Fatalf("connection still open after rejected hello: read %s", after)
	}
}

// TestHelloMidStreamRejected: a hello anywhere but the first frame is a
// protocol violation — typed error frame, connection shed.
func TestHelloMidStreamRejected(t *testing.T) {
	srv, _ := newPushServer(t, ServerConfig{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	br := newReader(conn)

	// A legitimate first exchange to move past the first frame.
	if err := WriteFrame(conn, map[string]string{"op": "metrics"}); err != nil {
		t.Fatalf("write metrics: %v", err)
	}
	var snap json.RawMessage
	if err := ReadFrame(br, &snap); err != nil {
		t.Fatalf("read metrics: %v", err)
	}

	if err := WriteFrame(conn, map[string]string{"op": "hello", "codec": CodecBinary}); err != nil {
		t.Fatalf("write late hello: %v", err)
	}
	var resp struct {
		Err string `json:"error"`
	}
	if err := ReadFrame(br, &resp); err != nil {
		t.Fatalf("read answer: %v", err)
	}
	if !strings.Contains(resp.Err, "hello") {
		t.Fatalf("answer %+v, want a mid-stream hello error", resp)
	}
	var after json.RawMessage
	if err := ReadFrame(br, &after); err == nil {
		t.Fatalf("connection still open after mid-stream hello: read %s", after)
	}
}

func newReader(conn net.Conn) *bufio.Reader { return bufio.NewReader(conn) }

// countingWriter counts Write calls — the single-write framing proof.
type countingWriter struct {
	bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.Buffer.Write(p)
}

// TestFramesAreSingleWrite: both codecs emit header+body with exactly
// one Write call per frame — no header/body syscall split, and no
// small-write interleaving hazard between pipelined writers.
func TestFramesAreSingleWrite(t *testing.T) {
	var w countingWriter
	if err := WriteFrame(&w, map[string]string{"op": "drain"}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if w.writes != 1 {
		t.Fatalf("JSON WriteFrame made %d Write calls, want 1", w.writes)
	}

	w = countingWriter{}
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	fb.beginFrame()
	fb.b = appendPushReq(fb.b, []PushObs{{Beacon: "b", T: 1, RSS: -60}}, &[]string{})
	if err := flushFrame(&w, fb.b); err != nil {
		t.Fatalf("flushFrame: %v", err)
	}
	if w.writes != 1 {
		t.Fatalf("binary frame made %d Write calls, want 1", w.writes)
	}
}

// TestJSONModeBytesUnchanged: a JSON-pinned client's request frames are
// byte-identical to the pre-codec client's — the pooled encoder path
// changed the allocation profile, not the wire.
func TestJSONModeBytesUnchanged(t *testing.T) {
	req := struct {
		Op  string    `json:"op"`
		Obs []PushObs `json:"obs"`
	}{Op: "push", Obs: toWire(fleet.SynthStream("bytes", 4, 0))}

	var pooled countingWriter
	if err := WriteFrame(&pooled, &req); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}

	// The seed implementation: marshal, then prepend the length header.
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := append([]byte{byte(len(body) >> 24), byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}, body...)
	if !bytes.Equal(pooled.Bytes(), want) {
		t.Fatalf("pooled JSON frame differs from seed encoding:\n got  %q\n want %q", pooled.Bytes(), want)
	}
}

// TestBinaryPushBitIdentical is the codec's load-bearing contract: the
// same observation stream pushed through a binary-negotiated client, a
// JSON-negotiated client, and a local replay produces bit-identical
// fixes. Run under -race it also exercises the pipelined reader.
func TestBinaryPushBitIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const n, slice = 240, 24
	stream := fleet.SynthStream("bit-1", n, 0.45)
	want := localReplayFixes(t, stream)
	if len(want) == 0 {
		t.Fatal("local replay produced no fixes; the comparison is vacuous")
	}

	for _, codec := range []string{CodecBinary, CodecJSON} {
		srv, _ := newPushServer(t, ServerConfig{})
		cl, err := DialFleetWith(ctx, srv.Addr(), FleetDialConfig{Codec: codec})
		if err != nil {
			t.Fatalf("dial %s: %v", codec, err)
		}
		got := pushStream(t, ctx, cl, stream, slice)
		cl.Close()
		requireBitIdentical(t, codec, got, want)
	}
}

// TestBinaryPushConcurrentBitIdentical: many goroutines pipelining
// distinct beacons over one binary connection still get bit-identical
// per-beacon fix streams — the FIFO matcher and the intern table hold
// up under interleaving (and -race watches the locks).
func TestBinaryPushConcurrentBitIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	srv, _ := newPushServer(t, ServerConfig{})
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("DialFleet: %v", err)
	}
	defer cl.Close()
	if cl.Codec() != CodecBinary {
		t.Fatalf("Codec() = %q, want binary", cl.Codec())
	}

	const pushers, n, slice = 6, 120, 24
	streams := make([][]fleet.Obs, pushers)
	for i := range streams {
		streams[i] = fleet.SynthStream(fmt.Sprintf("cc-%02d", i), n, 0.7*float64(i))
	}
	got := make([][]PushFix, pushers)
	var wg sync.WaitGroup
	errs := make(chan error, pushers)
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for lo := 0; lo < n; lo += slice {
				res, err := cl.Push(ctx, toWire(streams[i][lo:lo+slice]))
				if err != nil {
					errs <- fmt.Errorf("pusher %d @%d: %w", i, lo, err)
					return
				}
				for _, r := range res {
					if r.Err != "" {
						errs <- fmt.Errorf("pusher %d: %s: %s", i, r.Beacon, r.Err)
						return
					}
					got[i] = append(got[i], r.Fixes...)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range streams {
		requireBitIdentical(t, fmt.Sprintf("pusher %d", i), got[i], localReplayFixes(t, streams[i]))
	}
}

// fakeFleetServer is a hand-driven server for pipelining tests: it
// negotiates binary, then reads request frames without answering until
// told to, so the client's window fills deterministically.
type fakeFleetServer struct {
	t  *testing.T
	ln net.Listener

	mu     sync.Mutex
	conn   net.Conn
	reqs   int
	gotReq chan struct{} // one tick per request frame read
}

func newFakeFleetServer(t *testing.T) *fakeFleetServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &fakeFleetServer{t: t, ln: ln, gotReq: make(chan struct{}, 64)}
	t.Cleanup(func() { s.Close() })
	go s.serveOne()
	return s
}

func (s *fakeFleetServer) serveOne() {
	conn, err := s.ln.Accept()
	if err != nil {
		return
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	br := bufio.NewReader(conn)
	var hello wireReq
	if err := ReadFrame(br, &hello); err != nil || hello.Op != "hello" {
		conn.Close()
		return
	}
	if err := WriteFrame(conn, helloAck{Codec: CodecBinary}); err != nil {
		return
	}
	fb := newFrameBuf()
	for {
		if _, err := readFrameBody(br, fb); err != nil {
			return
		}
		s.mu.Lock()
		s.reqs++
		s.mu.Unlock()
		s.gotReq <- struct{}{}
	}
}

// respondError writes one bfError frame on the accepted connection.
func (s *fakeFleetServer) respondError(msg string) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	fb := newFrameBuf()
	fb.beginFrame()
	fb.b = appendError(fb.b, msg)
	if err := flushFrame(conn, fb.b); err != nil {
		s.t.Errorf("fake server write: %v", err)
	}
}

func (s *fakeFleetServer) Close() {
	s.ln.Close()
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.mu.Unlock()
}

// TestPipelineWindowBounds: with Window=2 a third PushAsync blocks until
// a slot frees; it respects its context while blocked.
func TestPipelineWindowBounds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv := newFakeFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := DialFleetWith(ctx, srv.ln.Addr().String(), FleetDialConfig{Window: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	batch := toWire(fleet.SynthStream("win", 4, 0))
	for i := 0; i < 2; i++ {
		if _, err := cl.PushAsync(ctx, batch); err != nil {
			t.Fatalf("PushAsync %d: %v", i, err)
		}
		<-srv.gotReq
	}
	// Window full: the third push must park on the window, not the wire.
	short, scancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer scancel()
	if _, err := cl.PushAsync(short, batch); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PushAsync with a full window: err = %v, want context.DeadlineExceeded", err)
	}
	srv.mu.Lock()
	reqs := srv.reqs
	srv.mu.Unlock()
	if reqs != 2 {
		t.Fatalf("server saw %d request frames, want 2 (window must bound the wire)", reqs)
	}
}

// TestPipelinePoisonFailsAllPending: an exchange-level error frame is
// terminal — the failed exchange and everything queued behind it report
// the error, and later calls fail fast.
func TestPipelinePoisonFailsAllPending(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv := newFakeFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := DialFleetWith(ctx, srv.ln.Addr().String(), FleetDialConfig{Window: 4})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	batch := toWire(fleet.SynthStream("poison", 4, 0))
	var pendings []*PushPending
	for i := 0; i < 3; i++ {
		p, err := cl.PushAsync(ctx, batch)
		if err != nil {
			t.Fatalf("PushAsync %d: %v", i, err)
		}
		pendings = append(pendings, p)
		<-srv.gotReq
	}
	srv.respondError("no fleet attached")
	for i, p := range pendings {
		if _, err := p.Wait(ctx); err == nil {
			t.Fatalf("pending %d succeeded after pipeline poison", i)
		}
	}
	if _, err := cl.Push(ctx, batch); err == nil {
		t.Fatal("Push on a poisoned client succeeded")
	}
}

// TestPipelineFIFOOrdering: responses match requests in send order —
// each async push's results carry its own batch's beacon.
func TestPipelineFIFOOrdering(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := newPushServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := DialFleetWith(ctx, srv.Addr(), FleetDialConfig{Window: 8})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const k = 8
	var pendings []*PushPending
	for i := 0; i < k; i++ {
		p, err := cl.PushAsync(ctx, toWire(fleet.SynthStream(fmt.Sprintf("fifo-%d", i), 8, 0)))
		if err != nil {
			t.Fatalf("PushAsync %d: %v", i, err)
		}
		pendings = append(pendings, p)
	}
	for i, p := range pendings {
		res, err := p.Wait(ctx)
		if err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		if len(res) != 1 || res[0].Beacon != fmt.Sprintf("fifo-%d", i) {
			t.Fatalf("pending %d got results %+v, want its own beacon fifo-%d", i, res, i)
		}
	}
}

// TestPipelineDrainOrdering: a drain enqueued after pushes completes
// after them and reports the sessions those pushes created.
func TestPipelineDrainOrdering(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv, _ := newPushServer(t, ServerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := DialFleet(ctx, srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	for i := 0; i < 3; i++ {
		if _, err := cl.PushAsync(ctx, toWire(fleet.SynthStream(fmt.Sprintf("dr-%d", i), 8, 0))); err != nil {
			t.Fatalf("PushAsync %d: %v", i, err)
		}
	}
	n, err := cl.Drain(ctx)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n != 3 {
		t.Fatalf("Drain reported %d sessions, want 3 (pushes pipelined before it)", n)
	}
}

// TestFleetClientCloseWithInflight: Close with exchanges in flight
// fails them with a terminal error and leaks nothing.
func TestFleetClientCloseWithInflight(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	srv := newFakeFleetServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := DialFleetWith(ctx, srv.ln.Addr().String(), FleetDialConfig{Window: 4})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	p, err := cl.PushAsync(ctx, toWire(fleet.SynthStream("close", 4, 0)))
	if err != nil {
		t.Fatalf("PushAsync: %v", err)
	}
	<-srv.gotReq
	cl.Close()
	if _, err := p.Wait(ctx); err == nil {
		t.Fatal("in-flight exchange succeeded across Close")
	}
}

// TestStreamCodecNegotiation: the stream path negotiates too — binary
// by default, JSON when pinned, JSON fallback against an old server —
// and every mode delivers identical batches.
func TestStreamCodecNegotiation(t *testing.T) {
	publish := func(t *testing.T, srv *StreamServer) {
		t.Helper()
		time.Sleep(50 * time.Millisecond) // let the subscriber register
		for i := 0; i < 3; i++ {
			err := srv.Publish(
				[]TimedRSS{{T: float64(i), RSS: -70 - float64(i), Chan: 37 + i}},
				[]MotionPoint{{T: float64(i), X: 0.7 * float64(i), Y: -0.2 * float64(i)}},
				i == 2,
			)
			if err != nil {
				t.Fatalf("Publish %d: %v", i, err)
			}
		}
	}
	check := func(t *testing.T, ch <-chan StreamBatch) {
		t.Helper()
		var got []StreamBatch
		for b := range ch {
			got = append(got, b)
		}
		if len(got) != 3 {
			t.Fatalf("received %d batches, want 3", len(got))
		}
		for i, b := range got {
			if b.Seq != i+1 || len(b.RSS) != 1 || len(b.Motion) != 1 {
				t.Fatalf("batch %d malformed: %+v", i, b)
			}
			if b.RSS[0].RSS != -70-float64(i) || b.RSS[0].Chan != 37+i {
				t.Fatalf("batch %d RSS payload %+v", i, b.RSS[0])
			}
			if b.Motion[0].X != 0.7*float64(i) {
				t.Fatalf("batch %d motion payload %+v", i, b.Motion[0])
			}
		}
		if !got[2].Final {
			t.Fatal("last batch should be final")
		}
	}

	cases := []struct {
		name    string
		srvCfg  ServerConfig
		codec   string
		wantErr bool
	}{
		{name: "binary-negotiated", srvCfg: ServerConfig{}, codec: ""},
		{name: "json-pinned", srvCfg: ServerConfig{}, codec: CodecJSON},
		{name: "old-server-fallback", srvCfg: ServerConfig{DisableBinary: true}, codec: ""},
		{name: "binary-required-refused", srvCfg: ServerConfig{DisableBinary: true}, codec: CodecBinary, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewStreamServerWithConfig("tgt", 0, tc.srvCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			ch, err := SubscribeCodec(ctx, srv.Addr(), tc.codec)
			if tc.wantErr {
				if err == nil {
					t.Fatal("subscribe succeeded, want refusal")
				}
				return
			}
			if err != nil {
				t.Fatalf("SubscribeCodec: %v", err)
			}
			publish(t, srv)
			check(t, ch)
		})
	}
}

// TestBinaryRoundTripUnits: encode/decode round trips for each bespoke
// frame type, including the edge payloads JSON can't carry (-0, empty
// batches, flag combinations).
func TestBinaryRoundTripUnits(t *testing.T) {
	t.Run("push-req", func(t *testing.T) {
		obs := []PushObs{
			{Beacon: "a", T: 1.5, RSS: -61.25, P: 0.1, Q: -0.2},
			{Beacon: "b", T: 2.5, RSS: -62.5, P: 0.3, Q: 0.4},
			{Beacon: "a", T: 3.5, RSS: math.Copysign(0, -1), P: 0, Q: 0},
			{Beacon: "a", T: 4.5, RSS: -63, P: 0.5, Q: 0.6},
		}
		var enc BinaryPushEncoder
		var dec BinaryPushDecoder
		got, err := dec.Decode(enc.Encode(obs))
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if len(got) != len(obs) {
			t.Fatalf("%d obs, want %d", len(got), len(obs))
		}
		for i := range obs {
			if got[i].Beacon != obs[i].Beacon ||
				math.Float64bits(got[i].T) != math.Float64bits(obs[i].T) ||
				math.Float64bits(got[i].RSS) != math.Float64bits(obs[i].RSS) ||
				math.Float64bits(got[i].P) != math.Float64bits(obs[i].P) ||
				math.Float64bits(got[i].Q) != math.Float64bits(obs[i].Q) {
				t.Fatalf("obs %d: got %+v want %+v", i, got[i], obs[i])
			}
		}
		if _, err := dec.Decode(enc.Encode(nil)); err != nil {
			t.Fatalf("empty batch: %v", err)
		}
	})

	t.Run("push-result", func(t *testing.T) {
		in := PushResult{
			Beacon: "r", Created: true, Quarantined: true, Err: "partial",
			Fixes: []PushFix{
				{T: 1, X: 2.25, Y: -3.5, N: 2.1, Gamma: 0.9, Confidence: 0.75, Mode: "near", Samples: 17},
				{T: 2, X: math.MaxFloat64, Y: -math.MaxFloat64, Mode: "", Samples: 0},
			},
		}
		body := appendPushResult(nil, &in)
		var out PushResult
		if err := decodePushResult(body[1:], &out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Beacon != in.Beacon || out.Created != in.Created || out.Restored != in.Restored ||
			out.Quarantined != in.Quarantined || out.Err != in.Err || len(out.Fixes) != len(in.Fixes) {
			t.Fatalf("header mismatch: got %+v want %+v", out, in)
		}
		for i := range in.Fixes {
			if out.Fixes[i] != in.Fixes[i] {
				t.Fatalf("fix %d: got %+v want %+v", i, out.Fixes[i], in.Fixes[i])
			}
		}
	})

	t.Run("stream-batch", func(t *testing.T) {
		in := StreamBatch{
			Seq: 42, Final: true, Draining: true,
			RSS:    []TimedRSS{{T: 0.5, RSS: -71, Chan: -3}, {T: 1.5, RSS: -72, Chan: 39}},
			Motion: []MotionPoint{{T: 0.5, X: 1, Y: -1}},
		}
		body := appendStreamBatch(nil, &in)
		var out StreamBatch
		if err := decodeStreamBatch(body[1:], &out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Seq != in.Seq || out.Final != in.Final || out.Draining != in.Draining ||
			len(out.RSS) != 2 || len(out.Motion) != 1 ||
			out.RSS[0] != in.RSS[0] || out.RSS[1] != in.RSS[1] || out.Motion[0] != in.Motion[0] {
			t.Fatalf("got %+v want %+v", out, in)
		}
	})

	t.Run("alloc-bomb-count-rejected", func(t *testing.T) {
		// A forged huge element count in a tiny frame must fail cleanly
		// before any allocation sized by it.
		huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
		if _, _, err := decodePushReq(huge, nil, nil); err == nil {
			t.Fatal("forged obs count accepted")
		}
		var pr PushResult
		// Body: beacon len 0, flags 0, err len 0, then the forged count.
		if err := decodePushResult(append([]byte{0, 0, 0}, huge...), &pr); err == nil {
			t.Fatal("forged fix count accepted")
		}
		var sb StreamBatch
		// Body: seq 1, flags 0, then the forged RSS count.
		if err := decodeStreamBatch(append([]byte{1, 0}, huge...), &sb); err == nil {
			t.Fatal("forged RSS count accepted")
		}
	})
}
