// Fleet serving over the trace-exchange port: a server with an attached
// fleet.Fleet accepts {"op":"push"} frames carrying a mixed observation
// batch and streams one result frame per beacon back (fixes, lifecycle
// flags, per-beacon errors), terminated by a done frame. The exchange
// rides the same connection lifecycle as every other op — admission
// capping and token-bucket shedding, per-frame deadlines, the stalled-
// connection watchdog, and graceful drain (a push held in shard
// backpressure is released through the server's drain context when a
// forced shutdown fires).
package netproto

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"

	"locble/internal/fleet"
	"locble/internal/resilience"
)

// PushObs is one fleet observation on the wire: the beacon it belongs
// to, its timestamp, raw RSS, and the observer's relative displacement.
type PushObs struct {
	Beacon string  `json:"beacon"`
	T      float64 `json:"t"`
	RSS    float64 `json:"rss"`
	P      float64 `json:"p"`
	Q      float64 `json:"q"`
}

// PushFix is one location fix streamed back for a pushed batch.
type PushFix struct {
	T          float64 `json:"t"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	N          float64 `json:"n"`
	Gamma      float64 `json:"gamma"`
	Confidence float64 `json:"conf"`
	Mode       string  `json:"mode"`
	Samples    int     `json:"samples"`
}

// PushResult is one beacon's result frame in a push exchange.
type PushResult struct {
	Beacon string `json:"beacon"`
	// Created / Restored report the session lifecycle event this batch
	// triggered (lazily created vs resumed from a checkpoint).
	Created  bool `json:"created,omitempty"`
	Restored bool `json:"restored,omitempty"`
	// Quarantined reports that a stored checkpoint for this beacon was
	// corrupt and has been sidelined; the session started cold instead
	// of silently resuming from bad state.
	Quarantined bool      `json:"quarantined,omitempty"`
	Fixes       []PushFix `json:"fixes,omitempty"`
	// Err is this beacon's ingest failure; the other beacons in the
	// batch still ran.
	Err string `json:"error,omitempty"`
}

// pushDone terminates a push exchange: Beacons is the number of result
// frames that preceded it, so a client can detect a truncated stream.
type pushDone struct {
	Done    bool `json:"done"`
	Beacons int  `json:"beacons"`
}

// SetFleet attaches a fleet, enabling the {"op":"push"} batched-ingest
// op on this server. Pass nil to detach (pushes are then refused). Safe
// for concurrent use; the caller keeps ownership of the fleet and is
// responsible for closing it after the server shuts down.
func (s *Server) SetFleet(f *fleet.Fleet) {
	s.mu.Lock()
	s.fleet = f
	s.mu.Unlock()
}

// handlePush runs one push exchange: scrub the wire batch, hand it to
// the fleet, stream the per-beacon results. Returns false when the
// connection should close.
func (s *Server) handlePush(conn net.Conn, wire []PushObs) bool {
	s.mu.Lock()
	f := s.fleet
	s.mu.Unlock()
	if f == nil {
		WriteFrame(conn, map[string]string{"error": "no fleet attached"})
		return false
	}
	// Same boundary rule as sanitizeRSS: non-finite fields cannot have
	// crossed JSON honestly, so the poisoned entries are dropped here
	// rather than fed to the sessions. Unnamed observations have no
	// session to land on.
	batch := make([]fleet.Obs, 0, len(wire))
	for _, o := range wire {
		if o.Beacon == "" || !isFinite(o.T) || !isFinite(o.RSS) || !isFinite(o.P) || !isFinite(o.Q) {
			continue
		}
		batch = append(batch, fleet.Obs{Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
	}
	// The drain context releases a push held in shard backpressure when
	// a forced shutdown fires — the exchange then reports context errors
	// instead of wedging the drain.
	res, err := f.PushBatchContext(s.drainCtx, batch)
	if err != nil {
		WriteFrame(conn, map[string]string{"error": err.Error()})
		return false
	}
	for i := range res {
		r := &res[i]
		out := PushResult{Beacon: r.Beacon, Created: r.Created, Restored: r.Restored, Quarantined: r.Quarantined}
		if len(r.Points) > 0 {
			out.Fixes = make([]PushFix, len(r.Points))
			for j, pt := range r.Points {
				out.Fixes[j] = PushFix{
					T: pt.T, X: pt.Est.X, Y: pt.Est.H,
					N: pt.Est.N, Gamma: pt.Est.Gamma,
					Confidence: pt.Est.Confidence,
					Mode:       pt.Mode.String(),
					Samples:    pt.Samples,
				}
			}
		}
		if r.Err != nil {
			out.Err = r.Err.Error()
		}
		// Streamed frames each get a fresh write deadline: a long batch
		// must not time out mid-stream as long as every frame moves.
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := WriteFrame(conn, &out); err != nil {
			return false
		}
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return WriteFrame(conn, pushDone{Done: true, Beacons: len(res)}) == nil
}

// drainReply answers a {"op":"drain"} exchange: how many resident
// sessions the fleet checkpointed and evicted to its store.
type drainReply struct {
	Drained int `json:"drained"`
}

// handleDrain serves one drain exchange: the attached fleet checkpoints
// every resident session to its store and evicts it, leaving the node
// empty but serving — the handoff half of a scale-out membership
// change (the router re-admits the drained beacons elsewhere, where
// they restore from the shared store). Returns false when the
// connection should close.
func (s *Server) handleDrain(conn net.Conn) bool {
	s.mu.Lock()
	f := s.fleet
	s.mu.Unlock()
	if f == nil {
		WriteFrame(conn, map[string]string{"error": "no fleet attached"})
		return false
	}
	n, err := f.Drain()
	if err != nil {
		WriteFrame(conn, map[string]string{"error": fmt.Sprintf("drain: %v (%d sessions drained)", err, n)})
		return false
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return WriteFrame(conn, drainReply{Drained: n}) == nil
}

// FleetClient is a client for a server's batched-ingest op. It holds
// one connection across Push calls (a gateway flushing its receive
// buffer on a timer); it is not safe for concurrent Push.
type FleetClient struct {
	conn net.Conn
	br   *bufio.Reader
}

// DialFleet connects to a server's TCP trace-exchange address for
// batched tracking ingest.
func DialFleet(ctx context.Context, addr string) (*FleetClient, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &FleetClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *FleetClient) Close() error { return c.conn.Close() }

// Push sends one observation batch and reads the streamed per-beacon
// results until the server's done frame. Per-beacon ingest failures are
// reported in each PushResult.Err; the error return is for exchange-
// level failures (overload shed, no fleet attached, a dropped
// connection, a truncated stream).
func (c *FleetClient) Push(ctx context.Context, obs []PushObs) ([]PushResult, error) {
	frameDeadline := func() time.Time {
		dl := time.Now().Add(FrameTimeout)
		if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
			dl = cdl
		}
		return dl
	}
	// JSON cannot carry NaN/Inf: poisoned observations are dropped at
	// the wire boundary (mirroring SetBundle), not surfaced as a marshal
	// failure that would take the whole batch down with them.
	clean := true
	for _, o := range obs {
		if o.Beacon == "" || !isFinite(o.T) || !isFinite(o.RSS) || !isFinite(o.P) || !isFinite(o.Q) {
			clean = false
			break
		}
	}
	if !clean {
		kept := make([]PushObs, 0, len(obs))
		for _, o := range obs {
			if o.Beacon != "" && isFinite(o.T) && isFinite(o.RSS) && isFinite(o.P) && isFinite(o.Q) {
				kept = append(kept, o)
			}
		}
		obs = kept
	}
	c.conn.SetWriteDeadline(frameDeadline())
	req := struct {
		Op  string    `json:"op"`
		Obs []PushObs `json:"obs"`
	}{Op: "push", Obs: obs}
	if err := WriteFrame(c.conn, &req); err != nil {
		return nil, err
	}
	var out []PushResult
	for {
		var resp struct {
			PushResult
			Done    bool `json:"done"`
			Beacons int  `json:"beacons"`
		}
		c.conn.SetReadDeadline(frameDeadline())
		if err := ReadFrame(c.br, &resp); err != nil {
			return nil, err
		}
		if resp.Done {
			if len(out) != resp.Beacons {
				return nil, fmt.Errorf("netproto: push: stream truncated: got %d results, server sent %d", len(out), resp.Beacons)
			}
			return out, nil
		}
		if resp.Beacon == "" && resp.Err != "" {
			// An exchange-level error frame, not a per-beacon result.
			if resp.Err == "overloaded" {
				return nil, fmt.Errorf("netproto: push: %w", resilience.ErrOverloaded)
			}
			return nil, fmt.Errorf("netproto: push: server error: %s", resp.Err)
		}
		out = append(out, resp.PushResult)
	}
}

// Drain asks the server's fleet to checkpoint every resident session to
// its store and evict it, returning how many sessions were drained. The
// node keeps serving afterwards (an empty fleet); the caller owns
// re-routing the drained beacons somewhere their checkpoints can be
// restored from.
func (c *FleetClient) Drain(ctx context.Context) (int, error) {
	dl := time.Now().Add(FrameTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	c.conn.SetWriteDeadline(dl)
	if err := WriteFrame(c.conn, map[string]string{"op": "drain"}); err != nil {
		return 0, err
	}
	var resp struct {
		Drained int    `json:"drained"`
		Err     string `json:"error"`
	}
	c.conn.SetReadDeadline(dl)
	if err := ReadFrame(c.br, &resp); err != nil {
		return 0, err
	}
	if resp.Err != "" {
		return 0, fmt.Errorf("netproto: drain: server error: %s", resp.Err)
	}
	return resp.Drained, nil
}
