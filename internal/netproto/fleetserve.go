// Fleet serving over the trace-exchange port: a server with an attached
// fleet.Fleet accepts push frames carrying a mixed observation batch
// and streams one result frame per beacon back (fixes, lifecycle
// flags, per-beacon errors), terminated by a done frame. The exchange
// rides the same connection lifecycle as every other op — admission
// capping and token-bucket shedding, per-frame deadlines, the stalled-
// connection watchdog, and graceful drain (a push held in shard
// backpressure is released through the server's drain context when a
// forced shutdown fires).
//
// The client side is pipelined: FleetClient keeps a bounded window of
// push/drain exchanges in flight on one persistent connection, with a
// reader goroutine matching response streams to exchanges in FIFO
// order (TCP ordering plus the server's serial per-connection loop
// guarantee responses come back in request order). Push latency hides
// behind the window instead of paying a full round trip per batch.
package netproto

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"locble/internal/fleet"
	"locble/internal/resilience"
)

// PushObs is one fleet observation on the wire: the beacon it belongs
// to, its timestamp, raw RSS, and the observer's relative displacement.
type PushObs struct {
	Beacon string  `json:"beacon"`
	T      float64 `json:"t"`
	RSS    float64 `json:"rss"`
	P      float64 `json:"p"`
	Q      float64 `json:"q"`
}

// PushFix is one location fix streamed back for a pushed batch.
type PushFix struct {
	T          float64 `json:"t"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	N          float64 `json:"n"`
	Gamma      float64 `json:"gamma"`
	Confidence float64 `json:"conf"`
	Mode       string  `json:"mode"`
	Samples    int     `json:"samples"`
}

// PushResult is one beacon's result frame in a push exchange.
type PushResult struct {
	Beacon string `json:"beacon"`
	// Created / Restored report the session lifecycle event this batch
	// triggered (lazily created vs resumed from a checkpoint).
	Created  bool `json:"created,omitempty"`
	Restored bool `json:"restored,omitempty"`
	// Quarantined reports that a stored checkpoint for this beacon was
	// corrupt and has been sidelined; the session started cold instead
	// of silently resuming from bad state.
	Quarantined bool      `json:"quarantined,omitempty"`
	Fixes       []PushFix `json:"fixes,omitempty"`
	// Err is this beacon's ingest failure; the other beacons in the
	// batch still ran.
	Err string `json:"error,omitempty"`
}

// pushDone terminates a push exchange: Beacons is the number of result
// frames that preceded it, so a client can detect a truncated stream.
type pushDone struct {
	Done    bool `json:"done"`
	Beacons int  `json:"beacons"`
}

// SetFleet attaches a fleet, enabling the {"op":"push"} batched-ingest
// op on this server. Pass nil to detach (pushes are then refused). Safe
// for concurrent use; the caller keeps ownership of the fleet and is
// responsible for closing it after the server shuts down.
func (s *Server) SetFleet(f *fleet.Fleet) {
	s.mu.Lock()
	s.fleet = f
	s.mu.Unlock()
}

// handlePush runs one push exchange: scrub the wire batch, hand it to
// the fleet, stream the per-beacon results in the connection's codec.
// Returns false when the connection should close.
func (s *Server) handlePush(conn net.Conn, w *wireWriter, wire []PushObs) bool {
	s.mu.Lock()
	f := s.fleet
	s.mu.Unlock()
	if f == nil {
		w.writeError("no fleet attached")
		return false
	}
	// Same boundary rule as sanitizeRSS: non-finite fields cannot have
	// crossed JSON honestly, so the poisoned entries are dropped here
	// rather than fed to the sessions. (The binary codec could carry
	// them, but the scrub is codec-independent so both codecs feed the
	// sessions identical batches.) Unnamed observations have no session
	// to land on.
	batch := make([]fleet.Obs, 0, len(wire))
	for _, o := range wire {
		if o.Beacon == "" || !isFinite(o.T) || !isFinite(o.RSS) || !isFinite(o.P) || !isFinite(o.Q) {
			continue
		}
		batch = append(batch, fleet.Obs{Beacon: o.Beacon, T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
	}
	// The drain context releases a push held in shard backpressure when
	// a forced shutdown fires — the exchange then reports context errors
	// instead of wedging the drain.
	res, err := f.PushBatchContext(s.drainCtx, batch)
	if err != nil {
		w.writeError(err.Error())
		return false
	}
	for i := range res {
		r := &res[i]
		out := PushResult{Beacon: r.Beacon, Created: r.Created, Restored: r.Restored, Quarantined: r.Quarantined}
		if len(r.Points) > 0 {
			out.Fixes = make([]PushFix, len(r.Points))
			for j, pt := range r.Points {
				out.Fixes[j] = PushFix{
					T: pt.T, X: pt.Est.X, Y: pt.Est.H,
					N: pt.Est.N, Gamma: pt.Est.Gamma,
					Confidence: pt.Est.Confidence,
					Mode:       pt.Mode.String(),
					Samples:    pt.Samples,
				}
			}
		}
		if r.Err != nil {
			out.Err = r.Err.Error()
		}
		// Streamed frames each get a fresh write deadline: a long batch
		// must not time out mid-stream as long as every frame moves.
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := w.writePushResult(&out); err != nil {
			return false
		}
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return w.writePushDone(len(res)) == nil
}

// drainReply answers a {"op":"drain"} exchange: how many resident
// sessions the fleet checkpointed and evicted to its store.
type drainReply struct {
	Drained int `json:"drained"`
}

// handleDrain serves one drain exchange: the attached fleet checkpoints
// every resident session to its store and evicts it, leaving the node
// empty but serving — the handoff half of a scale-out membership
// change (the router re-admits the drained beacons elsewhere, where
// they restore from the shared store). Returns false when the
// connection should close.
func (s *Server) handleDrain(conn net.Conn, w *wireWriter) bool {
	s.mu.Lock()
	f := s.fleet
	s.mu.Unlock()
	if f == nil {
		w.writeError("no fleet attached")
		return false
	}
	n, err := f.Drain()
	if err != nil {
		w.writeError(fmt.Sprintf("drain: %v (%d sessions drained)", err, n))
		return false
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return w.writeJSONy(drainReply{Drained: n}) == nil
}

// DefaultPushWindow is a FleetClient's default pipelining window: how
// many push/drain exchanges may be in flight on the connection at once.
const DefaultPushWindow = 4

// ErrClientClosed is returned by exchanges on a closed FleetClient.
var ErrClientClosed = errors.New("netproto: fleet client closed")

// FleetDialConfig tunes DialFleetWith. The zero value negotiates the
// binary codec (falling back to JSON against servers that don't speak
// it) with the default pipelining window.
type FleetDialConfig struct {
	// Codec selects the wire codec:
	//   ""          — negotiate CodecBinary, fall back to JSON if the
	//                 server refuses (the default);
	//   CodecJSON   — plain JSON, no hello frame (byte-identical to a
	//                 pre-codec client, for old servers or pinned fleets);
	//   CodecBinary — require locb1; dialing fails if the server
	//                 refuses it.
	Codec string
	// Window bounds pipelined in-flight exchanges (default
	// DefaultPushWindow).
	Window int
}

func (c FleetDialConfig) withDefaults() FleetDialConfig {
	if c.Window <= 0 {
		c.Window = DefaultPushWindow
	}
	return c
}

// fleetExchange is one in-flight request awaiting its response stream.
type fleetExchange struct {
	kind int
	done chan fleetOutcome // buffered: the reader never blocks delivering
}

const (
	exPush = iota
	exDrain
)

type fleetOutcome struct {
	results []PushResult
	drained int
	err     error
}

// FleetClient is a client for a server's batched-ingest op. It holds
// one persistent connection and pipelines exchanges over it: Push and
// PushAsync are safe for concurrent use, and up to Window exchanges
// overlap on the wire. A failed exchange poisons the pipeline (the
// frame position is unknown); every pending and later call reports the
// error, and the caller re-dials.
type FleetClient struct {
	conn   net.Conn
	br     *bufio.Reader
	binary bool
	// shed is set when the server shed the connection during codec
	// negotiation: dialing still succeeds and the first exchange
	// surfaces resilience.ErrOverloaded, preserving the pre-codec
	// behaviour where the shed frame answered the first push.
	shed error

	sem        chan struct{} // pipelining window slots
	wake       chan struct{} // cap 1: kicks the reader out of its idle wait
	readerDone chan struct{}

	wmu   sync.Mutex // serializes frame writes + pending appends
	wfb   *frameBuf
	names []string // binary encoder intern table, guarded by wmu

	mu      sync.Mutex
	pending []*fleetExchange
	dead    error
	started bool
}

func newFleetClient(conn net.Conn, window int) *FleetClient {
	return &FleetClient{
		conn:       conn,
		br:         bufio.NewReader(conn),
		sem:        make(chan struct{}, window),
		wake:       make(chan struct{}, 1),
		readerDone: make(chan struct{}),
		wfb:        newFrameBuf(),
	}
}

// DialFleet connects to a server's TCP trace-exchange address for
// batched tracking ingest, negotiating the binary codec and falling
// back to JSON transparently against servers that don't speak it.
func DialFleet(ctx context.Context, addr string) (*FleetClient, error) {
	return DialFleetWith(ctx, addr, FleetDialConfig{})
}

// DialFleetWith is DialFleet with explicit codec and pipelining
// control.
func DialFleetWith(ctx context.Context, addr string, cfg FleetDialConfig) (*FleetClient, error) {
	cfg = cfg.withDefaults()
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := newFleetClient(conn, cfg.Window)
	if cfg.Codec == CodecJSON {
		return c, nil // pre-codec client behaviour: no hello frame
	}
	verdict, err := c.negotiate(ctx)
	switch {
	case err != nil:
		conn.Close()
		return nil, err
	case verdict == negotiatedBinary:
		c.binary = true
		return c, nil
	case verdict == negotiatedJSON:
		return c, nil
	case verdict == negotiatedShed:
		c.shed = fmt.Errorf("netproto: %s: %w", addr, resilience.ErrOverloaded)
		return c, nil
	}
	// Refused: an old server (or DisableBinary) answered the hello with
	// an error and closed. Re-dial and speak plain JSON — old and new
	// deployments interoperate at the cost of one extra round trip.
	conn.Close()
	if cfg.Codec == CodecBinary || cfg.Codec == "binary" {
		return nil, fmt.Errorf("netproto: %s does not speak %s", addr, CodecBinary)
	}
	conn, err = d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	metCodecFallbacks.Inc()
	return newFleetClient(conn, cfg.Window), nil
}

type negotiation int

const (
	negotiatedBinary negotiation = iota
	negotiatedJSON
	negotiatedShed
	negotiatedRefused
)

// negotiate sends the hello frame and classifies the answer. The hello
// and its ack are always JSON, so any server — old or new — can read
// and answer it.
func (c *FleetClient) negotiate(ctx context.Context) (negotiation, error) {
	dl := time.Now().Add(FrameTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	c.conn.SetWriteDeadline(dl)
	hello := struct {
		Op    string `json:"op"`
		Codec string `json:"codec"`
	}{Op: "hello", Codec: CodecBinary}
	if err := WriteFrame(c.conn, &hello); err != nil {
		return 0, err
	}
	c.conn.SetReadDeadline(dl)
	var ack struct {
		Codec string `json:"codec"`
		Err   string `json:"error"`
	}
	if err := ReadFrame(c.br, &ack); err != nil {
		// An old server may close on the unknown op without answering.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return negotiatedRefused, nil
		}
		return 0, err
	}
	switch {
	case ack.Codec == CodecBinary:
		return negotiatedBinary, nil
	case ack.Codec == CodecJSON:
		return negotiatedJSON, nil
	case ack.Err == "overloaded":
		return negotiatedShed, nil
	default:
		return negotiatedRefused, nil
	}
}

// Codec reports the negotiated wire codec (CodecBinary or CodecJSON).
func (c *FleetClient) Codec() string {
	if c.binary {
		return CodecBinary
	}
	return CodecJSON
}

// Close closes the connection and waits for the reader goroutine (if
// started) to deliver errors to any pending exchanges and exit.
func (c *FleetClient) Close() error {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = ErrClientClosed
	}
	started := c.started
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	err := c.conn.Close()
	if started {
		<-c.readerDone
	}
	return err
}

// failed returns the pipeline's terminal error, if any.
func (c *FleetClient) failed() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// poison marks the client dead and unblocks the reader. The reader
// owns failing the pending exchanges — it may be mid-frame on one.
func (c *FleetClient) poison(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	c.mu.Unlock()
	c.conn.Close()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// scrubObs drops unnamed and non-finite observations at the wire
// boundary (mirroring SetBundle): JSON cannot carry NaN/Inf, and the
// binary codec applies the same rule so both codecs ship identical
// batches.
func scrubObs(obs []PushObs) []PushObs {
	clean := true
	for i := range obs {
		o := &obs[i]
		if o.Beacon == "" || !isFinite(o.T) || !isFinite(o.RSS) || !isFinite(o.P) || !isFinite(o.Q) {
			clean = false
			break
		}
	}
	if clean {
		return obs
	}
	kept := make([]PushObs, 0, len(obs))
	for _, o := range obs {
		if o.Beacon != "" && isFinite(o.T) && isFinite(o.RSS) && isFinite(o.P) && isFinite(o.Q) {
			kept = append(kept, o)
		}
	}
	return kept
}

// enqueue acquires a pipeline slot, writes one request frame, and
// registers the exchange with the reader. The write and the pending
// append happen under one lock, so pending order always matches wire
// order — the invariant FIFO response matching rests on.
func (c *FleetClient) enqueue(ctx context.Context, kind int, write func() error) (*fleetExchange, error) {
	if c.shed != nil {
		return nil, c.shed
	}
	if err := c.failed(); err != nil {
		return nil, err
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	ex := &fleetExchange{kind: kind, done: make(chan fleetOutcome, 1)}
	c.wmu.Lock()
	err := c.failed()
	wrote := false
	if err == nil {
		wrote = true
		c.setWriteDeadline(ctx)
		err = write()
	}
	if err == nil {
		c.mu.Lock()
		if c.dead != nil {
			err, wrote = c.dead, false // teardown already in progress
		} else {
			c.pending = append(c.pending, ex)
			if !c.started {
				c.started = true
				go c.readLoop()
			}
			select {
			case c.wake <- struct{}{}:
			default:
			}
		}
		c.mu.Unlock()
	}
	c.wmu.Unlock()
	if err != nil {
		<-c.sem
		if wrote {
			// A failed (possibly half-written) frame leaves the wire
			// position unknown: no later exchange can be trusted.
			c.poison(err)
		}
		return nil, err
	}
	metPipelineInflight.Add(1)
	return ex, nil
}

// readLoop is the pipeline's single reader: it completes pending
// exchanges in FIFO order and, on the first failure, delivers the
// terminal error to everything still queued before exiting.
func (c *FleetClient) readLoop() {
	defer close(c.readerDone)
	fb := newFrameBuf()
	for {
		c.mu.Lock()
		for len(c.pending) == 0 {
			if c.dead != nil {
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			<-c.wake
			c.mu.Lock()
		}
		ex := c.pending[0]
		c.mu.Unlock()

		var out fleetOutcome
		if ex.kind == exDrain {
			out = c.readDrain(fb)
		} else {
			out = c.readPush(fb)
		}

		c.mu.Lock()
		c.pending = c.pending[1:]
		if out.err != nil && c.dead == nil {
			// Any exchange-level failure is terminal: either the stream
			// broke, or the server wrote an error frame — after which it
			// closes the connection anyway.
			c.dead = out.err
		}
		dead := c.dead
		var rest []*fleetExchange
		if dead != nil {
			rest, c.pending = c.pending, nil
		}
		c.mu.Unlock()

		ex.done <- out
		<-c.sem
		metPipelineInflight.Add(-1)
		if dead != nil {
			for _, r := range rest {
				r.done <- fleetOutcome{err: dead}
				<-c.sem
				metPipelineInflight.Add(-1)
			}
			return
		}
	}
}

func (c *FleetClient) setWriteDeadline(ctx context.Context) {
	dl := time.Now().Add(FrameTimeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	c.conn.SetWriteDeadline(dl)
}

// writePush writes one push request frame. Callers hold c.wmu.
func (c *FleetClient) writePush(obs []PushObs) error {
	if c.binary {
		c.wfb.beginFrame()
		c.wfb.b = appendPushReq(c.wfb.b, obs, &c.names)
		return flushFrame(c.conn, c.wfb.b)
	}
	req := struct {
		Op  string    `json:"op"`
		Obs []PushObs `json:"obs"`
	}{Op: "push", Obs: obs}
	return WriteFrame(c.conn, &req)
}

// writeDrain writes one drain request frame. Callers hold c.wmu.
func (c *FleetClient) writeDrain() error {
	if c.binary {
		c.wfb.beginFrame()
		c.wfb.b = append(c.wfb.b, bfJSON)
		if err := c.wfb.encodeJSONBody(map[string]string{"op": "drain"}); err != nil {
			return err
		}
		return flushFrame(c.conn, c.wfb.b)
	}
	return WriteFrame(c.conn, map[string]string{"op": "drain"})
}

// exchangeError types an exchange-level error frame; "overloaded" maps
// to resilience.ErrOverloaded so the caller's retry policy or breaker
// can back off on it.
func exchangeError(op, msg string) error {
	if msg == "overloaded" {
		return fmt.Errorf("netproto: %s: %w", op, resilience.ErrOverloaded)
	}
	return fmt.Errorf("netproto: %s: server error: %s", op, msg)
}

// readPush consumes one push response stream (result frames until the
// done frame). Each frame gets a fresh read deadline: a long stream
// must keep moving, not finish fast.
func (c *FleetClient) readPush(fb *frameBuf) fleetOutcome {
	var out []PushResult
	for {
		c.conn.SetReadDeadline(time.Now().Add(FrameTimeout))
		if c.binary {
			body, err := readFrameBody(c.br, fb)
			if err != nil {
				return fleetOutcome{err: err}
			}
			if len(body) == 0 {
				return fleetOutcome{err: errBinMalformed}
			}
			switch body[0] {
			case bfPushResult:
				var r PushResult
				if err := decodePushResult(body[1:], &r); err != nil {
					return fleetOutcome{err: err}
				}
				accountFrameIn(len(body))
				out = append(out, r)
			case bfPushDone:
				br := binReader{b: body[1:]}
				beacons := br.intu()
				if err := br.done(); err != nil {
					return fleetOutcome{err: err}
				}
				accountFrameIn(len(body))
				if len(out) != beacons {
					return fleetOutcome{err: fmt.Errorf("netproto: push: stream truncated: got %d results, server sent %d", len(out), beacons)}
				}
				return fleetOutcome{results: out}
			case bfError:
				br := binReader{b: body[1:]}
				msg := br.str()
				if err := br.done(); err != nil {
					return fleetOutcome{err: err}
				}
				accountFrameIn(len(body))
				return fleetOutcome{err: exchangeError("push", msg)}
			default:
				return fleetOutcome{err: errBinMalformed}
			}
			continue
		}
		var resp struct {
			PushResult
			Done    bool `json:"done"`
			Beacons int  `json:"beacons"`
		}
		if err := ReadFrame(c.br, &resp); err != nil {
			return fleetOutcome{err: err}
		}
		if resp.Done {
			if len(out) != resp.Beacons {
				return fleetOutcome{err: fmt.Errorf("netproto: push: stream truncated: got %d results, server sent %d", len(out), resp.Beacons)}
			}
			return fleetOutcome{results: out}
		}
		if resp.Beacon == "" && resp.Err != "" {
			// An exchange-level error frame, not a per-beacon result.
			return fleetOutcome{err: exchangeError("push", resp.Err)}
		}
		out = append(out, resp.PushResult)
	}
}

// readDrain consumes one drain response frame.
func (c *FleetClient) readDrain(fb *frameBuf) fleetOutcome {
	c.conn.SetReadDeadline(time.Now().Add(FrameTimeout))
	var resp struct {
		Drained int    `json:"drained"`
		Err     string `json:"error"`
	}
	if c.binary {
		body, err := readFrameBody(c.br, fb)
		if err != nil {
			return fleetOutcome{err: err}
		}
		if len(body) == 0 {
			return fleetOutcome{err: errBinMalformed}
		}
		switch body[0] {
		case bfJSON:
			if err := json.Unmarshal(body[1:], &resp); err != nil {
				return fleetOutcome{err: err}
			}
		case bfError:
			r := binReader{b: body[1:]}
			msg := r.str()
			if err := r.done(); err != nil {
				return fleetOutcome{err: err}
			}
			accountFrameIn(len(body))
			return fleetOutcome{err: exchangeError("drain", msg)}
		default:
			return fleetOutcome{err: errBinMalformed}
		}
		accountFrameIn(len(body))
	} else if err := ReadFrame(c.br, &resp); err != nil {
		return fleetOutcome{err: err}
	}
	if resp.Err != "" {
		return fleetOutcome{err: exchangeError("drain", resp.Err)}
	}
	return fleetOutcome{drained: resp.Drained}
}

// PushPending is one pipelined push in flight. Wait collects its
// result; it is not safe for concurrent use (one waiter per pending).
type PushPending struct {
	ex  *fleetExchange
	res fleetOutcome
	got bool
}

// Wait blocks until the exchange completes or ctx ends. A canceled
// Wait abandons the result but the exchange still completes on the
// wire (the reader consumes its response stream to keep the pipeline
// frame-aligned); calling Wait again re-collects it.
func (p *PushPending) Wait(ctx context.Context) ([]PushResult, error) {
	if !p.got {
		select {
		case r := <-p.ex.done:
			p.res, p.got = r, true
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return p.res.results, p.res.err
}

// PushAsync sends one observation batch without waiting for its
// results: it blocks only while the pipeline window is full. Safe for
// concurrent use; responses match requests in send order.
func (c *FleetClient) PushAsync(ctx context.Context, obs []PushObs) (*PushPending, error) {
	obs = scrubObs(obs)
	ex, err := c.enqueue(ctx, exPush, func() error { return c.writePush(obs) })
	if err != nil {
		return nil, err
	}
	return &PushPending{ex: ex}, nil
}

// Push sends one observation batch and reads the streamed per-beacon
// results until the server's done frame. Per-beacon ingest failures are
// reported in each PushResult.Err; the error return is for exchange-
// level failures (overload shed, no fleet attached, a dropped
// connection, a truncated stream). Safe for concurrent use: concurrent
// pushes pipeline onto the shared connection.
func (c *FleetClient) Push(ctx context.Context, obs []PushObs) ([]PushResult, error) {
	p, err := c.PushAsync(ctx, obs)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// Drain asks the server's fleet to checkpoint every resident session to
// its store and evict it, returning how many sessions were drained. The
// node keeps serving afterwards (an empty fleet); the caller owns
// re-routing the drained beacons somewhere their checkpoints can be
// restored from. A drain rides the pipeline like any exchange: it
// completes after the pushes written before it.
func (c *FleetClient) Drain(ctx context.Context) (int, error) {
	ex, err := c.enqueue(ctx, exDrain, c.writeDrain)
	if err != nil {
		return 0, err
	}
	select {
	case r := <-ex.done:
		return r.drained, r.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
