package netproto

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"locble/internal/resilience"
)

// Retry is an exponential-backoff policy with randomized jitter, used by
// Fetch and the stream subscriber to ride out flaky peers: refused
// connections while the target's server is still coming up, and
// connections dropped mid-frame on a lossy link. Jitter desynchronises
// the retry storms of many observers discovering the same target.
type Retry struct {
	// MaxAttempts bounds the number of tries (including the first).
	// Zero means retry until the context deadline.
	MaxAttempts int
	// BaseDelay is the wait after the first failure.
	BaseDelay time.Duration
	// MaxDelay caps the exponentially growing wait.
	MaxDelay time.Duration
	// Multiplier grows the wait per attempt (≥ 1).
	Multiplier float64
	// Jitter in [0, 1] is the fraction of each wait that is randomized:
	// wait = d·(1−Jitter) + d·Jitter·U[0,1).
	Jitter float64
	// Rand overrides the jitter source (tests); nil uses math/rand.
	Rand func() float64
	// Breaker, if non-nil, is consulted before every attempt: while the
	// circuit is open, attempts fail fast with ErrCircuitOpen without
	// touching the peer (still consuming retry budget, so the policy
	// rides through the open window and probes once it goes half-open).
	// The outcome of each real attempt is recorded into the breaker.
	// Share one breaker across callers targeting the same peer.
	Breaker *resilience.Breaker
}

// DefaultRetry returns the policy the package-level helpers use: six
// attempts, 50 ms base delay doubling to a 2 s cap, half-jittered.
func DefaultRetry() Retry {
	return Retry{
		MaxAttempts: 6,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// withDefaults fills zero fields so Retry{} behaves like DefaultRetry
// with unlimited attempts left at the caller's choice.
func (r Retry) withDefaults() Retry {
	d := DefaultRetry()
	if r.BaseDelay <= 0 {
		r.BaseDelay = d.BaseDelay
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = d.MaxDelay
	}
	if r.Multiplier < 1 {
		r.Multiplier = d.Multiplier
	}
	if r.Jitter < 0 || r.Jitter > 1 {
		r.Jitter = d.Jitter
	}
	return r
}

// Delay returns the backoff before attempt n (n = 1 is the wait after
// the first failure), jittered.
func (r Retry) Delay(n int) time.Duration {
	r = r.withDefaults()
	d := float64(r.BaseDelay)
	for i := 1; i < n; i++ {
		d *= r.Multiplier
		if d >= float64(r.MaxDelay) {
			d = float64(r.MaxDelay)
			break
		}
	}
	rnd := r.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	d = d*(1-r.Jitter) + d*r.Jitter*rnd()
	return time.Duration(d)
}

// Do runs op until it succeeds, the attempt budget is spent, or the
// context ends. The last error is returned, annotated with the attempt
// count; a context error wins if the deadline expired while waiting.
func (r Retry) Do(ctx context.Context, op func() error) error {
	r = r.withDefaults()
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("netproto: %d attempts: %w (then %v)", attempt-1, last, err)
			}
			return err
		}
		if r.Breaker != nil {
			if berr := r.Breaker.Allow(); berr != nil {
				last = berr // fail fast; never ran, so don't record
			} else {
				last = op()
				r.Breaker.Record(last)
			}
		} else {
			last = op()
		}
		if last == nil {
			return nil
		}
		if r.MaxAttempts > 0 && attempt >= r.MaxAttempts {
			return fmt.Errorf("netproto: %d attempts: %w", attempt, last)
		}
		metRetries.Inc()
		select {
		case <-time.After(r.Delay(attempt)):
		case <-ctx.Done():
			return fmt.Errorf("netproto: %d attempts: %w (then %v)", attempt, last, ctx.Err())
		}
	}
}
