package fleet

import (
	"fmt"
	"os"
	"testing"
	"time"

	"locble/internal/core"
	"locble/internal/durable"
	"locble/internal/faults"
	"locble/internal/rng"
	"locble/internal/sim"
	"locble/internal/testutil"
)

// TestCorruptCheckpointQuarantined is the regression test for the
// corrupt-restore accounting bug: a stored checkpoint whose bytes no
// longer decode must cost exactly one fleet.restore.errors (never a
// store error, never restored work), be quarantined out of the store so
// it cannot wedge the beacon on every reappearance, surface
// Quarantined in the Result — and the observations must still land on
// a cold-started session. Pre-fix, the fleet counted this as a store
// error, failed the whole group, and left the poison checkpoint in
// place forever.
func TestCorruptCheckpointQuarantined(t *testing.T) {
	eng := newTestEngine(t)
	ms := NewMemStore()
	// Plant damage directly: bytes that are not a checkpoint at all.
	ms.mu.Lock()
	ms.m["poisoned"] = []byte("\x00\x01 not a checkpoint")
	ms.mu.Unlock()

	fl, err := New(eng, Config{Shards: 1, Session: testSession(), Store: ms})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()

	stream := SynthStream("poisoned", 120, 0.3)
	res, err := fl.PushBatch(stream)
	if err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	r := res[0]
	if r.Err != nil {
		t.Fatalf("corrupt checkpoint failed the batch: %v (observations must land on a cold session)", r.Err)
	}
	if !r.Quarantined {
		t.Errorf("Result.Quarantined not set")
	}
	if r.Restored {
		t.Errorf("corrupt checkpoint counted as a restore")
	}
	if !r.Created {
		t.Errorf("session was not cold-started")
	}
	if len(r.Points) == 0 {
		t.Errorf("no fixes from the cold-started session")
	}

	snap := fl.Metrics()
	if v := snap.Counters["fleet.restore.errors"]; v != 1 {
		t.Errorf("fleet.restore.errors = %d, want exactly 1", v)
	}
	if v := snap.Counters["fleet.store.errors"]; v != 0 {
		t.Errorf("fleet.store.errors = %d, want 0 — corruption is a restore casualty, not a store fault", v)
	}
	if v := snap.Counters["fleet.sessions.restored"]; v != 0 {
		t.Errorf("fleet.sessions.restored = %d, want 0", v)
	}
	if ms.Len() != 0 {
		t.Errorf("poison checkpoint still in the store — beacon would wedge on every reappearance")
	}

	// The quarantine is final: a second encounter is a plain resident
	// push with no new errors.
	if _, err := fl.PushBatch(SynthStream("poisoned", 8, 0.3)); err != nil {
		t.Fatalf("second PushBatch: %v", err)
	}
	if v := fl.Metrics().Counters["fleet.restore.errors"]; v != 1 {
		t.Errorf("restore.errors grew to %d after quarantine", v)
	}
}

// TestFleetDurableKillRebuild runs the fleet over the durable file
// store, kills the process at the worst moment (a power cut with no
// store shutdown, right after Fleet.Close acknowledged the drain), and
// rebuilds on the crash image: every session resumes bit-exactly, the
// accounting invariants hold, and recovery reports zero damage.
func TestFleetDurableKillRebuild(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t)
	mfs := durable.NewMemFS()

	st1, err := durable.Open("", &durable.Options{FS: mfs, Shards: 2, SnapshotEvery: 8})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	fl1, err := New(eng, Config{Shards: 3, Session: testSession(), Store: st1, IdleMaxAge: 6})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const nb, n, half, slice = 6, 1024, 512, 64
	names := make([]string, nb)
	streams := make(map[string][]Obs, nb)
	fixes := make(map[string][]core.TrackPoint, nb)
	for i := range names {
		names[i] = fmt.Sprintf("dur-%02d", i)
		streams[names[i]] = SynthStream(names[i], n, 0.9*float64(i))
	}
	push := func(fl *Fleet, lo, hi int) {
		t.Helper()
		for at := lo; at < hi; at += slice {
			var batch []Obs
			for _, name := range names {
				batch = append(batch, streams[name][at:at+slice]...)
			}
			res, err := fl.PushBatch(batch)
			if err != nil {
				t.Fatalf("PushBatch: %v", err)
			}
			for _, r := range res {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Beacon, r.Err)
				}
				fixes[r.Beacon] = append(fixes[r.Beacon], r.Points...)
			}
		}
	}
	push(fl1, 0, half)

	liveAtClose := fl1.Sessions()
	if err := fl1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := fl1.Metrics()
	evicted := snap.Counters["fleet.sessions.evicted"]
	written := snap.Counters["fleet.checkpoints.written"]
	// Accounting invariant: every checkpoint written is an eviction or
	// a close-drain of a then-live session — nothing double-counted,
	// nothing lost.
	if written != evicted+liveAtClose {
		t.Errorf("checkpoints.written=%d, want evicted(%d)+drained(%d)", written, evicted, liveAtClose)
	}
	// The store runs durable: every write was acknowledged fsynced.
	if acked := snap.Counters["fleet.checkpoints.acked"]; acked != written {
		t.Errorf("checkpoints.acked=%d, want %d (all writes acked on a durable store)", acked, written)
	}
	if buf := snap.Counters["fleet.checkpoints.buffered"]; buf != 0 {
		t.Errorf("checkpoints.buffered=%d, want 0", buf)
	}

	// Power cut: no store Close, page cache gone — only fsynced bytes
	// survive. Every checkpoint was acked, so nothing may be lost.
	img := mfs.CrashImage(nil)
	st1.Close()

	st2, err := durable.Open("", &durable.Options{FS: img, SnapshotEvery: 8})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	fl2, err := New(eng, Config{Shards: 3, Session: testSession(), Store: st2, IdleMaxAge: 6})
	if err != nil {
		t.Fatalf("New (rebuild): %v", err)
	}
	snap2 := fl2.Metrics()
	if v := snap2.Gauges["fleet.recovery.replayed"].Value; v == 0 {
		t.Errorf("fleet.recovery.replayed = 0, want > 0 (checkpoints were replayed)")
	}
	if v := snap2.Gauges["fleet.recovery.truncated"].Value; v != 0 {
		t.Errorf("fleet.recovery.truncated = %d, want 0 on an acked-only crash", v)
	}
	if v := snap2.Gauges["fleet.recovery.quarantined"].Value; v != 0 {
		t.Errorf("fleet.recovery.quarantined = %d, want 0 — silent corruption", v)
	}

	// Resume the second half: the first batch must restore every
	// beacon from its checkpoint, and the stitched fix streams must be
	// bit-identical to uninterrupted sequential replays.
	var batch []Obs
	for _, name := range names {
		batch = append(batch, streams[name][half:half+slice]...)
	}
	res, err := fl2.PushBatch(batch)
	if err != nil {
		t.Fatalf("PushBatch (rebuild): %v", err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Beacon, r.Err)
		}
		if !r.Restored || r.Created || r.Quarantined {
			t.Errorf("%s: restored=%v created=%v quarantined=%v, want restored only",
				r.Beacon, r.Restored, r.Created, r.Quarantined)
		}
		fixes[r.Beacon] = append(fixes[r.Beacon], r.Points...)
	}
	push(fl2, half+slice, n)
	if err := fl2.Close(); err != nil {
		t.Fatalf("Close (rebuild): %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("store Close: %v", err)
	}
	for _, name := range names {
		requireSameFixes(t, name, fixes[name], seqReplay(t, eng, name, streams[name]))
	}
}

// TestDurableChaosSoak cycles the fleet+durable-store stack through
// kill/rebuild rounds under fire for a wall-clock budget: ingest is
// impaired by rotating fault chains, the disk dies and comes back
// mid-cycle (fsync errors and torn appends, exercising the broken-shard
// escalation and snapshot healing), and each cycle ends in a power cut
// — strict or with a lossy write-back tail — instead of a clean store
// shutdown. The invariant throughout: recovery never quarantines a
// record (the only damage a crash can make is a torn tail), nothing
// stored ever fails to restore, and lifecycle accounting stays exact.
// The default budget suits `go test`; `make soak` stretches it via
// LOCBLE_SOAK.
func TestDurableChaosSoak(t *testing.T) {
	dur := 800 * time.Millisecond
	if env := os.Getenv("LOCBLE_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("LOCBLE_SOAK=%q: %v", env, err)
		}
		dur = d
	}
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t)
	rsrc := rng.New(0xD15C)

	chains := []faults.Fault{
		faults.Chain(faults.NonFiniteRSSI{Prob: 0.05}, faults.DuplicateReports{Prob: 0.10}),
		faults.Chain(faults.RandomDrop{Prob: 0.15}, faults.ClipRSSI{Floor: -90, Ceil: -35}),
		faults.Chain(faults.JitterTimestamps{Sigma: 0.02}, faults.ImpulseBurst{Prob: 0.08, DeltaDB: 15}),
	}

	const nb, streamLen, slice = 5, 4096, 32
	names := make([]string, nb)
	streams := make([][]Obs, nb)
	for j := range names {
		names[j] = fmt.Sprintf("soak-%d", j)
		streams[j] = SynthStream(names[j], streamLen, 0.7*float64(j))
	}

	mfs := durable.NewMemFS()
	deadline := time.Now().Add(dur)
	iter := 0
	for cycle := 0; time.Now().Before(deadline) || cycle == 0; cycle++ {
		st, err := durable.Open("", &durable.Options{FS: mfs, Shards: 2, SnapshotEvery: 16})
		if err != nil {
			t.Fatalf("cycle %d: durable.Open: %v", cycle, err)
		}
		rec := st.RecoveryStats()
		if rec.Quarantined != 0 {
			t.Fatalf("cycle %d: recovery quarantined %d regions — crash produced silent corruption exposure: %+v",
				cycle, rec.Quarantined, rec)
		}
		fl, err := New(eng, Config{Shards: 2, Session: testSession(), Store: st, IdleMaxAge: 6})
		if err != nil {
			t.Fatalf("cycle %d: New: %v", cycle, err)
		}

		scratch := make([]sim.BeaconObservation, 0, 2*slice)
		for step := 0; step < 12; step++ {
			iter++
			lo := (iter * slice) % streamLen
			off := float64((iter*slice)/streamLen) * (streamLen / 8.0)
			var batch []Obs
			for j := range names {
				// Beacons periodically fall silent so evict/restore churns.
				if ((iter/16)+2*j)%4 == 0 {
					continue
				}
				scratch = scratch[:0]
				for _, o := range streams[j][lo : lo+slice] {
					scratch = append(scratch, sim.BeaconObservation{T: o.T + off, RSSI: o.RSS})
				}
				impaired := faults.ApplyRSS(scratch, int64(iter), chains[(iter+j)%len(chains)])
				for _, o := range impaired {
					pp, qq := walkPQ(o.T)
					batch = append(batch, Obs{Beacon: names[j], T: o.T, RSS: o.RSSI, P: pp, Q: qq})
				}
			}
			if len(batch) == 0 {
				continue
			}
			// Mid-cycle disk outage: a short dead window (failed writes,
			// failed fsyncs, broken shards) then a healed disk. Sweep
			// retries and the broken-shard snapshot rotation must absorb
			// it with no beacon-visible error.
			if step == 5 {
				mfs.FailAfter(mfs.Ops() + int64(rsrc.Intn(6)))
			}
			if step == 8 {
				mfs.FailAfter(-1)
			}
			res, err := fl.PushBatch(batch)
			if err != nil {
				t.Fatalf("cycle %d: PushBatch: %v", cycle, err)
			}
			for _, r := range res {
				if r.Err != nil {
					t.Errorf("cycle %d: %s: ingest error: %v", cycle, r.Beacon, r.Err)
				}
				if r.Quarantined {
					t.Errorf("cycle %d: %s: checkpoint quarantined — a crash corrupted accepted state", cycle, r.Beacon)
				}
			}
		}
		mfs.FailAfter(-1) // disk healthy for the drain
		if err := fl.Close(); err != nil {
			t.Fatalf("cycle %d: fleet Close: %v", cycle, err)
		}
		snap := fl.Metrics()
		if v := snap.Counters["fleet.restore.errors"]; v != 0 {
			t.Fatalf("cycle %d: fleet.restore.errors = %d — a stored checkpoint failed to restore", cycle, v)
		}
		// Power cut instead of store.Close: alternate a strict cut with
		// a lossy write-back tail (the torn-record generator).
		var img *durable.MemFS
		if cycle%2 == 0 {
			img = mfs.CrashImage(nil)
		} else {
			img = mfs.CrashImage(func(unsynced int) int { return rsrc.Intn(unsynced + 1) })
		}
		st.Close()
		mfs = img
	}
	t.Logf("durable soak %v: %d iterations", dur, iter)
}
