package fleet

import (
	"testing"

	"locble/internal/core"
	"locble/internal/testutil"
)

// TestFleetDrainHandoff: Drain checkpoints and evicts every resident
// session, and the streams resume bit-exactly from those checkpoints —
// the fleet half of the router's planned-handoff story.
func TestFleetDrainHandoff(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t)
	store := NewMemStore()
	fl, err := New(eng, Config{Session: testSession(), Store: store})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()

	const n, half, slice = 240, 120, 24
	streams := map[string][]Obs{
		"d1": SynthStream("d1", n, 0.4),
		"d2": SynthStream("d2", n, 1.9),
		"d3": SynthStream("d3", n, 3.2),
	}
	got := map[string][]core.TrackPoint{}
	push := func(lo, hi int, wantRestored bool) {
		t.Helper()
		for at := lo; at < hi; at += slice {
			var batch []Obs
			for _, s := range streams {
				batch = append(batch, s[at:at+slice]...)
			}
			results, err := fl.PushBatch(batch)
			if err != nil {
				t.Fatalf("PushBatch @%d: %v", at, err)
			}
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("%s @%d: %v", r.Beacon, at, r.Err)
				}
				if at == lo && r.Restored != wantRestored {
					t.Errorf("%s @%d: Restored=%v, want %v", r.Beacon, at, r.Restored, wantRestored)
				}
				got[r.Beacon] = append(got[r.Beacon], r.Points...)
			}
		}
	}

	push(0, half, false)
	if live := fl.Sessions(); live != 3 {
		t.Fatalf("Sessions() = %d before drain, want 3", live)
	}
	drained, err := fl.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if drained != 3 {
		t.Fatalf("Drain() = %d, want 3", drained)
	}
	if live := fl.Sessions(); live != 0 {
		t.Fatalf("Sessions() = %d after drain, want 0", live)
	}
	// The second half restores each session from its drain checkpoint.
	push(half, n, true)

	for name, stream := range streams {
		want := seqReplay(t, eng, name, stream)
		requireSameFixes(t, name, got[name], want)
	}

	met := fl.Metrics()
	if met.Counters["fleet.drains"] != 1 {
		t.Errorf("fleet.drains = %d, want 1", met.Counters["fleet.drains"])
	}
	if met.Counters["fleet.drained.sessions"] != 3 {
		t.Errorf("fleet.drained.sessions = %d, want 3", met.Counters["fleet.drained.sessions"])
	}
	if met.Counters["fleet.sessions.restored"] != 3 {
		t.Errorf("fleet.sessions.restored = %d, want 3", met.Counters["fleet.sessions.restored"])
	}
}

// TestFleetDrainEmpty: draining an idle fleet is a cheap no-op, and a
// second drain after re-admission keeps counting.
func TestFleetDrainEmpty(t *testing.T) {
	fl, err := New(newTestEngine(t), Config{Session: testSession(), Store: NewMemStore()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()
	if n, err := fl.Drain(); err != nil || n != 0 {
		t.Fatalf("Drain on empty fleet = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := fl.PushBatch(SynthStream("re", 24, 0)); err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if n, err := fl.Drain(); err != nil || n != 1 {
		t.Fatalf("second Drain = (%d, %v), want (1, nil)", n, err)
	}
	if met := fl.Metrics(); met.Counters["fleet.drains"] != 2 {
		t.Errorf("fleet.drains = %d, want 2", met.Counters["fleet.drains"])
	}
}

// TestFleetDrainClosed: Drain on a closed fleet reports ErrFleetClosed
// instead of hanging on dead shards.
func TestFleetDrainClosed(t *testing.T) {
	fl, err := New(newTestEngine(t), Config{Session: testSession()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fl.Close()
	if _, err := fl.Drain(); err == nil {
		t.Fatal("Drain on closed fleet succeeded")
	}
}
