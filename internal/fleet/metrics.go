package fleet

import "locble/internal/obs"

// metrics resolves every fleet metric handle once at construction (the
// same pattern as core's engineMetrics), on a per-fleet registry so one
// fleet's snapshot is unpolluted by others in the process.
type metrics struct {
	reg *obs.Registry

	// Session lifecycle. live's Max is the resident-session high-water
	// mark; created/evicted/restored tell cold starts, idle evictions
	// and checkpoint resumptions apart. checkpoints counts every
	// checkpoint written to the store (evictions and close-drain).
	live        *obs.Gauge
	created     *obs.Counter
	evicted     *obs.Counter
	restored    *obs.Counter
	checkpoints *obs.Counter

	// Drain handoffs: Drain calls served and sessions checkpointed-and-
	// evicted by them (each also counts in evicted/checkpoints — these
	// tell a deliberate handoff apart from idle churn).
	drains          *obs.Counter
	drainedSessions *obs.Counter

	// Durability split of checkpoints: acked counts writes the store
	// acknowledged as fsynced-to-disk (a DurableStore in durable mode),
	// buffered counts writes that are only as safe as the process — an
	// operator alarms on buffered > 0 in a deployment that promised
	// durability.
	cpAcked    *obs.Counter
	cpBuffered *obs.Counter

	// Store health: save/load failures (the session stays resident on a
	// failed eviction save) and checkpoints dropped as unrestorable.
	storeErrors   *obs.Counter
	restoreErrors *obs.Counter

	// Crash-recovery outcome of the store backing this fleet, set once
	// at New from DurableStore.RecoveryCounts: records replayed, torn
	// tails truncated, damaged regions quarantined. Zero for stores
	// without a recovery notion (MemStore).
	recReplayed    *obs.Gauge
	recTruncated   *obs.Gauge
	recQuarantined *obs.Gauge

	// Ingest shape: batches and observations pushed, batch-size
	// distribution, per-shard queue depth observed at submit time (how
	// far behind the shards run), and whole-batch latency.
	batches    *obs.Counter
	obsPushed  *obs.Counter
	batchSize  *obs.Histogram
	shardQueue *obs.Histogram
	pushSpan   *obs.Timer
}

func newMetrics() *metrics {
	r := obs.NewRegistry()
	return &metrics{
		reg:             r,
		live:            r.Gauge("fleet.sessions.live"),
		created:         r.Counter("fleet.sessions.created"),
		evicted:         r.Counter("fleet.sessions.evicted"),
		restored:        r.Counter("fleet.sessions.restored"),
		checkpoints:     r.Counter("fleet.checkpoints.written"),
		drains:          r.Counter("fleet.drains"),
		drainedSessions: r.Counter("fleet.drained.sessions"),
		cpAcked:         r.Counter("fleet.checkpoints.acked"),
		cpBuffered:      r.Counter("fleet.checkpoints.buffered"),
		storeErrors:     r.Counter("fleet.store.errors"),
		restoreErrors:   r.Counter("fleet.restore.errors"),
		recReplayed:     r.Gauge("fleet.recovery.replayed"),
		recTruncated:    r.Gauge("fleet.recovery.truncated"),
		recQuarantined:  r.Gauge("fleet.recovery.quarantined"),
		batches:         r.Counter("fleet.batches"),
		obsPushed:       r.Counter("fleet.obs.pushed"),
		batchSize:       r.Histogram("fleet.batch.size", []float64{1, 8, 32, 128, 512, 2048}),
		shardQueue:      r.Histogram("fleet.shard.queue", []float64{0, 1, 2, 4, 8}),
		pushSpan:        r.Timer("fleet.push.seconds"),
	}
}

// Metrics returns a consistent snapshot of the fleet's metrics. Safe to
// call concurrently with ingest.
func (f *Fleet) Metrics() obs.Snapshot { return f.met.reg.Snapshot() }

// MetricsRegistry exposes the fleet's registry — to mount its Handler
// on a debug listener or merge it into a process-wide snapshot.
func (f *Fleet) MetricsRegistry() *obs.Registry { return f.met.reg }
