package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locble/internal/faults"
	"locble/internal/sim"
	"locble/internal/testutil"
)

// walkPQ reproduces SynthStream's observer displacement at time t, so
// fault-jittered timestamps can be re-paired with a consistent motion
// track.
func walkPQ(t float64) (p, q float64) {
	leg := math.Mod(0.8*t, 36)
	var ox, oy float64
	switch {
	case leg <= 9:
		ox, oy = leg, 0
	case leg <= 18:
		ox, oy = 9, leg-9
	case leg <= 27:
		ox, oy = 9-(leg-18), 9
	default:
		ox, oy = 0, 9-(leg-27)
	}
	return -ox, -oy
}

// TestFleetChaosSoak hammers a fleet with fault-injected ingest for a
// wall-clock budget: concurrent pushers whose streams are impaired by
// rotating injector chains (drops, duplicates, reordering, time jitter,
// non-finite and clipped RSSI, impulse bursts), beacons falling silent
// and reappearing so evictions and restores run under fire, and
// occasional already-expired contexts exercising the cancellation path.
// The fleet must come out with clean lifecycle accounting, a healthy
// store, and a quiet shutdown. The default budget suits `go test`;
// `make soak` stretches it via LOCBLE_SOAK (e.g. LOCBLE_SOAK=30s).
func TestFleetChaosSoak(t *testing.T) {
	dur := 800 * time.Millisecond
	if env := os.Getenv("LOCBLE_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("LOCBLE_SOAK=%q: %v", env, err)
		}
		dur = d
	}
	testutil.VerifyNoLeaks(t)

	eng := newTestEngine(t)
	fl, err := New(eng, Config{Shards: 4, Session: testSession(), IdleMaxAge: 6})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	chains := []faults.Fault{
		faults.Chain(faults.NonFiniteRSSI{Prob: 0.05}, faults.DuplicateReports{Prob: 0.10}),
		faults.Chain(faults.RandomDrop{Prob: 0.20}, faults.ClipRSSI{Floor: -90, Ceil: -35}),
		faults.Chain(faults.ReorderReports{Window: 6}, faults.JitterTimestamps{Sigma: 0.05}),
		faults.Chain(faults.ImpulseBurst{Prob: 0.10, DeltaDB: 18}),
	}

	const (
		pushers   = 3
		perP      = 4
		streamLen = 16384 // 2048 s of observation time before wrapping
		slice     = 16
	)
	deadline := time.Now().Add(dur)
	var (
		wg          sync.WaitGroup
		beaconErrs  atomic.Int64 // per-beacon results that carried an error
		ctxExpiries atomic.Int64 // batches that hit their expired context
	)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			names := make([]string, perP)
			streams := make([][]Obs, perP)
			for j := range names {
				names[j] = fmt.Sprintf("chaos-p%d-b%d", p, j)
				streams[j] = SynthStream(names[j], streamLen, float64(p)+0.5*float64(j))
			}
			scratch := make([]sim.BeaconObservation, 0, 2*slice)
			for iter := 0; time.Now().Before(deadline); iter++ {
				lo := (iter * slice) % streamLen
				// Observation time keeps climbing across stream wraps so
				// sessions never see a time reversal from the wrap itself.
				off := float64((iter*slice)/streamLen) * (streamLen / 8.0)
				var batch []Obs
				for j := range names {
					// Each beacon periodically goes silent for 24
					// iterations (≥ 48 s of its observation time, past the
					// 6 s idle horizon) so eviction and restore churn.
					if ((iter/24)+3*j)%4 == 0 {
						continue
					}
					scratch = scratch[:0]
					for _, o := range streams[j][lo : lo+slice] {
						scratch = append(scratch, sim.BeaconObservation{T: o.T + off, RSSI: o.RSS})
					}
					impaired := faults.ApplyRSS(scratch, int64(p*1000+iter), chains[(iter+j)%len(chains)])
					for _, o := range impaired {
						pp, qq := walkPQ(o.T)
						batch = append(batch, Obs{Beacon: names[j], T: o.T, RSS: o.RSSI, P: pp, Q: qq})
					}
				}
				if len(batch) == 0 {
					continue
				}
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if iter%17 == 0 {
					// An already-expired deadline: the whole batch must
					// complete promptly with context errors, never hang.
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					time.Sleep(5 * time.Microsecond)
				}
				res, err := fl.PushBatchContext(ctx, batch)
				cancel()
				if err != nil {
					t.Errorf("PushBatchContext: %v", err)
					return
				}
				expired := false
				for _, r := range res {
					if r.Err == nil {
						continue
					}
					if errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled) {
						expired = true
						continue
					}
					beaconErrs.Add(1)
					t.Errorf("%s: unexpected ingest error: %v", r.Beacon, r.Err)
				}
				if expired {
					ctxExpiries.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()

	snap := fl.Metrics()
	created := snap.Counters["fleet.sessions.created"]
	evicted := snap.Counters["fleet.sessions.evicted"]
	restored := snap.Counters["fleet.sessions.restored"]
	t.Logf("soak %v: created=%d evicted=%d restored=%d batches=%d obs=%d expired-ctx=%d",
		dur, created, evicted, restored,
		snap.Counters["fleet.batches"], snap.Counters["fleet.obs.pushed"], ctxExpiries.Load())

	if v := snap.Counters["fleet.store.errors"]; v != 0 {
		t.Errorf("fleet.store.errors = %d, want 0", v)
	}
	if v := snap.Counters["fleet.restore.errors"]; v != 0 {
		t.Errorf("fleet.restore.errors = %d, want 0 (every checkpoint written must restore)", v)
	}
	if cpw := snap.Counters["fleet.checkpoints.written"]; cpw != evicted {
		t.Errorf("checkpoints.written = %d, evicted = %d: pre-Close these must match", cpw, evicted)
	}
	if live := fl.Sessions(); live != created+restored-evicted {
		t.Errorf("live = %d, want created+restored-evicted = %d", live, created+restored-evicted)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := fl.PushBatch(SynthStream("post", 4, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
}
