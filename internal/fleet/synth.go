package fleet

import "math"

// SynthStream synthesizes a deterministic fused observation stream for
// one beacon: the observer patrols a 9 m × 9 m rectangle at 0.8 m/s
// while the beacon sits at a phase-dependent position, with RSS from a
// log-distance model plus seedless sinusoid pseudo-noise. phase
// decorrelates beacons (position and noise) while keeping every stream
// reproducible across runs and processes — the demo, the fleet
// benchmark and the equivalence tests all feed on it, and the
// bit-exactness assertions require determinism, not realism.
func SynthStream(beacon string, n int, phase float64) []Obs {
	const (
		fs    = 8.0
		speed = 0.8
		gamma = -58.0
		nExp  = 2.2
	)
	bx := 4 + 3*math.Sin(phase)
	by := 3 + 2*math.Cos(phase)
	out := make([]Obs, n)
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		leg := math.Mod(speed*t, 36)
		var ox, oy float64
		switch {
		case leg <= 9:
			ox, oy = leg, 0
		case leg <= 18:
			ox, oy = 9, leg-9
		case leg <= 27:
			ox, oy = 9-(leg-18), 9
		default:
			ox, oy = 0, 9-(leg-27)
		}
		d := math.Hypot(bx-ox, by-oy)
		if d < 0.1 {
			d = 0.1
		}
		noise := 2.0*math.Sin(1.3*float64(i)+phase) + 1.1*math.Cos(2.7*float64(i)+0.5+phase)
		out[i] = Obs{
			Beacon: beacon,
			T:      t,
			RSS:    gamma - 10*nExp*math.Log10(d) + noise,
			P:      -ox,
			Q:      -oy,
		}
	}
	return out
}
