package fleet

import (
	"encoding/json"
	"fmt"
	"sync"

	"locble/internal/core"
)

// CheckpointStore persists evicted sessions' checkpoints and serves
// them back when a beacon reappears. Implementations must be safe for
// concurrent use — every shard goroutine calls in. Durability is the
// implementation's business: MemStore survives evictions but not the
// process; a disk- or KV-backed store survives restarts, at which
// point the fleet's restore path doubles as crash recovery.
type CheckpointStore interface {
	// Save persists a beacon's checkpoint, replacing any previous one.
	Save(beacon string, cp *core.SessionCheckpoint) error
	// Load returns the stored checkpoint, or found=false when none.
	Load(beacon string) (cp *core.SessionCheckpoint, found bool, err error)
	// Delete drops a beacon's checkpoint; absent is not an error.
	Delete(beacon string) error
}

// MemStore is the in-process CheckpointStore: serialized checkpoints in
// a map. It stores the JSON encoding rather than the live struct, so a
// restore exercises the same round trip a durable store would — no
// accidental aliasing of mutable session state, and format breakage
// shows up in-process instead of only after a real restart.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory checkpoint store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Save implements CheckpointStore.
func (s *MemStore) Save(beacon string, cp *core.SessionCheckpoint) error {
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("fleet: encode checkpoint %s: %w", beacon, err)
	}
	s.mu.Lock()
	s.m[beacon] = raw
	s.mu.Unlock()
	return nil
}

// Load implements CheckpointStore.
func (s *MemStore) Load(beacon string) (*core.SessionCheckpoint, bool, error) {
	s.mu.Lock()
	raw, ok := s.m[beacon]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	var cp core.SessionCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, false, fmt.Errorf("fleet: decode checkpoint %s: %w", beacon, err)
	}
	return &cp, true, nil
}

// Delete implements CheckpointStore.
func (s *MemStore) Delete(beacon string) error {
	s.mu.Lock()
	delete(s.m, beacon)
	s.mu.Unlock()
	return nil
}

// Len returns how many checkpoints the store holds.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
