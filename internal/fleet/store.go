package fleet

import (
	"encoding/json"
	"fmt"
	"sync"

	"locble/internal/core"
)

// CheckpointStore persists evicted sessions' checkpoints and serves
// them back when a beacon reappears. Implementations must be safe for
// concurrent use — every shard goroutine calls in. Durability is the
// implementation's business: MemStore survives evictions but not the
// process; a disk- or KV-backed store survives restarts, at which
// point the fleet's restore path doubles as crash recovery.
type CheckpointStore interface {
	// Save persists a beacon's checkpoint, replacing any previous one.
	Save(beacon string, cp *core.SessionCheckpoint) error
	// Load returns the stored checkpoint, or found=false when none.
	Load(beacon string) (cp *core.SessionCheckpoint, found bool, err error)
	// Delete drops a beacon's checkpoint; absent is not an error.
	Delete(beacon string) error
}

// DurableStore is the optional durability contract a CheckpointStore
// may additionally satisfy (internal/durable's FileStore does). The
// fleet uses it to account checkpoint writes honestly — acked when a
// nil Save means fsynced-to-disk, buffered otherwise — and to surface
// the store's crash-recovery outcome as fleet metrics. Methods use
// only basic types so any store can satisfy it structurally without
// importing this package.
type DurableStore interface {
	// Durable reports whether a nil Save return means the checkpoint
	// has reached stable storage (false for write-behind/buffered
	// configurations).
	Durable() bool
	// RecoveryCounts reports what opening the store replayed and
	// repaired: records applied, torn tails truncated, damaged regions
	// quarantined.
	RecoveryCounts() (replayed, truncated, quarantined int64)
}

// MemStore is the in-process CheckpointStore: serialized checkpoints in
// a map. It stores the JSON encoding rather than the live struct, so a
// restore exercises the same round trip a durable store would — no
// accidental aliasing of mutable session state, and format breakage
// shows up in-process instead of only after a real restart.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory checkpoint store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Save implements CheckpointStore.
func (s *MemStore) Save(beacon string, cp *core.SessionCheckpoint) error {
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("fleet: encode checkpoint %s: %w", beacon, err)
	}
	s.mu.Lock()
	s.m[beacon] = raw
	s.mu.Unlock()
	return nil
}

// Load implements CheckpointStore.
func (s *MemStore) Load(beacon string) (*core.SessionCheckpoint, bool, error) {
	s.mu.Lock()
	raw, ok := s.m[beacon]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	var cp core.SessionCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		// Undecodable bytes are corruption, not a transient store
		// fault — mark them so the fleet quarantines the checkpoint
		// instead of failing the beacon's batch forever.
		return nil, false, fmt.Errorf("fleet: decode checkpoint %s: %w (%w)",
			beacon, core.ErrCorruptCheckpoint, err)
	}
	return &cp, true, nil
}

// Delete implements CheckpointStore.
func (s *MemStore) Delete(beacon string) error {
	s.mu.Lock()
	delete(s.m, beacon)
	s.mu.Unlock()
	return nil
}

// Len returns how many checkpoints the store holds.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
