package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"locble/internal/core"
	"locble/internal/testutil"
)

// TestFleetConcurrentEquivalence is the fleet's core race test: several
// pushers stream disjoint beacon sets concurrently (some beacons going
// silent mid-stream, so evictions and restores interleave with ingest),
// and every beacon's fix stream must still be bit-identical to a
// sequential single-session replay of its own observations. Run under
// -race this also proves the sharded registry keeps core's
// single-writer session contract with no hidden sharing.
func TestFleetConcurrentEquivalence(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t)
	fl, err := New(eng, Config{Shards: 4, Session: testSession()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const (
		pushers = 4
		perP    = 5
		n       = 360
		slice   = 12
		gapLo   = 120 // odd beacons silent for obs [gapLo, gapHi):
		gapHi   = 240 // 15 s of observation time, past the 10 s idle horizon
	)
	type stream struct {
		name string
		obs  []Obs // the gapped stream the beacon actually emits
	}
	all := make([][]stream, pushers)
	for p := 0; p < pushers; p++ {
		all[p] = make([]stream, perP)
		for j := 0; j < perP; j++ {
			name := fmt.Sprintf("p%d-b%d", p, j)
			full := SynthStream(name, n, float64(p)+0.3*float64(j))
			obs := full
			if j%2 == 1 {
				obs = append(append([]Obs(nil), full[:gapLo]...), full[gapHi:]...)
			}
			all[p][j] = stream{name: name, obs: obs}
		}
	}

	var (
		mu    sync.Mutex
		fixes = make(map[string][]core.TrackPoint)
		wg    sync.WaitGroup
	)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(streams []stream) {
			defer wg.Done()
			// Interleave this pusher's beacons slice by slice, like a
			// gateway flushing its receive buffer on a timer.
			for lo := 0; ; lo += slice {
				var batch []Obs
				for _, st := range streams {
					if lo < len(st.obs) {
						hi := lo + slice
						if hi > len(st.obs) {
							hi = len(st.obs)
						}
						batch = append(batch, st.obs[lo:hi]...)
					}
				}
				if len(batch) == 0 {
					return
				}
				res, err := fl.PushBatch(batch)
				if err != nil {
					t.Errorf("PushBatch: %v", err)
					return
				}
				mu.Lock()
				for _, r := range res {
					if r.Err != nil {
						t.Errorf("%s: %v", r.Beacon, r.Err)
					}
					fixes[r.Beacon] = append(fixes[r.Beacon], r.Points...)
				}
				mu.Unlock()
			}
		}(all[p])
	}
	wg.Wait()

	snap := fl.Metrics()
	created := snap.Counters["fleet.sessions.created"]
	evicted := snap.Counters["fleet.sessions.evicted"]
	restored := snap.Counters["fleet.sessions.restored"]
	if created != pushers*perP {
		t.Errorf("fleet.sessions.created = %d, want %d", created, pushers*perP)
	}
	// Pre-Close, the only checkpoints written are eviction checkpoints.
	if cpw := snap.Counters["fleet.checkpoints.written"]; cpw != evicted {
		t.Errorf("checkpoints.written = %d, evicted = %d: every eviction must write exactly one checkpoint", cpw, evicted)
	}
	// Every stream ends at the same observation time, so nothing is
	// evicted after its last push: each eviction was followed by a
	// restore and the books balance.
	if restored != evicted {
		t.Errorf("restored = %d, evicted = %d: a mid-stream eviction must be matched by a restore", restored, evicted)
	}
	if live := fl.Sessions(); live != created+restored-evicted {
		t.Errorf("live = %d, want created+restored-evicted = %d", live, created+restored-evicted)
	}

	for p := 0; p < pushers; p++ {
		for _, st := range all[p] {
			requireSameFixes(t, st.name, fixes[st.name], seqReplay(t, eng, st.name, st.obs))
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFleetThousandSessions drives the fleet past a thousand resident
// sessions, then lets all but every 12th beacon go idle: the sweep must
// evict the silent crowd (bounded memory) while the keepers stream on,
// and a clean Close leaves one checkpoint per beacon ever seen.
func TestFleetThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	eng := newTestEngine(t)
	store := NewMemStore()
	// A wide fix step keeps this test about residency and eviction
	// accounting, not regression throughput (the equivalence test pins
	// fix content); 1200 sessions' worth of 2 s fixes would dominate
	// the -race run for no extra coverage.
	sess := testSession()
	sess.Step = 12
	fl, err := New(eng, Config{Shards: 4, Session: sess, Store: store})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()

	const (
		nb   = 1200
		warm = 48  // every beacon's first 6 s
		keep = 216 // keepers continue to 27 s, far past the idle horizon
	)
	names := make([]string, nb)
	for i := range names {
		names[i] = fmt.Sprintf("s%04d", i)
	}

	// Phase 1: all 1200 beacons alive at once, fed in shard-friendly
	// chunks of 100 beacons per batch.
	for lo := 0; lo < warm; lo += 24 {
		for b0 := 0; b0 < nb; b0 += 100 {
			var batch []Obs
			for _, name := range names[b0 : b0+100] {
				batch = append(batch, SynthStream(name, warm, float64(b0)/100)[lo:lo+24]...)
			}
			if _, err := fl.PushBatch(batch); err != nil {
				t.Fatalf("warm PushBatch: %v", err)
			}
		}
	}
	if hw := fl.met.live.Max(); hw < 1000 {
		t.Fatalf("resident-session high-water = %d, want >= 1000", hw)
	}

	// Phase 2: only every 12th beacon keeps reporting.
	keepers := make([]int, 0, nb/12)
	for i := 0; i < nb; i += 12 {
		keepers = append(keepers, i)
	}
	for lo := warm; lo < keep; lo += 24 {
		var batch []Obs
		for _, i := range keepers {
			batch = append(batch, SynthStream(names[i], keep, float64(i/100))[lo:lo+24]...)
		}
		if _, err := fl.PushBatch(batch); err != nil {
			t.Fatalf("keeper PushBatch: %v", err)
		}
	}

	snap := fl.Metrics()
	if c := snap.Counters["fleet.sessions.created"]; c != nb {
		t.Errorf("fleet.sessions.created = %d, want %d", c, nb)
	}
	if e, want := snap.Counters["fleet.sessions.evicted"], int64(nb-len(keepers)); e != want {
		t.Errorf("fleet.sessions.evicted = %d, want %d (all silent beacons past the horizon)", e, want)
	}
	if live := fl.Sessions(); live != int64(len(keepers)) {
		t.Errorf("live sessions = %d, want %d keepers", live, len(keepers))
	}

	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if store.Len() != nb {
		t.Errorf("store holds %d checkpoints after Close, want %d (evicted + close-drained)", store.Len(), nb)
	}
}

// TestFleetCloseDuringIngest closes the fleet while pushers are mid
// flight: in-flight batches complete, later ones get ErrClosed, nothing
// deadlocks or leaks, and Close stays idempotent.
func TestFleetCloseDuringIngest(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t)
	fl, err := New(eng, Config{Shards: 2, Session: testSession()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const pushers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			stream := SynthStream(fmt.Sprintf("x%d", p), 4096, float64(p))
			<-start
			for lo := 0; lo+16 <= len(stream); lo += 16 {
				res, err := fl.PushBatch(stream[lo : lo+16])
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("PushBatch: %v", err)
					return
				}
				for _, r := range res {
					if r.Err != nil {
						t.Errorf("%s: %v", r.Beacon, r.Err)
						return
					}
				}
			}
		}(p)
	}
	close(start)
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if _, err := fl.PushBatch(SynthStream("late", 4, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
