// Package fleet is the serving-scale front end over core.TrackSession:
// one process tracking thousands of beacons at once behind a batched
// ingest API. Sessions live in a sharded registry — beacon names hash
// (FNV-1a) onto GOMAXPROCS-sized shards, and each shard is owned by
// exactly one goroutine, so every session keeps core's single-writer
// contract without any per-push locking. PushBatch groups a mixed
// observation batch by beacon and routes each group to its shard in one
// channel hop; full shards apply backpressure to the submitter rather
// than shedding, so no observation is silently dropped.
//
// Lifecycle is managed, not manual: a session is created lazily on a
// beacon's first observation, evicted after it has been silent for the
// ladder's staleness horizon (checkpointed to a pluggable
// CheckpointStore on the way out), and restored from its checkpoint
// when the beacon reappears — resuming its Γ drift history, filter
// state and mirror-ambiguity anchor bit-exactly, so a beacon that walks
// out of range and back produces the same fixes an uninterrupted
// session would.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"locble/internal/core"
	"locble/internal/estimate"
)

// Errors.
var (
	// ErrClosed is returned by PushBatch after Close.
	ErrClosed = errors.New("fleet: closed")
	// ErrShardFull rejects a new session when a shard is at its
	// configured session cap (admission control for beacon floods; the
	// observations for already-resident beacons still land).
	ErrShardFull = errors.New("fleet: shard session cap reached")
)

// Obs is one fused observation tagged with the beacon it belongs to —
// the unit of fleet ingest. T/RSS/P/Q mirror estimate.Obs: timestamp,
// raw RSS, and the observer's relative displacement.
type Obs struct {
	Beacon string
	T      float64
	RSS    float64
	P      float64
	Q      float64
}

// Result is one beacon's outcome of a PushBatch call.
type Result struct {
	Beacon string
	// Points are the fixes this batch's observations completed (usually
	// zero or one; more when a batch spans several fix steps).
	Points []core.TrackPoint
	// Created is set when the batch lazily created the session;
	// Restored when it resumed one from a checkpoint instead.
	Created  bool
	Restored bool
	// Quarantined is set when the beacon had a stored checkpoint that
	// could not be used — corrupt bytes or an unrestorable format — and
	// the fleet sidelined (deleted) it and started the session cold.
	// The observations still landed; the caller learns the beacon's
	// history was lost.
	Quarantined bool
	// Err is this beacon's failure (the rest of the batch still ran):
	// ErrShardFull, a checkpoint-store failure, a session error, or the
	// batch context's error for groups never submitted.
	Err error
}

// Config configures a Fleet.
type Config struct {
	// Shards is the number of registry shards (= owner goroutines).
	// Zero selects GOMAXPROCS — one shard per core, matching the
	// CPU-bound regression work the shards perform.
	Shards int
	// Session is the per-beacon session template; Beacon is overridden
	// with each tracked beacon's name.
	Session core.TrackSessionConfig
	// Store receives checkpoint-on-evict state and serves
	// restore-on-reappearance. Nil selects an in-process MemStore.
	Store CheckpointStore
	// IdleMaxAge is how long (seconds of observation time) a session may
	// go without an observation before it is checkpointed and evicted.
	// Zero reuses the degradation ladder's staleness horizon
	// (core.DefaultStaleMaxAge): a beacon too stale to show is too idle
	// to keep resident.
	IdleMaxAge float64
	// MaxSessionsPerShard caps resident sessions per shard; new beacons
	// beyond it are rejected with ErrShardFull. Zero means unlimited.
	MaxSessionsPerShard int
}

// Fleet is a concurrent multi-session tracking service. All methods
// are safe for concurrent use; observations for one beacon should
// arrive in timestamp order (across however many PushBatch calls), as
// a session drops out-of-order samples.
type Fleet struct {
	eng    *core.Engine
	cfg    Config
	store  CheckpointStore
	acked  bool // store acknowledges saves as fsynced (DurableStore in durable mode)
	idle   float64
	met    *metrics
	shards []*shard

	mu     sync.Mutex
	closed bool
	flight sync.WaitGroup // in-flight PushBatch calls
	done   sync.WaitGroup // running shard goroutines
}

// groupWork is one beacon's slice of a batch, routed to its shard with
// a result slot the shard owns until wg.Done.
type groupWork struct {
	name string
	obs  []estimate.Obs
	res  *Result
}

// shardBatch is everything one PushBatch call sends one shard: all of
// its groups in one hop. A non-nil drain turns the batch into a drain
// request: after the groups land, the shard checkpoints and evicts
// every resident session into drain's tallies.
type shardBatch struct {
	groups []groupWork
	wg     *sync.WaitGroup
	drain  *drainWork
}

// drainWork collects one shard's drain outcome; it is owned by the
// shard goroutine until the batch's wg.Done.
type drainWork struct {
	drained int
	err     error
}

// shardBatchDepth is each shard's batch queue buffer. A full queue
// applies backpressure to PushBatch callers (bounded memory, nothing
// shed); it is deliberately shallow — each entry can carry many
// observations.
const shardBatchDepth = 8

// shard is one registry shard: a batch queue plus the session table its
// owner goroutine alone may touch.
type shard struct {
	f  *Fleet
	ch chan shardBatch

	// Owned by the shard goroutine — never locked, never shared.
	sessions  map[string]*session
	maxT      float64 // newest observation time seen on this shard
	nextSweep float64 // next maxT at which to run an eviction sweep
	drainErr  error   // close-time checkpoint failures
}

// session is one resident beacon: its tracking session and the
// timestamp of its newest observation (the idle clock runs on
// observation time, so replayed traces age deterministically).
type session struct {
	ts    *core.TrackSession
	lastT float64
}

// New starts a fleet over an engine's pipeline configuration. The
// returned Fleet owns its shard goroutines; Close releases them.
func New(eng *core.Engine, cfg Config) (*Fleet, error) {
	if eng == nil {
		return nil, fmt.Errorf("%w: nil engine", core.ErrSessionConfig)
	}
	// Validate the session template once, up front, instead of failing
	// every beacon's first observation later.
	probe := cfg.Session
	probe.Beacon = "fleet-template-probe"
	if _, err := eng.NewTrackSession(probe); err != nil {
		return nil, fmt.Errorf("fleet: session template: %w", err)
	}
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	f := &Fleet{
		eng:   eng,
		cfg:   cfg,
		store: cfg.Store,
		idle:  cfg.IdleMaxAge,
		met:   newMetrics(),
	}
	if f.store == nil {
		f.store = NewMemStore()
	}
	// A durability-aware store tells the fleet two things: whether a
	// nil Save means fsynced (acked) or merely buffered, and what its
	// crash recovery replayed and repaired — surfaced as gauges so a
	// restarted fleet's operator sees the damage report without
	// touching store internals.
	if ds, ok := f.store.(DurableStore); ok {
		f.acked = ds.Durable()
		replayed, truncated, quarantined := ds.RecoveryCounts()
		f.met.recReplayed.Set(replayed)
		f.met.recTruncated.Set(truncated)
		f.met.recQuarantined.Set(quarantined)
	}
	if f.idle <= 0 {
		f.idle = core.DefaultStaleMaxAge
	}
	f.shards = make([]*shard, n)
	for i := range f.shards {
		sh := &shard{
			f:        f,
			ch:       make(chan shardBatch, shardBatchDepth),
			sessions: make(map[string]*session),
		}
		f.shards[i] = sh
		f.done.Add(1)
		go sh.run()
	}
	return f, nil
}

// PushBatch feeds a mixed batch of observations in and returns one
// Result per distinct beacon (in first-appearance order). Observations
// are grouped by beacon and each group lands on its session in input
// order, so the results are bit-identical to pushing the same
// observations into per-beacon sessions sequentially.
func (f *Fleet) PushBatch(obs []Obs) ([]Result, error) {
	return f.PushBatchContext(context.Background(), obs)
}

// PushBatchContext is PushBatch under a context: a submitter held in
// shard backpressure unblocks on cancellation, and groups that were
// never submitted complete with the context's error.
func (f *Fleet) PushBatchContext(ctx context.Context, obs []Obs) ([]Result, error) {
	if len(obs) == 0 {
		return nil, nil
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	f.flight.Add(1)
	f.mu.Unlock()
	defer f.flight.Done()

	sp := f.met.pushSpan.Start()
	defer sp.End()
	f.met.batches.Inc()
	f.met.batchSize.Observe(float64(len(obs)))
	f.met.obsPushed.Add(int64(len(obs)))

	// Group by beacon, preserving first-appearance order between groups
	// and input order within each.
	idx := make(map[string]int, 16)
	results := make([]Result, 0, 16)
	groupObs := make([][]estimate.Obs, 0, 16)
	for _, o := range obs {
		g, ok := idx[o.Beacon]
		if !ok {
			g = len(results)
			idx[o.Beacon] = g
			results = append(results, Result{Beacon: o.Beacon})
			groupObs = append(groupObs, nil)
		}
		groupObs[g] = append(groupObs[g], estimate.Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
	}

	// Route every group to its shard in one hop: one shardBatch send per
	// shard regardless of how many beacons it carries.
	nsh := len(f.shards)
	batches := make([]shardBatch, nsh)
	for g := range results {
		si := shardIndex(results[g].Beacon, nsh)
		batches[si].groups = append(batches[si].groups, groupWork{
			name: results[g].Beacon,
			obs:  groupObs[g],
			res:  &results[g],
		})
	}
	var wg sync.WaitGroup
	canceled := false
	for si := range batches {
		b := &batches[si]
		if len(b.groups) == 0 {
			continue
		}
		if canceled {
			for i := range b.groups {
				b.groups[i].res.Err = ctx.Err()
			}
			continue
		}
		b.wg = &wg
		wg.Add(1)
		f.met.shardQueue.Observe(float64(len(f.shards[si].ch)))
		select {
		case f.shards[si].ch <- *b:
		case <-ctx.Done():
			// Same hang class LocateAllContext fixed: a canceled batch
			// must not wait out shard backpressure. Unsubmitted groups
			// report the context error; submitted ones finish normally.
			wg.Done()
			canceled = true
			for i := range b.groups {
				b.groups[i].res.Err = ctx.Err()
			}
		}
	}
	wg.Wait()
	return results, nil
}

// Drain checkpoints every resident session to the store and evicts it,
// leaving the fleet empty but running — the scale-out handoff
// primitive: a router drains a node, then routes its beacons to the
// surviving nodes, which restore each session from the shared store
// bit-exactly. Returns how many sessions were drained. Sessions whose
// checkpoint save fails stay resident (and are counted in the error);
// a later Drain or Close retries them.
func (f *Fleet) Drain() (int, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrClosed
	}
	f.flight.Add(1)
	f.mu.Unlock()
	defer f.flight.Done()

	f.met.drains.Inc()
	works := make([]drainWork, len(f.shards))
	var wg sync.WaitGroup
	for si := range f.shards {
		wg.Add(1)
		f.shards[si].ch <- shardBatch{wg: &wg, drain: &works[si]}
	}
	wg.Wait()
	drained := 0
	errs := make([]error, 0, len(works))
	for i := range works {
		drained += works[i].drained
		if works[i].err != nil {
			errs = append(errs, works[i].err)
		}
	}
	f.met.drainedSessions.Add(int64(drained))
	return drained, errors.Join(errs...)
}

// Sessions returns the number of currently resident sessions.
func (f *Fleet) Sessions() int64 { return f.met.live.Value() }

// Store returns the fleet's checkpoint store.
func (f *Fleet) Store() CheckpointStore { return f.store }

// Close drains in-flight batches, checkpoints every resident session to
// the store (a clean shutdown loses no tracking state), and joins the
// shard goroutines. Idempotent; PushBatch returns ErrClosed afterwards.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.flight.Wait()
	for _, sh := range f.shards {
		close(sh.ch)
	}
	f.done.Wait()
	errs := make([]error, 0, len(f.shards))
	for _, sh := range f.shards {
		if sh.drainErr != nil {
			errs = append(errs, sh.drainErr)
		}
	}
	return errors.Join(errs...)
}

// run is the shard owner goroutine: it alone touches this shard's
// session table, so sessions are single-writer by construction — no
// per-push lock, no lock ordering, no contention between shards.
func (sh *shard) run() {
	defer sh.f.done.Done()
	for b := range sh.ch {
		for i := range b.groups {
			sh.process(&b.groups[i])
		}
		if b.drain != nil {
			sh.drainAll(b.drain)
		}
		b.wg.Done()
		sh.sweep()
	}
	// Fleet closing: checkpoint everything still resident.
	for name, se := range sh.sessions {
		if err := sh.f.saveCheckpoint(name, se.ts); err != nil {
			sh.drainErr = fmt.Errorf("fleet: close checkpoint %s: %w", name, err)
		}
	}
	sh.f.met.live.Add(-int64(len(sh.sessions)))
	sh.sessions = nil
}

// saveCheckpoint writes one session's checkpoint with durability-aware
// accounting: the write counts as acked when the store acknowledged it
// fsynced, buffered otherwise. Failures count as store errors and the
// caller keeps the session resident.
func (f *Fleet) saveCheckpoint(name string, ts *core.TrackSession) error {
	if err := f.store.Save(name, ts.Checkpoint()); err != nil {
		f.met.storeErrors.Inc()
		return err
	}
	f.met.checkpoints.Inc()
	if f.acked {
		f.met.cpAcked.Inc()
	} else {
		f.met.cpBuffered.Inc()
	}
	return nil
}

// process lands one beacon's group on its session, creating or
// restoring the session on first sight.
func (sh *shard) process(g *groupWork) {
	f := sh.f
	se, ok := sh.sessions[g.name]
	if !ok {
		if f.cfg.MaxSessionsPerShard > 0 && len(sh.sessions) >= f.cfg.MaxSessionsPerShard {
			g.res.Err = ErrShardFull
			return
		}
		cp, found, err := f.store.Load(g.name)
		if err != nil {
			if !errors.Is(err, core.ErrCorruptCheckpoint) {
				// A transient storage failure: fail this group and let
				// the caller retry — the checkpoint may still be fine.
				f.met.storeErrors.Inc()
				g.res.Err = fmt.Errorf("fleet: load checkpoint %s: %w", g.name, err)
				return
			}
			// The stored bytes are damaged beyond decoding. That is a
			// restore casualty, not a store fault: count it as exactly
			// one restore error (never as restored work), quarantine the
			// checkpoint so it cannot wedge the beacon on every
			// reappearance, and start cold — the observations still
			// land.
			f.met.restoreErrors.Inc()
			_ = f.store.Delete(g.name)
			g.res.Quarantined = true
			found = false
		}
		var ts *core.TrackSession
		if found {
			ts, err = f.eng.RestoreTrackSession(cp)
			if err != nil {
				// A checkpoint this engine cannot resume (version or
				// ablation mismatch) would fail forever — drop it and
				// start cold rather than wedging the beacon.
				f.met.restoreErrors.Inc()
				_ = f.store.Delete(g.name)
				g.res.Quarantined = true
				ts = nil
			} else {
				f.met.restored.Inc()
				g.res.Restored = true
			}
		}
		if ts == nil {
			cfg := f.cfg.Session
			cfg.Beacon = g.name
			ts, err = f.eng.NewTrackSession(cfg)
			if err != nil {
				g.res.Err = err
				return
			}
			f.met.created.Inc()
			g.res.Created = true
		}
		se = &session{ts: ts}
		sh.sessions[g.name] = se
		f.met.live.Add(1)
	}
	for _, o := range g.obs {
		pt, err := se.ts.Push(o)
		if err != nil {
			g.res.Err = err
			break
		}
		if pt != nil {
			g.res.Points = append(g.res.Points, *pt)
		}
		if o.T > se.lastT {
			se.lastT = o.T
		}
	}
	if se.lastT > sh.maxT {
		sh.maxT = se.lastT
	}
}

// drainAll checkpoints and evicts every session resident on this shard
// (the Drain handoff). A session whose save fails stays resident so no
// state is lost — it is reported in dw.err and retried by a later
// Drain, sweep, or Close.
func (sh *shard) drainAll(dw *drainWork) {
	errs := []error(nil)
	for name, se := range sh.sessions {
		if err := sh.f.saveCheckpoint(name, se.ts); err != nil {
			errs = append(errs, fmt.Errorf("fleet: drain checkpoint %s: %w", name, err))
			continue
		}
		delete(sh.sessions, name)
		sh.f.met.evicted.Inc()
		sh.f.met.live.Add(-1)
		dw.drained++
	}
	dw.err = errors.Join(errs...)
}

// sweep evicts sessions idle past the fleet's horizon, checkpointing
// each to the store first so a reappearing beacon resumes instead of
// restarting. The sweep is amortized: it reruns only after observation
// time advances a quarter horizon, so steady traffic pays O(sessions)
// once per interval, not per batch.
func (sh *shard) sweep() {
	if sh.maxT < sh.nextSweep {
		return
	}
	sh.nextSweep = sh.maxT + sh.f.idle/4
	for name, se := range sh.sessions {
		if sh.maxT-se.lastT <= sh.f.idle {
			continue
		}
		if err := sh.f.saveCheckpoint(name, se.ts); err != nil {
			// Keep the session resident rather than losing its state;
			// the next sweep retries.
			continue
		}
		delete(sh.sessions, name)
		sh.f.met.evicted.Inc()
		sh.f.met.live.Add(-1)
	}
}

// shardIndex maps a beacon name onto one of n shards with FNV-1a (the
// same hash core's LocateAll pool uses, so a beacon's work stays on one
// CPU across both paths).
func shardIndex(name string, n int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}
