package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"locble/internal/core"
	"locble/internal/estimate"
	"locble/internal/testutil"
)

func newTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// testSession is the session template every fleet test uses — 8 Hz to
// match SynthStream.
func testSession() core.TrackSessionConfig {
	return core.TrackSessionConfig{SampleRateHz: 8}
}

// seqReplay pushes one beacon's observations into a standalone session
// (same engine, same template) and returns its fixes — the ground truth
// the sharded fleet must match bit-for-bit.
func seqReplay(t *testing.T, eng *core.Engine, beacon string, obs []Obs) []core.TrackPoint {
	t.Helper()
	cfg := testSession()
	cfg.Beacon = beacon
	s, err := eng.NewTrackSession(cfg)
	if err != nil {
		t.Fatalf("NewTrackSession(%s): %v", beacon, err)
	}
	var fixes []core.TrackPoint
	for _, o := range obs {
		pt, err := s.Push(estimate.Obs{T: o.T, RSS: o.RSS, P: o.P, Q: o.Q})
		if err != nil {
			t.Fatalf("sequential Push(%s, t=%.2f): %v", beacon, o.T, err)
		}
		if pt != nil {
			fixes = append(fixes, *pt)
		}
	}
	return fixes
}

// requireSameFixes asserts two fix streams are bit-identical.
func requireSameFixes(t *testing.T, beacon string, got, want []core.TrackPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: fleet produced %d fixes, sequential replay %d", beacon, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.T != w.T || g.Mode != w.Mode || g.Samples != w.Samples {
			t.Fatalf("%s fix %d: (T=%v mode=%v n=%d) != sequential (T=%v mode=%v n=%d)",
				beacon, i, g.T, g.Mode, g.Samples, w.T, w.Mode, w.Samples)
		}
		if g.Est.X != w.Est.X || g.Est.H != w.Est.H ||
			g.Est.N != w.Est.N || g.Est.Gamma != w.Est.Gamma ||
			g.Est.ResidualDB != w.Est.ResidualDB || g.Est.Confidence != w.Est.Confidence {
			t.Fatalf("%s fix %d not bit-identical:\n got  (%.17g, %.17g) n=%.17g Γ=%.17g\n want (%.17g, %.17g) n=%.17g Γ=%.17g",
				beacon, i, g.Est.X, g.Est.H, g.Est.N, g.Est.Gamma,
				w.Est.X, w.Est.H, w.Est.N, w.Est.Gamma)
		}
	}
}

// TestPushBatchMatchesSequential: mixed batches over many beacons land
// on sharded sessions with results bit-identical to per-beacon
// sequential replay — sharding and batching are pure transport.
func TestPushBatchMatchesSequential(t *testing.T) {
	eng := newTestEngine(t)
	fl, err := New(eng, Config{Session: testSession()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()

	const nb, n, slice = 9, 400, 16
	names := make([]string, nb)
	streams := make(map[string][]Obs, nb)
	for i := range names {
		names[i] = fmt.Sprintf("b%02d", i)
		streams[names[i]] = SynthStream(names[i], n, float64(i)*0.7)
	}

	got := make(map[string][]core.TrackPoint, nb)
	for lo := 0; lo < n; lo += slice {
		var batch []Obs
		for _, name := range names {
			batch = append(batch, streams[name][lo:lo+slice]...)
		}
		res, err := fl.PushBatch(batch)
		if err != nil {
			t.Fatalf("PushBatch: %v", err)
		}
		if len(res) != nb {
			t.Fatalf("PushBatch returned %d results, want %d", len(res), nb)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Beacon, r.Err)
			}
			if lo == 0 && !r.Created {
				t.Errorf("%s: first batch did not report Created", r.Beacon)
			}
			got[r.Beacon] = append(got[r.Beacon], r.Points...)
		}
	}
	for _, name := range names {
		requireSameFixes(t, name, got[name], seqReplay(t, eng, name, streams[name]))
	}

	if fl.Sessions() != nb {
		t.Errorf("Sessions() = %d, want %d", fl.Sessions(), nb)
	}
	snap := fl.Metrics()
	if snap.Counters["fleet.sessions.created"] != nb {
		t.Errorf("fleet.sessions.created = %d, want %d", snap.Counters["fleet.sessions.created"], nb)
	}
	if snap.Counters["fleet.sessions.evicted"] != 0 {
		t.Errorf("fleet.sessions.evicted = %d, want 0", snap.Counters["fleet.sessions.evicted"])
	}
	if want := int64(nb * n); snap.Counters["fleet.obs.pushed"] != want {
		t.Errorf("fleet.obs.pushed = %d, want %d", snap.Counters["fleet.obs.pushed"], want)
	}
}

// TestEvictRestoreResumesBitExact: a beacon that goes silent past the
// idle horizon is checkpointed and evicted (while another beacon keeps
// the shard's clock moving), then restored on reappearance — and the
// whole interrupted life produces exactly the fixes one uninterrupted
// session fed the same gapped stream would.
func TestEvictRestoreResumesBitExact(t *testing.T) {
	eng := newTestEngine(t)
	fl, err := New(eng, Config{Shards: 1, Session: testSession(), IdleMaxAge: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()

	const n, slice = 600, 15
	const gapLo, gapHi = 150, 450 // wanderer silent for 37.5 s ≫ 5 s idle
	wander := SynthStream("wanderer", n, 0.4)
	anchor := SynthStream("anchor", n, 1.9)

	var got []core.TrackPoint
	sawRestore := false
	for lo := 0; lo < n; lo += slice {
		batch := append([]Obs(nil), anchor[lo:lo+slice]...)
		if lo < gapLo || lo >= gapHi {
			batch = append(batch, wander[lo:lo+slice]...)
		}
		res, err := fl.PushBatch(batch)
		if err != nil {
			t.Fatalf("PushBatch: %v", err)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Beacon, r.Err)
			}
			if r.Beacon == "wanderer" {
				got = append(got, r.Points...)
				if r.Restored {
					sawRestore = true
				}
			}
		}
	}
	if !sawRestore {
		t.Fatal("wanderer reappeared but was never restored from its checkpoint")
	}

	gapped := append(append([]Obs(nil), wander[:gapLo]...), wander[gapHi:]...)
	requireSameFixes(t, "wanderer", got, seqReplay(t, eng, "wanderer", gapped))

	snap := fl.Metrics()
	if e, c := snap.Counters["fleet.sessions.evicted"], snap.Counters["fleet.checkpoints.written"]; e != 1 || c != 1 {
		t.Errorf("evicted=%d checkpoints=%d, want 1 and 1 (every eviction writes exactly one checkpoint)", e, c)
	}
	if r := snap.Counters["fleet.sessions.restored"]; r != 1 {
		t.Errorf("fleet.sessions.restored = %d, want 1", r)
	}
	if fl.Sessions() != 2 {
		t.Errorf("Sessions() = %d, want 2", fl.Sessions())
	}
}

// gateStore parks every Load until gate closes — the deterministic way
// to hold a shard goroutine busy so its batch queue can be saturated.
type gateStore struct {
	CheckpointStore
	gate <-chan struct{}
}

func (g *gateStore) Load(beacon string) (*core.SessionCheckpoint, bool, error) {
	<-g.gate
	return g.CheckpointStore.Load(beacon)
}

// TestPushBatchCanceledUnderBackpressure mirrors the LocateAllContext
// regression: with the single shard parked and its batch queue full, a
// PushBatchContext submitter blocks in backpressure; cancellation must
// unblock it and fill the unsubmitted results with the context error
// instead of hanging on a dead batch.
func TestPushBatchCanceledUnderBackpressure(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	eng := newTestEngine(t)
	gate := make(chan struct{})
	fl, err := New(eng, Config{
		Shards:  1,
		Session: testSession(),
		Store:   &gateStore{CheckpointStore: NewMemStore(), gate: gate},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// One batch parks the shard inside store.Load; shardBatchDepth more
	// fill its queue.
	var fillWG sync.WaitGroup
	fillRes := make([]Result, 1+shardBatchDepth)
	for i := range fillRes {
		fillRes[i].Beacon = "gated"
		fillWG.Add(1)
		fl.shards[0].ch <- shardBatch{
			groups: []groupWork{{name: "gated", obs: []estimate.Obs{{T: float64(i), RSS: -60}}, res: &fillRes[i]}},
			wg:     &fillWG,
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Result, 1)
	go func() {
		res, err := fl.PushBatchContext(ctx, SynthStream("victim", 4, 0))
		if err != nil {
			t.Errorf("PushBatchContext: %v", err)
		}
		done <- res
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case res := <-done:
		if len(res) != 1 || !errors.Is(res[0].Err, context.Canceled) {
			t.Fatalf("canceled batch results = %+v, want one context.Canceled", res)
		}
	case <-time.After(10 * time.Second):
		close(gate)
		t.Fatal("PushBatchContext hung: canceled context did not unblock a submitter stuck in shard backpressure")
	}

	close(gate)
	fillWG.Wait()
	for i, r := range fillRes {
		if r.Err != nil {
			t.Errorf("parked batch %d: %v", i, r.Err)
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestShardSessionCap: the per-shard cap rejects the overflow beacon
// with ErrShardFull while resident beacons keep ingesting.
func TestShardSessionCap(t *testing.T) {
	eng := newTestEngine(t)
	fl, err := New(eng, Config{Shards: 1, Session: testSession(), MaxSessionsPerShard: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer fl.Close()

	var batch []Obs
	for i, name := range []string{"a", "b", "c"} {
		batch = append(batch, SynthStream(name, 4, float64(i))...)
	}
	res, err := fl.PushBatch(batch)
	if err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("resident beacons errored: %v / %v", res[0].Err, res[1].Err)
	}
	if !errors.Is(res[2].Err, ErrShardFull) {
		t.Fatalf("overflow beacon err = %v, want ErrShardFull", res[2].Err)
	}
	if fl.Sessions() != 2 {
		t.Errorf("Sessions() = %d, want 2", fl.Sessions())
	}
	res, err = fl.PushBatch(SynthStream("a", 8, 0)[4:])
	if err != nil || res[0].Err != nil {
		t.Fatalf("resident beacon rejected after cap hit: %v / %v", err, res[0].Err)
	}
}

// TestCloseCheckpointsResidents: Close drains every resident session
// into the store, rejects further ingest, and a successor fleet sharing
// the store resumes every beacon from its checkpoint.
func TestCloseCheckpointsResidents(t *testing.T) {
	eng := newTestEngine(t)
	store := NewMemStore()
	fl, err := New(eng, Config{Session: testSession(), Store: store})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const nb = 5
	var batch []Obs
	for i := 0; i < nb; i++ {
		batch = append(batch, SynthStream(fmt.Sprintf("c%d", i), 24, float64(i))...)
	}
	if _, err := fl.PushBatch(batch); err != nil {
		t.Fatalf("PushBatch: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if store.Len() != nb {
		t.Fatalf("store holds %d checkpoints after Close, want %d", store.Len(), nb)
	}
	if _, err := fl.PushBatch(batch); !errors.Is(err, ErrClosed) {
		t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The successor process: same engine config, same store — every
	// beacon resumes rather than cold-starts.
	fl2, err := New(eng, Config{Session: testSession(), Store: store})
	if err != nil {
		t.Fatalf("New (successor): %v", err)
	}
	defer fl2.Close()
	var next []Obs
	for i := 0; i < nb; i++ {
		next = append(next, SynthStream(fmt.Sprintf("c%d", i), 48, float64(i))[24:]...)
	}
	res, err := fl2.PushBatch(next)
	if err != nil {
		t.Fatalf("successor PushBatch: %v", err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Beacon, r.Err)
		}
		if !r.Restored {
			t.Errorf("%s: successor fleet cold-started instead of restoring", r.Beacon)
		}
	}
}
