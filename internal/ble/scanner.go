package ble

import (
	"time"

	"locble/internal/rng"
)

// Scanner models a smartphone's passive BLE scanner. Real controllers
// listen on one advertising channel at a time, for ScanWindow out of every
// ScanInterval, rotating 37 → 38 → 39 between intervals. A transmission
// is heard only if it lands inside the window on the channel the scanner
// is currently tuned to — which is why phones report fewer advertisement
// sightings than beacons transmit, and why different OSes exhibit the
// effective report rates the paper measures (9 Hz iPhone 6s, 8 Hz Nexus 6P;
// Sec. 7.6.1).
type Scanner struct {
	// ScanInterval is the period of the scan schedule.
	ScanInterval time.Duration
	// ScanWindow is the listening time per interval; ScanWindow ==
	// ScanInterval is continuous scanning.
	ScanWindow time.Duration
	// DropProb is the probability a heard packet is still lost (CRC
	// failure, collision with other 2.4 GHz traffic, HCI back-pressure).
	DropProb float64
	// ReportFloorDBm drops reports below the receiver sensitivity.
	ReportFloorDBm float64

	src *rng.Source
}

// NewScanner returns a continuous scanner with sensible phone defaults.
func NewScanner(src *rng.Source) *Scanner {
	return &Scanner{
		ScanInterval:   30 * time.Millisecond,
		ScanWindow:     30 * time.Millisecond,
		DropProb:       0.05,
		ReportFloorDBm: -100,
		src:            src,
	}
}

// channelAt returns the advertising channel the scanner is tuned to at
// time t, and whether it is inside a scan window at all.
func (s *Scanner) channelAt(t time.Duration) (int, bool) {
	if s.ScanInterval <= 0 {
		return 0, false
	}
	n := int64(t / s.ScanInterval)
	within := t - time.Duration(n)*s.ScanInterval
	if within >= s.ScanWindow {
		return 0, false
	}
	return AdvChannels[int(n%3+3)%3], true
}

// Hears reports whether a transmission on channel ch at time t is captured
// by this scanner.
func (s *Scanner) Hears(t time.Duration, ch int) bool {
	tuned, listening := s.channelAt(t)
	if !listening || tuned != ch {
		return false
	}
	if s.DropProb <= 0 || s.src == nil {
		return true
	}
	return !s.src.Bool(s.DropProb)
}

// Report is a scan report delivered to the application layer, the
// equivalent of a CoreBluetooth / BluetoothLeScanner callback: the decoded
// advertisement plus the RSSI the radio measured.
type Report struct {
	At      time.Duration
	AdvA    Address
	Channel int
	RSSI    float64
	Beacon  *Beacon
	PDUType PDUType
}

// Receive demodulates an on-air frame heard on channel ch with measured
// power rssi and produces a Report, or an error if the frame is corrupt or
// not a recognized beacon. rssi below the report floor is discarded with
// ErrTruncated-wrapped sentinel nil report.
func (s *Scanner) Receive(at time.Duration, ch int, frame []byte, rssi float64) (*Report, error) {
	if rssi < s.ReportFloorDBm {
		return nil, ErrBelowFloor
	}
	pdu, err := Deframe(frame, ch)
	if err != nil {
		return nil, err
	}
	ads, err := ParseADStructures(pdu.Data)
	if err != nil {
		return nil, err
	}
	b, err := DecodeBeacon(ads)
	if err != nil {
		return nil, err
	}
	return &Report{At: at, AdvA: pdu.AdvA, Channel: ch, RSSI: rssi, Beacon: b, PDUType: pdu.Type}, nil
}

// ErrBelowFloor indicates a frame arrived below receiver sensitivity.
var ErrBelowFloor = errorString("ble: RSSI below receiver sensitivity")

type errorString string

func (e errorString) Error() string { return string(e) }
