package ble

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"locble/internal/rng"
)

func TestPDURoundTrip(t *testing.T) {
	pdu := AdvPDU{
		Type:  PDUAdvNonconnInd,
		TxAdd: true,
		AdvA:  AddressFromUint64(0xAABBCCDDEEFF),
		Data:  []byte{0x02, 0x01, 0x06},
	}
	raw, err := pdu.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got AdvPDU
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Type != pdu.Type || got.TxAdd != pdu.TxAdd || got.AdvA != pdu.AdvA || !bytes.Equal(got.Data, pdu.Data) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, pdu)
	}
}

func TestPDUErrors(t *testing.T) {
	var p AdvPDU
	if err := p.DecodeFromBytes([]byte{0x02}); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	if err := p.DecodeFromBytes([]byte{0x02, 0x08, 1, 2, 3}); !errors.Is(err, ErrBadLength) {
		t.Errorf("want ErrBadLength, got %v", err)
	}
	if err := p.DecodeFromBytes([]byte{0x02, 0x03, 1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated for short AdvA, got %v", err)
	}
	big := AdvPDU{Data: make([]byte, 32)}
	if _, err := big.SerializeTo(nil); !errors.Is(err, ErrDataTooBig) {
		t.Errorf("want ErrDataTooBig, got %v", err)
	}
}

func TestPDUTypeConnectable(t *testing.T) {
	cases := map[PDUType]bool{
		PDUAdvInd:        true,
		PDUAdvDirectInd:  true,
		PDUAdvNonconnInd: false,
		PDUAdvScanInd:    false,
		PDUScanRsp:       false,
		PDUConnectInd:    true,
	}
	for typ, want := range cases {
		if typ.Connectable() != want {
			t.Errorf("%v.Connectable() = %v, want %v", typ, typ.Connectable(), want)
		}
	}
	if PDUAdvNonconnInd.String() != "ADV_NONCONN_IND" {
		t.Errorf("String = %q", PDUAdvNonconnInd.String())
	}
}

func TestAddressString(t *testing.T) {
	a := AddressFromUint64(0x0000C1C2C3C4C5C6)
	if got := a.String(); got != "C1:C2:C3:C4:C5:C6" {
		t.Errorf("Address.String = %q", got)
	}
}

func TestWhitenInvolution(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42}
	cp := append([]byte(nil), data...)
	whiten(37, cp)
	if bytes.Equal(cp, data) {
		t.Error("whitening should change the data")
	}
	whiten(37, cp)
	if !bytes.Equal(cp, data) {
		t.Error("whitening twice should restore the data")
	}
}

func TestWhitenChannelDependence(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	a := append([]byte(nil), data...)
	b := append([]byte(nil), data...)
	whiten(37, a)
	whiten(38, b)
	if bytes.Equal(a, b) {
		t.Error("different channels must whiten differently")
	}
}

func TestCRC24KnownBehaviour(t *testing.T) {
	// CRC must be stable and sensitive to single-bit flips.
	data := []byte{0x42, 0x10, 0xFF}
	c1 := crc24(CRC24Init, data)
	data2 := append([]byte(nil), data...)
	data2[1] ^= 0x01
	if crc24(CRC24Init, data2) == c1 {
		t.Error("CRC unchanged by bit flip")
	}
	if c1 > 0xFFFFFF {
		t.Errorf("CRC exceeds 24 bits: %x", c1)
	}
}

func TestFrameDeframe(t *testing.T) {
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(42), Data: []byte{0x02, 0x01, 0x06}}
	for _, ch := range []int{37, 38, 39} {
		frame, err := Frame(&pdu, ch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Deframe(frame, ch)
		if err != nil {
			t.Fatalf("Deframe ch %d: %v", ch, err)
		}
		if got.AdvA != pdu.AdvA {
			t.Errorf("ch %d: AdvA mismatch", ch)
		}
	}
}

func TestDeframeDetectsCorruption(t *testing.T) {
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(42), Data: []byte{0x02, 0x01, 0x06}}
	frame, _ := Frame(&pdu, 37)
	frame[3] ^= 0x10
	if _, err := Deframe(frame, 37); !errors.Is(err, ErrBadCRC) {
		t.Errorf("want ErrBadCRC, got %v", err)
	}
	// Deframing on the wrong channel also corrupts (whitening mismatch).
	frame2, _ := Frame(&pdu, 37)
	if _, err := Deframe(frame2, 38); err == nil {
		t.Error("wrong-channel deframe should fail")
	}
	if _, err := Deframe([]byte{1, 2}, 37); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestADStructuresRoundTrip(t *testing.T) {
	ads := []ADStructure{
		{Type: ADFlags, Data: []byte{0x06}},
		{Type: ADCompleteName, Data: []byte("locble")},
	}
	buf, err := SerializeADStructures(nil, ads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseADStructures(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Type != ADCompleteName || string(got[1].Data) != "locble" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestParseADStructuresEdge(t *testing.T) {
	// Zero length terminates early.
	ads, err := ParseADStructures([]byte{0x02, 0x01, 0x06, 0x00, 0xFF, 0xFF})
	if err != nil || len(ads) != 1 {
		t.Errorf("early termination: ads=%v err=%v", ads, err)
	}
	if _, err := ParseADStructures([]byte{0x05, 0x01}); !errors.Is(err, ErrBadADLen) {
		t.Errorf("want ErrBadADLen, got %v", err)
	}
}

func TestIBeaconRoundTrip(t *testing.T) {
	ib := IBeacon{Major: 7, Minor: 1042, MeasuredPower: -59}
	copy(ib.UUID[:], bytes.Repeat([]byte{0xA5}, 16))
	b, err := DecodeBeacon(ib.ADStructures())
	if err != nil {
		t.Fatal(err)
	}
	if b.Format != FormatIBeacon {
		t.Fatalf("format = %v", b.Format)
	}
	if b.IBeacon.Major != 7 || b.IBeacon.Minor != 1042 || b.IBeacon.MeasuredPower != -59 {
		t.Errorf("decoded %+v", b.IBeacon)
	}
	if p, ok := b.CalibratedPower(); !ok || p != -59 {
		t.Errorf("CalibratedPower = %g, %v", p, ok)
	}
	if b.Key() == "" {
		t.Error("empty key")
	}
}

func TestAltBeaconRoundTrip(t *testing.T) {
	ab := AltBeacon{CompanyID: 0x0118, ReferenceRSSI: -61, MfgReserved: 3}
	copy(ab.ID[:], bytes.Repeat([]byte{0x3C}, 20))
	b, err := DecodeBeacon(ab.ADStructures())
	if err != nil {
		t.Fatal(err)
	}
	if b.Format != FormatAltBeacon {
		t.Fatalf("format = %v", b.Format)
	}
	if b.AltBeacon.CompanyID != 0x0118 || b.AltBeacon.ReferenceRSSI != -61 {
		t.Errorf("decoded %+v", b.AltBeacon)
	}
}

func TestEddystoneUIDRoundTrip(t *testing.T) {
	e := EddystoneUID{TxPower0m: -20}
	copy(e.Namespace[:], []byte("namespace!"))
	copy(e.Instance[:], []byte("inst01"))
	b, err := DecodeBeacon(e.ADStructures())
	if err != nil {
		t.Fatal(err)
	}
	if b.Format != FormatEddystoneUID || b.EddyUID.TxPower0m != -20 {
		t.Fatalf("decoded %+v", b)
	}
	if p, ok := b.CalibratedPower(); !ok || p != -61 {
		t.Errorf("CalibratedPower = %g (0 m −41 conversion)", p)
	}
}

func TestEddystoneURLRoundTrip(t *testing.T) {
	for _, url := range []string{
		"https://www.example.com/",
		"http://go.dev",
		"https://x.org/path",
	} {
		e := EddystoneURL{TxPower0m: -15, URL: url}
		ads, err := e.ADStructures()
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		b, err := DecodeBeacon(ads)
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		if b.EddyURL.URL != url {
			t.Errorf("URL round trip: got %q want %q", b.EddyURL.URL, url)
		}
	}
	bad := EddystoneURL{URL: "ftp://nope"}
	if _, err := bad.ADStructures(); err == nil {
		t.Error("want error for un-encodable scheme")
	}
}

func TestEddystoneTLMRoundTrip(t *testing.T) {
	e := EddystoneTLM{BatteryMV: 3100, Temp8Dot8: 22 << 8, AdvCount: 123456, SecCount10: 7890}
	b, err := DecodeBeacon(e.ADStructures())
	if err != nil {
		t.Fatal(err)
	}
	if b.Format != FormatEddystoneTLM {
		t.Fatalf("format = %v", b.Format)
	}
	got := b.EddyTLM
	if got.BatteryMV != 3100 || got.Temp8Dot8 != 22<<8 || got.AdvCount != 123456 || got.SecCount10 != 7890 {
		t.Errorf("decoded %+v", got)
	}
	if _, ok := b.CalibratedPower(); ok {
		t.Error("TLM has no calibrated power")
	}
}

func TestDecodeBeaconRejectsJunk(t *testing.T) {
	if _, err := DecodeBeacon([]ADStructure{{Type: ADFlags, Data: []byte{0x06}}}); !errors.Is(err, ErrNotBeacon) {
		t.Errorf("want ErrNotBeacon, got %v", err)
	}
}

func TestAdvertiserSchedule(t *testing.T) {
	src := rng.New(1)
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(1)}
	adv, err := NewAdvertiser(pdu, 100*time.Millisecond, src)
	if err != nil {
		t.Fatal(err)
	}
	txs := adv.EventsUntil(1 * time.Second)
	if len(txs)%3 != 0 {
		t.Fatalf("%d transmissions, want multiple of 3 (3 channels/event)", len(txs))
	}
	events := len(txs) / 3
	// ~10 events/second with advDelay jitter.
	if events < 8 || events > 11 {
		t.Errorf("%d events in 1 s at 100 ms interval", events)
	}
	// Time-ordered within each event; channel order 37,38,39.
	for i := 0; i+2 < len(txs); i += 3 {
		if txs[i].Channel != 37 || txs[i+1].Channel != 38 || txs[i+2].Channel != 39 {
			t.Fatalf("channel order broken at %d", i)
		}
		if !(txs[i].At < txs[i+1].At && txs[i+1].At < txs[i+2].At) {
			t.Fatalf("time order broken at %d", i)
		}
	}
	// Consecutive event spacing ≥ interval (advDelay only adds).
	for i := 3; i < len(txs); i += 3 {
		gap := txs[i].At - txs[i-3].At
		if gap < 100*time.Millisecond {
			t.Errorf("event gap %v < interval", gap)
		}
		if gap > 110*time.Millisecond+time.Millisecond {
			t.Errorf("event gap %v > interval+advDelay", gap)
		}
	}
}

func TestAdvertiserDutyCycleFloors(t *testing.T) {
	src := rng.New(2)
	nonconn := AdvPDU{Type: PDUAdvNonconnInd}
	if _, err := NewAdvertiser(nonconn, 50*time.Millisecond, src); err == nil {
		t.Error("non-connectable below 100 ms must be rejected (Sec. 2.2)")
	}
	conn := AdvPDU{Type: PDUAdvInd}
	if _, err := NewAdvertiser(conn, 20*time.Millisecond, src); err != nil {
		t.Errorf("connectable at 20 ms should be allowed: %v", err)
	}
	if _, err := NewAdvertiser(conn, 10*time.Millisecond, src); err == nil {
		t.Error("connectable below 20 ms must be rejected")
	}
}

func TestScannerHears(t *testing.T) {
	src := rng.New(3)
	s := NewScanner(src)
	s.DropProb = 0
	// Continuous scanning: exactly one of the three channels is tuned at
	// any moment, so exactly one copy of each event is heard.
	heardTotal := 0
	for ev := 0; ev < 30; ev++ {
		base := time.Duration(ev) * 100 * time.Millisecond
		heard := 0
		for i, ch := range AdvChannels {
			if s.Hears(base+time.Duration(i)*400*time.Microsecond, ch) {
				heard++
			}
		}
		if heard > 1 {
			t.Fatalf("event %d heard on %d channels", ev, heard)
		}
		heardTotal += heard
	}
	if heardTotal < 25 {
		t.Errorf("continuous scanner heard only %d/30 events", heardTotal)
	}
}

func TestScannerWindowing(t *testing.T) {
	src := rng.New(4)
	s := NewScanner(src)
	s.ScanInterval = 100 * time.Millisecond
	s.ScanWindow = 50 * time.Millisecond
	s.DropProb = 0
	if _, listening := s.channelAt(75 * time.Millisecond); listening {
		t.Error("outside scan window should not listen")
	}
	if ch, listening := s.channelAt(25 * time.Millisecond); !listening || ch != 37 {
		t.Errorf("first window should tune 37, got %d/%v", ch, listening)
	}
	if ch, _ := s.channelAt(125 * time.Millisecond); ch != 38 {
		t.Errorf("second interval should tune 38, got %d", ch)
	}
}

func TestScannerReceive(t *testing.T) {
	src := rng.New(5)
	s := NewScanner(src)
	ib := IBeacon{Major: 1, MeasuredPower: -59}
	data, err := SerializeADStructures(nil, ib.ADStructures())
	if err != nil {
		t.Fatal(err)
	}
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(9), Data: data}
	frame, err := Frame(&pdu, 38)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Receive(time.Second, 38, frame, -70)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Beacon.Format != FormatIBeacon || rep.RSSI != -70 || rep.Channel != 38 {
		t.Errorf("report = %+v", rep)
	}
	if _, err := s.Receive(time.Second, 38, frame, -120); !errors.Is(err, ErrBelowFloor) {
		t.Errorf("want ErrBelowFloor, got %v", err)
	}
}

// Property: Frame/Deframe round-trips arbitrary AdvData payloads on all
// advertising channels.
func TestPropertyFrameRoundTrip(t *testing.T) {
	f := func(seed uint8, dataLen uint8, chPick uint8) bool {
		n := int(dataLen) % (MaxAdvDataLen + 1)
		data := make([]byte, n)
		s := uint32(seed) + 1
		for i := range data {
			s = s*1664525 + 1013904223
			data[i] = byte(s >> 16)
		}
		pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(uint64(seed)), Data: data}
		ch := 37 + int(chPick)%3
		frame, err := Frame(&pdu, ch)
		if err != nil {
			return false
		}
		got, err := Deframe(frame, ch)
		if err != nil {
			return false
		}
		return got.AdvA == pdu.AdvA && bytes.Equal(got.Data, pdu.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestActiveScanExchange(t *testing.T) {
	src := rng.New(7)
	pdu := AdvPDU{Type: PDUAdvInd, AdvA: AddressFromUint64(0xAA)}
	adv, err := NewAdvertiser(pdu, 100*time.Millisecond, src)
	if err != nil {
		t.Fatal(err)
	}
	rsp := ScanRspData{ADs: []ADStructure{{Type: ADCompleteName, Data: []byte("locble-beacon")}}}
	if err := adv.SetScanResponse(rsp); err != nil {
		t.Fatal(err)
	}
	ads, err := ActiveScanExchange(AddressFromUint64(0xBB), adv, 38)
	if err != nil {
		t.Fatal(err)
	}
	name, ok := FindAD(ads, ADCompleteName)
	if !ok || string(name.Data) != "locble-beacon" {
		t.Errorf("scan response round trip: %+v", ads)
	}
}

func TestActiveScanNonScannable(t *testing.T) {
	src := rng.New(8)
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(0xAA)}
	adv, err := NewAdvertiser(pdu, 100*time.Millisecond, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.SetScanResponse(ScanRspData{}); err == nil {
		t.Error("non-scannable advertiser must reject a scan response")
	}
	// Un-armed scannable advertiser answers nothing.
	pdu2 := AdvPDU{Type: PDUAdvScanInd, AdvA: AddressFromUint64(0xCC)}
	adv2, _ := NewAdvertiser(pdu2, 100*time.Millisecond, src)
	ads, err := ActiveScanExchange(AddressFromUint64(0xBB), adv2, 37)
	if err != nil || ads != nil {
		t.Errorf("un-armed exchange = %v, %v", ads, err)
	}
}

func TestScanReqAddressing(t *testing.T) {
	src := rng.New(9)
	pdu := AdvPDU{Type: PDUAdvInd, AdvA: AddressFromUint64(0xAA)}
	adv, _ := NewAdvertiser(pdu, 100*time.Millisecond, src)
	adv.SetScanResponse(ScanRspData{ADs: []ADStructure{{Type: ADFlags, Data: []byte{0x06}}}})
	// A SCAN_REQ addressed to a different advertiser gets no answer.
	other := ScanReq{ScanA: AddressFromUint64(0xBB), AdvA: AddressFromUint64(0xDD)}
	if adv.RespondToScan(&other) != nil {
		t.Error("advertiser answered a SCAN_REQ for another device")
	}
	// Decode validation.
	if _, err := DecodeScanReq(&AdvPDU{Type: PDUAdvInd}); err == nil {
		t.Error("want error decoding a non-SCAN_REQ PDU")
	}
	if _, err := DecodeScanReq(&AdvPDU{Type: PDUScanReq, Data: []byte{1}}); err == nil {
		t.Error("want error for truncated SCAN_REQ")
	}
}

func TestAdvertiserFrame(t *testing.T) {
	src := rng.New(11)
	ib := IBeacon{Major: 3, MeasuredPower: -59}
	data, _ := SerializeADStructures(nil, ib.ADStructures())
	adv, err := NewAdvertiser(AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(5), Data: data}, 100*time.Millisecond, src)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := adv.Frame(39)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Deframe(frame, 39)
	if err != nil {
		t.Fatal(err)
	}
	if got.AdvA != adv.PDU.AdvA {
		t.Error("advertiser frame round trip")
	}
}

func TestStringersAndKeys(t *testing.T) {
	// Format/type stringers and beacon keys across all formats.
	if FormatAltBeacon.String() == "" || FormatEddystoneURL.String() == "" || BeaconFormat(99).String() != "unknown" {
		t.Error("format stringers")
	}
	for _, typ := range []PDUType{PDUAdvInd, PDUAdvDirectInd, PDUScanReq, PDUScanRsp, PDUConnectInd, PDUAdvScanInd, PDUType(0xF)} {
		if typ.String() == "" {
			t.Errorf("empty name for %d", typ)
		}
	}
	ab := AltBeacon{CompanyID: 1, ReferenceRSSI: -60}
	b, err := DecodeBeacon(ab.ADStructures())
	if err != nil {
		t.Fatal(err)
	}
	if b.Key() == "" {
		t.Error("AltBeacon key")
	}
	uid := EddystoneUID{TxPower0m: -20}
	b2, _ := DecodeBeacon(uid.ADStructures())
	if b2.Key() == "" {
		t.Error("Eddystone key")
	}
	url := EddystoneURL{TxPower0m: -10, URL: "http://go.dev"}
	ads, _ := url.ADStructures()
	b3, _ := DecodeBeacon(ads)
	if b3.Key() == "" {
		t.Error("URL key")
	}
	tlm := EddystoneTLM{BatteryMV: 3000}
	b4, _ := DecodeBeacon(tlm.ADStructures())
	if b4.Key() == "" {
		t.Error("TLM key")
	}
	if ErrBelowFloor.Error() == "" {
		t.Error("sentinel error text")
	}
}
