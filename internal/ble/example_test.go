package ble_test

import (
	"fmt"

	"locble/internal/ble"
)

// Build an iBeacon advertisement, put it on the air (whitening + CRC for
// channel 37), then receive and decode it.
func ExampleFrame() {
	ib := ble.IBeacon{Major: 7, Minor: 42, MeasuredPower: -59}
	data, _ := ble.SerializeADStructures(nil, ib.ADStructures())
	pdu := ble.AdvPDU{
		Type: ble.PDUAdvNonconnInd,
		AdvA: ble.AddressFromUint64(0xC0FFEE),
		Data: data,
	}

	frame, _ := ble.Frame(&pdu, 37)
	got, _ := ble.Deframe(frame, 37)
	ads, _ := ble.ParseADStructures(got.Data)
	beacon, _ := ble.DecodeBeacon(ads)

	fmt.Println(got.Type)
	fmt.Println(beacon.Format, beacon.IBeacon.Major, beacon.IBeacon.Minor)
	// Output:
	// ADV_NONCONN_IND
	// iBeacon 7 42
}

func ExamplePDUType_Connectable() {
	fmt.Println(ble.PDUAdvInd.Connectable())
	fmt.Println(ble.PDUAdvNonconnInd.Connectable())
	// Output:
	// true
	// false
}

func ExampleEddystoneURL() {
	e := ble.EddystoneURL{TxPower0m: -10, URL: "https://www.example.com/"}
	ads, _ := e.ADStructures()
	beacon, _ := ble.DecodeBeacon(ads)
	fmt.Println(beacon.EddyURL.URL)
	// Output:
	// https://www.example.com/
}
