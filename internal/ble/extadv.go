package ble

import (
	"encoding/binary"
	"fmt"
)

// Bluetooth 5 extended advertising (Core Spec Vol 6 Part B 2.3.4): the
// ADV_EXT_IND PDU carries a Common Extended Advertising Payload — a
// flag-gated header (AdvA, TargetA, ADI, AuxPtr, SyncInfo, TxPower)
// followed by AdvData that may be far larger than the legacy 31 bytes
// when continued on a secondary channel. The paper pre-dates BLE 5 but
// calls out its "wider coverage" as an enhancement path (Sec. 9.3); the
// codec here complements the Coded-PHY link-budget model in the
// simulator.

// PDUAdvExtInd is the extended advertising indication PDU type.
const PDUAdvExtInd PDUType = 0x7

// Extended-header field flags, in wire order.
const (
	extFieldAdvA     = 1 << 0
	extFieldTargetA  = 1 << 1
	extFieldCTEInfo  = 1 << 2
	extFieldADI      = 1 << 3
	extFieldAuxPtr   = 1 << 4
	extFieldSyncInfo = 1 << 5
	extFieldTxPower  = 1 << 6
)

// AdvMode distinguishes non-connectable / connectable / scannable
// extended advertising.
type AdvMode uint8

// Extended advertising modes.
const (
	AdvModeNonConnNonScan AdvMode = 0b00
	AdvModeConnectable    AdvMode = 0b01
	AdvModeScannable      AdvMode = 0b10
)

// ADI is the Advertising Data Info field: set ID plus payload sequence
// number, letting scanners dedupe and reassemble chained payloads.
type ADI struct {
	DID uint16 // advertising data ID (12 bits)
	SID uint8  // advertising set ID (4 bits)
}

// AuxPtr points at the continuation of the payload on a secondary
// channel.
type AuxPtr struct {
	Channel  uint8 // secondary channel index 0–36
	PHY      uint8 // 0 = 1M, 1 = 2M, 2 = Coded
	OffsetUS uint32
}

// ExtAdvPDU is an ADV_EXT_IND with the header fields LocBLE-relevant
// beacons use. Unset optional fields are omitted from the wire format.
type ExtAdvPDU struct {
	Mode    AdvMode
	AdvA    *Address
	ADI     *ADI
	AuxPtr  *AuxPtr
	TxPower *int8 // dBm — the calibrated power a locator wants
	Data    []byte
}

// maxExtPayload is the maximum extended advertising payload (255 bytes).
const maxExtPayload = 255

// SerializeTo appends the on-air representation (2-byte header + common
// extended advertising payload) to buf.
func (p *ExtAdvPDU) SerializeTo(buf []byte) ([]byte, error) {
	var ext []byte
	var flags byte
	if p.AdvA != nil {
		flags |= extFieldAdvA
		ext = append(ext, p.AdvA[:]...)
	}
	if p.ADI != nil {
		flags |= extFieldADI
		adi := (uint16(p.ADI.SID&0x0F) << 12) | (p.ADI.DID & 0x0FFF)
		ext = binary.LittleEndian.AppendUint16(ext, adi)
	}
	if p.AuxPtr != nil {
		flags |= extFieldAuxPtr
		if p.AuxPtr.Channel > 36 {
			return nil, fmt.Errorf("ble: aux channel %d out of range", p.AuxPtr.Channel)
		}
		// 3 bytes: ch index (6) | CA (1) | offset units (1) | offset (13) | PHY (3).
		offUnits := byte(0)
		off := p.AuxPtr.OffsetUS / 30
		if off > 0x1FFF {
			offUnits = 1
			off = p.AuxPtr.OffsetUS / 300
			if off > 0x1FFF {
				return nil, fmt.Errorf("ble: aux offset %d µs out of range", p.AuxPtr.OffsetUS)
			}
		}
		b0 := p.AuxPtr.Channel & 0x3F
		b0 |= offUnits << 7
		v := uint16(off) & 0x1FFF
		b1 := byte(v)
		b2 := byte(v>>8) & 0x1F
		b2 |= (p.AuxPtr.PHY & 0x07) << 5
		ext = append(ext, b0, b1, b2)
	}
	if p.TxPower != nil {
		flags |= extFieldTxPower
		ext = append(ext, byte(*p.TxPower))
	}

	// Extended header: length (6 bits) + AdvMode (2 bits), then flags (if
	// any fields are present), then the fields.
	extHdrLen := 0
	if flags != 0 {
		extHdrLen = 1 + len(ext)
	}
	if extHdrLen > 63 {
		return nil, fmt.Errorf("ble: extended header %d bytes exceeds 63", extHdrLen)
	}
	payloadLen := 1 + extHdrLen + len(p.Data)
	if payloadLen > maxExtPayload {
		return nil, fmt.Errorf("%w: extended payload %d bytes", ErrDataTooBig, payloadLen)
	}

	buf = append(buf, byte(PDUAdvExtInd)&0x0F, byte(payloadLen))
	buf = append(buf, byte(extHdrLen&0x3F)|byte(p.Mode)<<6)
	if flags != 0 {
		buf = append(buf, flags)
		buf = append(buf, ext...)
	}
	buf = append(buf, p.Data...)
	return buf, nil
}

// DecodeExtAdvPDU parses an ADV_EXT_IND produced by SerializeTo.
func DecodeExtAdvPDU(b []byte) (*ExtAdvPDU, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if PDUType(b[0]&0x0F) != PDUAdvExtInd {
		return nil, fmt.Errorf("ble: PDU type %v is not ADV_EXT_IND", PDUType(b[0]&0x0F))
	}
	plen := int(b[1])
	if len(b)-2 != plen {
		return nil, fmt.Errorf("%w: header says %d, have %d", ErrBadLength, plen, len(b)-2)
	}
	body := b[2:]
	var p ExtAdvPDU
	p.Mode = AdvMode(body[0] >> 6)
	extHdrLen := int(body[0] & 0x3F)
	if 1+extHdrLen > len(body) {
		return nil, fmt.Errorf("%w: extended header %d bytes", ErrTruncated, extHdrLen)
	}
	ext := body[1 : 1+extHdrLen]
	p.Data = body[1+extHdrLen:]
	if extHdrLen > 0 {
		flags := ext[0]
		rest := ext[1:]
		take := func(n int) ([]byte, error) {
			if len(rest) < n {
				return nil, fmt.Errorf("%w: extended header field", ErrTruncated)
			}
			out := rest[:n]
			rest = rest[n:]
			return out, nil
		}
		if flags&extFieldAdvA != 0 {
			f, err := take(6)
			if err != nil {
				return nil, err
			}
			var a Address
			copy(a[:], f)
			p.AdvA = &a
		}
		if flags&extFieldTargetA != 0 {
			if _, err := take(6); err != nil {
				return nil, err
			}
		}
		if flags&extFieldCTEInfo != 0 {
			if _, err := take(1); err != nil {
				return nil, err
			}
		}
		if flags&extFieldADI != 0 {
			f, err := take(2)
			if err != nil {
				return nil, err
			}
			v := binary.LittleEndian.Uint16(f)
			p.ADI = &ADI{DID: v & 0x0FFF, SID: uint8(v >> 12)}
		}
		if flags&extFieldAuxPtr != 0 {
			f, err := take(3)
			if err != nil {
				return nil, err
			}
			ap := AuxPtr{Channel: f[0] & 0x3F}
			off := uint32(f[1]) | uint32(f[2]&0x1F)<<8
			unit := uint32(30)
			if f[0]&0x80 != 0 {
				unit = 300
			}
			ap.OffsetUS = off * unit
			ap.PHY = (f[2] >> 5) & 0x07
			p.AuxPtr = &ap
		}
		if flags&extFieldSyncInfo != 0 {
			if _, err := take(18); err != nil {
				return nil, err
			}
		}
		if flags&extFieldTxPower != 0 {
			f, err := take(1)
			if err != nil {
				return nil, err
			}
			tp := int8(f[0])
			p.TxPower = &tp
		}
	}
	return &p, nil
}
