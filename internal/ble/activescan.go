package ble

import (
	"fmt"
	"time"
)

// Active scanning (Core Spec Vol 6 Part B 4.4.3.2): after hearing a
// scannable advertisement (ADV_IND or ADV_SCAN_IND), an active scanner
// transmits a SCAN_REQ on the same channel within the inter-frame space;
// the advertiser answers with a SCAN_RSP carrying additional data (up to
// 31 more bytes — e.g. the device name that doesn't fit next to an
// iBeacon payload). Non-connectable, non-scannable beacons
// (ADV_NONCONN_IND — LocBLE's primary target, Sec. 2.2) never answer.

// InterFrameSpace is T_IFS, the gap between a packet and its response.
const InterFrameSpace = 150 * time.Microsecond

// ScanReq is the SCAN_REQ payload: the scanner's and advertiser's
// addresses.
type ScanReq struct {
	ScanA Address // scanner address
	AdvA  Address // advertiser being queried
}

// Encode renders the SCAN_REQ as an advertising-channel PDU.
func (r *ScanReq) Encode() *AdvPDU {
	data := make([]byte, 6)
	copy(data, r.AdvA[:])
	// SCAN_REQ payload layout: ScanA (6) + AdvA (6); we reuse AdvPDU's
	// AdvA field for ScanA and carry the target in Data.
	return &AdvPDU{Type: PDUScanReq, AdvA: r.ScanA, Data: data}
}

// DecodeScanReq parses a SCAN_REQ PDU.
func DecodeScanReq(p *AdvPDU) (*ScanReq, error) {
	if p.Type != PDUScanReq {
		return nil, fmt.Errorf("ble: PDU type %v is not SCAN_REQ", p.Type)
	}
	if len(p.Data) != 6 {
		return nil, fmt.Errorf("%w: SCAN_REQ payload %d bytes", ErrTruncated, len(p.Data))
	}
	var r ScanReq
	r.ScanA = p.AdvA
	copy(r.AdvA[:], p.Data)
	return &r, nil
}

// ScanRspData configures an advertiser's scan response.
type ScanRspData struct {
	// ADs is the scan-response AD payload (≤31 bytes encoded).
	ADs []ADStructure
}

// SetScanResponse arms the advertiser with scan-response data. Only
// scannable PDU types (ADV_IND, ADV_SCAN_IND) will answer SCAN_REQs;
// arming a non-scannable advertiser returns an error, mirroring
// controller behaviour.
func (a *Advertiser) SetScanResponse(rsp ScanRspData) error {
	switch a.PDU.Type {
	case PDUAdvInd, PDUAdvScanInd:
	default:
		return fmt.Errorf("ble: %v advertisements are not scannable", a.PDU.Type)
	}
	data, err := SerializeADStructures(nil, rsp.ADs)
	if err != nil {
		return err
	}
	if len(data) > MaxAdvDataLen {
		return fmt.Errorf("%w: scan response %d bytes", ErrDataTooBig, len(data))
	}
	a.scanRsp = data
	return nil
}

// RespondToScan produces the advertiser's SCAN_RSP for a captured
// SCAN_REQ, or nil when the advertiser is non-scannable, un-armed, or the
// request addresses a different device.
func (a *Advertiser) RespondToScan(req *ScanReq) *AdvPDU {
	if a.scanRsp == nil || req.AdvA != a.PDU.AdvA {
		return nil
	}
	return &AdvPDU{Type: PDUScanRsp, AdvA: a.PDU.AdvA, Data: a.scanRsp}
}

// ActiveScanExchange simulates the full over-the-air active-scan
// round-trip on one channel: the scanner frames a SCAN_REQ, the
// advertiser deframes it, answers, and the scanner deframes the SCAN_RSP
// — every byte passing through the whitening/CRC codec. It returns the
// decoded scan-response AD structures, or nil when the advertiser does
// not respond.
func ActiveScanExchange(scanner Address, adv *Advertiser, channel int) ([]ADStructure, error) {
	req := ScanReq{ScanA: scanner, AdvA: adv.PDU.AdvA}
	reqFrame, err := Frame(req.Encode(), channel)
	if err != nil {
		return nil, err
	}
	// Advertiser side.
	gotPDU, err := Deframe(reqFrame, channel)
	if err != nil {
		return nil, err
	}
	gotReq, err := DecodeScanReq(gotPDU)
	if err != nil {
		return nil, err
	}
	rsp := adv.RespondToScan(gotReq)
	if rsp == nil {
		return nil, nil
	}
	rspFrame, err := Frame(rsp, channel)
	if err != nil {
		return nil, err
	}
	// Scanner side.
	rspPDU, err := Deframe(rspFrame, channel)
	if err != nil {
		return nil, err
	}
	if rspPDU.Type != PDUScanRsp {
		return nil, fmt.Errorf("ble: expected SCAN_RSP, got %v", rspPDU.Type)
	}
	return ParseADStructures(rspPDU.Data)
}
