package ble

import (
	"bytes"
	"errors"
	"testing"
)

func TestExtAdvRoundTripFull(t *testing.T) {
	adv := AddressFromUint64(0xABCDEF)
	tx := int8(-7)
	payload := bytes.Repeat([]byte{0x5A}, 120) // beyond the legacy 31 bytes
	p := ExtAdvPDU{
		Mode:    AdvModeNonConnNonScan,
		AdvA:    &adv,
		ADI:     &ADI{DID: 0x321, SID: 5},
		AuxPtr:  &AuxPtr{Channel: 12, PHY: 2, OffsetUS: 2400},
		TxPower: &tx,
		Data:    payload,
	}
	raw, err := p.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExtAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != p.Mode {
		t.Errorf("mode %v", got.Mode)
	}
	if got.AdvA == nil || *got.AdvA != adv {
		t.Error("AdvA lost")
	}
	if got.ADI == nil || got.ADI.DID != 0x321 || got.ADI.SID != 5 {
		t.Errorf("ADI %+v", got.ADI)
	}
	if got.AuxPtr == nil || got.AuxPtr.Channel != 12 || got.AuxPtr.PHY != 2 || got.AuxPtr.OffsetUS != 2400 {
		t.Errorf("AuxPtr %+v", got.AuxPtr)
	}
	if got.TxPower == nil || *got.TxPower != -7 {
		t.Error("TxPower lost")
	}
	if !bytes.Equal(got.Data, payload) {
		t.Error("payload mismatch")
	}
}

func TestExtAdvMinimal(t *testing.T) {
	// No optional fields at all: header length 0.
	p := ExtAdvPDU{Mode: AdvModeScannable, Data: []byte{1, 2, 3}}
	raw, err := p.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExtAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.AdvA != nil || got.ADI != nil || got.AuxPtr != nil || got.TxPower != nil {
		t.Error("optional fields materialized from nothing")
	}
	if got.Mode != AdvModeScannable || !bytes.Equal(got.Data, []byte{1, 2, 3}) {
		t.Errorf("got %+v", got)
	}
}

func TestExtAdvAuxOffsetUnits(t *testing.T) {
	// Offsets beyond 13 bits of 30 µs units switch to 300 µs units.
	adv := AddressFromUint64(1)
	p := ExtAdvPDU{AdvA: &adv, AuxPtr: &AuxPtr{Channel: 3, OffsetUS: 600000}}
	raw, err := p.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExtAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.AuxPtr.OffsetUS != 600000 {
		t.Errorf("offset %d, want 600000", got.AuxPtr.OffsetUS)
	}
	// Out of even the coarse unit's range.
	bad := ExtAdvPDU{AuxPtr: &AuxPtr{Channel: 3, OffsetUS: 10_000_000}}
	if _, err := bad.SerializeTo(nil); err == nil {
		t.Error("want error for out-of-range offset")
	}
	badCh := ExtAdvPDU{AuxPtr: &AuxPtr{Channel: 40}}
	if _, err := badCh.SerializeTo(nil); err == nil {
		t.Error("want error for channel > 36")
	}
}

func TestExtAdvErrors(t *testing.T) {
	if _, err := DecodeExtAdvPDU([]byte{0x07}); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
	if _, err := DecodeExtAdvPDU([]byte{0x02, 0x01, 0x00}); err == nil {
		t.Error("want error for wrong PDU type")
	}
	if _, err := DecodeExtAdvPDU([]byte{0x07, 0x05, 0x01, 0x02}); !errors.Is(err, ErrBadLength) {
		t.Errorf("want ErrBadLength, got %v", err)
	}
	// Extended header longer than the payload.
	if _, err := DecodeExtAdvPDU([]byte{0x07, 0x02, 0x3F, 0x00}); err == nil {
		t.Error("want error for oversized extended header")
	}
	// Flags promising fields that are not there.
	if _, err := DecodeExtAdvPDU([]byte{0x07, 0x02, 0x01, 0x01}); err == nil {
		t.Error("want error for truncated AdvA")
	}
	// Payload too large to serialize.
	big := ExtAdvPDU{Data: make([]byte, 300)}
	if _, err := big.SerializeTo(nil); !errors.Is(err, ErrDataTooBig) {
		t.Errorf("want ErrDataTooBig, got %v", err)
	}
}

func TestExtAdvLargeBeaconPayload(t *testing.T) {
	// An Eddystone-UID plus a long complete name — impossible in a legacy
	// PDU, routine in an extended one.
	uid := EddystoneUID{TxPower0m: -20}
	ads := uid.ADStructures()
	ads = append(ads, ADStructure{Type: ADCompleteName, Data: bytes.Repeat([]byte("n"), 60)})
	data, err := SerializeADStructures(nil, ads)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= MaxAdvDataLen {
		t.Fatalf("test payload should exceed the legacy limit, got %d", len(data))
	}
	adv := AddressFromUint64(2)
	p := ExtAdvPDU{AdvA: &adv, Data: data}
	raw, err := p.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeExtAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseADStructures(got.Data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBeacon(parsed)
	if err != nil || b.Format != FormatEddystoneUID {
		t.Errorf("beacon decode through extended PDU: %v %v", b, err)
	}
}
