package ble

import (
	"fmt"
	"time"

	"locble/internal/rng"
)

// Spec-mandated advertising interval floors (Core Spec Vol 6 Part B
// 4.4.2.2). The paper (Sec. 2.2) cites the resulting duty-cycle limits:
// non-connectable beacons may advertise at most every 100 ms, connectable
// ones every 20 ms.
const (
	MinNonconnAdvInterval = 100 * time.Millisecond
	MinConnAdvInterval    = 20 * time.Millisecond
	// MaxAdvDelay is the pseudo-random per-event delay the spec adds to
	// the advertising interval to decorrelate advertisers.
	MaxAdvDelay = 10 * time.Millisecond
)

// AdvChannels is the fixed advertising channel sequence (Sec. 2.2).
var AdvChannels = [3]int{37, 38, 39}

// Advertiser models one beacon's advertising schedule: every advInterval
// (+ 0–10 ms advDelay) it transmits the same PDU once on each of channels
// 37, 38 and 39, separated by a small inter-channel gap.
type Advertiser struct {
	PDU      AdvPDU
	Interval time.Duration

	// InterChannelGap is the time between the copies of one event on
	// channels 37, 38 and 39 (hardware dependent, ~0.4 ms typical).
	InterChannelGap time.Duration

	src     *rng.Source
	next    time.Duration // start of the next advertising event
	scanRsp []byte        // armed scan-response AdvData (nil = none)
}

// NewAdvertiser validates the interval against the PDU type's duty-cycle
// floor and returns an advertiser whose first event occurs at a random
// offset within one interval (beacons power on at arbitrary phases).
func NewAdvertiser(pdu AdvPDU, interval time.Duration, src *rng.Source) (*Advertiser, error) {
	minIv := MinNonconnAdvInterval
	if pdu.Type.Connectable() {
		minIv = MinConnAdvInterval
	}
	if interval < minIv {
		return nil, fmt.Errorf("ble: advertising interval %v below %v floor for %v", interval, minIv, pdu.Type)
	}
	a := &Advertiser{
		PDU:             pdu,
		Interval:        interval,
		InterChannelGap: 400 * time.Microsecond,
		src:             src,
	}
	a.next = time.Duration(src.Float64() * float64(interval))
	return a, nil
}

// Transmission is one on-air copy of an advertising PDU.
type Transmission struct {
	At      time.Duration // sim-time of the transmission
	Channel int           // 37, 38 or 39
	Event   int           // advertising event sequence number
}

// EventsUntil advances the advertiser's schedule and returns every
// transmission with At < deadline, in time order. Each advertising event
// contributes three transmissions (channels 37, 38, 39).
func (a *Advertiser) EventsUntil(deadline time.Duration) []Transmission {
	var out []Transmission
	event := 0
	for a.next < deadline {
		for i, ch := range AdvChannels {
			out = append(out, Transmission{
				At:      a.next + time.Duration(i)*a.InterChannelGap,
				Channel: ch,
				Event:   event,
			})
		}
		advDelay := time.Duration(a.src.Float64() * float64(MaxAdvDelay))
		a.next += a.Interval + advDelay
		event++
	}
	return out
}

// Frame renders the advertiser's PDU as the on-air frame for channel ch.
func (a *Advertiser) Frame(ch int) ([]byte, error) {
	return Frame(&a.PDU, ch)
}
