// Package ble implements the Bluetooth Low Energy advertising-channel
// machinery that LocBLE consumes: link-layer advertising PDUs
// (encode/decode at byte level, including CRC-24 and data whitening),
// the AD-structure container format, the three commodity beacon payload
// formats the paper targets (iBeacon, Eddystone, AltBeacon), an
// advertiser model with the spec's duty-cycle behaviour, and a scanner
// model with per-OS scan windows and report rates.
//
// The codec follows the decode-from-bytes / serialize-to idiom of
// gopacket's DecodingLayer: types decode in place without allocating and
// serialize by appending to a caller buffer.
package ble

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AdvertisingAccessAddress is the fixed access address used by all
// advertising-channel packets (Bluetooth Core Spec Vol 6 Part B 2.1.2).
const AdvertisingAccessAddress uint32 = 0x8E89BED6

// MaxAdvDataLen is the maximum AdvData length in a legacy advertising PDU.
const MaxAdvDataLen = 31

// PDUType is the 4-bit advertising-channel PDU type carried in the header.
// The paper (Sec. 2.2) inspects these first 4 bits to determine whether a
// beacon is connectable.
type PDUType uint8

// Advertising PDU types (Core Spec Vol 6 Part B 2.3).
const (
	PDUAdvInd        PDUType = 0x0 // connectable scannable undirected
	PDUAdvDirectInd  PDUType = 0x1 // connectable directed
	PDUAdvNonconnInd PDUType = 0x2 // non-connectable non-scannable undirected
	PDUScanReq       PDUType = 0x3
	PDUScanRsp       PDUType = 0x4
	PDUConnectInd    PDUType = 0x5
	PDUAdvScanInd    PDUType = 0x6 // scannable undirected
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case PDUAdvInd:
		return "ADV_IND"
	case PDUAdvDirectInd:
		return "ADV_DIRECT_IND"
	case PDUAdvNonconnInd:
		return "ADV_NONCONN_IND"
	case PDUScanReq:
		return "SCAN_REQ"
	case PDUScanRsp:
		return "SCAN_RSP"
	case PDUConnectInd:
		return "CONNECT_IND"
	case PDUAdvScanInd:
		return "ADV_SCAN_IND"
	default:
		return fmt.Sprintf("PDUType(%#x)", uint8(t))
	}
}

// Connectable reports whether a beacon transmitting this PDU type accepts
// connection requests. LocBLE focuses on non-connectable beacons
// (Sec. 2.2): they broadcast only and have the longer (≤100 ms → actually
// ≥100 ms interval) duty-cycle limit.
func (t PDUType) Connectable() bool {
	switch t {
	case PDUAdvInd, PDUAdvDirectInd, PDUConnectInd:
		return true
	default:
		return false
	}
}

// Address is a 48-bit Bluetooth device address.
type Address [6]byte

// String formats the address in the usual colon-separated form,
// most-significant byte first.
func (a Address) String() string {
	return fmt.Sprintf("%02X:%02X:%02X:%02X:%02X:%02X", a[5], a[4], a[3], a[2], a[1], a[0])
}

// AddressFromUint64 builds an address from the low 48 bits of v.
func AddressFromUint64(v uint64) Address {
	var a Address
	for i := 0; i < 6; i++ {
		a[i] = byte(v >> (8 * i))
	}
	return a
}

// Decoding errors.
var (
	ErrTruncated  = errors.New("ble: truncated PDU")
	ErrBadLength  = errors.New("ble: header length does not match payload")
	ErrBadADLen   = errors.New("ble: malformed AD structure length")
	ErrBadCRC     = errors.New("ble: CRC mismatch")
	ErrNotBeacon  = errors.New("ble: payload is not a recognized beacon format")
	ErrDataTooBig = errors.New("ble: AdvData exceeds 31 bytes")
)

// AdvPDU is a legacy advertising-channel PDU: 2-byte header, 6-byte
// advertiser address, and up to 31 bytes of advertising data.
type AdvPDU struct {
	Type  PDUType
	ChSel bool // header ChSel bit (channel selection algorithm #2 support)
	TxAdd bool // advertiser address is random (true) or public (false)
	RxAdd bool
	AdvA  Address
	Data  []byte // AdvData payload (AD structures)
}

// SerializeTo appends the on-air byte representation of the PDU (header +
// AdvA + AdvData, no access address or CRC) to buf and returns the
// extended slice.
func (p *AdvPDU) SerializeTo(buf []byte) ([]byte, error) {
	if len(p.Data) > MaxAdvDataLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrDataTooBig, len(p.Data))
	}
	h0 := byte(p.Type) & 0x0F
	if p.ChSel {
		h0 |= 1 << 5
	}
	if p.TxAdd {
		h0 |= 1 << 6
	}
	if p.RxAdd {
		h0 |= 1 << 7
	}
	payloadLen := 6 + len(p.Data)
	buf = append(buf, h0, byte(payloadLen))
	buf = append(buf, p.AdvA[:]...)
	buf = append(buf, p.Data...)
	return buf, nil
}

// DecodeFromBytes parses an on-air PDU (header + AdvA + AdvData) in place.
// The Data field aliases b; callers that retain the PDU beyond the life of
// b must copy it.
func (p *AdvPDU) DecodeFromBytes(b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	h0, plen := b[0], int(b[1])
	p.Type = PDUType(h0 & 0x0F)
	p.ChSel = h0&(1<<5) != 0
	p.TxAdd = h0&(1<<6) != 0
	p.RxAdd = h0&(1<<7) != 0
	if len(b)-2 != plen {
		return fmt.Errorf("%w: header says %d, have %d", ErrBadLength, plen, len(b)-2)
	}
	if plen < 6 {
		return fmt.Errorf("%w: payload %d < 6 (AdvA)", ErrTruncated, plen)
	}
	copy(p.AdvA[:], b[2:8])
	p.Data = b[8:]
	return nil
}

// CRC24Init is the advertising-channel CRC preset (Core Spec Vol 6 Part B
// 3.1.1: 0x555555 for advertising packets).
const CRC24Init uint32 = 0x555555

// crc24 computes the BLE link-layer CRC over data. The generator
// polynomial is x²⁴+x¹⁰+x⁹+x⁶+x⁴+x³+x+1; bits are processed LSB first.
func crc24(init uint32, data []byte) uint32 {
	crc := init
	for _, b := range data {
		for bit := 0; bit < 8; bit++ {
			in := (b >> bit) & 1
			fb := byte(crc>>23) & 1 // current MSB of 24-bit register
			crc = (crc << 1) & 0xFFFFFF
			if fb^in == 1 {
				crc ^= 0x00065B
			}
		}
	}
	return crc
}

// whiten applies (or removes — the operation is an involution) BLE data
// whitening in place. The whitener is a 7-bit LFSR with polynomial
// x⁷+x⁴+1, initialized to the channel index with bit 6 set
// (Core Spec Vol 6 Part B 3.2).
func whiten(channel int, data []byte) {
	lfsr := byte(channel&0x3F) | 0x40
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			out := (lfsr >> 6) & 1
			lfsr = (lfsr << 1) & 0x7F
			if out == 1 {
				lfsr ^= 0x11 // taps at positions 4 and 0
				data[i] ^= 1 << bit
			}
		}
	}
}

// Frame wraps an advertising PDU into the full on-air packet for the given
// advertising channel: PDU bytes + CRC-24, whitened. (The preamble and
// access address are omitted — they are constant for advertising packets
// and carry no information the simulator needs.)
func Frame(p *AdvPDU, channel int) ([]byte, error) {
	raw, err := p.SerializeTo(nil)
	if err != nil {
		return nil, err
	}
	crc := crc24(CRC24Init, raw)
	raw = append(raw, byte(crc), byte(crc>>8), byte(crc>>16))
	whiten(channel, raw)
	return raw, nil
}

// Deframe reverses Frame: de-whitens, verifies the CRC, and decodes the
// PDU. The returned PDU's Data aliases the de-whitened copy of frame.
func Deframe(frame []byte, channel int) (*AdvPDU, error) {
	if len(frame) < 5 { // 2 header + 3 CRC
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTruncated, len(frame))
	}
	buf := append([]byte(nil), frame...)
	whiten(channel, buf)
	body, trailer := buf[:len(buf)-3], buf[len(buf)-3:]
	want := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16
	if got := crc24(CRC24Init, body); got != want {
		return nil, fmt.Errorf("%w: got %06x want %06x", ErrBadCRC, got, want)
	}
	var p AdvPDU
	if err := p.DecodeFromBytes(body); err != nil {
		return nil, err
	}
	return &p, nil
}

// ADType is the assigned number of an AD structure (Supplement to the
// Core Specification, Part A).
type ADType uint8

// Common AD types used by beacon payloads.
const (
	ADFlags            ADType = 0x01
	ADIncomplete16UUID ADType = 0x02
	ADComplete16UUID   ADType = 0x03
	ADShortenedName    ADType = 0x08
	ADCompleteName     ADType = 0x09
	ADTxPowerLevel     ADType = 0x0A
	ADServiceData16    ADType = 0x16
	ADManufacturer     ADType = 0xFF
)

// ADStructure is one length-type-data element of an AdvData payload.
type ADStructure struct {
	Type ADType
	Data []byte
}

// ParseADStructures splits an AdvData payload into its AD structures.
// A zero length octet terminates the payload early (per spec, the
// remainder is padding).
func ParseADStructures(data []byte) ([]ADStructure, error) {
	var out []ADStructure
	for len(data) > 0 {
		l := int(data[0])
		if l == 0 {
			break // early termination; rest is padding
		}
		if l+1 > len(data) {
			return nil, fmt.Errorf("%w: length %d with %d bytes left", ErrBadADLen, l, len(data)-1)
		}
		out = append(out, ADStructure{Type: ADType(data[1]), Data: data[2 : l+1]})
		data = data[l+1:]
	}
	return out, nil
}

// SerializeADStructures encodes AD structures back into an AdvData
// payload, appending to buf.
func SerializeADStructures(buf []byte, ads []ADStructure) ([]byte, error) {
	for _, ad := range ads {
		if len(ad.Data)+1 > 255 {
			return nil, fmt.Errorf("%w: AD data %d bytes", ErrBadADLen, len(ad.Data))
		}
		buf = append(buf, byte(len(ad.Data)+1), byte(ad.Type))
		buf = append(buf, ad.Data...)
	}
	return buf, nil
}

// FindAD returns the first AD structure of the given type, or false.
func FindAD(ads []ADStructure, t ADType) (ADStructure, bool) {
	for _, ad := range ads {
		if ad.Type == t {
			return ad, true
		}
	}
	return ADStructure{}, false
}

// uint16LE reads a little-endian uint16 (helper shared by payload codecs).
func uint16LE(b []byte) uint16 { return binary.LittleEndian.Uint16(b) }

// uint16BE reads a big-endian uint16.
func uint16BE(b []byte) uint16 { return binary.BigEndian.Uint16(b) }
