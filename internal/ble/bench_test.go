package ble

import (
	"testing"
	"time"

	"locble/internal/rng"
)

func BenchmarkFrame(b *testing.B) {
	ib := IBeacon{Major: 1, Minor: 2, MeasuredPower: -59}
	data, _ := SerializeADStructures(nil, ib.ADStructures())
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(1), Data: data}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Frame(&pdu, 37+i%3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeframe(b *testing.B) {
	ib := IBeacon{Major: 1, Minor: 2, MeasuredPower: -59}
	data, _ := SerializeADStructures(nil, ib.ADStructures())
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(1), Data: data}
	frame, _ := Frame(&pdu, 38)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Deframe(frame, 38); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdvertiserSchedule(b *testing.B) {
	src := rng.New(1)
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv, err := NewAdvertiser(pdu, 100*time.Millisecond, src)
		if err != nil {
			b.Fatal(err)
		}
		adv.EventsUntil(10 * time.Second)
	}
}
