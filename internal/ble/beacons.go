package ble

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// BeaconFormat identifies one of the three commodity proximity-beacon
// payload formats the paper targets (Sec. 2.3: iBeacon, Eddystone,
// AltBeacon).
type BeaconFormat int

// Recognized beacon payload formats.
const (
	FormatUnknown BeaconFormat = iota
	FormatIBeacon
	FormatEddystoneUID
	FormatEddystoneURL
	FormatEddystoneTLM
	FormatAltBeacon
)

// String names the format.
func (f BeaconFormat) String() string {
	switch f {
	case FormatIBeacon:
		return "iBeacon"
	case FormatEddystoneUID:
		return "Eddystone-UID"
	case FormatEddystoneURL:
		return "Eddystone-URL"
	case FormatEddystoneTLM:
		return "Eddystone-TLM"
	case FormatAltBeacon:
		return "AltBeacon"
	default:
		return "unknown"
	}
}

// Company identifiers and frame constants.
const (
	appleCompanyID    uint16 = 0x004C
	radiusCompanyID   uint16 = 0x0118
	iBeaconType       byte   = 0x02
	iBeaconLen        byte   = 0x15
	altBeaconCode     uint16 = 0xBEAC
	eddystoneUUID     uint16 = 0xFEAA
	eddystoneFrameUID byte   = 0x00
	eddystoneFrameURL byte   = 0x10
	eddystoneFrameTLM byte   = 0x20
)

// IBeacon is Apple's proximity beacon payload: a 16-byte UUID, 2-byte
// major/minor, and the calibrated RSS at 1 m ("measured power").
type IBeacon struct {
	UUID          [16]byte
	Major, Minor  uint16
	MeasuredPower int8
}

// ADStructures encodes the iBeacon into its advertisement AD structures
// (flags + Apple manufacturer-specific data).
func (ib *IBeacon) ADStructures() []ADStructure {
	mfg := make([]byte, 0, 25)
	mfg = binary.LittleEndian.AppendUint16(mfg, appleCompanyID)
	mfg = append(mfg, iBeaconType, iBeaconLen)
	mfg = append(mfg, ib.UUID[:]...)
	mfg = binary.BigEndian.AppendUint16(mfg, ib.Major)
	mfg = binary.BigEndian.AppendUint16(mfg, ib.Minor)
	mfg = append(mfg, byte(ib.MeasuredPower))
	return []ADStructure{
		{Type: ADFlags, Data: []byte{0x06}}, // LE General Discoverable, BR/EDR unsupported
		{Type: ADManufacturer, Data: mfg},
	}
}

// decodeIBeacon parses an Apple manufacturer-specific AD payload.
func decodeIBeacon(data []byte) (*IBeacon, error) {
	if len(data) != 25 {
		return nil, fmt.Errorf("%w: iBeacon mfg data is %d bytes, want 25", ErrNotBeacon, len(data))
	}
	if uint16LE(data[0:2]) != appleCompanyID || data[2] != iBeaconType || data[3] != iBeaconLen {
		return nil, ErrNotBeacon
	}
	ib := &IBeacon{
		Major:         uint16BE(data[20:22]),
		Minor:         uint16BE(data[22:24]),
		MeasuredPower: int8(data[24]),
	}
	copy(ib.UUID[:], data[4:20])
	return ib, nil
}

// AltBeacon is the open-source beacon format (altbeacon.org): a 20-byte
// organizational ID, reference RSS at 1 m, and a manufacturer-reserved
// byte.
type AltBeacon struct {
	CompanyID     uint16
	ID            [20]byte
	ReferenceRSSI int8
	MfgReserved   byte
}

// ADStructures encodes the AltBeacon advertisement.
func (ab *AltBeacon) ADStructures() []ADStructure {
	mfg := make([]byte, 0, 26)
	mfg = binary.LittleEndian.AppendUint16(mfg, ab.CompanyID)
	mfg = binary.BigEndian.AppendUint16(mfg, altBeaconCode)
	mfg = append(mfg, ab.ID[:]...)
	mfg = append(mfg, byte(ab.ReferenceRSSI), ab.MfgReserved)
	return []ADStructure{{Type: ADManufacturer, Data: mfg}}
}

func decodeAltBeacon(data []byte) (*AltBeacon, error) {
	if len(data) != 26 {
		return nil, fmt.Errorf("%w: AltBeacon mfg data is %d bytes, want 26", ErrNotBeacon, len(data))
	}
	if uint16BE(data[2:4]) != altBeaconCode {
		return nil, ErrNotBeacon
	}
	ab := &AltBeacon{
		CompanyID:     uint16LE(data[0:2]),
		ReferenceRSSI: int8(data[24]),
		MfgReserved:   data[25],
	}
	copy(ab.ID[:], data[4:24])
	return ab, nil
}

// EddystoneUID is Google's UID frame: calibrated Tx power at 0 m, a
// 10-byte namespace, and a 6-byte instance ID.
type EddystoneUID struct {
	TxPower0m int8
	Namespace [10]byte
	Instance  [6]byte
}

// ADStructures encodes the Eddystone-UID advertisement (complete 16-bit
// UUID list + service data).
func (e *EddystoneUID) ADStructures() []ADStructure {
	sd := make([]byte, 0, 22)
	sd = binary.LittleEndian.AppendUint16(sd, eddystoneUUID)
	sd = append(sd, eddystoneFrameUID, byte(e.TxPower0m))
	sd = append(sd, e.Namespace[:]...)
	sd = append(sd, e.Instance[:]...)
	sd = append(sd, 0, 0) // RFU
	return eddystoneADs(sd)
}

// EddystoneURL is the URL frame: calibrated Tx power and a compressed URL.
type EddystoneURL struct {
	TxPower0m int8
	URL       string
}

var eddystoneSchemes = []string{"http://www.", "https://www.", "http://", "https://"}

var eddystoneExpansions = []string{
	".com/", ".org/", ".edu/", ".net/", ".info/", ".biz/", ".gov/",
	".com", ".org", ".edu", ".net", ".info", ".biz", ".gov",
}

// ADStructures encodes the Eddystone-URL advertisement, compressing the
// URL with the scheme-prefix and expansion tables from the Eddystone spec.
func (e *EddystoneURL) ADStructures() ([]ADStructure, error) {
	sd := make([]byte, 0, 20)
	sd = binary.LittleEndian.AppendUint16(sd, eddystoneUUID)
	sd = append(sd, eddystoneFrameURL, byte(e.TxPower0m))
	rest := e.URL
	scheme := -1
	for i, s := range eddystoneSchemes {
		if strings.HasPrefix(rest, s) {
			scheme = i
			rest = rest[len(s):]
			break
		}
	}
	if scheme < 0 {
		return nil, fmt.Errorf("ble: URL %q has no Eddystone-encodable scheme", e.URL)
	}
	sd = append(sd, byte(scheme))
	for len(rest) > 0 {
		matched := false
		for code, exp := range eddystoneExpansions {
			if strings.HasPrefix(rest, exp) {
				sd = append(sd, byte(code))
				rest = rest[len(exp):]
				matched = true
				break
			}
		}
		if !matched {
			sd = append(sd, rest[0])
			rest = rest[1:]
		}
	}
	if len(sd) > 2+18 { // service data limited to 18 bytes after UUID
		return nil, fmt.Errorf("ble: encoded URL too long (%d bytes)", len(sd)-2)
	}
	return eddystoneADs(sd), nil
}

// decodeEddystoneURL expands a URL frame back to the full URL string.
func decodeEddystoneURL(sd []byte) (*EddystoneURL, error) {
	if len(sd) < 3 {
		return nil, ErrTruncated
	}
	e := &EddystoneURL{TxPower0m: int8(sd[0])}
	scheme := int(sd[1])
	if scheme >= len(eddystoneSchemes) {
		return nil, fmt.Errorf("ble: bad URL scheme code %d", scheme)
	}
	var sb strings.Builder
	sb.WriteString(eddystoneSchemes[scheme])
	for _, b := range sd[2:] {
		if int(b) < len(eddystoneExpansions) {
			sb.WriteString(eddystoneExpansions[b])
		} else {
			sb.WriteByte(b)
		}
	}
	e.URL = sb.String()
	return e, nil
}

// EddystoneTLM is the unencrypted telemetry frame: battery voltage,
// beacon temperature, advertisement count and uptime.
type EddystoneTLM struct {
	BatteryMV  uint16
	Temp8Dot8  int16 // temperature in 8.8 fixed point, °C
	AdvCount   uint32
	SecCount10 uint32 // uptime in 0.1 s units
}

// ADStructures encodes the TLM advertisement.
func (e *EddystoneTLM) ADStructures() []ADStructure {
	sd := make([]byte, 0, 16)
	sd = binary.LittleEndian.AppendUint16(sd, eddystoneUUID)
	sd = append(sd, eddystoneFrameTLM, 0x00) // version
	sd = binary.BigEndian.AppendUint16(sd, e.BatteryMV)
	sd = binary.BigEndian.AppendUint16(sd, uint16(e.Temp8Dot8))
	sd = binary.BigEndian.AppendUint32(sd, e.AdvCount)
	sd = binary.BigEndian.AppendUint32(sd, e.SecCount10)
	return eddystoneADs(sd)
}

func eddystoneADs(serviceData []byte) []ADStructure {
	uuid := binary.LittleEndian.AppendUint16(nil, eddystoneUUID)
	return []ADStructure{
		{Type: ADFlags, Data: []byte{0x06}},
		{Type: ADComplete16UUID, Data: uuid},
		{Type: ADServiceData16, Data: serviceData},
	}
}

// Beacon is the decoded content of a beacon advertisement, whichever
// format it used. Exactly one of the payload pointers is non-nil.
type Beacon struct {
	Format    BeaconFormat
	IBeacon   *IBeacon
	AltBeacon *AltBeacon
	EddyUID   *EddystoneUID
	EddyURL   *EddystoneURL
	EddyTLM   *EddystoneTLM
}

// Key returns a stable identity string for the beacon, used by the
// tracker to group RSS readings per beacon.
func (b *Beacon) Key() string {
	switch b.Format {
	case FormatIBeacon:
		return fmt.Sprintf("ibeacon/%x/%d/%d", b.IBeacon.UUID, b.IBeacon.Major, b.IBeacon.Minor)
	case FormatAltBeacon:
		return fmt.Sprintf("altbeacon/%x", b.AltBeacon.ID)
	case FormatEddystoneUID:
		return fmt.Sprintf("eddy-uid/%x/%x", b.EddyUID.Namespace, b.EddyUID.Instance)
	case FormatEddystoneURL:
		return "eddy-url/" + b.EddyURL.URL
	case FormatEddystoneTLM:
		return "eddy-tlm"
	default:
		return "unknown"
	}
}

// CalibratedPower returns the format's calibrated reference power in dBm
// and whether the format carries one. iBeacon/AltBeacon calibrate at 1 m;
// Eddystone calibrates at 0 m (the conventional −41 dB conversion to 1 m
// is applied so all formats return a 1 m reference).
func (b *Beacon) CalibratedPower() (float64, bool) {
	switch b.Format {
	case FormatIBeacon:
		return float64(b.IBeacon.MeasuredPower), true
	case FormatAltBeacon:
		return float64(b.AltBeacon.ReferenceRSSI), true
	case FormatEddystoneUID:
		return float64(b.EddyUID.TxPower0m) - 41, true
	case FormatEddystoneURL:
		return float64(b.EddyURL.TxPower0m) - 41, true
	default:
		return 0, false
	}
}

// DecodeBeacon inspects the AD structures of an advertisement and decodes
// whichever beacon format it carries.
func DecodeBeacon(ads []ADStructure) (*Beacon, error) {
	if mfg, ok := FindAD(ads, ADManufacturer); ok {
		if ib, err := decodeIBeacon(mfg.Data); err == nil {
			return &Beacon{Format: FormatIBeacon, IBeacon: ib}, nil
		}
		if ab, err := decodeAltBeacon(mfg.Data); err == nil {
			return &Beacon{Format: FormatAltBeacon, AltBeacon: ab}, nil
		}
	}
	if sd, ok := FindAD(ads, ADServiceData16); ok && len(sd.Data) >= 3 && uint16LE(sd.Data[0:2]) == eddystoneUUID {
		frame := sd.Data[2]
		body := sd.Data[3:]
		switch frame {
		case eddystoneFrameUID:
			if len(body) < 17 {
				return nil, ErrTruncated
			}
			e := &EddystoneUID{TxPower0m: int8(body[0])}
			copy(e.Namespace[:], body[1:11])
			copy(e.Instance[:], body[11:17])
			return &Beacon{Format: FormatEddystoneUID, EddyUID: e}, nil
		case eddystoneFrameURL:
			e, err := decodeEddystoneURL(body)
			if err != nil {
				return nil, err
			}
			return &Beacon{Format: FormatEddystoneURL, EddyURL: e}, nil
		case eddystoneFrameTLM:
			if len(body) < 13 || body[0] != 0 {
				return nil, ErrTruncated
			}
			return &Beacon{Format: FormatEddystoneTLM, EddyTLM: &EddystoneTLM{
				BatteryMV:  uint16BE(body[1:3]),
				Temp8Dot8:  int16(uint16BE(body[3:5])),
				AdvCount:   binary.BigEndian.Uint32(body[5:9]),
				SecCount10: binary.BigEndian.Uint32(body[9:13]),
			}}, nil
		}
	}
	return nil, ErrNotBeacon
}
