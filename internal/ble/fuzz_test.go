package ble

import (
	"bytes"
	"testing"
)

// FuzzDeframe feeds arbitrary bytes through the de-whitening / CRC /
// PDU-decode path: it must never panic, and any frame it accepts must
// re-encode to the same bytes.
func FuzzDeframe(f *testing.F) {
	// Seed corpus: valid frames on each channel plus corruptions.
	pdu := AdvPDU{Type: PDUAdvNonconnInd, AdvA: AddressFromUint64(42), Data: []byte{0x02, 0x01, 0x06}}
	for _, ch := range []int{37, 38, 39} {
		frame, err := Frame(&pdu, ch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame, ch)
		bad := append([]byte(nil), frame...)
		bad[0] ^= 0xFF
		f.Add(bad, ch)
	}
	f.Add([]byte{}, 37)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, 38)

	f.Fuzz(func(t *testing.T, frame []byte, chRaw int) {
		ch := 37 + ((chRaw%3)+3)%3
		got, err := Deframe(frame, ch)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted frames must round-trip bit-exactly.
		re, err := Frame(got, ch)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("accepted frame does not round-trip:\n in  %x\n out %x", frame, re)
		}
	})
}

// FuzzParseADStructures checks the AD-structure parser never panics and
// that whatever it accepts serializes back to a prefix-equivalent
// payload.
func FuzzParseADStructures(f *testing.F) {
	f.Add([]byte{0x02, 0x01, 0x06})
	f.Add([]byte{0x02, 0x01, 0x06, 0x00, 0xFF})
	f.Add([]byte{0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ads, err := ParseADStructures(data)
		if err != nil {
			return
		}
		re, err := SerializeADStructures(nil, ads)
		if err != nil {
			t.Fatalf("re-serialize of parsed ADs failed: %v", err)
		}
		// The re-serialized payload must re-parse to the same structures
		// (the original may have had zero-length padding that is dropped).
		ads2, err := ParseADStructures(re)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(ads2) != len(ads) {
			t.Fatalf("AD count changed: %d vs %d", len(ads), len(ads2))
		}
		for i := range ads {
			if ads[i].Type != ads2[i].Type || !bytes.Equal(ads[i].Data, ads2[i].Data) {
				t.Fatalf("AD %d changed", i)
			}
		}
	})
}

// FuzzDecodeBeacon exercises the beacon-format dispatcher.
func FuzzDecodeBeacon(f *testing.F) {
	ib := IBeacon{Major: 1, Minor: 2, MeasuredPower: -59}
	ibData, _ := SerializeADStructures(nil, ib.ADStructures())
	f.Add(ibData)
	uid := EddystoneUID{TxPower0m: -20}
	uidData, _ := SerializeADStructures(nil, uid.ADStructures())
	f.Add(uidData)

	f.Fuzz(func(t *testing.T, data []byte) {
		ads, err := ParseADStructures(data)
		if err != nil {
			return
		}
		b, err := DecodeBeacon(ads)
		if err != nil {
			return
		}
		if b.Key() == "" {
			t.Fatal("accepted beacon with empty key")
		}
	})
}
