package core

import (
	"math"
	"testing"

	"locble/internal/estimate"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
)

func TestTrackBeaconStationary(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A longer walk so several windows fit.
	sc := sim.Scenario{
		Beacons: []sim.BeaconSpec{{Name: "b", X: 6, Y: 3}},
		ObserverPlan: imu.Plan{Segments: []imu.Segment{
			{Heading: 0, Distance: 4},
			{Heading: math.Pi / 2, Distance: 4},
			{Heading: math.Pi, Distance: 4},
		}},
		EnvModel: sim.StaticEnv(rf.LOS),
		Seed:     3,
	}
	tr, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := eng.TrackBeacon(tr, "b", 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("only %d fixes over a %.1f s trace", len(pts), tr.Duration)
	}
	// Fix times strictly increase; full-fusion windows carry samples,
	// and any ladder re-emission is honestly labelled.
	for i, p := range pts {
		switch p.Mode {
		case ModeFull:
			if p.Samples < 8 {
				t.Errorf("fix %d has %d samples", i, p.Samples)
			}
		case ModeLastKnown:
			if !p.Health.Has(ReasonStaleFix) || p.Health.Status != HealthDegraded {
				t.Errorf("stale fix %d health = %v, want degraded stale-fix", i, p.Health)
			}
		default:
			t.Errorf("fix %d has unexpected mode %v", i, p.Mode)
		}
		if i > 0 && p.T <= pts[i-1].T {
			t.Fatal("fix times not increasing")
		}
	}
	// Most fixes should land near the stationary truth; at least the
	// median fix error should be small.
	var errs []float64
	for _, p := range pts {
		errs = append(errs, math.Hypot(p.Est.X-6, p.Est.H-3))
	}
	med := median(errs)
	if med > 3.0 {
		t.Errorf("median tracking error %.2f m", med)
	}
}

func TestTrackBeaconErrors(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrackBeacon(tr, "nope", 6, 2); err == nil {
		t.Error("want error for unknown beacon")
	}
}

func TestProximityRefinement(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Walk passes within ~0.7 m of the beacon: proximity must engage and
	// keep (or improve) accuracy.
	sc := sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "b", X: 2, Y: 0.7}},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.LOS),
		Seed:         4,
	}
	tr, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.Locate(tr, "b")
	if err != nil {
		t.Fatal(err)
	}
	refined := eng.RefineWithProximity(m, DefaultProximityFusionConfig())
	base := math.Hypot(m.Est.X-2, m.Est.H-0.7)
	ref := math.Hypot(refined.X-2, refined.H-0.7)
	t.Logf("base %.2f m → proximity-refined %.2f m", base, ref)
	if ref > base+0.75 {
		t.Errorf("proximity refinement made it clearly worse: %.2f vs %.2f", ref, base)
	}
}

func TestProximityDoesNotEngageFar(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(8, 5, sim.StaticEnv(rf.LOS), 5))
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.Locate(tr, "target")
	if err != nil {
		t.Fatal(err)
	}
	refined := eng.RefineWithProximity(m, DefaultProximityFusionConfig())
	if refined.X != m.Est.X || refined.H != m.Est.H {
		t.Error("proximity engaged although the walk never came near the beacon")
	}
}

func TestNavigatorResolveMirror(t *testing.T) {
	nav := &Navigator{ArriveRadius: 0.5}
	nav.Target.X, nav.Target.H = 4, 3 // wrong side
	nav.SetMirror(estimate.Candidate{X: 4, H: -3})
	// Observer walked to (2, 0); re-measured range says the target is
	// ~3.6 m away — both are 3.6 away from (2,0)... move to a position
	// that discriminates: (2, 2).
	nav.SetPose(2, 2, 0)
	// True beacon at (4, −3): range from (2,2) = √(4+25) = 5.39.
	if !nav.ResolveMirror(5.39) {
		t.Fatal("mirror should have been selected")
	}
	if nav.Target.H != -3 {
		t.Errorf("target after swap = (%g, %g)", nav.Target.X, nav.Target.H)
	}
	// Resolving again with a range matching the (now) target keeps it.
	if nav.ResolveMirror(5.39) {
		t.Error("should not swap back when the range matches the target")
	}
	// Without a mirror installed, ResolveMirror is a no-op.
	nav2 := &Navigator{}
	if nav2.ResolveMirror(3) {
		t.Error("no-mirror navigator must not swap")
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

func TestLocateAllConcurrent(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Beacons: []sim.BeaconSpec{
			{Name: "a", X: 5, Y: 2},
			{Name: "b", X: 6, Y: 3},
			{Name: "c", X: 2, Y: 5},
		},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.LOS),
		Seed:         7,
	}
	tr, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	results := eng.LocateAll(tr)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	// Name order and agreement with sequential Locate.
	for i, want := range []string{"a", "b", "c"} {
		if results[i].Name != want {
			t.Fatalf("result %d is %q", i, results[i].Name)
		}
		if results[i].Err != nil {
			continue
		}
		seq, err := eng.Locate(tr, want)
		if err != nil {
			t.Fatalf("sequential %s: %v", want, err)
		}
		if seq.Est.X != results[i].M.Est.X || seq.Est.H != results[i].M.Est.H {
			t.Errorf("%s: concurrent and sequential results differ", want)
		}
	}
}
