package core

import (
	"fmt"
	"math"

	"locble/internal/estimate"
	"locble/internal/imu"
	"locble/internal/motion"
	"locble/internal/sigproc"
	"locble/internal/sim"
)

// prepared is the output of the shared preprocessing front half of the
// pipeline: sanitized observations, dead-reckoned motion, filtered RSS
// and the fused observation set the estimator consumes, plus the health
// report accumulated along the way. Locate and TrackBeacon both build on
// it, so input hardening lives in exactly one place.
type prepared struct {
	track       *motion.Track
	targetTrack *motion.Track
	estCfg      estimate.Config
	times       []float64
	raw         []float64
	filtered    []float64
	fused       []estimate.Obs
	health      Health
}

// prepare runs sanitization, motion processing and adaptive noise
// filtering for one beacon of a trace. Unusable input returns a
// *RejectedError carrying the health report. The zero-phase batch
// filter runs inside sc's buffer; everything that escapes into the
// returned prepared (and from there into a Measurement) is copied out,
// so the scratch can be reused immediately after the next call.
func (e *Engine) prepare(tr *sim.Trace, beaconName string, sc *locateScratch) (*prepared, error) {
	obs, ok := tr.Observations[beaconName]
	if !ok || len(obs) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBeacon, beaconName)
	}

	scfg := e.cfg.Sanitize.withDefaults()
	p := &prepared{}
	h := &p.health

	// --- Input sanitization -------------------------------------------
	spSanitize := e.met.stSanitize.Start()
	imuDur := 0.0
	if tr.IMU != nil && len(tr.IMU.Samples) > 0 {
		imuDur = tr.IMU.Samples[len(tr.IMU.Samples)-1].T
	}
	clean := sanitizeObservations(obs, scfg, imuDur, h)
	if len(clean) < scfg.MinSamples {
		spSanitize.End()
		return nil, rejectedErr(*h, ReasonFewSamples, fmt.Errorf("%d valid observations", len(clean)))
	}
	if span := clean[len(clean)-1].T - clean[0].T; span < scfg.MinSpan {
		spSanitize.End()
		return nil, rejectedErr(*h, ReasonShortWindow, fmt.Errorf("%.1fs observation span", span))
	}
	checkIMUHealth(tr.IMU, scfg, h)
	spSanitize.End()

	// --- Motion layer -------------------------------------------------
	spMotion := e.met.stMotion.Start()
	var rawIMU []imu.Sample
	if tr.IMU != nil {
		rawIMU = tr.IMU.Samples
	}
	_, alignedSamples, err := motion.Align(rawIMU)
	if err != nil {
		spMotion.End()
		return nil, rejectedErr(*h, ReasonIMUDropout, fmt.Errorf("core: align: %w", err))
	}
	p.track, err = motion.BuildTrack(alignedSamples, e.cfg.Tracker)
	if err != nil {
		spMotion.End()
		return nil, rejectedErr(*h, ReasonIMUDropout, fmt.Errorf("core: track: %w", err))
	}

	// Optional target movement (moving-target mode).
	if tr.TargetIMU != nil && len(tr.Beacons) > 0 && beaconName == tr.Beacons[0].Name {
		_, tgtAligned, err := motion.Align(tr.TargetIMU.Samples)
		if err != nil {
			spMotion.End()
			return nil, rejectedErr(*h, ReasonIMUDropout, fmt.Errorf("core: align target: %w", err))
		}
		p.targetTrack, err = motion.BuildTrack(tgtAligned, e.cfg.Tracker)
		if err != nil {
			spMotion.End()
			return nil, rejectedErr(*h, ReasonIMUDropout, fmt.Errorf("core: target track: %w", err))
		}
	}
	spMotion.End()

	// Anchor the estimator's Γ plausibility band to the beacon's
	// advertised calibrated power (the paper's Γ(e) = P + X(e): P is the
	// known hardware power from the payload, X(e) the environment loss).
	// The band spans NLOS penetration + body loss below and device RSSI
	// offsets above.
	p.estCfg = e.cfg.Estimator
	for _, spec := range tr.Beacons {
		if spec.Name == beaconName && spec.Tx.TxPowerDBm != 0 {
			p.estCfg.GammaSoftMin = spec.Tx.TxPowerDBm - 18
			p.estCfg.GammaSoftMax = spec.Tx.TxPowerDBm + 8
			break
		}
	}

	// --- Preprocessing layer (Sec. 4) ---------------------------------
	p.raw = make([]float64, len(clean))
	p.times = make([]float64, len(clean))
	for i, o := range clean {
		p.raw[i] = o.RSSI
		p.times[i] = o.T
	}

	p.filtered = p.raw
	if !e.cfg.DisableANF {
		spFilter := e.met.stFilter.Start()
		fs := tr.Phone.SampleRateHz
		if fs <= 0 {
			fs = 9
		}
		bf, err := sigproc.NewButterworth(e.cfg.ButterworthOrder, math.Min(e.cfg.CutoffHz, fs/2*0.8), fs)
		if err != nil {
			spFilter.End()
			return nil, fmt.Errorf("core: ANF design: %w", err)
		}
		// Bridge recoverable dropout gaps with interpolated samples so
		// the filter does not ring across them, then keep only the
		// filtered values at the original sample positions.
		_, brss, keepMask := bridgeGaps(p.times, p.raw, scfg)
		var bFiltered []float64
		scratchFiltered := false
		if e.cfg.StreamingANF {
			akf := sigproc.NewAKF(bf)
			if e.cfg.AKFMaxAlpha > 0 {
				akf.MaxAlpha = e.cfg.AKFMaxAlpha
			}
			bFiltered = akf.Filter(brss)
			e.met.recordAKF(akf.Stats())
		} else {
			sc.fbuf = sigproc.FiltFiltInto(bf, brss, sc.fbuf)
			bFiltered = sc.fbuf
			scratchFiltered = true
		}
		if keepMask == nil {
			if scratchFiltered {
				// Measurement.Filtered outlives this call; detach it from
				// the scratch buffer.
				p.filtered = append([]float64(nil), bFiltered...)
			} else {
				p.filtered = bFiltered
			}
		} else {
			p.filtered = make([]float64, 0, len(p.raw))
			for i, keep := range keepMask {
				if keep {
					p.filtered = append(p.filtered, bFiltered[i])
				}
			}
		}
		spFilter.End()
	}

	// --- Fusion with the motion track ---------------------------------
	p.fused = make([]estimate.Obs, len(clean))
	for i := range clean {
		ox, oy := p.track.At(p.times[i])
		px, qy := -ox, -oy
		if p.targetTrack != nil {
			bx, by := p.targetTrack.At(p.times[i])
			px += bx
			qy += by
		}
		p.fused[i] = estimate.Obs{T: p.times[i], RSS: p.filtered[i], P: px, Q: qy}
	}
	return p, nil
}

// finiteEstimate reports whether every numeric field of the estimate is
// finite — the pipeline's last line of defence against a NaN escaping to
// a caller.
func finiteEstimate(est *estimate.Estimate) bool {
	for _, v := range []float64{est.X, est.H, est.N, est.Gamma, est.ResidualDB, est.Confidence} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
