package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
	"locble/internal/testutil"
)

// manyBeaconScenario spreads n beacons around the canonical L-shape walk
// so the fan-out exercises every shard.
func manyBeaconScenario(n int, seed int64) sim.Scenario {
	sc := sim.Scenario{
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.LOS),
		Seed:         seed,
	}
	for i := 0; i < n; i++ {
		sc.Beacons = append(sc.Beacons, sim.BeaconSpec{
			Name: fmt.Sprintf("b%02d", i),
			X:    1 + float64(i%4)*2,
			Y:    1 + float64(i/4)*1.5,
		})
	}
	return sc
}

// TestLocateAllMatchesSequential pins the sharded pool to the
// sequential path bit-for-bit: for every beacon, the pooled fan-out and
// a plain LocateContext loop must produce the exact same fix (the
// workers reuse per-shard scratch arenas, so any cross-run state leak
// would show up here as a drifted coordinate).
func TestLocateAllMatchesSequential(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	tr, err := sim.Run(manyBeaconScenario(9, 3))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	pooled := eng.LocateAll(tr)
	if len(pooled) != 9 {
		t.Fatalf("LocateAll: %d results, want 9", len(pooled))
	}
	// Run the pool twice so shard workers re-enter with warm arenas.
	pooled = eng.LocateAll(tr)

	for _, res := range pooled {
		seq, seqErr := eng.Locate(tr, res.Name)
		if (seqErr == nil) != (res.Err == nil) {
			t.Fatalf("%s: pooled err %v, sequential err %v", res.Name, res.Err, seqErr)
		}
		if seqErr != nil {
			continue
		}
		if res.M.Est.X != seq.Est.X || res.M.Est.H != seq.Est.H ||
			res.M.Est.N != seq.Est.N || res.M.Est.Gamma != seq.Est.Gamma ||
			res.M.Est.ResidualDB != seq.Est.ResidualDB {
			t.Errorf("%s: pooled fix (%v,%v n=%v Γ=%v r=%v) != sequential (%v,%v n=%v Γ=%v r=%v)",
				res.Name,
				res.M.Est.X, res.M.Est.H, res.M.Est.N, res.M.Est.Gamma, res.M.Est.ResidualDB,
				seq.Est.X, seq.Est.H, seq.Est.N, seq.Est.Gamma, seq.Est.ResidualDB)
		}
	}
}

// TestLocateAllPoolStress hammers the pool from many goroutines at once
// (run under -race in CI): concurrent batches share the shard workers,
// so this is where a scratch-arena data race or a result-slot race
// would surface. It then Closes the engine and verifies the pool
// goroutines are gone and the inline fallback still answers.
func TestLocateAllPoolStress(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)

	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr, err := sim.Run(manyBeaconScenario(6, 4))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	want := eng.LocateAll(tr)

	const batches = 8
	var wg sync.WaitGroup
	errs := make(chan error, batches)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.LocateAll(tr)
			if len(got) != len(want) {
				errs <- fmt.Errorf("batch: %d results, want %d", len(got), len(want))
				return
			}
			for i, res := range got {
				if res.Err != nil {
					errs <- fmt.Errorf("%s: %v", res.Name, res.Err)
					return
				}
				if res.M.Est.X != want[i].M.Est.X || res.M.Est.H != want[i].M.Est.H {
					errs <- fmt.Errorf("%s: fix (%v,%v) != (%v,%v)", res.Name,
						res.M.Est.X, res.M.Est.H, want[i].M.Est.X, want[i].M.Est.H)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Closed engine: the fan-out falls back to inline execution with the
	// same results.
	after := eng.LocateAll(tr)
	if len(after) != len(want) {
		t.Fatalf("after Close: %d results, want %d", len(after), len(want))
	}
	for i, res := range after {
		if res.Err != nil {
			t.Fatalf("after Close %s: %v", res.Name, res.Err)
		}
		if res.M.Est.X != want[i].M.Est.X || res.M.Est.H != want[i].M.Est.H {
			t.Errorf("after Close %s: fix (%v,%v) != (%v,%v)", res.Name,
				res.M.Est.X, res.M.Est.H, want[i].M.Est.X, want[i].M.Est.H)
		}
	}
}

// TestLocateAllCancelUnderPool verifies cancellation semantics survived
// the pool rewrite: a pre-canceled context reports a context error for
// every beacon, promptly, and the pool stays usable afterwards.
func TestLocateAllCancelUnderPool(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	tr, err := sim.Run(manyBeaconScenario(5, 5))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, res := range eng.LocateAllContext(ctx, tr) {
		if res.Err == nil {
			t.Fatalf("%s: fix despite canceled context", res.Name)
		}
		if !isCanceled(res.Err) {
			t.Fatalf("%s: error %v is not a cancellation", res.Name, res.Err)
		}
	}
	for _, res := range eng.LocateAll(tr) {
		if res.Err != nil {
			t.Fatalf("after cancel %s: %v", res.Name, res.Err)
		}
	}
}

// blockGateCtx parks any goroutine that probes Err until gate closes.
// runLocateJob's first act is a ctx.Err() check, so stuffing a shard
// with gated jobs deterministically pins its worker mid-job — the only
// way to saturate the pool without sleeping and hoping.
type blockGateCtx struct {
	context.Context
	gate <-chan struct{}
}

func (c blockGateCtx) Err() error {
	<-c.gate
	return c.Context.Err()
}

// TestLocateAllCanceledUnderShardBackpressure is the regression test for
// the submit-loop hang: with every shard worker parked and every shard
// buffer full, LocateAllContext's submitter blocks in backpressure; a
// cancellation must unblock it and complete the unsubmitted results
// with the context error instead of hanging on a dead batch forever.
// Pre-fix (bare channel send, no ctx.Done select) this test times out.
func TestLocateAllCanceledUnderShardBackpressure(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)

	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()

	// Saturate the pool: one gated job occupies each worker, then
	// shardQueueDepth more fill each shard buffer. Their context is
	// already canceled, so once the gate opens they drain instantly
	// without running a pipeline.
	p := eng.acquirePool()
	gate := make(chan struct{})
	stuffedCtx, stuffedCancel := context.WithCancel(context.Background())
	stuffedCancel()
	gctx := blockGateCtx{Context: stuffedCtx, gate: gate}
	stuffPer := 1 + shardQueueDepth
	stuffRes := make([]BeaconResult, len(p.shards)*stuffPer)
	var stuffWG sync.WaitGroup
	dead := &sim.Trace{}
	k := 0
	for _, ch := range p.shards {
		for j := 0; j < stuffPer; j++ {
			stuffWG.Add(1)
			ch <- locateJob{ctx: gctx, tr: dead, name: "gate", res: &stuffRes[k], wg: &stuffWG}
			k++
		}
	}

	tr, err := sim.Run(manyBeaconScenario(4, 7))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	resCh := make(chan []BeaconResult, 1)
	go func() { resCh <- eng.LocateAllContext(ctx, tr) }()

	// Let the submitter park on a full shard, then kill the batch.
	time.Sleep(50 * time.Millisecond)
	cancel()

	var results []BeaconResult
	select {
	case results = <-resCh:
	case <-time.After(10 * time.Second):
		close(gate)
		t.Fatal("LocateAllContext hung: canceled context did not unblock a submitter stuck in shard backpressure")
	}
	if len(results) != 4 {
		t.Fatalf("canceled batch: %d results, want 4", len(results))
	}
	for _, res := range results {
		if res.Err == nil {
			t.Fatalf("%s: fix despite canceled batch", res.Name)
		}
		if !isCanceled(res.Err) {
			t.Fatalf("%s: error %v is not a cancellation", res.Name, res.Err)
		}
	}

	// Open the gate: the parked jobs drain, and the pool must come back
	// healthy for a live batch.
	close(gate)
	stuffWG.Wait()
	p.flight.Done()
	for _, res := range eng.LocateAll(tr) {
		if res.Err != nil {
			t.Fatalf("after drain %s: %v", res.Name, res.Err)
		}
	}
}

// TestShardIndexStable pins the shard hash: stable per name, in range,
// and spread across shards for realistic name sets.
func TestShardIndexStable(t *testing.T) {
	const n = 8
	hit := make(map[int]bool)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("beacon-%d", i)
		s := shardIndex(name, n)
		if s < 0 || s >= n {
			t.Fatalf("shardIndex(%q, %d) = %d out of range", name, n, s)
		}
		if s != shardIndex(name, n) {
			t.Fatalf("shardIndex(%q) unstable", name)
		}
		hit[s] = true
	}
	if len(hit) < n/2 {
		t.Errorf("64 names landed on only %d/%d shards", len(hit), n)
	}
}

func BenchmarkLocateAllPool(b *testing.B) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	tr, err := sim.Run(manyBeaconScenario(8, 6))
	if err != nil {
		b.Fatalf("sim.Run: %v", err)
	}
	eng.LocateAll(tr) // warm the classifier, pool and arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.LocateAll(tr)
	}
}
