package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"locble/internal/resilience"
	"locble/internal/sim"
)

// BeaconResult pairs a beacon name with its measurement or error.
type BeaconResult struct {
	Name string
	M    *Measurement
	Err  error
	// Health is the degradation report for this beacon: the
	// measurement's own on success, or the report recovered from the
	// rejection error (so a caller can tell "unusable input" apart from
	// "beacon absent" without unwrapping errors).
	Health Health
}

// LocateAll locates every beacon visible in the trace concurrently (the
// Engine is safe for concurrent Locate calls; the per-beacon pipelines
// are independent). Results are returned in beacon-name order.
func (e *Engine) LocateAll(tr *sim.Trace) []BeaconResult {
	return e.LocateAllContext(context.Background(), tr)
}

// LocateAllContext is LocateAll under a context. The fan-out runs on a
// resilience.Queue whose worker pool is sized to GOMAXPROCS: the
// per-beacon pipelines are CPU-bound, so a trace carrying thousands of
// beacons (a crowded-venue scan) must not stampede the scheduler with
// one goroutine each. The queue's depth covers the whole fan-out — an
// internal fan-out prefers backpressure over shedding, so no beacon is
// ever silently dropped. Cancellation drains fast: beacons not yet
// started report the context error immediately, and in-flight pipelines
// stop mid-regression. The observed peak concurrency is recorded in the
// engine's "core.locateall.concurrency" gauge (its Max is the
// high-water mark).
func (e *Engine) LocateAllContext(ctx context.Context, tr *sim.Trace) []BeaconResult {
	e.met.locateAlls.Inc()
	names := make([]string, 0, len(tr.Observations))
	for name := range tr.Observations {
		names = append(names, name)
	}
	sort.Strings(names)

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	q := resilience.NewQueue(workers, len(names)+1)
	results := make([]BeaconResult, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		task := func() {
			defer wg.Done()
			e.met.concurrency.Add(1)
			defer e.met.concurrency.Add(-1)
			var (
				m   *Measurement
				err error
			)
			if ctx.Err() != nil {
				err = canceledErr(ctx, "locate "+name)
			} else {
				m, err = e.LocateContext(ctx, tr, name)
			}
			res := BeaconResult{Name: name, M: m, Err: err}
			if err != nil {
				res.Health = HealthFromError(err)
			} else {
				res.Health = m.Health
			}
			results[i] = res
		}
		// The depth covers every beacon, so Submit never blocks and the
		// only error is a closed queue — impossible here. Guard anyway.
		if err := q.Submit(ctx, task); err != nil {
			results[i] = BeaconResult{Name: name, Err: err, Health: HealthFromError(err)}
			wg.Done()
		}
	}
	wg.Wait()
	q.Close(context.Background())
	return results
}
