package core

import (
	"context"
	"sort"
	"sync"

	"locble/internal/sim"
)

// BeaconResult pairs a beacon name with its measurement or error.
type BeaconResult struct {
	Name string
	M    *Measurement
	Err  error
	// Health is the degradation report for this beacon: the
	// measurement's own on success, or the report recovered from the
	// rejection error (so a caller can tell "unusable input" apart from
	// "beacon absent" without unwrapping errors).
	Health Health
}

// LocateAll locates every beacon visible in the trace concurrently (the
// Engine is safe for concurrent Locate calls; the per-beacon pipelines
// are independent). Results are returned in beacon-name order.
func (e *Engine) LocateAll(tr *sim.Trace) []BeaconResult {
	return e.LocateAllContext(context.Background(), tr)
}

// LocateAllContext is LocateAll under a context. The fan-out runs on
// the engine's persistent sharded worker pool: GOMAXPROCS workers, each
// owning a shard channel and a reusable pipeline scratch (estimator
// arenas + filter buffer), with beacons hashed to shards by name — so
// repeated batches reuse warm buffers instead of respawning goroutines
// and reallocating arenas per call. The per-beacon pipelines are
// CPU-bound, so a trace carrying thousands of beacons (a crowded-venue
// scan) must not stampede the scheduler with one goroutine each; a full
// shard applies backpressure to the submitter rather than shedding, so
// no beacon is ever silently dropped. Cancellation drains fast: beacons
// not yet started report the context error immediately, and in-flight
// pipelines stop mid-regression. The observed peak concurrency is
// recorded in the engine's "core.locateall.concurrency" gauge (its Max
// is the high-water mark). After Engine.Close the fan-out runs inline
// on the calling goroutine with identical results and bookkeeping.
func (e *Engine) LocateAllContext(ctx context.Context, tr *sim.Trace) []BeaconResult {
	e.met.locateAlls.Inc()
	names := make([]string, 0, len(tr.Observations))
	for name := range tr.Observations {
		names = append(names, name)
	}
	sort.Strings(names)

	results := make([]BeaconResult, len(names))
	var wg sync.WaitGroup
	wg.Add(len(names))

	p := e.acquirePool()
	if p == nil {
		// Engine closed: run the same jobs inline, sequentially, on one
		// borrowed scratch.
		sc := getLocateScratch()
		defer putLocateScratch(sc)
		for i, name := range names {
			e.runLocateJob(locateJob{ctx: ctx, tr: tr, name: name, res: &results[i], wg: &wg}, sc)
		}
		wg.Wait()
		return results
	}
	defer p.flight.Done()
	for i, name := range names {
		job := locateJob{ctx: ctx, tr: tr, name: name, res: &results[i], wg: &wg}
		select {
		case p.shards[shardIndex(name, len(p.shards))] <- job:
		case <-ctx.Done():
			// Canceled while a full shard held the submitter in
			// backpressure: the batch is dead, so waiting for a slot would
			// hang forever. Complete this job and every unsubmitted one
			// inline through the same runLocateJob path — each observes
			// the canceled context and reports it, keeping the result
			// shape, metrics, and health bookkeeping identical to a
			// cancellation that lands after submission.
			sc := getLocateScratch()
			for j := i; j < len(names); j++ {
				e.runLocateJob(locateJob{ctx: ctx, tr: tr, name: names[j], res: &results[j], wg: &wg}, sc)
			}
			putLocateScratch(sc)
			wg.Wait()
			return results
		}
	}
	wg.Wait()
	return results
}
