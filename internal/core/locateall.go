package core

import (
	"sort"
	"sync"

	"locble/internal/sim"
)

// BeaconResult pairs a beacon name with its measurement or error.
type BeaconResult struct {
	Name string
	M    *Measurement
	Err  error
	// Health is the degradation report for this beacon: the
	// measurement's own on success, or the report recovered from the
	// rejection error (so a caller can tell "unusable input" apart from
	// "beacon absent" without unwrapping errors).
	Health Health
}

// LocateAll locates every beacon visible in the trace concurrently (the
// Engine is safe for concurrent Locate calls; the per-beacon pipelines
// are independent). Results are returned in beacon-name order.
func (e *Engine) LocateAll(tr *sim.Trace) []BeaconResult {
	names := make([]string, 0, len(tr.Observations))
	for name := range tr.Observations {
		names = append(names, name)
	}
	sort.Strings(names)

	results := make([]BeaconResult, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			m, err := e.Locate(tr, name)
			res := BeaconResult{Name: name, M: m, Err: err}
			if err != nil {
				res.Health = HealthFromError(err)
			} else {
				res.Health = m.Health
			}
			results[i] = res
		}(i, name)
	}
	wg.Wait()
	return results
}
