package core

import (
	"runtime"
	"sort"
	"sync"

	"locble/internal/sim"
)

// BeaconResult pairs a beacon name with its measurement or error.
type BeaconResult struct {
	Name string
	M    *Measurement
	Err  error
	// Health is the degradation report for this beacon: the
	// measurement's own on success, or the report recovered from the
	// rejection error (so a caller can tell "unusable input" apart from
	// "beacon absent" without unwrapping errors).
	Health Health
}

// LocateAll locates every beacon visible in the trace concurrently (the
// Engine is safe for concurrent Locate calls; the per-beacon pipelines
// are independent). Results are returned in beacon-name order.
//
// The fan-out is bounded by GOMAXPROCS: the per-beacon pipelines are
// CPU-bound, so a trace carrying thousands of beacons (a crowded-venue
// scan) must not stampede the scheduler with one goroutine each. The
// observed peak concurrency is recorded in the engine's
// "core.locateall.concurrency" gauge (its Max is the high-water mark).
func (e *Engine) LocateAll(tr *sim.Trace) []BeaconResult {
	e.met.locateAlls.Inc()
	names := make([]string, 0, len(tr.Observations))
	for name := range tr.Observations {
		names = append(names, name)
	}
	sort.Strings(names)

	limit := runtime.GOMAXPROCS(0)
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	results := make([]BeaconResult, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			e.met.concurrency.Add(1)
			defer func() {
				e.met.concurrency.Add(-1)
				<-sem
			}()
			m, err := e.Locate(tr, name)
			res := BeaconResult{Name: name, M: m, Err: err}
			if err != nil {
				res.Health = HealthFromError(err)
			} else {
				res.Health = m.Health
			}
			results[i] = res
		}(i, name)
	}
	wg.Wait()
	return results
}
