package core

import (
	"errors"
	"math"
	"testing"

	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

// Regression: preprocessing used to assume monotonic observation
// timestamps. A shuffled stream must produce the same estimate as the
// sorted one (sanitization restores order) — never garbage.
func TestLocateShuffledTimestampsMatchesSorted(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Locate(tr, "target")
	if err != nil {
		t.Fatal(err)
	}

	shuffled := *tr
	obs := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	src := rng.New(42)
	for i := len(obs) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		obs[i], obs[j] = obs[j], obs[i]
	}
	shuffled.Observations = map[string][]sim.BeaconObservation{"target": obs}

	got, err := eng.Locate(&shuffled, "target")
	if err != nil {
		t.Fatalf("Locate on shuffled input: %v", err)
	}
	if math.Abs(got.Est.X-want.Est.X) > 1e-9 || math.Abs(got.Est.H-want.Est.H) > 1e-9 {
		t.Errorf("shuffled input changed the estimate: (%.4f, %.4f) vs (%.4f, %.4f)",
			got.Est.X, got.Est.H, want.Est.X, want.Est.H)
	}
	if got.Health.Repaired == 0 {
		t.Error("sanitization should report repaired (re-ordered) observations")
	}
}

func TestLocateCleanTraceIsHealthOK(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), seed))
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.Locate(tr, "target")
		if err != nil {
			t.Fatal(err)
		}
		if m.Health.Status != HealthOK {
			t.Errorf("seed %d: clean trace classified %s", seed, m.Health)
		}
	}
}

func TestLocateNonFiniteRSSIDegrades(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 2))
	if err != nil {
		t.Fatal(err)
	}
	obs := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	for i := range obs {
		if i%4 == 0 {
			obs[i].RSSI = math.NaN()
		}
	}
	poisoned := *tr
	poisoned.Observations = map[string][]sim.BeaconObservation{"target": obs}
	m, err := eng.Locate(&poisoned, "target")
	if err != nil {
		t.Fatalf("Locate with NaN RSSI: %v", err)
	}
	if m.Health.Status != HealthDegraded || !m.Health.Has(ReasonNonFiniteRSS) {
		t.Errorf("health = %s, want degraded with %s", m.Health, ReasonNonFiniteRSS)
	}
	if !finiteEstimate(m.Est) {
		t.Error("non-finite estimate escaped")
	}
}

func TestLocateShortWindowRejected(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 3))
	if err != nil {
		t.Fatal(err)
	}
	var kept []sim.BeaconObservation
	for _, o := range tr.Observations["target"] {
		if o.T <= 2.0 {
			kept = append(kept, o)
		}
	}
	short := *tr
	short.Observations = map[string][]sim.BeaconObservation{"target": kept}
	_, err = eng.Locate(&short, "target")
	var re *RejectedError
	if !errors.As(err, &re) {
		t.Fatalf("want *RejectedError, got %v", err)
	}
	if re.Health.Status != HealthRejected || !re.Health.Has(ReasonShortWindow) {
		t.Errorf("health = %s, want rejected with %s", re.Health, ReasonShortWindow)
	}
	if HealthFromError(err).Status != HealthRejected {
		t.Error("HealthFromError lost the rejection")
	}
}

func TestHealthStringAndHas(t *testing.T) {
	var h Health
	if h.Status != HealthOK || h.String() != "OK" {
		t.Errorf("zero health = %q", h.String())
	}
	h.degrade(ReasonRSSGaps)
	h.degrade(ReasonRSSGaps) // idempotent
	if len(h.Reasons) != 1 || !h.Has(ReasonRSSGaps) || h.Has(ReasonClockSkew) {
		t.Errorf("reasons = %v", h.Reasons)
	}
	h.reject(ReasonShortWindow)
	if h.Status != HealthRejected || h.String() != "rejected (rss-gaps, short-window)" {
		t.Errorf("health = %q", h.String())
	}
}

func TestBridgeGapsInsertsAndMasks(t *testing.T) {
	times := []float64{0, 0.1, 0.2, 0.3, 1.3, 1.4, 1.5}
	rss := []float64{-60, -60, -60, -60, -70, -70, -70}
	bt, brss, keep := bridgeGaps(times, rss, DefaultSanitizeConfig())
	if keep == nil {
		t.Fatal("expected bridge insertion for a 1 s gap at 0.1 s cadence")
	}
	if len(bt) != len(brss) || len(bt) != len(keep) {
		t.Fatal("length mismatch")
	}
	kept := 0
	for i, k := range keep {
		if k {
			kept++
		} else {
			if bt[i] <= 0.3 || bt[i] >= 1.3 {
				t.Errorf("inserted sample at t=%.2f outside the gap", bt[i])
			}
			if brss[i] < -70 || brss[i] > -60 {
				t.Errorf("inserted RSS %.1f outside interpolation range", brss[i])
			}
		}
	}
	if kept != len(times) {
		t.Errorf("keep mask preserves %d of %d originals", kept, len(times))
	}
	// No gap → fast path, nil mask.
	if _, _, k := bridgeGaps([]float64{0, 0.1, 0.2}, []float64{1, 2, 3}, DefaultSanitizeConfig()); k != nil {
		t.Error("uniform series should not be bridged")
	}
}
