package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"locble/internal/estimate"
)

// sessionObs synthesizes a deterministic fused observation stream: the
// observer walks an L (9 m along x, then 9 m along y at 0.8 m/s — fast
// enough that every 6 s window carries the estimator's minimum movement
// spread), the beacon sits at world (4, 3), and the RSS follows a
// log-distance model with seedless pseudo-noise (sinusoids —
// reproducible across runs and processes, which the bit-exactness
// assertions require).
func sessionObs(n int) []estimate.Obs {
	const (
		fs     = 8.0
		speed  = 0.8
		bx, by = 4.0, 3.0
		gamma  = -58.0
		nExp   = 2.2
	)
	out := make([]estimate.Obs, n)
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		var ox, oy float64
		switch walked := speed * t; {
		case walked <= 9:
			ox = walked
		case walked <= 18:
			ox, oy = 9, walked-9
		default:
			ox, oy = 9, 9
		}
		d := math.Hypot(bx-ox, by-oy)
		if d < 0.1 {
			d = 0.1
		}
		noise := 2.0*math.Sin(1.3*float64(i)) + 1.1*math.Cos(2.7*float64(i)+0.5)
		out[i] = estimate.Obs{
			T:   t,
			RSS: gamma - 10*nExp*math.Log10(d) + noise,
			P:   -ox,
			Q:   -oy,
		}
	}
	return out
}

func newSession(t *testing.T, eng *Engine) *TrackSession {
	t.Helper()
	s, err := eng.NewTrackSession(TrackSessionConfig{Beacon: "target", SampleRateHz: 8})
	if err != nil {
		t.Fatalf("NewTrackSession: %v", err)
	}
	return s
}

func pushAll(t *testing.T, s *TrackSession, obs []estimate.Obs) []TrackPoint {
	t.Helper()
	var fixes []TrackPoint
	for _, o := range obs {
		pt, err := s.Push(o)
		if err != nil {
			t.Fatalf("Push(t=%.2f): %v", o.T, err)
		}
		if pt != nil {
			fixes = append(fixes, *pt)
		}
	}
	return fixes
}

// TestTrackSessionCheckpointRestore is the kill-and-restart test: a
// session checkpointed mid-stream (through a full JSON round trip, as a
// fresh process would see it) and restored on a different Engine must
// produce fixes sample-for-sample identical to an uninterrupted run.
func TestTrackSessionCheckpointRestore(t *testing.T) {
	obs := sessionObs(240)
	engA, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	ref := pushAll(t, newSession(t, engA), obs)
	if len(ref) < 5 {
		t.Fatalf("uninterrupted run produced %d fixes, want ≥ 5", len(ref))
	}

	// Interrupted run: kill after 120 observations...
	sessA := newSession(t, engA)
	before := pushAll(t, sessA, obs[:120])
	var ckpt bytes.Buffer
	if err := sessA.WriteCheckpoint(&ckpt); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	// ...and restart on a fresh engine (same configuration), as a
	// restarted server process would.
	engB, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine (restart): %v", err)
	}
	sessB, err := engB.RestoreTrackSessionFrom(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatalf("RestoreTrackSessionFrom: %v", err)
	}
	after := pushAll(t, sessB, obs[120:])

	got := append(append([]TrackPoint(nil), before...), after...)
	if len(got) != len(ref) {
		t.Fatalf("restored run produced %d fixes, uninterrupted produced %d", len(got), len(ref))
	}
	for i := range ref {
		w, g := ref[i], got[i]
		if g.T != w.T || g.WindowStart != w.WindowStart || g.Samples != w.Samples {
			t.Fatalf("fix %d window mismatch: got (T=%v start=%v n=%d), want (T=%v start=%v n=%d)",
				i, g.T, g.WindowStart, g.Samples, w.T, w.WindowStart, w.Samples)
		}
		if g.Est.X != w.Est.X || g.Est.H != w.Est.H ||
			g.Est.N != w.Est.N || g.Est.Gamma != w.Est.Gamma ||
			g.Est.ResidualDB != w.Est.ResidualDB || g.Est.Confidence != w.Est.Confidence {
			t.Fatalf("fix %d not bit-identical after restore:\n got  (%.17g, %.17g) n=%.17g Γ=%.17g\n want (%.17g, %.17g) n=%.17g Γ=%.17g",
				i, g.Est.X, g.Est.H, g.Est.N, g.Est.Gamma,
				w.Est.X, w.Est.H, w.Est.N, w.Est.Gamma)
		}
	}
	if sessB.Fixes() != int64(len(ref)) {
		t.Errorf("restored session Fixes() = %d, want %d (counters must survive restarts)",
			sessB.Fixes(), len(ref))
	}
	if sessB.Pushed() != int64(len(obs)) {
		t.Errorf("restored session Pushed() = %d, want %d", sessB.Pushed(), len(obs))
	}

	// Restore observability: the restore and its depth were recorded.
	snap := engB.Metrics()
	if snap.Counters["core.session.restores"] != 1 {
		t.Errorf("core.session.restores = %d, want 1", snap.Counters["core.session.restores"])
	}
}

// driftingSessionObs synthesizes a patrol loop (the observer walks a
// 9 m × 9 m rectangle forever) whose beacon TX power decays linearly by
// 42 dB over the stream — enough longitudinal Γ drift to trip the
// session's band recalibration several times, with enough movement
// spread that every window still fits.
func driftingSessionObs(n int) []estimate.Obs {
	const (
		fs     = 8.0
		speed  = 0.8
		bx, by = 4.0, 3.0
		nExp   = 2.2
	)
	out := make([]estimate.Obs, n)
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		leg := math.Mod(speed*t, 36)
		var ox, oy float64
		switch {
		case leg <= 9:
			ox, oy = leg, 0
		case leg <= 18:
			ox, oy = 9, leg-9
		case leg <= 27:
			ox, oy = 9-(leg-18), 9
		default:
			ox, oy = 0, 9-(leg-27)
		}
		d := math.Hypot(bx-ox, by-oy)
		if d < 0.1 {
			d = 0.1
		}
		gamma := -58 - 42*float64(i)/float64(n)
		noise := 2.0*math.Sin(1.3*float64(i)) + 1.1*math.Cos(2.7*float64(i)+0.5)
		out[i] = estimate.Obs{
			T:   t,
			RSS: gamma - 10*nExp*math.Log10(d) + noise,
			P:   -ox,
			Q:   -oy,
		}
	}
	return out
}

// TestTrackSessionCheckpointRestoreAcrossRecalibration extends the
// kill-and-restart contract across a TX-power-drift recalibration
// boundary. The session recalibrates before the kill, shifting its live
// Γ band off the creation-time base; the checkpoint records that drift
// as an explicit gamma_shift on top of the base estimator config. A
// restore that rebuilds the estimator from nominal configuration
// without re-applying the shift silently reverts the Γ prior — the
// post-restore fixes then fight a stale anchor and diverge, so this
// test fails if the shift re-application in RestoreTrackSession is
// reverted.
func TestTrackSessionCheckpointRestoreAcrossRecalibration(t *testing.T) {
	obs := driftingSessionObs(600)
	engA, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	ref := pushAll(t, newSession(t, engA), obs)
	if len(ref) < 10 {
		t.Fatalf("uninterrupted run produced %d fixes, want ≥ 10", len(ref))
	}

	sessA := newSession(t, engA)
	before := pushAll(t, sessA, obs[:300])
	if sessA.recals == 0 || sessA.gammaShift == 0 {
		t.Fatalf("no recalibration before the kill point (recals=%d shift=%g) — the scenario must cross a recal boundary",
			sessA.recals, sessA.gammaShift)
	}
	var ckpt bytes.Buffer
	if err := sessA.WriteCheckpoint(&ckpt); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	engB, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine (restart): %v", err)
	}
	sessB, err := engB.RestoreTrackSessionFrom(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatalf("RestoreTrackSessionFrom: %v", err)
	}
	if sessB.estCfg.GammaSoftMin != sessA.estCfg.GammaSoftMin ||
		sessB.estCfg.GammaSoftMax != sessA.estCfg.GammaSoftMax {
		t.Fatalf("restore reverted the recalibrated Γ band: [%g,%g] vs live [%g,%g]",
			sessB.estCfg.GammaSoftMin, sessB.estCfg.GammaSoftMax,
			sessA.estCfg.GammaSoftMin, sessA.estCfg.GammaSoftMax)
	}
	after := pushAll(t, sessB, obs[300:])

	got := append(append([]TrackPoint(nil), before...), after...)
	if len(got) != len(ref) {
		t.Fatalf("restored run produced %d fixes, uninterrupted produced %d", len(got), len(ref))
	}
	for i := range ref {
		w, g := ref[i], got[i]
		if g.Est.X != w.Est.X || g.Est.H != w.Est.H ||
			g.Est.N != w.Est.N || g.Est.Gamma != w.Est.Gamma ||
			g.Est.ResidualDB != w.Est.ResidualDB || g.Est.Confidence != w.Est.Confidence {
			t.Fatalf("fix %d not bit-identical after a recal-crossing restore:\n got  (%.17g, %.17g) n=%.17g Γ=%.17g\n want (%.17g, %.17g) n=%.17g Γ=%.17g",
				i, g.Est.X, g.Est.H, g.Est.N, g.Est.Gamma,
				w.Est.X, w.Est.H, w.Est.N, w.Est.Gamma)
		}
	}
	// The drift keeps going after the restore: the restored session must
	// keep recalibrating from where the live one left off.
	if sessB.recals <= sessA.recals {
		t.Errorf("post-restore stream never recalibrated again (recals %d → %d)",
			sessA.recals, sessB.recals)
	}
}

// TestNoteGammaZeroAlloc pins the drift detector's hot path: folding a
// fitted Γ into the fixed ring and taking its median must not allocate.
// The pre-ring implementation (append + [1:] re-slice + a fresh median
// buffer per call) allocated on every full fix of every session — a
// fleet-scale tax. Fails if the ring is reverted to a slice.
func TestNoteGammaZeroAlloc(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := newSession(t, eng)
	center := (s.estCfg.GammaSoftMin + s.estCfg.GammaSoftMax) / 2
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		// Stay inside the no-recal deadband so the ring keeps cycling
		// full and every call runs the median.
		i++
		s.noteGamma(center + float64(i%7) - 3)
	})
	if allocs != 0 {
		t.Fatalf("noteGamma allocates %.2f per call, want 0", allocs)
	}
	if s.recals != 0 {
		t.Fatalf("deadband Γ stream recalibrated %d times", s.recals)
	}
}

// TestWarmPushZeroAlloc: a warm session's non-fix Push allocates
// nothing — the window buffer reuses its capacity, the filters are
// fixed state, and the drift ring is a fixed array. (Fix-emitting
// pushes allocate by contract: they return a fresh TrackPoint.)
func TestWarmPushZeroAlloc(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// A huge Step keeps every measured push strictly inside a window.
	s, err := eng.NewTrackSession(TrackSessionConfig{Beacon: "target", SampleRateHz: 8, Window: 6, Step: 600})
	if err != nil {
		t.Fatalf("NewTrackSession: %v", err)
	}
	obs := sessionObs(400)
	pushAll(t, s, obs[:80]) // warm: sizes the window buffer, emits the first fix
	i := 80
	allocs := testing.AllocsPerRun(300, func() {
		pt, err := s.Push(obs[i])
		i++
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
		if pt != nil {
			t.Fatalf("unexpected fix at t=%.2f — the measured run must stay inside a window", obs[i-1].T)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm non-fix Push allocates %.2f per call, want 0", allocs)
	}
}

// TestTrackSessionDegradedInput: mangled observations are dropped, not
// fatal, and the next fix reports the degradation.
func TestTrackSessionDegradedInput(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := newSession(t, eng)
	obs := sessionObs(80)
	var fixes []TrackPoint
	for i, o := range obs {
		if i%10 == 3 {
			bad := o
			bad.RSS = math.NaN()
			if pt, err := s.Push(bad); err != nil || pt != nil {
				t.Fatalf("Push(NaN) = (%v, %v), want dropped", pt, err)
			}
			dup := o
			dup.T = o.T - 0.5 // out of order
			if pt, err := s.Push(dup); err != nil || pt != nil {
				t.Fatalf("Push(out-of-order) = (%v, %v), want dropped", pt, err)
			}
		}
		pt, err := s.Push(o)
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
		if pt != nil {
			fixes = append(fixes, *pt)
		}
	}
	if len(fixes) == 0 {
		t.Fatal("no fixes despite mostly clean input")
	}
	h := fixes[len(fixes)-1].Health
	if h.Status != HealthDegraded {
		t.Fatalf("fix health = %v, want degraded", h.Status)
	}
	if !h.Has(ReasonNonFiniteRSS) || !h.Has(ReasonTimestampAnomaly) {
		t.Errorf("fix health reasons = %v, want non-finite-rss and timestamp-anomaly", h.Reasons)
	}
}

func TestRestoreRejectsWrongVersion(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := newSession(t, eng)
	pushAll(t, s, sessionObs(60))
	cp := s.Checkpoint()
	cp.Version = 99
	if _, err := eng.RestoreTrackSession(cp); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("restore of version 99 = %v, want ErrCheckpointVersion", err)
	}
}

func TestRestoreRejectsAblationMismatch(t *testing.T) {
	engFull, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s := newSession(t, engFull)
	pushAll(t, s, sessionObs(60))
	cp := s.Checkpoint()

	noANF := DefaultConfig()
	noANF.DisableANF = true
	engNoANF, err := NewEngine(noANF)
	if err != nil {
		t.Fatalf("NewEngine(no ANF): %v", err)
	}
	if _, err := engNoANF.RestoreTrackSession(cp); err == nil {
		t.Fatal("restoring an ANF checkpoint into a no-ANF engine succeeded, want error")
	}
}
