package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"locble/internal/env"
	"locble/internal/estimate"
	"locble/internal/rf"
	"locble/internal/robust"
	"locble/internal/sigproc"
)

// SessionCheckpointVersion is the current checkpoint format version.
// The version is bumped whenever the serialized state changes shape or
// meaning; Restore rejects any other version rather than guessing (a
// checkpoint is filter state — a misinterpreted field silently corrupts
// every subsequent fix, which is worse than a cold start).
//
// Version history:
//
//	1 — initial format (filters, window, fix schedule, last fix).
//	2 — degradation-ladder state: the last fix carries its FixMode, and
//	    the checkpoint adds the Γ-drift history, recalibration and
//	    eviction counters. A v1 restore would silently land on the
//	    wrong ladder rung, so v1 checkpoints are rejected.
//	3 — explicit TX-power-drift recalibration state: the estimator
//	    field now holds the session's creation-time base config, and
//	    the cumulative Γ-band shift is a separate gamma_shift field
//	    that Restore re-applies. v2 stored the live (possibly
//	    re-anchored) band inside the estimator config with nothing
//	    marking it as shifted, so a restore path that rebuilt the
//	    session from nominal configuration silently reverted the Γ
//	    prior while keeping the recalibration counter — the two facts
//	    disagreed and nothing could tell. v2 checkpoints are rejected.
const SessionCheckpointVersion = 3

// Errors.
var (
	// ErrCheckpointVersion is returned when a checkpoint was written by
	// an incompatible format version.
	ErrCheckpointVersion = errors.New("core: unsupported session checkpoint version")
	// ErrSessionConfig is returned for an invalid session configuration.
	ErrSessionConfig = errors.New("core: invalid track-session config")
	// ErrCorruptCheckpoint marks a stored checkpoint that cannot be
	// decoded — the bytes are damaged or not a checkpoint at all.
	// Stores wrap it so restore paths can distinguish "this beacon's
	// state is unrecoverable, quarantine it and cold-start" from a
	// transient storage error worth failing the request over.
	ErrCorruptCheckpoint = errors.New("core: corrupt session checkpoint")
)

// TrackSessionConfig configures a streaming tracking session.
type TrackSessionConfig struct {
	// Beacon names the tracked beacon (for bookkeeping; the session
	// consumes already-demultiplexed observations).
	Beacon string
	// Window and Step mirror TrackBeacon: a fix every Step seconds,
	// fitted on the last Window seconds. Zero selects 6 s / 2 s.
	Window, Step float64
	// SampleRateHz is the RSS report rate the streaming ANF is designed
	// for (zero selects the pipeline default of 9 Hz).
	SampleRateHz float64
	// Estimator overrides the engine's estimator configuration (nil
	// keeps it). Callers anchoring Γ to a beacon's advertised power set
	// GammaSoftMin/Max here, as Engine.prepare does for batch runs.
	Estimator *estimate.Config
}

// TrackSession is the streaming counterpart of TrackBeacon: a
// long-running server feeds fused observations in one at a time and
// receives a location fix whenever a window completes. All filter state
// is held incrementally — the streaming BF+AKF cascade, the EnvAware
// change monitor, and the sliding observation window — so the session
// can be checkpointed at any observation boundary and restored in a
// fresh process, resuming sample-for-sample: every fix after the
// restore is bit-identical to the uninterrupted run's.
//
// A session is owned by one goroutine (one per tracked beacon); it is
// not safe for concurrent Push calls.
type TrackSession struct {
	eng    *Engine
	beacon string
	window float64
	step   float64
	fs     float64
	// estCfg is the live estimator config: the creation-time base plus
	// any TX-power-drift re-anchoring of the Γ band. baseEstCfg keeps
	// the base so a checkpoint can record "configuration" and "drift
	// state" separately instead of conflating them.
	estCfg     estimate.Config
	baseEstCfg estimate.Config

	akf *sigproc.AKF // nil when the engine disables ANF
	mon *env.Monitor // nil when the engine disables EnvAware

	buf      []estimate.Obs // fused observations inside the window
	hasFirst bool
	firstT   float64
	nextFix  float64
	last     *TrackPoint

	pushed       int64
	droppedBad   int64 // non-finite fields
	droppedOrder int64 // out-of-order timestamps
	fixes        int64

	// Degradation-ladder state: gammaHist is a fixed ring holding the
	// running window of fitted Γ values the TX-power-drift detector
	// takes its median over (gammaN filled entries, gammaPos next write
	// slot; the median is order-independent, so ring layout never
	// matters). gammaScratch is the median's sort buffer — both live
	// inside the session so a warm Push allocates nothing. gammaShift
	// is the cumulative band re-anchoring applied on top of baseEstCfg;
	// recals counts re-anchorings; evicted counts last-known fixes
	// dropped for exceeding the staleness bound.
	gammaHist    [driftHistLen]float64
	gammaScratch [driftHistLen]float64
	gammaN       int
	gammaPos     int
	gammaShift   float64
	recals       int64
	evicted      int64

	curEnv rf.Environment
	hasEnv bool
}

// NewTrackSession starts a streaming tracking session on this engine's
// pipeline configuration (ANF design, EnvAware window/hysteresis,
// estimator settings).
func (e *Engine) NewTrackSession(cfg TrackSessionConfig) (*TrackSession, error) {
	if cfg.Beacon == "" {
		return nil, fmt.Errorf("%w: empty beacon name", ErrSessionConfig)
	}
	if cfg.Window == 0 {
		cfg.Window = 6
	}
	if cfg.Step == 0 {
		cfg.Step = 2
	}
	if cfg.SampleRateHz == 0 {
		cfg.SampleRateHz = 9
	}
	if cfg.Window < 0 || cfg.Step < 0 || cfg.SampleRateHz < 0 {
		return nil, fmt.Errorf("%w: negative window/step/rate", ErrSessionConfig)
	}
	estCfg := e.cfg.Estimator
	if cfg.Estimator != nil {
		estCfg = *cfg.Estimator
	}
	estCfg.Cancel = nil // sessions are push-driven; nothing to cancel mid-fit

	s := &TrackSession{
		eng:        e,
		beacon:     cfg.Beacon,
		window:     cfg.Window,
		step:       cfg.Step,
		fs:         cfg.SampleRateHz,
		estCfg:     estCfg,
		baseEstCfg: estCfg,
	}
	if !e.cfg.DisableANF {
		bf, err := sigproc.NewButterworth(e.cfg.ButterworthOrder,
			math.Min(e.cfg.CutoffHz, cfg.SampleRateHz/2*0.8), cfg.SampleRateHz)
		if err != nil {
			return nil, fmt.Errorf("core: session ANF design: %w", err)
		}
		akf := sigproc.NewAKF(bf)
		if e.cfg.AKFMaxAlpha > 0 {
			akf.MaxAlpha = e.cfg.AKFMaxAlpha
		}
		s.akf = akf
	}
	if !e.cfg.DisableEnvAware {
		s.mon = env.NewMonitor(e.clf, e.cfg.EnvWindow, e.cfg.EnvHysteresis)
	}
	return s, nil
}

// Push feeds one fused observation (time, raw RSS, relative
// displacement) into the session. It returns a fix when this
// observation completed a window, nil otherwise. Non-finite or
// out-of-order observations are dropped (counted, and reflected in the
// next fix's Health) — a live wire feed duplicates and mangles.
func (s *TrackSession) Push(o estimate.Obs) (*TrackPoint, error) {
	s.pushed++
	if !finiteObs(o) {
		s.droppedBad++
		return nil, nil
	}
	if len(s.buf) > 0 && o.T <= s.buf[len(s.buf)-1].T {
		s.droppedOrder++
		return nil, nil
	}

	raw := o.RSS
	if s.akf != nil {
		o.RSS = s.akf.Process(raw)
	}
	if s.mon != nil {
		_, _, changed, err := s.mon.Push(raw)
		if err != nil {
			return nil, fmt.Errorf("core: session EnvAware: %w", err)
		}
		if cur, ok := s.mon.Current(); ok {
			s.curEnv, s.hasEnv = cur, true
		}
		if changed {
			// Streaming analog of Algorithm 1's regression restart: the
			// change was detected at the end of a hysteresis run of
			// windows but happened inside it, so keep only those recent
			// samples — they belong to the new environment — and let the
			// old ones age out instead of mixing channel models.
			keep := s.eng.cfg.EnvWindow * s.eng.cfg.EnvHysteresis
			if keep < 1 {
				keep = 1
			}
			if len(s.buf) > keep {
				s.buf = append(s.buf[:0], s.buf[len(s.buf)-keep:]...)
			}
		}
	}

	if !s.hasFirst {
		s.hasFirst = true
		s.firstT = o.T
		s.nextFix = o.T + s.window
	}
	s.buf = append(s.buf, o)
	lo := 0
	for lo < len(s.buf) && s.buf[lo].T < o.T-s.window {
		lo++
	}
	if lo > 0 {
		s.buf = append(s.buf[:0], s.buf[lo:]...)
	}

	if o.T < s.nextFix {
		return nil, nil
	}
	tEnd := s.nextFix
	for s.nextFix <= o.T {
		s.nextFix += s.step
	}
	if len(s.buf) < s.estCfg.MinSamples {
		return s.staleFix(tEnd), nil
	}

	spReg := s.eng.met.stRegress.Start()
	est, err := estimate.Run(s.buf, s.estCfg)
	spReg.End()
	if err != nil || !finiteEstimate(est) {
		// A window that fits badly yields no full fix; the ladder's
		// bottom rung re-emits the last real fix while it is fresh.
		return s.staleFix(tEnd), nil
	}
	if est.Ambiguous && s.last != nil {
		prev := estimate.Candidate{X: s.last.Est.X, H: s.last.Est.H}
		best := est.Candidates[0]
		for _, c := range est.Candidates[1:] {
			if c.Dist(prev) < best.Dist(prev) {
				best = c
			}
		}
		resolved := *est
		resolved.X, resolved.H = best.X, best.H
		est = &resolved
	}
	s.noteGamma(est.Gamma)
	pt := TrackPoint{
		T:           tEnd,
		Est:         est,
		WindowStart: s.buf[0].T,
		Samples:     len(s.buf),
		Health:      s.health(),
		Mode:        ModeFull,
	}
	s.last = &pt
	s.fixes++
	s.eng.met.sessFixes.Inc()
	return &pt, nil
}

// staleFix is the streaming last-known rung: when a due window produced
// no full fix, re-emit the previous real fix while it is within the
// staleness bound. Beyond the bound the tracking state is evicted — an
// ancient fix must neither be shown nor steer later mirror-ambiguity
// resolution.
func (s *TrackSession) staleFix(tEnd float64) *TrackPoint {
	lad := s.eng.cfg.Ladder.withDefaults()
	if lad.DisableLastKnown || s.last == nil {
		return nil
	}
	if tEnd-s.last.T > lad.StaleMaxAge {
		s.last = nil
		s.evicted++
		s.eng.met.sessEvicted.Inc()
		return nil
	}
	pt := staleFixFrom(s.last, tEnd, s.health())
	s.fixes++
	s.eng.met.sessFixes.Inc()
	s.eng.met.modeLastKnown.Inc()
	return &pt
}

// TX-power-drift detection: a dying battery shifts the beacon's real
// transmit power — and with it every fitted Γ — downward over minutes.
// The detector keeps a short running window of fitted Γ values; when
// their median leaves the plausibility band's center by more than the
// threshold, the band is re-anchored around the drifted value so the
// estimator's prior stops fighting the data. The threshold exceeds the
// normal fitted-Γ-to-band-center offset of a healthy beacon, so clean
// sessions never recalibrate.
const (
	driftHistLen     = 8
	driftMinFixes    = 5
	driftThresholdDB = 8.0
)

// noteGamma folds one full fix's fitted Γ into the drift detector,
// re-anchoring the estimator's Γ plausibility band when the running
// median has drifted beyond the threshold.
func (s *TrackSession) noteGamma(gamma float64) {
	if s.estCfg.GammaSoftMin == 0 && s.estCfg.GammaSoftMax == 0 {
		return // no band to anchor
	}
	s.gammaHist[s.gammaPos] = gamma
	s.gammaPos++
	if s.gammaPos == driftHistLen {
		s.gammaPos = 0
	}
	if s.gammaN < driftHistLen {
		s.gammaN++
	}
	if s.gammaN < driftMinFixes {
		return
	}
	n := copy(s.gammaScratch[:], s.gammaHist[:s.gammaN])
	med := robust.MedianInPlace(s.gammaScratch[:n])
	center := (s.estCfg.GammaSoftMin + s.estCfg.GammaSoftMax) / 2
	if math.Abs(med-center) > driftThresholdDB {
		shift := med - center
		s.estCfg.GammaSoftMin += shift
		s.estCfg.GammaSoftMax += shift
		s.gammaShift += shift
		s.gammaN, s.gammaPos = 0, 0 // re-measure against the new anchor
		s.recals++
		s.eng.met.sessRecals.Inc()
	}
}

// gammaHistOldestFirst appends the drift window to dst oldest-first:
// while the ring is filling, entries 0..gammaN-1 are already in push
// order; once it wraps, the oldest entry sits at the next write slot.
// The linear form is what checkpoints carry — a restored ring rebuilt
// from it evicts entries in the same order the live one would.
func (s *TrackSession) gammaHistOldestFirst(dst []float64) []float64 {
	if s.gammaN < driftHistLen {
		return append(dst, s.gammaHist[:s.gammaN]...)
	}
	dst = append(dst, s.gammaHist[s.gammaPos:]...)
	return append(dst, s.gammaHist[:s.gammaPos]...)
}

// health summarizes the stream quality seen so far.
func (s *TrackSession) health() Health {
	h := Health{}
	if s.droppedBad > 0 {
		h.add(ReasonNonFiniteRSS)
	}
	if s.droppedOrder > 0 {
		h.add(ReasonTimestampAnomaly)
	}
	if s.recals > 0 {
		h.add(ReasonTxPowerDrift)
	}
	if s.evicted > 0 {
		h.add(ReasonBeaconEvicted)
	}
	h.Dropped = int(s.droppedBad + s.droppedOrder)
	if len(h.Reasons) > 0 {
		h.Status = HealthDegraded
	}
	return h
}

func finiteObs(o estimate.Obs) bool {
	for _, v := range []float64{o.T, o.RSS, o.P, o.Q} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Beacon returns the tracked beacon's name.
func (s *TrackSession) Beacon() string { return s.beacon }

// Fixes returns how many fixes the session has emitted.
func (s *TrackSession) Fixes() int64 { return s.fixes }

// Pushed returns how many observations were fed in (including dropped).
func (s *TrackSession) Pushed() int64 { return s.pushed }

// LastFix returns the most recent fix, or nil before the first.
func (s *TrackSession) LastFix() *TrackPoint { return s.last }

// Environment returns EnvAware's current classification of the link.
func (s *TrackSession) Environment() (rf.Environment, bool) { return s.curEnv, s.hasEnv }

// SessionCheckpoint is the versioned serialized state of a TrackSession.
// It captures everything the next Push depends on: the ANF cascade's
// delay lines and adaptation, the EnvAware window and hysteresis, the
// sliding observation window, the fix schedule, and the last fix (for
// mirror-ambiguity resolution). It deliberately does NOT capture the
// engine configuration or the trained classifier — those are
// configuration, and a checkpoint must be restored into an engine
// configured identically to the one that wrote it.
type SessionCheckpoint struct {
	Version int    `json:"version"`
	Beacon  string `json:"beacon"`

	Window       float64 `json:"window"`
	Step         float64 `json:"step"`
	SampleRateHz float64 `json:"sample_rate_hz"`
	// Estimator is the session's creation-time base configuration. Any
	// TX-power-drift re-anchoring of its Γ band lives in GammaShift —
	// Restore applies base + shift, so drift state survives a restart
	// explicitly instead of hiding inside a mutated config.
	Estimator estimate.Config `json:"estimator"`

	AKF *sigproc.AKFState `json:"akf,omitempty"`
	Env *env.MonitorState `json:"env,omitempty"`

	WindowObs []estimate.Obs `json:"window_obs"`
	HasFirst  bool           `json:"has_first"`
	FirstT    float64        `json:"first_t"`
	NextFix   float64        `json:"next_fix"`
	LastFix   *TrackPoint    `json:"last_fix,omitempty"`

	Pushed       int64 `json:"pushed"`
	DroppedBad   int64 `json:"dropped_bad"`
	DroppedOrder int64 `json:"dropped_order"`
	Fixes        int64 `json:"fixes"`

	// Degradation-ladder state: the Γ-drift median window (oldest
	// first), the cumulative Γ-band shift accrued by recalibrations,
	// and the recalibration/eviction counters. LastFix carries its
	// FixMode.
	GammaHist      []float64 `json:"gamma_hist,omitempty"`
	GammaShift     float64   `json:"gamma_shift"`
	Recalibrations int64     `json:"recalibrations"`
	Evicted        int64     `json:"evicted"`
}

// Checkpoint captures the session's complete streaming state. Take it
// between Push calls (the session is single-goroutine, so any moment
// the owner is not inside Push is a consistent boundary).
func (s *TrackSession) Checkpoint() *SessionCheckpoint {
	cp := &SessionCheckpoint{
		Version:      SessionCheckpointVersion,
		Beacon:       s.beacon,
		Window:       s.window,
		Step:         s.step,
		SampleRateHz: s.fs,
		Estimator:    s.baseEstCfg,
		WindowObs:    append([]estimate.Obs(nil), s.buf...),
		HasFirst:     s.hasFirst,
		FirstT:       s.firstT,
		NextFix:      s.nextFix,
		Pushed:       s.pushed,
		DroppedBad:   s.droppedBad,
		DroppedOrder: s.droppedOrder,
		Fixes:        s.fixes,

		GammaHist:      s.gammaHistOldestFirst(nil),
		GammaShift:     s.gammaShift,
		Recalibrations: s.recals,
		Evicted:        s.evicted,
	}
	if s.akf != nil {
		st := s.akf.Snapshot()
		cp.AKF = &st
	}
	if s.mon != nil {
		st := s.mon.Snapshot()
		cp.Env = &st
	}
	if s.last != nil {
		last := *s.last
		cp.LastFix = &last
	}
	s.eng.met.sessCheckpoints.Inc()
	return cp
}

// WriteCheckpoint serializes a checkpoint as JSON.
func (s *TrackSession) WriteCheckpoint(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(s.Checkpoint()); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// RestoreTrackSession rebuilds a session from a checkpoint taken in a
// previous process. The engine must be configured identically to the
// one that wrote the checkpoint (same ANF design, EnvAware settings and
// classifier training); a detectable mismatch — wrong version, filter
// design, or ablation switches — is an error rather than a divergent
// resume. The restore depth (window samples resumed without
// re-filtering) is recorded in "core.session.restore.depth".
func (e *Engine) RestoreTrackSession(cp *SessionCheckpoint) (*TrackSession, error) {
	if cp.Version != SessionCheckpointVersion {
		return nil, fmt.Errorf("%w: %d (supported: %d)",
			ErrCheckpointVersion, cp.Version, SessionCheckpointVersion)
	}
	estCfg := cp.Estimator
	s, err := e.NewTrackSession(TrackSessionConfig{
		Beacon:       cp.Beacon,
		Window:       cp.Window,
		Step:         cp.Step,
		SampleRateHz: cp.SampleRateHz,
		Estimator:    &estCfg,
	})
	if err != nil {
		return nil, err
	}
	switch {
	case cp.AKF != nil && s.akf == nil:
		return nil, fmt.Errorf("%w: checkpoint carries ANF state but the engine disables ANF",
			sigproc.ErrStateMismatch)
	case cp.AKF == nil && s.akf != nil:
		return nil, fmt.Errorf("%w: checkpoint has no ANF state but the engine enables ANF",
			sigproc.ErrStateMismatch)
	case cp.AKF != nil:
		if err := s.akf.Restore(*cp.AKF); err != nil {
			return nil, fmt.Errorf("core: restore ANF: %w", err)
		}
	}
	switch {
	case cp.Env != nil && s.mon == nil:
		return nil, fmt.Errorf("%w: checkpoint carries EnvAware state but the engine disables EnvAware",
			sigproc.ErrStateMismatch)
	case cp.Env == nil && s.mon != nil:
		return nil, fmt.Errorf("%w: checkpoint has no EnvAware state but the engine enables EnvAware",
			sigproc.ErrStateMismatch)
	case cp.Env != nil:
		s.mon.Restore(*cp.Env)
		if cur, ok := s.mon.Current(); ok {
			s.curEnv, s.hasEnv = cur, true
		}
	}
	s.buf = append(s.buf[:0], cp.WindowObs...)
	s.hasFirst = cp.HasFirst
	s.firstT = cp.FirstT
	s.nextFix = cp.NextFix
	if cp.LastFix != nil {
		last := *cp.LastFix
		s.last = &last
	}
	s.pushed = cp.Pushed
	s.droppedBad = cp.DroppedBad
	s.droppedOrder = cp.DroppedOrder
	s.fixes = cp.Fixes
	// Re-apply the drift state on top of the base config: the shifted Γ
	// band is what the estimator was actually running with when the
	// checkpoint was taken.
	s.gammaShift = cp.GammaShift
	if s.estCfg.GammaSoftMin != 0 || s.estCfg.GammaSoftMax != 0 {
		s.estCfg.GammaSoftMin += cp.GammaShift
		s.estCfg.GammaSoftMax += cp.GammaShift
	}
	hist := cp.GammaHist
	if len(hist) > driftHistLen {
		hist = hist[len(hist)-driftHistLen:]
	}
	s.gammaN = copy(s.gammaHist[:], hist)
	s.gammaPos = s.gammaN % driftHistLen
	s.recals = cp.Recalibrations
	s.evicted = cp.Evicted
	e.met.sessRestores.Inc()
	e.met.sessRestoreDepth.Observe(float64(len(cp.WindowObs)))
	return s, nil
}

// RestoreTrackSessionFrom reads a JSON checkpoint (written by
// WriteCheckpoint) and restores the session.
func (e *Engine) RestoreTrackSessionFrom(r io.Reader) (*TrackSession, error) {
	var cp SessionCheckpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return e.RestoreTrackSession(&cp)
}
