package core

import (
	"context"
	"runtime"
	"sync"

	"locble/internal/estimate"
	"locble/internal/sim"
)

// locateScratch bundles the reusable per-run state of one pipeline
// execution: the estimator's solver (simplex, centroid, residual and
// seed arenas) and the zero-phase ANF output buffer. One scratch serves
// one pipeline run at a time; LocateAll's shard workers each own one
// for their lifetime, and every other entry point borrows one from a
// sync.Pool, so steady-state traffic re-runs the hot path on warm
// buffers instead of reallocating them per call.
type locateScratch struct {
	solver *estimate.Solver
	fbuf   []float64
}

var locateScratchPool = sync.Pool{
	New: func() any { return &locateScratch{solver: estimate.NewSolver()} },
}

func getLocateScratch() *locateScratch   { return locateScratchPool.Get().(*locateScratch) }
func putLocateScratch(sc *locateScratch) { locateScratchPool.Put(sc) }

// locateJob is one beacon's unit of work inside a LocateAll fan-out.
// The result slot is owned by this job until wg.Done — the submitting
// batch only reads it after wg.Wait, so no further synchronization is
// needed on the slot itself.
type locateJob struct {
	ctx  context.Context
	tr   *sim.Trace
	name string
	res  *BeaconResult
	wg   *sync.WaitGroup
}

// shardQueueDepth is each shard channel's buffer. Submission blocks
// once a shard is this far behind, which is pure backpressure — the
// worker always drains, so a full shard delays the submitter without
// any possibility of deadlock.
const shardQueueDepth = 64

// shardPool is the engine's persistent LocateAll worker pool: one
// goroutine per GOMAXPROCS, each owning one shard channel and one
// locateScratch for its whole life. Beacons hash to shards by name
// (FNV-1a), so repeated batches over the same beacon set keep hitting
// the same warm arenas. flight counts active LocateAll batches;
// Engine.Close waits for it before closing the shard channels, so a
// batch never races a shutdown into a send-on-closed-channel panic.
type shardPool struct {
	shards []chan locateJob
	flight sync.WaitGroup
	done   sync.WaitGroup
}

func newShardPool(e *Engine) *shardPool {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p := &shardPool{shards: make([]chan locateJob, n)}
	for i := range p.shards {
		ch := make(chan locateJob, shardQueueDepth)
		p.shards[i] = ch
		p.done.Add(1)
		go e.shardWorker(p, ch)
	}
	return p
}

// shardWorker is one pool goroutine: it drains its shard channel until
// Close closes it, running every job on its private scratch.
func (e *Engine) shardWorker(p *shardPool, ch chan locateJob) {
	defer p.done.Done()
	sc := getLocateScratch()
	defer putLocateScratch(sc)
	for job := range ch {
		e.runLocateJob(job, sc)
	}
}

// runLocateJob executes one beacon's pipeline and fills its result
// slot. It is the single code path for pooled, inline-fallback and
// sequential execution, so all three report cancellation, health and
// the concurrency gauge identically.
func (e *Engine) runLocateJob(job locateJob, sc *locateScratch) {
	defer job.wg.Done()
	e.met.concurrency.Add(1)
	defer e.met.concurrency.Add(-1)
	var (
		m   *Measurement
		err error
	)
	if job.ctx.Err() != nil {
		err = canceledErr(job.ctx, "locate "+job.name)
	} else {
		m, err = e.locateContextWith(job.ctx, job.tr, job.name, sc)
	}
	res := BeaconResult{Name: job.name, M: m, Err: err}
	if err != nil {
		res.Health = HealthFromError(err)
	} else {
		res.Health = m.Health
	}
	*job.res = res
}

// shardIndex maps a beacon name onto one of n shards with FNV-1a.
func shardIndex(name string, n int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

// acquirePool returns the engine's worker pool with a flight slot held
// (the caller must flight.Done when its batch completes), starting the
// pool on first use. It returns nil after Close — callers fall back to
// inline execution.
func (e *Engine) acquirePool() *shardPool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.poolClosed {
		return nil
	}
	if e.locPool == nil {
		e.locPool = newShardPool(e)
	}
	e.locPool.flight.Add(1)
	return e.locPool
}

// Close shuts the persistent LocateAll worker pool down: it waits for
// in-flight batches, closes the shard channels and joins the workers.
// Close is idempotent, and a closed engine stays fully usable — every
// entry point still works; LocateAll merely runs its fan-out inline
// instead of on pool workers. Long-running hosts that create engines
// dynamically should Close them to release the pool goroutines.
func (e *Engine) Close() error {
	e.poolMu.Lock()
	if e.poolClosed {
		e.poolMu.Unlock()
		return nil
	}
	e.poolClosed = true
	p := e.locPool
	e.locPool = nil
	e.poolMu.Unlock()
	if p == nil {
		return nil
	}
	p.flight.Wait()
	for _, ch := range p.shards {
		close(ch)
	}
	p.done.Wait()
	return nil
}
