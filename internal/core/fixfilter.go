package core

import (
	"math"

	"locble/internal/mathx"
)

// FixFilter is a 2-D constant-velocity Kalman filter over tracking fixes:
// raw sliding-window fixes are individually noisy (a couple of metres);
// smoothing them with a motion model yields a stable track for the UI.
// State: [x, y, vx, vy].
type FixFilter struct {
	// ProcessAccel is the assumed RMS acceleration of the target in
	// m/s² (0.3 suits a browsing shopper; 0 means stationary).
	ProcessAccel float64
	// MeasSigma is the per-fix position noise in metres.
	MeasSigma float64

	x      *mathx.Matrix // 4×1 state
	p      *mathx.Matrix // 4×4 covariance
	lastT  float64
	primed bool
}

// NewFixFilter returns a smoother with the given motion assumptions.
func NewFixFilter(processAccel, measSigma float64) *FixFilter {
	if measSigma <= 0 {
		measSigma = 1.5
	}
	return &FixFilter{ProcessAccel: processAccel, MeasSigma: measSigma}
}

// SmoothedFix is a filtered track point.
type SmoothedFix struct {
	T         float64
	X, Y      float64
	VX, VY    float64
	PosStdDev float64 // 1-σ position uncertainty (metres)
}

// Update folds one raw fix in and returns the smoothed state.
func (f *FixFilter) Update(t, mx, my float64) SmoothedFix {
	if !f.primed {
		f.x = mathx.NewColumn([]float64{mx, my, 0, 0})
		f.p = mathx.Identity(4).Scale(f.MeasSigma * f.MeasSigma)
		f.p.Set(2, 2, 1)
		f.p.Set(3, 3, 1)
		f.lastT = t
		f.primed = true
		return f.state(t)
	}
	dt := t - f.lastT
	if dt < 0 {
		dt = 0
	}
	f.lastT = t

	// Predict: x' = F·x, P' = F·P·Fᵀ + Q.
	fm := mathx.Identity(4)
	fm.Set(0, 2, dt)
	fm.Set(1, 3, dt)
	f.x, _ = fm.Mul(f.x)
	fp, _ := fm.Mul(f.p)
	f.p, _ = fp.Mul(fm.T())
	q := f.ProcessAccel * f.ProcessAccel
	// Discrete white-noise acceleration model.
	dt2, dt3, dt4 := dt*dt, dt*dt*dt, dt*dt*dt*dt
	qm := mathx.NewMatrix(4, 4)
	qm.Set(0, 0, q*dt4/4)
	qm.Set(1, 1, q*dt4/4)
	qm.Set(0, 2, q*dt3/2)
	qm.Set(2, 0, q*dt3/2)
	qm.Set(1, 3, q*dt3/2)
	qm.Set(3, 1, q*dt3/2)
	qm.Set(2, 2, q*dt2)
	qm.Set(3, 3, q*dt2)
	f.p, _ = f.p.Add(qm)

	// Update with the position measurement z = H·x + v.
	r := f.MeasSigma * f.MeasSigma
	// Innovation.
	ix := mx - f.x.At(0, 0)
	iy := my - f.x.At(1, 0)
	// S = H·P·Hᵀ + R (2×2), K = P·Hᵀ·S⁻¹ (4×2). H selects rows 0,1.
	s00 := f.p.At(0, 0) + r
	s01 := f.p.At(0, 1)
	s10 := f.p.At(1, 0)
	s11 := f.p.At(1, 1) + r
	det := s00*s11 - s01*s10
	if math.Abs(det) < 1e-12 {
		return f.state(t)
	}
	inv00, inv01 := s11/det, -s01/det
	inv10, inv11 := -s10/det, s00/det
	for i := 0; i < 4; i++ {
		k0 := f.p.At(i, 0)*inv00 + f.p.At(i, 1)*inv10
		k1 := f.p.At(i, 0)*inv01 + f.p.At(i, 1)*inv11
		f.x.Set(i, 0, f.x.At(i, 0)+k0*ix+k1*iy)
	}
	// Joseph-free covariance update P = (I − K·H)·P using the gains
	// recomputed per column for clarity.
	k := mathx.NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		k.Set(i, 0, f.p.At(i, 0)*inv00+f.p.At(i, 1)*inv10)
		k.Set(i, 1, f.p.At(i, 0)*inv01+f.p.At(i, 1)*inv11)
	}
	kh := mathx.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		kh.Set(i, 0, k.At(i, 0))
		kh.Set(i, 1, k.At(i, 1))
	}
	ikH, _ := mathx.Identity(4).Sub(kh)
	f.p, _ = ikH.Mul(f.p)
	return f.state(t)
}

func (f *FixFilter) state(t float64) SmoothedFix {
	sd := math.Sqrt(math.Max(f.p.At(0, 0)+f.p.At(1, 1), 0) / 2)
	return SmoothedFix{
		T:         t,
		X:         f.x.At(0, 0),
		Y:         f.x.At(1, 0),
		VX:        f.x.At(2, 0),
		VY:        f.x.At(3, 0),
		PosStdDev: sd,
	}
}

// SmoothFixes runs the filter over a whole fix sequence.
func SmoothFixes(points []TrackPoint, processAccel, measSigma float64) []SmoothedFix {
	f := NewFixFilter(processAccel, measSigma)
	out := make([]SmoothedFix, 0, len(points))
	for _, p := range points {
		out = append(out, f.Update(p.T, p.Est.X, p.Est.H))
	}
	return out
}
