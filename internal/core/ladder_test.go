package core

import (
	"errors"
	"math"
	"testing"

	"locble/internal/estimate"
	"locble/internal/sim"
)

func TestDetectCloneAnomaly(t *testing.T) {
	cfg := DefaultSanitizeConfig()
	mk := func(rssi func(i int) float64, dt float64, n int) []sim.BeaconObservation {
		obs := make([]sim.BeaconObservation, n)
		for i := range obs {
			obs[i] = sim.BeaconObservation{T: float64(i) * dt, RSSI: rssi(i)}
		}
		return obs
	}

	t.Run("interleaved-clone-flagged", func(t *testing.T) {
		// Two transmitters on one identity: readings alternate between
		// −55 (near) and −80 (far) every report — physically impossible
		// for a single source.
		var h Health
		detectCloneAnomaly(mk(func(i int) float64 {
			if i%2 == 0 {
				return -55
			}
			return -80
		}, 0.11, 40), cfg, &h)
		if !h.Has(ReasonBeaconAnomaly) {
			t.Fatalf("interleaved clone not flagged: %v", h)
		}
	})

	t.Run("step-change-clean", func(t *testing.T) {
		// An honest environment transition: one big monotone step.
		var h Health
		detectCloneAnomaly(mk(func(i int) float64 {
			if i < 20 {
				return -55
			}
			return -80
		}, 0.11, 40), cfg, &h)
		if h.Has(ReasonBeaconAnomaly) {
			t.Fatalf("honest step change flagged as clone: %v", h)
		}
	})

	t.Run("jitter-clean", func(t *testing.T) {
		// Honest channel jitter of a few dB never reaches the delta bar.
		var h Health
		detectCloneAnomaly(mk(func(i int) float64 {
			return -65 + 5*math.Sin(float64(i)*2.4)
		}, 0.11, 80), cfg, &h)
		if h.Has(ReasonBeaconAnomaly) {
			t.Fatalf("channel jitter flagged as clone: %v", h)
		}
	})

	t.Run("slow-alternation-clean", func(t *testing.T) {
		// The same two levels but seconds apart — a walking observer
		// crossing a boundary repeatedly, not a clone.
		var h Health
		detectCloneAnomaly(mk(func(i int) float64 {
			if i%2 == 0 {
				return -55
			}
			return -80
		}, 2.0, 40), cfg, &h)
		if h.Has(ReasonBeaconAnomaly) {
			t.Fatalf("slow alternation flagged as clone: %v", h)
		}
	})
}

// sparseSessionObs emits one observation every gap seconds along a walk —
// enough to keep a session's clock advancing while every due window
// holds too few samples to fit.
func sparseSessionObs(start, gap float64, n int) []estimate.Obs {
	obs := make([]estimate.Obs, n)
	for i := range obs {
		t := start + float64(i)*gap
		obs[i] = estimate.Obs{T: t, RSS: -60 - float64(i%5), P: -0.5 * t, Q: 0}
	}
	return obs
}

func TestSessionLastKnownThenEviction(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewTrackSession(TrackSessionConfig{Beacon: "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Dense healthy stream first: produce at least one real fix.
	var lastFull *TrackPoint
	for i := 0; i < 120; i++ {
		t0 := float64(i) * 0.11
		pt, err := s.Push(estimate.Obs{T: t0, RSS: -60 + 3*math.Sin(t0), P: -0.9 * t0, Q: -0.2 * t0})
		if err != nil {
			t.Fatal(err)
		}
		if pt != nil && pt.Mode == ModeFull {
			lastFull = pt
		}
	}
	if lastFull == nil {
		t.Fatal("dense stream produced no full fix")
	}

	// Starve the stream: one observation every 2.5 s. Once the dense
	// samples age out of the window, due windows hold too few samples,
	// so the ladder re-emits the last full fix until the staleness
	// bound, then evicts. (The first sparse windows still see buffered
	// dense samples and may legitimately fit.)
	start := 120 * 0.11
	var stale int
	evictedBefore := s.evicted
	for _, o := range sparseSessionObs(start, 2.5, 12) {
		pt, err := s.Push(o)
		if err != nil {
			t.Fatal(err)
		}
		if pt == nil {
			continue
		}
		switch pt.Mode {
		case ModeLastKnown:
			stale++
			if pt.Est != lastFull.Est {
				t.Errorf("stale fix does not re-emit the last real estimate")
			}
			if !pt.Health.Has(ReasonStaleFix) || pt.Health.Status != HealthDegraded {
				t.Errorf("stale fix health = %v", pt.Health)
			}
			if pt.Samples != 0 {
				t.Errorf("stale fix claims %d window samples", pt.Samples)
			}
		case ModeFull:
			if stale > 0 {
				t.Errorf("full fix emitted after the stream went stale")
			}
			lastFull = pt
		}
	}
	if stale == 0 {
		t.Errorf("starved stream emitted no last-known fixes")
	}
	if s.evicted == evictedBefore {
		t.Errorf("last-known state never evicted after %v s of starvation", 12*2.5)
	}
	if s.LastFix() != nil {
		t.Errorf("eviction must clear the last-known fix")
	}
	h := s.health()
	if !h.Has(ReasonBeaconEvicted) {
		t.Errorf("session health %v missing stale-beacon after eviction", h)
	}
}

func TestSessionTxPowerDriftRecalibration(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewTrackSession(TrackSessionConfig{Beacon: "b"})
	if err != nil {
		t.Fatal(err)
	}
	min0, max0 := s.estCfg.GammaSoftMin, s.estCfg.GammaSoftMax
	center0 := (min0 + max0) / 2

	// Healthy fitted Γ near the band center: no recalibration.
	for i := 0; i < 10; i++ {
		s.noteGamma(center0 + 3)
	}
	if s.recals != 0 {
		t.Fatalf("healthy Γ stream recalibrated %d times", s.recals)
	}

	// A dying battery: fitted Γ settles ~12 dB below the anchor.
	for i := 0; i < 10; i++ {
		s.noteGamma(center0 - 12)
	}
	if s.recals == 0 {
		t.Fatal("12 dB Γ drift never recalibrated")
	}
	newCenter := (s.estCfg.GammaSoftMin + s.estCfg.GammaSoftMax) / 2
	if math.Abs(newCenter-(center0-12)) > driftThresholdDB {
		t.Errorf("band re-anchored to %v, want near %v", newCenter, center0-12)
	}
	if s.estCfg.GammaSoftMax-s.estCfg.GammaSoftMin != max0-min0 {
		t.Errorf("recalibration changed the band width")
	}
	if h := s.health(); !h.Has(ReasonTxPowerDrift) {
		t.Errorf("session health %v missing txpower-drift after recalibration", h)
	}
}

func TestSessionCheckpointCarriesLadderState(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewTrackSession(TrackSessionConfig{Beacon: "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture ladder state: drift history, a recalibration, an
	// eviction, and a last fix with a non-default mode.
	center := (s.estCfg.GammaSoftMin + s.estCfg.GammaSoftMax) / 2
	for i := 0; i < 10; i++ {
		s.noteGamma(center - 12)
	}
	s.evicted = 2
	s.last = &TrackPoint{T: 9, Est: &estimate.Estimate{X: 1, H: 2}, Mode: ModeLastKnown}

	cp := s.Checkpoint()
	if cp.Version != 3 {
		t.Fatalf("checkpoint version = %d, want 3", cp.Version)
	}
	if cp.GammaShift == 0 {
		t.Fatalf("recalibrated session checkpointed gamma_shift = 0")
	}
	if cp.Estimator.GammaSoftMin != s.baseEstCfg.GammaSoftMin ||
		cp.Estimator.GammaSoftMax != s.baseEstCfg.GammaSoftMax {
		t.Errorf("checkpoint estimator config is not the creation-time base band")
	}
	r, err := eng.RestoreTrackSession(cp)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r.recals != s.recals || r.evicted != s.evicted {
		t.Errorf("restore lost counters: recals %d/%d evicted %d/%d",
			r.recals, s.recals, r.evicted, s.evicted)
	}
	if lh, rh := s.gammaHistOldestFirst(nil), r.gammaHistOldestFirst(nil); len(rh) != len(lh) {
		t.Errorf("restore lost Γ history: %d/%d entries", len(rh), len(lh))
	}
	if r.gammaShift != s.gammaShift {
		t.Errorf("restore lost the cumulative Γ shift: %v vs %v", r.gammaShift, s.gammaShift)
	}
	if r.estCfg.GammaSoftMin != s.estCfg.GammaSoftMin || r.estCfg.GammaSoftMax != s.estCfg.GammaSoftMax {
		t.Errorf("restore lost the recalibrated Γ band")
	}
	if r.LastFix() == nil || r.LastFix().Mode != ModeLastKnown {
		t.Errorf("restore lost the last fix's ladder mode")
	}

	// A v1 checkpoint (pre-ladder) must be rejected, not guessed at.
	cp1 := *cp
	cp1.Version = 1
	if _, err := eng.RestoreTrackSession(&cp1); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("restore of v1 checkpoint = %v, want ErrCheckpointVersion", err)
	}
}
