package core

import (
	"math"

	"locble/internal/estimate"
)

// Navigator implements LocBLE's navigation mode (paper Secs. 7.1, 7.3):
// after a measurement fixes the target position in the observer's start
// frame, standard dead reckoning with the step counter guides the user
// toward it. The navigator consumes the observer's evolving displacement
// track and emits bearing/distance advice.
type Navigator struct {
	// Target is the estimated target position in the start frame.
	Target estimate.Candidate
	// ArriveRadius is the distance at which navigation declares arrival.
	ArriveRadius float64
	// SourceHealth is the health of the measurement the target came
	// from; navigation toward a degraded fix advertises that in every
	// Advice so a UI can show "approximate" guidance.
	SourceHealth Health

	x, y    float64 // current dead-reckoned position
	heading float64 // current dead-reckoned heading
	mirror  *estimate.Candidate
}

// NewNavigator starts navigation toward the measured estimate.
func NewNavigator(est *estimate.Estimate) *Navigator {
	return &Navigator{
		Target:       estimate.Candidate{X: est.X, H: est.H},
		ArriveRadius: 1.0,
	}
}

// Update advances the dead-reckoned pose by one detected step of the
// given length at the given absolute heading.
func (n *Navigator) Update(stepLength, heading float64) {
	n.heading = heading
	n.x += stepLength * math.Cos(heading)
	n.y += stepLength * math.Sin(heading)
}

// SetPose overrides the dead-reckoned pose (e.g. after re-measurement).
func (n *Navigator) SetPose(x, y, heading float64) {
	n.x, n.y, n.heading = x, y, heading
}

// Position returns the current dead-reckoned position.
func (n *Navigator) Position() (x, y float64) { return n.x, n.y }

// Advice is one navigation instruction.
type Advice struct {
	// Distance to the target in metres.
	Distance float64
	// Bearing is the absolute heading toward the target (radians).
	Bearing float64
	// TurnBy is the relative turn from the current heading (radians,
	// positive = left/CCW).
	TurnBy float64
	// Arrived is true within ArriveRadius of the target.
	Arrived bool
	// Degraded is true when the fix being navigated toward came from
	// impaired data (see Navigator.SourceHealth for the reasons).
	Degraded bool
}

// Advise computes the current guidance.
func (n *Navigator) Advise() Advice {
	dx, dy := n.Target.X-n.x, n.Target.H-n.y
	dist := math.Hypot(dx, dy)
	bearing := math.Atan2(dy, dx)
	turn := math.Mod(bearing-n.heading, 2*math.Pi)
	if turn > math.Pi {
		turn -= 2 * math.Pi
	}
	if turn <= -math.Pi {
		turn += 2 * math.Pi
	}
	return Advice{
		Distance: dist,
		Bearing:  bearing,
		TurnBy:   turn,
		Arrived:  dist <= n.ArriveRadius,
		Degraded: n.SourceHealth.Status != HealthOK,
	}
}

// SetMirror installs the unresolved mirror candidate of a straight-walk
// measurement, enabling ResolveMirror during navigation (paper Sec. 9.2:
// "the observer may just walk straight and leave the symmetry problem to
// the navigation stage").
func (n *Navigator) SetMirror(c estimate.Candidate) { n.mirror = &c }

// ResolveMirror decides between the target and its mirror from a range
// observation taken after walking: rangeBefore was the estimated distance
// at the old position, rangeNow the re-measured distance at the current
// position. If the distance to the assumed target predicts rangeNow worse
// than the mirror does, the navigator swaps them and returns true. Call
// after covering a few metres — the two hypotheses' predicted ranges
// diverge as the observer leaves the original walking line.
func (n *Navigator) ResolveMirror(rangeNow float64) (swapped bool) {
	if n.mirror == nil {
		return false
	}
	dTarget := math.Hypot(n.Target.X-n.x, n.Target.H-n.y)
	dMirror := math.Hypot(n.mirror.X-n.x, n.mirror.H-n.y)
	if math.Abs(dMirror-rangeNow) < math.Abs(dTarget-rangeNow) {
		n.Target, *n.mirror = *n.mirror, n.Target
		return true
	}
	return false
}

// Retarget updates the target after a refinement measurement expressed in
// the *current* pose frame: the new estimate (x', h') is measured relative
// to the position and heading where the refinement walk started.
func (n *Navigator) Retarget(est *estimate.Estimate, frameX, frameY, frameHeading float64) {
	c, s := math.Cos(frameHeading), math.Sin(frameHeading)
	n.Target = estimate.Candidate{
		X: frameX + est.X*c - est.H*s,
		H: frameY + est.X*s + est.H*c,
	}
}
