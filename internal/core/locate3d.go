package core

import (
	"fmt"
	"math"

	"locble/internal/estimate"
	"locble/internal/motion"
	"locble/internal/sigproc"
	"locble/internal/sim"
)

// Locate3D runs the paper's 3-D extension (Sec. 9.3): the observer's walk
// must include a vertical phone gesture (an `imu.Segment.Lift`) so the
// movement spans three dimensions; the regression then recovers the
// beacon's height relative to the phone's carry plane as well as its 2-D
// position. The vertical displacement is app-guided (the UI asks the
// user to raise the phone by a known amount), so — like the 90° turn
// instruction of Sec. 5.2 — the commanded profile from the ground-truth
// pose track stands in for inertial double-integration.
func (e *Engine) Locate3D(tr *sim.Trace, beaconName string) (*estimate.Estimate3D, error) {
	obs, ok := tr.Observations[beaconName]
	if !ok || len(obs) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBeacon, beaconName)
	}
	_, alignedSamples, err := motion.Align(tr.IMU.Samples)
	if err != nil {
		return nil, fmt.Errorf("core: align: %w", err)
	}
	track, err := motion.BuildTrack(alignedSamples, e.cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: track: %w", err)
	}

	estCfg := e.cfg.Estimator
	for _, spec := range tr.Beacons {
		if spec.Name == beaconName && spec.Tx.TxPowerDBm != 0 {
			estCfg.GammaSoftMin = spec.Tx.TxPowerDBm - 18
			estCfg.GammaSoftMax = spec.Tx.TxPowerDBm + 8
			break
		}
	}

	raw := make([]float64, len(obs))
	times := make([]float64, len(obs))
	for i, o := range obs {
		raw[i] = o.RSSI
		times[i] = o.T
	}
	filtered := raw
	if !e.cfg.DisableANF {
		fs := tr.Phone.SampleRateHz
		if fs <= 0 {
			fs = 9
		}
		bf, err := sigproc.NewButterworth(e.cfg.ButterworthOrder, math.Min(e.cfg.CutoffHz, fs/2*0.8), fs)
		if err != nil {
			return nil, fmt.Errorf("core: ANF design: %w", err)
		}
		filtered = sigproc.FiltFilt(bf, raw)
	}

	fused := make([]estimate.Obs3D, len(obs))
	for i := range obs {
		ox, oy := track.At(times[i])
		oz := tr.IMU.HeightAt(times[i]) // app-guided lift profile
		fused[i] = estimate.Obs3D{
			T:   times[i],
			RSS: filtered[i],
			P:   -ox,
			Q:   -oy,
			R:   -oz,
		}
	}
	return estimate.Run3D(fused, estCfg)
}
