package core

import (
	"testing"

	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
)

// Failure injection: malformed or degenerate traces must produce errors,
// never panics or silent garbage.

func TestLocateEmptyIMUFallsBackToRSSOnly(t *testing.T) {
	// The degradation ladder turns the historical hard rejection of a
	// trace without IMU samples into an honest RSS-only proximity fix.
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatal(err)
	}
	broken := *tr
	broken.IMU = &imu.Trace{}
	m, err := eng.Locate(&broken, "target")
	if err != nil {
		t.Fatalf("want RSS-only fallback fix, got error: %v", err)
	}
	if m.Mode != ModeRSSOnly {
		t.Errorf("Mode = %v, want ModeRSSOnly", m.Mode)
	}
	if m.Health.Status != HealthDegraded {
		t.Errorf("Health = %v, want degraded", m.Health)
	}
	if !m.Health.Has(ReasonRSSOnlyFallback) || !m.Health.Has(ReasonIMUDropout) {
		t.Errorf("Health reasons = %v, want rss-only-fallback + imu-dropout", m.Health.Reasons)
	}
	if !m.Est.Ambiguous {
		t.Errorf("RSS-only fix must flag its unknown bearing as Ambiguous")
	}
	if r := m.Est.Range(); r <= 0 || r > eng.cfg.Estimator.MaxRange {
		t.Errorf("RSS-only range = %v, want within (0, %v]", r, eng.cfg.Estimator.MaxRange)
	}
}

func TestLocateEmptyIMURejectsWhenLadderDisabled(t *testing.T) {
	// Disabling the RSS-only rung restores the historical contract.
	cfg := DefaultConfig()
	cfg.Ladder.DisableRSSOnly = true
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatal(err)
	}
	broken := *tr
	broken.IMU = &imu.Trace{}
	if _, err := eng.Locate(&broken, "target"); err == nil {
		t.Error("want error for a trace without IMU samples when the ladder is disabled")
	}
}

func TestLocateRejectsTooFewObservations(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatal(err)
	}
	truncated := *tr
	truncated.Observations = map[string][]sim.BeaconObservation{
		"target": tr.Observations["target"][:3],
	}
	if _, err := eng.Locate(&truncated, "target"); err == nil {
		t.Error("want error for 3 observations")
	}
}

func TestLocateHandlesConstantRSS(t *testing.T) {
	// All-identical RSSI (a stuck radio): the estimator must fail
	// gracefully, not hang or panic.
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatal(err)
	}
	stuck := *tr
	obs := append([]sim.BeaconObservation(nil), tr.Observations["target"]...)
	for i := range obs {
		obs[i].RSSI = -70
	}
	stuck.Observations = map[string][]sim.BeaconObservation{"target": obs}
	// Either an error or some estimate is acceptable; what matters is no
	// panic and no NaN in the output.
	if m, err := eng.Locate(&stuck, "target"); err == nil {
		if m.Est.X != m.Est.X || m.Est.H != m.Est.H { // NaN check
			t.Error("constant RSS produced NaN estimate")
		}
	}
}

func TestLocateHandlesZeroSampleRatePhone(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 2))
	if err != nil {
		t.Fatal(err)
	}
	weird := *tr
	weird.Phone.SampleRateHz = 0 // the ANF design must fall back, not div/0
	if _, err := eng.Locate(&weird, "target"); err != nil {
		t.Errorf("zero sample rate should fall back to a default: %v", err)
	}
}
