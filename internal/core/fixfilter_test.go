package core

import (
	"math"
	"testing"

	"locble/internal/estimate"
	"locble/internal/rng"
)

func TestFixFilterSmoothsStationary(t *testing.T) {
	src := rng.New(1)
	f := NewFixFilter(0, 1.5)
	var rawErr, smoothErr float64
	n := 0
	var last SmoothedFix
	for i := 0; i < 50; i++ {
		mx := 5 + src.Normal(0, 1.5)
		my := 3 + src.Normal(0, 1.5)
		last = f.Update(float64(i)*2, mx, my)
		if i >= 10 { // after convergence
			rawErr += math.Hypot(mx-5, my-3)
			smoothErr += math.Hypot(last.X-5, last.Y-3)
			n++
		}
	}
	rawErr /= float64(n)
	smoothErr /= float64(n)
	t.Logf("raw %.2f m vs smoothed %.2f m", rawErr, smoothErr)
	if smoothErr >= rawErr*0.6 {
		t.Errorf("smoothing should clearly beat raw fixes: %.2f vs %.2f", smoothErr, rawErr)
	}
	if last.PosStdDev <= 0 || last.PosStdDev > 1.5 {
		t.Errorf("converged uncertainty %.2f m", last.PosStdDev)
	}
}

func TestFixFilterTracksMovingTarget(t *testing.T) {
	src := rng.New(2)
	f := NewFixFilter(0.3, 1.5)
	// Target moves at 0.5 m/s along +x; the smoothed track must beat the
	// raw fixes once the velocity estimate converges.
	var rawSum, smSum float64
	n := 0
	for i := 0; i < 60; i++ {
		tm := float64(i) * 2
		tx := 0.5 * tm
		mx, my := tx+src.Normal(0, 1.5), src.Normal(0, 1.5)
		sm := f.Update(tm, mx, my)
		if i >= 20 {
			rawSum += math.Hypot(mx-tx, my)
			smSum += math.Hypot(sm.X-tx, sm.Y)
			n++
		}
	}
	raw, smoothed := rawSum/float64(n), smSum/float64(n)
	t.Logf("moving target: raw %.2f m vs smoothed %.2f m", raw, smoothed)
	if smoothed >= raw {
		t.Errorf("smoothing did not beat raw fixes on a moving target: %.2f vs %.2f", smoothed, raw)
	}
}

func TestFixFilterVelocityEstimate(t *testing.T) {
	f := NewFixFilter(0.3, 0.5)
	var sm SmoothedFix
	for i := 0; i < 80; i++ {
		tm := float64(i)
		sm = f.Update(tm, 0.7*tm, -0.2*tm)
	}
	if math.Abs(sm.VX-0.7) > 0.1 || math.Abs(sm.VY+0.2) > 0.1 {
		t.Errorf("velocity estimate (%.2f, %.2f), want (0.7, -0.2)", sm.VX, sm.VY)
	}
}

func TestSmoothFixes(t *testing.T) {
	var pts []TrackPoint
	for i := 0; i < 10; i++ {
		pts = append(pts, TrackPoint{T: float64(i) * 2, Est: &estimate.Estimate{X: 4, H: 2}})
	}
	out := SmoothFixes(pts, 0, 1.0)
	if len(out) != len(pts) {
		t.Fatalf("length %d", len(out))
	}
	lastFix := out[len(out)-1]
	if math.Abs(lastFix.X-4) > 0.01 || math.Abs(lastFix.Y-2) > 0.01 {
		t.Errorf("smoothed to (%.2f, %.2f)", lastFix.X, lastFix.Y)
	}
	// Out-of-order timestamps must not blow up.
	f := NewFixFilter(0.3, 1)
	f.Update(5, 1, 1)
	f.Update(3, 1, 1)
}
