// Package core wires LocBLE's three layers together (paper Fig. 3,
// Algorithm 1): the data-collection layer (scan reports + IMU, produced by
// the sim package or a real device), the location-estimation layer
// (EnvAware environment recognition, adaptive noise filtering, motion
// tracking, and the elliptical-regression data fusion), and the
// calibration layer (multi-beacon DTW clustering).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"locble/internal/cluster"
	"locble/internal/env"
	"locble/internal/estimate"
	"locble/internal/motion"
	"locble/internal/rf"
	"locble/internal/sim"
)

// Errors.
var (
	ErrUnknownBeacon = errors.New("core: beacon not present in trace")
	ErrNoEstimate    = errors.New("core: no segment produced a usable estimate")
)

// cancelFromCtx converts a context into the estimator's poll-style
// cancellation hook. A context that can never be canceled maps to nil so
// the regression hot path skips the poll entirely.
func cancelFromCtx(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// canceledErr wraps a cancellation so callers can match it with
// errors.Is against both the context error (Canceled/DeadlineExceeded)
// and estimate.ErrCanceled.
func canceledErr(ctx context.Context, what string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s canceled: %w", what, err)
	}
	return fmt.Errorf("core: %s canceled: %w", what, estimate.ErrCanceled)
}

// isCanceled reports whether err is a cancellation rather than a
// pipeline failure (the two are tallied separately in the metrics).
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, estimate.ErrCanceled)
}

// Config tunes the pipeline. The Disable* switches exist for the paper's
// ablation study (Fig. 5).
type Config struct {
	// Estimator configures the elliptical regression.
	Estimator estimate.Config
	// ButterworthOrder is the ANF low-pass order (paper: 6).
	ButterworthOrder int
	// CutoffHz is the ANF low-pass cutoff.
	CutoffHz float64
	// EnvWindow is the EnvAware window in samples (≈2 s of reports).
	EnvWindow int
	// EnvHysteresis is how many consecutive windows must disagree before
	// a regression restart.
	EnvHysteresis int
	// DisableANF bypasses the BF+AKF filter (ablation).
	DisableANF bool
	// StreamingANF uses the paper's online BF+AKF cascade instead of the
	// zero-phase forward-backward Butterworth. The streaming filter is
	// what a live UI runs; batch estimation defaults to zero-phase
	// filtering because group delay would shift the RSS trend against the
	// motion track and bias the regression.
	StreamingANF bool
	// DisableEnvAware bypasses environment change detection (ablation).
	DisableEnvAware bool
	// Tracker configures motion processing.
	Tracker motion.TrackerConfig
	// MinSegmentSamples is the minimum regression-segment size.
	MinSegmentSamples int
	// AKFMaxAlpha overrides the streaming AKF's maximum raw-stream blend
	// weight (0 keeps the sigproc default; ablation knob).
	AKFMaxAlpha float64
	// Sanitize tunes the defensive input pass (zero fields take the
	// calibrated defaults).
	Sanitize SanitizeConfig
	// Ladder tunes the graceful degradation ladder (zero value enables
	// every rung with the calibrated defaults).
	Ladder LadderConfig
}

// DefaultConfig returns the paper's pipeline settings.
func DefaultConfig() Config {
	tc := motion.DefaultTrackerConfig()
	tc.SnapRightAngles = true // the app instructs the user to turn 90°
	return Config{
		Estimator:         estimate.DefaultConfig(),
		ButterworthOrder:  6,
		CutoffHz:          0.9,
		EnvWindow:         20,
		EnvHysteresis:     1,
		Tracker:           tc,
		MinSegmentSamples: 10,
		Sanitize:          DefaultSanitizeConfig(),
	}
}

// Engine is a ready-to-use LocBLE pipeline. The EnvAware classifier is
// trained once (on the synthetic labelled dataset) and reused; an Engine
// is safe for concurrent Locate calls. LocateAll fan-outs run on a
// persistent sharded worker pool started lazily on first use; Close
// releases it (see pool.go).
type Engine struct {
	cfg Config
	clf *env.Classifier
	met *engineMetrics

	poolMu     sync.Mutex
	locPool    *shardPool
	poolClosed bool
}

var (
	sharedClfOnce sync.Once
	sharedClf     *env.Classifier
	sharedClfErr  error
)

// sharedClassifier trains the default EnvAware model once per process.
func sharedClassifier() (*env.Classifier, error) {
	sharedClfOnce.Do(func() {
		d, _, _, err := env.BuildDataset(env.DefaultDatasetConfig())
		if err != nil {
			sharedClfErr = err
			return
		}
		sharedClf, sharedClfErr = env.Train(d)
	})
	return sharedClf, sharedClfErr
}

// NewEngine builds an engine, training the EnvAware classifier if needed.
func NewEngine(cfg Config) (*Engine, error) {
	clf, err := sharedClassifier()
	if err != nil {
		return nil, fmt.Errorf("core: training EnvAware: %w", err)
	}
	return &Engine{cfg: cfg, clf: clf, met: newEngineMetrics()}, nil
}

// NewEngineWithClassifier builds an engine around a caller-provided
// EnvAware classifier.
func NewEngineWithClassifier(cfg Config, clf *env.Classifier) *Engine {
	return &Engine{cfg: cfg, clf: clf, met: newEngineMetrics()}
}

// Measurement is the result of locating one beacon from one trace.
type Measurement struct {
	// Est is the combined location estimate in the observer's starting
	// coordinate frame (x along initial heading).
	Est *estimate.Estimate
	// Track is the observer's dead-reckoned movement.
	Track *motion.Track
	// FinalEnv is EnvAware's last classification.
	FinalEnv rf.Environment
	// Segments is the number of regression segments (1 + restarts).
	Segments int
	// Raw and Filtered are the RSS series before/after ANF (diagnostics).
	Raw, Filtered []float64
	// Times are the observation timestamps for Raw/Filtered.
	Times []float64
	// Health grades how much this fix should be trusted: OK for clean
	// input, Degraded (with machine-readable reasons) when the input was
	// impaired but recoverable. Rejected inputs never produce a
	// Measurement — Locate returns a *RejectedError instead.
	Health Health
	// Mode identifies which degradation-ladder rung produced the fix
	// (ModeFull for the normal fusion pipeline).
	Mode FixMode
}

// Error returns the distance between the estimate and the true target
// position (tx, ty) expressed in the observer's frame — callers must
// convert world coordinates first (see sim traces, whose observer starts
// at the plan's start pose).
func (m *Measurement) Error(tx, ty float64) float64 {
	return math.Hypot(m.Est.X-tx, m.Est.H-ty)
}

// Locate runs the full pipeline for one beacon of a simulated trace.
// In moving-target mode (trace has a TargetIMU and the beacon is the
// target), the target's dead-reckoned movement is fused in, as if its
// trace bundle had been transferred to the observer.
//
// Every call is recorded in the engine's metrics: whole-call and
// per-stage latency, the resulting health class and its reasons (also
// for rejections), and estimation quality.
func (e *Engine) Locate(tr *sim.Trace, beaconName string) (*Measurement, error) {
	return e.LocateContext(context.Background(), tr, beaconName)
}

// LocateContext is Locate under a context: a deadline or cancellation
// (a disconnected client, a draining server) stops the pipeline between
// stages and interrupts the regression mid-Nelder-Mead. A canceled call
// returns an error matching the context error under errors.Is and is
// counted in "core.canceled" rather than as a health rejection.
func (e *Engine) LocateContext(ctx context.Context, tr *sim.Trace, beaconName string) (*Measurement, error) {
	sc := getLocateScratch()
	defer putLocateScratch(sc)
	return e.locateContextWith(ctx, tr, beaconName, sc)
}

// locateContextWith is LocateContext on caller-provided scratch — the
// entry point for LocateAll's pool workers, which own a scratch for
// their whole life instead of borrowing one per call.
func (e *Engine) locateContextWith(ctx context.Context, tr *sim.Trace, beaconName string, sc *locateScratch) (*Measurement, error) {
	sp := e.met.locateSpan.Start()
	m, err := e.locate(ctx, tr, beaconName, sc)
	sp.End()
	e.met.locates.Inc()
	if err != nil {
		if isCanceled(err) {
			e.met.canceled.Inc()
		} else {
			e.met.recordHealth(HealthFromError(err))
		}
		return nil, err
	}
	e.met.recordHealth(m.Health)
	e.met.recordEstimate(m.Segments, m.Est.ResidualDB)
	return m, nil
}

// locate is the uninstrumented pipeline body behind Locate. All the
// heavy lifting — the ANF batch filter and the regression — runs on
// sc's arenas.
func (e *Engine) locate(ctx context.Context, tr *sim.Trace, beaconName string, sc *locateScratch) (*Measurement, error) {
	p, err := e.prepare(tr, beaconName, sc)
	if err != nil {
		// Degradation ladder, rung 2: an unusable inertial stream drops
		// the pipeline to RSS-only path-loss proximity instead of failing.
		if m, ok := e.tryRSSOnly(tr, beaconName, err); ok {
			return m, nil
		}
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, canceledErr(ctx, "locate")
	}

	m := &Measurement{
		Track:    p.track,
		Raw:      p.raw,
		Times:    p.times,
		Filtered: p.filtered,
		Health:   p.health,
	}
	estCfg := p.estCfg
	estCfg.Cancel = cancelFromCtx(ctx)

	// EnvAware segmentation: indexes where a new regression must start.
	spClassify := e.met.stClassify.Start()
	segStarts := []int{0}
	if !e.cfg.DisableEnvAware {
		mon := env.NewMonitor(e.clf, e.cfg.EnvWindow, e.cfg.EnvHysteresis)
		for i, v := range p.raw {
			_, _, changed, err := mon.Push(v)
			if err != nil {
				spClassify.End()
				return nil, fmt.Errorf("core: EnvAware: %w", err)
			}
			if changed {
				// The change was detected at the end of a classification
				// window but happened somewhere inside it; roll the
				// boundary back a window so the new segment starts clean
				// and the old one does not absorb mixed-environment data.
				start := i - e.cfg.EnvWindow*(e.cfg.EnvHysteresis)
				if last := segStarts[len(segStarts)-1]; start <= last {
					start = last + 1
				}
				if start < len(p.raw) {
					segStarts = append(segStarts, start)
				}
			}
		}
		if cur, ok := mon.Current(); ok {
			m.FinalEnv = cur
		}
	}
	spClassify.End()

	// --- Estimation layer (Sec. 5, Algorithm 1) -----------------------
	spRegress := e.met.stRegress.Start()
	defer spRegress.End()
	// One joint regression: the target position is shared by all
	// observations, while each EnvAware segment gets its own (Γ, n)
	// channel parameters — the regression "restarts" its model on an
	// environment change without throwing the geometry away.
	allObs := p.fused
	m.Segments = len(segStarts)

	// Algorithm 1: when the environment changed, the paper "starts a new
	// regression with the data" — the estimate should come from the
	// *current* environment's regression when that segment alone carries
	// enough data and geometry. Otherwise fall back to the joint fit
	// (single position, per-segment channel parameters), which uses all
	// the data without mixing channel models.
	var est *estimate.Estimate
	if last := segStarts[len(segStarts)-1]; last > 0 {
		lastObs := allObs[last:]
		if len(lastObs) >= 2*e.cfg.MinSegmentSamples {
			lastEst, lastErr := sc.solver.Run(lastObs, estCfg)
			if errors.Is(lastErr, estimate.ErrCanceled) {
				return nil, canceledErr(ctx, "locate")
			}
			if lastErr == nil && !lastEst.Ambiguous {
				est = lastEst
			}
		}
	}
	if est == nil {
		joint, jointErr := sc.solver.RunSegmented(allObs, segStarts[1:], estCfg)
		if jointErr != nil {
			if errors.Is(jointErr, estimate.ErrCanceled) {
				return nil, canceledErr(ctx, "locate")
			}
			return nil, rejectedErr(m.Health, ReasonNoEstimate, fmt.Errorf("%w: %v", ErrNoEstimate, jointErr))
		}
		est = joint
	}
	// Residual mirror ambiguity (straight-line walk): resolve with the
	// L-shape intersection when a turn exists (Sec. 5.1).
	if est.Ambiguous {
		if split := firstTurnEnd(p.track, p.times); !math.IsNaN(split) {
			e.met.lshapeAttempts.Inc()
			res, lErr := sc.solver.RunLShape(allObs, split, estCfg)
			if errors.Is(lErr, estimate.ErrCanceled) {
				return nil, canceledErr(ctx, "locate")
			}
			if lErr == nil {
				est = res.Final
				if !est.Ambiguous {
					e.met.lshapeResolved.Inc()
				}
			}
		}
	}
	// A NaN must never escape as a fix, whatever the input did to the
	// regression.
	if !finiteEstimate(est) {
		return nil, rejectedErr(m.Health, ReasonNonFiniteEstimate, ErrNoEstimate)
	}
	m.Est = est
	return m, nil
}

// firstTurnEnd returns the end time of the first detected turn inside the
// observation span, or NaN.
func firstTurnEnd(track *motion.Track, times []float64) float64 {
	if len(times) == 0 {
		return math.NaN()
	}
	t0, t1 := times[0], times[len(times)-1]
	for _, turn := range track.Turns {
		if turn.End > t0 && turn.End < t1 {
			return turn.End
		}
	}
	return math.NaN()
}

// LocateWithCluster locates the target beacon and refines the result with
// the multi-beacon clustering calibration (paper Sec. 6): every other
// beacon in the trace is located independently; sequences that DTW-match
// the target's contribute their estimates to the weighted average.
func (e *Engine) LocateWithCluster(tr *sim.Trace, targetName string) (*Measurement, *cluster.Result, error) {
	return e.LocateWithClusterConfig(tr, targetName, cluster.DefaultConfig())
}

// LocateWithClusterConfig is LocateWithCluster with an explicit
// calibration configuration (ablation studies sweep the matcher).
func (e *Engine) LocateWithClusterConfig(tr *sim.Trace, targetName string, ccfg cluster.Config) (*Measurement, *cluster.Result, error) {
	target, err := e.Locate(tr, targetName)
	if err != nil {
		return nil, nil, err
	}
	tt, trss := tr.RSSSeries(targetName)
	targetSeq := cluster.Sequence{Name: targetName, T: tt, RSS: trss, Estimate: target.Est}

	// Locate the neighbours concurrently: their pipelines are independent.
	var cands []cluster.Sequence
	for _, res := range e.LocateAll(tr) {
		if res.Name == targetName {
			continue
		}
		ct, crss := tr.RSSSeries(res.Name)
		seq := cluster.Sequence{Name: res.Name, T: ct, RSS: crss}
		if res.Err == nil {
			seq.Estimate = res.M.Est
		}
		cands = append(cands, seq)
	}
	cres, err := cluster.Calibrate(targetSeq, cands, ccfg)
	if err != nil {
		return target, nil, err
	}
	cal := *target.Est
	cal.X, cal.H = cres.X, cres.H
	cal.Confidence = cres.Confidence
	calibrated := *target
	calibrated.Est = &cal
	return &calibrated, cres, nil
}
