package core

import (
	"errors"
	"fmt"
	"math"

	"locble/internal/estimate"
	"locble/internal/rf"
	"locble/internal/robust"
	"locble/internal/sim"
)

// FixMode identifies which rung of the degradation ladder produced a
// fix. The pipeline's historical contract was full-fusion-or-error; the
// ladder replaces the error half with progressively weaker — but
// honestly labelled — fallbacks, so a navigation UI can keep showing
// something truthful while the sensors misbehave.
type FixMode int

const (
	// ModeFull: the full radio-inertial fusion pipeline (the paper's
	// elliptical regression over fused RSS + dead reckoning).
	ModeFull FixMode = iota
	// ModeRSSOnly: the inertial stream was unusable, so the fix is a
	// range-only path-loss proximity estimate from the RSS series alone.
	// The bearing is unknown (the estimate is marked Ambiguous).
	ModeRSSOnly
	// ModeLastKnown: no usable observation window; the previous fix is
	// re-emitted within the staleness bound.
	ModeLastKnown
)

func (m FixMode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeRSSOnly:
		return "rss-only"
	case ModeLastKnown:
		return "last-known"
	}
	return fmt.Sprintf("FixMode(%d)", int(m))
}

// DefaultStaleMaxAge is the default staleness bound, in seconds of
// observation time: how long last-known fixes are re-emitted before a
// beacon's tracking state is given up on. The fleet manager reuses it
// as the default idle age before a silent session is evicted — "too
// stale to show" and "too idle to keep resident" are the same horizon.
const DefaultStaleMaxAge = 10

// LadderConfig tunes the degradation ladder. The zero value enables
// every rung with calibrated defaults; the Disable switches restore the
// historical fail-hard contract per rung.
type LadderConfig struct {
	// DisableRSSOnly turns off the RSS-only proximity rung: an IMU
	// failure rejects the measurement as before.
	DisableRSSOnly bool
	// DisableLastKnown turns off last-known-fix re-emission in the
	// tracking loops.
	DisableLastKnown bool
	// StaleMaxAge is how long (seconds) a last-known fix may be
	// re-emitted after the last real fix before the ladder gives up and
	// the beacon's tracking state is evicted. Zero selects 10 s.
	StaleMaxAge float64
	// RSSOnlyExponent is the path-loss exponent assumed by the RSS-only
	// proximity rung (no geometry to fit one from). Zero selects 2.5,
	// the middle of the indoor band.
	RSSOnlyExponent float64
}

// ladderDefaults fills zero fields.
func (c LadderConfig) withDefaults() LadderConfig {
	if c.StaleMaxAge <= 0 {
		c.StaleMaxAge = DefaultStaleMaxAge
	}
	if c.RSSOnlyExponent <= 0 {
		c.RSSOnlyExponent = 2.5
	}
	return c
}

// tryRSSOnly is the ladder's second rung: when prepare rejected the
// trace because the inertial stream was unusable, fall back to a
// range-only path-loss proximity estimate from the sanitized RSS series
// alone. The fix carries Mode == ModeRSSOnly, a Degraded health naming
// both the cause (imu-dropout) and the rung (rss-only-fallback), and an
// Ambiguous estimate (range is known, bearing is not).
func (e *Engine) tryRSSOnly(tr *sim.Trace, beaconName string, cause error) (*Measurement, bool) {
	lad := e.cfg.Ladder.withDefaults()
	if lad.DisableRSSOnly {
		return nil, false
	}
	var re *RejectedError
	if !errors.As(cause, &re) || !re.Health.Has(ReasonIMUDropout) {
		return nil, false
	}
	obs, ok := tr.Observations[beaconName]
	if !ok || len(obs) == 0 {
		return nil, false
	}

	// Re-sanitize without the IMU timeline: the RSS series must stand on
	// its own for this rung.
	scfg := e.cfg.Sanitize.withDefaults()
	var h Health
	clean := sanitizeObservations(obs, scfg, 0, &h)
	if len(clean) < scfg.MinSamples {
		return nil, false
	}
	if span := clean[len(clean)-1].T - clean[0].T; span < scfg.MinSpan {
		return nil, false
	}
	h.degrade(ReasonIMUDropout)
	h.degrade(ReasonRSSOnlyFallback)

	raw := make([]float64, len(clean))
	times := make([]float64, len(clean))
	for i, o := range clean {
		raw[i] = o.RSSI
		times[i] = o.T
	}

	// Proximity reading: the robust maximum of the series (an impulse or
	// spoofed spike must not fake a close approach).
	_, vMax, _ := robust.RobustMax(raw, DefaultProximityFusionConfig().TopQuantile, 3, nil)
	if math.IsNaN(vMax) {
		return nil, false
	}

	// Γ anchor: the advertised calibrated power when the payload carries
	// one (the paper's Γ(e) = P + X(e) with X ≈ 0 as the LOS prior),
	// otherwise the middle of the estimator's plausibility band.
	gamma := (e.cfg.Estimator.GammaSoftMin + e.cfg.Estimator.GammaSoftMax) / 2
	if gamma == 0 {
		gamma = -65
	}
	for _, spec := range tr.Beacons {
		if spec.Name == beaconName && spec.Tx.TxPowerDBm != 0 {
			gamma = spec.Tx.TxPowerDBm
			break
		}
	}
	n := lad.RSSOnlyExponent
	d := rf.PathLossDistance(vMax, gamma, n)
	maxRange := e.cfg.Estimator.MaxRange
	if maxRange <= 0 {
		maxRange = 25
	}
	d = math.Min(math.Max(d, 0.1), maxRange)

	// Range-only fix: report the range along the +x axis and flag the
	// bearing ambiguity; confidence is pinned low — this rung is a
	// proximity hint, not a position.
	est := &estimate.Estimate{
		X:          d,
		H:          0,
		Candidates: []estimate.Candidate{{X: d, H: 0}},
		N:          n,
		Gamma:      gamma,
		ResidualDB: 0,
		Confidence: 0.1,
		Ambiguous:  true,
		Samples:    len(clean),
	}
	m := &Measurement{
		Est:      est,
		Raw:      raw,
		Filtered: raw,
		Times:    times,
		Segments: 1,
		Health:   h,
		Mode:     ModeRSSOnly,
	}
	e.met.modeRSSOnly.Inc()
	return m, true
}

// staleFixFrom re-emits a previous fix at time tEnd as the ladder's
// bottom rung. The estimate pointer is shared (the fix is literally the
// old one); the health is a cloned copy degraded with stale-fix.
func staleFixFrom(prev *TrackPoint, tEnd float64, base Health) TrackPoint {
	h := base.clone()
	h.degrade(ReasonStaleFix)
	return TrackPoint{
		T:           tEnd,
		Est:         prev.Est,
		WindowStart: prev.WindowStart,
		Samples:     0,
		Mode:        ModeLastKnown,
		Health:      h,
	}
}
