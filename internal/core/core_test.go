package core

import (
	"math"
	"sort"
	"testing"

	"locble/internal/estimate"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
)

// dummyEst is a fixed estimate at (1, 0) in its measurement frame.
var dummyEst = estimate.Estimate{X: 1, H: 0}

// lshapeScenario builds the canonical measurement: observer walks an
// L-shape near the origin; target beacon sits at (bx, by) world.
func lshapeScenario(bx, by float64, envModel sim.EnvModel, seed int64) sim.Scenario {
	return sim.Scenario{
		Beacons: []sim.BeaconSpec{{Name: "target", X: bx, Y: by}},
		ObserverPlan: imu.Plan{
			Segments: imu.LShape(0, 4, 4),
		},
		EnvModel: envModel,
		Seed:     seed,
	}
}

func TestLocateStationaryLOS(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	errs := make([]float64, 0, 8)
	for seed := int64(1); seed <= 8; seed++ {
		tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), seed))
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		m, err := eng.Locate(tr, "target")
		if err != nil {
			t.Fatalf("Locate (seed %d): %v", seed, err)
		}
		e := m.Error(6, 3)
		errs = append(errs, e)
		t.Logf("seed %d: est=(%.2f, %.2f) err=%.2f m n=%.2f conf=%.2f",
			seed, m.Est.X, m.Est.H, e, m.Est.N, m.Est.Confidence)
	}
	mean := 0.0
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	if mean > 2.5 {
		t.Errorf("mean LOS error = %.2f m, want ≤ 2.5 (paper: ~0.8–1.8 indoor)", mean)
	}
}

func TestLocateUnknownBeacon(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if _, err := eng.Locate(tr, "nope"); err == nil {
		t.Error("want error for unknown beacon")
	}
}

func TestLocateNLOSWorseThanLOS(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	meanErr := func(envModel sim.EnvModel, seedBase int64) float64 {
		sum, n := 0.0, 0
		for seed := seedBase; seed < seedBase+6; seed++ {
			tr, err := sim.Run(lshapeScenario(7, 3, envModel, seed))
			if err != nil {
				t.Fatalf("sim.Run: %v", err)
			}
			m, err := eng.Locate(tr, "target")
			if err != nil {
				continue
			}
			sum += m.Error(7, 3)
			n++
		}
		if n == 0 {
			t.Fatal("no successful estimates")
		}
		return sum / float64(n)
	}
	los := meanErr(sim.StaticEnv(rf.LOS), 100)
	nlos := meanErr(sim.StaticEnv(rf.NLOS), 200)
	t.Logf("LOS mean err %.2f m, NLOS %.2f m", los, nlos)
	if nlos < los*0.7 {
		t.Errorf("NLOS (%.2f) should not be clearly better than LOS (%.2f)", nlos, los)
	}
}

func TestAblationFlagsRun(t *testing.T) {
	// Disabling ANF/EnvAware must still produce estimates (the ablation
	// benches rely on this).
	for _, cfg := range []Config{
		func() Config { c := DefaultConfig(); c.DisableANF = true; return c }(),
		func() Config { c := DefaultConfig(); c.DisableEnvAware = true; return c }(),
	} {
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		tr, err := sim.Run(lshapeScenario(5, 2, sim.StaticEnv(rf.LOS), 3))
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		if _, err := eng.Locate(tr, "target"); err != nil {
			t.Errorf("Locate with ablation cfg: %v", err)
		}
	}
}

func TestLocateWithClusterImproves(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Target plus three co-located neighbours (0.3 m apart, as in the
	// paper's Fig. 9 setup) and one far beacon; heavy blockage.
	walls := &sim.WallEnv{Walls: []sim.Wall{{X1: 3, Y1: -2, X2: 3, Y2: 8, Class: rf.NLOS}}}
	var single, clustered float64
	runs := 0
	for seed := int64(10); seed < 16; seed++ {
		sc := sim.Scenario{
			Beacons: []sim.BeaconSpec{
				{Name: "target", X: 7, Y: 3},
				{Name: "n1", X: 7.3, Y: 3},
				{Name: "n2", X: 7, Y: 3.3},
				{Name: "n3", X: 7.3, Y: 3.3},
				{Name: "far", X: 1, Y: 7},
			},
			ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
			EnvModel:     walls,
			Seed:         seed,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		base, err := eng.Locate(tr, "target")
		if err != nil {
			continue
		}
		cal, cres, err := eng.LocateWithCluster(tr, "target")
		if err != nil {
			continue
		}
		if cres.ClusterSize < 2 {
			t.Logf("seed %d: cluster size %d", seed, cres.ClusterSize)
		}
		// The far beacon must not have joined the cluster.
		for _, mem := range cres.Members {
			if mem.Name == "far" && mem.Matched {
				t.Errorf("seed %d: far beacon wrongly clustered", seed)
			}
		}
		single += base.Error(7, 3)
		clustered += cal.Error(7, 3)
		runs++
	}
	if runs == 0 {
		t.Fatal("no successful runs")
	}
	single /= float64(runs)
	clustered /= float64(runs)
	t.Logf("single %.2f m vs clustered %.2f m over %d runs", single, clustered, runs)
	if clustered > single*1.35 {
		t.Errorf("clustering made things clearly worse: %.2f vs %.2f", clustered, single)
	}
}

func TestMovingTargetLocate(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tgtPlan := imu.Plan{
		Segments:     []imu.Segment{{Heading: math.Pi / 2, Distance: 3}},
		StartX:       8,
		StartY:       2,
		StartHeading: math.Pi / 2,
	}
	// Moving-target estimation is the paper's hardest case (its own CDF
	// shows a heavy tail), so assert on the median across seeds, the same
	// summary the paper reports (<2.5 m for >50 % of runs).
	var errs []float64
	for seed := int64(1); seed <= 9; seed++ {
		sc := sim.Scenario{
			Beacons:      []sim.BeaconSpec{{Name: "phone", X: 8, Y: 2}},
			ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
			TargetPlan:   &tgtPlan,
			EnvModel:     sim.StaticEnv(rf.LOS),
			Seed:         seed,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		m, err := eng.Locate(tr, "phone")
		if err != nil {
			t.Logf("seed %d: Locate: %v", seed, err)
			continue
		}
		// The estimate is of the target's *initial* location (paper
		// Sec. 7.2: "we measured the target location estimation error at
		// its initial location").
		e := m.Error(8, 2)
		errs = append(errs, e)
		t.Logf("seed %d: est=(%.2f, %.2f), err=%.2f m", seed, m.Est.X, m.Est.H, e)
	}
	if len(errs) < 5 {
		t.Fatalf("only %d successful runs", len(errs))
	}
	sort.Float64s(errs)
	med := errs[len(errs)/2]
	if med > 4.5 {
		t.Errorf("moving-target median error = %.2f m, want ≤ 4.5 (paper: <2.5 for >50%%)", med)
	}
}

func TestNavigatorGeometry(t *testing.T) {
	nav := &Navigator{ArriveRadius: 0.5}
	nav.Target.X, nav.Target.H = 3, 4
	adv := nav.Advise()
	if math.Abs(adv.Distance-5) > 1e-9 {
		t.Errorf("distance = %.3f, want 5", adv.Distance)
	}
	wantBearing := math.Atan2(4, 3)
	if math.Abs(adv.Bearing-wantBearing) > 1e-9 {
		t.Errorf("bearing = %.3f, want %.3f", adv.Bearing, wantBearing)
	}
	if adv.Arrived {
		t.Error("should not have arrived at 5 m")
	}
	// Walk straight to the target in 1 m steps.
	for i := 0; i < 5; i++ {
		nav.Update(1, adv.Bearing)
	}
	adv = nav.Advise()
	if !adv.Arrived {
		t.Errorf("should have arrived; distance = %.3f", adv.Distance)
	}
}

func TestNavigatorRetarget(t *testing.T) {
	nav := &Navigator{ArriveRadius: 0.5}
	est := &dummyEst
	nav.Retarget(est, 3, 4, math.Pi/2)
	if math.Abs(nav.Target.X-3) > 1e-9 || math.Abs(nav.Target.H-5) > 1e-9 {
		t.Errorf("retarget = (%.2f, %.2f), want (3, 5)", nav.Target.X, nav.Target.H)
	}
}

func TestNewEngineWithClassifier(t *testing.T) {
	clf, err := sharedClassifier()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngineWithClassifier(DefaultConfig(), clf)
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Locate(tr, "target"); err != nil {
		t.Errorf("Locate with injected classifier: %v", err)
	}
}

func TestNewNavigatorAndPosition(t *testing.T) {
	nav := NewNavigator(&estimate.Estimate{X: 3, H: 4})
	if nav.ArriveRadius <= 0 {
		t.Error("NewNavigator should set a default arrive radius")
	}
	if x, y := nav.Position(); x != 0 || y != 0 {
		t.Errorf("initial position (%g, %g)", x, y)
	}
	nav.Update(1, 0)
	if x, _ := nav.Position(); math.Abs(x-1) > 1e-12 {
		t.Errorf("position after one step x = %g", x)
	}
}

func TestLocateShortSecondLegDisambiguates(t *testing.T) {
	// A stunted second leg leaves the movement near-collinear; the
	// pipeline must fall back to the per-leg L-shape intersection
	// (firstTurnEnd → RunLShape) and still resolve the mirror side more
	// often than not.
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resolved, correctSide := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		sc := sim.Scenario{
			Beacons:      []sim.BeaconSpec{{Name: "target", X: 5, Y: 2.5}},
			ObserverPlan: imu.Plan{Segments: imu.LShape(0, 6, 1.4)},
			EnvModel:     sim.StaticEnv(rf.LOS),
			Seed:         seed,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := eng.Locate(tr, "target")
		if err != nil {
			continue
		}
		if !m.Est.Ambiguous {
			resolved++
			if m.Est.H > 0 {
				correctSide++
			}
		}
	}
	if resolved == 0 {
		t.Skip("all runs stayed ambiguous for this geometry")
	}
	if correctSide*2 < resolved {
		t.Errorf("mirror resolution picked the wrong side in %d/%d resolved runs",
			resolved-correctSide, resolved)
	}
}
