package core

import (
	"errors"
	"fmt"
	"strings"
)

// HealthStatus grades how much a location result should be trusted.
// The pipeline's historical contract was error-or-estimate; Health turns
// that binary into a graded signal so callers can distinguish "trust this
// fix" from "got a fix out of impaired data" from "the input was
// unusable".
type HealthStatus int

const (
	// HealthOK: the input passed sanitization untouched (or nearly so)
	// and the estimate can be trusted at its stated confidence.
	HealthOK HealthStatus = iota
	// HealthDegraded: the input was impaired but recoverable — the
	// estimate is real, its Reasons list what was wrong with the data.
	HealthDegraded
	// HealthRejected: the input was unusable; no estimate is returned
	// (Locate reports a *RejectedError carrying this health).
	HealthRejected
)

func (s HealthStatus) String() string {
	switch s {
	case HealthOK:
		return "OK"
	case HealthDegraded:
		return "degraded"
	case HealthRejected:
		return "rejected"
	}
	return fmt.Sprintf("HealthStatus(%d)", int(s))
}

// HealthReason is a machine-readable cause for a Degraded or Rejected
// classification.
type HealthReason string

const (
	// ReasonShortWindow: the observation span is shorter than the
	// minimum measurement window.
	ReasonShortWindow HealthReason = "short-window"
	// ReasonFewSamples: too few valid observations survived sanitization.
	ReasonFewSamples HealthReason = "few-samples"
	// ReasonRSSGaps: the RSS series has gaps longer than the nominal
	// report interval allows (dropout bursts, scanner stalls).
	ReasonRSSGaps HealthReason = "rss-gaps"
	// ReasonNonFiniteRSS: NaN/Inf RSSI values were dropped.
	ReasonNonFiniteRSS HealthReason = "non-finite-rss"
	// ReasonExcessiveLoss: sanitization discarded more than the tolerated
	// fraction of the input, whatever the individual causes.
	ReasonExcessiveLoss HealthReason = "excessive-loss"
	// ReasonClippedRSS: a large run of samples sits exactly on a rail
	// value (receiver saturation or a reporting floor).
	ReasonClippedRSS HealthReason = "clipped-rss"
	// ReasonTimestampAnomaly: observations arrived out of order or
	// duplicated and were repaired.
	ReasonTimestampAnomaly HealthReason = "timestamp-anomaly"
	// ReasonClockSkew: observation timestamps extend beyond the IMU
	// timeline (skewed BLE clock); the overhang was dropped.
	ReasonClockSkew HealthReason = "clock-skew"
	// ReasonIMUDropout: the inertial stream has a delivery gap.
	ReasonIMUDropout HealthReason = "imu-dropout"
	// ReasonIMUSaturation: the accelerometer rails at a fixed limit.
	ReasonIMUSaturation HealthReason = "imu-saturation"
	// ReasonNoEstimate: sanitized data reached the estimator but no
	// segment produced a usable fit.
	ReasonNoEstimate HealthReason = "no-estimate"
	// ReasonRSSOnlyFallback: the inertial stream was unusable, so the fix
	// came from the degradation ladder's RSS-only path-loss proximity
	// rung (range only, bearing unknown).
	ReasonRSSOnlyFallback HealthReason = "rss-only-fallback"
	// ReasonStaleFix: no usable observation window, so the previous fix
	// was re-emitted within the staleness bound (ladder's bottom rung).
	ReasonStaleFix HealthReason = "stale-fix"
	// ReasonBeaconAnomaly: the beacon identity shows physically
	// impossible interleaved RSSI deltas — the signature of a cloned or
	// spoofed beacon transmitting alongside the real one.
	ReasonBeaconAnomaly HealthReason = "beacon-anomaly"
	// ReasonTxPowerDrift: the running residual median showed the
	// beacon's transmit power drifting off its advertised calibration
	// (a dying battery); Γ(e) was re-anchored.
	ReasonTxPowerDrift HealthReason = "txpower-drift"
	// ReasonBeaconEvicted: the tracked beacon's last-known state
	// exceeded the staleness bound and was evicted.
	ReasonBeaconEvicted HealthReason = "stale-beacon"
	// ReasonNonFiniteEstimate: the estimator returned NaN/Inf (never
	// exposed to callers; the measurement is rejected instead).
	ReasonNonFiniteEstimate HealthReason = "non-finite-estimate"
)

// Health is the machine-readable degradation report attached to every
// measurement (and carried by *RejectedError when no measurement could be
// produced).
type Health struct {
	Status  HealthStatus
	Reasons []HealthReason
	// Dropped counts observations discarded by sanitization.
	Dropped int
	// Repaired counts observations re-ordered or de-duplicated.
	Repaired int
}

// Has reports whether the health carries the given reason.
func (h Health) Has(r HealthReason) bool {
	for _, have := range h.Reasons {
		if have == r {
			return true
		}
	}
	return false
}

func (h Health) String() string {
	if len(h.Reasons) == 0 {
		return h.Status.String()
	}
	rs := make([]string, len(h.Reasons))
	for i, r := range h.Reasons {
		rs[i] = string(r)
	}
	return h.Status.String() + " (" + strings.Join(rs, ", ") + ")"
}

// clone returns a deep copy whose Reasons slice is independent —
// required before degrading a health that another fix still references.
func (h Health) clone() Health {
	out := h
	out.Reasons = append([]HealthReason(nil), h.Reasons...)
	return out
}

// add records a reason once.
func (h *Health) add(r HealthReason) {
	if !h.Has(r) {
		h.Reasons = append(h.Reasons, r)
	}
}

// degrade marks the health Degraded (unless already Rejected) for reason r.
func (h *Health) degrade(r HealthReason) {
	h.add(r)
	if h.Status < HealthDegraded {
		h.Status = HealthDegraded
	}
}

// reject marks the health Rejected for reason r.
func (h *Health) reject(r HealthReason) {
	h.add(r)
	h.Status = HealthRejected
}

// RejectedError reports that sanitization or estimation classified the
// input as unusable. It wraps the underlying cause (when any) and carries
// the full health report so callers keep the machine-readable reasons.
type RejectedError struct {
	Health Health
	Err    error
}

func (e *RejectedError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: measurement rejected: %s: %v", e.Health, e.Err)
	}
	return fmt.Sprintf("core: measurement rejected: %s", e.Health)
}

func (e *RejectedError) Unwrap() error { return e.Err }

// rejectedErr builds a *RejectedError from a health report, forcing the
// status to Rejected.
func rejectedErr(h Health, r HealthReason, cause error) error {
	h.reject(r)
	return &RejectedError{Health: h, Err: cause}
}

// HealthFromError recovers the health report from a Locate/Track error:
// a *RejectedError yields its embedded report; any other error maps to a
// plain Rejected status.
func HealthFromError(err error) Health {
	var re *RejectedError
	if errors.As(err, &re) {
		return re.Health
	}
	return Health{Status: HealthRejected}
}
