package core

import (
	"locble/internal/obs"
	"locble/internal/sigproc"
)

// engineMetrics resolves every engine-scoped metric handle once, at
// Engine construction, so the pipeline records with plain atomic
// operations instead of name lookups. The registry is per-engine —
// Engine.Metrics() snapshots exactly what this engine did, unpolluted
// by other engines in the process (package-level instrumentation for
// sigproc/estimate/netproto lives in obs.Default instead).
type engineMetrics struct {
	reg *obs.Registry

	// Call and outcome counts. canceled tallies Locate/Track calls cut
	// short by their context (deadline, disconnect, drain) — not
	// pipeline failures, so they bypass the health tallies.
	locates    *obs.Counter
	trackRuns  *obs.Counter
	locateAlls *obs.Counter
	canceled   *obs.Counter

	// Streaming session lifecycle: fixes emitted, checkpoints taken,
	// restores performed, and how much buffered state a restore carried
	// (the "restore depth" — window samples resumed without re-filtering).
	sessFixes        *obs.Counter
	sessCheckpoints  *obs.Counter
	sessRestores     *obs.Counter
	sessRestoreDepth *obs.Histogram

	// Health classes and sanitization tallies; per-reason counters are
	// resolved on demand (once per distinct reason).
	healthOK       *obs.Counter
	healthDegraded *obs.Counter
	healthRejected *obs.Counter
	dropped        *obs.Counter
	repaired       *obs.Counter

	// Stage-span timers (seconds): the pipeline's front half
	// (sanitize → motion → filter) plus the estimation half
	// (classify → regress) and the whole-call latency.
	stSanitize *obs.Timer
	stMotion   *obs.Timer
	stFilter   *obs.Timer
	stClassify *obs.Timer
	stRegress  *obs.Timer
	locateSpan *obs.Timer
	trackSpan  *obs.Timer

	// Estimation quality.
	segments   *obs.Histogram
	residualDB *obs.Histogram

	// Streaming-ANF (AKF) run statistics.
	akfSamples  *obs.Counter
	akfDiverged *obs.Counter
	akfAlphaMax *obs.Histogram
	akfInnovMax *obs.Histogram

	// Degradation-ladder rung usage and adversarial-beacon defenses:
	// fixes produced by the RSS-only and last-known rungs, last-known
	// states evicted for staleness, and Γ-drift recalibrations.
	modeRSSOnly   *obs.Counter
	modeLastKnown *obs.Counter
	sessEvicted   *obs.Counter
	sessRecals    *obs.Counter

	// L-shape disambiguation outcomes.
	lshapeAttempts *obs.Counter
	lshapeResolved *obs.Counter

	// LocateAll fan-out concurrency (Max is the observed high-water mark).
	concurrency *obs.Gauge
}

func newEngineMetrics() *engineMetrics {
	r := obs.NewRegistry()
	return &engineMetrics{
		reg:             r,
		locates:         r.Counter("core.locate.calls"),
		trackRuns:       r.Counter("core.track.calls"),
		locateAlls:      r.Counter("core.locateall.calls"),
		canceled:        r.Counter("core.canceled"),
		sessFixes:       r.Counter("core.session.fixes"),
		sessCheckpoints: r.Counter("core.session.checkpoints"),
		sessRestores:    r.Counter("core.session.restores"),
		sessRestoreDepth: r.Histogram("core.session.restore.depth",
			[]float64{4, 16, 64, 256, 1024}),
		healthOK:       r.Counter("core.health.ok"),
		healthDegraded: r.Counter("core.health.degraded"),
		healthRejected: r.Counter("core.health.rejected"),
		dropped:        r.Counter("core.sanitize.dropped"),
		repaired:       r.Counter("core.sanitize.repaired"),
		stSanitize:     r.Timer("core.stage.sanitize.seconds"),
		stMotion:       r.Timer("core.stage.motion.seconds"),
		stFilter:       r.Timer("core.stage.filter.seconds"),
		stClassify:     r.Timer("core.stage.classify.seconds"),
		stRegress:      r.Timer("core.stage.regress.seconds"),
		locateSpan:     r.Timer("core.locate.seconds"),
		trackSpan:      r.Timer("core.track.seconds"),
		segments:       r.Histogram("core.segments", []float64{1, 2, 3, 5, 8, 13}),
		residualDB:     r.Histogram("core.residual_db", []float64{0.5, 1, 2, 4, 8, 16}),
		akfSamples:     r.Counter("core.akf.samples"),
		akfDiverged:    r.Counter("core.akf.diverged"),
		akfAlphaMax:    r.Histogram("core.akf.alpha_max", []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1}),
		akfInnovMax:    r.Histogram("core.akf.innov_absmax", []float64{1, 2, 4, 8, 16, 32}),
		modeRSSOnly:    r.Counter("core.mode.rss_only"),
		modeLastKnown:  r.Counter("core.mode.last_known"),
		sessEvicted:    r.Counter("core.session.evicted"),
		sessRecals:     r.Counter("core.session.recalibrations"),
		lshapeAttempts: r.Counter("core.lshape.attempts"),
		lshapeResolved: r.Counter("core.lshape.resolved"),
		concurrency:    r.Gauge("core.locateall.concurrency"),
	}
}

// recordHealth tallies one finished measurement attempt: its health
// class, every machine-readable reason, and the sanitization counts.
func (m *engineMetrics) recordHealth(h Health) {
	switch h.Status {
	case HealthOK:
		m.healthOK.Inc()
	case HealthDegraded:
		m.healthDegraded.Inc()
	case HealthRejected:
		m.healthRejected.Inc()
	}
	for _, r := range h.Reasons {
		m.reg.Counter("core.health.reason." + string(r)).Inc()
	}
	m.dropped.Add(int64(h.Dropped))
	m.repaired.Add(int64(h.Repaired))
}

// recordAKF folds one streaming-ANF run's statistics in.
func (m *engineMetrics) recordAKF(s sigproc.AKFStats) {
	if s.Samples == 0 {
		return
	}
	m.akfSamples.Add(int64(s.Samples))
	m.akfDiverged.Add(int64(s.Diverged))
	m.akfAlphaMax.Observe(s.AlphaMax)
	m.akfInnovMax.Observe(s.InnovAbsMax)
}

// recordEstimate folds one successful estimate's quality stats in.
func (m *engineMetrics) recordEstimate(segments int, residualDB float64) {
	m.segments.Observe(float64(segments))
	m.residualDB.Observe(residualDB)
}

// Metrics returns a consistent snapshot of the engine's metrics: stage
// latencies, health-class and drop-reason tallies, estimation quality,
// AKF behaviour and LocateAll concurrency. Safe to call concurrently
// with pipeline work.
func (e *Engine) Metrics() obs.Snapshot { return e.met.reg.Snapshot() }

// MetricsRegistry exposes the engine's registry — to mount its Handler
// on a debug listener, or to inject a deterministic clock in tests.
func (e *Engine) MetricsRegistry() *obs.Registry { return e.met.reg }
