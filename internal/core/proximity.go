package core

import (
	"math"

	"locble/internal/estimate"
	"locble/internal/rf"
	"locble/internal/robust"
)

// ProximityFusionConfig tunes the last-metre refinement (paper Sec. 9.2:
// "Bluetooth proximity actually demonstrates fairly good accuracy within
// 2 m. Therefore, if we incorporate proximity in LocBLE, we will be able
// to bring accuracy under 1 m").
type ProximityFusionConfig struct {
	// EngageRange: proximity information is only trusted when the
	// proximity-implied distance is below this (metres).
	EngageRange float64
	// Blend is the weight given to the proximity range over the
	// regression range when engaged (0..1).
	Blend float64
	// TopQuantile selects the strongest RSS used as the proximity
	// reading (robust maximum).
	TopQuantile float64
}

// DefaultProximityFusionConfig returns the last-metre settings.
func DefaultProximityFusionConfig() ProximityFusionConfig {
	return ProximityFusionConfig{EngageRange: 2.0, Blend: 0.7, TopQuantile: 0.95}
}

// RefineWithProximity implements the paper's proposed proximity fusion:
// when the strongest recent RSS implies the observer passed very close to
// the beacon, the proximity range (which is accurate in the immediate
// zone) corrects the regression fix's *magnitude* while keeping its
// bearing. The minimum point of the walk gives the anchor: the beacon's
// distance from the closest approach point on the track.
//
// m is a completed measurement; the function returns a copy of its
// estimate with the range blended, or the original estimate when
// proximity never engaged (no close approach).
func (e *Engine) RefineWithProximity(m *Measurement, cfg ProximityFusionConfig) *estimate.Estimate {
	if cfg.EngageRange <= 0 {
		cfg = DefaultProximityFusionConfig()
	}
	if len(m.Filtered) == 0 || m.Est == nil || m.Track == nil {
		// RSS-only ladder fixes carry no motion track to anchor on.
		return m.Est
	}
	// Robust strongest reading and when it occurred: the MAD-gated
	// maximum from the shared robust package, so an interference impulse
	// the bulk of the series does not corroborate cannot fake a close
	// approach (the same outlier scale the IRLS estimator uses).
	idxMax, vMax, _ := robust.RobustMax(m.Filtered, cfg.TopQuantile, 3, nil)
	if idxMax < 0 {
		return m.Est
	}
	// Proximity-implied distance from the calibrated model at the
	// estimate's own (Γ, n).
	dProx := rf.PathLossDistance(vMax, m.Est.Gamma, m.Est.N)
	if math.IsNaN(dProx) || dProx > cfg.EngageRange {
		return m.Est
	}
	// Closest-approach anchor: the observer position when the maximum
	// was seen.
	t := m.Times[idxMax]
	ax, ay := m.Track.At(t)

	// Current estimate relative to the anchor.
	vx, vy := m.Est.X-ax, m.Est.H-ay
	dEst := math.Hypot(vx, vy)
	if dEst < 1e-9 {
		return m.Est
	}
	// Blend the magnitude toward the proximity distance, keep bearing.
	dNew := cfg.Blend*dProx + (1-cfg.Blend)*dEst
	out := *m.Est
	out.X = ax + vx/dEst*dNew
	out.H = ay + vy/dEst*dNew
	out.Candidates = []estimate.Candidate{{X: out.X, H: out.H}}
	return &out
}
