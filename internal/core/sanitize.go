package core

import (
	"math"
	"sort"

	"locble/internal/imu"
	"locble/internal/sim"
)

// SanitizeConfig tunes the defensive input pass that runs before the
// pipeline proper. The defaults are calibrated so a clean simulated trace
// classifies as HealthOK (clean max inter-report gap is ~0.5 s at the
// paper's 10 Hz advertising) while the impairments the faults package
// injects are detected and reported.
type SanitizeConfig struct {
	// MaxGap is the RSS inter-report gap (seconds) above which the
	// measurement is flagged ReasonRSSGaps.
	MaxGap float64
	// BridgeGap is the longest gap (seconds) the preprocessor bridges
	// with interpolated samples before low-pass filtering, so a dropout
	// burst does not smear filter ringing into its neighbours.
	BridgeGap float64
	// MinSpan is the minimum observation span (seconds); shorter
	// measurements are rejected (ReasonShortWindow).
	MinSpan float64
	// MinSamples is the minimum number of valid observations; fewer are
	// rejected (ReasonFewSamples).
	MinSamples int
	// MaxDropFrac is the fraction of discarded observations above which
	// the measurement degrades.
	MaxDropFrac float64
	// RailFrac is the fraction of samples sitting exactly on the series
	// extreme above which clipping is flagged (ReasonClippedRSS).
	RailFrac float64
	// SkewTolerance is how far (seconds) observation timestamps may
	// extend past the IMU timeline before the overhang is dropped and
	// ReasonClockSkew raised.
	SkewTolerance float64
	// IMUMaxGap is the inertial-stream delivery gap (seconds) that flags
	// ReasonIMUDropout.
	IMUMaxGap float64
	// IMURailFrac is the fraction of accelerometer samples pinned at the
	// absolute maximum that flags ReasonIMUSaturation.
	IMURailFrac float64
	// Beacon-identity anomaly detection (clone/spoof): two transmitters
	// sharing one identity at different ranges produce interleaved
	// readings whose adjacent deltas alternate sign with a magnitude no
	// honest channel produces at report rate. A run of CloneMinFlips
	// consecutive sign-alternating jumps of at least CloneDeltaDB dB,
	// each within CloneWindowS seconds, flags ReasonBeaconAnomaly.
	CloneDeltaDB  float64
	CloneWindowS  float64
	CloneMinFlips int
}

// DefaultSanitizeConfig returns the calibrated thresholds.
func DefaultSanitizeConfig() SanitizeConfig {
	return SanitizeConfig{
		MaxGap:        1.0,
		BridgeGap:     2.5,
		MinSpan:       3.0,
		MinSamples:    8,
		MaxDropFrac:   0.05,
		RailFrac:      0.20,
		SkewTolerance: 0.75,
		IMUMaxGap:     0.30,
		IMURailFrac:   0.02,
		CloneDeltaDB:  15,
		CloneWindowS:  0.4,
		CloneMinFlips: 6,
	}
}

// withDefaults fills zero fields so a hand-built Config{} still
// sanitizes sensibly.
func (c SanitizeConfig) withDefaults() SanitizeConfig {
	d := DefaultSanitizeConfig()
	if c.MaxGap <= 0 {
		c.MaxGap = d.MaxGap
	}
	if c.BridgeGap <= 0 {
		c.BridgeGap = d.BridgeGap
	}
	if c.MinSpan <= 0 {
		c.MinSpan = d.MinSpan
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.MaxDropFrac <= 0 {
		c.MaxDropFrac = d.MaxDropFrac
	}
	if c.RailFrac <= 0 {
		c.RailFrac = d.RailFrac
	}
	if c.SkewTolerance <= 0 {
		c.SkewTolerance = d.SkewTolerance
	}
	if c.IMUMaxGap <= 0 {
		c.IMUMaxGap = d.IMUMaxGap
	}
	if c.IMURailFrac <= 0 {
		c.IMURailFrac = d.IMURailFrac
	}
	if c.CloneDeltaDB <= 0 {
		c.CloneDeltaDB = d.CloneDeltaDB
	}
	if c.CloneWindowS <= 0 {
		c.CloneWindowS = d.CloneWindowS
	}
	if c.CloneMinFlips <= 0 {
		c.CloneMinFlips = d.CloneMinFlips
	}
	return c
}

// sanitizeObservations returns a cleaned copy of obs: non-finite and
// physically impossible RSSI dropped, timestamps sorted and exact
// duplicates removed, clock-skew overhang beyond the IMU timeline
// (imuDur, 0 to skip) trimmed. Findings accumulate into h; the caller
// decides rejection from the returned slice's size/span.
func sanitizeObservations(obs []sim.BeaconObservation, cfg SanitizeConfig, imuDur float64, h *Health) []sim.BeaconObservation {
	clean := make([]sim.BeaconObservation, 0, len(obs))
	nonFinite := false
	for _, o := range obs {
		switch {
		case math.IsNaN(o.RSSI) || math.IsInf(o.RSSI, 0) || math.IsNaN(o.T) || math.IsInf(o.T, 0):
			nonFinite = true
			h.Dropped++
		case o.RSSI > 20 || o.RSSI < -130 || o.T < -cfg.SkewTolerance:
			// A positive-dBm or sub-thermal reading is a transport bug,
			// not a measurement.
			h.Dropped++
		default:
			clean = append(clean, o)
		}
	}
	if nonFinite {
		h.degrade(ReasonNonFiniteRSS)
	}

	// Order repair: count inversions before sorting so reordering is
	// observable, then stable-sort by time.
	inversions := 0
	for i := 1; i < len(clean); i++ {
		if clean[i].T < clean[i-1].T {
			inversions++
		}
	}
	if inversions > 0 {
		sort.SliceStable(clean, func(i, j int) bool { return clean[i].T < clean[j].T })
		h.Repaired += inversions
	}

	// De-duplicate exact repeats (same instant, same reading).
	dedup := clean[:0]
	for i, o := range clean {
		if i > 0 {
			prev := dedup[len(dedup)-1]
			if math.Abs(o.T-prev.T) < 1e-9 && o.RSSI == prev.RSSI {
				h.Repaired++
				continue
			}
		}
		dedup = append(dedup, o)
	}
	clean = dedup
	if h.Repaired > 2 && float64(h.Repaired) > 0.02*float64(len(obs)) {
		h.degrade(ReasonTimestampAnomaly)
	}

	// Clock skew: the BLE timeline must not outrun the inertial one.
	if imuDur > 0 {
		trimmed := clean[:0]
		skewed := 0
		for _, o := range clean {
			if o.T > imuDur+cfg.SkewTolerance {
				skewed++
				continue
			}
			trimmed = append(trimmed, o)
		}
		clean = trimmed
		if skewed > 0 {
			h.Dropped += skewed
			h.degrade(ReasonClockSkew)
		}
	}

	if len(obs) > 0 && float64(h.Dropped) > cfg.MaxDropFrac*float64(len(obs)) {
		h.degrade(ReasonExcessiveLoss)
	}

	detectRSSRails(clean, cfg, h)
	detectRSSGaps(clean, cfg, h)
	detectCloneAnomaly(clean, cfg, h)
	return clean
}

// detectCloneAnomaly flags a beacon identity whose readings interleave
// two physically separate transmitters: adjacent samples alternating by
// ≥ CloneDeltaDB in opposite directions, each jump inside CloneWindowS.
// Honest channels jitter a few dB between reports and an honest step
// change (environment transition, TX decay) moves in one direction —
// only two sources at different ranges produce a sustained alternating
// run. The detector degrades (never rejects): the robust loss can still
// fit the honest subset, and callers get the machine-readable flag.
func detectCloneAnomaly(obs []sim.BeaconObservation, cfg SanitizeConfig, h *Health) {
	flips, lastSign := 0, 0
	for i := 1; i < len(obs); i++ {
		dt := obs[i].T - obs[i-1].T
		dv := obs[i].RSSI - obs[i-1].RSSI
		if dt <= 0 || dt > cfg.CloneWindowS || math.Abs(dv) < cfg.CloneDeltaDB {
			flips, lastSign = 0, 0
			continue
		}
		sign := 1
		if dv < 0 {
			sign = -1
		}
		if lastSign != 0 && sign != lastSign {
			flips++
			if flips >= cfg.CloneMinFlips {
				h.degrade(ReasonBeaconAnomaly)
				return
			}
		}
		lastSign = sign
	}
}

// detectRSSRails flags a series where a large fraction of samples sits
// exactly on the min or max value — the signature of value clipping
// (fading makes honest extremes unique).
func detectRSSRails(obs []sim.BeaconObservation, cfg SanitizeConfig, h *Health) {
	if len(obs) < 20 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, o := range obs {
		lo = math.Min(lo, o.RSSI)
		hi = math.Max(hi, o.RSSI)
	}
	if hi-lo < 1e-9 {
		h.degrade(ReasonClippedRSS) // fully stuck radio
		return
	}
	atLo, atHi := 0, 0
	for _, o := range obs {
		if math.Abs(o.RSSI-lo) < 1e-9 {
			atLo++
		}
		if math.Abs(o.RSSI-hi) < 1e-9 {
			atHi++
		}
	}
	if float64(atLo) >= cfg.RailFrac*float64(len(obs)) || float64(atHi) >= cfg.RailFrac*float64(len(obs)) {
		h.degrade(ReasonClippedRSS)
	}
}

// detectRSSGaps flags inter-report gaps above cfg.MaxGap.
func detectRSSGaps(obs []sim.BeaconObservation, cfg SanitizeConfig, h *Health) {
	for i := 1; i < len(obs); i++ {
		if obs[i].T-obs[i-1].T > cfg.MaxGap {
			h.degrade(ReasonRSSGaps)
			return
		}
	}
}

// checkIMUHealth inspects the inertial stream for delivery gaps and
// accelerometer saturation. It never rejects by itself — a damaged IMU
// stream degrades the fix; a missing one fails in motion alignment.
func checkIMUHealth(tr *imu.Trace, cfg SanitizeConfig, h *Health) {
	if tr == nil || len(tr.Samples) < 2 {
		return
	}
	s := tr.Samples
	for i := 1; i < len(s); i++ {
		if s[i].T-s[i-1].T > cfg.IMUMaxGap {
			h.degrade(ReasonIMUDropout)
			break
		}
	}
	// Saturation: a rail value is hit exactly, repeatedly. Honest noisy
	// extremes are unique to within float precision.
	if len(s) >= 50 {
		rail := 0.0
		for _, sm := range s {
			for a := 0; a < 3; a++ {
				rail = math.Max(rail, math.Abs(sm.Acc[a]))
			}
		}
		atRail := 0
		for _, sm := range s {
			for a := 0; a < 3; a++ {
				if math.Abs(math.Abs(sm.Acc[a])-rail) < 1e-9 {
					atRail++
					break
				}
			}
		}
		if float64(atRail) >= cfg.IMURailFrac*float64(len(s)) {
			h.degrade(ReasonIMUSaturation)
		}
	}
}

// bridgeGaps inserts linearly interpolated samples into gaps between
// 3× the nominal report period and cfg.BridgeGap, so the low-pass filter
// sees a quasi-uniform series instead of ringing across a dropout burst.
// It returns the (possibly expanded) series plus a keep mask selecting
// the original samples; a nil mask means nothing was inserted.
func bridgeGaps(times, rss []float64, cfg SanitizeConfig) (bt, brss []float64, keep []bool) {
	if len(times) < 2 {
		return times, rss, nil
	}
	diffs := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d > 0 {
			diffs = append(diffs, d)
		}
	}
	if len(diffs) == 0 {
		return times, rss, nil
	}
	sort.Float64s(diffs)
	nominal := diffs[len(diffs)/2]
	if nominal <= 0 {
		return times, rss, nil
	}
	threshold := 3 * nominal
	inserted := false
	bt = make([]float64, 0, len(times))
	brss = make([]float64, 0, len(rss))
	keep = make([]bool, 0, len(times))
	for i := range times {
		if i > 0 {
			gap := times[i] - times[i-1]
			if gap > threshold && gap <= cfg.BridgeGap {
				n := int(gap/nominal) - 1
				for k := 1; k <= n; k++ {
					frac := float64(k) / float64(n+1)
					bt = append(bt, times[i-1]+frac*gap)
					brss = append(brss, rss[i-1]+frac*(rss[i]-rss[i-1]))
					keep = append(keep, false)
					inserted = true
				}
			}
		}
		bt = append(bt, times[i])
		brss = append(brss, rss[i])
		keep = append(keep, true)
	}
	if !inserted {
		return times, rss, nil
	}
	return bt, brss, keep
}
