package core

import (
	"math"
	"testing"

	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/sim"
)

// lshape3DPlan is the paper's proposed 3-D gesture: L-shaped walk plus an
// app-guided phone raise on the second leg and a final lift in place.
func lshape3DPlan() imu.Plan {
	return imu.Plan{Segments: []imu.Segment{
		{Heading: 0, Distance: 4},
		{Heading: math.Pi / 2, Distance: 4, Lift: 0.6},
		{Heading: math.Pi / 2, Lift: -1.2},
	}}
}

func TestLocate3DRecoversHeight(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var zErrs, xyErrs []float64
	for seed := int64(1); seed <= 8; seed++ {
		sc := sim.Scenario{
			Beacons:      []sim.BeaconSpec{{Name: "shelf", X: 5, Y: 2.5, Z: 1.5}},
			ObserverPlan: lshape3DPlan(),
			EnvModel:     sim.StaticEnv(rf.LOS),
			Seed:         seed,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		est, err := eng.Locate3D(tr, "shelf")
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			continue
		}
		zErrs = append(zErrs, math.Abs(est.Z-1.5))
		xyErrs = append(xyErrs, math.Hypot(est.X-5, est.H-2.5))
		t.Logf("seed %d: est (%.2f, %.2f, %.2f)", seed, est.X, est.H, est.Z)
	}
	if len(zErrs) < 5 {
		t.Fatalf("only %d successful 3-D estimates", len(zErrs))
	}
	if m := median(xyErrs); m > 2.5 {
		t.Errorf("median 2-D error %.2f m in 3-D mode", m)
	}
	// The vertical baseline is short (~1 m of lift), so height is the
	// weakest axis; the paper leaves 3-D as future work. Require the
	// median height error to beat the no-information baseline (always
	// guessing plane height, error 1.5 m).
	if m := median(zErrs); m > 1.5 {
		t.Errorf("median height error %.2f m — no better than guessing the carry plane", m)
	}
}

func TestLocate3DUnknownBeacon(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "b", X: 5, Y: 2}},
		ObserverPlan: lshape3DPlan(),
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Locate3D(tr, "nope"); err == nil {
		t.Error("want error for unknown beacon")
	}
}
