package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"locble/internal/imu"
	"locble/internal/obs"
	"locble/internal/rf"
	"locble/internal/sim"
)

// multiBeaconScenario places three beacons around the canonical L-shape
// walk so LocateAll has real fan-out.
func multiBeaconScenario(seed int64) sim.Scenario {
	return sim.Scenario{
		Beacons: []sim.BeaconSpec{
			{Name: "b0", X: 6, Y: 3},
			{Name: "b1", X: 2, Y: 5},
			{Name: "b2", X: 7, Y: 1},
		},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     sim.StaticEnv(rf.LOS),
		Seed:         seed,
	}
}

// TestMetricsExactness pins the observability contract: after a
// LocateAll over the default scenario, the engine snapshot must carry
// non-zero stage latencies for filter/classify/regress and drop-reason
// counts that exactly match the damage injected into the trace.
func TestMetricsExactness(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr, err := sim.Run(multiBeaconScenario(1))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	// Poison exactly 5 of b0's readings with NaN RSSI: the sanitizer
	// must drop each one (core.sanitize.dropped) and degrade that one
	// measurement with reason non-finite-rss.
	const poisoned = 5
	b0 := tr.Observations["b0"]
	if len(b0) < 3*poisoned {
		t.Fatalf("trace too short to poison: %d obs", len(b0))
	}
	for i := 0; i < poisoned; i++ {
		b0[10+2*i].RSSI = math.NaN()
	}

	results := eng.LocateAll(tr)
	if len(results) != 3 {
		t.Fatalf("LocateAll: %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("LocateAll %s: %v", r.Name, r.Err)
		}
	}

	snap := eng.Metrics()

	// Stage latencies: every per-measurement stage ran 3 times and took
	// real time.
	for _, stage := range []string{"filter", "classify", "regress"} {
		h, ok := snap.Histograms["core.stage."+stage+".seconds"]
		if !ok {
			t.Fatalf("missing histogram core.stage.%s.seconds", stage)
		}
		if h.Count < 3 {
			t.Errorf("stage %s: count %d, want >= 3", stage, h.Count)
		}
		if !(h.Sum > 0) {
			t.Errorf("stage %s: zero total latency", stage)
		}
	}

	// Exact outcome counts.
	want := map[string]int64{
		"core.locateall.calls":              1,
		"core.locate.calls":                 3,
		"core.health.ok":                    2,
		"core.health.degraded":              1,
		"core.health.rejected":              0,
		"core.health.reason.non-finite-rss": 1,
		"core.sanitize.dropped":             poisoned,
	}
	for name, w := range want {
		if got := snap.Counters[name]; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}

	// The fan-out gauge: drained back to zero, high-water mark within
	// the semaphore bound.
	g, ok := snap.Gauges["core.locateall.concurrency"]
	if !ok {
		t.Fatal("missing gauge core.locateall.concurrency")
	}
	if g.Value != 0 {
		t.Errorf("concurrency gauge did not drain: %d", g.Value)
	}
	if g.Max < 1 || g.Max > int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("concurrency max %d outside [1, %d]", g.Max, runtime.GOMAXPROCS(0))
	}
}

// TestMetricsDeterministicLatency swaps in a stepping clock and checks
// the whole-call latency histogram records exactly what the clock says.
func TestMetricsDeterministicLatency(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	fc := obs.NewFakeClock()
	eng.MetricsRegistry().SetClock(fc.Now)

	tr, err := sim.Run(multiBeaconScenario(2))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if _, err := eng.Locate(tr, "b0"); err != nil {
		t.Fatalf("Locate: %v", err)
	}
	h := eng.Metrics().Histograms["core.locate.seconds"]
	if h.Count != 1 {
		t.Fatalf("locate span count %d, want 1", h.Count)
	}
	if h.Sum <= 0 {
		t.Fatalf("locate span recorded no fake time: %v", h.Sum)
	}
}

// TestMetricsUnderConcurrency hammers one engine with concurrent
// Locate / TrackBeacon / LocateAll work while snapshot readers verify
// the consistency contract: counters never go backwards between
// snapshots, and every histogram's count equals the sum of its bucket
// counts. Run under -race this also proves the pipeline's metric paths
// are data-race free.
func TestMetricsUnderConcurrency(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr, err := sim.Run(multiBeaconScenario(3))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}

	const iters = 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	work := []func(){
		func() { eng.Locate(tr, "b0") },
		func() { eng.Locate(tr, "b1") },
		func() { eng.TrackBeacon(tr, "b2", 6, 2) },
		func() { eng.LocateAll(tr) },
	}
	for _, w := range work {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w()
			}
		}(w)
	}

	// Two snapshot readers race the writers.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			prev := map[string]int64{}
			for {
				snap := eng.Metrics()
				for name, v := range snap.Counters {
					if v < prev[name] {
						t.Errorf("counter %s went backwards: %d -> %d", name, prev[name], v)
					}
					prev[name] = v
				}
				for name, h := range snap.Histograms {
					var sum uint64
					for _, b := range h.Buckets {
						sum += b.Count
					}
					if sum != h.Count {
						t.Errorf("histogram %s: count %d != bucket sum %d", name, h.Count, sum)
					}
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	wg.Wait()
	close(done)
	readers.Wait()

	// Final tallies line up with the work submitted: 2×iters Locate
	// calls directly, plus 3 per LocateAll.
	snap := eng.Metrics()
	wantLocates := int64(2*iters + 3*iters)
	if got := snap.Counters["core.locate.calls"]; got != wantLocates {
		t.Errorf("core.locate.calls = %d, want %d", got, wantLocates)
	}
	if got := snap.Counters["core.track.calls"]; got != iters {
		t.Errorf("core.track.calls = %d, want %d", got, iters)
	}
	if got := snap.Counters["core.locateall.calls"]; got != iters {
		t.Errorf("core.locateall.calls = %d, want %d", got, iters)
	}
}
