package core

import (
	"context"
	"errors"
	"testing"

	"locble/internal/rf"
	"locble/internal/sim"
)

// TestLocateContextCanceled: an already-canceled context stops the
// pipeline, the error matches the context error under errors.Is, and
// the call lands in the canceled tally rather than the health tallies.
func TestLocateContextCanceled(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 1))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rejectedBefore := eng.Metrics().Counters["core.health.rejected"]
	if _, err := eng.LocateContext(ctx, tr, "target"); !errors.Is(err, context.Canceled) {
		t.Fatalf("LocateContext(canceled) = %v, want context.Canceled", err)
	}
	snap := eng.Metrics()
	if snap.Counters["core.canceled"] != 1 {
		t.Errorf("core.canceled = %d, want 1", snap.Counters["core.canceled"])
	}
	if got := snap.Counters["core.health.rejected"]; got != rejectedBefore {
		t.Errorf("cancellation recorded as health rejection (%d -> %d)", rejectedBefore, got)
	}

	// The same engine still works without a deadline.
	if _, err := eng.LocateContext(context.Background(), tr, "target"); err != nil {
		t.Fatalf("LocateContext(Background) after cancel = %v", err)
	}
}

func TestTrackBeaconContextDeadline(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr, err := sim.Run(lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 2))
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	if _, err := eng.TrackBeaconContext(ctx, tr, "target", 0, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TrackBeaconContext(expired) = %v, want context.DeadlineExceeded", err)
	}
}

// TestLocateAllContextCanceled: a canceled fan-out neither hangs nor
// drops beacons — every beacon reports the cancellation.
func TestLocateAllContextCanceled(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sc := lshapeScenario(6, 3, sim.StaticEnv(rf.LOS), 3)
	sc.Beacons = append(sc.Beacons,
		sim.BeaconSpec{Name: "b2", X: 2, Y: 5},
		sim.BeaconSpec{Name: "b3", X: -3, Y: 1},
	)
	tr, err := sim.Run(sc)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := eng.LocateAllContext(ctx, tr)
	if len(results) != len(tr.Observations) {
		t.Fatalf("got %d results for %d beacons", len(results), len(tr.Observations))
	}
	for _, res := range results {
		if res.Err == nil {
			t.Errorf("beacon %s: no error under canceled context", res.Name)
		} else if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("beacon %s: err = %v, want context.Canceled", res.Name, res.Err)
		}
	}
}
