package core

import (
	"fmt"
	"math"

	"locble/internal/estimate"
	"locble/internal/motion"
	"locble/internal/sigproc"
	"locble/internal/sim"
)

// TrackPoint is one sliding-window fix produced by TrackBeacon.
type TrackPoint struct {
	// T is the window's end time (seconds into the trace).
	T float64
	// Est is the estimate fitted on the window. For a stationary beacon
	// successive fixes should agree; for a moving target each fix
	// estimates the target's position at the *start* of its window
	// (paper Sec. 5: the regression recovers the initial location).
	Est *estimate.Estimate
	// WindowStart is the first observation time used.
	WindowStart float64
	// Samples used in the window.
	Samples int
}

// TrackBeacon runs sliding-window estimation over a trace: a fix every
// step seconds, each fitted on the most recent window seconds of fused
// RSS + motion data. This is the "tracking" in the paper's title — a
// stream of location fixes rather than one measurement — and also what
// the navigation UI consumes while the user keeps moving.
func (e *Engine) TrackBeacon(tr *sim.Trace, beaconName string, window, step float64) ([]TrackPoint, error) {
	obs, ok := tr.Observations[beaconName]
	if !ok || len(obs) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBeacon, beaconName)
	}
	if window <= 0 {
		window = 6
	}
	if step <= 0 {
		step = 2
	}

	_, alignedSamples, err := motion.Align(tr.IMU.Samples)
	if err != nil {
		return nil, fmt.Errorf("core: align: %w", err)
	}
	track, err := motion.BuildTrack(alignedSamples, e.cfg.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: track: %w", err)
	}
	var targetTrack *motion.Track
	if tr.TargetIMU != nil && beaconName == tr.Beacons[0].Name {
		_, tgtAligned, err := motion.Align(tr.TargetIMU.Samples)
		if err != nil {
			return nil, fmt.Errorf("core: align target: %w", err)
		}
		targetTrack, err = motion.BuildTrack(tgtAligned, e.cfg.Tracker)
		if err != nil {
			return nil, fmt.Errorf("core: target track: %w", err)
		}
	}

	estCfg := e.cfg.Estimator
	for _, spec := range tr.Beacons {
		if spec.Name == beaconName && spec.Tx.TxPowerDBm != 0 {
			estCfg.GammaSoftMin = spec.Tx.TxPowerDBm - 18
			estCfg.GammaSoftMax = spec.Tx.TxPowerDBm + 8
			break
		}
	}

	raw := make([]float64, len(obs))
	times := make([]float64, len(obs))
	for i, o := range obs {
		raw[i] = o.RSSI
		times[i] = o.T
	}
	filtered := raw
	if !e.cfg.DisableANF {
		fs := tr.Phone.SampleRateHz
		if fs <= 0 {
			fs = 9
		}
		bf, err := sigproc.NewButterworth(e.cfg.ButterworthOrder, math.Min(e.cfg.CutoffHz, fs/2*0.8), fs)
		if err != nil {
			return nil, fmt.Errorf("core: ANF design: %w", err)
		}
		if e.cfg.StreamingANF {
			filtered = sigproc.NewAKF(bf).Filter(raw)
		} else {
			filtered = sigproc.FiltFilt(bf, raw)
		}
	}

	fused := make([]estimate.Obs, len(obs))
	for i := range obs {
		ox, oy := track.At(times[i])
		p, q := -ox, -oy
		if targetTrack != nil {
			bx, by := targetTrack.At(times[i])
			p += bx
			q += by
		}
		fused[i] = estimate.Obs{T: times[i], RSS: filtered[i], P: p, Q: q}
	}

	var points []TrackPoint
	end := times[len(times)-1]
	for tEnd := math.Min(times[0]+window, end); ; tEnd += step {
		lo, hi := 0, len(fused)
		for lo < len(fused) && fused[lo].T < tEnd-window {
			lo++
		}
		for hi > 0 && fused[hi-1].T > tEnd {
			hi--
		}
		if hi-lo >= estCfg.MinSamples {
			winObs := fused[lo:hi]
			est, err := estimate.Run(winObs, estCfg)
			if err == nil {
				if est.Ambiguous {
					// Resolve against the previous fix when available.
					if len(points) > 0 {
						prev := estimate.Candidate{X: points[len(points)-1].Est.X, H: points[len(points)-1].Est.H}
						best := est.Candidates[0]
						for _, c := range est.Candidates[1:] {
							if c.Dist(prev) < best.Dist(prev) {
								best = c
							}
						}
						resolved := *est
						resolved.X, resolved.H = best.X, best.H
						est = &resolved
					}
				}
				points = append(points, TrackPoint{
					T:           tEnd,
					Est:         est,
					WindowStart: winObs[0].T,
					Samples:     len(winObs),
				})
			}
		}
		if tEnd >= end {
			break
		}
	}
	if len(points) == 0 {
		return nil, ErrNoEstimate
	}
	return points, nil
}
