package core

import (
	"context"
	"errors"
	"math"

	"locble/internal/estimate"
	"locble/internal/sim"
)

// TrackPoint is one sliding-window fix produced by TrackBeacon.
type TrackPoint struct {
	// T is the window's end time (seconds into the trace).
	T float64
	// Est is the estimate fitted on the window. For a stationary beacon
	// successive fixes should agree; for a moving target each fix
	// estimates the target's position at the *start* of its window
	// (paper Sec. 5: the regression recovers the initial location).
	Est *estimate.Estimate
	// WindowStart is the first observation time used.
	WindowStart float64
	// Samples used in the window.
	Samples int
	// Health is the trace-level degradation report (shared by every fix
	// of the run); stale re-emitted fixes carry their own degraded copy.
	Health Health
	// Mode identifies which degradation-ladder rung produced this fix:
	// ModeFull for a window that fitted, ModeLastKnown for a re-emitted
	// previous fix within the staleness bound.
	Mode FixMode
}

// TrackBeacon runs sliding-window estimation over a trace: a fix every
// step seconds, each fitted on the most recent window seconds of fused
// RSS + motion data. This is the "tracking" in the paper's title — a
// stream of location fixes rather than one measurement — and also what
// the navigation UI consumes while the user keeps moving.
func (e *Engine) TrackBeacon(tr *sim.Trace, beaconName string, window, step float64) ([]TrackPoint, error) {
	return e.TrackBeaconContext(context.Background(), tr, beaconName, window, step)
}

// TrackBeaconContext is TrackBeacon under a context: a deadline or
// cancellation stops the run between windows and interrupts the
// per-window regression mid-search. A canceled run returns an error
// matching the context error under errors.Is (no partial fixes).
func (e *Engine) TrackBeaconContext(ctx context.Context, tr *sim.Trace, beaconName string, window, step float64) ([]TrackPoint, error) {
	sp := e.met.trackSpan.Start()
	pts, err := e.trackBeacon(ctx, tr, beaconName, window, step)
	sp.End()
	e.met.trackRuns.Inc()
	if err != nil {
		if isCanceled(err) {
			e.met.canceled.Inc()
		} else {
			e.met.recordHealth(HealthFromError(err))
		}
		return nil, err
	}
	e.met.recordHealth(pts[0].Health)
	return pts, nil
}

// trackBeacon is the uninstrumented body behind TrackBeacon.
func (e *Engine) trackBeacon(ctx context.Context, tr *sim.Trace, beaconName string, window, step float64) ([]TrackPoint, error) {
	if window <= 0 {
		window = 6
	}
	if step <= 0 {
		step = 2
	}

	sc := getLocateScratch()
	defer putLocateScratch(sc)
	p, err := e.prepare(tr, beaconName, sc)
	if err != nil {
		return nil, err
	}
	fused, estCfg := p.fused, p.estCfg
	estCfg.Cancel = cancelFromCtx(ctx)

	lad := e.cfg.Ladder.withDefaults()
	var points []TrackPoint
	lastReal := -1 // index of the last full-fusion fix in points
	end := p.times[len(p.times)-1]
	for tEnd := math.Min(p.times[0]+window, end); ; tEnd += step {
		if ctx.Err() != nil {
			return nil, canceledErr(ctx, "track")
		}
		lo, hi := 0, len(fused)
		for lo < len(fused) && fused[lo].T < tEnd-window {
			lo++
		}
		for hi > 0 && fused[hi-1].T > tEnd {
			hi--
		}
		fitted := false
		if hi-lo >= estCfg.MinSamples {
			winObs := fused[lo:hi]
			spReg := e.met.stRegress.Start()
			est, err := sc.solver.Run(winObs, estCfg)
			spReg.End()
			if errors.Is(err, estimate.ErrCanceled) {
				return nil, canceledErr(ctx, "track")
			}
			if err == nil && finiteEstimate(est) {
				if est.Ambiguous {
					// Resolve against the previous fix when available.
					if len(points) > 0 {
						prev := estimate.Candidate{X: points[len(points)-1].Est.X, H: points[len(points)-1].Est.H}
						best := est.Candidates[0]
						for _, c := range est.Candidates[1:] {
							if c.Dist(prev) < best.Dist(prev) {
								best = c
							}
						}
						resolved := *est
						resolved.X, resolved.H = best.X, best.H
						est = &resolved
					}
				}
				points = append(points, TrackPoint{
					T:           tEnd,
					Est:         est,
					WindowStart: winObs[0].T,
					Samples:     len(winObs),
					Health:      p.health,
					Mode:        ModeFull,
				})
				lastReal = len(points) - 1
				fitted = true
			}
		}
		// Degradation ladder, bottom rung: a window with no usable fit
		// re-emits the last real fix while it is still fresh, so the fix
		// stream does not silently gap during a dropout burst.
		if !fitted && !lad.DisableLastKnown && lastReal >= 0 &&
			tEnd-points[lastReal].T <= lad.StaleMaxAge {
			points = append(points, staleFixFrom(&points[lastReal], tEnd, p.health))
			e.met.modeLastKnown.Inc()
		}
		if tEnd >= end {
			break
		}
	}
	if len(points) == 0 {
		return nil, rejectedErr(p.health, ReasonNoEstimate, ErrNoEstimate)
	}
	return points, nil
}
