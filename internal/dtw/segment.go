package dtw

import (
	"math"

	"locble/internal/mathx"
)

// SegmentMatcherConfig parameterizes the fixed-window DTW voting matcher.
type SegmentMatcherConfig struct {
	// SegmentLen is the number of points per target segment. The paper
	// found 10 to be the best accuracy/cost trade-off (Sec. 6.1).
	SegmentLen int
	// Window is the Sakoe–Chiba half-width used for both LB_Keogh and DTW.
	Window int
	// LBThreshold rejects a segment when its LB_Keogh bound exceeds it;
	// the paper's empirical value for 10-point segments is 6.1.
	LBThreshold float64
	// DTWThreshold accepts a segment when its DTW distance is below it;
	// the paper uses the same value as the LB threshold.
	DTWThreshold float64
}

// DefaultSegmentMatcherConfig returns the paper's settings.
func DefaultSegmentMatcherConfig() SegmentMatcherConfig {
	return SegmentMatcherConfig{SegmentLen: 10, Window: 2, LBThreshold: 6.1, DTWThreshold: 6.1}
}

// SegmentMatch is the outcome for one target segment.
type SegmentMatch struct {
	Index      int
	LowerBound float64
	// DTWDist is the full DTW distance, or NaN when the lower bound
	// already rejected the segment (DTW skipped).
	DTWDist float64
	Matched bool
	// LBOnly is true when the decision came from LB_Keogh rejection.
	LBOnly bool
}

// MatchResult is the voting outcome for one candidate sequence against the
// target.
type MatchResult struct {
	Segments []SegmentMatch
	// MatchedCount is the number of matched segments.
	MatchedCount int
	// TotalSegments is the number of usable (full-length) segments.
	TotalSegments int
	// Matched is true when more than half of the segments matched
	// (paper Algo. 2, line 11).
	Matched bool
	// DTWComputed counts the segments where full DTW actually ran
	// (diagnostic for the LB speedup claim).
	DTWComputed int
}

// MatchSequences runs the paper's fixed-window DTW voting algorithm:
// target and candidate are time-aligned, same-rate sequences (the caller
// interpolates the candidate onto the target timestamps — see
// AlignAndDifferentiate). The target is split into SegmentLen-point
// segments; each candidate segment is screened with LB_Keogh and, if it
// survives, matched with DTW; the sequence matches when >½ of the
// segments match.
func MatchSequences(target, candidate []float64, cfg SegmentMatcherConfig) (MatchResult, error) {
	if len(target) == 0 || len(candidate) == 0 {
		return MatchResult{}, ErrEmpty
	}
	n := min(len(target), len(candidate))
	segLen := cfg.SegmentLen
	if segLen <= 0 {
		segLen = 10
	}
	var res MatchResult
	for start := 0; start+segLen <= n; start += segLen {
		tSeg := target[start : start+segLen]
		cSeg := candidate[start : start+segLen]
		m := SegmentMatch{Index: res.TotalSegments, DTWDist: math.NaN()}
		lb, err := LBKeogh(tSeg, cSeg, cfg.Window)
		if err != nil {
			return MatchResult{}, err
		}
		m.LowerBound = lb
		if lb > cfg.LBThreshold {
			// LB_Keogh is a lower bound on DTW: DTW ≥ LB > threshold, so
			// the segment cannot match. Skip the expensive computation.
			m.Matched = false
			m.LBOnly = true
		} else {
			d, err := Distance(tSeg, cSeg, cfg.Window)
			if err != nil {
				return MatchResult{}, err
			}
			m.DTWDist = d
			m.Matched = d <= cfg.DTWThreshold
			res.DTWComputed++
		}
		if m.Matched {
			res.MatchedCount++
		}
		res.TotalSegments++
		res.Segments = append(res.Segments, m)
	}
	if res.TotalSegments == 0 {
		return MatchResult{}, ErrEmpty
	}
	res.Matched = res.MatchedCount*2 > res.TotalSegments
	return res, nil
}

// AlignAndDifferentiate prepares a candidate RSS sequence for matching
// against a target sequence per the paper's preprocessing (Sec. 6.1):
// the candidate (tc, vc) is linearly interpolated onto the target's
// timestamps tt (handling heterogeneous sampling rates), then both are
// first-differenced so device-specific constant offsets cancel.
func AlignAndDifferentiate(tt, vt, tc, vc []float64) (targetDiff, candDiff []float64) {
	aligned := mathx.Resample(tc, vc, tt)
	return Differentiate(vt), Differentiate(aligned)
}

// Differentiate returns the first difference of xs (length len(xs)−1).
func Differentiate(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}
