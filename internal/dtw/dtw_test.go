package dtw

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	d, err := Distance(a, a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self-distance = %g", d)
	}
}

func TestDistanceKnown(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 1, 1}
	d, err := Distance(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal path: 3 cells of squared cost 1 → sqrt(3).
	if math.Abs(d-math.Sqrt(3)) > 1e-12 {
		t.Errorf("distance = %g, want √3", d)
	}
}

func TestDistanceWarpsShifts(t *testing.T) {
	// A time-shifted copy should be much closer under DTW than under
	// lockstep Euclidean distance.
	a := []float64{0, 0, 1, 5, 1, 0, 0, 0}
	b := []float64{0, 0, 0, 1, 5, 1, 0, 0}
	dtwD, err := Distance(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	euclid := 0.0
	for i := range a {
		euclid += (a[i] - b[i]) * (a[i] - b[i])
	}
	euclid = math.Sqrt(euclid)
	if dtwD >= euclid/2 {
		t.Errorf("DTW %g should beat Euclidean %g on shifted peaks", dtwD, euclid)
	}
}

func TestDistanceEmpty(t *testing.T) {
	if _, err := Distance(nil, []float64{1}, -1); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestCostMatrixAndPath(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 2, 3}
	cost, err := CostMatrix(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cost) != 3 || len(cost[0]) != 4 {
		t.Fatalf("cost shape %dx%d", len(cost), len(cost[0]))
	}
	path := Path(cost)
	if path[0] != [2]int{0, 0} {
		t.Errorf("path start %v", path[0])
	}
	if path[len(path)-1] != [2]int{2, 3} {
		t.Errorf("path end %v", path[len(path)-1])
	}
	// Path steps move by at most 1 in each index, monotonically.
	for i := 1; i < len(path); i++ {
		di, dj := path[i][0]-path[i-1][0], path[i][1]-path[i-1][1]
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			t.Fatalf("invalid path step %v -> %v", path[i-1], path[i])
		}
	}
	if Path(nil) != nil {
		t.Error("empty Path should be nil")
	}
}

func TestWindowConstraint(t *testing.T) {
	a := []float64{0, 0, 1, 5, 1, 0, 0, 0}
	b := []float64{0, 0, 0, 0, 0, 1, 5, 1}
	wide, _ := Distance(a, b, -1)
	tight, _ := Distance(a, b, 1)
	if tight < wide {
		t.Errorf("tighter window (%g) cannot beat unconstrained (%g)", tight, wide)
	}
}

func TestEnvelope(t *testing.T) {
	a := []float64{1, 3, 2, 5, 4}
	u, l := Envelope(a, 1)
	wantU := []float64{3, 3, 5, 5, 5}
	wantL := []float64{1, 1, 2, 2, 4}
	for i := range a {
		if u[i] != wantU[i] || l[i] != wantL[i] {
			t.Errorf("envelope[%d] = (%g, %g), want (%g, %g)", i, u[i], l[i], wantU[i], wantL[i])
		}
	}
}

func TestLBKeoghIsLowerBound(t *testing.T) {
	a := []float64{0, 1, 2, 3, 2, 1, 0, -1, 0, 1}
	b := []float64{1, 2, 1, 4, 3, 0, 1, 0, -1, 2}
	for _, w := range []int{0, 1, 2, 3} {
		lb, err := LBKeogh(a, b, w)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Distance(a, b, w)
		if err != nil {
			t.Fatal(err)
		}
		if lb > d+1e-9 {
			t.Errorf("window %d: LB %g exceeds DTW %g", w, lb, d)
		}
	}
}

func TestLBKeoghErrors(t *testing.T) {
	if _, err := LBKeogh(nil, nil, 1); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	if _, err := LBKeogh([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("want error for unequal lengths")
	}
}

func TestMatchSequencesIdentical(t *testing.T) {
	seq := make([]float64, 50)
	for i := range seq {
		seq[i] = math.Sin(float64(i) / 3)
	}
	cfg := DefaultSegmentMatcherConfig()
	res, err := MatchSequences(seq, seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched || res.MatchedCount != res.TotalSegments {
		t.Errorf("identical sequences must fully match: %+v", res)
	}
}

func TestMatchSequencesRejectsNoise(t *testing.T) {
	a := make([]float64, 50)
	b := make([]float64, 50)
	s := uint32(12345)
	next := func() float64 {
		s = s*1664525 + 1013904223
		return float64(s%2000)/100 - 10
	}
	for i := range a {
		a[i] = next()
	}
	for i := range b {
		b[i] = next()
	}
	cfg := DefaultSegmentMatcherConfig()
	cfg.LBThreshold = 3
	cfg.DTWThreshold = 3
	res, err := MatchSequences(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched {
		t.Errorf("independent noise matched: %+v", res)
	}
}

func TestMatchSequencesLBSkipsDTW(t *testing.T) {
	// Wildly different scale: LB alone must reject without running DTW.
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = 0
		b[i] = 100
	}
	cfg := DefaultSegmentMatcherConfig()
	res, err := MatchSequences(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DTWComputed != 0 {
		t.Errorf("DTW ran %d times; LB should have rejected everything", res.DTWComputed)
	}
	for _, s := range res.Segments {
		if !s.LBOnly || s.Matched {
			t.Errorf("segment %+v should be LB-rejected", s)
		}
		if !math.IsNaN(s.DTWDist) {
			t.Errorf("segment %d has DTW distance despite LB rejection", s.Index)
		}
	}
}

func TestMatchSequencesErrors(t *testing.T) {
	if _, err := MatchSequences(nil, nil, DefaultSegmentMatcherConfig()); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty for empty input")
	}
	// Shorter than one segment.
	cfg := DefaultSegmentMatcherConfig()
	cfg.SegmentLen = 50
	if _, err := MatchSequences([]float64{1, 2}, []float64{1, 2}, cfg); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty when no full segment fits")
	}
}

func TestDifferentiate(t *testing.T) {
	d := Differentiate([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("diff[%d] = %g, want %g", i, d[i], want[i])
		}
	}
	if Differentiate([]float64{1}) != nil {
		t.Error("single-point diff should be nil")
	}
}

func TestAlignAndDifferentiate(t *testing.T) {
	tt := []float64{0, 1, 2, 3}
	vt := []float64{10, 20, 30, 40}
	tc := []float64{0, 2, 3} // slower candidate sampling
	vc := []float64{10, 30, 40}
	td, cd := AlignAndDifferentiate(tt, vt, tc, vc)
	if len(td) != 3 || len(cd) != 3 {
		t.Fatalf("lengths %d/%d", len(td), len(cd))
	}
	// The candidate is the same linear signal, so aligned diffs match.
	for i := range td {
		if math.Abs(td[i]-cd[i]) > 1e-9 {
			t.Errorf("aligned diffs differ at %d: %g vs %g", i, td[i], cd[i])
		}
	}
}

// Property: DTW distance is symmetric and non-negative, and LB_Keogh never
// exceeds it (equal lengths, shared window).
func TestPropertyDTWInvariants(t *testing.T) {
	f := func(seed uint8, wPick uint8) bool {
		n := 12
		s := uint32(seed)*2654435761 + 1
		next := func() float64 {
			s = s*1664525 + 1013904223
			return float64(s%1000)/100 - 5
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = next()
			b[i] = next()
		}
		w := int(wPick % 5)
		dab, err1 := Distance(a, b, w)
		dba, err2 := Distance(b, a, w)
		lb, err3 := LBKeogh(a, b, w)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return dab >= 0 && math.Abs(dab-dba) < 1e-9 && lb <= dab+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
