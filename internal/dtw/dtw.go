// Package dtw implements dynamic time warping with a Sakoe–Chiba warping
// window, the LB_Keogh lower bound, and the fixed-window segment-voting
// matcher LocBLE's multi-beacon clustering uses (paper Sec. 6.1).
//
// The paper's pipeline: differentiate RSS sequences (to remove device
// offsets), split the target sequence into fixed-length segments, validate
// each candidate segment with the cheap LB_Keogh envelope bound, run full
// DTW only on segments that pass, and declare two beacons co-located when
// more than half of the segments match.
package dtw

import (
	"errors"
	"math"
)

// ErrEmpty is returned when an input sequence is empty.
var ErrEmpty = errors.New("dtw: empty sequence")

// Distance computes the DTW distance between a and b under a Sakoe–Chiba
// band of half-width window (window < 0 means unconstrained). The local
// cost is squared Euclidean; the returned value is the square root of the
// accumulated cost, making it comparable across lengths when sequences
// are z-normalized.
func Distance(a, b []float64, window int) (float64, error) {
	cost, err := CostMatrix(a, b, window)
	if err != nil {
		return 0, err
	}
	d := cost[len(a)-1][len(b)-1]
	if math.IsInf(d, 1) {
		return math.Inf(1), nil
	}
	return math.Sqrt(d), nil
}

// CostMatrix returns the full accumulated-cost matrix for a vs b (used to
// visualize the optimal path, as in the paper's Fig. 9(c)/(d)). Cells
// outside the warping band are +Inf.
func CostMatrix(a, b []float64, window int) ([][]float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil, ErrEmpty
	}
	if window < 0 {
		window = max(n, m)
	}
	// The band must be at least |n−m| wide for a path to exist.
	if d := abs(n - m); window < d {
		window = d
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = math.Inf(1)
		}
	}
	sq := func(x float64) float64 { return x * x }
	for i := 0; i < n; i++ {
		jLo := max(0, i-window)
		jHi := min(m-1, i+window)
		for j := jLo; j <= jHi; j++ {
			d := sq(a[i] - b[j])
			switch {
			case i == 0 && j == 0:
				cost[i][j] = d
			case i == 0:
				cost[i][j] = d + cost[i][j-1]
			case j == 0:
				cost[i][j] = d + cost[i-1][j]
			default:
				cost[i][j] = d + min3(cost[i-1][j-1], cost[i-1][j], cost[i][j-1])
			}
		}
	}
	return cost, nil
}

// Path traces the optimal alignment path back through an accumulated cost
// matrix, returned as (i, j) index pairs from (0,0) to (n−1, m−1).
func Path(cost [][]float64) [][2]int {
	if len(cost) == 0 || len(cost[0]) == 0 {
		return nil
	}
	i, j := len(cost)-1, len(cost[0])-1
	path := [][2]int{{i, j}}
	for i > 0 || j > 0 {
		switch {
		case i == 0:
			j--
		case j == 0:
			i--
		default:
			diag, up, left := cost[i-1][j-1], cost[i-1][j], cost[i][j-1]
			if diag <= up && diag <= left {
				i, j = i-1, j-1
			} else if up <= left {
				i--
			} else {
				j--
			}
		}
		path = append(path, [2]int{i, j})
	}
	// Reverse into forward order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}

// Envelope computes the upper and lower warping envelope of a sequence for
// LB_Keogh: upper[i] = max(a[i−w..i+w]), lower[i] = min(a[i−w..i+w]).
func Envelope(a []float64, window int) (upper, lower []float64) {
	n := len(a)
	upper = make([]float64, n)
	lower = make([]float64, n)
	for i := 0; i < n; i++ {
		lo := max(0, i-window)
		hi := min(n-1, i+window)
		u, l := a[lo], a[lo]
		for k := lo + 1; k <= hi; k++ {
			if a[k] > u {
				u = a[k]
			}
			if a[k] < l {
				l = a[k]
			}
		}
		upper[i], lower[i] = u, l
	}
	return upper, lower
}

// LBKeogh computes the LB_Keogh lower bound of DTW(query, candidate): the
// square root of the summed squared distances from candidate points to the
// query's warping envelope, for the parts falling outside it. It is a
// valid lower bound on Distance with the same window and is ~100× cheaper
// (paper Sec. 6.1 reports the same order of speedup). Both sequences must
// have equal length.
func LBKeogh(query, candidate []float64, window int) (float64, error) {
	if len(query) == 0 || len(candidate) == 0 {
		return 0, ErrEmpty
	}
	if len(query) != len(candidate) {
		return 0, errors.New("dtw: LB_Keogh requires equal-length sequences")
	}
	upper, lower := Envelope(query, window)
	sum := 0.0
	for i, c := range candidate {
		switch {
		case c > upper[i]:
			d := c - upper[i]
			sum += d * d
		case c < lower[i]:
			d := lower[i] - c
			sum += d * d
		}
	}
	return math.Sqrt(sum), nil
}

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
