package dtw

import "testing"

func mkSeq(n int, seed uint32) []float64 {
	out := make([]float64, n)
	s := seed
	for i := range out {
		s = s*1664525 + 1013904223
		out[i] = float64(s%1000)/100 - 5
	}
	return out
}

func BenchmarkDistance10(b *testing.B)  { benchDistance(b, 10) }
func BenchmarkDistance100(b *testing.B) { benchDistance(b, 100) }

func benchDistance(b *testing.B, n int) {
	x, y := mkSeq(n, 1), mkSeq(n, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Distance(x, y, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLBKeogh100(b *testing.B) {
	x, y := mkSeq(100, 1), mkSeq(100, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LBKeogh(x, y, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchSequences(b *testing.B) {
	x, y := mkSeq(80, 3), mkSeq(80, 4)
	cfg := DefaultSegmentMatcherConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MatchSequences(x, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
