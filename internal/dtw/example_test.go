package dtw_test

import (
	"fmt"

	"locble/internal/dtw"
)

// DTW tolerates time shifts that defeat lockstep comparison.
func ExampleDistance() {
	a := []float64{0, 0, 1, 5, 1, 0, 0, 0}
	b := []float64{0, 0, 0, 1, 5, 1, 0, 0} // same peak, one step later
	d, _ := dtw.Distance(a, b, -1)
	fmt.Printf("%.1f\n", d)
	// Output:
	// 0.0
}

// LB_Keogh is a cheap lower bound: it can only reject, never accept.
func ExampleLBKeogh() {
	a := []float64{0, 1, 2, 3, 4}
	b := []float64{10, 11, 12, 13, 14}
	lb, _ := dtw.LBKeogh(a, b, 1)
	d, _ := dtw.Distance(a, b, 1)
	fmt.Println(lb <= d)
	// Output:
	// true
}
