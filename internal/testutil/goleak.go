// Package testutil holds small test-only helpers shared across
// packages. Nothing here is imported by production code.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutines alive when called and, at test
// cleanup, fails the test if goroutines created since are still alive
// after a grace period. Call it first thing in a test:
//
//	func TestServer(t *testing.T) {
//	    testutil.VerifyNoLeaks(t)
//	    ...
//	}
//
// The grace period (default 2 s, polled every 10 ms) absorbs goroutines
// that are legitimately winding down — a closed connection's reader
// observing the error, a drained worker exiting — so only goroutines
// that never terminate are reported. Runtime-internal and testing
// goroutines are ignored.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := goroutineSet()
	t.Cleanup(func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("testutil: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// goroutineSet returns the IDs of all live goroutines.
func goroutineSet() map[string]bool {
	set := make(map[string]bool)
	for _, g := range stacks() {
		set[goroutineID(g)] = true
	}
	return set
}

// leakedSince returns the stacks of interesting goroutines not present
// in the baseline.
func leakedSince(baseline map[string]bool) []string {
	var leaked []string
	for _, g := range stacks() {
		if baseline[goroutineID(g)] || ignorable(g) {
			continue
		}
		leaked = append(leaked, strings.TrimSpace(g))
	}
	return leaked
}

// stacks captures every goroutine's stack as separate records.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(string(buf), "\n\n")
}

// goroutineID extracts the "goroutine N" header token as the identity.
func goroutineID(stack string) string {
	var id int
	var state string
	if _, err := fmt.Sscanf(stack, "goroutine %d [%s", &id, &state); err != nil {
		return stack[:min(32, len(stack))]
	}
	return fmt.Sprintf("g%d", id)
}

// ignorable filters goroutines the checker must not flag: the runtime's
// own helpers and the testing framework.
func ignorable(stack string) bool {
	for _, frame := range []string{
		"testing.(*T).Run",
		"testing.tRunner",
		"testing.runTests",
		"testing.(*M).startAlarm",
		"runtime.gc",
		"runtime.goexit",
		"created by runtime",
		"signal.signal_recv",
		"runtime/pprof",
		"testutil.stacks",
		"testutil.VerifyNoLeaks",
	} {
		if strings.Contains(stack, frame) {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
