// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 7) on the simulation substrate. Each generator returns
// a Table or Figure that renders as text rows/series matching what the
// paper plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"locble/internal/core"
	"locble/internal/mathx"
)

// Options scales experiment effort.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Trials per configuration (0 = experiment default).
	Trials int
	// Quick shrinks workloads for use inside testing.B loops.
	Quick bool
}

func (o Options) trials(def, quick int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return quick
	}
	return def
}

// Table is a rendered result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a rendered result figure: series share semantics with the
// paper's plot of the same ID.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes each series as aligned columns.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "x = %s, y = %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "-- %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(w, "  %8.3f  %8.3f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CDFSeries converts a sample of errors into an empirical CDF series.
func CDFSeries(name string, errs []float64) Series {
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	s := Series{Name: name}
	for i, e := range sorted {
		s.X = append(s.X, e)
		s.Y = append(s.Y, float64(i+1)/float64(len(sorted)))
	}
	return s
}

// summarize returns mean and the symmetric 75 %-range half-width (the
// paper's Table 1 reports "mean ± 75 % confidence interval").
func summarize(errs []float64) (mean, ci float64) {
	mean = mathx.Mean(errs)
	lo := mathx.Quantile(errs, 0.125)
	hi := mathx.Quantile(errs, 0.875)
	return mean, (hi - lo) / 2
}

// sharedEngine builds a default engine (EnvAware model cached per
// process).
func sharedEngine() (*core.Engine, error) {
	return core.NewEngine(core.DefaultConfig())
}
