package experiments

import (
	"fmt"
	"math"

	"locble/internal/core"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

// settingsScenario is the shared stationary measurement for the
// Sec. 7.6 settings sweeps (environments #2–#4 flavoured: light clutter).
func settingsScenario(seed int64, phone rf.DeviceProfile, tx rf.TxProfile) sim.Scenario {
	src := rng.New(seed)
	d := src.Uniform(5.5, 7.5)
	ang := src.Uniform(0.25, 0.8)
	beacon := sim.BeaconSpec{Name: "b", X: d * math.Cos(ang), Y: d * math.Sin(ang)}
	if tx.Name != "" {
		beacon.Tx = tx
	}
	walls := &sim.WallEnv{Walls: []sim.Wall{
		{X1: src.Uniform(1.5, 3), Y1: 0.5, X2: src.Uniform(3, 4.5), Y2: 2.5, Class: rf.PLOS},
	}}
	sc := sim.Scenario{
		Beacons:      []sim.BeaconSpec{beacon},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		EnvModel:     walls,
		Seed:         seed,
	}
	if phone.Name != "" {
		sc.Phone = phone
	}
	return sc
}

// resample decimates a trace's observations of one beacon to a target
// rate by inserting idle gaps, as the paper does ("by inserting an idle
// delay between two consecutive scans").
func resampleObs(obs []sim.BeaconObservation, fromHz, toHz float64) []sim.BeaconObservation {
	if toHz >= fromHz {
		return obs
	}
	keepEvery := fromHz / toHz
	var out []sim.BeaconObservation
	next := 0.0
	for i, o := range obs {
		if float64(i) >= next {
			out = append(out, o)
			next += keepEvery
		}
	}
	return out
}

// Fig13aSamplingRate reproduces Fig. 13(a): CDFs of estimation error at
// 9 / 8 / 6.5 / 5.5 Hz sampling (resampled from the original traces).
func Fig13aSamplingRate(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(30, 6)
	fig := &Figure{
		ID:     "fig13a",
		Title:  "Estimation error vs sampling frequency",
		XLabel: "estimation error (m)",
		YLabel: "CDF",
	}
	rates := []float64{9, 8, 6.5, 5.5}
	// Generate base traces once, then decimate per rate.
	type run struct {
		tr     *sim.Trace
		bx, by float64
	}
	var runs []run
	for trial := 0; trial < trials; trial++ {
		sc := settingsScenario(opt.Seed+int64(trial)*59, rf.DeviceProfile{}, rf.TxProfile{})
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run{tr, sc.Beacons[0].X, sc.Beacons[0].Y})
	}
	for _, rate := range rates {
		var errs []float64
		for _, r := range runs {
			// Clone the trace with decimated observations.
			decimated := *r.tr
			decimated.Observations = map[string][]sim.BeaconObservation{
				"b": resampleObs(r.tr.Observations["b"], r.tr.Phone.SampleRateHz, rate),
			}
			decimated.Phone.SampleRateHz = rate
			m, err := eng.Locate(&decimated, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(r.bx, r.by))
		}
		if len(errs) == 0 {
			continue
		}
		fig.Series = append(fig.Series, CDFSeries(fmt.Sprintf("%g Hz", rate), errs))
	}
	fig.Notes = append(fig.Notes,
		"paper: medians stay stable at lower rates; the tail degrades")
	return fig, nil
}

// Fig13bWalkLength reproduces Fig. 13(b): CDFs of estimation error when
// only the first 100/80/70/50 % of the measurement data is used.
func Fig13bWalkLength(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(30, 6)
	fig := &Figure{
		ID:     "fig13b",
		Title:  "Estimation error vs measurement data length",
		XLabel: "estimation error (m)",
		YLabel: "CDF",
	}
	fractions := []float64{1.0, 0.8, 0.7, 0.5}
	type run struct {
		tr     *sim.Trace
		bx, by float64
	}
	var runs []run
	for trial := 0; trial < trials; trial++ {
		sc := settingsScenario(opt.Seed+int64(trial)*61+1, rf.DeviceProfile{}, rf.TxProfile{})
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run{tr, sc.Beacons[0].X, sc.Beacons[0].Y})
	}
	for _, frac := range fractions {
		var errs []float64
		for _, r := range runs {
			obs := r.tr.Observations["b"]
			n := int(float64(len(obs)) * frac)
			truncated := *r.tr
			truncated.Observations = map[string][]sim.BeaconObservation{"b": obs[:n]}
			m, err := eng.Locate(&truncated, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(r.bx, r.by))
		}
		if len(errs) == 0 {
			continue
		}
		fig.Series = append(fig.Series, CDFSeries(fmt.Sprintf("%.0f%%", frac*100), errs))
	}
	fig.Notes = append(fig.Notes,
		"paper: stable down to 80 % of data (~3 m walk), degrades at 70 %, much worse at 50 %")
	return fig, nil
}

// Fig14BeaconTypes reproduces Fig. 14: mean estimation error per beacon
// hardware type (iOS device / RadBeacon / Estimote) in environment #2.
func Fig14BeaconTypes(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(25, 5)
	table := &Table{
		ID:      "fig14",
		Title:   "Estimation error by beacon hardware",
		Columns: []string{"beacon type", "mean error (m)", "paper"},
	}
	types := []rf.TxProfile{rf.IOSDeviceTx, rf.RadBeaconUSB, rf.EstimoteBeacon}
	paperVals := map[string]string{
		"iOS device": "≈1.3 m", "RadBeacon": "≈1.1 m", "Estimote": "≈1.0 m",
	}
	for _, tx := range types {
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			sc := settingsScenario(opt.Seed+int64(trial)*73+2, rf.DeviceProfile{}, tx)
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(sc.Beacons[0].X, sc.Beacons[0].Y))
		}
		table.AddRow(tx.Name, fmt.Sprintf("%.2f", mean(errs)), paperVals[tx.Name])
	}
	table.Notes = append(table.Notes,
		"paper: dedicated beacons slightly better than smart-device beacons; no strong dependence")
	return table, nil
}

// Fig15Clustering reproduces Fig. 15: estimation error vs number of
// clustered beacons (1/2/4/6) in the heavy-blockage Lab and Hall
// environments.
func Fig15Clustering(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(15, 4)
	fig := &Figure{
		ID:     "fig15",
		Title:  "Calibration performance vs number of beacons",
		XLabel: "number of beacons",
		YLabel: "estimation error (m)",
	}
	envs := []struct {
		name   string
		preset int
	}{
		{"Lab", 7},
		{"Hall", 8},
	}
	counts := []int{1, 2, 4, 6}
	for _, e := range envs {
		p, _ := sim.PresetByIndex(e.preset)
		s := Series{Name: e.name}
		for _, nBeacons := range counts {
			var errs []float64
			for trial := 0; trial < trials; trial++ {
				seed := opt.Seed + int64(trial)*83 + int64(e.preset)*5 + int64(nBeacons)
				src := rng.New(seed)
				// Target plus (n−1) neighbours within 0.4 m; heavy
				// blockage: a concrete wall crosses the path.
				tx, ty := 7.0, 3.0
				beacons := []sim.BeaconSpec{{Name: "target", X: tx, Y: ty}}
				for k := 1; k < nBeacons; k++ {
					beacons = append(beacons, sim.BeaconSpec{
						Name: fmt.Sprintf("n%d", k),
						X:    tx + src.Uniform(-0.4, 0.4),
						Y:    ty + src.Uniform(-0.4, 0.4),
					})
				}
				walls := &sim.WallEnv{Walls: []sim.Wall{
					{X1: 3, Y1: -2, X2: 3, Y2: 9, Class: rf.NLOS},
				}}
				_ = p
				sc := sim.Scenario{
					Beacons:      beacons,
					ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
					EnvModel:     walls,
					Seed:         seed,
				}
				tr, err := sim.Run(sc)
				if err != nil {
					return nil, err
				}
				var errV float64
				if nBeacons == 1 {
					m, err := eng.Locate(tr, "target")
					if err != nil {
						continue
					}
					errV = m.Error(tx, ty)
				} else {
					m, _, err := eng.LocateWithCluster(tr, "target")
					if err != nil {
						continue
					}
					errV = m.Error(tx, ty)
				}
				errs = append(errs, errV)
			}
			if len(errs) == 0 {
				continue
			}
			s.X = append(s.X, float64(nBeacons))
			s.Y = append(s.Y, mean(errs))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper: single-beacon error ~3 m under heavy blockage; halves by 6 beacons")
	return fig, nil
}

// ablationEngine builds an engine with a modified config.
func ablationEngine(mod func(*core.Config)) (*core.Engine, error) {
	cfg := core.DefaultConfig()
	mod(&cfg)
	return core.NewEngine(cfg)
}
