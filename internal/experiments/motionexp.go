package experiments

import (
	"fmt"
	"math"
	"time"

	"locble/internal/core"
	"locble/internal/dtw"
	"locble/internal/imu"
	"locble/internal/motion"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

// Fig8StepTurn reproduces Fig. 8's quantitative claims: step-count
// accuracy (paper 94.77 %) and mean turn-angle error (paper 3.45°).
func Fig8StepTurn(opt Options) (*Table, error) {
	trials := opt.trials(25, 5)
	table := &Table{
		ID:      "fig8",
		Title:   "Step and turn detection accuracy",
		Columns: []string{"metric", "measured", "paper"},
	}
	totalSteps, detectedSteps := 0, 0
	var angleErrSum float64
	angleN := 0
	for trial := 0; trial < trials; trial++ {
		seed := opt.Seed + int64(trial)*31
		tr, err := imu.Synthesize(imu.Plan{Segments: []imu.Segment{
			{Heading: 0, Distance: 4},
			{Heading: math.Pi / 2, Distance: 4},
		}}, imu.DefaultNoise(), rng.New(seed))
		if err != nil {
			return nil, err
		}
		_, aligned, err := motion.Align(tr.Samples)
		if err != nil {
			return nil, err
		}
		steps, err := motion.DetectSteps(aligned, motion.DefaultStepDetectorConfig(), motion.DefaultStepLengthModel())
		if err != nil {
			return nil, err
		}
		totalSteps += tr.Steps
		detectedSteps += len(steps)
		turns, err := motion.DetectTurns(aligned, motion.DefaultTurnDetectorConfig())
		if err != nil {
			return nil, err
		}
		if len(turns) == 1 {
			angleErrSum += math.Abs(turns[0].Angle-math.Pi/2) * 180 / math.Pi
			angleN++
		}
	}
	stepAcc := 1 - math.Abs(float64(detectedSteps-totalSteps))/float64(totalSteps)
	table.AddRow("step-count accuracy", fmt.Sprintf("%.2f %%", stepAcc*100), "94.77 %")
	if angleN > 0 {
		table.AddRow("mean turn-angle error", fmt.Sprintf("%.2f°", angleErrSum/float64(angleN)), "3.45°")
	}
	table.AddRow("turns detected", fmt.Sprintf("%d/%d traces", angleN, trials), "—")
	return table, nil
}

// Fig9DTW reproduces Fig. 9: four beacons (target, two at 0.3 m, one 4 m
// away), the segment matcher's outcome per beacon, and the speed claims
// (LB_Keogh ≈100× faster than DTW; the segmented scheme ≥2× faster than
// full-sequence DTW).
func Fig9DTW(opt Options) (*Table, error) {
	table := &Table{
		ID:      "fig9",
		Title:   "DTW clustering: segment matching and lower-bound speedup",
		Columns: []string{"beacon", "placement", "matched", "segments"},
	}
	trials := opt.trials(10, 2)
	type tally struct{ matched, total int }
	tallies := map[string]*tally{"beacon2": {}, "beacon3": {}, "beacon1": {}}
	for trial := 0; trial < trials; trial++ {
		sc := sim.Scenario{
			Beacons: []sim.BeaconSpec{
				{Name: "beacon4", X: 5, Y: 2},   // target, 5 m from observer
				{Name: "beacon2", X: 5.3, Y: 2}, // 0.3 m from target
				{Name: "beacon3", X: 5, Y: 2.3}, // 0.3 m from target
				{Name: "beacon1", X: 1.5, Y: 5}, // ~4 m away
			},
			ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
			EnvModel:     sim.StaticEnv(rf.PLOS),
			Seed:         opt.Seed + int64(trial)*13,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		eng, err := sharedEngine()
		if err != nil {
			return nil, err
		}
		_, cres, err := eng.LocateWithCluster(tr, "beacon4")
		if err != nil {
			continue
		}
		for _, m := range cres.Members {
			if ta, ok := tallies[m.Name]; ok {
				if m.Matched {
					ta.matched++
				}
				ta.total++
			}
		}
	}
	place := map[string]string{"beacon2": "0.3 m", "beacon3": "0.3 m", "beacon1": "4 m"}
	for _, name := range []string{"beacon2", "beacon3", "beacon1"} {
		ta := tallies[name]
		table.AddRow(name, place[name],
			fmt.Sprintf("%d/%d runs", ta.matched, ta.total), "vote >1/2")
	}

	// Speed claims on representative sequences.
	n := 200
	src := rng.New(opt.Seed + 5)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(0, 1)
	}
	segLen := 10
	reps := 200
	if opt.Quick {
		reps = 20
	}
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		for s := 0; s+segLen <= n; s += segLen {
			if _, err := dtw.LBKeogh(a[s:s+segLen], b[s:s+segLen], 2); err != nil {
				return nil, err
			}
		}
	}
	lbTime := time.Since(t0)
	t0 = time.Now()
	for r := 0; r < reps; r++ {
		for s := 0; s+segLen <= n; s += segLen {
			if _, err := dtw.Distance(a[s:s+segLen], b[s:s+segLen], 2); err != nil {
				return nil, err
			}
		}
	}
	segDTWTime := time.Since(t0)
	t0 = time.Now()
	for r := 0; r < reps; r++ {
		if _, err := dtw.Distance(a, b, 2); err != nil {
			return nil, err
		}
	}
	fullDTWTime := time.Since(t0)

	// Interference rate drop: the paper observed the target's report rate
	// dropping from 8 Hz to ~3 Hz under interference from the surrounding
	// beacons (Sec. 6.1) — reproduced here via the simulator's co-channel
	// collision model.
	soloSc := sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "solo", X: 5, Y: 2}},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
		Seed:         opt.Seed + 77,
	}
	soloTr, err := sim.Run(soloSc)
	if err != nil {
		return nil, err
	}
	dense := soloSc
	dense.Beacons = append([]sim.BeaconSpec{}, soloSc.Beacons...)
	for k := 0; k < 30; k++ {
		dense.Beacons = append(dense.Beacons, sim.BeaconSpec{
			Name: fmt.Sprintf("i%d", k), X: float64(k%6) + 1, Y: float64(k / 6),
		})
	}
	denseTr, err := sim.Run(dense)
	if err != nil {
		return nil, err
	}
	soloRate := float64(len(soloTr.Observations["solo"])) / soloTr.Duration
	denseRate := float64(len(denseTr.Observations["solo"])) / denseTr.Duration

	table.Notes = append(table.Notes,
		fmt.Sprintf("LB_Keogh vs per-segment DTW: %.1fx faster (paper: ~100x for same-size data)",
			float64(segDTWTime)/float64(lbTime)),
		fmt.Sprintf("segmented DTW vs full-sequence DTW: %.1fx faster (paper: ≥2x)",
			float64(fullDTWTime)/float64(segDTWTime)),
		fmt.Sprintf("interference: target report rate %.1f Hz solo vs %.1f Hz among 30 beacons (paper: 8 → ~3 Hz)",
			soloRate, denseRate),
		"paper Fig. 9: beacons 2,3 (0.3 m) match the target; beacon 1 (4 m) does not")
	return table, nil
}

// estimateOnce runs one stationary measurement with the given plan and
// returns the absolute error and the per-axis errors.
func estimateOnce(eng *core.Engine, bx, by float64, envModel sim.EnvModel, plan imu.Plan, seed int64) (abs, ex, eh float64, err error) {
	sc := sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "b", X: bx, Y: by}},
		ObserverPlan: plan,
		EnvModel:     envModel,
		Seed:         seed,
	}
	tr, err := sim.Run(sc)
	if err != nil {
		return 0, 0, 0, err
	}
	m, err := eng.Locate(tr, "b")
	if err != nil {
		return 0, 0, 0, err
	}
	return m.Error(bx, by), math.Abs(m.Est.X - bx), math.Abs(m.Est.H - by), nil
}
