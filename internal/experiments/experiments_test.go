package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Seed: 1, Quick: true} }

// TestAllExperimentsRun smoke-tests every registered generator in quick
// mode: each must run without error and render non-empty output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(quickOpt())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var buf bytes.Buffer
			out.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("%s output does not carry its ID header", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("want error for unknown id")
	}
}

func TestFig2Shape(t *testing.T) {
	fig, err := Fig2RSSVsDistance(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("fig2 series = %d, want 3 phones", len(fig.Series))
	}
	// The paper's claim: same trend, different offsets. Check each phone's
	// RSS decreases from near to far overall.
	for _, s := range fig.Series {
		if len(s.X) < 10 {
			t.Fatalf("%s has only %d points", s.Name, len(s.X))
		}
		var nearSum, farSum float64
		var nearN, farN int
		for i := range s.X {
			if s.X[i] < 2 {
				nearSum += s.Y[i]
				nearN++
			}
			if s.X[i] > 4.5 {
				farSum += s.Y[i]
				farN++
			}
		}
		if nearN == 0 || farN == 0 {
			t.Fatalf("%s lacks near/far coverage", s.Name)
		}
		if nearSum/float64(nearN) <= farSum/float64(farN) {
			t.Errorf("%s: RSS does not decrease with distance", s.Name)
		}
	}
}

func TestFig4FilteringImproves(t *testing.T) {
	fig, err := Fig4Filtering(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Note string carries RMSEs: "RMSE to theoretical: raw X dB, BF Y dB,
	// BF+AKF Z dB" — parse and check filtering reduces RMSE vs raw.
	if len(fig.Notes) == 0 {
		t.Fatal("fig4 missing RMSE note")
	}
	fields := strings.Fields(strings.NewReplacer(",", "", "dB", "").Replace(fig.Notes[0]))
	var vals []float64
	for _, f := range fields {
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			vals = append(vals, v)
		}
	}
	if len(vals) < 3 {
		t.Fatalf("could not parse RMSEs from %q", fig.Notes[0])
	}
	raw, bf, akf := vals[0], vals[1], vals[2]
	if bf >= raw {
		t.Errorf("BF RMSE %.2f should beat raw %.2f", bf, raw)
	}
	if akf >= raw {
		t.Errorf("BF+AKF RMSE %.2f should beat raw %.2f", akf, raw)
	}
}

func TestTable1CoversNineEnvironments(t *testing.T) {
	tab, err := Table1Environments(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("table1 rows = %d, want 9", len(tab.Rows))
	}
}

func TestFig11aHasBaselineColumn(t *testing.T) {
	tab, err := Fig11aStationary(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range tab.Columns {
		if strings.Contains(c, "Dartle") {
			found = true
		}
	}
	if !found {
		t.Error("fig11a must include the Dartle baseline column")
	}
	if len(tab.Rows) == 0 {
		t.Error("fig11a produced no rows")
	}
}

func TestFig12aErrorGrowsFarOut(t *testing.T) {
	fig, err := Fig12aDistanceSweep(Options{Seed: 3, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.X) < 6 {
		t.Fatalf("only %d sweep points", len(s.X))
	}
	// Paper shape: error at ≤5.6 m clearly below error at >14 m.
	var nearE, farE []float64
	for i := range s.X {
		if s.X[i] <= 5.7 {
			nearE = append(nearE, s.Y[i])
		}
		if s.X[i] >= 14 {
			farE = append(farE, s.Y[i])
		}
	}
	if len(nearE) == 0 || len(farE) == 0 {
		t.Fatal("sweep lacks near/far points")
	}
	if mean(nearE) >= mean(farE) {
		t.Errorf("near error %.2f should be below far error %.2f", mean(nearE), mean(farE))
	}
}

func TestCDFSeriesMonotone(t *testing.T) {
	s := CDFSeries("x", []float64{3, 1, 2, 2.5})
	for i := 1; i < len(s.X); i++ {
		if s.X[i] < s.X[i-1] || s.Y[i] < s.Y[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if s.Y[len(s.Y)-1] != 1 {
		t.Error("CDF must end at 1")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "t", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a note", "bb"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
