package experiments

import (
	"fmt"
	"math"

	"locble/internal/baseline"
	"locble/internal/core"
	"locble/internal/imu"
	"locble/internal/mathx"
	"locble/internal/motion"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

// presetScenario builds a stationary-target measurement inside one of the
// Table 1 environments: the target sits PaperDistance away from the
// observer's start, the observer walks the canonical L-shape, and the
// environment model carries the preset's clutter and foot traffic.
func presetScenario(p sim.Preset, seed int64) sim.Scenario {
	src := rng.New(seed ^ int64(p.Index)<<8)
	// Place the target across the room at the paper's distance, at a
	// slight angle so it is off the walking path.
	ang := src.Uniform(0.2, 0.9)
	d := p.PaperDistance
	legA := math.Min(4, p.W-1)
	legB := math.Min(4, p.H-1)
	return sim.Scenario{
		Beacons:      []sim.BeaconSpec{{Name: "b", X: d * math.Cos(ang), Y: d * math.Sin(ang)}},
		ObserverPlan: imu.Plan{Segments: imu.LShape(0, legA, legB)},
		EnvModel:     p.EnvModelFor(src.Split(1)),
		Seed:         seed,
	}
}

// Table1Environments reproduces Table 1: per-environment mean accuracy
// with 75 %-interval half-width across the nine environments.
func Table1Environments(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(25, 5)
	table := &Table{
		ID:      "table1",
		Title:   "Per-environment accuracy (mean ± 75 % interval)",
		Columns: []string{"#", "environment", "scale", "measured acc (m)", "paper acc (m)"},
	}
	for _, p := range sim.Presets() {
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*101 + int64(p.Index)*7
			sc := presetScenario(p, seed)
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(sc.Beacons[0].X, sc.Beacons[0].Y))
		}
		if len(errs) == 0 {
			table.AddRow(fmt.Sprint(p.Index), p.Name, dims(p), "no estimate", paperAcc(p))
			continue
		}
		mean, ci := summarize(errs)
		table.AddRow(fmt.Sprint(p.Index), p.Name, dims(p),
			fmt.Sprintf("%.1f ± %.1f", mean, ci), paperAcc(p))
	}
	return table, nil
}

func dims(p sim.Preset) string { return fmt.Sprintf("%gx%g", p.W, p.H) }
func paperAcc(p sim.Preset) string {
	return fmt.Sprintf("%.1f ± %.1f", p.PaperAccuracy, p.PaperCI)
}

// Fig11aStationary reproduces Fig. 11(a): per-environment x error, h
// error and absolute error for environments #1–#6 at the paper's
// distances, with the Dartle-style ranging baseline alongside.
func Fig11aStationary(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(20, 4)
	table := &Table{
		ID:      "fig11a",
		Title:   "Stationary target: per-environment estimation error (m)",
		Columns: []string{"env", "distance", "x est.", "h est.", "LocBLE abs.", "Dartle app"},
	}
	var locSum, dartSum float64
	var comparisons int
	for _, p := range sim.Presets()[:6] {
		var exs, ehs, abss, darts []float64
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*97 + int64(p.Index)*13
			sc := presetScenario(p, seed)
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			bx, by := sc.Beacons[0].X, sc.Beacons[0].Y
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			abss = append(abss, m.Error(bx, by))
			exs = append(exs, math.Abs(m.Est.X-bx))
			ehs = append(ehs, math.Abs(m.Est.H-by))
			// Dartle: 1-D ranging with fixed parameters; compare its
			// range error against LocBLE's absolute error (the paper's
			// comparison, since ranging has no 2-D output).
			_, rss := tr.RSSSeries("b")
			trueDist := math.Hypot(bx, by)
			if dErr, err := baseline.RangingError(rss, rf.EstimoteBeacon.TxPowerDBm, trueDist); err == nil {
				darts = append(darts, dErr)
			}
		}
		if len(abss) == 0 {
			continue
		}
		table.AddRow(fmt.Sprint(p.Index),
			fmt.Sprintf("%.1f m", p.PaperDistance),
			fmt.Sprintf("%.2f", mean(exs)),
			fmt.Sprintf("%.2f", mean(ehs)),
			fmt.Sprintf("%.2f", mean(abss)),
			fmt.Sprintf("%.2f", mean(darts)))
		locSum += mean(abss)
		dartSum += mean(darts)
		comparisons++
	}
	if comparisons > 0 {
		table.Notes = append(table.Notes, fmt.Sprintf(
			"LocBLE vs Dartle overall: %.2f m vs %.2f m (%.0f %% less error; paper: 30 %% less)",
			locSum/float64(comparisons), dartSum/float64(comparisons),
			100*(1-locSum/dartSum)))
	}
	return table, nil
}

// Fig11bMovingTarget reproduces Fig. 11(b): two users moving at once, CDF
// of the error at the target's initial position, in environments #9
// (test 1) and #8 (test 2).
func Fig11bMovingTarget(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(40, 6)
	fig := &Figure{
		ID:     "fig11b",
		Title:  "Moving target: estimation error CDF",
		XLabel: "estimation error (m)",
		YLabel: "CDF",
	}
	tests := []struct {
		name   string
		preset int
		distLo float64
		distHi float64
	}{
		{"Test 1 (parking lot)", 9, 3, 9},
		{"Test 2 (hall)", 8, 3, 14},
	}
	for _, ts := range tests {
		p, _ := sim.PresetByIndex(ts.preset)
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*53 + int64(ts.preset)
			src := rng.New(seed)
			d := src.Uniform(ts.distLo, ts.distHi)
			ang := src.Uniform(0.2, 1.2)
			bx, by := d*math.Cos(ang), d*math.Sin(ang)
			// Pre-defined moving directions, varied per trial.
			tgtHeading := src.Uniform(0, 2*math.Pi)
			tgtPlan := imu.Plan{
				Segments:     []imu.Segment{{Heading: tgtHeading, Distance: src.Uniform(2, 4)}},
				StartX:       bx,
				StartY:       by,
				StartHeading: tgtHeading,
				StepFreq:     src.Uniform(1.5, 2.1),
			}
			sc := sim.Scenario{
				Beacons:      []sim.BeaconSpec{{Name: "phone", X: bx, Y: by, Tx: rf.IOSDeviceTx}},
				ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
				TargetPlan:   &tgtPlan,
				EnvModel:     p.EnvModelFor(src.Split(3)),
				Seed:         seed,
			}
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "phone")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(bx, by))
		}
		if len(errs) == 0 {
			return nil, fmt.Errorf("experiments: fig11b %s produced no estimates", ts.name)
		}
		fig.Series = append(fig.Series, CDFSeries(ts.name, errs))
	}
	fig.Notes = append(fig.Notes,
		"paper: error < 2.5 m for more than 50 % of the data")
	return fig, nil
}

// Fig12aDistanceSweep reproduces Fig. 12(a): outdoor estimation error at
// 11 testing points separated by 2.8 m (5 repeats each).
func Fig12aDistanceSweep(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	repeats := opt.trials(5, 2)
	fig := &Figure{
		ID:     "fig12a",
		Title:  "Estimation error vs target distance (outdoor)",
		XLabel: "absolute distance (m)",
		YLabel: "estimation error (m)",
	}
	s := Series{Name: "LocBLE"}
	// The paper's 11 points span ~2.8–15 m plus a ">15 m" bucket (BLE is
	// dead much beyond that); points here go to 19.6 m.
	for point := 1; point <= 7; point++ {
		d := 2.8 * float64(point)
		var errs []float64
		for r := 0; r < repeats; r++ {
			seed := opt.Seed + int64(point)*89 + int64(r)*7
			abs, _, _, err := estimateOnce(eng, d*math.Cos(0.35), d*math.Sin(0.35),
				sim.StaticEnv(rf.LOS), imu.Plan{Segments: imu.LShape(0, 4, 4)}, seed)
			if err != nil {
				continue
			}
			errs = append(errs, abs)
		}
		if len(errs) == 0 {
			continue
		}
		// Median over repeats: beyond ~14 m individual fits occasionally
		// run away to the range cap, and the paper plots central
		// tendency.
		s.X = append(s.X, d)
		s.Y = append(s.Y, mathx.Median(errs))
	}
	fig.Series = append(fig.Series, s)
	fig.Notes = append(fig.Notes,
		"paper: ~1 m within 5.6 m, <3 m within 11.2 m, degrades >14 m")
	return fig, nil
}

// navigationRun performs one measure-walk-refine navigation session and
// returns the error at each refinement waypoint plus the final arrival
// error: the observer measures with an L-shape, walks toward the
// estimate, and re-measures along the way (paper Secs. 7.3 and 7.5).
func navigationRun(eng *core.Engine, startDist float64, seed int64, waypoints int) (errsAtWaypoints []float64, finalErr float64, err error) {
	src := rng.New(seed)
	// World frame: target fixed; observer starts startDist away.
	tx, ty := startDist*math.Cos(0.3), startDist*math.Sin(0.3)
	ox, oy := 0.0, 0.0
	envModel := sim.StaticEnv(rf.LOS)

	var estWX, estWY float64 // latest estimate, world frame
	haveEst := false
	for wp := 0; wp <= waypoints; wp++ {
		heading := src.Uniform(-0.3, 0.3)
		// Scale the measurement walk to the remaining distance and angle
		// it away from the believed target: close to the target a full
		// L-shape aimed at it would walk straight through (the
		// log-distance model is singular at l = 0).
		remaining := math.Hypot(tx-ox, ty-oy)
		if haveEst {
			bearing := math.Atan2(estWY-oy, estWX-ox)
			heading = bearing + 0.7
		}
		leg := math.Min(4, math.Max(2.5, remaining*0.8))
		sc := sim.Scenario{
			Beacons: []sim.BeaconSpec{{Name: "b", X: tx, Y: ty}},
			ObserverPlan: imu.Plan{
				Segments:     imu.LShape(heading, leg, leg),
				StartX:       ox,
				StartY:       oy,
				StartHeading: heading,
			},
			EnvModel: envModel,
			Seed:     seed + int64(wp)*19,
		}
		tr, simErr := sim.Run(sc)
		if simErr != nil {
			return nil, 0, simErr
		}
		m, locErr := eng.Locate(tr, "b")
		if locErr != nil {
			if navDebug {
				fmt.Println("  wp", wp, "locate failed:", locErr)
			}
			// Keep the previous estimate and move on.
			if wp == 0 {
				return nil, 0, locErr
			}
		} else {
			// The estimate is relative to this measurement's start.
			estWX = ox + m.Est.X
			estWY = oy + m.Est.H
			haveEst = true
		}
		errsAtWaypoints = append(errsAtWaypoints, math.Hypot(estWX-tx, estWY-ty))

		// The measurement walk itself moved the observer; dead-reckon the
		// new position from the trace's motion track (with its errors).
		_, aligned, aErr := motion.Align(tr.IMU.Samples)
		if aErr != nil {
			return nil, 0, aErr
		}
		track, tErr := motion.BuildTrack(aligned, core.DefaultConfig().Tracker)
		if tErr != nil {
			return nil, 0, tErr
		}
		dx, dy := track.At(math.Inf(1))
		truthX, truthY := tr.IMU.PositionAt(math.Inf(1))
		// The observer's *actual* movement is the ground truth; the app's
		// belief is the dead-reckoned track. The app then guides toward
		// its estimate; the positional slack between belief and truth is
		// the dead-reckoning drift that accumulates into navigation error.
		ox, oy = truthX, truthY
		driftX, driftY := truthX-(sc.ObserverPlan.StartX+dx), truthY-(sc.ObserverPlan.StartY+dy)

		// Walk toward the estimate, stopping ~2.5 m short for the next
		// refinement (or all the way on the last leg).
		goalX, goalY := estWX+driftX, estWY+driftY
		vecX, vecY := goalX-ox, goalY-oy
		dist := math.Hypot(vecX, vecY)
		walk := dist
		if wp < waypoints {
			walk = math.Max(dist-2.5, 0)
		}
		if dist > 1e-9 {
			ox += vecX / dist * walk
			oy += vecY / dist * walk
		}
	}
	return errsAtWaypoints, math.Hypot(ox-tx, oy-ty), nil
}

// Fig10bNavigation reproduces Fig. 10(b): overall navigation error CDF
// over 20 runs with start distances 4–12 m.
func Fig10bNavigation(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	runs := opt.trials(20, 4)
	var errs []float64
	for r := 0; r < runs; r++ {
		src := rng.New(opt.Seed + int64(r)*41)
		startDist := src.Uniform(4, 12)
		_, finalErr, err := navigationRun(eng, startDist, opt.Seed+int64(r)*67, 1)
		if err != nil {
			continue
		}
		errs = append(errs, finalErr)
	}
	if len(errs) == 0 {
		return nil, fmt.Errorf("experiments: fig10b produced no runs")
	}
	fig := &Figure{
		ID:     "fig10b",
		Title:  "Navigation overall error CDF",
		XLabel: "overall error (m)",
		YLabel: "CDF",
		Series: []Series{CDFSeries("overall error", errs)},
	}
	fig.Notes = append(fig.Notes,
		"paper: median 1.5 m, 75th percentile 2 m, max < 3 m over 20 runs")
	return fig, nil
}

// Fig12bNavigationApproach reproduces Fig. 12(b): estimation error at
// successive waypoints while an observer 16.5 m away approaches the
// target under LocBLE guidance.
func Fig12bNavigationApproach(opt Options) (*Figure, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	repeats := opt.trials(3, 2)
	const waypoints = 5 // ≈17, 14, 11, 9, 6, 3 m
	sums := make([]float64, waypoints+1)
	counts := make([]int, waypoints+1)
	for r := 0; r < repeats; r++ {
		errs, _, err := navigationRun(eng, 16.5, opt.Seed+int64(r)*71, waypoints)
		if err != nil {
			continue
		}
		for i, e := range errs {
			sums[i] += e
			counts[i]++
		}
	}
	fig := &Figure{
		ID:     "fig12b",
		Title:  "Navigation performance while approaching",
		XLabel: "approximate distance to target (m)",
		YLabel: "estimation error (m)",
	}
	approxDist := []float64{17, 14, 11, 9, 6, 3}
	s := Series{Name: "mean error"}
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		s.X = append(s.X, approxDist[i])
		s.Y = append(s.Y, sums[i]/float64(counts[i]))
	}
	fig.Series = append(fig.Series, s)
	fig.Notes = append(fig.Notes,
		"paper: ~5 m error at the start (long distance, few samples), ~1 m at 3 m")
	return fig, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// navDebug enables waypoint diagnostics in navigationRun (tests only).
var navDebug = false
