package experiments

import (
	"fmt"
	"math"

	"locble/internal/core"
	"locble/internal/imu"
	"locble/internal/mathx"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

// ExtTracking quantifies the continuous-tracking extension: sliding-window
// fix error over a patrol walk (the "tracking" of the paper's title,
// exercised beyond the paper's single-measurement evaluation).
func ExtTracking(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(10, 3)
	table := &Table{
		ID:      "ext-tracking",
		Title:   "Extension: continuous sliding-window tracking",
		Columns: []string{"metric", "value"},
	}
	var all []float64
	fixes := 0
	for trial := 0; trial < trials; trial++ {
		sc := sim.Scenario{
			Beacons: []sim.BeaconSpec{{Name: "b", X: 6, Y: 2}},
			ObserverPlan: imu.Plan{Segments: []imu.Segment{
				{Heading: 0, Distance: 6},
				{Heading: math.Pi / 2, Distance: 4},
				{Heading: math.Pi, Distance: 6},
				{Heading: -math.Pi / 2, Distance: 4},
			}},
			EnvModel: sim.StaticEnv(rf.LOS),
			Seed:     opt.Seed + int64(trial)*19,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		pts, err := eng.TrackBeacon(tr, "b", 8, 2)
		if err != nil {
			continue
		}
		for _, p := range pts {
			all = append(all, math.Hypot(p.Est.X-6, p.Est.H-2))
		}
		fixes += len(pts)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("experiments: tracking produced no fixes")
	}
	mean, ci := summarize(all)
	table.AddRow("fixes", fmt.Sprint(fixes))
	table.AddRow("mean fix error", fmt.Sprintf("%.2f ± %.2f m", mean, ci))
	table.AddRow("fix cadence", "every 2 s on an 8 s window")
	return table, nil
}

// Ext3D quantifies the 3-D extension (paper Sec. 9.3): L-shape + phone
// lift gesture, shelf-height beacon.
func Ext3D(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(15, 4)
	table := &Table{
		ID:      "ext-3d",
		Title:   "Extension: 3-D localization (L-shape + phone lift)",
		Columns: []string{"metric", "value"},
	}
	var xy, z []float64
	for trial := 0; trial < trials; trial++ {
		sc := sim.Scenario{
			Beacons: []sim.BeaconSpec{{Name: "shelf", X: 5, Y: 2.5, Z: 1.5}},
			ObserverPlan: imu.Plan{Segments: []imu.Segment{
				{Heading: 0, Distance: 4},
				{Heading: math.Pi / 2, Distance: 4, Lift: 0.6},
				{Heading: math.Pi / 2, Lift: -1.2},
			}},
			EnvModel: sim.StaticEnv(rf.LOS),
			Seed:     opt.Seed + int64(trial)*23,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		est, err := eng.Locate3D(tr, "shelf")
		if err != nil {
			continue
		}
		xy = append(xy, math.Hypot(est.X-5, est.H-2.5))
		z = append(z, math.Abs(est.Z-1.5))
	}
	if len(xy) == 0 {
		return nil, fmt.Errorf("experiments: 3-D produced no estimates")
	}
	mxy, cxy := summarize(xy)
	mz, cz := summarize(z)
	table.AddRow("planar error", fmt.Sprintf("%.2f ± %.2f m", mxy, cxy))
	table.AddRow("height error", fmt.Sprintf("%.2f ± %.2f m (beacon 1.5 m above carry plane)", mz, cz))
	table.Notes = append(table.Notes,
		"height is the weakest axis: the lift baseline is ~1 m vs 8 m of horizontal walk")
	return table, nil
}

// ExtProximity quantifies the last-metre proximity fusion (paper
// Sec. 9.2): walks passing close to the beacon, with and without the
// refinement.
func ExtProximity(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(25, 5)
	table := &Table{
		ID:      "ext-proximity",
		Title:   "Extension: last-metre proximity fusion",
		Columns: []string{"variant", "mean error (m)"},
	}
	var base, refined []float64
	engaged := 0
	for trial := 0; trial < trials; trial++ {
		src := rng.New(opt.Seed + int64(trial)*29)
		// Beacon near the walking path (closest approach < 1.5 m).
		bx := src.Uniform(1.5, 3.5)
		by := src.Uniform(0.4, 1.2)
		// Partial blockage keeps the regression's own error around a
		// metre, the regime the proximity fusion is meant to improve.
		sc := sim.Scenario{
			Beacons:      []sim.BeaconSpec{{Name: "b", X: bx, Y: by}},
			ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
			EnvModel:     sim.StaticEnv(rf.PLOS),
			Seed:         opt.Seed + int64(trial)*31,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		m, err := eng.Locate(tr, "b")
		if err != nil {
			continue
		}
		ref := eng.RefineWithProximity(m, core.DefaultProximityFusionConfig())
		if ref.X != m.Est.X || ref.H != m.Est.H {
			engaged++
		}
		base = append(base, math.Hypot(m.Est.X-bx, m.Est.H-by))
		refined = append(refined, math.Hypot(ref.X-bx, ref.H-by))
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("experiments: proximity produced no estimates")
	}
	table.AddRow("regression only", fmt.Sprintf("%.2f", mean(base)))
	table.AddRow("with proximity fusion", fmt.Sprintf("%.2f", mean(refined)))
	table.Notes = append(table.Notes,
		fmt.Sprintf("proximity engaged in %d/%d runs (close approaches)", engaged, len(base)),
		"paper Sec. 9.2: proximity is accurate within 2 m and should bring accuracy under 1 m",
		"in this simulator the regression itself already reaches ~0.5 m on close approaches, so the fusion acts as a safeguard (it never degrades a fix by design) rather than an improvement")
	return table, nil
}

// ExtCrowded quantifies dense-deployment interference (paper Sec. 9.2
// future work: "evaluation in crowded environments"): the target's report
// rate and estimation error as co-channel advertisers are added.
func ExtCrowded(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(10, 3)
	table := &Table{
		ID:      "ext-crowded",
		Title:   "Extension: dense deployments (co-channel interference)",
		Columns: []string{"interference", "report rate (Hz)", "mean error (m)"},
	}
	type cfg struct {
		label    string
		extra    int
		wifiLoad float64
	}
	cases := []cfg{
		{"0 beacons", 0, 0},
		{"10 beacons", 10, 0},
		{"30 beacons", 30, 0},
		{"60 beacons", 60, 0},
		{"30 beacons + 40% WiFi", 30, 0.4},
	}
	for _, c := range cases {
		var errs []float64
		var rateSum float64
		runs := 0
		for trial := 0; trial < trials; trial++ {
			sc := sim.Scenario{
				Beacons:      []sim.BeaconSpec{{Name: "b", X: 6, Y: 3}},
				ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
				EnvModel:     sim.StaticEnv(rf.LOS),
				WiFiLoad:     c.wifiLoad,
				Seed:         opt.Seed + int64(trial)*37 + int64(c.extra),
			}
			for k := 0; k < c.extra; k++ {
				sc.Beacons = append(sc.Beacons, sim.BeaconSpec{
					Name: fmt.Sprintf("x%d", k),
					X:    float64(k%8) + 0.5,
					Y:    float64(k/8) - 2,
				})
			}
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			rateSum += float64(len(tr.Observations["b"])) / tr.Duration
			runs++
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(6, 3))
		}
		if runs == 0 {
			continue
		}
		table.AddRow(c.label,
			fmt.Sprintf("%.1f", rateSum/float64(runs)),
			fmt.Sprintf("%.2f", mean(errs)))
	}
	table.Notes = append(table.Notes,
		"collisions thin the data but LocBLE degrades gracefully (cf. Fig. 13a: lower rates keep the median)")
	return table, nil
}

// ExtBLE5 quantifies the Bluetooth 5 Coded-PHY extension (paper Sec. 9.3:
// "wider coverage ... will enhance LocBLE's performance while keeping it
// still compatible"): long-range NLOS links lose packets below the legacy
// sensitivity floor; the Coded PHY's extra ~12 dB of link budget restores
// the data and with it the estimate.
func ExtBLE5(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(12, 3)
	table := &Table{
		ID:      "ext-ble5",
		Title:   "Extension: Bluetooth 5 LE Coded PHY at long NLOS range",
		Columns: []string{"distance", "PHY", "report rate (Hz)", "mean error (m)"},
	}
	for _, d := range []float64{8, 11, 14} {
		for _, coded := range []bool{false, true} {
			var errs []float64
			var rateSum float64
			runs := 0
			for trial := 0; trial < trials; trial++ {
				sc := sim.Scenario{
					Beacons:      []sim.BeaconSpec{{Name: "b", X: d * 0.94, Y: d * 0.34}},
					ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
					EnvModel:     sim.StaticEnv(rf.NLOS),
					CodedPHY:     coded,
					Seed:         opt.Seed + int64(trial)*41,
				}
				tr, err := sim.Run(sc)
				if err != nil {
					return nil, err
				}
				rateSum += float64(len(tr.Observations["b"])) / tr.Duration
				runs++
				m, err := eng.Locate(tr, "b")
				if err != nil {
					continue
				}
				errs = append(errs, m.Error(sc.Beacons[0].X, sc.Beacons[0].Y))
			}
			phy := "legacy 1M"
			if coded {
				phy = "coded S=8"
			}
			errStr := "no estimate"
			if len(errs) > 0 {
				errStr = fmt.Sprintf("%.2f (%d/%d runs)", mean(errs), len(errs), runs)
			}
			table.AddRow(fmt.Sprintf("%.0f m NLOS", d), phy,
				fmt.Sprintf("%.1f", rateSum/float64(runs)), errStr)
		}
	}
	table.Notes = append(table.Notes,
		"the Coded PHY recovers packets the legacy floor clips, restoring data volume (and estimates) at range")
	return table, nil
}

// ExtTrackingMoving tracks a *walking* phone over time: each sliding
// window estimates the target's initial position (the regression's
// reference point, Sec. 5), and adding the target's dead-reckoned
// displacement yields its trajectory. Reported: RMSE of the reconstructed
// trajectory against ground truth.
func ExtTrackingMoving(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(8, 3)
	table := &Table{
		ID:      "ext-tracking-moving",
		Title:   "Extension: trajectory tracking of a walking phone",
		Columns: []string{"metric", "value"},
	}
	var trajErrs []float64
	fixes := 0
	for trial := 0; trial < trials; trial++ {
		src := rng.New(opt.Seed + int64(trial)*43)
		startX, startY := 7.0, 2.0
		tgtHeading := src.Uniform(0.5, 2.5)
		tgtPlan := imu.Plan{
			Segments: []imu.Segment{
				{Heading: tgtHeading, Distance: 4},
				{Heading: tgtHeading - math.Pi/2, Distance: 3},
			},
			StartX: startX, StartY: startY, StartHeading: tgtHeading,
			StepFreq: 1.2, // stroll, so the observer's window sees it longer
		}
		sc := sim.Scenario{
			Beacons: []sim.BeaconSpec{{Name: "phone", X: startX, Y: startY, Tx: rf.IOSDeviceTx}},
			ObserverPlan: imu.Plan{Segments: []imu.Segment{
				{Heading: 0, Distance: 5},
				{Heading: math.Pi / 2, Distance: 4},
				{Heading: math.Pi, Distance: 5},
			}},
			TargetPlan: &tgtPlan,
			EnvModel:   sim.StaticEnv(rf.LOS),
			Seed:       opt.Seed + int64(trial)*47,
		}
		tr, err := sim.Run(sc)
		if err != nil {
			return nil, err
		}
		pts, err := eng.TrackBeacon(tr, "phone", 8, 2)
		if err != nil {
			continue
		}
		// Reconstruct the trajectory: initial-position estimate plus the
		// target's ground-truth displacement at the fix time (the app
		// would use the streamed dead-reckoned displacement; ground truth
		// isolates the RSS-side error here). Because every window
		// estimates the *same* initial position, the running median of
		// the estimates sharpens as fixes accumulate.
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.Est.X)
			ys = append(ys, p.Est.H)
			medX := mathx.Median(xs)
			medY := mathx.Median(ys)
			bx, by := tr.TargetIMU.PositionAt(p.T)
			estX := medX + (bx - startX)
			estY := medY + (by - startY)
			trajErrs = append(trajErrs, math.Hypot(estX-bx, estY-by))
		}
		fixes += len(pts)
	}
	if len(trajErrs) == 0 {
		return nil, fmt.Errorf("experiments: moving tracking produced no fixes")
	}
	m, ci := summarize(trajErrs)
	table.AddRow("fixes", fmt.Sprint(fixes))
	table.AddRow("trajectory RMSE", fmt.Sprintf("%.2f ± %.2f m", m, ci))
	table.Notes = append(table.Notes,
		"each window estimates the target's (shared) initial position; the running median of those estimates plus the displacement stream yields a live trajectory")
	return table, nil
}
