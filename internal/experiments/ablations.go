package experiments

import (
	"fmt"
	"math"

	"locble/internal/cluster"
	"locble/internal/core"
	"locble/internal/imu"
	"locble/internal/rf"
	"locble/internal/rng"
	"locble/internal/sim"
)

// AblationButterworthOrder sweeps the ANF low-pass order (the paper fixes
// 6) and reports mean estimation error per order.
func AblationButterworthOrder(opt Options) (*Table, error) {
	trials := opt.trials(20, 4)
	table := &Table{
		ID:      "ablation-bf-order",
		Title:   "Ablation: Butterworth order (paper uses 6)",
		Columns: []string{"order", "mean error (m)"},
	}
	for _, order := range []int{2, 4, 6, 8} {
		eng, err := ablationEngine(func(c *core.Config) {
			c.ButterworthOrder = order
			c.StreamingANF = true // the order matters most in streaming mode
		})
		if err != nil {
			return nil, err
		}
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			sc := settingsScenario(opt.Seed+int64(trial)*43, rf.DeviceProfile{}, rf.TxProfile{})
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(sc.Beacons[0].X, sc.Beacons[0].Y))
		}
		table.AddRow(fmt.Sprint(order), fmt.Sprintf("%.2f", mean(errs)))
	}
	return table, nil
}

// AblationLShape compares the paper's L-shaped measurement against a
// straight-line walk of the same total length (which leaves the mirror
// ambiguity unresolved — the error counts the better candidate, i.e. it
// is the *optimistic* bound the paper's Sec. 9.2 discussion assumes a
// later navigation stage would recover).
func AblationLShape(opt Options) (*Table, error) {
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	trials := opt.trials(25, 5)
	table := &Table{
		ID:      "ablation-lshape",
		Title:   "Ablation: L-shaped vs straight measurement walk",
		Columns: []string{"movement", "mean error (m)", "ambiguous runs"},
	}
	plans := []struct {
		name string
		plan imu.Plan
	}{
		{"L-shape 4+4 m", imu.Plan{Segments: imu.LShape(0, 4, 4)}},
		{"straight 8 m", imu.Plan{Segments: []imu.Segment{{Heading: 0, Distance: 8}}}},
	}
	for _, ps := range plans {
		var errs []float64
		ambiguous := 0
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*37
			src := rng.New(seed)
			d := src.Uniform(5, 8)
			ang := src.Uniform(0.3, 0.9)
			bx, by := d*math.Cos(ang), d*math.Sin(ang)
			sc := sim.Scenario{
				Beacons:      []sim.BeaconSpec{{Name: "b", X: bx, Y: by}},
				ObserverPlan: ps.plan,
				EnvModel:     sim.StaticEnv(rf.LOS),
				Seed:         seed,
			}
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			if m.Est.Ambiguous {
				ambiguous++
				// Optimistic: credit the better mirror candidate.
				best := math.Inf(1)
				for _, c := range m.Est.Candidates {
					if e := math.Hypot(c.X-bx, c.H-by); e < best {
						best = e
					}
				}
				errs = append(errs, best)
				continue
			}
			errs = append(errs, m.Error(bx, by))
		}
		table.AddRow(ps.name, fmt.Sprintf("%.2f", mean(errs)), fmt.Sprintf("%d/%d", ambiguous, trials))
	}
	table.Notes = append(table.Notes,
		"straight-walk errors are the optimistic better-candidate bound (mirror unresolved, Sec. 9.2)")
	return table, nil
}

// AblationRestartPolicy compares EnvAware's restart-on-change policy
// against ignoring environment changes, in a scenario with a genuine
// NLOS→LOS transition.
func AblationRestartPolicy(opt Options) (*Table, error) {
	trials := opt.trials(25, 5)
	table := &Table{
		ID:      "ablation-restart",
		Title:   "Ablation: regression restart policy on environment change",
		Columns: []string{"policy", "mean error (m)"},
	}
	policies := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"restart on change (paper)", func(c *core.Config) {}},
		{"ignore changes", func(c *core.Config) { c.DisableEnvAware = true }},
	}
	scenarios := []struct {
		name string
		wall sim.Wall
	}{
		// Walking out of a shadow aligns the Γ step with the distance
		// trend (a single inflated exponent absorbs it); walking into a
		// shadow opposes the trend and needs the restart.
		{"exit shadow (NLOS→LOS)", sim.Wall{X1: 2, Y1: -2, X2: 2, Y2: 9, Class: rf.NLOS}},
		{"enter shadow (LOS→NLOS)", sim.Wall{X1: 4.5, Y1: 1.0, X2: 8.5, Y2: 1.0, Class: rf.NLOS}},
	}
	table.Columns = []string{"policy", "scenario", "mean error (m)"}
	for _, pol := range policies {
		eng, err := ablationEngine(pol.mod)
		if err != nil {
			return nil, err
		}
		for _, scn := range scenarios {
			var errs []float64
			for trial := 0; trial < trials; trial++ {
				seed := opt.Seed + int64(trial)*47
				sc := sim.Scenario{
					Beacons:      []sim.BeaconSpec{{Name: "b", X: 7, Y: 2.5}},
					ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
					EnvModel:     &sim.WallEnv{Walls: []sim.Wall{scn.wall}},
					Seed:         seed,
				}
				tr, err := sim.Run(sc)
				if err != nil {
					return nil, err
				}
				m, err := eng.Locate(tr, "b")
				if err != nil {
					continue
				}
				errs = append(errs, m.Error(7, 2.5))
			}
			table.AddRow(pol.name, scn.name, fmt.Sprintf("%.2f", mean(errs)))
		}
	}
	return table, nil
}

// AblationDTWSegment sweeps the clustering matcher's segment length
// (the paper fixes 10 points on its batch scale).
func AblationDTWSegment(opt Options) (*Table, error) {
	trials := opt.trials(12, 3)
	table := &Table{
		ID:      "ablation-dtw-segment",
		Title:   "Ablation: DTW segment length for cluster matching",
		Columns: []string{"segment length", "near-join rate", "far-join rate"},
	}
	eng, err := sharedEngine()
	if err != nil {
		return nil, err
	}
	for _, segLen := range []int{3, 5, 8} {
		nearJoin, farJoin, runs := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			seed := opt.Seed + int64(trial)*29
			sc := sim.Scenario{
				Beacons: []sim.BeaconSpec{
					{Name: "target", X: 7, Y: 3},
					{Name: "near", X: 7.3, Y: 3},
					{Name: "far", X: 1, Y: 7},
				},
				ObserverPlan: imu.Plan{Segments: imu.LShape(0, 4, 4)},
				EnvModel:     sim.StaticEnv(rf.NLOS),
				Seed:         seed,
			}
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			ccfg := cluster.DefaultConfig()
			ccfg.Matcher.SegmentLen = segLen
			_, res, err := eng.LocateWithClusterConfig(tr, "target", ccfg)
			if err != nil {
				continue
			}
			for _, m := range res.Members {
				switch m.Name {
				case "near":
					if m.Matched {
						nearJoin++
					}
				case "far":
					if m.Matched {
						farJoin++
					}
				}
			}
			runs++
		}
		if runs == 0 {
			continue
		}
		table.AddRow(fmt.Sprint(segLen),
			fmt.Sprintf("%.2f", float64(nearJoin)/float64(runs)),
			fmt.Sprintf("%.2f", float64(farJoin)/float64(runs)))
	}
	table.Notes = append(table.Notes,
		"want high near-join and low far-join; too-short segments vote on noise, too-long ones waste data")
	return table, nil
}

// AblationAKFGain sweeps the AKF's maximum raw-stream weight, trading
// responsiveness against smoothness in the streaming filter.
func AblationAKFGain(opt Options) (*Table, error) {
	trials := opt.trials(20, 4)
	table := &Table{
		ID:      "ablation-akf-gain",
		Title:   "Ablation: AKF max raw weight (streaming pipeline)",
		Columns: []string{"max alpha", "mean error (m)"},
	}
	// The knob lives inside sigproc.AKF; exercise it through the
	// streaming pipeline by scaling the estimator's exposure: we rebuild
	// the engine per value via the package-level hook below.
	for _, maxAlpha := range []float64{0.3, 0.6, 0.95} {
		eng, err := ablationEngine(func(c *core.Config) {
			c.StreamingANF = true
			c.AKFMaxAlpha = maxAlpha
		})
		if err != nil {
			return nil, err
		}
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			sc := settingsScenario(opt.Seed+int64(trial)*23, rf.DeviceProfile{}, rf.TxProfile{})
			tr, err := sim.Run(sc)
			if err != nil {
				return nil, err
			}
			m, err := eng.Locate(tr, "b")
			if err != nil {
				continue
			}
			errs = append(errs, m.Error(sc.Beacons[0].X, sc.Beacons[0].Y))
		}
		table.AddRow(fmt.Sprintf("%.2f", maxAlpha), fmt.Sprintf("%.2f", mean(errs)))
	}
	return table, nil
}
